package hv_test

import (
	"fmt"
	"testing"

	"skybridge/internal/core"
	"skybridge/internal/hv"
	"skybridge/internal/hw"
	"skybridge/internal/kv"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
	"skybridge/internal/svc"
)

// TestSlotLRUShardChurn registers more sharded servers than the hardware
// EPTP list holds (hw.EPTPListSize virtual slots per client process) and
// churns calls across them, so the virtual-slot LRU must evict
// continuously while every call still lands in the right shard: each
// shard's store returns its own shard index, so a stale EPT mapping
// after an eviction would surface as a wrong answer, not just a counter
// mismatch. A hub server keeps nested calls in flight mid-churn,
// exercising pinned-slot safety (an active call chain's slots must never
// be victims).
func TestSlotLRUShardChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("slot churn stress is not a -short test")
	}
	nShards := hw.EPTPListSize + 8 // 520: a working set the list cannot hold

	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 4 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	rk, err := hv.Boot(k, hv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sb := core.New(k, rk)
	pl := k.Placement()

	// Each shard is its own process and server; the tiny store holds one
	// record identifying the shard.
	stores := kv.NewStoreShards(k, "shard", nShards, 4, 4+2*32)
	ids := make([]int, nShards)
	var setupErr error
	for i := range stores {
		i := i
		stores[i].Proc.Spawn("reg", pl.Core(i), func(env *mk.Env) {
			if err := stores[i].Preload(env, []byte("who"), []byte(fmt.Sprintf("shard-%04d", i))); err != nil {
				if setupErr == nil {
					setupErr = fmt.Errorf("shard %d preload: %w", i, err)
				}
				return
			}
			id, err := svc.RegisterSkyBridgeServer(sb, env, 2, stores[i].Handler())
			if err != nil {
				if setupErr == nil {
					setupErr = fmt.Errorf("shard %d register: %w", i, err)
				}
				return
			}
			ids[i] = id
		})
	}
	// A hub server that fans a nested batch out to two leaf shards while
	// its own slot (and the client's return path) stay pinned.
	hub := k.NewProcess("hub")
	var hubID int
	hub.Spawn("reg", pl.Core(0), func(env *mk.Env) {
		// The hub must bind its leaves before any client binds the hub, so
		// the dependency closure reaches them.
		for _, leaf := range []int{0, 1} {
			if _, err := sb.RegisterClient(env, ids[leaf]); err != nil {
				if setupErr == nil {
					setupErr = fmt.Errorf("hub bind leaf %d: %w", leaf, err)
				}
				return
			}
		}
		hubID, err = sb.RegisterServer(env, 4, 0x400200, func(env *mk.Env, req core.Request) core.Response {
			resps, err := sb.DirectCallBatch(env, ids[0], []core.Request{
				{Regs: [4]uint64{req.Regs[0]}}, {Regs: [4]uint64{req.Regs[0] + 1}},
			})
			if err != nil || len(resps) != 2 {
				if setupErr == nil {
					setupErr = fmt.Errorf("hub nested batch: %w", err)
				}
				return core.Response{}
			}
			return core.Response{Regs: [4]uint64{req.Regs[0] * 2}}
		})
		if err != nil && setupErr == nil {
			setupErr = fmt.Errorf("register hub: %w", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if setupErr != nil {
		t.Fatal(setupErr)
	}

	client := k.NewProcess("client")
	var churnErr error
	client.Spawn("churn", pl.Core(0), func(env *mk.Env) {
		conns := make([]svc.Conn, nShards)
		for i, id := range ids {
			c, err := svc.NewSkyBridge(sb, env, id)
			if err != nil {
				churnErr = fmt.Errorf("bind shard %d: %w", i, err)
				return
			}
			conns[i] = c
		}
		if _, err := sb.RegisterClient(env, hubID); err != nil {
			churnErr = fmt.Errorf("bind hub: %w", err)
			return
		}
		// Two full sweeps: the second revisits shards the LRU has already
		// evicted, forcing reloads on a full list. Every 64th step issues a
		// hub call, so evictions happen under a pinned nested chain.
		for sweep := 0; sweep < 2; sweep++ {
			for i := 0; i < nShards; i++ {
				resp, err := conns[i].Invoke(env, svc.Req{Op: kv.OpGet, Data: []byte("who")})
				if err != nil {
					churnErr = fmt.Errorf("sweep %d shard %d: %w", sweep, i, err)
					return
				}
				if want := fmt.Sprintf("shard-%04d", i); resp.Status != kv.StatusOK || string(resp.Data) != want {
					churnErr = fmt.Errorf("sweep %d shard %d answered %q (status %d), want %q",
						sweep, i, resp.Data, resp.Status, want)
					return
				}
				if i%64 == 0 {
					resps, err := sb.DirectCallBatch(env, hubID, []core.Request{
						{Regs: [4]uint64{uint64(i)}}, {Regs: [4]uint64{uint64(i + 1)}},
					})
					if err != nil {
						churnErr = fmt.Errorf("hub call at %d: %w", i, err)
						return
					}
					if resps[0].Regs[0] != uint64(2*i) || resps[1].Regs[0] != uint64(2*(i+1)) {
						churnErr = fmt.Errorf("hub results at %d = %v", i, resps)
					}
				}
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if churnErr != nil {
		t.Fatal(churnErr)
	}

	// The client's working set exceeds the list, so the second sweep must
	// have evicted: at least nShards loads (first touch) plus reloads.
	if rk.SlotLoads() < uint64(nShards) {
		t.Errorf("SlotLoads = %d, want >= %d", rk.SlotLoads(), nShards)
	}
	if rk.SlotEvictions() == 0 {
		t.Error("two sweeps over an oversubscribed EPTP list evicted nothing")
	}
	// The counters are Rootkernel-global, so residency (loads minus
	// evictions) spans both caching processes: the client caps at
	// EPTPListSize-1 (slot 0 is its own view) and the hub holds its two
	// leaf bindings.
	if resident := int(rk.SlotLoads() - rk.SlotEvictions()); resident > (hw.EPTPListSize-1)+2 {
		t.Errorf("resident slots %d exceed the per-process hardware lists (%d+2)",
			resident, hw.EPTPListSize-1)
	}
}
