package hv

import (
	"fmt"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
)

// This file implements the paper's §10 future-work item: "since the EPTP
// list can hold at most 512 EPTP entries, we plan to design a technique
// that dynamically evicts the least recently used EPTP entries from the
// EPTP list when the server number is larger than 512."
//
// Design: server IDs become virtual. Each process's hardware EPTP list is a
// 512-slot cache of its (potentially much larger) binding set. The
// SkyBridge user-level library resolves a server ID to a slot before each
// VMFUNC; a resolution miss issues the HCLoadSlot hypercall, and the
// Rootkernel installs the binding into the least recently loaded slot that
// is neither slot 0 (the caller's own view) nor pinned by the active call
// chain (a nested call must be able to VMFUNC back through its ancestors).

// MaxVirtualServers bounds the virtual server ID space (a sanity limit far
// above the hardware's 512).
const MaxVirtualServers = 4096

// HCLoadSlot is the hypercall resolving a (process, server) binding into a
// hardware EPTP slot, evicting an unpinned LRU slot if necessary.
const HCLoadSlot = 100

// LoadSlotArgs is the HCLoadSlot payload.
type LoadSlotArgs struct {
	Proc     *mk.Process
	ServerID int
	// Pinned slots must not be evicted (the caller's active call chain).
	Pinned []int
	// Slot receives the assigned hardware slot.
	Slot int
	// Evicted reports whether an older binding was displaced.
	Evicted bool
}

// slotState tracks one process's hardware EPTP-slot cache.
type slotState struct {
	// slotServer[i] is the virtual server occupying hardware slot i
	// (0 = free; slot 0 is always the process's own view).
	slotServer [hw.EPTPListSize]int
	// serverSlot maps a loaded virtual server to its hardware slot.
	serverSlot map[int]int
	// lastLoad orders slots for LRU eviction.
	lastLoad [hw.EPTPListSize]uint64
	loadSeq  uint64
}

func (rk *Rootkernel) slotStateOf(ps *procState) *slotState {
	if ps.slots == nil {
		ps.slots = &slotState{serverSlot: make(map[int]int)}
	}
	return ps.slots
}

// SlotLoads counts HCLoadSlot invocations (each is one VM exit).
func (rk *Rootkernel) SlotLoads() uint64 { return rk.slotLoads }

// SlotEvictions counts displaced bindings.
func (rk *Rootkernel) SlotEvictions() uint64 { return rk.slotEvictions }

// loadSlot implements HCLoadSlot in root mode.
func (rk *Rootkernel) loadSlot(cpu *hw.CPU, args *LoadSlotArgs) error {
	ps := rk.ensureProc(args.Proc)
	ept, ok := ps.bindings[args.ServerID]
	if !ok {
		return fmt.Errorf("hv: process %s has no binding for server %d", args.Proc.Name, args.ServerID)
	}
	ss := rk.slotStateOf(ps)
	rk.slotLoads++

	if slot, ok := ss.serverSlot[args.ServerID]; ok {
		// Already resident (raced with another thread's load).
		args.Slot = slot
		rk.touchSlot(ss, slot)
		rk.syncSlot(cpu, ps, slot, ept)
		return nil
	}

	pinned := map[int]bool{0: true}
	for _, s := range args.Pinned {
		pinned[s] = true
	}
	// Pick a free slot, or the LRU unpinned one.
	victim := -1
	for i := 1; i < hw.EPTPListSize; i++ {
		if ss.slotServer[i] == 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		var oldest uint64 = ^uint64(0)
		for i := 1; i < hw.EPTPListSize; i++ {
			if pinned[i] {
				continue
			}
			if ss.lastLoad[i] < oldest {
				oldest = ss.lastLoad[i]
				victim = i
			}
		}
		if victim < 0 {
			return fmt.Errorf("hv: all EPTP slots pinned; call chain too deep")
		}
		delete(ss.serverSlot, ss.slotServer[victim])
		ss.slotServer[victim] = 0
		rk.slotEvictions++
		args.Evicted = true
	}

	ss.slotServer[victim] = args.ServerID
	ss.serverSlot[args.ServerID] = victim
	rk.touchSlot(ss, victim)
	ps.list[victim] = ept
	rk.syncSlot(cpu, ps, victim, ept)
	args.Slot = victim
	// cpu is nil for the eager load issued from bind (no core context).
	if cpu != nil && cpu.Trace != nil {
		var evicted uint64
		if args.Evicted {
			evicted = 1
		}
		cpu.Trace.Instant(cpu.Clock, "eptp.load_slot", "hv",
			obs.U("server", uint64(args.ServerID)), obs.U("slot", uint64(victim)),
			obs.U("evicted", evicted))
		if fid := cpu.FlowID; fid != 0 {
			cpu.Trace.FlowStep(cpu.Clock, fid, "flow.eptp_load", "flow")
		}
	}
	return nil
}

func (rk *Rootkernel) touchSlot(ss *slotState, slot int) {
	ss.loadSeq++
	ss.lastLoad[slot] = ss.loadSeq
}

// syncSlot updates the hardware EPTP list on every core currently running
// the process.
func (rk *Rootkernel) syncSlot(cpu *hw.CPU, ps *procState, slot int, ept *hw.EPT) {
	for _, c := range rk.Mach.Cores {
		if rk.installed[c.ID] == ps.proc {
			c.VMCS.EPTPList[slot] = ept
		}
	}
	_ = cpu
}

// ResolveSlot is the Subkernel/user-library entry: return the hardware slot
// for (proc, serverID), loading it via hypercall on a miss. The fast path
// is a user-level lookup with no kernel involvement.
func (rk *Rootkernel) ResolveSlot(cpu *hw.CPU, proc *mk.Process, serverID int, pinned []int) (int, bool, error) {
	ps := rk.ensureProc(proc)
	ss := rk.slotStateOf(ps)
	if slot, ok := ss.serverSlot[serverID]; ok {
		// Resident: the user-level table lookup costs a few cycles.
		cpu.Tick(6)
		rk.touchSlot(ss, slot)
		return slot, false, nil
	}
	args := &LoadSlotArgs{Proc: proc, ServerID: serverID, Pinned: pinned}
	if _, err := cpu.VMCall(&hw.Hypercall{Nr: HCLoadSlot, Ptr: args}); err != nil {
		return 0, false, err
	}
	return args.Slot, true, nil
}
