// Package hv implements the Rootkernel: SkyBridge's tiny hypervisor
// (paper §4.1). It is deliberately minimal — EPT management, a dynamic
// self-virtualization module, and handlers for the few unavoidable VM exits
// (CPUID, VMCALL, EPT violation).
//
// The Rootkernel's whole design centers on not being there at runtime:
//
//   - It is booted BY the Subkernel ("inspired by CloudVisor, SkyBridge does
//     not contain the machine bootstrap code"): Boot downgrades the already-
//     running kernel to VMX non-root mode.
//   - The base EPT identity-maps (almost) all physical memory with 1 GiB
//     hugepages, so the Subkernel never takes an EPT violation and the
//     2-level translation stays cheap.
//   - The VMCS is configured so privileged instructions and external
//     interrupts do NOT exit; Table 5's "zero VM exits" is reproduced
//     literally.
//   - A small region of physical memory is reserved for the Rootkernel's
//     own structures (EPT pages); it is absent from the base EPT, so guest
//     access to it faults — the isolation tests rely on this.
package hv

import (
	"fmt"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
)

// Hypercall numbers (the VMCALL interface between Subkernel and Rootkernel).
const (
	// HCBind binds a client to a server: clone the base EPT, remap the
	// client's CR3 GPA to the server's page-table root, and install the
	// result at the server's global EPTP index in the client's list.
	HCBind = iota + 1
	// HCInstallList installs a process's EPTP list on the current core
	// (issued by the Subkernel on context switch, §4.2).
	HCInstallList
	// HCRegisterServer assigns a global EPTP-list index to a server.
	HCRegisterServer
)

// Config tunes the Rootkernel.
type Config struct {
	// ReservedBytes is the physical memory kept for the Rootkernel
	// (default 128 MiB; the paper reserves 100 MB).
	ReservedBytes uint64
	// TrapAll configures a legacy-hypervisor-style VMCS where CR3 writes
	// and external interrupts exit — the ablation baseline for the
	// exit-less design.
	TrapAll bool
	// SmallPageEPT builds the base EPT from 4 KiB pages instead of 1 GiB
	// hugepages — the ablation baseline for the hugepage design.
	SmallPageEPT bool
	// BootCycles is charged to core 0 for the self-virtualization
	// sequence.
	BootCycles uint64
}

// regionAlloc is a bump allocator over the Rootkernel's reserved region.
type regionAlloc struct {
	next, top hw.HPA
}

// AllocFrame implements hw.FrameSource.
func (r *regionAlloc) AllocFrame() (hw.HPA, error) {
	if r.next+hw.PageSize > r.top {
		return 0, fmt.Errorf("hv: rootkernel reserved region exhausted")
	}
	h := r.next
	r.next += hw.PageSize
	return h, nil
}

// procState is the Rootkernel's per-process bookkeeping.
type procState struct {
	proc *mk.Process
	// selfEPT is the process's slot-0 EPT (an unmodified shallow clone of
	// the base EPT except for the identity page, "EPT-C" in Figure 6).
	selfEPT *hw.EPT
	// identityFrame backs this process's identity page (§4.2): every EPT
	// maps IdentityGPA to the frame of the process whose view it is.
	identityFrame hw.HPA
	// list is the process's hardware EPTP-list image, indexed by slot.
	list [hw.EPTPListSize]*hw.EPT
	// bindings maps virtual server IDs to their CR3-remapped EPT views;
	// the hardware list caches up to 511 of them (see eptplru.go).
	bindings map[int]*hw.EPT
	// slots is the slot-cache state (lazily created).
	slots *slotState
	// hasBindings marks processes whose list differs from the trivial
	// one; only those require an EPTP-list install on context switch.
	hasBindings bool
}

// Rootkernel is the hypervisor instance.
type Rootkernel struct {
	Cfg  Config
	Mach *hw.Machine
	Sub  *mk.Kernel

	BaseEPT *hw.EPT
	alloc   *regionAlloc
	resLo   hw.HPA
	resHi   hw.HPA

	procs map[*mk.Process]*procState
	// Global server index assignment (index 0 is reserved for "self").
	nextIndex int

	// installed tracks which process's list each core currently has.
	installed []*mk.Process

	// haveBindings is set once any SkyBridge binding exists anywhere; it
	// gates the context-switch EPTP-list install. It is deliberately
	// separate from the Bindings counter, which benchmarks may reset.
	haveBindings bool

	// Stats. All of these are bound into the machine's obs registry at
	// Boot, so Machine.ResetStats clears them together with the hardware
	// counters.
	Hypercalls    uint64
	ListInstall   uint64
	Bindings      uint64
	slotLoads     uint64
	slotEvictions uint64
}

// Boot self-virtualizes: the Subkernel (already running) loads the
// Rootkernel, which builds the base EPT, configures a VMCS per core with
// every avoidable exit disabled, and downgrades all cores to non-root mode.
func Boot(sub *mk.Kernel, cfg Config) (*Rootkernel, error) {
	if cfg.ReservedBytes == 0 {
		cfg.ReservedBytes = 128 << 20
	}
	if cfg.BootCycles == 0 {
		cfg.BootCycles = 2_000_000 // ~0.5 ms at 4 GHz
	}
	mach := sub.Mach
	lo, hi, err := mach.Mem.ReserveRegionAligned(cfg.ReservedBytes, hw.Page2MSize)
	if err != nil {
		return nil, err
	}
	rk := &Rootkernel{
		Cfg:       cfg,
		Mach:      mach,
		Sub:       sub,
		alloc:     &regionAlloc{next: lo, top: hi},
		resLo:     lo,
		resHi:     hi,
		procs:     make(map[*mk.Process]*procState),
		nextIndex: 1,
		installed: make([]*mk.Process, len(mach.Cores)),
	}
	if err := rk.buildBaseEPT(); err != nil {
		return nil, err
	}
	mach.Obs.Bind("hv.hypercalls", &rk.Hypercalls)
	mach.Obs.Bind("hv.list_installs", &rk.ListInstall)
	mach.Obs.Bind("hv.bindings", &rk.Bindings)
	mach.Obs.Bind("hv.slot_loads", &rk.slotLoads)
	mach.Obs.Bind("hv.slot_evictions", &rk.slotEvictions)

	controls := hw.VMExitControls{ExitOnCPUID: true}
	if cfg.TrapAll {
		controls.ExitOnCR3Write = true
		controls.ExitOnExternalIntr = true
		controls.ExitOnHLT = true
	}
	for _, cpu := range mach.Cores {
		vmcs := &hw.VMCS{Controls: controls}
		vmcs.EPTPList[0] = rk.BaseEPT
		cpu.VMCS = vmcs
		cpu.NonRoot = true
		cpu.SetEPT(rk.BaseEPT)
	}
	mach.SetExitHandler(rk.handleExit)
	mach.Cores[0].Tick(cfg.BootCycles)

	// Hook the Subkernel: EPT state for new processes, EPTP-list install
	// on context switch (§4.2).
	sub.OnProcessCreate = func(p *mk.Process) { rk.ensureProc(p) }
	sub.OnContextSwitch = rk.onContextSwitch
	for _, p := range sub.Procs() {
		rk.ensureProc(p)
	}
	// Boot-time exits (CPUID probing etc.) are not steady-state; clear.
	mach.ResetVMExitCounts()
	return rk, nil
}

// buildBaseEPT identity-maps all guest-visible memory: 1 GiB hugepages
// everywhere except the GiB containing the reserved region, which is mapped
// with 2 MiB pages that skip the reservation (so guest access to Rootkernel
// memory faults).
func (rk *Rootkernel) buildBaseEPT() error {
	rk.BaseEPT = hw.NewEPTFrom(rk.Mach.Mem, rk.alloc)
	total := rk.Mach.Mem.Size()
	if rk.Cfg.SmallPageEPT {
		// Ablation: identity-map everything except the reservation with
		// 4 KiB pages.
		n := int(uint64(rk.resLo) / hw.PageSize)
		if err := rk.BaseEPT.MapIdentityRange(0, n, hw.PageSize, hw.EPTAll); err != nil {
			return err
		}
		above := int((total - uint64(rk.resHi)) / hw.PageSize)
		return rk.BaseEPT.MapIdentityRange(hw.GPA(rk.resHi), above, hw.PageSize, hw.EPTAll)
	}
	for gb := uint64(0); gb < total; gb += hw.Page1GSize {
		gbEnd := gb + hw.Page1GSize
		switch {
		case gbEnd <= uint64(rk.resLo) || gb >= uint64(rk.resHi):
			if err := rk.BaseEPT.Map(hw.GPA(gb), hw.HPA(gb), hw.Page1GSize, hw.EPTAll); err != nil {
				return err
			}
		default:
			// Mixed GiB: 2 MiB pages, skipping the reserved range.
			for m := gb; m < gbEnd; m += hw.Page2MSize {
				if m >= uint64(rk.resLo) && m < uint64(rk.resHi) {
					continue
				}
				if err := rk.BaseEPT.Map(hw.GPA(m), hw.HPA(m), hw.Page2MSize, hw.EPTAll); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ReservedRange returns the Rootkernel's private physical range.
func (rk *Rootkernel) ReservedRange() (hw.HPA, hw.HPA) { return rk.resLo, rk.resHi }

// IdentityGPA returns the fixed guest-physical address of the identity
// page: the first page of the reserved region, which is guaranteed
// unmapped in the base EPT, so per-EPT remapping fully controls it.
func (rk *Rootkernel) IdentityGPA() hw.GPA { return hw.GPA(rk.resLo) }

func (rk *Rootkernel) ensureProc(p *mk.Process) *procState {
	if ps, ok := rk.procs[p]; ok {
		return ps
	}
	ps := &procState{proc: p, selfEPT: rk.BaseEPT.CloneShallow(), bindings: make(map[int]*hw.EPT)}
	// Identity page: a per-process frame holding the PID, remapped at the
	// shared IdentityGPA in this process's own EPT view and mapped into
	// the kernel half of its page table.
	ps.identityFrame = mustAlloc(rk.alloc)
	writePID(rk.Mach.Mem, ps.identityFrame, uint64(p.PID))
	if _, err := ps.selfEPT.RemapGPA(rk.IdentityGPA(), ps.identityFrame, hw.EPTRead|hw.EPTWrite); err != nil {
		panic(fmt.Sprintf("hv: identity remap: %v", err))
	}
	if err := p.PT.Map(mk.KernelIdentityVA, rk.IdentityGPA(), hw.PTEWrite); err != nil {
		panic(fmt.Sprintf("hv: identity kernel mapping: %v", err))
	}
	ps.list[0] = ps.selfEPT
	rk.procs[p] = ps
	return ps
}

func mustAlloc(src hw.FrameSource) hw.HPA {
	h, err := src.AllocFrame()
	if err != nil {
		panic(err)
	}
	return h
}

func writePID(mem *hw.PhysMem, frame hw.HPA, pid uint64) {
	mem.WriteU64(frame, pid)
}

// onContextSwitch installs the next process's EPTP list ("before scheduling
// a new client, SkyBridge installs a new EPTP list for it", §3.2). While no
// SkyBridge binding exists anywhere, every list is trivial and the active
// EPT is the base EPT, so no install (and no VM exit) is needed — this is
// why Table 5 measures zero exits for non-SkyBridge workloads. Once
// bindings exist, every process switch installs the next process's list,
// which also strips a malicious unregistered process of any leftover EPTP
// entries (its trivial list makes every VMFUNC index invalid).
func (rk *Rootkernel) onContextSwitch(cpu *hw.CPU, next *mk.Process) {
	if !rk.haveBindings || rk.installed[cpu.ID] == next {
		return
	}
	call := &hw.Hypercall{Nr: HCInstallList, Ptr: next}
	if _, err := cpu.VMCall(call); err != nil {
		panic(fmt.Sprintf("hv: EPTP list install failed: %v", err))
	}
}

// handleExit is the machine's VM-exit handler.
func (rk *Rootkernel) handleExit(cpu *hw.CPU, exit *hw.VMExit) error {
	switch exit.Reason {
	case hw.ExitCPUID:
		return nil // emulate and resume
	case hw.ExitHLT, hw.ExitCR3Write, hw.ExitExternalInterrupt:
		return nil // trap-all ablation: bounce back in
	case hw.ExitVMCall:
		rk.Hypercalls++
		return rk.hypercall(cpu, exit.Hypercall)
	case hw.ExitEPTViolation:
		// A genuine violation: the guest touched unmapped or forbidden
		// host memory (e.g. the Rootkernel's reservation). Refuse.
		return exit
	case hw.ExitVMFuncFail:
		return exit
	default:
		return exit
	}
}

// hypercall dispatches the VMCALL interface.
func (rk *Rootkernel) hypercall(cpu *hw.CPU, call *hw.Hypercall) error {
	switch call.Nr {
	case HCRegisterServer:
		p := call.Ptr.(*mk.Process)
		idx, err := rk.registerServer(p)
		if err != nil {
			call.Err = err
			return nil
		}
		call.Ret = uint64(idx)
		return nil
	case HCBind:
		args := call.Ptr.(*BindArgs)
		call.Err = rk.bind(args)
		return nil
	case HCInstallList:
		p := call.Ptr.(*mk.Process)
		rk.installList(cpu, p)
		return nil
	case HCLoadSlot:
		args := call.Ptr.(*LoadSlotArgs)
		call.Err = rk.loadSlot(cpu, args)
		return nil
	default:
		call.Err = fmt.Errorf("hv: unknown hypercall %d", call.Nr)
		return nil
	}
}

// registerServer assigns the next global EPTP index to a server process.
func (rk *Rootkernel) registerServer(p *mk.Process) (int, error) {
	rk.ensureProc(p)
	if rk.nextIndex >= MaxVirtualServers {
		return 0, fmt.Errorf("hv: virtual server space exhausted (%d)", rk.nextIndex-1)
	}
	idx := rk.nextIndex
	rk.nextIndex++
	return idx, nil
}

// BindArgs is the HCBind payload.
type BindArgs struct {
	Client *mk.Process
	Server *mk.Process
	// Index is the server's global EPTP index (from HCRegisterServer).
	Index int
	// PagesCopied reports how many EPT table pages the remap touched.
	PagesCopied int
}

// bind creates the server-view EPT for a client: a shallow clone of the
// base EPT whose only change is remapping the GPA of the *client's* CR3 to
// the HPA of the *server's* page-table root (Figure 6). The binding is
// recorded under the server's virtual ID and eagerly loaded into a
// hardware slot (evicting LRU entries once more than 511 servers are
// bound, §10).
func (rk *Rootkernel) bind(args *BindArgs) error {
	if args.Index <= 0 || args.Index >= MaxVirtualServers {
		return fmt.Errorf("hv: bind with invalid index %d", args.Index)
	}
	cps := rk.ensureProc(args.Client)
	rk.ensureProc(args.Server)

	clientCR3 := args.Client.PT.Root.PageBase()
	// Under the identity base EPT the server's page-table root frame is at
	// HPA == GPA.
	serverRootHPA := hw.HPA(args.Server.PT.Root)

	eptS := rk.BaseEPT.CloneShallow()
	copied, err := eptS.RemapGPA(clientCR3, serverRootHPA, hw.EPTRead|hw.EPTWrite)
	if err != nil {
		return err
	}
	// The server view also carries the server's identity page, so a kernel
	// entry while the thread executes server code attributes correctly.
	sps := rk.ensureProc(args.Server)
	if _, err := eptS.RemapGPA(rk.IdentityGPA(), sps.identityFrame, hw.EPTRead|hw.EPTWrite); err != nil {
		return err
	}
	args.PagesCopied = copied + 1 // + the cloned root
	cps.bindings[args.Index] = eptS
	cps.hasBindings = true
	rk.Bindings++
	rk.haveBindings = true
	// Eagerly load the binding into a hardware slot.
	load := &LoadSlotArgs{Proc: args.Client, ServerID: args.Index}
	if err := rk.loadSlot(nil, load); err != nil {
		return err
	}
	// Refresh the list on any core currently running this client (we are
	// in root mode handling the hypercall, so a direct install is legal).
	for _, cpu := range rk.Mach.Cores {
		if rk.installed[cpu.ID] == args.Client {
			rk.installList(cpu, args.Client)
		}
	}
	return nil
}

// installList loads a process's EPTP list into the core's VMCS and makes
// slot 0 (the process's own view) the active EPT.
func (rk *Rootkernel) installList(cpu *hw.CPU, p *mk.Process) {
	ps := rk.ensureProc(p)
	for i := range cpu.VMCS.EPTPList {
		cpu.VMCS.EPTPList[i] = ps.list[i]
	}
	cpu.VMCS.CurrentIndex = 0
	cpu.SetEPT(ps.list[0])
	rk.installed[cpu.ID] = p
	rk.ListInstall++
	if cpu.Trace != nil {
		cpu.Trace.Instant(cpu.Clock, "eptp.install", "hv", obs.U("pid", uint64(p.PID)))
		if fid := cpu.FlowID; fid != 0 {
			cpu.Trace.FlowStep(cpu.Clock, fid, "flow.eptp_install", "flow")
		}
	}
}

// Bind is the Subkernel-side convenience wrapper issuing the HCBind
// hypercall from the given core.
func (rk *Rootkernel) Bind(cpu *hw.CPU, client, server *mk.Process, index int) (int, error) {
	args := &BindArgs{Client: client, Server: server, Index: index}
	if _, err := cpu.VMCall(&hw.Hypercall{Nr: HCBind, Ptr: args}); err != nil {
		return 0, err
	}
	return args.PagesCopied, nil
}

// RegisterServer issues HCRegisterServer from the given core.
func (rk *Rootkernel) RegisterServer(cpu *hw.CPU, p *mk.Process) (int, error) {
	call := &hw.Hypercall{Nr: HCRegisterServer, Ptr: p}
	idx, err := cpu.VMCall(call)
	if err != nil {
		return 0, err
	}
	return int(idx), nil
}

// InstallFor force-installs a process's EPTP list on a core via hypercall.
// The SkyBridge registration path calls this so a freshly bound process can
// VMFUNC without waiting for its next context switch.
func (rk *Rootkernel) InstallFor(cpu *hw.CPU, p *mk.Process) error {
	_, err := cpu.VMCall(&hw.Hypercall{Nr: HCInstallList, Ptr: p})
	return err
}
// ProcState exposes a process's EPTP list for tests and the trampoline.
func (rk *Rootkernel) ProcState(p *mk.Process) (selfEPT *hw.EPT, hasBindings bool) {
	ps := rk.ensureProc(p)
	return ps.selfEPT, ps.hasBindings
}
