package hv

import (
	"testing"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
)

func bootWorld(t *testing.T, cfg Config) (*sim.Engine, *mk.Kernel, *Rootkernel) {
	t.Helper()
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 4, MemBytes: 4 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	rk, err := Boot(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, k, rk
}

func TestBootDowngradesToNonRoot(t *testing.T) {
	_, k, rk := bootWorld(t, Config{})
	for _, cpu := range k.Mach.Cores {
		if !cpu.NonRoot {
			t.Fatal("core not downgraded to non-root mode")
		}
		if cpu.VMCS == nil || cpu.EPT() != rk.BaseEPT {
			t.Fatal("VMCS/base EPT not installed")
		}
	}
}

func TestBaseEPTIdentityMapsGuestMemory(t *testing.T) {
	_, _, rk := bootWorld(t, Config{})
	lo, _ := rk.ReservedRange()
	for _, gpa := range []hw.GPA{0, 0x1000, hw.GPA(uint64(lo)) - hw.PageSize, 1 << 30} {
		hpa, v := rk.BaseEPT.Translate(gpa, hw.AccessWrite)
		if v != nil {
			t.Fatalf("gpa %#x: %v", uint64(gpa), v)
		}
		if uint64(hpa) != uint64(gpa) {
			t.Fatalf("gpa %#x mapped to %#x", uint64(gpa), uint64(hpa))
		}
	}
}

func TestReservedRegionNotGuestAccessible(t *testing.T) {
	_, _, rk := bootWorld(t, Config{})
	lo, hi := rk.ReservedRange()
	for _, gpa := range []hw.GPA{hw.GPA(lo), hw.GPA(lo) + hw.PageSize, hw.GPA(hi) - hw.PageSize} {
		if _, v := rk.BaseEPT.Translate(gpa, hw.AccessRead); v == nil {
			t.Fatalf("rootkernel memory at %#x is guest-visible", uint64(gpa))
		}
	}
}

func TestGuestRunsWithZeroVMExits(t *testing.T) {
	// Table 5's key claim: a workload that does not use SkyBridge takes no
	// VM exits under the Rootkernel.
	eng, k, _ := bootWorld(t, Config{})
	p := k.NewProcess("app")
	buf := p.Alloc(64 * hw.PageSize)
	p.Spawn("w", k.Mach.Cores[0], func(env *mk.Env) {
		data := make([]byte, 4096)
		for i := 0; i < 100; i++ {
			env.Write(buf+hw.VA(i%64)*hw.PageSize, data, len(data))
			env.Compute(1000)
		}
	})
	// Interrupts are delivered without exits in the exit-less config.
	k.Mach.Cores[1].Interrupt()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n := k.Mach.TotalVMExits(); n != 0 {
		t.Fatalf("%d VM exits during plain guest execution, want 0 (%v)", n, k.Mach.VMExits)
	}
}

func TestTrapAllConfigExitsOnInterrupt(t *testing.T) {
	_, k, _ := bootWorld(t, Config{TrapAll: true})
	if err := k.Mach.Cores[0].Interrupt(); err != nil {
		t.Fatal(err)
	}
	if k.Mach.VMExits[hw.ExitExternalInterrupt] != 1 {
		t.Fatal("trap-all config did not exit on external interrupt")
	}
}

func TestRegisterAndBind(t *testing.T) {
	_, k, rk := bootWorld(t, Config{})
	client := k.NewProcess("client")
	server := k.NewProcess("server")
	cpu := k.Mach.Cores[0]

	idx, err := rk.RegisterServer(cpu, server)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("first server index = %d, want 1", idx)
	}
	pages, err := rk.Bind(cpu, client, server, idx)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: "only four pages ... are modified".
	if pages != 4 {
		t.Fatalf("bind modified %d EPT pages, want 4", pages)
	}
	if err := rk.InstallFor(cpu, client); err != nil {
		t.Fatal(err)
	}

	// The client's CR3 GPA translates to the server's page-table root in
	// the bound EPT.
	serverView := cpu.VMCS.EPTPList[idx]
	if serverView == nil {
		t.Fatal("bound EPT not in client's EPTP list")
	}
	hpa, v := serverView.Translate(client.PT.Root.PageBase(), hw.AccessRead)
	if v != nil || hpa != hw.HPA(server.PT.Root) {
		t.Fatalf("CR3 remap wrong: hpa=%#x v=%v want %#x", uint64(hpa), v, uint64(server.PT.Root))
	}
	// And the client's own slot-0 view leaves it unchanged.
	hpa, v = cpu.VMCS.EPTPList[0].Translate(client.PT.Root.PageBase(), hw.AccessRead)
	if v != nil || hpa != hw.HPA(client.PT.Root) {
		t.Fatalf("client self view corrupted: hpa=%#x v=%v", uint64(hpa), v)
	}
}

func TestVMFuncSwitchesToServerPageTable(t *testing.T) {
	// End-to-end mechanism check at the hardware level: after binding,
	// a user-mode VMFUNC makes the same VA translate through the server's
	// page table without any CR3 write.
	eng, k, rk := bootWorld(t, Config{})
	client := k.NewProcess("client")
	server := k.NewProcess("server")
	cpu := k.Mach.Cores[0]

	va := hw.VA(0x5000_0000)
	cFrame := k.Mach.Mem.MustAllocFrame()
	sFrame := k.Mach.Mem.MustAllocFrame()
	if err := client.PT.Map(va, hw.GPA(cFrame), hw.PTEUser); err != nil {
		t.Fatal(err)
	}
	if err := server.PT.Map(va, hw.GPA(sFrame), hw.PTEUser); err != nil {
		t.Fatal(err)
	}
	k.Mach.Mem.Write(cFrame, []byte{0xCC})
	k.Mach.Mem.Write(sFrame, []byte{0x55})

	idx, err := rk.RegisterServer(cpu, server)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rk.Bind(cpu, client, server, idx); err != nil {
		t.Fatal(err)
	}

	client.Spawn("cli", cpu, func(env *mk.Env) {
		var b [1]byte
		env.Read(va, b[:], 1)
		if b[0] != 0xCC {
			t.Errorf("client view: %#x", b[0])
		}
		// User-mode EPTP switch.
		if err := cpu.VMFunc(0, idx); err != nil {
			t.Errorf("vmfunc: %v", err)
			return
		}
		if err := cpu.ReadData(va, b[:], 1); err != nil {
			t.Errorf("read in server view: %v", err)
			return
		}
		if b[0] != 0x55 {
			t.Errorf("server view: %#x", b[0])
		}
		if err := cpu.VMFunc(0, 0); err != nil {
			t.Errorf("vmfunc back: %v", err)
		}
		env.Read(va, b[:], 1)
		if b[0] != 0xCC {
			t.Errorf("client view after return: %#x", b[0])
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundProcessCannotVMFunc(t *testing.T) {
	// A process with no bindings gets a trivial EPTP list: every non-zero
	// index faults to the Rootkernel, which kills the access.
	eng, k, rk := bootWorld(t, Config{})
	client := k.NewProcess("client")
	server := k.NewProcess("server")
	evil := k.NewProcess("evil")
	cpu := k.Mach.Cores[0]

	idx, err := rk.RegisterServer(cpu, server)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rk.Bind(cpu, client, server, idx); err != nil {
		t.Fatal(err)
	}

	evil.Spawn("attacker", cpu, func(env *mk.Env) {
		// env.enter -> context switch -> the Rootkernel installs evil's
		// trivial list (bindings exist machine-wide).
		if err := cpu.VMFunc(0, idx); err == nil {
			t.Error("unbound process VMFUNCed into a server EPT")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Mach.VMExits[hw.ExitVMFuncFail] == 0 {
		t.Fatal("VMFUNC abuse did not exit to the Rootkernel")
	}
}

func TestVirtualServerSpaceExhaustion(t *testing.T) {
	_, k, rk := bootWorld(t, Config{})
	cpu := k.Mach.Cores[0]
	p := k.NewProcess("s")
	for i := 1; i < MaxVirtualServers; i++ {
		if _, err := rk.RegisterServer(cpu, p); err != nil {
			t.Fatalf("registration %d failed: %v", i, err)
		}
	}
	if _, err := rk.RegisterServer(cpu, p); err == nil {
		t.Fatalf("registration beyond %d virtual servers succeeded", MaxVirtualServers-1)
	}
}

// TestEPTPSlotLRU exercises the §10 extension: more bindings than the
// 512-entry hardware list, with transparent LRU slot eviction.
func TestEPTPSlotLRU(t *testing.T) {
	eng, k, rk := bootWorld(t, Config{})
	client := k.NewProcess("client")
	cpu := k.Mach.Cores[0]

	// Register 600 servers and bind the client to all of them — more than
	// the hardware list can hold.
	const nservers = 600
	ids := make([]int, nservers)
	procs := make([]*mk.Process, nservers)
	for i := range ids {
		procs[i] = k.NewProcess("srv")
		id, err := rk.RegisterServer(cpu, procs[i])
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if _, err := rk.Bind(cpu, client, procs[i], id); err != nil {
			t.Fatalf("bind %d: %v", i, err)
		}
	}
	if rk.SlotEvictions() == 0 {
		t.Fatal("600 eager binds produced no evictions from the 511-slot cache")
	}

	client.Spawn("cli", cpu, func(env *mk.Env) {
		// Call every server once: the evicted majority must be transparently
		// reloaded, and each reloaded view must translate the client's CR3
		// to the right server's page table.
		for i, id := range ids {
			slot, _, err := rk.ResolveSlot(cpu, client, id, []int{0})
			if err != nil {
				t.Fatalf("resolve %d: %v", i, err)
				return
			}
			if err := cpu.VMFunc(0, slot); err != nil {
				t.Fatalf("vmfunc to %d (slot %d): %v", id, slot, err)
				return
			}
			hpa, v := cpu.EPT().Translate(client.PT.Root.PageBase(), hw.AccessRead)
			if v != nil || hpa != hw.HPA(procs[i].PT.Root) {
				t.Fatalf("server %d: CR3 maps to %#x, want %#x", id, uint64(hpa), uint64(procs[i].PT.Root))
				return
			}
			if err := cpu.VMFunc(0, 0); err != nil {
				t.Fatal(err)
				return
			}
		}
		// A hot server stays resident: repeated calls take the user-level
		// hit path with no further loads.
		hot := ids[len(ids)-1]
		loadsBefore := rk.SlotLoads()
		for i := 0; i < 50; i++ {
			if _, _, err := rk.ResolveSlot(cpu, client, hot, []int{0}); err != nil {
				t.Fatal(err)
				return
			}
		}
		if rk.SlotLoads() != loadsBefore {
			t.Errorf("hot server reloaded %d times; expected pure hits", rk.SlotLoads()-loadsBefore)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestEPTPSlotPinning: pinned slots (an active nested call chain) survive
// eviction pressure.
func TestEPTPSlotPinning(t *testing.T) {
	eng, k, rk := bootWorld(t, Config{})
	client := k.NewProcess("client")
	cpu := k.Mach.Cores[0]

	const nservers = 520 // enough to force evictions
	ids := make([]int, nservers)
	for i := range ids {
		p := k.NewProcess("srv")
		id, err := rk.RegisterServer(cpu, p)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if _, err := rk.Bind(cpu, client, p, id); err != nil {
			t.Fatal(err)
		}
	}
	client.Spawn("cli", cpu, func(env *mk.Env) {
		// Pin the slot of server ids[0] (as if a nested chain holds it),
		// then churn through every other server; the pinned slot must keep
		// its binding.
		pinnedSlot, _, err := rk.ResolveSlot(cpu, client, ids[0], []int{0})
		if err != nil {
			t.Fatal(err)
			return
		}
		pins := []int{0, pinnedSlot}
		for _, id := range ids[1:] {
			if _, _, err := rk.ResolveSlot(cpu, client, id, pins); err != nil {
				t.Fatal(err)
				return
			}
		}
		loads := rk.SlotLoads()
		got, _, err := rk.ResolveSlot(cpu, client, ids[0], pins)
		if err != nil {
			t.Fatal(err)
			return
		}
		if got != pinnedSlot || rk.SlotLoads() != loads {
			t.Errorf("pinned slot was evicted (slot %d -> %d, loads %d -> %d)",
				pinnedSlot, got, loads, rk.SlotLoads())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallPageEPTAblationHasMoreTables(t *testing.T) {
	_, _, big := bootWorld(t, Config{})
	_, _, small := bootWorld(t, Config{SmallPageEPT: true})
	if small.BaseEPT.OwnedPages <= big.BaseEPT.OwnedPages*10 {
		t.Fatalf("small-page EPT owns %d pages vs hugepage %d; expected orders of magnitude more",
			small.BaseEPT.OwnedPages, big.BaseEPT.OwnedPages)
	}
}

func TestContextSwitchInstallsList(t *testing.T) {
	eng, k, rk := bootWorld(t, Config{})
	client := k.NewProcess("client")
	server := k.NewProcess("server")
	other := k.NewProcess("other")
	cpu := k.Mach.Cores[0]

	idx, _ := rk.RegisterServer(cpu, server)
	if _, err := rk.Bind(cpu, client, server, idx); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{}, 2)
	_ = done
	other.Spawn("o", cpu, func(env *mk.Env) {
		env.Compute(10)
	})
	client.Spawn("c", cpu, func(env *mk.Env) {
		env.Compute(100)
		// After running "other", coming back to client must reinstall the
		// client's list so its VMFUNC works.
		env.Read(client.Alloc(hw.PageSize), nil, 1)
		if err := cpu.VMFunc(0, idx); err != nil {
			t.Errorf("client VMFUNC after context switches: %v", err)
			return
		}
		cpu.VMFunc(0, 0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rk.ListInstall == 0 {
		t.Fatal("no EPTP list installs recorded")
	}
}
