package ycsb

import (
	"math/rand"
	"testing"
)

func TestWorkloadAMix(t *testing.T) {
	g := NewGenerator(WorkloadA(10_000), 1)
	reads, updates := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		switch g.Next().Kind {
		case OpRead:
			reads++
		case OpUpdate:
			updates++
		default:
			t.Fatal("unexpected op kind in workload A")
		}
	}
	if reads < n*45/100 || reads > n*55/100 {
		t.Fatalf("read fraction %d/%d, want ~50%%", reads, n)
	}
	if updates < n*45/100 {
		t.Fatalf("update fraction %d/%d", updates, n)
	}
}

func TestKeysInRange(t *testing.T) {
	g := NewGenerator(WorkloadA(1000), 2)
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Key < 0 || op.Key >= 1000 {
			t.Fatalf("key %d out of range", op.Key)
		}
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := newZipfian(10_000, 0.99, rng)
	counts := make(map[int64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.next()]++
	}
	// The hottest key should receive far more than the uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := n / 10_000
	if max < 20*uniform {
		t.Fatalf("hottest key got %d hits; zipfian should be much more skewed than uniform (%d)", max, uniform)
	}
}

func TestDeterministicStreams(t *testing.T) {
	a := NewGenerator(WorkloadA(100), 7)
	b := NewGenerator(WorkloadA(100), 7)
	for i := 0; i < 100; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Kind != ob.Kind || oa.Key != ob.Key || oa.Value != ob.Value {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewGenerator(WorkloadA(100), 8)
	diff := false
	for i := 0; i < 100; i++ {
		if a.Next().Key != c.Next().Key {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestWorkloadBandC(t *testing.T) {
	gB := NewGenerator(WorkloadB(1000), 1)
	updates := 0
	for i := 0; i < 10000; i++ {
		if gB.Next().Kind == OpUpdate {
			updates++
		}
	}
	if updates < 300 || updates > 800 {
		t.Fatalf("workload B updates %d/10000, want ~5%%", updates)
	}
	gC := NewGenerator(WorkloadC(1000), 1)
	for i := 0; i < 1000; i++ {
		if gC.Next().Kind != OpRead {
			t.Fatal("workload C generated a non-read")
		}
	}
}

func TestRecordValueStableLength(t *testing.T) {
	w := WorkloadA(10)
	for i := int64(0); i < 10; i++ {
		if len(RecordValue(w, i)) != w.FieldLength {
			t.Fatal("record value length wrong")
		}
	}
}
