// Package ycsb implements the Yahoo! Cloud Serving Benchmark workload
// generator used in §6.5 ("we use the YCSB workloads ... YCSB-A workload
// consists of 50% read (query) and 50% write (update) operations. We run
// the workload on a table with 10,000 records").
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is one generated operation.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
)

// Request-distribution names for Workload.RequestDist (go-ycsb's
// requestdistribution knob).
const (
	DistUniform  = "uniform"
	DistZipfian  = "zipfian"
	DistHotspot  = "hotspot"
	DistShifting = "shifting-hotspot"
)

// Workload describes an operation mix over a keyspace.
type Workload struct {
	Name        string
	RecordCount int
	FieldLength int
	ReadProp    float64
	UpdateProp  float64
	InsertProp  float64
	ScanProp    float64
	// Zipfian selects the standard YCSB zipfian request distribution;
	// false means uniform.
	Zipfian bool
	// MaxScanLen bounds the length of a SCAN (workload E); the generator
	// draws uniformly from [1, MaxScanLen].
	MaxScanLen int
	// RequestDist names the request distribution explicitly: "uniform",
	// "zipfian", "hotspot", or "shifting-hotspot". Empty falls back to
	// the Zipfian flag, preserving the classic workloads above.
	RequestDist string
	// HotDataFrac is the fraction of the keyspace forming the hot set
	// (go-ycsb's hotspotdatafraction); hotspot distributions only.
	HotDataFrac float64
	// HotOpFrac is the fraction of operations that target the hot set
	// (go-ycsb's hotspotopnfraction); hotspot distributions only.
	HotOpFrac float64
	// HotShiftEvery advances the hot set's start by one hot-set width
	// every HotShiftEvery key draws; shifting-hotspot only.
	HotShiftEvery int
}

// WorkloadA is the update-heavy workload the paper reports: 50% reads,
// 50% updates, zipfian key distribution.
func WorkloadA(records int) Workload {
	return Workload{
		Name:        "YCSB-A",
		RecordCount: records,
		FieldLength: 100,
		ReadProp:    0.5,
		UpdateProp:  0.5,
		Zipfian:     true,
	}
}

// WorkloadB is read-heavy: 95% reads, 5% updates.
func WorkloadB(records int) Workload {
	return Workload{
		Name:        "YCSB-B",
		RecordCount: records,
		FieldLength: 100,
		ReadProp:    0.95,
		UpdateProp:  0.05,
		Zipfian:     true,
	}
}

// WorkloadC is read-only.
func WorkloadC(records int) Workload {
	return Workload{
		Name:        "YCSB-C",
		RecordCount: records,
		FieldLength: 100,
		ReadProp:    1.0,
		Zipfian:     true,
	}
}

// WorkloadE is short-range-scan heavy: 95% scans, 5% inserts.
func WorkloadE(records int) Workload {
	return Workload{
		Name:        "YCSB-E",
		RecordCount: records,
		FieldLength: 100,
		ScanProp:    0.95,
		InsertProp:  0.05,
		Zipfian:     true,
		MaxScanLen:  100,
	}
}

// Op is one generated operation.
type Op struct {
	Kind    OpKind
	Key     int64
	Value   string
	ScanLen int // rows to read, OpScan only
}

// Generator produces a deterministic operation stream for one client.
type Generator struct {
	w       Workload
	rng     *rand.Rand
	zip     *zipfian
	seq     int64
	hotSize int64
	draws   int
}

// NewGenerator builds a generator with its own seed (one per client
// thread, so streams differ but runs are reproducible).
func NewGenerator(w Workload, seed int64) *Generator {
	g := &Generator{w: w, rng: rand.New(rand.NewSource(seed)), seq: int64(w.RecordCount)}
	if w.Zipfian || w.RequestDist == DistZipfian {
		g.zip = newZipfian(int64(w.RecordCount), 0.99, g.rng)
	}
	if w.RequestDist == DistHotspot || w.RequestDist == DistShifting {
		g.hotSize = int64(w.HotDataFrac * float64(w.RecordCount))
		if g.hotSize < 1 {
			g.hotSize = 1
		}
		if g.hotSize > int64(w.RecordCount) {
			g.hotSize = int64(w.RecordCount)
		}
	}
	return g
}

// HotWindow reports the hot set [start, start+size) (mod RecordCount)
// that the NEXT key draw would use. Size is 0 for non-hotspot
// distributions.
func (g *Generator) HotWindow() (start, size int64) {
	if g.hotSize == 0 {
		return 0, 0
	}
	return g.hotStart(), g.hotSize
}

// hotStart is the current base of the hot window: fixed at 0 for
// "hotspot", advancing one window width per HotShiftEvery draws for
// "shifting-hotspot".
func (g *Generator) hotStart() int64 {
	if g.w.RequestDist != DistShifting || g.w.HotShiftEvery <= 0 {
		return 0
	}
	phase := int64(g.draws / g.w.HotShiftEvery)
	return (phase * g.hotSize) % int64(g.w.RecordCount)
}

// hotKey draws from the hot window with probability HotOpFrac, else
// uniformly from its complement (both mod RecordCount, so a shifted
// window that wraps the end of the keyspace still works).
func (g *Generator) hotKey() int64 {
	n := int64(g.w.RecordCount)
	start := g.hotStart()
	g.draws++
	if g.rng.Float64() < g.w.HotOpFrac {
		return (start + g.rng.Int63n(g.hotSize)) % n
	}
	if g.hotSize == n {
		return g.rng.Int63n(n)
	}
	return (start + g.hotSize + g.rng.Int63n(n-g.hotSize)) % n
}

// key chooses the target record.
func (g *Generator) key() int64 {
	switch g.w.RequestDist {
	case DistHotspot, DistShifting:
		return g.hotKey()
	case DistUniform:
		return g.rng.Int63n(int64(g.w.RecordCount))
	}
	if g.zip != nil {
		return g.zip.next()
	}
	return g.rng.Int63n(int64(g.w.RecordCount))
}

// value builds a FieldLength-byte payload.
func (g *Generator) value() string {
	b := make([]byte, g.w.FieldLength)
	for i := range b {
		b[i] = byte('a' + g.rng.Intn(26))
	}
	return string(b)
}

// Next produces the next operation.
func (g *Generator) Next() Op {
	p := g.rng.Float64()
	switch {
	case p < g.w.ReadProp:
		return Op{Kind: OpRead, Key: g.key()}
	case p < g.w.ReadProp+g.w.UpdateProp:
		return Op{Kind: OpUpdate, Key: g.key(), Value: g.value()}
	case p < g.w.ReadProp+g.w.UpdateProp+g.w.InsertProp:
		g.seq++
		return Op{Kind: OpInsert, Key: g.seq, Value: g.value()}
	default:
		n := 1
		if g.w.MaxScanLen > 1 {
			n = 1 + g.rng.Intn(g.w.MaxScanLen)
		}
		return Op{Kind: OpScan, Key: g.key(), ScanLen: n}
	}
}

// RecordValue is the canonical initial value for record i during loading.
func RecordValue(w Workload, i int64) string {
	b := make([]byte, w.FieldLength)
	for j := range b {
		b[j] = byte('a' + (int(i)+j)%26)
	}
	return string(b)
}

// zipfian is the Gray et al. zipfian generator YCSB uses, over [0, n).
type zipfian struct {
	n               int64
	theta           float64
	alpha, zetan    float64
	eta, zeta2theta float64
	rng             *rand.Rand
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func newZipfian(n int64, theta float64, rng *rand.Rand) *zipfian {
	if n <= 0 {
		panic(fmt.Sprintf("ycsb: zipfian over %d items", n))
	}
	z := &zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zetaStatic(n, theta)
	z.zeta2theta = zetaStatic(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func (z *zipfian) next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
