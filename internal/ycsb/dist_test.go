package ycsb

import "testing"

func hotspotWorkload(dist string, records, shiftEvery int) Workload {
	return Workload{
		Name:          "hot",
		RecordCount:   records,
		FieldLength:   16,
		ReadProp:      1.0,
		RequestDist:   dist,
		HotDataFrac:   0.25,
		HotOpFrac:     0.9,
		HotShiftEvery: shiftEvery,
	}
}

func TestHotspotConcentratesOps(t *testing.T) {
	const records, n = 1000, 40000
	g := NewGenerator(hotspotWorkload(DistHotspot, records, 0), 11)
	start, size := g.HotWindow()
	if start != 0 || size != records/4 {
		t.Fatalf("hot window = [%d,+%d), want [0,+%d)", start, size, records/4)
	}
	hot := 0
	for i := 0; i < n; i++ {
		k := g.Next().Key
		if k < 0 || k >= records {
			t.Fatalf("key %d out of range", k)
		}
		if k < size {
			hot++
		}
	}
	// 90% of ops land in the hot quarter (generous tolerance for the
	// finite sample).
	if hot < n*85/100 || hot > n*95/100 {
		t.Fatalf("hot-set hits %d/%d, want ~90%%", hot, n)
	}
}

func TestHotspotColdIsUniformOverComplement(t *testing.T) {
	const records = 400
	g := NewGenerator(hotspotWorkload(DistHotspot, records, 0), 5)
	_, size := g.HotWindow()
	counts := make([]int, records)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// Every cold key should be reachable: the complement draw covers
	// the whole keyspace outside the window.
	for k := int64(size); k < records; k++ {
		if counts[k] == 0 {
			t.Fatalf("cold key %d never drawn", k)
		}
	}
}

func TestShiftingHotspotMoves(t *testing.T) {
	const records, every = 1000, 5000
	g := NewGenerator(hotspotWorkload(DistShifting, records, every), 3)
	_, size := g.HotWindow()
	// Phase p's hot window starts at (p*size) mod records. Check the
	// observed hot mass tracks the moving window for several phases,
	// including one past the wraparound.
	phases := int(int64(records)/size) + 2
	for p := 0; p < phases; p++ {
		wantStart := (int64(p) * size) % records
		if s, _ := g.HotWindow(); s != wantStart {
			t.Fatalf("phase %d window start = %d, want %d", p, s, wantStart)
		}
		inWindow := 0
		for i := 0; i < every; i++ {
			k := g.Next().Key
			if (k-wantStart+records)%records < size {
				inWindow++
			}
		}
		if inWindow < every*85/100 {
			t.Fatalf("phase %d: only %d/%d ops in window [%d,+%d)", p, inWindow, every, wantStart, size)
		}
	}
}

func TestHotspotDeterministic(t *testing.T) {
	for _, dist := range []string{DistHotspot, DistShifting} {
		a := NewGenerator(hotspotWorkload(dist, 500, 50), 9)
		b := NewGenerator(hotspotWorkload(dist, 500, 50), 9)
		for i := 0; i < 2000; i++ {
			oa, ob := a.Next(), b.Next()
			if oa.Kind != ob.Kind || oa.Key != ob.Key {
				t.Fatalf("%s: same seed diverged at op %d", dist, i)
			}
		}
		c := NewGenerator(hotspotWorkload(dist, 500, 50), 10)
		diff := false
		for i := 0; i < 2000; i++ {
			if a.Next().Key != c.Next().Key {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatalf("%s: different seeds produced identical streams", dist)
		}
	}
}

func TestExplicitDistOverridesZipfianFlag(t *testing.T) {
	w := WorkloadC(1000)
	w.RequestDist = DistUniform
	g := NewGenerator(w, 4)
	counts := make(map[int64]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Uniform: hottest key stays near the uniform share, nothing like
	// the 20x+ a zipfian would show.
	if max > 8*n/1000 {
		t.Fatalf("hottest key got %d hits; RequestDist=uniform should not be skewed", max)
	}
}

func TestTinyHotSetClamped(t *testing.T) {
	w := hotspotWorkload(DistHotspot, 3, 0)
	w.HotDataFrac = 0.01 // rounds below one key; clamps to 1
	g := NewGenerator(w, 2)
	if _, size := g.HotWindow(); size != 1 {
		t.Fatalf("hot size = %d, want clamped 1", size)
	}
	for i := 0; i < 200; i++ {
		if k := g.Next().Key; k < 0 || k >= 3 {
			t.Fatalf("key %d out of range", k)
		}
	}
}
