package bench

import (
	"bytes"
	"strings"
	"testing"

	"skybridge/internal/hw"
	"skybridge/internal/isa"
	"skybridge/internal/obs"
)

// testOpts are small, fast knob settings for runner tests.
var testOpts = Options{
	Records: 50, Ops: 10, KVOps: 32,
	Clients: 2, OpsPerKind: 4, Preload: 20,
	Scale: 8,
}

// runSuite runs the given selection and returns (stdout, metrics, trace)
// serializations.
func runSuite(t *testing.T, sel map[string]bool, jobs int) (string, []byte, []byte) {
	t.Helper()
	tr := obs.NewTracer()
	s := NewSession(tr)
	var out bytes.Buffer
	if err := RunAll(sel, testOpts, jobs, s, &out); err != nil {
		t.Fatal(err)
	}
	var mb, tb bytes.Buffer
	if err := s.WriteMetrics(&mb); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	return out.String(), mb.Bytes(), tb.Bytes()
}

// TestRunAllParallelByteIdentical: every worker count must produce the
// same stdout, metrics, and trace, byte for byte — attribution is
// per-unit, never per-worker.
func TestRunAllParallelByteIdentical(t *testing.T) {
	sel := map[string]bool{"table2": true, "fig7": true, "fig2": true}
	out1, m1, t1 := runSuite(t, sel, 1)
	for _, jobs := range []int{2, 4} {
		outN, mN, tN := runSuite(t, sel, jobs)
		if outN != out1 {
			t.Errorf("-j %d stdout differs from -j 1", jobs)
		}
		if !bytes.Equal(mN, m1) {
			t.Errorf("-j %d metrics differ from -j 1", jobs)
		}
		if !bytes.Equal(tN, t1) {
			t.Errorf("-j %d trace differs from -j 1", jobs)
		}
	}
	if !strings.Contains(out1, "Table 2") {
		t.Errorf("table2 output missing from:\n%s", out1)
	}
}

// TestCellJobsByteIdentical: the sweep experiments (scaling, async) and
// the table6 corpus scan partition into independent cells on the SetJobs
// worker pool; every worker count must reproduce the serial run's stdout,
// metrics, and trace byte for byte.
func TestCellJobsByteIdentical(t *testing.T) {
	sel := map[string]bool{"scaling": true, "async": true, "table6": true}
	prev := SetJobs(1)
	t.Cleanup(func() { SetJobs(prev) })
	out1, m1, t1 := runSuite(t, sel, 1)
	for _, jobs := range []int{3, 8} {
		SetJobs(jobs)
		outN, mN, tN := runSuite(t, sel, 1)
		if outN != out1 {
			t.Errorf("SetJobs(%d) stdout differs from serial", jobs)
		}
		if !bytes.Equal(mN, m1) {
			t.Errorf("SetJobs(%d) metrics differ from serial", jobs)
		}
		if !bytes.Equal(tN, t1) {
			t.Errorf("SetJobs(%d) trace differs from serial", jobs)
		}
	}
}

// TestRunAllHostCacheOffByteIdentical: disabling the host-side fast paths
// must not change a single output byte — the caches are pure host-side
// accelerators.
func TestRunAllHostCacheOffByteIdentical(t *testing.T) {
	sel := map[string]bool{"table2": true, "fig2": true}
	setCaches := func(on bool) (bool, bool) {
		return hw.SetHostFastPaths(on), isa.SetDecodeCache(on)
	}
	prevHW, prevISA := setCaches(true)
	t.Cleanup(func() { hw.SetHostFastPaths(prevHW); isa.SetDecodeCache(prevISA) })

	outOn, mOn, tOn := runSuite(t, sel, 1)
	setCaches(false)
	outOff, mOff, tOff := runSuite(t, sel, 1)
	if outOn != outOff {
		t.Error("stdout differs between -hostcache on and off")
	}
	if !bytes.Equal(mOn, mOff) {
		t.Error("metrics differ between -hostcache on and off")
	}
	if !bytes.Equal(tOn, tOff) {
		t.Error("trace differs between -hostcache on and off")
	}
}

// TestRunAllSelectionAndErrors covers the runner's edges: empty selection
// errors, unknown selection yields no units, jobs clamping works.
func TestRunAllSelectionAndErrors(t *testing.T) {
	if err := RunAll(map[string]bool{"nope": true}, testOpts, 1, NewSession(nil), nil); err == nil {
		t.Error("unknown-only selection did not error")
	}
	// jobs far beyond the unit count is clamped, not an error.
	var out bytes.Buffer
	if err := RunAll(map[string]bool{"table2": true}, testOpts, 64, NewSession(nil), &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("no output for table2")
	}
}

// TestExperimentNamesStable pins the selector list (the skybench -run
// vocabulary) in catalog order.
func TestExperimentNamesStable(t *testing.T) {
	want := []string{"table2", "fig7", "table1", "fig2", "fig8", "table4",
		"fig9", "fig10", "fig11", "table5", "table6", "ablations", "scaling", "async", "dbscale", "tenants", "skew"}
	got := ExperimentNames()
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}
