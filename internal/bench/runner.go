package bench

import (
	"fmt"
	"io"
	"sync"

	"skybridge/internal/mk"
	"skybridge/internal/obs"
)

// Options carries the paper-scale knobs of the experiment catalog (the
// skybench flags).
type Options struct {
	Records    int // YCSB records per client
	Ops        int // YCSB operations per client thread
	KVOps      int // KV-store operations per configuration
	Clients    int // SQLite clients (Table 4)
	OpsPerKind int // SQLite ops per kind per client (Table 4)
	Preload    int // SQLite preloaded rows per client (Table 4)
	Scale      int // Table 6 corpus scale divisor
	Tenants    int // multi-tenant sweep population ceiling
}

// Experiment is one independently runnable unit of the evaluation: it
// builds its own worlds inside the Session it is handed, so units never
// share simulated state and can run on parallel workers. Units sharing a
// Name are selected together (table4 has one unit per flavor); Label is
// unique within the catalog.
type Experiment struct {
	Name  string
	Label string
	// Desc is the one-line description skybench -list prints next to the
	// selector; units sharing a Name share it.
	Desc string
	Run  func(s *Session, o Options) (string, error)
}

// Catalog returns the experiment units in declaration order — the order
// skybench has always printed its output in, which RunAll preserves for
// any worker count.
func Catalog() []Experiment {
	units := []Experiment{
		{Name: "table2", Label: "table2", Desc: "per-call IPC cost breakdown vs the paper's Table 2", Run: func(s *Session, o Options) (string, error) {
			return s.Table2().Render(), nil
		}},
		{Name: "fig7", Label: "fig7", Desc: "IPC round-trip latency microbenchmark (Figure 7)", Run: func(s *Session, o Options) (string, error) {
			return s.Figure7().Render(), nil
		}},
		{Name: "table1", Label: "table1", Desc: "KV-store pipeline per-op cost across transports (Table 1)", Run: func(s *Session, o Options) (string, error) {
			return s.Table1().Render(), nil
		}},
		{Name: "fig2", Label: "fig2", Desc: "KV-store throughput without SkyBridge (Figure 2)", Run: func(s *Session, o Options) (string, error) {
			return s.Figure2(o.KVOps).Render(), nil
		}},
		{Name: "fig8", Label: "fig8", Desc: "KV-store throughput over SkyBridge (Figure 8)", Run: func(s *Session, o Options) (string, error) {
			return s.Figure8(o.KVOps).Render(), nil
		}},
	}
	for _, fl := range []mk.Flavor{mk.SeL4, mk.Fiasco, mk.Zircon} {
		fl := fl
		units = append(units, Experiment{
			Name: "table4", Label: "table4/" + fl.String(),
			Desc: "three-tier SQLite stack ops across kernel flavors (Table 4)",
			Run: func(s *Session, o Options) (string, error) {
				r, err := s.Table4(Table4Config{
					Flavor: fl, Clients: o.Clients, OpsPerKind: o.OpsPerKind, Preload: o.Preload,
				})
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			},
		})
	}
	for _, f := range []struct {
		name   string
		flavor mk.Flavor
	}{{"fig9", mk.SeL4}, {"fig10", mk.Fiasco}, {"fig11", mk.Zircon}} {
		f := f
		units = append(units, Experiment{
			Name: f.name, Label: f.name,
			Desc: "YCSB on the SQLite stack, one kernel flavor each (Figures 9-11)",
			Run: func(s *Session, o Options) (string, error) {
				r, err := s.Figure9to11(YCSBConfig{Flavor: f.flavor, Records: o.Records, Ops: o.Ops})
				if err != nil {
					return "", err
				}
				return r.Render(), nil
			},
		})
	}
	units = append(units,
		Experiment{Name: "table5", Label: "table5", Desc: "YCSB latency percentiles on the SQLite stack (Table 5)", Run: func(s *Session, o Options) (string, error) {
			r, err := s.Table5(o.Records, o.Ops)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		Experiment{Name: "table6", Label: "table6", Desc: "inadvertent-VMFUNC binary scan (Table 6)", Run: func(s *Session, o Options) (string, error) {
			r, err := s.Table6(o.Scale)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		Experiment{Name: "ablations", Label: "ablations", Desc: "design-choice ablations from DESIGN.md", Run: func(s *Session, o Options) (string, error) {
			return RenderAblations(s.Ablations()), nil
		}},
		Experiment{Name: "scaling", Label: "scaling", Desc: "multicore KV scaling sweep (cores x batch)", Run: func(s *Session, o Options) (string, error) {
			r, err := s.Scaling(ScalingConfig{Records: o.Records, TotalOps: o.KVOps})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		Experiment{Name: "async", Label: "async", Desc: "async ring queue-depth sweep over one connection", Run: func(s *Session, o Options) (string, error) {
			r, err := s.Async(AsyncConfig{Records: o.Records, TotalOps: o.KVOps})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		Experiment{Name: "dbscale", Label: "dbscale", Desc: "SQLite/FS lock granularity and fast-path sweep", Run: func(s *Session, o Options) (string, error) {
			r, err := s.DBScale(DBScaleConfig{Records: o.Records / 4, OpsPerClient: o.Ops})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		Experiment{Name: "tenants", Label: "tenants", Desc: "multi-tenant frontend sweep (rings + directory drain)", Run: func(s *Session, o Options) (string, error) {
			r, err := s.Tenants(TenantsConfig{MaxTenants: o.Tenants})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		Experiment{Name: "skew", Label: "skew", Desc: "adaptive placement under skew: migration + stealing + autoscaling", Run: func(s *Session, o Options) (string, error) {
			r, err := s.Skew(SkewConfig{TotalOps: 8 * o.KVOps})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	)
	return units
}

// ExperimentNames returns the distinct selector names in catalog order.
func ExperimentNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, u := range Catalog() {
		if !seen[u.Name] {
			seen[u.Name] = true
			names = append(names, u.Name)
		}
	}
	return names
}

// ExperimentInfo returns (name, description) pairs for the distinct
// selector names in catalog order — what skybench -list prints.
func ExperimentInfo() []Experiment {
	var units []Experiment
	seen := map[string]bool{}
	for _, u := range Catalog() {
		if !seen[u.Name] {
			seen[u.Name] = true
			units = append(units, u)
		}
	}
	return units
}

// cellJobs is the worker count for sub-experiment parallelism: the sweep
// experiments (scaling, async) and the table6 corpus scan partition their
// independent cells onto this many workers, so one big experiment no
// longer serializes a whole core. The driver sets it once from -j before
// anything runs (SetJobs); results are byte-identical for any value.
var cellJobs = 1

// SetJobs sets the worker count used inside experiments that partition
// into independent cells, returning the previous setting. Values below 1
// clamp to 1 (serial).
func SetJobs(n int) int {
	prev := cellJobs
	if n < 1 {
		n = 1
	}
	cellJobs = n
	return prev
}

// runCells runs n independent experiment cells on the package worker pool
// (SetJobs), each in its own sub-Session — own worlds, own registry, own
// sub-tracer when s traces — and merges the sub-sessions into s strictly
// in index order. Because Merge reproduces a serial run byte-for-byte,
// the session state after runCells is identical for any worker count;
// with one worker the cells run directly against s, no sub-sessions.
//
// run must build all simulated state inside the sub-session it is handed
// and write any host-side result into an index-addressed slot (never
// append to shared slices).
func runCells(s *Session, n int, run func(sub *Session, i int) error) error {
	jobs := cellJobs
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := run(s, i); err != nil {
				return err
			}
		}
		return nil
	}

	subs := make([]*Session, n)
	errs := make([]error, n)
	idxCh := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			idxCh <- i
		}
		close(idxCh)
	}()
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				var subTrace *obs.Tracer
				if s.Trace != nil {
					subTrace = obs.NewTracer()
					subTrace.EventCap = s.Trace.EventCap
				}
				sub := NewSession(subTrace)
				errs[i] = run(sub, i)
				subs[i] = sub
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return errs[i]
		}
		s.Merge(subs[i])
	}
	return nil
}

// Merge folds a completed sub-session into s: records append in call
// order, histograms merge exactly (obs.Histogram.Merge), call sites
// append in creation order, and the sub-tracer's processes are adopted
// with continued pid numbering. Merging
// per-experiment sessions in declaration order therefore reproduces a
// serial single-session run byte-for-byte.
func (s *Session) Merge(sub *Session) {
	s.recs = append(s.recs, sub.recs...)
	s.Reg.MergeHistograms(sub.Reg)
	for _, cs := range sub.calls {
		if i, ok := s.callIdx[cs.Label]; ok {
			// Label collision (units never produce one in practice): fold
			// the breakdowns exactly; the first site's flight dumps win.
			s.calls[i].Obs.Breakdown.Merge(cs.Obs.Breakdown)
			continue
		}
		s.callIdx[cs.Label] = len(s.calls)
		s.calls = append(s.calls, cs)
	}
	if s.Trace != nil && sub.Trace != nil {
		s.Trace.Adopt(sub.Trace)
	}
}

// RunAll runs the selected catalog units (sel nil selects everything) on a
// pool of jobs workers, each unit in its own sub-Session — own worlds, own
// machines, own metric registry, own sub-tracer when master traces — and
// merges results into master strictly in declaration order, streaming each
// unit's rendered output to out (which may be nil) as soon as all earlier
// units have been emitted.
//
// Attribution is per-unit, never per-worker, so the merged output is
// byte-identical for every worker count, including 1.
func RunAll(sel map[string]bool, o Options, jobs int, master *Session, out io.Writer) error {
	var units []Experiment
	for _, u := range Catalog() {
		if sel == nil || sel[u.Name] {
			units = append(units, u)
		}
	}
	if len(units) == 0 {
		return fmt.Errorf("bench: no experiments selected")
	}
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(units) {
		jobs = len(units)
	}

	type result struct {
		out  string
		sub  *Session
		err  error
		done chan struct{}
	}
	results := make([]result, len(units))
	for i := range results {
		results[i].done = make(chan struct{})
	}

	idxCh := make(chan int)
	go func() {
		for i := range units {
			idxCh <- i
		}
		close(idxCh)
	}()
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				var subTrace *obs.Tracer
				if master.Trace != nil {
					subTrace = obs.NewTracer()
					subTrace.EventCap = master.Trace.EventCap
				}
				sub := NewSession(subTrace)
				text, err := units[i].Run(sub, o)
				results[i].out, results[i].sub, results[i].err = text, sub, err
				close(results[i].done)
			}
		}()
	}

	var firstErr error
	for i := range units {
		<-results[i].done
		if firstErr != nil {
			continue
		}
		if results[i].err != nil {
			firstErr = fmt.Errorf("%s: %w", units[i].Label, results[i].err)
			continue
		}
		master.Merge(results[i].sub)
		if out != nil {
			fmt.Fprintln(out, results[i].out)
		}
	}
	wg.Wait()
	return firstErr
}
