package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"skybridge/internal/mk"
	"skybridge/internal/obs"
)

// TestTracingDoesNotPerturbSimulation is the zero-cost-when-disabled
// guarantee from the other side: enabling tracing must not change any
// simulated result, because recording only reads the cycle clock.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	plain := NewSession(nil).RunKV(TransportSkyBridge, 16, 64)
	traced := NewSession(obs.NewTracer()).RunKV(TransportSkyBridge, 16, 64)
	if plain.AvgCycles != traced.AvgCycles {
		t.Errorf("AvgCycles: untraced %d vs traced %d", plain.AvgCycles, traced.AvgCycles)
	}
	if *plain != *traced {
		t.Errorf("stats diverge:\nuntraced %+v\ntraced   %+v", plain, traced)
	}
}

// TestSessionOutputsDeterministic runs the same experiment twice and
// requires byte-identical trace and metrics serializations.
func TestSessionOutputsDeterministic(t *testing.T) {
	run := func() (trace, metrics []byte) {
		tr := obs.NewTracer()
		s := NewSession(tr)
		s.RunKV(TransportSkyBridge, 16, 64)
		s.RunKV(TransportIPC, 16, 64)
		var tb, mb bytes.Buffer
		if err := tr.WriteChromeTrace(&tb); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteMetrics(&mb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), mb.Bytes()
	}
	t1, m1 := run()
	t2, m2 := run()
	if !bytes.Equal(t1, t2) {
		t.Error("trace output not byte-identical across identical runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics output not byte-identical across identical runs")
	}
	var doc MetricsOutput
	if err := json.Unmarshal(m1, &doc); err != nil {
		t.Fatalf("metrics output not valid JSON: %v", err)
	}
	if len(doc.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(doc.Records))
	}
	if doc.Records[0].Experiment != "kv" || doc.Records[0].Config["transport"] != "SkyBridge" {
		t.Errorf("record 0 = %+v", doc.Records[0])
	}
	if doc.Records[0].Latency == nil || doc.Records[0].Latency.Count != 64 {
		t.Errorf("record 0 latency = %+v, want 64 observations", doc.Records[0].Latency)
	}
}

// TestSessionTraceContents checks that a traced SkyBridge run actually
// produces the direct-call spans with phase attribution.
func TestSessionTraceContents(t *testing.T) {
	tr := obs.NewTracer()
	s := NewSession(tr)
	s.RunKV(TransportSkyBridge, 16, 32)
	if tr.TotalDropped() != 0 {
		t.Fatalf("dropped %d events", tr.TotalDropped())
	}
	seen := map[string]int{}
	for _, pt := range tr.Processes() {
		if pt.Name() != "kv/SkyBridge/16" {
			t.Errorf("process name = %q", pt.Name())
		}
		for i := 0; i < pt.Cores(); i++ {
			for _, ev := range pt.Core(i).Events() {
				seen[ev.Name]++
				if ev.Ph == obs.PhaseSpan && ev.Name == "skybridge.call" && ev.Dur == 0 {
					t.Errorf("unclosed skybridge.call span at ts %d", ev.Ts)
				}
			}
		}
	}
	for _, name := range []string{"skybridge.call", "phase.trampoline", "phase.vmfunc", "phase.server", "phase.return"} {
		if seen[name] == 0 {
			t.Errorf("no %q events recorded (saw %v)", name, seen)
		}
	}
	if seen["skybridge.call"] != seen["phase.vmfunc"] {
		t.Errorf("%d calls but %d vmfunc phases", seen["skybridge.call"], seen["phase.vmfunc"])
	}
}

// TestRegistryStatsMatchLegacyCollection pins the SumSuffix-based counter
// collection to the per-core struct fields it replaced.
func TestRegistryStatsMatchLegacyCollection(t *testing.T) {
	s := NewSession(nil)
	w := s.world("check", WorldConfig{Flavor: mk.SeL4, Cores: 4})
	k := w.K
	p := k.NewProcess("m")
	buf := p.Alloc(4096)
	p.Spawn("m", k.Mach.Cores[0], func(env *mk.Env) {
		var b [64]byte
		for i := 0; i < 32; i++ {
			env.Write(buf, b[:], len(b))
			env.Read(buf, b[:], len(b))
		}
	})
	if err := w.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, core := range k.Mach.Cores {
		want += core.L1D.Stats.Misses
	}
	if got := k.Mach.Obs.SumSuffix(".L1D.misses"); got != want {
		t.Errorf("SumSuffix(.L1D.misses) = %d, struct-field sum = %d", got, want)
	}
	if got := k.Mach.Obs.Value("L3.misses"); got != k.Mach.L3.Stats.Misses {
		t.Errorf("Value(L3.misses) = %d, field = %d", got, k.Mach.L3.Stats.Misses)
	}
}
