package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"skybridge/internal/hw"
	"skybridge/internal/kv"
	"skybridge/internal/mk"
	"skybridge/internal/svc"
)

// KVStats captures hardware counters and latency for one KV-pipeline run.
type KVStats struct {
	Transport Transport
	Size      int // key and value length in bytes

	AvgCycles uint64 // per operation

	// Processor-structure events during the measured window (Table 1).
	ICacheMisses uint64
	DCacheMisses uint64
	L2Misses     uint64
	L3Misses     uint64
	ITLBMisses   uint64
	DTLBMisses   uint64
}

// KVPlacement parameterizes the machine width and thread placement of
// the KV pipeline. The zero value reproduces the paper's testbed: a
// 4-core machine with the client (and same-core servers) on core 0, and
// the cross-core configuration pinning the two servers to the next two
// cores after the client (the paper pins client and servers to three
// distinct cores).
type KVPlacement struct {
	// Cores is the machine width (0 = the default 4).
	Cores int
	// ClientCore is the logical core index the client thread runs on;
	// servers place relative to it through mk.Placement.
	ClientCore int
}

// serverCores returns the cores for the encryption and KV servers given
// the transport: the client's own core for same-core transports, the two
// cores after the client for the pinned cross-core configuration. This
// is the one place the encCore/kvCore choice lives.
func (p KVPlacement) serverCores(k *mk.Kernel, tr Transport) (encCore, kvCore *hw.CPU) {
	pl := k.Placement()
	if tr == TransportIPCCross {
		return pl.Core(p.ClientCore + 1), pl.Core(p.ClientCore + 2)
	}
	return pl.Core(p.ClientCore), pl.Core(p.ClientCore)
}

// RunKV runs the Figure 1 pipeline in the given configuration: ops
// operations (50% insert, 50% query) with the given key/value length,
// returning per-op latency and the hardware counters of the measurement
// window.
func RunKV(tr Transport, size, ops int) *KVStats {
	return NewSession(nil).RunKV(tr, size, ops)
}

// RunKV is the session form: each operation's latency feeds a histogram
// named "kv/<transport>/<size>" and the run emits one Record. The
// default placement reproduces the paper's testbed (see KVPlacement).
func (s *Session) RunKV(tr Transport, size, ops int) *KVStats {
	return s.RunKVPlaced(tr, size, ops, KVPlacement{})
}

// RunKVPlaced is RunKV with explicit machine width and core placement.
func (s *Session) RunKVPlaced(tr Transport, size, ops int, place KVPlacement) *KVStats {
	cfg := WorldConfig{Flavor: mk.SeL4, Cores: place.Cores}
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if tr == TransportSkyBridge {
		cfg.SkyBridge = true
	}
	label := fmt.Sprintf("kv/%s/%d", tr, size)
	w := s.world(label, cfg)
	h := s.hist(label)
	k := w.K
	clientCore := k.Placement().Core(place.ClientCore)

	stats := &KVStats{Transport: tr, Size: size}
	slotSize := 4 + 2*1024 + 128
	nslots := 4096

	var encConn, kvConn func(env *mk.Env) svc.Conn
	var client *mk.Process
	var clientText hw.VA
	var closers []func()

	switch tr {
	case TransportBaseline, TransportDelay:
		// One address space, function calls (optionally padded by the
		// direct cost of an IPC). The components share one runtime copy.
		client = k.NewProcess("all")
		store := kv.NewStore(client, nslots, slotSize)
		crypto := kv.NewCrypto(client)
		shared := client.Alloc(24 << 10)
		store.UseSharedText(shared)
		crypto.UseSharedText(shared)
		clientText = shared
		mkConn := func(h svc.Handler) svc.Conn {
			if tr == TransportDelay {
				return svc.NewDelay(h, DirectIPCCost)
			}
			return svc.NewLocal(h)
		}
		encConn = func(env *mk.Env) svc.Conn { return mkConn(crypto.Handler()) }
		kvConn = func(env *mk.Env) svc.Conn { return mkConn(store.Handler()) }

	case TransportIPC, TransportIPCCross:
		client = k.NewProcess("client")
		encP := k.NewProcess("enc")
		kvP := k.NewProcess("kv")
		store := kv.NewStore(kvP, nslots, slotSize)
		crypto := kv.NewCrypto(encP)
		encEP := k.NewEndpoint("enc")
		kvEP := k.NewEndpoint("kv")
		encCore, kvCore := place.serverCores(k, tr)
		encP.Spawn("srv", encCore, func(env *mk.Env) { svc.ServeIPC(env, encEP, crypto.Handler()) })
		kvP.Spawn("srv", kvCore, func(env *mk.Env) { svc.ServeIPC(env, kvEP, store.Handler()) })
		closers = append(closers, encEP.Close, kvEP.Close)
		encConn = func(env *mk.Env) svc.Conn { return svc.NewIPC(client, encEP) }
		kvConn = func(env *mk.Env) svc.Conn { return svc.NewIPC(client, kvEP) }

	case TransportSkyBridge:
		client = k.NewProcess("client")
		encP := k.NewProcess("enc")
		kvP := k.NewProcess("kv")
		store := kv.NewStore(kvP, nslots, slotSize)
		crypto := kv.NewCrypto(encP)
		var encID, kvID int
		encCore, kvCore := place.serverCores(k, tr)
		encP.Spawn("reg", encCore, func(env *mk.Env) {
			encID, _ = svc.RegisterSkyBridgeServer(w.SB, env, 8, crypto.Handler())
		})
		kvP.Spawn("reg", kvCore, func(env *mk.Env) {
			kvID, _ = svc.RegisterSkyBridgeServer(w.SB, env, 8, store.Handler())
		})
		if err := w.Eng.Run(); err != nil {
			panic(err)
		}
		encConn = func(env *mk.Env) svc.Conn {
			c, err := svc.NewSkyBridge(w.SB, env, encID)
			if err != nil {
				panic(err)
			}
			return c
		}
		kvConn = func(env *mk.Env) svc.Conn {
			c, err := svc.NewSkyBridge(w.SB, env, kvID)
			if err != nil {
				panic(err)
			}
			return c
		}
	}

	if clientText == 0 {
		clientText = client.Alloc(24 << 10)
	}
	client.Spawn("cli", clientCore, func(env *mk.Env) {
		c := &kv.Client{Enc: encConn(env), KV: kvConn(env), Text: clientText, TextLen: 24 << 10}
		rng := rand.New(rand.NewSource(17))
		key := func(i int) []byte {
			b := make([]byte, size)
			copy(b, fmt.Sprintf("key-%06d", i))
			return b
		}
		val := func(i int) []byte {
			b := make([]byte, size)
			for j := range b {
				b[j] = byte('a' + (i+j)%26)
			}
			return b
		}
		// Preload half the keyspace so queries hit, then warm up.
		n := 256
		for i := 0; i < n; i++ {
			if err := c.Insert(env, key(i), val(i)); err != nil {
				panic(err)
			}
		}
		// Measurement window: reset counters machine-wide.
		k.Mach.ResetStats()
		start := env.Now()
		for i := 0; i < ops; i++ {
			t := env.Now()
			if rng.Intn(2) == 0 {
				if err := c.Insert(env, key(n+i), val(n+i)); err != nil {
					panic(err)
				}
			} else {
				if _, err := c.Query(env, key(rng.Intn(n))); err != nil {
					panic(err)
				}
			}
			h.Observe(env.Now() - t)
		}
		stats.AvgCycles = (env.Now() - start) / uint64(ops)

		// Collect pollution counters across the cores involved, through
		// the machine's metric registry.
		reg := k.Mach.Obs
		stats.ICacheMisses = reg.SumSuffix(".L1I.misses")
		stats.DCacheMisses = reg.SumSuffix(".L1D.misses")
		stats.L2Misses = reg.SumSuffix(".L2.misses")
		stats.ITLBMisses = reg.SumSuffix(".ITLB.misses")
		stats.DTLBMisses = reg.SumSuffix(".DTLB.misses")
		stats.L3Misses = reg.Value("L3.misses")
		for _, c := range closers {
			c()
		}
	})
	if err := w.Eng.Run(); err != nil {
		panic(err)
	}
	s.record(Record{
		Experiment: "kv",
		Config: map[string]string{
			"transport": tr.String(),
			"size":      fmt.Sprintf("%d", size),
			"ops":       fmt.Sprintf("%d", ops),
		},
		CyclesPerOp: float64(stats.AvgCycles),
		Values: map[string]float64{
			"icache_misses": float64(stats.ICacheMisses),
			"dcache_misses": float64(stats.DCacheMisses),
			"l2_misses":     float64(stats.L2Misses),
			"l3_misses":     float64(stats.L3Misses),
			"itlb_misses":   float64(stats.ITLBMisses),
			"dtlb_misses":   float64(stats.DTLBMisses),
		},
		Latency: s.latencyOf(label),
	})
	return stats
}

// --- Table 1 ---

// Table1Result reproduces the processor-structure pollution table.
type Table1Result struct {
	Rows []*KVStats
}

// Table1 runs 512 KV operations under Baseline, Delay, and IPC and
// reports the processor-structure events.
func Table1() *Table1Result { return NewSession(nil).Table1() }

// Table1 is the session form.
func (s *Session) Table1() *Table1Result {
	res := &Table1Result{}
	for _, tr := range []Transport{TransportBaseline, TransportDelay, TransportIPC} {
		res.Rows = append(res.Rows, s.RunKV(tr, 64, 512))
	}
	return res
}

// Render formats the table.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: pollution of processor structures (misses during 512 KV ops)\n")
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %9s %8s %8s\n", "Name", "i-cache", "d-cache", "L2", "L3", "i-TLB", "d-TLB")
	for _, s := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9d %9d %9d %9d %8d %8d\n",
			s.Transport, s.ICacheMisses, s.DCacheMisses, s.L2Misses, s.L3Misses, s.ITLBMisses, s.DTLBMisses)
	}
	return b.String()
}

// --- Figures 2 and 8 ---

// KVSizes are the key/value lengths of Figures 2 and 8.
var KVSizes = []int{16, 64, 256, 1024}

// Figure2Result holds per-transport latency series over payload sizes.
type Figure2Result struct {
	// Figure8 includes the SkyBridge series (Figure 8 = Figure 2 + SkyBridge).
	Figure8 bool
	// Cycles[transport][sizeIndex] is the average op latency.
	Cycles map[Transport][]uint64
	Ops    int
}

// figure2Paper holds the paper's reported latencies for reference
// rendering, indexed like Cycles.
var figure2Paper = map[Transport][]uint64{
	TransportBaseline:  {2707, 3485, 5884, 14652},
	TransportDelay:     {4735, 5345, 7828, 16906},
	TransportIPC:       {7929, 8548, 11025, 20577},
	TransportIPCCross:  {18895, 19609, 22162, 32061},
	TransportSkyBridge: {3512, 4112, 6413, 15378},
}

// Figure2 measures the KV pipeline latency across payload sizes for the
// four non-SkyBridge transports (Figure 2); Figure8 adds SkyBridge.
func Figure2(ops int) *Figure2Result { return NewSession(nil).Figure2(ops) }

// Figure8 is Figure 2 plus the SkyBridge series.
func Figure8(ops int) *Figure2Result { return NewSession(nil).Figure8(ops) }

// Figure2 is the session form.
func (s *Session) Figure2(ops int) *Figure2Result { return s.runFigure2(ops, false) }

// Figure8 is the session form.
func (s *Session) Figure8(ops int) *Figure2Result { return s.runFigure2(ops, true) }

func (s *Session) runFigure2(ops int, withSB bool) *Figure2Result {
	trs := []Transport{TransportBaseline, TransportDelay, TransportIPC, TransportIPCCross}
	if withSB {
		trs = append(trs, TransportSkyBridge)
	}
	res := &Figure2Result{Figure8: withSB, Cycles: make(map[Transport][]uint64), Ops: ops}
	for _, tr := range trs {
		for _, size := range KVSizes {
			st := s.RunKV(tr, size, ops)
			res.Cycles[tr] = append(res.Cycles[tr], st.AvgCycles)
		}
	}
	return res
}

// Render formats the figure.
func (r *Figure2Result) Render() string {
	name := "Figure 2"
	if r.Figure8 {
		name = "Figure 8"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: KV store average op latency (cycles); paper values in parentheses\n", name)
	fmt.Fprintf(&b, "%-14s", "transport")
	for _, s := range KVSizes {
		fmt.Fprintf(&b, " %16s", fmt.Sprintf("%d-bytes", s))
	}
	fmt.Fprintln(&b)
	for _, tr := range []Transport{TransportBaseline, TransportDelay, TransportIPC, TransportIPCCross, TransportSkyBridge} {
		series, ok := r.Cycles[tr]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-14s", tr)
		for i, c := range series {
			fmt.Fprintf(&b, " %8d (%5d)", c, figure2Paper[tr][i])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
