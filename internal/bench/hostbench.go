package bench

import (
	"encoding/json"
	"io"
	"time"

	"skybridge/internal/isa"
)

// HostBenchResult records host wall-clock measurements of the experiment
// suite — the quantity the host-side fast paths optimize. Simulated cycle
// results are byte-identical across all cells by construction; only the
// wall-clock seconds differ.
type HostBenchResult struct {
	// Host environment the numbers were taken on.
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	// Experiments is the selector list the timings cover.
	Experiments []string `json:"experiments"`

	// Serial wall-clock with every host accelerator off vs. the PR 2
	// configuration (walk-memo + decode caches on, superblocks off).
	SerialCachesOffSec float64 `json:"serial_caches_off_sec"`
	SerialCachesOnSec  float64 `json:"serial_caches_on_sec"`
	// CacheSpeedup = off / on.
	CacheSpeedup float64 `json:"cache_speedup"`

	// Serial wall-clock with superblock (direct-threaded) execution and
	// block charging on top of the caches (-superblock on, the default).
	SerialSuperblockOnSec float64 `json:"serial_superblock_on_sec"`
	// SuperblockSpeedup = caches-on / superblock-on.
	SuperblockSpeedup float64 `json:"superblock_speedup"`

	// Parallel wall-clock with all accelerators on, and the worker count.
	Jobs            float64 `json:"jobs"`
	ParallelSec     float64 `json:"parallel_sec"`
	ParallelSpeedup float64 `json:"parallel_speedup"` // superblock-on serial / parallel

	// Micro is the interpreter-dispatch microbenchmark (superblock on vs
	// off) plus the formed-block length histogram.
	Micro *SuperblockMicro `json:"superblock_micro,omitempty"`
}

// SuperblockMicro is the in-process equivalent of BenchmarkSuperblockStep /
// BenchmarkSuperblockOffStep: host nanoseconds per simulated instruction
// through the interpreter hot loop (the 1..100 sum loop), with superblock
// direct-threaded dispatch on vs off (decode cache on in both), and the
// block-length histogram of the superblock-on run.
type SuperblockMicro struct {
	NsPerInstrOn  float64 `json:"ns_per_instr_on"`
	NsPerInstrOff float64 `json:"ns_per_instr_off"`
	// Speedup = off / on.
	Speedup float64 `json:"speedup"`

	// MeanBlockLen is the mean formed-block length in instructions;
	// BlockLenHist maps length -> blocks formed (nonzero buckets only,
	// ascending length).
	MeanBlockLen float64       `json:"mean_block_len"`
	BlockLenHist []SBLenBucket `json:"block_len_hist"`
}

// SBLenBucket is one nonzero bucket of the formed-block length histogram.
type SBLenBucket struct {
	Len    int    `json:"len"`
	Blocks uint64 `json:"blocks"`
}

// microLoopProgram assembles the sum-1..n loop the isa dispatch benchmarks
// use: a 3-instruction body re-executed n times, the decode cache's and
// superblock cache's bread and butter.
func microLoopProgram(n int32) []byte {
	var a isa.Asm
	a.MovRI32(isa.RAX, 0)
	a.MovRI32(isa.RCX, n)
	top := a.Len()
	a.AluRR(isa.ADD, isa.RAX, isa.RCX)
	a.AluRI8(isa.SUB, isa.RCX, 1)
	body := a.Len()
	a.Jcc(isa.CondNE, 0)
	rel := int32(top - (body + 6))
	b := a.Bytes()
	b[body+2] = byte(rel)
	b[body+3] = byte(rel >> 8)
	b[body+4] = byte(rel >> 16)
	b[body+5] = byte(rel >> 24)
	a.Hlt()
	return a.Bytes()
}

// runMicroLoop executes the loop program iters times with the superblock
// toggle pinned, returning ns per retired instruction and the interpreter
// (for its SBStats).
func runMicroLoop(iters int, superblock bool) (float64, *isa.Interp) {
	prevDec := isa.SetDecodeCache(true)
	prevSB := isa.SetSuperblock(superblock)
	defer func() { isa.SetDecodeCache(prevDec); isa.SetSuperblock(prevSB) }()
	ip := isa.NewInterp()
	ip.AddRegion(0x400000, microLoopProgram(100))
	var instrs int
	start := time.Now()
	for i := 0; i < iters; i++ {
		ip.RIP = 0x400000
		ip.Halted = false
		ip.Steps = 0
		if err := ip.Run(10000); err != nil {
			panic(err) // the loop program is fixed and known-good
		}
		instrs += ip.Steps
	}
	elapsed := time.Since(start)
	if instrs == 0 {
		return 0, ip
	}
	return float64(elapsed.Nanoseconds()) / float64(instrs), ip
}

// RunSuperblockMicro runs the dispatch microbenchmark (iters loop
// executions per arm; <=0 picks a default sized for stable timings).
func RunSuperblockMicro(iters int) *SuperblockMicro {
	if iters <= 0 {
		iters = 20000
	}
	// Warm both arms once so cache build cost is off the clock.
	runMicroLoop(iters/10+1, true)
	runMicroLoop(iters/10+1, false)
	nsOn, ip := runMicroLoop(iters, true)
	nsOff, _ := runMicroLoop(iters, false)
	m := &SuperblockMicro{
		NsPerInstrOn:  nsOn,
		NsPerInstrOff: nsOff,
		MeanBlockLen:  ip.SBStats.MeanLen(),
	}
	if nsOn > 0 {
		m.Speedup = nsOff / nsOn
	}
	for n, c := range ip.SBStats.LenHist {
		if c > 0 {
			m.BlockLenHist = append(m.BlockLenHist, SBLenBucket{Len: n, Blocks: c})
		}
	}
	return m
}

// WriteHostBench serializes r as the BENCH_host.json document.
func WriteHostBench(w io.Writer, r HostBenchResult) error {
	if r.SerialCachesOnSec > 0 {
		r.CacheSpeedup = r.SerialCachesOffSec / r.SerialCachesOnSec
	}
	if r.SerialSuperblockOnSec > 0 {
		r.SuperblockSpeedup = r.SerialCachesOnSec / r.SerialSuperblockOnSec
	}
	if r.ParallelSec > 0 {
		r.ParallelSpeedup = r.SerialSuperblockOnSec / r.ParallelSec
	}
	buf, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
