package bench

import (
	"encoding/json"
	"io"
)

// HostBenchResult records host wall-clock measurements of the experiment
// suite — the quantity the host-side fast paths optimize. Simulated cycle
// results are byte-identical across all four cells by construction; only
// the wall-clock seconds differ.
type HostBenchResult struct {
	// Host environment the numbers were taken on.
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	// Experiments is the selector list the timings cover.
	Experiments []string `json:"experiments"`

	// Serial wall-clock, host caches off vs. on (-hostcache, -j 1).
	SerialCachesOffSec float64 `json:"serial_caches_off_sec"`
	SerialCachesOnSec  float64 `json:"serial_caches_on_sec"`
	// CacheSpeedup = off / on.
	CacheSpeedup float64 `json:"cache_speedup"`

	// Parallel wall-clock with caches on, and the worker count used.
	Jobs            float64 `json:"jobs"`
	ParallelSec     float64 `json:"parallel_sec"`
	ParallelSpeedup float64 `json:"parallel_speedup"` // serial-on / parallel
}

// WriteHostBench serializes r as the BENCH_host.json document.
func WriteHostBench(w io.Writer, r HostBenchResult) error {
	if r.SerialCachesOnSec > 0 {
		r.CacheSpeedup = r.SerialCachesOffSec / r.SerialCachesOnSec
	}
	if r.ParallelSec > 0 {
		r.ParallelSpeedup = r.SerialCachesOnSec / r.ParallelSec
	}
	buf, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
