package bench

import (
	"bytes"
	"testing"

	"skybridge/internal/ycsb"
)

// TestSkewAdaptiveBeatsStaticOnHotspot runs a reduced hotspot cell pair
// and checks the mechanisms actually engaged: adaptive placement
// out-throughputs the frozen block placement, migrations and steals
// happened, and every wrong-epoch reject was matched by a client
// resubmit (no lost ops — the cell errors out on a missing completion).
func TestSkewAdaptiveBeatsStaticOnHotspot(t *testing.T) {
	r, err := Skew(SkewConfig{
		ServerCores: []int{2},
		Dists:       []string{ycsb.DistHotspot},
		TotalOps:    1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, ad := r.cell(ycsb.DistHotspot, "static", 2), r.cell(ycsb.DistHotspot, "adaptive", 2)
	if st == nil || ad == nil {
		t.Fatalf("missing cells: %+v", r.Cells)
	}
	if ad.OpsPerMcyc <= st.OpsPerMcyc {
		t.Errorf("adaptive %.1f op/Mc <= static %.1f", ad.OpsPerMcyc, st.OpsPerMcyc)
	}
	if ad.Migrations == 0 {
		t.Error("adaptive cell migrated nothing")
	}
	if ad.Steals == 0 || ad.StolenOps == 0 {
		t.Errorf("adaptive cell stole nothing (steals=%d stolen=%d)", ad.Steals, ad.StolenOps)
	}
	if st.Migrations != 0 || st.Steals != 0 || st.ScaleDowns != 0 {
		t.Errorf("static cell took control actions: %+v", st)
	}
	if ad.WrongEpoch != ad.Retries {
		t.Errorf("wrong-epoch rejects %d != client retries %d", ad.WrongEpoch, ad.Retries)
	}
}

// TestSkewTroughScalesDown checks the autoscaling cell: the paced middle
// segment parks at least one drain (gate cycles accrue) and the
// closed-loop tail wakes it back.
func TestSkewTroughScalesDown(t *testing.T) {
	r, err := Skew(SkewConfig{
		ServerCores: []int{2},
		Dists:       []string{"trough"},
		TotalOps:    1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	ad := r.cell("trough", "adaptive", 2)
	if ad == nil {
		t.Fatal("missing trough/adaptive cell")
	}
	if ad.ScaleDowns == 0 {
		t.Error("trough never scaled down")
	}
	if ad.ScaleUps == 0 {
		t.Error("trough never scaled back up")
	}
	if ad.GateParkedCycles == 0 {
		t.Error("no gate-parked cycles recorded")
	}
	if ad.BusyCycles == 0 || ad.BusyCycles >= uint64(ad.ServerCores)*ad.Makespan {
		t.Errorf("busy cycles %d not in (0, cores*makespan=%d)", ad.BusyCycles, uint64(ad.ServerCores)*ad.Makespan)
	}
}

// TestSkewDeterministicAcrossWorkers: the sweep's JSON document is
// byte-identical for any cell-worker count and across repeats (the
// CI determinism job asserts the same property on the full binary).
func TestSkewDeterministicAcrossWorkers(t *testing.T) {
	cfg := SkewConfig{ServerCores: []int{2}, TotalOps: 512}
	var outs [][]byte
	for _, jobs := range []int{1, 4, 1} {
		prev := SetJobs(jobs)
		r, err := Skew(cfg)
		SetJobs(prev)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := WriteSkewBench(&b, r); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, b.Bytes())
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Error("skew output differs between -j 1 and -j 4")
	}
	if !bytes.Equal(outs[0], outs[2]) {
		t.Error("skew output differs between repeat runs")
	}
}
