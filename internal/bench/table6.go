package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"skybridge/internal/isa"
	"skybridge/internal/rewrite"
)

// Table6Row is one program class of the scanning corpus.
type Table6Row struct {
	Program     string
	Apps        int
	AvgCodeKB   int
	Inadvertent int
	// PaperCount is what the paper found.
	PaperCount int
}

// Table6Result reproduces the inadvertent-VMFUNC scan.
type Table6Result struct {
	Rows []Table6Row
	// Scale divides the corpus code sizes (1 = paper scale).
	Scale int
}

// table6Corpus mirrors the paper's Table 6 program classes (app counts and
// average code sizes in KB). The binaries themselves cannot be shipped;
// the corpus is synthesized from the ISA generator at matching sizes —
// what the scan exercises is the probability of the 3-byte pattern
// arising in realistic instruction streams, which depends on volume, not
// provenance.
var table6Corpus = []Table6Row{
	{Program: "SPECCPU 2006 (31 Apps)", Apps: 31, AvgCodeKB: 424, PaperCount: 0},
	{Program: "PARSEC 3.0 (45 Apps)", Apps: 45, AvgCodeKB: 842, PaperCount: 0},
	{Program: "Nginx v1.6.2", Apps: 1, AvgCodeKB: 979, PaperCount: 0},
	{Program: "Apache v2.4.10", Apps: 1, AvgCodeKB: 666, PaperCount: 0},
	{Program: "Memcached v1.4.21", Apps: 1, AvgCodeKB: 121, PaperCount: 0},
	{Program: "Redis v2.8.17", Apps: 1, AvgCodeKB: 729, PaperCount: 0},
	{Program: "Vmlinux v4.14.29", Apps: 1, AvgCodeKB: 10498, PaperCount: 0},
	{Program: "Kernel Modules (2934)", Apps: 2934, AvgCodeKB: 15, PaperCount: 0},
	{Program: "Other Apps (2605)", Apps: 2605, AvgCodeKB: 216, PaperCount: 1},
}

// table6Seed derives the deterministic per-row generator seed. Rows draw
// from independent streams (rather than one generator threaded through the
// row loop) so the scan can run rows on parallel workers with results
// independent of the worker count.
func table6Seed(row int) int64 { return 0x7A7A + int64(row+1)*0x9E3779B9 }

// Table6 synthesizes the corpus at 1/scale of the paper's code volume and
// scans every program, one row per worker (SetJobs) with a per-row seeded
// generator. The "Other Apps" class plants the paper's single GIMP-2.8
// finding: a VMFUNC encoding inside the immediate of a long call
// instruction, which the rewriter classifies and neutralizes via the
// jump-like-instruction strategy.
func Table6(scale int) (*Table6Result, error) {
	if scale <= 0 {
		scale = 8
	}
	res := &Table6Result{Scale: scale, Rows: make([]Table6Row, len(table6Corpus))}
	errs := make([]error, len(table6Corpus))
	const dataBase, dataLen = 0x10_0000, 1 << 20

	scanRow := func(ri int) {
		class := table6Corpus[ri]
		row := class
		rng := rand.New(rand.NewSource(table6Seed(ri)))
		size := class.AvgCodeKB * 1024 / scale
		if size < 256 {
			size = 256
		}
		for app := 0; app < class.Apps; app++ {
			code := rewrite.RandomProgram(rng, size, dataBase, dataLen)
			if class.PaperCount > 0 && app == 0 {
				// The GIMP case: an inadvertent VMFUNC inside a call's
				// immediate (rel32 bytes 0F 01 D4 00).
				var a isa.Asm
				a.CallRel32(0x00d4010f)
				code = append(code, a.Bytes()...)
				code = append(code, 0xf4) // hlt
			}
			n, err := rewrite.CountInadvertent(code)
			if err != nil {
				errs[ri] = fmt.Errorf("bench: table6 scan %q app %d: %w", class.Program, app, err)
				return
			}
			row.Inadvertent += n
			// Any found occurrence must be rewritable.
			if n > 0 {
				rw := rewrite.New(0x40_0000)
				out, err := rw.Rewrite(code)
				if err != nil {
					errs[ri] = fmt.Errorf("bench: table6 rewrite %q: %w", class.Program, err)
					return
				}
				if len(rewrite.FindPattern(out.Code))+len(rewrite.FindPattern(out.RewritePage)) != 0 {
					errs[ri] = fmt.Errorf("bench: table6: pattern survived rewriting in %q", class.Program)
					return
				}
			}
		}
		res.Rows[ri] = row
	}

	jobs := cellJobs
	if jobs > len(table6Corpus) {
		jobs = len(table6Corpus)
	}
	if jobs <= 1 {
		for ri := range table6Corpus {
			scanRow(ri)
		}
	} else {
		idxCh := make(chan int)
		go func() {
			for ri := range table6Corpus {
				idxCh <- ri
			}
			close(idxCh)
		}()
		var wg sync.WaitGroup
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ri := range idxCh {
					scanRow(ri)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Render formats the table.
func (r *Table6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: inadvertent VMFUNC instructions (synthetic corpus at 1/%d of the paper's code volume)\n", r.Scale)
	fmt.Fprintf(&b, "%-28s %14s %10s %8s\n", "Program", "Avg Code (KB)", "found", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %14d %10d %8d\n", row.Program, row.AvgCodeKB/r.Scale, row.Inadvertent, row.PaperCount)
	}
	return b.String()
}
