package bench

import (
	"testing"

	"skybridge/internal/mk"
)

// within asserts got is inside [want*(1-tol), want*(1+tol)].
func within(t *testing.T, name string, got, want float64, tol float64) {
	t.Helper()
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Errorf("%s = %.0f, want %.0f +/- %.0f%%", name, got, want, tol*100)
	}
}

// TestTable2MatchesPaper checks the primitive-operation latencies.
func TestTable2MatchesPaper(t *testing.T) {
	r := Table2()
	vals := map[string]uint64{}
	for _, row := range r.Rows {
		vals[row.Name] = row.Cycles
	}
	if vals["write to CR3"] != 186 {
		t.Errorf("CR3 write = %d, want 186", vals["write to CR3"])
	}
	if vals["VMFUNC"] != 134 {
		t.Errorf("VMFUNC = %d, want 134", vals["VMFUNC"])
	}
	// KPTI makes the no-op syscall ~2.4x slower (paper: 431 vs 181; our
	// component model: 601 vs 229 — see EXPERIMENTS.md on the paper's own
	// component sum exceeding its syscall measurement).
	ratio := float64(vals["no-op system call w/ KPTI"]) / float64(vals["no-op system call w/o KPTI"])
	if ratio < 2.0 || ratio > 3.0 {
		t.Errorf("KPTI syscall ratio = %.2f, want ~2.4", ratio)
	}
}

// TestFigure7MatchesPaper checks every bar of the IPC breakdown against the
// paper's measurements.
func TestFigure7MatchesPaper(t *testing.T) {
	r := Figure7()
	got := map[string]uint64{}
	for _, row := range r.Rows {
		got[row.Name] = row.Total
	}
	within(t, "seL4 single-core", float64(got["seL4 single-core"]), 986, 0.05)
	within(t, "Fiasco single-core", float64(got["Fiasco.OC single-core"]), 2717, 0.05)
	within(t, "Zircon single-core", float64(got["Zircon single-core"]), 8157, 0.05)
	within(t, "seL4 cross-core", float64(got["seL4 cross-core"]), 6764, 0.08)
	within(t, "Fiasco cross-core", float64(got["Fiasco.OC cross-core"]), 8440, 0.08)
	within(t, "Zircon cross-core", float64(got["Zircon cross-core"]), 20099, 0.08)
	within(t, "SkyBridge", float64(got["seL4-SkyBridge"]), 396, 0.15)

	// Headline improvements (§6.3): "1.49x, 5.86x, and 19.6x" single-core,
	// i.e. latency ratios of ~2.49, ~6.86, ~20.6 over SkyBridge's 396.
	sb := float64(got["seL4-SkyBridge"])
	within(t, "seL4/SkyBridge ratio", float64(got["seL4 single-core"])/sb, 2.49, 0.15)
	within(t, "Fiasco/SkyBridge ratio", float64(got["Fiasco.OC single-core"])/sb, 6.86, 0.15)
	within(t, "Zircon/SkyBridge ratio", float64(got["Zircon single-core"])/sb, 20.6, 0.15)
	// Cross-core improvements: "16.08x, 20.31x and 49.76x".
	within(t, "seL4 cross ratio", float64(got["seL4 cross-core"])/sb, 17.1, 0.15)
	within(t, "Zircon cross ratio", float64(got["Zircon cross-core"])/sb, 50.8, 0.15)
}

// TestFigure8Shape checks the KV-store latency ordering at every payload
// size: Baseline < SkyBridge < Delay/IPC < IPC-CrossCore, gaps shrinking.
func TestFigure8Shape(t *testing.T) {
	r := Figure8(96)
	for i := range KVSizes {
		base := r.Cycles[TransportBaseline][i]
		sb := r.Cycles[TransportSkyBridge][i]
		delay := r.Cycles[TransportDelay][i]
		ipc := r.Cycles[TransportIPC][i]
		cross := r.Cycles[TransportIPCCross][i]
		if !(base < sb && sb < delay && delay < ipc && ipc < cross) {
			t.Errorf("size %d: ordering violated: base=%d sb=%d delay=%d ipc=%d cross=%d",
				KVSizes[i], base, sb, delay, ipc, cross)
		}
	}
	// Relative gap between IPC and Baseline shrinks as payloads grow.
	small := float64(r.Cycles[TransportIPC][0]) / float64(r.Cycles[TransportBaseline][0])
	large := float64(r.Cycles[TransportIPC][3]) / float64(r.Cycles[TransportBaseline][3])
	if large >= small {
		t.Errorf("IPC/Baseline ratio did not shrink with payload: %.2f -> %.2f", small, large)
	}
}

// TestTable1Shape checks that IPC pollutes processor structures far more
// than Baseline and Delay.
func TestTable1Shape(t *testing.T) {
	r := Table1()
	base, delay, ipc := r.Rows[0], r.Rows[1], r.Rows[2]
	if ipc.ICacheMisses <= delay.ICacheMisses || ipc.ICacheMisses <= base.ICacheMisses {
		t.Errorf("i-cache: ipc=%d delay=%d base=%d; IPC should pollute most",
			ipc.ICacheMisses, delay.ICacheMisses, base.ICacheMisses)
	}
	if ipc.DTLBMisses <= delay.DTLBMisses {
		t.Errorf("d-TLB: ipc=%d delay=%d; IPC should pollute most", ipc.DTLBMisses, delay.DTLBMisses)
	}
	if ipc.DCacheMisses <= base.DCacheMisses {
		t.Errorf("d-cache: ipc=%d base=%d", ipc.DCacheMisses, base.DCacheMisses)
	}
}

// TestTable4Shape checks the server-mode ordering for the write-heavy
// SQLite operations (SkyBridge > MT > ST) and that query benefits least.
func TestTable4Shape(t *testing.T) {
	r, err := Table4(Table4Config{Flavor: mk.SeL4, Clients: 2, OpsPerKind: 15, Preload: 60})
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[ServerMode]Table4Row{}
	for _, row := range r.Rows {
		byMode[row.Mode] = row
	}
	st, mt, sb := byMode[ModeST], byMode[ModeMT], byMode[ModeSB]
	for _, c := range []struct {
		name       string
		st, mt, sb float64
	}{
		{"insert", st.Insert, mt.Insert, sb.Insert},
		{"update", st.Update, mt.Update, sb.Update},
		{"delete", st.Delete, mt.Delete, sb.Delete},
	} {
		if !(c.sb > c.mt && c.mt > c.st) {
			t.Errorf("%s: want SkyBridge > MT > ST, got sb=%.0f mt=%.0f st=%.0f", c.name, c.sb, c.mt, c.st)
		}
	}
	// Query has the smallest relative SkyBridge gain (the DB page cache
	// absorbs reads, §6.5).
	queryGain := sb.Query / mt.Query
	insertGain := sb.Insert / mt.Insert
	if queryGain > insertGain {
		t.Errorf("query gain %.2fx exceeds insert gain %.2fx; paper says query benefits least", queryGain, insertGain)
	}
}

// TestYCSBShape checks Figures 9-11's ordering: SkyBridge on top at every
// thread count.
func TestYCSBShape(t *testing.T) {
	r, err := Figure9to11(YCSBConfig{Flavor: mk.SeL4, Threads: []int{1, 4}, Records: 150, Ops: 25})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Threads {
		st, mtv, sb := r.Tput[ModeST][i], r.Tput[ModeMT][i], r.Tput[ModeSB][i]
		if !(sb > mtv && mtv > st) {
			t.Errorf("threads=%d: want SkyBridge > MT > ST, got sb=%.0f mt=%.0f st=%.0f",
				r.Threads[i], sb, mtv, st)
		}
	}
}

// TestTable5Shape checks the virtualization-overhead claims: zero VM exits
// and near-native throughput under the Rootkernel.
func TestTable5Shape(t *testing.T) {
	r, err := Table5(150, 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.VMExits != 0 {
			t.Errorf("%d threads: %d VM exits, want 0", row.Threads, row.VMExits)
		}
		ratio := row.Rootkernel / row.Native
		if ratio < 0.93 || ratio > 1.07 {
			t.Errorf("%d threads: rootkernel/native = %.3f, want ~1.0", row.Threads, ratio)
		}
	}
}

// TestTable6Shape checks the corpus scan: exactly the one planted GIMP-like
// occurrence is found.
func TestTable6Shape(t *testing.T) {
	r, err := Table6(64)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, row := range r.Rows {
		total += row.Inadvertent
		if row.Program == "Other Apps (2605)" && row.Inadvertent != 1 {
			t.Errorf("Other Apps found %d, want 1 (the GIMP case)", row.Inadvertent)
		}
	}
	if total != 1 {
		t.Errorf("corpus total = %d inadvertent VMFUNCs, want 1", total)
	}
}

// TestAblationShapes checks every design-choice ablation favors the paper's
// choice.
func TestAblationShapes(t *testing.T) {
	if r := AblationEPTClone(); r.ValueA >= r.ValueB {
		t.Errorf("shallow clone (%f) not cheaper than deep (%f)", r.ValueA, r.ValueB)
	} else if r.ValueA != 4 {
		t.Errorf("shallow clone touches %.0f pages, want 4", r.ValueA)
	}
	for _, r := range AblationHugepageEPT() {
		if r.ValueA >= r.ValueB {
			t.Errorf("%s: hugepage (%f) not better than smallpage (%f)", r.Name, r.ValueA, r.ValueB)
		}
	}
	if r := AblationExitless(); r.ValueA >= r.ValueB {
		t.Errorf("exit-less (%f) not cheaper than trap-all (%f)", r.ValueA, r.ValueB)
	}
	if r := AblationKeyCheck(); r.ValueA >= r.ValueB {
		t.Errorf("user-mode key check (%f) not cheaper than kernel (%f)", r.ValueA, r.ValueB)
	}
	if r := AblationVPID(); r.ValueA >= r.ValueB {
		t.Errorf("VPID (%f) not cheaper than flushing (%f)", r.ValueA, r.ValueB)
	}
}
