package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"skybridge/internal/obs"
)

// The -report document: every call site's phase breakdown digested into
// SLO percentiles (p50/p90/p99/p99.9), plus the flight-recorder dumps
// that explain its tail. The report is byte-deterministic — entries keep
// site creation order (experiment declaration order under RunAll, any
// worker count), map keys serialize sorted, and the underlying histograms
// merge exactly.

// ReportEntry is one call site's digest.
type ReportEntry struct {
	Label string         `json:"label"`
	Calls uint64         `json:"calls"`
	E2E   obs.SLOSummary `json:"e2e"`
	// Phases maps phase name (obs.PhaseNames) to its distribution;
	// phases a site never exercises are absent.
	Phases map[string]obs.SLOSummary `json:"phases"`
	// Dumps are the site's flight-recorder outlier dumps (full causal
	// chains); SuppressedDumps counts triggers past the dump cap.
	Dumps           []obs.FlightDump `json:"dumps,omitempty"`
	SuppressedDumps uint64           `json:"suppressed_dumps,omitempty"`
}

// Report is the whole -report document.
type Report struct {
	// DroppedSpans is the tracer's total dropped-event count; nonzero
	// means the trace (and any flow chain in it) is incomplete.
	DroppedSpans uint64        `json:"dropped_spans"`
	Entries      []ReportEntry `json:"entries"`
}

// BuildReport digests the session's call sites in creation order; sites
// that observed no calls are skipped.
func (s *Session) BuildReport() *Report {
	rep := &Report{Entries: []ReportEntry{}}
	if s.Trace != nil {
		rep.DroppedSpans = s.Trace.TotalDropped()
	}
	for _, cs := range s.calls {
		sum := cs.Obs.Breakdown.Summary()
		if sum.Calls == 0 {
			continue
		}
		rep.Entries = append(rep.Entries, ReportEntry{
			Label:           cs.Label,
			Calls:           sum.Calls,
			E2E:             sum.E2E,
			Phases:          sum.Phases,
			Dumps:           cs.Obs.Flight.Dumps(),
			SuppressedDumps: cs.Obs.Flight.Suppressed(),
		})
	}
	return rep
}

// Render formats the human table: one block per call site, phases in
// taxonomy order, cycles throughout. The share column is the phase's
// fraction of total observed cycles (means over equal counts).
func (r *Report) Render() string {
	var b strings.Builder
	if r.DroppedSpans > 0 {
		fmt.Fprintf(&b, "WARNING: tracer dropped %d events; trace and flow chains are incomplete (raise the event cap)\n\n", r.DroppedSpans)
	}
	b.WriteString("Per-call phase breakdown (simulated cycles)\n")
	if len(r.Entries) == 0 {
		b.WriteString("no call records observed (sites: scaling, async experiments)\n")
		return b.String()
	}
	for i := range r.Entries {
		e := &r.Entries[i]
		fmt.Fprintf(&b, "\n%s  (%d calls)\n", e.Label, e.Calls)
		fmt.Fprintf(&b, "  %-16s %9s %8s %8s %8s %8s %8s %7s\n",
			"phase", "mean", "p50", "p90", "p99", "p99.9", "max", "share")
		row := func(name string, s obs.SLOSummary, share float64) {
			fmt.Fprintf(&b, "  %-16s %9.1f %8d %8d %8d %8d %8d %6.1f%%\n",
				name, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max, share)
		}
		row("e2e", e.E2E, 100)
		for _, name := range obs.PhaseNames() {
			ps, ok := e.Phases[name]
			if !ok {
				continue
			}
			share := 0.0
			if e.E2E.Mean > 0 {
				share = 100 * ps.Mean / e.E2E.Mean
			}
			row(name, ps, share)
		}
		if n := len(e.Dumps); n > 0 || e.SuppressedDumps > 0 {
			slowest := uint64(0)
			for _, d := range e.Dumps {
				if l := d.Trigger.End - d.Trigger.Start; l > slowest {
					slowest = l
				}
			}
			fmt.Fprintf(&b, "  flight: %d dump(s), slowest trigger %d cycles, %d suppressed\n",
				n, slowest, e.SuppressedDumps)
		}
	}
	return b.String()
}

// WriteJSON serializes the report (deterministic: ordered entries,
// sorted map keys).
func (r *Report) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
