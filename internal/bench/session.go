package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"skybridge/internal/obs"
)

// Record is one machine-readable experiment result: what ran, under which
// configuration, and what it measured. Every experiment in a Session emits
// at least one Record, so a driver (CI, a plotting script) can consume the
// whole evaluation without scraping the rendered tables.
type Record struct {
	Experiment string `json:"experiment"`
	// Config identifies the cell (flavor, transport, payload size, ...).
	Config map[string]string `json:"config,omitempty"`
	// CyclesPerOp is the headline per-operation cost in simulated cycles,
	// when the experiment has one.
	CyclesPerOp float64 `json:"cycles_per_op,omitempty"`
	// Values carries the experiment's other scalars (throughputs, miss
	// counts, paper reference values).
	Values map[string]float64 `json:"values,omitempty"`
	// Latency is the per-op latency distribution of the measurement
	// window, when the experiment observes individual operations.
	Latency *obs.Summary `json:"latency,omitempty"`
	// Breakdown is the per-call phase attribution of the measurement
	// window (where the cycles of one call went), when the experiment's
	// world publishes call records.
	Breakdown *obs.BreakdownSummary `json:"breakdown,omitempty"`
}

// Session runs experiments with shared observability state: an optional
// tracer (each world becomes one trace process) and a registry of per-op
// latency histograms, plus the accumulated Records. The zero-config entry
// points (Table2(), Figure7(), ...) are thin wrappers over a throwaway
// Session, so existing callers are unaffected.
type Session struct {
	// Trace, when non-nil, receives one trace process per world built by
	// the session's experiments.
	Trace *obs.Tracer
	// Reg holds the session-level per-op latency histograms, named
	// "<experiment>/<cell>".
	Reg *obs.Registry

	recs    []Record
	calls   []*CallSite
	callIdx map[string]int
}

// CallSite is one world's per-call attribution sink: a phase breakdown
// plus an always-on flight recorder, labelled like the world that feeds
// it. Sites are created by world() in experiment order, so the session's
// site list is deterministic for any worker count.
type CallSite struct {
	Label string
	Obs   *obs.CallObserver
}

// NewSession creates a session; trace may be nil (metrics only).
func NewSession(trace *obs.Tracer) *Session {
	return &Session{Trace: trace, Reg: obs.NewRegistry(), callIdx: map[string]int{}}
}

// world builds a World, attaching it to the session tracer under label and
// publishing its SkyBridge call records to the session's site for label.
func (s *Session) world(label string, cfg WorldConfig) *World {
	if s.Trace != nil {
		cfg.Trace = s.Trace
		cfg.Label = label
	}
	if cfg.SkyBridge {
		cfg.Calls = s.callSite(label).Obs
	}
	return MustWorld(cfg)
}

// callSite returns (creating if needed) the session call site for label.
func (s *Session) callSite(label string) *CallSite {
	if i, ok := s.callIdx[label]; ok {
		return s.calls[i]
	}
	cs := &CallSite{Label: label, Obs: &obs.CallObserver{
		Breakdown: obs.NewBreakdown(),
		Flight:    obs.NewFlightRecorder(obs.FlightConfig{}),
	}}
	s.callIdx[label] = len(s.calls)
	s.calls = append(s.calls, cs)
	return cs
}

// CallSites returns the session's call sites in creation order.
func (s *Session) CallSites() []*CallSite { return s.calls }

// breakdownOf digests a site's phase breakdown (nil if it saw no calls).
func (s *Session) breakdownOf(label string) *obs.BreakdownSummary {
	i, ok := s.callIdx[label]
	if !ok || s.calls[i].Obs.Breakdown.Calls() == 0 {
		return nil
	}
	sum := s.calls[i].Obs.Breakdown.Summary()
	return &sum
}

// hist returns the session histogram for one experiment cell.
func (s *Session) hist(name string) *obs.Histogram { return s.Reg.Histogram(name) }

// latencyOf digests a session histogram (nil if it saw no observations).
func (s *Session) latencyOf(name string) *obs.Summary {
	h := s.Reg.Histogram(name)
	if h.Count() == 0 {
		return nil
	}
	sum := h.Summary()
	return &sum
}

// TotalDropped surfaces the tracer's dropped-event count (0 when the
// session is untraced). Nonzero means trace spans and flow chains were
// discarded and the trace is not trustworthy.
func (s *Session) TotalDropped() uint64 {
	if s.Trace == nil {
		return 0
	}
	return s.Trace.TotalDropped()
}

// record appends one result record.
func (s *Session) record(r Record) { s.recs = append(s.recs, r) }

// Records returns the accumulated records in emission order.
func (s *Session) Records() []Record { return s.recs }

// MetricsOutput is the JSON document WriteMetrics emits.
type MetricsOutput struct {
	Records []Record `json:"records"`
	// Histograms are the session's per-op latency distributions.
	Histograms map[string]obs.Summary `json:"histograms,omitempty"`
}

// WriteMetrics serializes every record plus the latency histograms.
// Deterministic for identical runs: records keep emission order and map
// keys serialize sorted.
func (s *Session) WriteMetrics(w io.Writer) error {
	out := MetricsOutput{Records: s.recs}
	if len(s.recs) == 0 {
		out.Records = []Record{}
	}
	snap := s.Reg.Snapshot()
	if len(snap.Histograms) > 0 {
		out.Histograms = snap.Histograms
	}
	buf, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// --- session wrappers for the macro experiments ---
//
// These run the existing experiment functions and convert their result
// structs to Records; the micro/KV experiments (micro.go, kvbench.go) are
// instrumented natively and also feed per-op histograms.

// Table4 runs Table 4 for one flavor and records each mode's throughputs.
func (s *Session) Table4(cfg Table4Config) (*Table4Result, error) {
	r, err := Table4(cfg)
	if err != nil {
		return nil, err
	}
	for _, row := range r.Rows {
		s.record(Record{
			Experiment: "table4",
			Config:     map[string]string{"flavor": r.Flavor.String(), "mode": row.Mode.String()},
			Values: map[string]float64{
				"insert_ops_per_sec": row.Insert,
				"update_ops_per_sec": row.Update,
				"query_ops_per_sec":  row.Query,
				"delete_ops_per_sec": row.Delete,
			},
		})
	}
	return r, nil
}

// Figure9to11 runs the YCSB scalability figure and records each cell.
func (s *Session) Figure9to11(cfg YCSBConfig) (*YCSBResult, error) {
	r, err := Figure9to11(cfg)
	if err != nil {
		return nil, err
	}
	for _, mode := range []ServerMode{ModeST, ModeMT, ModeSB} {
		for i, th := range r.Threads {
			s.record(Record{
				Experiment: "ycsb",
				Config: map[string]string{
					"flavor": r.Flavor.String(), "mode": mode.String(),
					"threads": fmt.Sprintf("%d", th),
				},
				Values: map[string]float64{
					"ops_per_sec": r.Tput[mode][i],
					"vm_exits":    float64(r.VMExits[mode][i]),
				},
			})
		}
	}
	return r, nil
}

// Table5 runs the virtualization-overhead table and records each row.
func (s *Session) Table5(records, ops int) (*Table5Result, error) {
	r, err := Table5(records, ops)
	if err != nil {
		return nil, err
	}
	for _, row := range r.Rows {
		s.record(Record{
			Experiment: "table5",
			Config:     map[string]string{"threads": fmt.Sprintf("%d", row.Threads)},
			Values: map[string]float64{
				"native_ops_per_sec":     row.Native,
				"rootkernel_ops_per_sec": row.Rootkernel,
				"vm_exits":               float64(row.VMExits),
			},
		})
	}
	return r, nil
}

// Table6 runs the inadvertent-VMFUNC scan and records each program class.
func (s *Session) Table6(scale int) (*Table6Result, error) {
	r, err := Table6(scale)
	if err != nil {
		return nil, err
	}
	for _, row := range r.Rows {
		s.record(Record{
			Experiment: "table6",
			Config:     map[string]string{"program": row.Program, "scale": fmt.Sprintf("%d", r.Scale)},
			Values: map[string]float64{
				"inadvertent": float64(row.Inadvertent),
				"paper_count": float64(row.PaperCount),
			},
		})
	}
	return r, nil
}

// Ablations runs the design-choice ablations and records each comparison.
func (s *Session) Ablations() []*AblationResult {
	rs := Ablations()
	for _, r := range rs {
		s.record(Record{
			Experiment: "ablation",
			Config:     map[string]string{"name": r.Name, "unit": r.Unit},
			Values:     map[string]float64{r.ArmA: r.ValueA, r.ArmB: r.ValueB},
		})
	}
	return rs
}
