package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"skybridge/internal/core"
	"skybridge/internal/kv"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
	"skybridge/internal/svc"
	"skybridge/internal/ycsb"
)

// Adaptive placement under skew: a sharded KV store whose shards live in
// ONE server process behind several frontend drains (kv.NewStoreSet +
// kv.PlacedHandler), with a core.Director either frozen on the initial
// block placement ("static") or running the full adaptive stack
// ("adaptive"): load-aware shard migration under the epoch-stamped
// routing handoff, whole-tenant work stealing between sibling drains,
// and low/high-water core autoscaling (HLT park + IPI wake). Clients
// route every op through an svc.Router against the shared routing
// region, resubmitting the wrong-epoch rejects a migration strands in
// the old owner's ring.
//
// The request distributions are chosen to expose placement, not the
// store: keys partition onto shards by contiguous range, so a hotspot
// over the first quarter of the keyspace lands on the first drain's
// shards and a static placement serializes 90% of the load on one core.
// The sweep reports aggregate throughput per megacycle AND per busy
// megacycle (makespan minus gate-parked and idle-parked drain cycles),
// so scale-down shows up as efficiency instead of vanishing into idle
// cores.

// skewThink paces the trough cell's middle segment: one op per gap per
// client, low enough that the mean drain load falls under the low-water
// mark and the controller parks cores until the closed-loop tail
// returns.
const skewThink = 24_000

// SkewConfig parameterizes the adaptive-placement sweep.
type SkewConfig struct {
	Flavor mk.Flavor
	// ServerCores are the drain-core counts swept (default 4, 2). Every
	// dist runs on ServerCores[0]; the remaining counts run the hotspot
	// dist only (the headline adaptive-vs-static cell at each width).
	ServerCores []int
	// Dists are the load shapes swept (default uniform, hotspot,
	// shifting-hotspot, trough). "trough" is uniform keys with a paced
	// middle segment and a zipf-apportioned per-client op split — the
	// autoscaling cell.
	Dists []string
	// Clients is the number of routing client processes (default 8).
	Clients int
	// Records is the keyspace size, range-partitioned over 2*cores
	// shards (default 256).
	Records int
	// TotalOps is the aggregate operation count per cell (default 4096).
	TotalOps int
	// Window is each client's closed-loop in-flight cap (default 8).
	Window int
}

// SkewCell is one measured (dist, mode, serverCores) configuration.
type SkewCell struct {
	Dist        string `json:"dist"`
	Mode        string `json:"mode"`
	ServerCores int    `json:"server_cores"`
	Shards      int    `json:"shards"`
	Clients     int    `json:"clients"`
	Records     int    `json:"records"`
	TotalOps    int    `json:"total_ops"`

	OpsPerMcyc     float64 `json:"ops_per_mcyc"`
	BusyOpsPerMcyc float64 `json:"busy_ops_per_mcyc"`
	Makespan       uint64  `json:"makespan_cycles"`
	BusyCycles     uint64  `json:"busy_cycles"`

	// Placement-control accounting (core.Director).
	Migrations    uint64 `json:"migrations"`
	MigratedBytes uint64 `json:"migrated_bytes"`
	Steals        uint64 `json:"steals"`
	StolenOps     uint64 `json:"stolen_ops"`
	ScaleDowns    uint64 `json:"scale_downs"`
	ScaleUps      uint64 `json:"scale_ups"`
	HelpWakes     uint64 `json:"help_wakes"`
	ControlTicks  uint64 `json:"control_ticks"`
	WrongEpoch    uint64 `json:"wrong_epoch"`

	// Client-side routing accounting (svc.Router).
	Refreshes uint64 `json:"refreshes"`
	Retries   uint64 `json:"retries"`

	// Idle accounting behind BusyCycles.
	GateParkedCycles uint64 `json:"gate_parked_cycles"`
	IdleParkedCycles uint64 `json:"idle_parked_cycles"`

	// Per-quarter aggregate throughput (the shifting-hotspot dist moves
	// its hot window once per quarter; the minimum is the
	// across-the-jump throughput floor).
	PhaseOpsPerMcyc []float64 `json:"phase_ops_per_mcyc,omitempty"`
	MinPhaseTput    float64   `json:"min_phase_ops_per_mcyc,omitempty"`

	Latency *obs.Summary `json:"latency,omitempty"`
}

// SkewResult holds the sweep.
type SkewResult struct {
	ServerCores []int       `json:"server_cores"`
	Dists       []string    `json:"dists"`
	Clients     int         `json:"clients"`
	Records     int         `json:"records"`
	TotalOps    int         `json:"total_ops"`
	Cells       []*SkewCell `json:"cells"`
}

// Skew runs the sweep with catalog options.
func Skew(cfg SkewConfig) (*SkewResult, error) {
	return NewSession(nil).Skew(cfg)
}

// Skew is the session form: each cell feeds a latency histogram
// "skew/<dist>/<mode>/<cores>c" and emits one Record.
func (s *Session) Skew(cfg SkewConfig) (*SkewResult, error) {
	if len(cfg.ServerCores) == 0 {
		cfg.ServerCores = []int{4, 2}
	}
	if len(cfg.Dists) == 0 {
		cfg.Dists = []string{ycsb.DistUniform, ycsb.DistHotspot, ycsb.DistShifting, "trough"}
	}
	if cfg.Clients == 0 {
		cfg.Clients = 8
	}
	if cfg.Records == 0 {
		cfg.Records = 256
	}
	if cfg.TotalOps == 0 {
		cfg.TotalOps = 4096
	}
	if cfg.Window == 0 {
		cfg.Window = 8
	}
	res := &SkewResult{
		ServerCores: cfg.ServerCores, Dists: cfg.Dists,
		Clients: cfg.Clients, Records: cfg.Records, TotalOps: cfg.TotalOps,
	}
	type cellSpec struct {
		dist, mode string
		scores     int
	}
	var specs []cellSpec
	for i, sc := range cfg.ServerCores {
		for _, dist := range cfg.Dists {
			if i > 0 && dist != ycsb.DistHotspot {
				continue
			}
			for _, mode := range []string{"static", "adaptive"} {
				specs = append(specs, cellSpec{dist, mode, sc})
			}
		}
	}
	cells := make([]*SkewCell, len(specs))
	err := runCells(s, len(specs), func(sub *Session, i int) error {
		c, err := sub.runSkewCell(cfg, specs[i].dist, specs[i].mode, specs[i].scores)
		cells[i] = c
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Cells = cells
	return res, nil
}

// skewClientOps splits the cell's operations over clients: even for the
// steady dists, zipf(0.99)-apportioned for trough (the same
// largest-remainder split as the tenants sweep), so the paced segment
// has both near-idle clients and a hog to recover from.
func skewClientOps(dist string, clients, total int) []int {
	if dist == "trough" {
		return zipfApportion(total, clients, 0.99)
	}
	ops := make([]int, clients)
	for c := range ops {
		ops[c] = total / clients
	}
	return ops
}

// runSkewCell measures one (dist, mode, serverCores) configuration.
func (s *Session) runSkewCell(cfg SkewConfig, dist, mode string, serverCores int) (*SkewCell, error) {
	const clientCores = 4
	shards := 2 * serverCores
	label := fmt.Sprintf("skew/%s/%s/%dc", dist, mode, serverCores)
	world := s.world(label, WorldConfig{
		Flavor: cfg.Flavor, Cores: serverCores + clientCores, SkyBridge: true,
	})
	k := world.K
	h := s.hist(label)

	opsOf := skewClientOps(dist, cfg.Clients, cfg.TotalOps)
	totalOps := 0
	for _, o := range opsOf {
		totalOps += o
	}

	// Register phase: one process holds every shard store and every
	// frontend (stealing and migration need the shared address space);
	// keys range-partition onto shards so contiguous hot sets concentrate.
	perShard := (cfg.Records + shards - 1) / shards
	shardOf := func(key int64) int {
		return int(key * int64(shards) / int64(cfg.Records))
	}
	server := k.NewProcess("placed")
	stores := kv.NewStoreSet(server, shards, 2*perShard+64, 4+16+48)
	fes := make([]*svc.Frontend, serverCores)
	coreFEs := make([]*core.Frontend, serverCores)
	var d *core.Director
	var regErr error
	server.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		for j := int64(0); j < int64(cfg.Records); j++ {
			key := fmt.Sprintf("user%06d", j)
			val := fmt.Sprintf("value-%06d-%016d", j, 0)
			if err := stores[shardOf(j)].Preload(env, []byte(key), []byte(val)); err != nil {
				regErr = fmt.Errorf("preload %d: %w", j, err)
				return
			}
		}
		for f := 0; f < serverCores; f++ {
			f := f
			ph := kv.PlacedHandler(stores, func(shard int) (bool, uint64) {
				ok, ep := d.Owns(f, shard)
				if !ok {
					d.NoteReject()
				}
				return ok, ep
			}, func(shard int) { d.NoteOp(shard) })
			fe, err := svc.NewFrontend(world.SB, env, cfg.Clients+1, core.FrontendConfig{},
				func(env *mk.Env, tenant int, req svc.Req) svc.Resp {
					return ph(env, req)
				})
			if err != nil {
				regErr = fmt.Errorf("frontend %d: %w", f, err)
				return
			}
			fes[f] = fe
			coreFEs[f] = fe.FE
		}
		var err error
		d, err = world.SB.NewDirector(env, core.DirectorConfig{
			Shards:        shards,
			Static:        mode == "static",
			ControlPeriod: 20_000,
			LowWater:      1,
			HighWater:     6,
			Acquire: func(env *mk.Env, shard int) int {
				return stores[shard].MigrateWarm(env)
			},
			Obs: k.Mach.Obs,
		}, coreFEs)
		if err != nil {
			regErr = fmt.Errorf("director: %w", err)
		}
	})
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if regErr != nil {
		return nil, regErr
	}

	// Bind phase: each client opens a Router (one ring per drain plus the
	// read-only routing region).
	procs := make([]*mk.Process, cfg.Clients)
	routers := make([]*svc.Router, cfg.Clients)
	var bindErr error
	for c := 0; c < cfg.Clients; c++ {
		procs[c] = k.NewProcess(fmt.Sprintf("cl%02d", c))
	}
	for c := 0; c < cfg.Clients; c++ {
		c := c
		procs[c].Spawn("bind", k.Mach.Cores[serverCores+c%clientCores], func(env *mk.Env) {
			rt, err := svc.OpenRouter(env, d, fes, cfg.Window, 2+16+48)
			if err != nil {
				if bindErr == nil {
					bindErr = fmt.Errorf("client %d bind: %w", c, err)
				}
				return
			}
			routers[c] = rt
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if bindErr != nil {
		return nil, bindErr
	}

	// Measurement window.
	k.Mach.AlignClocks()
	k.Mach.ResetStats()

	var srvErr error
	for f, fe := range fes {
		f, fe := f, fe
		server.Spawn("drain", k.Mach.Cores[f], func(env *mk.Env) {
			if err := fe.FE.Serve(env); err != nil && srvErr == nil {
				srvErr = fmt.Errorf("drain %d: %w", f, err)
			}
		})
	}
	durations := make([]uint64, cfg.Clients)
	// phaseEnds[c][p] is when client c completed quarter p (the shifting
	// dist jumps its hot window once per quarter).
	phaseEnds := make([][4]uint64, cfg.Clients)
	starts := make([]uint64, cfg.Clients)
	remaining := cfg.Clients
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}
	for c := 0; c < cfg.Clients; c++ {
		c := c
		myOps := opsOf[c]
		procs[c].Spawn("drive", k.Mach.Cores[serverCores+c%clientCores], func(env *mk.Env) {
			defer func() {
				if remaining--; remaining == 0 {
					for _, fe := range fes {
						fe.FE.Close(env)
					}
				}
			}()
			rt := routers[c]
			w := ycsb.Workload{
				Name: "skew", RecordCount: cfg.Records, FieldLength: 16,
				ReadProp: 0.75, UpdateProp: 0.25,
				RequestDist: dist, HotDataFrac: 0.25, HotOpFrac: 0.9,
				HotShiftEvery: (myOps + 3) / 4,
			}
			if dist == "trough" {
				w.RequestDist = ycsb.DistUniform
			}
			gen := ycsb.NewGenerator(w, int64(1000*serverCores+c)*2654435761%1e9)

			type pendingOp struct {
				key int64
				put bool
				seq int
				t0  uint64
			}
			fifos := make([][]pendingOp, serverCores)
			var retryQ []pendingOp
			inflight, submitted, completed := 0, 0, 0

			// Deterministic stagger so client first-ops do not stampede.
			env.Sleep(uint64(c) * 2654435761 % 4096 * skewThink / 4096)
			starts[c] = env.Now()

			submitOne := func(po pendingOp) error {
				key := fmt.Sprintf("user%06d", po.key)
				var req svc.Req
				if po.put {
					val := fmt.Sprintf("value-%06d-%016d", po.key, po.seq)
					frame := make([]byte, 2+len(key)+len(val))
					frame[0], frame[1] = byte(len(key)), byte(len(key)>>8)
					copy(frame[2:], key)
					copy(frame[2+len(key):], val)
					req = svc.Req{Op: kv.OpPut, Data: frame}
				} else {
					req = svc.Req{Op: kv.OpGet, Data: []byte(key)}
				}
				slot, err := rt.Submit(env, shardOf(po.key), req)
				if err != nil {
					return err
				}
				fifos[slot] = append(fifos[slot], po)
				inflight++
				return rt.Conns[slot].Flush(env)
			}
			reapSlot := func(slot int) error {
				cs, err := rt.Conns[slot].Ring.Reap(env, 1)
				if err != nil {
					return fmt.Errorf("client %d reap: %w", c, err)
				}
				for _, comp := range cs {
					po := fifos[slot][0]
					fifos[slot] = fifos[slot][1:]
					inflight--
					switch comp.Regs[0] {
					case kv.StatusOK, kv.StatusNotFound:
						lat := env.Now() - po.t0
						h.Observe(lat)
						completed++
						for p := 0; p < 4; p++ {
							if completed == (p+1)*myOps/4 {
								phaseEnds[c][p] = env.Now()
							}
						}
					case kv.StatusWrongEpoch:
						rt.NoteRetry()
						retryQ = append(retryQ, po)
					default:
						return fmt.Errorf("client %d op %d status %d", c, po.seq, comp.Regs[0])
					}
				}
				return nil
			}
			// reapOne blocks on the lowest drain slot holding one of this
			// client's in-flight ops.
			reapOne := func() error {
				for slot := range fifos {
					if len(fifos[slot]) > 0 {
						return reapSlot(slot)
					}
				}
				return nil
			}
			submitRetrying := func(po pendingOp) error {
				for {
					err := submitOne(po)
					if err == nil {
						return nil
					}
					if !errors.Is(err, core.ErrRingFull) {
						return err
					}
					if err := reapOne(); err != nil {
						return err
					}
				}
			}
			for completed < myOps {
				switch {
				case len(retryQ) > 0:
					po := retryQ[0]
					retryQ = retryQ[1:]
					if err := submitRetrying(po); err != nil {
						fail(err)
						return
					}
				case submitted < myOps && inflight < cfg.Window:
					// The trough dist paces its middle segment open-loop:
					// the offered load collapses, the controller parks
					// cores, and the closed-loop tail brings them back.
					if dist == "trough" && submitted >= 2*myOps/5 && submitted < 3*myOps/5 {
						env.Sleep(skewThink)
					}
					op := gen.Next()
					po := pendingOp{key: op.Key, put: op.Kind == ycsb.OpUpdate, seq: submitted, t0: env.Now()}
					submitted++
					if err := submitRetrying(po); err != nil {
						fail(err)
						return
					}
				default:
					if err := reapOne(); err != nil {
						fail(err)
						return
					}
				}
			}
			durations[c] = env.Now() - starts[c]
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	if srvErr != nil {
		return nil, srvErr
	}

	cell := &SkewCell{
		Dist: dist, Mode: mode, ServerCores: serverCores, Shards: shards,
		Clients: cfg.Clients, Records: cfg.Records, TotalOps: totalOps,
		Migrations: d.Migrations, MigratedBytes: d.MigratedBytes,
		Steals: d.Steals, StolenOps: d.StolenOps,
		ScaleDowns: d.ScaleDowns, ScaleUps: d.ScaleUps,
		HelpWakes: d.HelpWakes, ControlTicks: d.ControlTicks,
		WrongEpoch: d.WrongEpoch,
	}
	for _, rt := range routers {
		cell.Refreshes += rt.Refreshes
		cell.Retries += rt.Retries
	}
	for _, g := range d.Gates() {
		cell.GateParkedCycles += g.ParkedCycles
	}
	for _, fe := range fes {
		cell.IdleParkedCycles += fe.FE.IdleParkedCycles
	}
	for _, dur := range durations {
		if dur > cell.Makespan {
			cell.Makespan = dur
		}
	}
	if cell.Makespan > 0 {
		cell.OpsPerMcyc = float64(totalOps) * 1e6 / float64(cell.Makespan)
		total := uint64(serverCores) * cell.Makespan
		idle := cell.GateParkedCycles + cell.IdleParkedCycles
		if idle > total {
			idle = total
		}
		cell.BusyCycles = total - idle
		if cell.BusyCycles > 0 {
			cell.BusyOpsPerMcyc = float64(totalOps) * 1e6 / float64(cell.BusyCycles)
		}
	}
	// Per-quarter throughput: quarter p spans the earliest start (quarter
	// 0) or the earliest previous-quarter completion to the latest
	// quarter-p completion across clients.
	cell.PhaseOpsPerMcyc = make([]float64, 4)
	for p := 0; p < 4; p++ {
		var begin, end uint64 = ^uint64(0), 0
		ops := 0
		for c := range phaseEnds {
			b := starts[c]
			if p > 0 {
				b = phaseEnds[c][p-1]
			}
			if b < begin {
				begin = b
			}
			if phaseEnds[c][p] > end {
				end = phaseEnds[c][p]
			}
			ops += (p+1)*opsOf[c]/4 - p*opsOf[c]/4
		}
		if end > begin {
			cell.PhaseOpsPerMcyc[p] = float64(ops) * 1e6 / float64(end-begin)
		}
		if p == 0 || cell.PhaseOpsPerMcyc[p] < cell.MinPhaseTput {
			cell.MinPhaseTput = cell.PhaseOpsPerMcyc[p]
		}
	}
	cell.Latency = s.latencyOf(label)

	values := map[string]float64{
		"ops_per_megacycle":      cell.OpsPerMcyc,
		"busy_ops_per_megacycle": cell.BusyOpsPerMcyc,
		"makespan_cycles":        float64(cell.Makespan),
		"busy_cycles":            float64(cell.BusyCycles),
		"ops_per_sec":            OpsPerSec(totalOps, cell.Makespan),
		"migrations":             float64(cell.Migrations),
		"migrated_bytes":         float64(cell.MigratedBytes),
		"steals":                 float64(cell.Steals),
		"stolen_ops":             float64(cell.StolenOps),
		"scale_downs":            float64(cell.ScaleDowns),
		"scale_ups":              float64(cell.ScaleUps),
		"help_wakes":             float64(cell.HelpWakes),
		"control_ticks":          float64(cell.ControlTicks),
		"wrong_epoch":            float64(cell.WrongEpoch),
		"refreshes":              float64(cell.Refreshes),
		"retries":                float64(cell.Retries),
		"gate_parked_cycles":     float64(cell.GateParkedCycles),
		"idle_parked_cycles":     float64(cell.IdleParkedCycles),
		"min_phase_ops_per_mcyc": cell.MinPhaseTput,
		"vmfuncs":                float64(k.Mach.Obs.SumSuffix(".vmfuncs")),
	}
	s.record(Record{
		Experiment: "skew",
		Config: map[string]string{
			"dist":         dist,
			"mode":         mode,
			"server_cores": fmt.Sprintf("%d", serverCores),
			"shards":       fmt.Sprintf("%d", shards),
			"clients":      fmt.Sprintf("%d", cfg.Clients),
			"records":      fmt.Sprintf("%d", cfg.Records),
			"ops":          fmt.Sprintf("%d", totalOps),
		},
		CyclesPerOp: float64(cell.Makespan) / float64(totalOps),
		Values:      values,
		Latency:     cell.Latency,
	})
	return cell, nil
}

// cell looks up (dist, mode, serverCores).
func (r *SkewResult) cell(dist, mode string, scores int) *SkewCell {
	for _, c := range r.Cells {
		if c.Dist == dist && c.Mode == mode && c.ServerCores == scores {
			return c
		}
	}
	return nil
}

// Render formats the sweep: static and adaptive throughput side by side
// with the adaptive speedup and the control actions that produced it.
func (r *SkewResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive placement under skew: %d clients, %d records, %d ops per cell\n",
		r.Clients, r.Records, r.TotalOps)
	fmt.Fprintf(&b, "%-17s %2s %9s %9s %6s %9s %5s %7s %5s %5s %7s\n",
		"dist", "c", "stat op/Mc", "adap op/Mc", "x", "busy op/Mc", "migr", "steals", "park", "wake", "rejects")
	for _, sc := range r.ServerCores {
		for _, dist := range r.Dists {
			st, ad := r.cell(dist, "static", sc), r.cell(dist, "adaptive", sc)
			if st == nil || ad == nil {
				continue
			}
			speedup := 0.0
			if st.OpsPerMcyc > 0 {
				speedup = ad.OpsPerMcyc / st.OpsPerMcyc
			}
			fmt.Fprintf(&b, "%-17s %2d %10.1f %10.1f %5.2fx %10.1f %5d %7d %5d %5d %7d\n",
				dist, sc, st.OpsPerMcyc, ad.OpsPerMcyc, speedup, ad.BusyOpsPerMcyc,
				ad.Migrations, ad.Steals, ad.ScaleDowns, ad.ScaleUps, ad.WrongEpoch)
		}
	}
	return b.String()
}

// WriteSkewBench serializes r as the BENCH_skew.json document.
func WriteSkewBench(w io.Writer, r *SkewResult) error {
	buf, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
