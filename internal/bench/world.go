// Package bench regenerates every table and figure of the paper's
// evaluation (§6): the IPC microbenchmarks and their cost breakdowns
// (Figure 7, Table 2), the KV-store pipeline (Table 1, Figures 2 and 8),
// the three-tier SQLite3 stack (Table 4, Figures 9-11, Table 5), the
// inadvertent-VMFUNC scan (Table 6), and the design-choice ablations
// called out in DESIGN.md.
//
// Every experiment builds a fresh simulated machine, runs deterministic
// workloads, and reports simulated-cycle results; ops/s figures use the
// testbed's 4 GHz nominal clock.
package bench

import (
	"fmt"

	"skybridge/internal/core"
	"skybridge/internal/hv"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
	"skybridge/internal/sim"
)

// World is one assembled experiment environment.
type World struct {
	Eng *sim.Engine
	K   *mk.Kernel
	RK  *hv.Rootkernel // nil when running natively
	SB  *core.SkyBridge
}

// WorldConfig selects the stack.
type WorldConfig struct {
	Flavor      mk.Flavor
	Cores       int
	MemBytes    uint64
	Virtualized bool // boot the Rootkernel
	SkyBridge   bool // implies Virtualized
	KPTI        bool
	HVConfig    hv.Config

	// Trace, when non-nil, attaches this world's machine to the tracer as
	// one trace process named Label (one track per core).
	Trace *obs.Tracer
	Label string

	// Calls, when non-nil, receives one CallRecord per completed SkyBridge
	// call (sb.Calls); costs one pointer test per call when nil.
	Calls *obs.CallObserver
}

// NewWorld assembles a machine, kernel, and (optionally) the Rootkernel
// and SkyBridge.
func NewWorld(cfg WorldConfig) (*World, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 4 << 30
	}
	mach := hw.NewMachine(hw.MachineConfig{Cores: cfg.Cores, MemBytes: cfg.MemBytes})
	if cfg.Trace != nil {
		label := cfg.Label
		if label == "" {
			label = "machine"
		}
		mach.AttachTrace(cfg.Trace, label)
	}
	eng := sim.NewEngine(mach)
	k := mk.New(mk.Config{Flavor: cfg.Flavor, KPTI: cfg.KPTI}, eng)
	w := &World{Eng: eng, K: k}
	if cfg.Virtualized || cfg.SkyBridge {
		rk, err := hv.Boot(k, cfg.HVConfig)
		if err != nil {
			return nil, err
		}
		w.RK = rk
	}
	if cfg.SkyBridge {
		w.SB = core.New(k, w.RK)
		w.SB.Calls = cfg.Calls
	}
	return w, nil
}

// MustWorld is NewWorld or panic (experiment setup errors are fatal).
func MustWorld(cfg WorldConfig) *World {
	w, err := NewWorld(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: world setup: %v", err))
	}
	return w
}

// OpsPerSec converts (operations, cycles) to a throughput at the nominal
// 4 GHz clock.
func OpsPerSec(ops int, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(ops) / (float64(cycles) / float64(hw.ClockHz))
}

// Transport names the five configurations of the KV pipeline.
type Transport int

// Transports.
const (
	TransportBaseline Transport = iota
	TransportDelay
	TransportIPC
	TransportIPCCross
	TransportSkyBridge
)

// String implements fmt.Stringer.
func (tr Transport) String() string {
	switch tr {
	case TransportBaseline:
		return "Baseline"
	case TransportDelay:
		return "Delay"
	case TransportIPC:
		return "IPC"
	case TransportIPCCross:
		return "IPC-CrossCore"
	case TransportSkyBridge:
		return "SkyBridge"
	default:
		return fmt.Sprintf("Transport(%d)", int(tr))
	}
}

// DirectIPCCost is the paper's measured direct cost of one IPC (493
// cycles), used by the Delay configuration (§2.1.2).
const DirectIPCCost = 493
