package bench

import (
	"bytes"
	"testing"
)

// TestTenantOps: zipfian redistribution preserves the total, floors every
// tenant at one op, and concentrates load on the head ranks.
func TestTenantOps(t *testing.T) {
	uniform := tenantOps("uniform", 16, 8)
	for tt, o := range uniform {
		if o != 8 {
			t.Fatalf("uniform tenant %d ops = %d, want 8", tt, o)
		}
	}
	zipf := tenantOps("zipfian", 16, 8)
	sum := 0
	for tt, o := range zipf {
		if o < 1 {
			t.Fatalf("zipfian tenant %d ops = %d, want >= 1", tt, o)
		}
		sum += o
	}
	if sum != 16*8 {
		t.Fatalf("zipfian total = %d, want %d", sum, 16*8)
	}
	if zipf[0] <= 2*8 {
		t.Fatalf("zipfian head tenant ops = %d, want > 2x uniform share", zipf[0])
	}
	if zipf[15] >= zipf[0] {
		t.Fatalf("zipfian tail ops %d not below head %d", zipf[15], zipf[0])
	}
}

// smallTenantsCfg keeps the sweep test-sized while still covering both
// distributions, two populations, and two server-core counts.
func smallTenantsCfg() TenantsConfig {
	return TenantsConfig{
		TenantCounts: []int{8, 24},
		ServerCores:  []int{1, 2},
		Dists:        []string{"uniform", "zipfian"},
		OpsPerTenant: 4,
	}
}

// TestTenantsSweep: the small sweep completes, every cell measured real
// work (ring ops cover every operation, the directory swept, cold p99
// observed), and aggregate throughput grows with the tenant count at
// fixed cores — the open-loop population is the load generator.
func TestTenantsSweep(t *testing.T) {
	s := NewSession(nil)
	r, err := s.Tenants(smallTenantsCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.TotalOps == 0 || c.OpsPerMcyc <= 0 || c.Makespan == 0 {
			t.Errorf("%s/%dt/%dc: empty cell %+v", c.Dist, c.Tenants, c.ServerCores, c)
		}
		if c.RingOps < uint64(c.TotalOps) {
			t.Errorf("%s/%dt/%dc: ring ops %d < total ops %d", c.Dist, c.Tenants, c.ServerCores, c.RingOps, c.TotalOps)
		}
		if c.Sweeps == 0 || c.TenantsVisited == 0 {
			t.Errorf("%s/%dt/%dc: directory never swept (%d sweeps, %d visited)", c.Dist, c.Tenants, c.ServerCores, c.Sweeps, c.TenantsVisited)
		}
		if c.ColdP99 == 0 {
			t.Errorf("%s/%dt/%dc: no cold-class latency recorded", c.Dist, c.Tenants, c.ServerCores)
		}
		if c.Dist == "zipfian" && c.HotTenants == 0 {
			t.Errorf("zipfian %dt/%dc: no hot tenants classified", c.Tenants, c.ServerCores)
		}
	}
	for _, dist := range r.Dists {
		for _, sc := range r.ServerCores {
			lo, hi := r.cell(dist, 8, sc), r.cell(dist, 24, sc)
			if lo == nil || hi == nil {
				t.Fatalf("missing cells for %s/%dc", dist, sc)
			}
			if hi.OpsPerMcyc <= lo.OpsPerMcyc {
				t.Errorf("%s/%dc: op/Mc did not grow with tenants (8t %.1f, 24t %.1f)",
					dist, sc, lo.OpsPerMcyc, hi.OpsPerMcyc)
			}
		}
	}
	if r.Render() == "" {
		t.Error("sweep rendered empty")
	}
}

// TestTenantsDeterministic: the serialized sweep is byte-identical across
// repeated runs and across cell worker counts, per-cell parallelism
// included.
func TestTenantsDeterministic(t *testing.T) {
	out := func() []byte {
		r, err := NewSession(nil).Tenants(smallTenantsCfg())
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := WriteTenantsBench(&b, r); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	serial := out()
	again := out()
	if !bytes.Equal(serial, again) {
		t.Fatal("repeated serial runs differ")
	}
	prev := SetJobs(4)
	defer SetJobs(prev)
	parallel := out()
	if !bytes.Equal(serial, parallel) {
		t.Fatal("-j 4 run differs from serial run")
	}
}
