package bench

import (
	"math"
	"sort"
)

// zipfApportion splits total operations over n slots by zipf(theta)
// rank weight with largest-remainder rounding: slot 0 is the hog and
// the tail stays warm at a one-op floor. Ties break on slot ID and an
// over-assignment from the floor comes off the head slots, so the
// split is deterministic and always sums to total (when total >= n).
// Shared by the tenants sweep (per-tenant op counts) and the skew
// sweep (per-client op counts in the low-load trough cells).
func zipfApportion(total, n int, theta float64) []int {
	ops := make([]int, n)
	weights := make([]float64, n)
	sum := 0.0
	for t := range weights {
		weights[t] = 1 / math.Pow(float64(t+1), theta)
		sum += weights[t]
	}
	assigned := 0
	fracs := make([]float64, n)
	for t := range ops {
		share := float64(total) * weights[t] / sum
		ops[t] = int(share)
		if ops[t] < 1 {
			ops[t] = 1
		}
		fracs[t] = share - math.Floor(share)
		assigned += ops[t]
	}
	order := make([]int, n)
	for t := range order {
		order[t] = t
	}
	sort.SliceStable(order, func(a, b int) bool { return fracs[order[a]] > fracs[order[b]] })
	for i := 0; assigned < total; i = (i + 1) % n {
		ops[order[i]]++
		assigned++
	}
	for t := 0; assigned > total && t < n; t = (t + 1) % n {
		if ops[t] > 1 {
			ops[t]--
			assigned--
		}
	}
	return ops
}
