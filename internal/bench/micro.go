package bench

import (
	"fmt"
	"sort"
	"strings"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/svc"
)

// --- Table 2: latency of instructions and operations ---

// Table2Row is one measured operation.
type Table2Row struct {
	Name   string
	Cycles uint64
	// Paper is the value the paper reports on its Skylake testbed.
	Paper uint64
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 measures the primitive operations through the hardware model.
func Table2() *Table2Result { return NewSession(nil).Table2() }

// Table2 measures the primitive operations through the hardware model,
// recording one Record and one per-round latency histogram per row.
func (s *Session) Table2() *Table2Result {
	res := &Table2Result{}

	addRow := func(name string, cycles, paper uint64) {
		res.Rows = append(res.Rows, Table2Row{Name: name, Cycles: cycles, Paper: paper})
		s.record(Record{
			Experiment:  "table2",
			Config:      map[string]string{"op": name},
			CyclesPerOp: float64(cycles),
			Values:      map[string]float64{"paper_cycles": float64(paper)},
			Latency:     s.latencyOf("table2/" + name),
		})
	}

	measure := func(name string, paper uint64, kpti bool, op func(cpu *hw.CPU, k *mk.Kernel)) {
		w := s.world("table2/"+name, WorldConfig{Flavor: mk.SeL4, KPTI: kpti})
		h := s.hist("table2/" + name)
		var cycles uint64
		p := w.K.NewProcess("m")
		p.Spawn("m", w.K.Mach.Cores[0], func(env *mk.Env) {
			cpu := env.T.Core
			const rounds = 1000
			// Warm up.
			op(cpu, w.K)
			start := cpu.Clock
			for i := 0; i < rounds; i++ {
				t := cpu.Clock
				op(cpu, w.K)
				h.Observe(cpu.Clock - t)
			}
			cycles = (cpu.Clock - start) / rounds
		})
		if err := w.Eng.Run(); err != nil {
			panic(err)
		}
		addRow(name, cycles, paper)
	}

	measure("write to CR3", 186, false, func(cpu *hw.CPU, k *mk.Kernel) {
		cpu.Mode = hw.ModeKernel
		cpu.WriteCR3(cpu.CR3, cpu.PCID)
	})
	nullSyscall := func(k *mk.Kernel) func(cpu *hw.CPU, _ *mk.Kernel) {
		return func(cpu *hw.CPU, _ *mk.Kernel) {
			cpu.Syscall()
			cpu.Swapgs()
			if k.Cfg.KPTI {
				cpu.WriteCR3(cpu.CR3, cpu.PCID)
			}
			cpu.Tick(20) // dispatch + return setup
			if k.Cfg.KPTI {
				cpu.WriteCR3(cpu.CR3, cpu.PCID)
			}
			cpu.Swapgs()
			cpu.Sysret()
		}
	}
	// The no-op syscall body depends on the world's kernel config, so it
	// needs its own measure variant that builds the op after the world.
	measureSyscall := func(name string, paper uint64, kpti bool) {
		w := s.world("table2/"+name, WorldConfig{Flavor: mk.SeL4, KPTI: kpti})
		h := s.hist("table2/" + name)
		var cycles uint64
		op := nullSyscall(w.K)
		p := w.K.NewProcess("m")
		p.Spawn("m", w.K.Mach.Cores[0], func(env *mk.Env) {
			cpu := env.T.Core
			const rounds = 1000
			op(cpu, w.K)
			start := cpu.Clock
			for i := 0; i < rounds; i++ {
				t := cpu.Clock
				op(cpu, w.K)
				h.Observe(cpu.Clock - t)
			}
			cycles = (cpu.Clock - start) / rounds
		})
		if err := w.Eng.Run(); err != nil {
			panic(err)
		}
		addRow(name, cycles, paper)
	}
	measureSyscall("no-op system call w/ KPTI", 431, true)
	measureSyscall("no-op system call w/o KPTI", 181, false)

	// VMFUNC requires the virtualized world.
	{
		w := s.world("table2/VMFUNC", WorldConfig{Flavor: mk.SeL4, SkyBridge: true})
		h := s.hist("table2/VMFUNC")
		server := w.K.NewProcess("server")
		client := w.K.NewProcess("client")
		var id int
		server.Spawn("reg", w.K.Mach.Cores[0], func(env *mk.Env) {
			id, _ = w.SB.RegisterServer(env, 2, 0, nil)
		})
		if err := w.Eng.Run(); err != nil {
			panic(err)
		}
		var cycles uint64
		client.Spawn("m", w.K.Mach.Cores[0], func(env *mk.Env) {
			if _, err := w.SB.RegisterClient(env, id); err != nil {
				panic(err)
			}
			cpu := env.T.Core
			const rounds = 1000
			cpu.VMFunc(0, id)
			cpu.VMFunc(0, 0)
			start := cpu.Clock
			for i := 0; i < rounds; i++ {
				t := cpu.Clock
				cpu.VMFunc(0, id)
				h.Observe(cpu.Clock - t)
				t = cpu.Clock
				cpu.VMFunc(0, 0)
				h.Observe(cpu.Clock - t)
			}
			cycles = (cpu.Clock - start) / (2 * rounds)
		})
		if err := w.Eng.Run(); err != nil {
			panic(err)
		}
		addRow("VMFUNC", cycles, 134)
	}

	// Full direct server call (the paper's 396-cycle SkyBridge round trip);
	// not a Table 2 row in the paper, but the natural companion measurement
	// and the one a trace of this experiment shows as skybridge.call spans.
	{
		cycles, _ := s.measureSkyBridge(mk.SeL4, "table2/direct server call")
		addRow("direct server call", cycles, 396)
	}
	return res
}

// Render formats the table.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: latency of instructions and operations (cycles)\n")
	fmt.Fprintf(&b, "%-32s %10s %10s\n", "Instruction or Operation", "measured", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-32s %10d %10d\n", row.Name, row.Cycles, row.Paper)
	}
	return b.String()
}

// --- Figure 7: IPC round-trip breakdowns ---

// Figure7Row is one bar of Figure 7.
type Figure7Row struct {
	Name       string
	Total      uint64
	Components map[string]float64
	// Paper is the round-trip the paper reports.
	Paper uint64
}

// Figure7Result reproduces Figure 7.
type Figure7Result struct {
	Rows []Figure7Row
}

// measureEchoIPC runs a warm same- or cross-core empty-message echo and
// returns (cycles per round trip, per-round component breakdown). Each
// round trip is observed into the session histogram named label.
func (s *Session) measureEchoIPC(flavor mk.Flavor, sameCore bool, virtualized bool, label string) (uint64, map[string]float64) {
	w := s.world(label, WorldConfig{Flavor: flavor, Virtualized: virtualized})
	h := s.hist(label)
	client := w.K.NewProcess("client")
	server := w.K.NewProcess("server")
	ep := w.K.NewEndpoint("echo")
	client.Grant(ep)

	serverCore := w.K.Mach.Cores[0]
	if !sameCore {
		serverCore = w.K.Mach.Cores[1]
	}
	srvBuf := server.Alloc(hw.PageSize)
	server.Spawn("srv", serverCore, func(env *mk.Env) {
		w.K.Serve(env, ep, srvBuf, func(env *mk.Env, req mk.Msg) mk.Msg {
			return mk.Msg{Regs: [4]uint64{req.Regs[0]}}
		})
	})
	var cycles uint64
	client.Spawn("cli", w.K.Mach.Cores[0], func(env *mk.Env) {
		for i := 0; i < 64; i++ {
			env.Call(ep, mk.Msg{}, 0)
		}
		w.K.BD = mk.NewBreakdown()
		const rounds = 256
		start := env.Now()
		for i := 0; i < rounds; i++ {
			t := env.Now()
			env.Call(ep, mk.Msg{}, 0)
			h.Observe(env.Now() - t)
			w.K.BD.Rounds++
		}
		cycles = (env.Now() - start) / rounds
		ep.Close()
	})
	if err := w.Eng.Run(); err != nil {
		panic(err)
	}
	return cycles, w.K.BD.PerRound()
}

// measureSkyBridge runs the warm direct-call microbenchmark, observing each
// round trip into the session histogram named label.
func (s *Session) measureSkyBridge(flavor mk.Flavor, label string) (uint64, map[string]float64) {
	w := s.world(label, WorldConfig{Flavor: flavor, SkyBridge: true})
	h := s.hist(label)
	server := w.K.NewProcess("server")
	client := w.K.NewProcess("client")
	var id int
	server.Spawn("reg", w.K.Mach.Cores[0], func(env *mk.Env) {
		id, _ = svc.RegisterSkyBridgeServer(w.SB, env, 4, func(env *mk.Env, req svc.Req) svc.Resp {
			return svc.Resp{}
		})
	})
	if err := w.Eng.Run(); err != nil {
		panic(err)
	}
	var cycles, vmfuncs uint64
	client.Spawn("cli", w.K.Mach.Cores[0], func(env *mk.Env) {
		conn, err := svc.NewSkyBridge(w.SB, env, id)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 64; i++ {
			conn.Invoke(env, svc.Req{})
		}
		cpu := env.T.Core
		const rounds = 256
		startVM := cpu.Counters.VMFuncs
		start := env.Now()
		for i := 0; i < rounds; i++ {
			t := env.Now()
			conn.Invoke(env, svc.Req{})
			h.Observe(env.Now() - t)
		}
		cycles = (env.Now() - start) / rounds
		vmfuncs = (cpu.Counters.VMFuncs - startVM) / rounds
	})
	if err := w.Eng.Run(); err != nil {
		panic(err)
	}
	vm := float64(vmfuncs) * float64(hw.CostVMFUNC)
	return cycles, map[string]float64{
		mk.CatVMFUNC: vm,
		mk.CatOther:  float64(cycles) - vm,
	}
}

// Figure7 regenerates the IPC breakdown chart.
func Figure7() *Figure7Result { return NewSession(nil).Figure7() }

// Figure7 regenerates the IPC breakdown chart, recording one Record and one
// per-round-trip latency histogram per configuration.
func (s *Session) Figure7() *Figure7Result {
	res := &Figure7Result{}
	add := func(name string, total uint64, comps map[string]float64, paper uint64) {
		res.Rows = append(res.Rows, Figure7Row{Name: name, Total: total, Components: comps, Paper: paper})
		vals := map[string]float64{"paper_cycles": float64(paper)}
		for k, v := range comps {
			vals["component/"+k] = v
		}
		s.record(Record{
			Experiment:  "fig7",
			Config:      map[string]string{"configuration": name},
			CyclesPerOp: float64(total),
			Values:      vals,
			Latency:     s.latencyOf("fig7/" + name),
		})
	}
	for _, fl := range []mk.Flavor{mk.SeL4, mk.Fiasco, mk.Zircon} {
		name := fl.String() + "-SkyBridge"
		c, comps := s.measureSkyBridge(fl, "fig7/"+name)
		add(name, c, comps, 396)
	}
	papers := map[string][2]uint64{
		"seL4":      {986, 6764},
		"Fiasco.OC": {2717, 8440},
		"Zircon":    {8157, 20099},
	}
	for _, fl := range []mk.Flavor{mk.SeL4, mk.Fiasco, mk.Zircon} {
		name := fl.String() + " single-core"
		c, comps := s.measureEchoIPC(fl, true, false, "fig7/"+name)
		add(name, c, comps, papers[fl.String()][0])
		name = fl.String() + " cross-core"
		c, comps = s.measureEchoIPC(fl, false, false, "fig7/"+name)
		add(name, c, comps, papers[fl.String()][1])
	}
	return res
}

// Render formats the figure as a table of stacked components.
func (r *Figure7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: synchronous IPC round-trip breakdown (cycles)\n")
	fmt.Fprintf(&b, "%-24s %9s %9s   components\n", "configuration", "measured", "paper")
	for _, row := range r.Rows {
		var keys []string
		for k := range row.Components {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			if row.Components[k] >= 0.5 {
				parts = append(parts, fmt.Sprintf("%s=%.0f", k, row.Components[k]))
			}
		}
		fmt.Fprintf(&b, "%-24s %9d %9d   %s\n", row.Name, row.Total, row.Paper, strings.Join(parts, " "))
	}
	return b.String()
}
