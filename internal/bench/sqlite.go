package bench

import (
	"fmt"
	"strings"

	"skybridge/internal/blockdev"
	"skybridge/internal/db"
	"skybridge/internal/fs"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
	"skybridge/internal/svc"
	"skybridge/internal/ycsb"
)

// ServerMode is the server threading configuration of §6.5.
type ServerMode int

// Server modes.
const (
	// ModeST: one working thread per server, shared by all clients
	// (cross-core IPC for most of them).
	ModeST ServerMode = iota
	// ModeMT: one server working thread pinned to every core; clients
	// talk to their local thread over the fastpath.
	ModeMT
	// ModeSB: servers are SkyBridge servers; clients make direct calls.
	ModeSB
)

// String implements fmt.Stringer.
func (m ServerMode) String() string {
	switch m {
	case ModeST:
		return "ST-Server"
	case ModeMT:
		return "MT-Server"
	case ModeSB:
		return "SkyBridge"
	default:
		return fmt.Sprintf("ServerMode(%d)", int(m))
	}
}

// DBStack is an assembled three-tier pipeline: client DBs -> FS server ->
// block-device server.
type DBStack struct {
	W         *World
	FS        *fs.FS
	Dev       *blockdev.Device
	fsID      int // SkyBridge server id (ModeSB)
	fsAsyncID int // second FS registration for async rings (0 = none)
	mode      ServerMode
	eps       []*mk.Endpoint
	fsProc    *mk.Process
	devProc   *mk.Process
}

// BuildDBStack boots the servers for the given mode with the
// paper-faithful FS configuration (big lock, synchronous device IO). Must
// be called before clients spawn; it runs the engine to complete
// registration/service startup, leaving server loops parked.
func BuildDBStack(w *World, mode ServerMode) (*DBStack, error) {
	return BuildDBStackCfg(w, mode, fs.Config{}, false)
}

// BuildDBStackCfg is BuildDBStack with an explicit FS lock/IO
// configuration. With asyncFS (ModeSB only) the FS handler registers a
// second SkyBridge server dedicated to async rings: a ring occupies its
// connection's shared buffer, so clients keep a separate sync connection
// for control-path calls (open, fsync, journal writes).
func BuildDBStackCfg(w *World, mode ServerMode, fcfg fs.Config, asyncFS bool) (*DBStack, error) {
	k := w.K
	st := &DBStack{W: w, mode: mode}
	st.devProc = k.NewProcess("blockdev")
	st.fsProc = k.NewProcess("fs")
	st.Dev = blockdev.New(st.devProc, 32768) // 128 MiB RAM disk

	switch mode {
	case ModeST, ModeMT:
		devEP := k.NewEndpoint("dev")
		fsEP := k.NewEndpoint("fs")
		st.eps = []*mk.Endpoint{devEP, fsEP}
		// Device server threads.
		devCores := []int{1 % len(k.Mach.Cores)}
		fsCores := []int{0}
		if mode == ModeMT {
			devCores = devCores[:0]
			fsCores = fsCores[:0]
			for i := range k.Mach.Cores {
				devCores = append(devCores, i)
				fsCores = append(fsCores, i)
			}
		}
		for _, c := range devCores {
			st.devProc.Spawn("srv", k.Mach.Cores[c], func(env *mk.Env) {
				svc.ServeIPC(env, devEP, st.Dev.Handler())
			})
		}
		st.FS = fs.NewFS(st.fsProc, svc.NewIPC(st.fsProc, devEP), fcfg)
		// Thread 0 formats the file system; the other server threads park
		// until it is mounted.
		ready := false
		var readyQ sim.WaitQueue
		for i, c := range fsCores {
			first := i == 0
			st.fsProc.Spawn("srv", k.Mach.Cores[c], func(env *mk.Env) {
				if first {
					if err := st.FS.Mkfs(env, st.Dev.Blocks(), 256); err != nil {
						panic(err)
					}
					ready = true
					for readyQ.Len() > 0 {
						readyQ.WakeOne(w.Eng, env.Now(), nil)
					}
				} else if !ready {
					readyQ.Wait(env.T)
				}
				svc.ServeIPC(env, fsEP, st.FS.Handler())
			})
		}

	case ModeSB:
		sb := w.SB
		var devID int
		st.devProc.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
			var err error
			devID, err = svc.RegisterSkyBridgeServer(sb, env, 64, st.Dev.Handler())
			if err != nil {
				panic(err)
			}
		})
		if err := w.Eng.Run(); err != nil {
			return nil, err
		}
		st.fsProc.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
			devConn, err := svc.NewSkyBridge(sb, env, devID)
			if err != nil {
				panic(err)
			}
			st.FS = fs.NewFS(st.fsProc, devConn, fcfg)
			if err := st.FS.Mkfs(env, st.Dev.Blocks(), 256); err != nil {
				panic(err)
			}
			st.fsID, err = svc.RegisterSkyBridgeServer(sb, env, 64, st.FS.Handler())
			if err != nil {
				panic(err)
			}
			if asyncFS {
				st.fsAsyncID, err = svc.RegisterSkyBridgeServer(sb, env, 64, st.FS.Handler())
				if err != nil {
					panic(err)
				}
			}
		})
		if err := w.Eng.Run(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// FSAsyncConn opens an async ring to the FS's ring-dedicated registration
// (BuildDBStackCfg with asyncFS). The caller must have created the ring
// server via NewRingServer(st.FSAsyncID(), ...) first.
func (st *DBStack) FSAsyncConn(env *mk.Env, qd, payloadCap int, pol mk.WakePolicy) (*svc.AsyncConn, error) {
	return svc.OpenAsync(st.W.SB, env, st.fsAsyncID, qd, payloadCap, pol)
}

// FSAsyncID returns the ring-dedicated FS server id (0 when the stack was
// built without asyncFS).
func (st *DBStack) FSAsyncID() int { return st.fsAsyncID }

// Close shuts the stack's IPC servers down so the engine can drain.
func (st *DBStack) Close() {
	for _, ep := range st.eps {
		ep.Close()
	}
}

// FSConn builds a client connection to the FS service for a client process.
func (st *DBStack) FSConn(env *mk.Env, client *mk.Process) (svc.Conn, error) {
	switch st.mode {
	case ModeSB:
		return svc.NewSkyBridge(st.W.SB, env, st.fsID)
	default:
		return svc.NewIPC(client, st.eps[1]), nil
	}
}

// --- Table 4: SQLite3 basic operations ---

// Table4Config sizes the experiment.
type Table4Config struct {
	Flavor  mk.Flavor
	Clients int
	// OpsPerKind is the measured operations per op kind per client.
	OpsPerKind int
	// Preload rows per client before measuring.
	Preload int
}

// Table4Row is one (mode, op) measurement.
type Table4Row struct {
	Mode ServerMode
	// OpsPerSec for insert, update, query, delete.
	Insert, Update, Query, Delete float64
}

// Table4Result holds one kernel flavor's block of Table 4.
type Table4Result struct {
	Flavor mk.Flavor
	Rows   []Table4Row
}

// table4Paper reproduces the paper's Table 4 for rendering reference.
var table4Paper = map[string]map[string][4]float64{
	"seL4": {
		"ST-Server": {4839.08, 3943.71, 13245.92, 4326.92},
		"MT-Server": {6001.82, 4714.52, 14025.37, 5314.04},
		"SkyBridge": {11251.08, 7335.57, 18610.60, 7339.31},
	},
	"Fiasco.OC": {
		"ST-Server": {1296.83, 1222.83, 8108.11, 1255.23},
		"MT-Server": {1685.39, 1557.09, 8256.88, 1607.14},
		"SkyBridge": {5000.00, 4545.45, 15789.47, 4568.53},
	},
	"Zircon": {
		"ST-Server": {1408.42, 1376.77, 9432.34, 1389.64},
		"MT-Server": {2467.90, 2360.00, 9535.56, 1389.64},
		"SkyBridge": {7710.63, 6643.24, 17843.54, 7027.30},
	},
}

// Table4 measures insert/update/query/delete throughput for one kernel
// flavor in the three server configurations.
func Table4(cfg Table4Config) (*Table4Result, error) {
	if cfg.Clients == 0 {
		cfg.Clients = 4
	}
	if cfg.OpsPerKind == 0 {
		cfg.OpsPerKind = 40
	}
	if cfg.Preload == 0 {
		cfg.Preload = 100
	}
	res := &Table4Result{Flavor: cfg.Flavor}
	for _, mode := range []ServerMode{ModeST, ModeMT, ModeSB} {
		row, err := runTable4Mode(cfg, mode)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runTable4Mode(cfg Table4Config, mode ServerMode) (*Table4Row, error) {
	w := MustWorld(WorldConfig{Flavor: cfg.Flavor, Cores: 4, MemBytes: 8 << 30, SkyBridge: mode == ModeSB})
	st, err := BuildDBStack(w, mode)
	if err != nil {
		return nil, err
	}
	k := w.K

	type phaseTimes struct{ ins, upd, qry, del uint64 }
	times := make([]phaseTimes, cfg.Clients)
	done := 0

	for ci := 0; ci < cfg.Clients; ci++ {
		ci := ci
		client := k.NewProcess(fmt.Sprintf("client%d", ci))
		core := k.Mach.Cores[ci%len(k.Mach.Cores)]
		client.Spawn("app", core, func(env *mk.Env) {
			conn, err := st.FSConn(env, client)
			if err != nil {
				panic(err)
			}
			fsc := &fs.Client{Conn: conn}
			d, err := db.Open(env, client, fsc, fmt.Sprintf("db%d", ci))
			if err != nil {
				panic(err)
			}
			if _, err := d.Exec(env, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"); err != nil {
				panic(err)
			}
			tab, _ := d.TableByName("t")
			val := strings.Repeat("x", 100)
			// Preload rows for update/query/delete phases.
			for i := 0; i < cfg.Preload; i++ {
				if _, err := tab.Insert(env, []db.Value{db.IntValue(int64(i)), db.TextValue(val)}); err != nil {
					panic(err)
				}
			}
			n := cfg.OpsPerKind
			measure := func(fn func(i int)) uint64 {
				start := env.Now()
				for i := 0; i < n; i++ {
					fn(i)
				}
				return env.Now() - start
			}
			// Scatter measured keys across the whole preloaded keyspace so
			// each phase exercises the pager realistically (sequential keys
			// would all land in one or two cached B+tree leaves), with a
			// different stride per phase so the query phase does not simply
			// re-touch the pages the update phase just cached.
			key := func(i int, stride uint64) int64 {
				return int64((uint64(i)*stride + uint64(ci)) % uint64(cfg.Preload))
			}
			times[ci].ins = measure(func(i int) {
				if _, err := tab.Insert(env, []db.Value{db.IntValue(int64(cfg.Preload + i)), db.TextValue(val)}); err != nil {
					panic(err)
				}
			})
			times[ci].upd = measure(func(i int) {
				k := key(i, 2654435761)
				if _, err := tab.Update(env, k, []db.Value{db.IntValue(k), db.TextValue(val)}); err != nil {
					panic(err)
				}
			})
			times[ci].qry = measure(func(i int) {
				if _, _, err := tab.Get(env, key(i, 1779033703)); err != nil {
					panic(err)
				}
			})
			times[ci].del = measure(func(i int) {
				if _, err := tab.Delete(env, int64(i)); err != nil {
					panic(err)
				}
			})
			done++
			if done == cfg.Clients {
				st.Close()
			}
		})
	}
	if err := w.Eng.Run(); err != nil {
		return nil, err
	}

	row := &Table4Row{Mode: mode}
	agg := func(get func(phaseTimes) uint64) float64 {
		var total float64
		for _, t := range times {
			total += OpsPerSec(cfg.OpsPerKind, get(t))
		}
		return total
	}
	row.Insert = agg(func(t phaseTimes) uint64 { return t.ins })
	row.Update = agg(func(t phaseTimes) uint64 { return t.upd })
	row.Query = agg(func(t phaseTimes) uint64 { return t.qry })
	row.Delete = agg(func(t phaseTimes) uint64 { return t.del })
	return row, nil
}

// Render formats the flavor's Table 4 block.
func (r *Table4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 (%s): SQLite3 basic operations (ops/s); paper values in parentheses\n", r.Flavor)
	fmt.Fprintf(&b, "%-11s %19s %19s %19s %19s\n", "", "Insert", "Update", "Query", "Delete")
	paper := table4Paper[r.Flavor.String()]
	for _, row := range r.Rows {
		p := paper[row.Mode.String()]
		fmt.Fprintf(&b, "%-11s %9.0f (%7.0f) %9.0f (%7.0f) %9.0f (%7.0f) %9.0f (%7.0f)\n",
			row.Mode, row.Insert, p[0], row.Update, p[1], row.Query, p[2], row.Delete, p[3])
	}
	return b.String()
}

// --- Figures 9-11: YCSB-A throughput vs thread count ---

// YCSBConfig sizes the experiment.
type YCSBConfig struct {
	Flavor      mk.Flavor
	Threads     []int
	Records     int
	Ops         int  // per thread
	Virtualized bool // run under the Rootkernel (for Table 5)
}

// YCSBResult holds throughput series per server mode.
type YCSBResult struct {
	Flavor  mk.Flavor
	Threads []int
	// Tput[mode][i] is ops/s with Threads[i] client threads.
	Tput map[ServerMode][]float64
	// VMExits per run (only meaningful when virtualized).
	VMExits map[ServerMode][]uint64
}

// RunYCSB measures one (flavor, mode, threads) cell and returns (ops/s,
// VM exits during measurement).
func RunYCSB(cfg YCSBConfig, mode ServerMode, threads int) (float64, uint64, error) {
	cores := threads
	if cores < 2 {
		cores = 2
	}
	if cores > 8 {
		cores = 8
	}
	w := MustWorld(WorldConfig{
		Flavor: cfg.Flavor, Cores: cores, MemBytes: 8 << 30,
		SkyBridge: mode == ModeSB, Virtualized: cfg.Virtualized,
	})
	st, err := BuildDBStack(w, mode)
	if err != nil {
		return 0, 0, err
	}
	return runYCSBOn(w, st, cfg, threads)
}

// runYCSBOn runs the YCSB clients on an already-built stack.
func runYCSBOn(w *World, st *DBStack, cfg YCSBConfig, threads int) (float64, uint64, error) {
	k := w.K

	wl := ycsb.WorkloadA(cfg.Records)
	starts := make([]uint64, threads)
	ends := make([]uint64, threads)
	done := 0

	// Barrier between the load phase and the measured phase, so the
	// measurement window covers only steady-state operations.
	loaded := 0
	var barrier sim.WaitQueue
	for ti := 0; ti < threads; ti++ {
		ti := ti
		client := k.NewProcess(fmt.Sprintf("ycsb%d", ti))
		core := k.Mach.Cores[ti%len(k.Mach.Cores)]
		client.Spawn("app", core, func(env *mk.Env) {
			conn, err := st.FSConn(env, client)
			if err != nil {
				panic(err)
			}
			fsc := &fs.Client{Conn: conn}
			d, err := db.Open(env, client, fsc, fmt.Sprintf("y%d", ti))
			if err != nil {
				panic(err)
			}
			if _, err := d.Exec(env, "CREATE TABLE u (id INTEGER PRIMARY KEY, f TEXT)"); err != nil {
				panic(err)
			}
			tab, _ := d.TableByName("u")
			for i := 0; i < cfg.Records; i++ {
				if _, err := tab.Insert(env, []db.Value{db.IntValue(int64(i)), db.TextValue(ycsb.RecordValue(wl, int64(i)))}); err != nil {
					panic(err)
				}
			}
			gen := ycsb.NewGenerator(wl, int64(1000+ti))
			// Wait for every client to finish loading.
			env.T.Checkpoint()
			loaded++
			if loaded < threads {
				barrier.Wait(env.T)
				env.Enter()
			} else {
				k.Mach.ResetVMExitCounts()
				for barrier.Len() > 0 {
					barrier.WakeOne(w.Eng, env.Now(), nil)
				}
			}
			starts[ti] = env.Now()
			for i := 0; i < cfg.Ops; i++ {
				op := gen.Next()
				switch op.Kind {
				case ycsb.OpRead:
					if _, _, err := tab.Get(env, op.Key); err != nil {
						panic(err)
					}
				case ycsb.OpUpdate:
					if _, err := tab.Update(env, op.Key, []db.Value{db.IntValue(op.Key), db.TextValue(op.Value)}); err != nil {
						panic(err)
					}
				}
			}
			ends[ti] = env.Now()
			done++
			if done == threads {
				st.Close()
			}
		})
	}
	if err := w.Eng.Run(); err != nil {
		return 0, 0, err
	}
	var minStart, maxEnd uint64 = ^uint64(0), 0
	for i := 0; i < threads; i++ {
		if starts[i] < minStart {
			minStart = starts[i]
		}
		if ends[i] > maxEnd {
			maxEnd = ends[i]
		}
	}
	tput := OpsPerSec(cfg.Ops*threads, maxEnd-minStart)
	return tput, k.Mach.TotalVMExits(), nil
}

// Figure9to11 regenerates the YCSB-A scalability figure for one flavor
// (Figure 9 = seL4, 10 = Fiasco.OC, 11 = Zircon).
func Figure9to11(cfg YCSBConfig) (*YCSBResult, error) {
	if len(cfg.Threads) == 0 {
		cfg.Threads = []int{1, 2, 4, 8}
	}
	if cfg.Records == 0 {
		cfg.Records = 400
	}
	if cfg.Ops == 0 {
		cfg.Ops = 60
	}
	res := &YCSBResult{
		Flavor: cfg.Flavor, Threads: cfg.Threads,
		Tput:    make(map[ServerMode][]float64),
		VMExits: make(map[ServerMode][]uint64),
	}
	for _, mode := range []ServerMode{ModeST, ModeMT, ModeSB} {
		for _, th := range cfg.Threads {
			tput, exits, err := RunYCSB(cfg, mode, th)
			if err != nil {
				return nil, err
			}
			res.Tput[mode] = append(res.Tput[mode], tput)
			res.VMExits[mode] = append(res.VMExits[mode], exits)
		}
	}
	return res, nil
}

// Render formats the figure.
func (r *YCSBResult) Render() string {
	var b strings.Builder
	fig := map[mk.Flavor]string{mk.SeL4: "Figure 9", mk.Fiasco: "Figure 10", mk.Zircon: "Figure 11"}[r.Flavor]
	fmt.Fprintf(&b, "%s: YCSB-A throughput on %s (ops/s)\n", fig, r.Flavor)
	fmt.Fprintf(&b, "%-11s", "mode")
	for _, th := range r.Threads {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("%d-thread", th))
	}
	fmt.Fprintln(&b)
	for _, mode := range []ServerMode{ModeST, ModeMT, ModeSB} {
		fmt.Fprintf(&b, "%-11s", mode)
		for _, v := range r.Tput[mode] {
			fmt.Fprintf(&b, " %10.0f", v)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// --- Table 5: virtualization overhead ---

// Table5Row is one configuration's throughput.
type Table5Row struct {
	Threads    int
	Native     float64
	Rootkernel float64
	VMExits    uint64
}

// Table5Result reproduces Table 5.
type Table5Result struct {
	Rows []Table5Row
}

// Table5 runs YCSB-A on seL4 (MT servers, no SkyBridge) natively and under
// the Rootkernel and reports throughput plus VM-exit counts.
func Table5(records, ops int) (*Table5Result, error) {
	if records == 0 {
		records = 400
	}
	if ops == 0 {
		ops = 60
	}
	res := &Table5Result{}
	for _, th := range []int{1, 8} {
		cfg := ycsbCfg(records, ops)
		native, _, err := RunYCSB(cfg, ModeMT, th)
		if err != nil {
			return nil, err
		}
		cfg.Virtualized = true
		virt, exits, err := RunYCSB(cfg, ModeMT, th)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table5Row{Threads: th, Native: native, Rootkernel: virt, VMExits: exits})
	}
	return res, nil
}

func ycsbCfg(records, ops int) YCSBConfig {
	return YCSBConfig{Flavor: mk.SeL4, Records: records, Ops: ops}
}

// Render formats the table.
func (r *Table5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: YCSB-A throughput, native vs Rootkernel (no SkyBridge), and VM exits\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %10s\n", "", "Native", "Rootkernel", "#VM exits")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "YCSB-A %d thread%s      %12.2f %12.2f %10d\n",
			row.Threads, map[bool]string{true: "s", false: " "}[row.Threads > 1], row.Native, row.Rootkernel, row.VMExits)
	}
	return b.String()
}
