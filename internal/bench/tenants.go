package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"skybridge/internal/core"
	"skybridge/internal/kv"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
	"skybridge/internal/svc"
)

// Multi-tenant frontend sweep: N mutually-distrusting tenants (own
// process, calling key, EPTP binding, and keyspace prefix each) drive a
// KV store through per-tenant rings that one drain thread per server
// core multiplexes via the ring-of-rings directory (core.Frontend). Each
// tenant is an open-loop paced client: fixed operations issued one per
// think-time gap, so the offered load grows linearly with the tenant
// count while the per-tenant rate stays constant — the regime where the
// directory (O(words) idle skipping), the doorbell policy (crossing only
// into a sleeping drain), and DRR fairness (zipfian-hot tenants capped
// by credit and deficit) are what the measurement exposes. Zipfian cells
// concentrate the same total load zipf(0.99)-style; tenants whose share
// exceeds twice the uniform share run greedy closed-loop at full credit
// instead, and the hot and cold classes are attributed separately
// (per-ring obs.CallObserver override) so the report shows exactly where
// a cold tenant's p99 goes when a hog moves in.

// tenantThink is the uniform per-tenant gap between operations: each
// tenant offers 1/tenantThink ops per cycle, so aggregate offered load
// scales with the tenant count (64 -> ~21 op/Mc, 1024 -> ~341 op/Mc).
const tenantThink = 3_000_000

// tenantKeys is each tenant's keyspace size (preloaded server-side).
const tenantKeys = 4

// TenantsConfig parameterizes the multi-tenant sweep.
type TenantsConfig struct {
	Flavor mk.Flavor
	// TenantCounts are the tenant populations swept (default 64, 256,
	// 1024, clipped to MaxTenants when set).
	TenantCounts []int
	// MaxTenants clips TenantCounts (the -tenants flag; 0 = no clip).
	MaxTenants int
	// ServerCores are the drain-core counts swept (default 1, 2, 4); one
	// frontend + store per server core, tenants assigned round-robin.
	ServerCores []int
	// Dists are the load shapes swept (default uniform, zipfian).
	Dists []string
	// OpsPerTenant is the uniform per-tenant operation count (zipfian
	// cells redistribute tenants*OpsPerTenant zipf(0.99)-style).
	OpsPerTenant int
	// Credit is the per-tenant in-flight credit (ring depth, default 8);
	// Quantum the DRR refill per sweep visit (default 4).
	Credit  int
	Quantum int
}

// TenantsCell is one measured (tenants, serverCores, dist) configuration.
type TenantsCell struct {
	Tenants     int    `json:"tenants"`
	ServerCores int    `json:"server_cores"`
	Dist        string `json:"dist"`
	TotalOps    int    `json:"total_ops"`
	Credit      int    `json:"credit"`
	Quantum     int    `json:"quantum"`
	HotTenants  int    `json:"hot_tenants"`

	OpsPerMcyc  float64 `json:"ops_per_mcyc"`
	CyclesPerOp float64 `json:"cycles_per_op"`
	Makespan    uint64  `json:"makespan_cycles"`

	// Crossing accounting: every op rides a ring; doorbells only when the
	// drain slept.
	RingOps          uint64 `json:"ring_ops"`
	Doorbells        uint64 `json:"doorbells"`
	DoorbellsSkipped uint64 `json:"doorbells_skipped"`

	// Adaptive-wakeup accounting (drain + tenant reap waits).
	SpinWakes  uint64 `json:"spin_wakes"`
	Parks      uint64 `json:"parks"`
	LocalWakes uint64 `json:"local_wakes"`
	IPIWakes   uint64 `json:"ipi_wakes"`
	IPIs       uint64 `json:"ipis"`
	SpinCycles uint64 `json:"spin_cycles_parked"`

	// Directory/drain accounting, summed over the cell's frontends.
	Sweeps         uint64 `json:"sweeps"`
	FullSweeps     uint64 `json:"full_sweeps"`
	TailPolls      uint64 `json:"tail_polls"`
	TenantsVisited uint64 `json:"tenants_visited"`
	TenantsSkipped uint64 `json:"tenants_skipped"`
	PollCycles     uint64 `json:"poll_cycles"`
	ServiceCycles  uint64 `json:"service_cycles"`

	// Per-class end-to-end latency (submit -> completion reaped) and
	// phase attribution. Uniform cells have no hot class.
	ColdP99       uint64                `json:"cold_p99"`
	HotP99        uint64                `json:"hot_p99,omitempty"`
	Latency       *obs.Summary          `json:"latency,omitempty"`
	BreakdownCold *obs.BreakdownSummary `json:"breakdown_cold,omitempty"`
	BreakdownHot  *obs.BreakdownSummary `json:"breakdown_hot,omitempty"`
}

// TenantsResult holds the sweep.
type TenantsResult struct {
	OpsPerTenant int            `json:"ops_per_tenant"`
	TenantCounts []int          `json:"tenant_counts"`
	ServerCores  []int          `json:"server_cores"`
	Dists        []string       `json:"dists"`
	Cells        []*TenantsCell `json:"cells"`
}

// Tenants runs the sweep with catalog options.
func Tenants(cfg TenantsConfig) (*TenantsResult, error) {
	return NewSession(nil).Tenants(cfg)
}

// Tenants is the session form: each cell feeds per-class latency
// histograms "tenants/<dist>/<tenants>t/<cores>c{,/hot,/cold}" and emits
// one Record.
func (s *Session) Tenants(cfg TenantsConfig) (*TenantsResult, error) {
	if len(cfg.TenantCounts) == 0 {
		cfg.TenantCounts = []int{64, 256, 1024}
	}
	if cfg.MaxTenants > 0 {
		var counts []int
		for _, n := range cfg.TenantCounts {
			if n <= cfg.MaxTenants {
				counts = append(counts, n)
			}
		}
		if len(counts) == 0 {
			counts = []int{cfg.MaxTenants}
		}
		cfg.TenantCounts = counts
	}
	if len(cfg.ServerCores) == 0 {
		cfg.ServerCores = []int{1, 2, 4}
	}
	if len(cfg.Dists) == 0 {
		cfg.Dists = []string{"uniform", "zipfian"}
	}
	if cfg.OpsPerTenant == 0 {
		cfg.OpsPerTenant = 8
	}
	if cfg.Credit == 0 {
		cfg.Credit = 8
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 4
	}
	res := &TenantsResult{
		OpsPerTenant: cfg.OpsPerTenant,
		TenantCounts: cfg.TenantCounts, ServerCores: cfg.ServerCores, Dists: cfg.Dists,
	}
	type cellSpec struct {
		tenants, scores int
		dist            string
	}
	var specs []cellSpec
	for _, dist := range cfg.Dists {
		for _, n := range cfg.TenantCounts {
			for _, sc := range cfg.ServerCores {
				specs = append(specs, cellSpec{n, sc, dist})
			}
		}
	}
	cells := make([]*TenantsCell, len(specs))
	err := runCells(s, len(specs), func(sub *Session, i int) error {
		c, err := sub.runTenantsCell(cfg, specs[i].tenants, specs[i].scores, specs[i].dist)
		cells[i] = c
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Cells = cells
	return res, nil
}

// tenantOps splits the cell's total operations over tenants: uniform
// gives every tenant OpsPerTenant; zipfian redistributes the same total
// by zipf(0.99) rank weight (largest-remainder rounding, one op
// minimum), so tenant 0 is the hog and the tail stays cold.
func tenantOps(dist string, tenants, perTenant int) []int {
	if dist != "zipfian" {
		ops := make([]int, tenants)
		for t := range ops {
			ops[t] = perTenant
		}
		return ops
	}
	return zipfApportion(tenants*perTenant, tenants, 0.99)
}

// runTenantsCell measures one (tenants, serverCores, dist) configuration.
func (s *Session) runTenantsCell(cfg TenantsConfig, tenants, serverCores int, dist string) (*TenantsCell, error) {
	const clientCores = 4
	label := fmt.Sprintf("tenants/%s/%dt/%dc", dist, tenants, serverCores)
	world := s.world(label, WorldConfig{
		Flavor: cfg.Flavor, Cores: serverCores + clientCores, SkyBridge: true,
	})
	k := world.K
	h := s.hist(label)
	hotSite, coldSite := s.callSite(label+"/hot"), s.callSite(label+"/cold")
	hotHist, coldHist := s.hist(label+"/hot"), s.hist(label+"/cold")

	opsOf := tenantOps(dist, tenants, cfg.OpsPerTenant)
	totalOps := 0
	for _, o := range opsOf {
		totalOps += o
	}
	// Hot class: more than twice the uniform share — those run greedy
	// closed-loop at full credit; the cold class paces one op per think
	// gap sized so every cold tenant spans the same window.
	window := uint64(cfg.OpsPerTenant) * tenantThink
	hotTenants := 0
	for _, o := range opsOf {
		if o > 2*cfg.OpsPerTenant {
			hotTenants++
		}
	}

	// Register phase: one frontend + tenant-guarded store per server
	// core; tenant t belongs to frontend t % serverCores, its keyspace
	// preloaded under its prefix. The drain's wake policy spins longer on
	// larger directories: parking costs an O(tenants) pre-park tail
	// rescan, so the spin budget scales with the rings a park re-checks.
	perFE := (tenants + serverCores - 1) / serverCores
	pol := mk.WakePolicy{SpinBudget: mk.DefaultSpinBudget + 16*uint64(perFE)}
	nslots := 2*tenantKeys*perFE + 128
	stores := kv.NewStoreShards(k, "fe", serverCores, nslots, 4+32+2*32)
	fes := make([]*svc.Frontend, serverCores)
	// Ring tenant IDs are per-frontend (open order); the keyspace prefixes
	// carry the global tenant number. localToGlobal translates between the
	// two for the guard — filled once the bind phase fixes the open order.
	localToGlobal := make([][]int, serverCores)
	var regErr error
	for f := 0; f < serverCores; f++ {
		f := f
		localToGlobal[f] = make([]int, perFE+1)
		stores[f].Proc.Spawn("reg", k.Mach.Cores[f], func(env *mk.Env) {
			for t := f; t < tenants; t += serverCores {
				for j := 0; j < tenantKeys; j++ {
					key := kv.TenantKey(t, fmt.Sprintf("k%d", j))
					val := []byte(fmt.Sprintf("value-%04d-%02d-%024d", t, j, 0))
					if err := stores[f].Preload(env, []byte(key), val); err != nil && regErr == nil {
						regErr = fmt.Errorf("frontend %d preload tenant %d: %w", f, t, err)
						return
					}
				}
			}
			guard := kv.TenantGuard(stores[f].Handler())
			fe, err := svc.NewFrontend(world.SB, env, perFE+1, core.FrontendConfig{
				Pol: pol, Credit: cfg.Credit, Quantum: cfg.Quantum,
			}, func(env *mk.Env, tenant int, req svc.Req) svc.Resp {
				return guard(env, localToGlobal[f][tenant], req)
			})
			if err != nil && regErr == nil {
				regErr = fmt.Errorf("frontend %d: %w", f, err)
				return
			}
			fes[f] = fe
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if regErr != nil {
		return nil, regErr
	}

	// Bind phase: every tenant in its own process, rings opened in tenant
	// order (tenant IDs are per-frontend open order). Hot rings attribute
	// to the hot call site, cold to the cold one.
	procs := make([]*mk.Process, tenants)
	conns := make([]*svc.TenantConn, tenants)
	var bindErr error
	for t := 0; t < tenants; t++ {
		procs[t] = k.NewProcess(fmt.Sprintf("t%04d", t))
	}
	for t := 0; t < tenants; t++ {
		t := t
		procs[t].Spawn("bind", k.Mach.Cores[serverCores+t%clientCores], func(env *mk.Env) {
			tc, err := fes[t%serverCores].OpenTenant(env, 0, 2+64)
			if err != nil {
				if bindErr == nil {
					bindErr = fmt.Errorf("tenant %d bind: %w", t, err)
				}
				return
			}
			conns[t] = tc
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if bindErr != nil {
		return nil, bindErr
	}
	for t := 0; t < tenants; t++ {
		localToGlobal[t%serverCores][conns[t].Tenant] = t
		site := coldSite
		if opsOf[t] > 2*cfg.OpsPerTenant {
			site = hotSite
		}
		conns[t].Ring.SetObserver(site.Obs)
	}

	// Measurement window.
	k.Mach.AlignClocks()
	k.Mach.ResetStats()
	s.callSite(label).Obs.Reset()
	hotSite.Obs.Reset()
	coldSite.Obs.Reset()
	baseRing, baseBells, baseSkip := world.SB.RingOps, world.SB.RingDoorbells, world.SB.RingDoorbellsSkipped
	baseSpin, baseParks, baseLocal, baseIPIW := k.SpinWakes, k.Parks, k.LocalWakes, k.IPIWakes

	var srvErr error
	for f, fe := range fes {
		f, fe := f, fe
		stores[f].Proc.Spawn("drain", k.Mach.Cores[f], func(env *mk.Env) {
			if err := fe.Serve(env); err != nil && srvErr == nil {
				srvErr = fmt.Errorf("frontend %d drain: %w", f, err)
			}
		})
	}
	durations := make([]uint64, tenants)
	remaining := tenants
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}
	for t := 0; t < tenants; t++ {
		t := t
		ops := opsOf[t]
		hot := ops > 2*cfg.OpsPerTenant
		classHist := coldHist
		if hot {
			classHist = hotHist
		}
		procs[t].Spawn("drive", k.Mach.Cores[serverCores+t%clientCores], func(env *mk.Env) {
			defer func() {
				if remaining--; remaining == 0 {
					for _, fe := range fes {
						fe.Close(env)
					}
				}
			}()
			tc := conns[t]
			qd := tc.Ring.QD
			// Deterministic stagger so tenant first-ops do not stampede.
			think := window / uint64(ops)
			env.Sleep(uint64(t) * 2654435761 % 4096 * think / 4096)
			start := env.Now()
			t0s := make([]uint64, qd)
			submitted, completed := 0, 0
			observe := func(cs []core.Completion) error {
				for _, c := range cs {
					if c.Regs[0] != kv.StatusOK && c.Regs[0] != kv.StatusNotFound {
						return fmt.Errorf("tenant %d status %d", t, c.Regs[0])
					}
					lat := env.Now() - t0s[c.Seq%uint32(qd)]
					classHist.Observe(lat)
					h.Observe(lat)
					completed++
				}
				return nil
			}
			submit := func() error {
				t0s[uint32(submitted)%uint32(qd)] = env.Now()
				var req svc.Req
				key := kv.TenantKey(t, fmt.Sprintf("k%d", submitted%tenantKeys))
				if submitted%4 == 3 {
					val := fmt.Sprintf("value-%04d-%02d-%024d", t, submitted%tenantKeys, submitted)
					frame := make([]byte, 2+len(key)+len(val))
					frame[0], frame[1] = byte(len(key)), byte(len(key)>>8)
					copy(frame[2:], key)
					copy(frame[2+len(key):], val)
					req = svc.Req{Op: kv.OpPut, Data: frame}
				} else {
					req = svc.Req{Op: kv.OpGet, Data: []byte(key)}
				}
				if err := tc.Submit(env, req); err != nil {
					return fmt.Errorf("tenant %d submit %d: %w", t, submitted, err)
				}
				submitted++
				return nil
			}
			for completed < ops {
				if hot {
					// Greedy: keep the ring at full credit.
					for submitted < ops && tc.Inflight() < qd {
						if err := submit(); err != nil {
							fail(err)
							return
						}
					}
				} else {
					env.Sleep(think)
					if err := submit(); err != nil {
						fail(err)
						return
					}
				}
				if err := tc.Flush(env); err != nil {
					fail(fmt.Errorf("tenant %d flush: %w", t, err))
					return
				}
				cs, err := tc.Ring.Reap(env, 1)
				if err != nil {
					fail(fmt.Errorf("tenant %d reap: %w", t, err))
					return
				}
				if err := observe(cs); err != nil {
					fail(err)
					return
				}
			}
			durations[t] = env.Now() - start
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	if srvErr != nil {
		return nil, srvErr
	}

	cell := &TenantsCell{
		Tenants: tenants, ServerCores: serverCores, Dist: dist,
		TotalOps: totalOps, Credit: cfg.Credit, Quantum: cfg.Quantum,
		HotTenants:       hotTenants,
		RingOps:          world.SB.RingOps - baseRing,
		Doorbells:        world.SB.RingDoorbells - baseBells,
		DoorbellsSkipped: world.SB.RingDoorbellsSkipped - baseSkip,
		SpinWakes:        k.SpinWakes - baseSpin,
		Parks:            k.Parks - baseParks,
		LocalWakes:       k.LocalWakes - baseLocal,
		IPIWakes:         k.IPIWakes - baseIPIW,
		IPIs:             uint64(k.Mach.Obs.Value("machine.ipis")),
		SpinCycles:       k.SpinCycles,
	}
	for _, fe := range fes {
		cell.Sweeps += fe.FE.Sweeps
		cell.FullSweeps += fe.FE.FullSweeps
		cell.TailPolls += fe.FE.TailPolls
		cell.TenantsVisited += fe.FE.TenantsVisited
		cell.TenantsSkipped += fe.FE.TenantsSkipped
		cell.PollCycles += fe.FE.PollCycles
		cell.ServiceCycles += fe.FE.ServiceCycles
	}
	var sum uint64
	for _, d := range durations {
		sum += d
		if d > cell.Makespan {
			cell.Makespan = d
		}
	}
	if cell.Makespan > 0 {
		cell.OpsPerMcyc = float64(totalOps) * 1e6 / float64(cell.Makespan)
	}
	if totalOps > 0 {
		cell.CyclesPerOp = float64(sum) / float64(totalOps)
	}
	cell.Latency = s.latencyOf(label)
	if cs := s.latencyOf(label + "/cold"); cs != nil {
		cell.ColdP99 = cs.P99
	}
	if hs := s.latencyOf(label + "/hot"); hs != nil {
		cell.HotP99 = hs.P99
	}
	cell.BreakdownCold = s.breakdownOf(label + "/cold")
	cell.BreakdownHot = s.breakdownOf(label + "/hot")

	values := map[string]float64{
		"ops_per_megacycle":  cell.OpsPerMcyc,
		"cycles_per_op":      cell.CyclesPerOp,
		"makespan_cycles":    float64(cell.Makespan),
		"ops_per_sec":        OpsPerSec(totalOps, cell.Makespan),
		"ring_ops":           float64(cell.RingOps),
		"doorbells":          float64(cell.Doorbells),
		"doorbells_skipped":  float64(cell.DoorbellsSkipped),
		"spin_wakes":         float64(cell.SpinWakes),
		"parks":              float64(cell.Parks),
		"local_wakes":        float64(cell.LocalWakes),
		"ipi_wakes":          float64(cell.IPIWakes),
		"ipis":               float64(cell.IPIs),
		"sweeps":             float64(cell.Sweeps),
		"full_sweeps":        float64(cell.FullSweeps),
		"tail_polls":         float64(cell.TailPolls),
		"tenants_visited":    float64(cell.TenantsVisited),
		"tenants_skipped":    float64(cell.TenantsSkipped),
		"poll_cycles":        float64(cell.PollCycles),
		"service_cycles":     float64(cell.ServiceCycles),
		"cold_p99":           float64(cell.ColdP99),
		"hot_p99":            float64(cell.HotP99),
		"hot_tenants":        float64(cell.HotTenants),
		"spin_cycles_parked": float64(cell.SpinCycles),
		"vmfuncs":            float64(k.Mach.Obs.SumSuffix(".vmfuncs")),
		"l1d_misses":         float64(k.Mach.Obs.SumSuffix(".L1D.misses")),
	}
	s.record(Record{
		Experiment: "tenants",
		Config: map[string]string{
			"dist":         dist,
			"tenants":      fmt.Sprintf("%d", tenants),
			"server_cores": fmt.Sprintf("%d", serverCores),
			"ops":          fmt.Sprintf("%d", totalOps),
			"credit":       fmt.Sprintf("%d", cfg.Credit),
			"quantum":      fmt.Sprintf("%d", cfg.Quantum),
		},
		CyclesPerOp: cell.CyclesPerOp,
		Values:      values,
		Latency:     cell.Latency,
		Breakdown:   cell.BreakdownCold,
	})
	return cell, nil
}

// cell looks up (dist, tenants, serverCores).
func (r *TenantsResult) cell(dist string, tenants, scores int) *TenantsCell {
	for _, c := range r.Cells {
		if c.Dist == dist && c.Tenants == tenants && c.ServerCores == scores {
			return c
		}
	}
	return nil
}

// Render formats the sweep: aggregate throughput and cold-tenant p99 per
// (dist, tenants) row across server-core counts.
func (r *TenantsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-tenant frontend: per-tenant rings + directory drain (%d ops/tenant uniform share)\n",
		r.OpsPerTenant)
	fmt.Fprintf(&b, "%-8s %7s", "dist", "tenants")
	for _, sc := range r.ServerCores {
		fmt.Fprintf(&b, " %11s %12s", fmt.Sprintf("%dc op/Mc", sc), fmt.Sprintf("%dc coldp99", sc))
	}
	fmt.Fprintln(&b)
	for _, dist := range r.Dists {
		for _, n := range r.TenantCounts {
			fmt.Fprintf(&b, "%-8s %7d", dist, n)
			for _, sc := range r.ServerCores {
				c := r.cell(dist, n, sc)
				if c == nil {
					fmt.Fprintf(&b, " %11s %12s", "-", "-")
					continue
				}
				fmt.Fprintf(&b, " %11.1f %12d", c.OpsPerMcyc, c.ColdP99)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// WriteTenantsBench serializes r as the BENCH_tenants.json document.
func WriteTenantsBench(w io.Writer, r *TenantsResult) error {
	buf, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
