package bench

import (
	"fmt"
	"strings"

	"skybridge/internal/hv"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/svc"
)

// AblationResult is a generic two-arm comparison.
type AblationResult struct {
	Name     string
	ArmA     string
	ArmB     string
	ValueA   float64
	ValueB   float64
	Unit     string
	Comments string
}

// Render formats the comparison.
func (r *AblationResult) Render() string {
	return fmt.Sprintf("%-34s %s=%.0f %s, %s=%.0f %s  (%s)\n",
		r.Name, r.ArmA, r.ValueA, r.Unit, r.ArmB, r.ValueB, r.Unit, r.Comments)
}

// AblationEPTClone compares the shallow (path-copying) EPT clone SkyBridge
// uses against a deep copy of the whole base EPT, in table pages touched
// per client-server binding (DESIGN.md ablation 1).
func AblationEPTClone() *AblationResult {
	mem := hw.NewPhysMem(8 << 30)
	base := hw.NewEPT(mem)
	// A base EPT with some fine-grained structure, so the deep copy has a
	// realistic amount of tables to duplicate: 256 MiB of 4 KiB mappings
	// plus hugepages above.
	if err := base.MapIdentityRange(0, 65536, hw.PageSize, hw.EPTAll); err != nil {
		panic(err)
	}
	if err := base.MapIdentityRange(hw.GPA(1<<30), 6, hw.Page1GSize, hw.EPTAll); err != nil {
		panic(err)
	}
	cr3 := hw.GPA(0x40_0000)
	target := hw.HPA(0x99_9000)

	shallow := base.CloneShallow()
	copied, err := shallow.RemapGPA(cr3, target, hw.EPTRead|hw.EPTWrite)
	if err != nil {
		panic(err)
	}
	shallowPages := copied + 1

	deep := base.CloneDeep()
	before := deep.OwnedPages
	if _, err := deep.RemapGPA(cr3, target, hw.EPTRead|hw.EPTWrite); err != nil {
		panic(err)
	}
	deepPages := deep.OwnedPages // all pages were copied up front
	_ = before

	return &AblationResult{
		Name: "EPT clone: shallow vs deep",
		ArmA: "shallow", ValueA: float64(shallowPages),
		ArmB: "deep", ValueB: float64(deepPages),
		Unit:     "pages",
		Comments: "paper §4.3: only four pages are modified per binding",
	}
}

// AblationHugepageEPT compares the 1 GiB hugepage base EPT against a
// 4 KiB-page base EPT: table pages consumed and the EPT-walk reads of a
// memory-touching workload (DESIGN.md ablation 2).
func AblationHugepageEPT() []*AblationResult {
	run := func(small bool) (pages int, walkReads uint64) {
		w := MustWorld(WorldConfig{
			Flavor: mk.SeL4, Virtualized: true, MemBytes: 2 << 30,
			HVConfig: hv.Config{SmallPageEPT: small},
		})
		pages = w.RK.BaseEPT.OwnedPages
		p := w.K.NewProcess("app")
		buf := p.Alloc(256 * hw.PageSize)
		p.Spawn("w", w.K.Mach.Cores[0], func(env *mk.Env) {
			for i := 0; i < 256; i++ {
				env.Write(buf+hw.VA(i*hw.PageSize), nil, 64)
			}
		})
		if err := w.Eng.Run(); err != nil {
			panic(err)
		}
		walkReads = w.K.Mach.Cores[0].Counters.EPTWalkReads
		return
	}
	hugePages, hugeWalks := run(false)
	smallPages, smallWalks := run(true)
	return []*AblationResult{
		{
			Name: "base EPT tables: 1GiB vs 4KiB pages",
			ArmA: "hugepage", ValueA: float64(hugePages),
			ArmB: "smallpage", ValueB: float64(smallPages),
			Unit:     "pages",
			Comments: "paper §4.1: 1 GiB mappings keep the EPT tiny",
		},
		{
			Name: "EPT walk reads for 256-page touch",
			ArmA: "hugepage", ValueA: float64(hugeWalks),
			ArmB: "smallpage", ValueB: float64(smallWalks),
			Unit:     "reads",
			Comments: "hugepages shorten every 2-level walk",
		},
	}
}

// AblationExitless compares the exit-less VMCS configuration against a
// trap-everything hypervisor under an interrupt-heavy run (DESIGN.md
// ablation 3).
func AblationExitless() *AblationResult {
	run := func(trapAll bool) (cycles uint64, exits uint64) {
		w := MustWorld(WorldConfig{
			Flavor: mk.SeL4, Virtualized: true, MemBytes: 2 << 30,
			HVConfig: hv.Config{TrapAll: trapAll},
		})
		p := w.K.NewProcess("app")
		p.Spawn("w", w.K.Mach.Cores[0], func(env *mk.Env) {
			cpu := env.T.Core
			start := cpu.Clock
			for i := 0; i < 1000; i++ {
				env.Compute(500)
				if err := cpu.Interrupt(); err != nil {
					panic(err)
				}
			}
			cycles = cpu.Clock - start
		})
		if err := w.Eng.Run(); err != nil {
			panic(err)
		}
		return cycles, w.K.Mach.TotalVMExits()
	}
	exitlessCycles, exitlessExits := run(false)
	trapCycles, trapExits := run(true)
	return &AblationResult{
		Name: "exit-less vs trap-all (1000 interrupts)",
		ArmA: "exit-less", ValueA: float64(exitlessCycles),
		ArmB: "trap-all", ValueB: float64(trapCycles),
		Unit:     "cycles",
		Comments: fmt.Sprintf("VM exits: %d vs %d", exitlessExits, trapExits),
	}
}

// AblationKeyCheck compares SkyBridge's optimistic user-mode calling-key
// check against a kernel-mediated per-call check (DESIGN.md ablation 4).
func AblationKeyCheck() *AblationResult {
	measure := func(kernelCheck bool) uint64 {
		w := MustWorld(WorldConfig{Flavor: mk.SeL4, SkyBridge: true})
		server := w.K.NewProcess("server")
		client := w.K.NewProcess("client")
		var id int
		server.Spawn("reg", w.K.Mach.Cores[0], func(env *mk.Env) {
			id, _ = svc.RegisterSkyBridgeServer(w.SB, env, 4, func(env *mk.Env, req svc.Req) svc.Resp {
				return svc.Resp{}
			})
		})
		if err := w.Eng.Run(); err != nil {
			panic(err)
		}
		var cycles uint64
		client.Spawn("cli", w.K.Mach.Cores[0], func(env *mk.Env) {
			conn, err := svc.NewSkyBridge(w.SB, env, id)
			if err != nil {
				panic(err)
			}
			cpu := env.T.Core
			call := func() {
				if kernelCheck {
					// A kernel-mediated check adds a syscall round trip
					// per call.
					cpu.Syscall()
					cpu.Swapgs()
					cpu.Tick(98)
					cpu.Swapgs()
					cpu.Sysret()
				}
				conn.Invoke(env, svc.Req{})
			}
			for i := 0; i < 32; i++ {
				call()
			}
			const rounds = 256
			start := env.Now()
			for i := 0; i < rounds; i++ {
				call()
			}
			cycles = (env.Now() - start) / rounds
		})
		if err := w.Eng.Run(); err != nil {
			panic(err)
		}
		return cycles
	}
	return &AblationResult{
		Name: "calling-key check: user vs kernel",
		ArmA: "user-mode", ValueA: float64(measure(false)),
		ArmB: "kernel-mediated", ValueB: float64(measure(true)),
		Unit:     "cycles/call",
		Comments: "the optimistic check keeps the kernel off the path (§4.4)",
	}
}

// AblationVPID compares VPID-tagged EPTP switching (no TLB flush) against
// flush-on-switch hardware (DESIGN.md ablation 5).
func AblationVPID() *AblationResult {
	measure := func(flush bool) uint64 {
		w := MustWorld(WorldConfig{Flavor: mk.SeL4, SkyBridge: true})
		w.SB.FlushTLBOnSwitch = flush
		server := w.K.NewProcess("server")
		client := w.K.NewProcess("client")
		var id int
		var srvBuf hw.VA
		server.Spawn("reg", w.K.Mach.Cores[0], func(env *mk.Env) {
			srvBuf = server.Alloc(16 * hw.PageSize)
			id, _ = svc.RegisterSkyBridgeServer(w.SB, env, 4, func(env *mk.Env, req svc.Req) svc.Resp {
				// Touch a small working set so lost TLB entries matter.
				for i := 0; i < 16; i++ {
					env.Read(srvBuf+hw.VA(i*hw.PageSize), nil, 8)
				}
				return svc.Resp{}
			})
		})
		if err := w.Eng.Run(); err != nil {
			panic(err)
		}
		var cycles uint64
		client.Spawn("cli", w.K.Mach.Cores[0], func(env *mk.Env) {
			conn, err := svc.NewSkyBridge(w.SB, env, id)
			if err != nil {
				panic(err)
			}
			cliBuf := client.Alloc(16 * hw.PageSize)
			work := func() {
				for i := 0; i < 16; i++ {
					env.Read(cliBuf+hw.VA(i*hw.PageSize), nil, 8)
				}
				conn.Invoke(env, svc.Req{})
			}
			for i := 0; i < 32; i++ {
				work()
			}
			const rounds = 128
			start := env.Now()
			for i := 0; i < rounds; i++ {
				work()
			}
			cycles = (env.Now() - start) / rounds
		})
		if err := w.Eng.Run(); err != nil {
			panic(err)
		}
		return cycles
	}
	return &AblationResult{
		Name: "EPTP switch: VPID-tagged vs flushing",
		ArmA: "vpid", ValueA: float64(measure(false)),
		ArmB: "flush", ValueB: float64(measure(true)),
		Unit:     "cycles/call",
		Comments: "VPID keeps both sides' TLB entries live across VMFUNC (§2.2)",
	}
}

// Ablations runs all design-choice ablations.
func Ablations() []*AblationResult {
	var out []*AblationResult
	out = append(out, AblationEPTClone())
	out = append(out, AblationHugepageEPT()...)
	out = append(out, AblationExitless())
	out = append(out, AblationKeyCheck())
	out = append(out, AblationVPID())
	out = append(out, AblationTempMapping())
	return out
}

// RenderAblations formats the ablation summary.
func RenderAblations(rs []*AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Design-choice ablations (DESIGN.md §4)\n")
	for _, r := range rs {
		b.WriteString(r.Render())
	}
	return b.String()
}

// AblationTempMapping compares the default two-copy long-IPC transfer with
// L4's temporary-mapping optimization (§8.1) for a 12 KiB payload — an
// extension the paper calls "orthogonal to SkyBridge".
func AblationTempMapping() *AblationResult {
	run := func(tempMap bool) uint64 {
		w := MustWorld(WorldConfig{Flavor: mk.SeL4})
		w.K.Cfg.TempMapping = tempMap
		client := w.K.NewProcess("client")
		server := w.K.NewProcess("server")
		ep := w.K.NewEndpoint("e")
		client.Grant(ep)
		srvBuf := server.Alloc(4 * hw.PageSize)
		server.Spawn("srv", w.K.Mach.Cores[0], func(env *mk.Env) {
			w.K.Serve(env, ep, srvBuf, func(env *mk.Env, req mk.Msg) mk.Msg {
				return mk.Msg{Buf: srvBuf, Len: req.Len}
			})
		})
		const payload = 12288
		var cycles uint64
		cliBuf := client.Alloc(4 * hw.PageSize)
		cliReply := client.Alloc(4 * hw.PageSize)
		client.Spawn("cli", w.K.Mach.Cores[0], func(env *mk.Env) {
			for i := 0; i < 8; i++ {
				env.Call(ep, mk.Msg{Buf: cliBuf, Len: payload}, cliReply)
			}
			start := env.Now()
			const rounds = 32
			for i := 0; i < rounds; i++ {
				env.Call(ep, mk.Msg{Buf: cliBuf, Len: payload}, cliReply)
			}
			cycles = (env.Now() - start) / rounds
			ep.Close()
		})
		if err := w.Eng.Run(); err != nil {
			panic(err)
		}
		return cycles
	}
	return &AblationResult{
		Name: "long IPC: two-copy vs temp mapping (12KiB)",
		ArmA: "temp-map", ValueA: float64(run(true)),
		ArmB: "two-copy", ValueB: float64(run(false)),
		Unit:     "cycles/rt",
		Comments: "L4's temporary mapping (§8.1), orthogonal to SkyBridge",
	}
}
