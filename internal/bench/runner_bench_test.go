package bench

import (
	"io"
	"testing"
)

// BenchmarkRunKV measures one end-to-end KV-store experiment (world boot,
// simulated clients, metric collection) — the unit the parallel runner
// schedules.
func BenchmarkRunKV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSession(nil)
		s.RunKV(TransportSkyBridge, 16, 64)
	}
}

// BenchmarkRunAllSmall measures the runner end to end on a small
// selection, serially.
func BenchmarkRunAllSmall(b *testing.B) {
	sel := map[string]bool{"table2": true}
	for i := 0; i < b.N; i++ {
		if err := RunAll(sel, testOpts, 1, NewSession(nil), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
