package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"skybridge/internal/core"
	"skybridge/internal/db"
	"skybridge/internal/fs"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
	"skybridge/internal/svc"
	"skybridge/internal/ycsb"
)

// Database scaling: the full SQLite→xv6fs→blockdev pipeline swept across
// core counts, FS locking disciplines, and IPC fast paths. Each client
// core runs one SQLite instance against its own database file on a shared
// FS server; the sweep crosses {biglock, finelock} — the paper's
// big-locked xv6fs port against per-inode stripes with a sharded buffer
// cache and group-commit log — with {sync, batched, async} IO routing:
// one DirectCall per block/page, commit protocols folded into
// DirectCallBatch crossings, or the pager's writeback and scan prefetch
// streamed through submission/completion rings. The biglock+sync column
// reproduces Figures 9-11's flat-to-negative scaling; finelock+batched
// turns it positive on the read-heavy mix.

// dbRingQD is the pager ring queue depth: three page-sized slots are what
// the 4-page ring buffer holds next to the submission/completion queues.
const dbRingQD = 3

// DBScaleConfig parameterizes the sweep.
type DBScaleConfig struct {
	Flavor mk.Flavor
	// CoreCounts are the machine widths swept (default 1, 2, 4); each
	// core runs one closed-loop SQLite client.
	CoreCounts []int
	// Workloads are the YCSB mixes driven (default A, B, E).
	Workloads []ycsb.Workload
	// Records is the per-client preloaded row count.
	Records int
	// OpsPerClient is the measured operation count per client (scan-heavy
	// workloads run a quarter of it; one scan touches many rows).
	OpsPerClient int
}

// DBScaleCell is one measured (workload, cores, lock, io) configuration.
type DBScaleCell struct {
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	Lock     string `json:"lock"` // biglock | finelock
	IO       string `json:"io"`   // sync | batched | async

	OpsPerMcyc  float64 `json:"ops_per_mcyc"`
	CyclesPerOp float64 `json:"cycles_per_op"`
	Makespan    uint64  `json:"makespan_cycles"`
	TotalOps    int     `json:"total_ops"`

	ClientCycles []uint64 `json:"client_cycles"`

	// Transport accounting over the measurement window.
	DirectCalls uint64 `json:"direct_calls"`
	BatchCalls  uint64 `json:"batch_calls"`
	RingOps     uint64 `json:"ring_ops"`
	Doorbells   uint64 `json:"doorbells"`

	// FS lock accounting (big lock, or stripes+alloc+log in fine mode).
	LockAcq        uint64 `json:"lock_acq"`
	LockContended  uint64 `json:"lock_contended"`
	LockWaitCycles uint64 `json:"lock_wait_cycles"`
	LockWakeIPIs   uint64 `json:"lock_wake_ipis"`

	// FS buffer cache and log over the measurement window.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Commits     uint64 `json:"commits"`

	// Pager-side FS traffic, summed over the clients.
	PagerReads      uint64 `json:"pager_reads"`
	PagerWrites     uint64 `json:"pager_writes"`
	PagerPrefetches uint64 `json:"pager_prefetches"`

	// Breakdown is the per-call phase attribution of the window.
	Breakdown *obs.BreakdownSummary `json:"breakdown,omitempty"`
}

// DBScaleResult holds the sweep.
type DBScaleResult struct {
	Records      int            `json:"records"`
	OpsPerClient int            `json:"ops_per_client"`
	CoreCounts   []int          `json:"core_counts"`
	Workloads    []string       `json:"workloads"`
	Cells        []*DBScaleCell `json:"cells"`
}

// DBScale runs the sweep with catalog options.
func DBScale(cfg DBScaleConfig) (*DBScaleResult, error) {
	return NewSession(nil).DBScale(cfg)
}

// DBScale is the session form: each cell feeds a per-op latency histogram
// "dbscale/<workload>/<cores>c/<lock>+<io>" and emits one Record.
func (s *Session) DBScale(cfg DBScaleConfig) (*DBScaleResult, error) {
	if len(cfg.CoreCounts) == 0 {
		cfg.CoreCounts = []int{1, 2, 4}
	}
	if cfg.Records == 0 {
		cfg.Records = 240
	}
	if cfg.OpsPerClient == 0 {
		cfg.OpsPerClient = 48
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []ycsb.Workload{
			dbWorkload(ycsb.WorkloadA(cfg.Records)),
			dbWorkload(ycsb.WorkloadB(cfg.Records)),
			dbScanWorkload(cfg.Records),
		}
	}
	res := &DBScaleResult{
		Records: cfg.Records, OpsPerClient: cfg.OpsPerClient,
		CoreCounts: cfg.CoreCounts,
	}
	type cellSpec struct {
		w     ycsb.Workload
		cores int
		lock  string
		io    string
	}
	var specs []cellSpec
	for _, w := range cfg.Workloads {
		res.Workloads = append(res.Workloads, w.Name)
		for _, cores := range cfg.CoreCounts {
			for _, lock := range []string{"biglock", "finelock"} {
				for _, io := range []string{"sync", "batched", "async"} {
					specs = append(specs, cellSpec{w, cores, lock, io})
				}
			}
		}
	}
	cells := make([]*DBScaleCell, len(specs))
	err := runCells(s, len(specs), func(sub *Session, i int) error {
		sp := specs[i]
		c, err := sub.runDBScaleCell(cfg, sp.w, sp.cores, sp.lock, sp.io)
		cells[i] = c
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Cells = cells
	return res, nil
}

// dbScanWorkload is YCSB-E trimmed for the simulated pipeline: scans are
// bounded at 25 rows so a scan-heavy cell costs the same order as the
// point workloads.
func dbScanWorkload(records int) ycsb.Workload {
	w := dbWorkload(ycsb.WorkloadE(records))
	w.MaxScanLen = 25
	return w
}

// dbWorkload widens YCSB rows to ~800 bytes so a client's btree overflows
// the 64-page pager cache: the zipfian tail then misses in SQLite's page
// cache and reads reach the filesystem, which is what the lock-mode and
// IO-mode axes are meant to stress. With the stock 100-byte fields the
// whole table caches client-side and the cells measure only commit
// traffic.
func dbWorkload(w ycsb.Workload) ycsb.Workload {
	w.FieldLength = 800
	return w
}

// dbOps is the per-client measured op count for a workload: scan-heavy
// mixes run a quarter (each scan reads up to MaxScanLen rows).
func dbOps(cfg DBScaleConfig, w ycsb.Workload) int {
	ops := cfg.OpsPerClient
	if w.ScanProp > 0 {
		ops /= 4
		if ops == 0 {
			ops = 1
		}
	}
	return ops
}

// runDBScaleCell measures one (workload, cores, lock, io) configuration.
func (s *Session) runDBScaleCell(cfg DBScaleConfig, w ycsb.Workload, cores int, lock, ioMode string) (*DBScaleCell, error) {
	label := fmt.Sprintf("dbscale/%s/%dc/%s+%s", w.Name, cores, lock, ioMode)
	world := s.world(label, WorldConfig{Flavor: cfg.Flavor, Cores: cores, SkyBridge: true})
	h := s.hist(label)
	k := world.K
	pl := k.Placement()

	fcfg := fs.Config{BatchIO: ioMode != "sync"}
	if lock == "finelock" {
		fcfg.Lock = fs.LockFine
	}
	async := ioMode == "async"
	st, err := BuildDBStackCfg(world, ModeSB, fcfg, async)
	if err != nil {
		return nil, err
	}
	pol := mk.WakePolicy{}
	var ringSrv *core.RingServer
	if async {
		ringSrv, err = world.SB.NewRingServer(st.FSAsyncID(), pol)
		if err != nil {
			return nil, err
		}
	}

	// Bind+load phase: one client per core, each with its own database
	// file on the shared FS. Loading commits in batches of 64 rows so the
	// journal protocol does not dominate setup. Async rings are opened
	// here but stay idle until the pagers switch onto them below.
	clients := cores
	procs := make([]*mk.Process, clients)
	dbs := make([]*db.DB, clients)
	tabs := make([]*db.Table, clients)
	rings := make([]*svc.AsyncConn, clients)
	var loadErr error
	fail := func(err error) {
		if loadErr == nil {
			loadErr = err
		}
	}
	for ci := 0; ci < clients; ci++ {
		ci := ci
		procs[ci] = k.NewProcess(fmt.Sprintf("sql%d", ci))
		procs[ci].Spawn("load", pl.Core(ci), func(env *mk.Env) {
			conn, err := st.FSConn(env, procs[ci])
			if err != nil {
				fail(fmt.Errorf("client %d conn: %w", ci, err))
				return
			}
			fsc := &fs.Client{Conn: conn}
			if async {
				ring, err := st.FSAsyncConn(env, dbRingQD, db.PageSize, pol)
				if err != nil {
					fail(fmt.Errorf("client %d ring: %w", ci, err))
					return
				}
				rings[ci] = ring
			}
			d, err := db.OpenIO(env, procs[ci], fsc, fmt.Sprintf("d%d", ci), db.PagerIO{Batch: ioMode != "sync"})
			if err != nil {
				fail(fmt.Errorf("client %d open: %w", ci, err))
				return
			}
			if _, err := d.Exec(env, "CREATE TABLE u (id INTEGER PRIMARY KEY, f TEXT)"); err != nil {
				fail(fmt.Errorf("client %d create: %w", ci, err))
				return
			}
			tab, _ := d.TableByName("u")
			if err := d.Begin(env); err != nil {
				fail(err)
				return
			}
			for i := 0; i < cfg.Records; i++ {
				if _, err := tab.Insert(env, []db.Value{db.IntValue(int64(i)), db.TextValue(ycsb.RecordValue(w, int64(i)))}); err != nil {
					fail(fmt.Errorf("client %d load row %d: %w", ci, i, err))
					return
				}
				if (i+1)%64 == 0 {
					if err := d.Commit(env); err != nil {
						fail(err)
						return
					}
					if err := d.Begin(env); err != nil {
						fail(err)
						return
					}
				}
			}
			if err := d.Commit(env); err != nil {
				fail(err)
				return
			}
			dbs[ci], tabs[ci] = d, tab
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if loadErr != nil {
		return nil, loadErr
	}
	// Async cells route commit writeback (and scan prefetch) through the
	// rings from here on; the poll thread spawns inside the measurement
	// window so its cycles are part of the cost being measured.
	if async {
		for ci := range dbs {
			dbs[ci].Pager().SetIO(db.PagerIO{Batch: true, Async: rings[ci]})
		}
	}

	k.Mach.AlignClocks()
	k.Mach.ResetStats()
	s.callSite(label).Obs.Reset()
	baseDirect, baseBatch := world.SB.DirectCalls, world.SB.BatchCalls
	baseRing, baseBells := world.SB.RingOps, world.SB.RingDoorbells
	acq0, cont0, wait0, ipi0 := st.FS.LockStats()
	hits0, miss0, commits0 := st.FS.Cache()
	var reads0, writes0 uint64
	for _, d := range dbs {
		reads0 += d.Pager().FsReads
		writes0 += d.Pager().FsWrites
	}

	var srvErr error
	if async {
		st.FS.Proc.Spawn("poll", pl.Core(cores-1), func(env *mk.Env) {
			if err := ringSrv.Serve(env); err != nil && srvErr == nil {
				srvErr = fmt.Errorf("fs poll: %w", err)
			}
		})
	}
	ops := dbOps(cfg, w)
	durations := make([]uint64, clients)
	remaining := clients
	var runErr error
	failRun := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}
	for ci := 0; ci < clients; ci++ {
		ci := ci
		procs[ci].Spawn("drive", pl.Core(ci), func(env *mk.Env) {
			defer func() {
				if remaining--; remaining == 0 && ringSrv != nil {
					ringSrv.Close(env)
				}
			}()
			tab := tabs[ci]
			// Every client drives the identical op sequence against its own
			// database: per-client work is then constant across core counts,
			// so the cell ratios measure contention and IPC-path cost, not
			// seed luck in the read/write draw.
			g := ycsb.NewGenerator(w, 1000)
			start := env.Now()
			for done := 0; done < ops; done++ {
				op := g.Next()
				t := env.Now()
				var err error
				switch op.Kind {
				case ycsb.OpRead:
					_, _, err = tab.Get(env, op.Key)
				case ycsb.OpUpdate:
					_, err = tab.Update(env, op.Key, []db.Value{db.IntValue(op.Key), db.TextValue(op.Value)})
				case ycsb.OpInsert:
					_, err = tab.Insert(env, []db.Value{db.IntValue(op.Key), db.TextValue(op.Value)})
				case ycsb.OpScan:
					n := 0
					err = tab.ScanFrom(env, op.Key, func(int64, []db.Value) bool {
						n++
						return n < op.ScanLen
					})
				}
				if err != nil {
					failRun(fmt.Errorf("client %d op %d: %w", ci, done, err))
					return
				}
				h.Observe(env.Now() - t)
			}
			durations[ci] = env.Now() - start
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	if srvErr != nil {
		return nil, srvErr
	}

	acq1, cont1, wait1, ipi1 := st.FS.LockStats()
	hits1, miss1, commits1 := st.FS.Cache()
	cell := &DBScaleCell{
		Workload: w.Name, Cores: cores, Lock: lock, IO: ioMode,
		TotalOps:       ops * clients,
		ClientCycles:   durations,
		DirectCalls:    world.SB.DirectCalls - baseDirect,
		BatchCalls:     world.SB.BatchCalls - baseBatch,
		RingOps:        world.SB.RingOps - baseRing,
		Doorbells:      world.SB.RingDoorbells - baseBells,
		LockAcq:        acq1 - acq0,
		LockContended:  cont1 - cont0,
		LockWaitCycles: wait1 - wait0,
		LockWakeIPIs:   ipi1 - ipi0,
		CacheHits:      hits1 - hits0,
		CacheMisses:    miss1 - miss0,
		Commits:        commits1 - commits0,
	}
	for _, d := range dbs {
		cell.PagerReads += d.Pager().FsReads
		cell.PagerWrites += d.Pager().FsWrites
		cell.PagerPrefetches += d.Pager().Prefetches
	}
	cell.PagerReads -= reads0
	cell.PagerWrites -= writes0
	var sum uint64
	for _, d := range durations {
		sum += d
		if d > cell.Makespan {
			cell.Makespan = d
		}
	}
	if cell.Makespan > 0 {
		cell.OpsPerMcyc = float64(cell.TotalOps) * 1e6 / float64(cell.Makespan)
	}
	if cell.TotalOps > 0 {
		cell.CyclesPerOp = float64(sum) / float64(cell.TotalOps)
	}
	cell.Breakdown = s.breakdownOf(label)

	s.record(Record{
		Experiment: "dbscale",
		Config: map[string]string{
			"workload": w.Name,
			"cores":    fmt.Sprintf("%d", cores),
			"lock":     lock,
			"io":       ioMode,
			"records":  fmt.Sprintf("%d", cfg.Records),
			"ops":      fmt.Sprintf("%d", cell.TotalOps),
		},
		CyclesPerOp: cell.CyclesPerOp,
		Values: map[string]float64{
			"ops_per_megacycle": cell.OpsPerMcyc,
			"cycles_per_op":     cell.CyclesPerOp,
			"makespan_cycles":   float64(cell.Makespan),
			"ops_per_sec":       OpsPerSec(cell.TotalOps, cell.Makespan),
			"direct_calls":      float64(cell.DirectCalls),
			"batch_calls":       float64(cell.BatchCalls),
			"ring_ops":          float64(cell.RingOps),
			"doorbells":         float64(cell.Doorbells),
			"lock_acq":          float64(cell.LockAcq),
			"lock_contended":    float64(cell.LockContended),
			"lock_wait_cycles":  float64(cell.LockWaitCycles),
			"lock_wake_ipis":    float64(cell.LockWakeIPIs),
			"cache_hits":        float64(cell.CacheHits),
			"cache_misses":      float64(cell.CacheMisses),
			"fs_commits":        float64(cell.Commits),
			"pager_reads":       float64(cell.PagerReads),
			"pager_writes":      float64(cell.PagerWrites),
			"pager_prefetches":  float64(cell.PagerPrefetches),
		},
		Latency:   s.latencyOf(label),
		Breakdown: cell.Breakdown,
	})
	return cell, nil
}

// cell looks up (workload, cores, lock, io).
func (r *DBScaleResult) cell(workload string, cores int, lock, io string) *DBScaleCell {
	for _, c := range r.Cells {
		if c.Workload == workload && c.Cores == cores && c.Lock == lock && c.IO == io {
			return c
		}
	}
	return nil
}

// Render formats the sweep: one row per (workload, lock, io) with
// aggregate throughput per core count and the widest/narrowest ratio.
func (r *DBScaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Database scaling: SQLite -> xv6fs -> blockdev, per-client ops fixed (%d records, %d ops/client)\n",
		r.Records, r.OpsPerClient)
	fmt.Fprintf(&b, "%-10s %-9s %-8s", "workload", "lock", "io")
	for _, c := range r.CoreCounts {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("%dc op/Mc", c))
	}
	last := r.CoreCounts[len(r.CoreCounts)-1]
	first := r.CoreCounts[0]
	fmt.Fprintf(&b, " %8s\n", fmt.Sprintf("%dc/%dc", last, first))
	for _, w := range r.Workloads {
		for _, lock := range []string{"biglock", "finelock"} {
			for _, io := range []string{"sync", "batched", "async"} {
				var firstT, lastT float64
				printed := false
				for _, cores := range r.CoreCounts {
					c := r.cell(w, cores, lock, io)
					if c == nil {
						continue
					}
					if !printed {
						fmt.Fprintf(&b, "%-10s %-9s %-8s", w, lock, io)
						printed = true
					}
					fmt.Fprintf(&b, " %10.2f", c.OpsPerMcyc)
					if cores == first {
						firstT = c.OpsPerMcyc
					}
					if cores == last {
						lastT = c.OpsPerMcyc
					}
				}
				if printed {
					if firstT > 0 {
						fmt.Fprintf(&b, " %7.2fx", lastT/firstT)
					}
					fmt.Fprintln(&b)
				}
			}
		}
	}
	return b.String()
}

// WriteDBBench serializes r as the BENCH_db.json document.
func WriteDBBench(w io.Writer, r *DBScaleResult) error {
	buf, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
