package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"skybridge/internal/core"
	"skybridge/internal/kv"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
	"skybridge/internal/svc"
	"skybridge/internal/ycsb"
)

// Asynchronous IPC: the sharded KV store driven through submission/
// completion rings (core.AsyncRing) instead of per-operation direct
// calls. The machine splits into client cores and shard cores; each shard
// runs a poll thread (core.RingServer) draining its clients' rings, so
// the handler work overlaps the clients' marshalling instead of running
// on their threads. The sweep measures closed-loop throughput across
// queue depths and core counts against a synchronous DirectCall baseline
// on the identical topology — the QD=1 cells isolate the cost of the
// ring machinery itself, the deep cells its pipelining benefit, and the
// doorbell/wakeup counters attribute every crossing and IPI the adaptive
// policy did or did not take.

// AsyncConfig parameterizes the asynchronous sweep.
type AsyncConfig struct {
	Flavor mk.Flavor
	// CoreCounts are the machine widths swept (default 1, 2, 4).
	CoreCounts []int
	// Workloads are the YCSB mixes driven (default A, C).
	Workloads []ycsb.Workload
	// Records is the preloaded keyspace size (spread over shards).
	Records int
	// TotalOps is the operation count per cell, split over the clients.
	TotalOps int
	// Depths are the ring queue depths swept (default 1, 2, 8, 32).
	Depths []int
}

// AsyncCell is one measured configuration. Mode "sync" cells have QD 0.
type AsyncCell struct {
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	Mode     string `json:"mode"`
	QD       int    `json:"qd"`

	// OpsPerMcyc is aggregate closed-loop throughput over the makespan;
	// CyclesPerOp the sum of client busy cycles over total operations.
	OpsPerMcyc  float64 `json:"ops_per_mcyc"`
	CyclesPerOp float64 `json:"cycles_per_op"`
	Makespan    uint64  `json:"makespan_cycles"`

	ClientCycles []uint64 `json:"client_cycles"`

	// Crossing accounting: sync cells take one crossing per op
	// (DirectCalls); async cells take none per op (RingOps) and only
	// doorbell when a server sleeps.
	DirectCalls      uint64 `json:"direct_calls"`
	RingOps          uint64 `json:"ring_ops"`
	Doorbells        uint64 `json:"doorbells"`
	DoorbellsSkipped uint64 `json:"doorbells_skipped"`

	// Adaptive-wakeup accounting (both sides' waits).
	SpinWakes  uint64 `json:"spin_wakes"`
	Parks      uint64 `json:"parks"`
	LocalWakes uint64 `json:"local_wakes"`
	IPIWakes   uint64 `json:"ipi_wakes"`
	IPIs       uint64 `json:"ipis"`

	// Ring occupancy over the run (mean/max of per-submit depth).
	DepthMean float64 `json:"depth_mean,omitempty"`
	DepthMax  uint64  `json:"depth_max,omitempty"`

	// Depth digests the per-submit ring-depth distribution, every client
	// ring's registry histogram merged (async cells only).
	Depth *obs.Summary `json:"depth,omitempty"`
	// Breakdown is the per-call phase attribution of the measurement
	// window (internal/obs taxonomy: crossing, ring_wait, service,
	// wakeup_delivery, client_spin, reap_delay).
	Breakdown *obs.BreakdownSummary `json:"breakdown,omitempty"`
}

// AsyncResult holds the sweep.
type AsyncResult struct {
	Records    int          `json:"records"`
	TotalOps   int          `json:"total_ops"`
	CoreCounts []int        `json:"core_counts"`
	Depths     []int        `json:"depths"`
	Workloads  []string     `json:"workloads"`
	Cells      []*AsyncCell `json:"cells"`
}

// Async runs the sweep with catalog options.
func Async(cfg AsyncConfig) (*AsyncResult, error) {
	return NewSession(nil).Async(cfg)
}

// Async is the session form: each cell feeds a per-op latency histogram
// "async/<workload>/<cores>c/<mode>" and emits one Record.
func (s *Session) Async(cfg AsyncConfig) (*AsyncResult, error) {
	if len(cfg.CoreCounts) == 0 {
		cfg.CoreCounts = []int{1, 2, 4}
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []ycsb.Workload{ycsb.WorkloadA(cfg.Records), ycsb.WorkloadC(cfg.Records)}
	}
	if len(cfg.Depths) == 0 {
		cfg.Depths = []int{1, 2, 8, 32}
	}
	res := &AsyncResult{
		Records: cfg.Records, TotalOps: cfg.TotalOps,
		CoreCounts: cfg.CoreCounts, Depths: cfg.Depths,
	}
	// Every (workload, cores, qd) cell — the sync baseline is qd 0 —
	// builds its own world, so the sweep partitions onto the -j worker
	// pool (runCells) with declaration-ordered merge.
	type cellSpec struct {
		w         ycsb.Workload
		cores, qd int
	}
	var specs []cellSpec
	for _, w := range cfg.Workloads {
		res.Workloads = append(res.Workloads, w.Name)
		for _, cores := range cfg.CoreCounts {
			specs = append(specs, cellSpec{w, cores, 0})
			for _, qd := range cfg.Depths {
				specs = append(specs, cellSpec{w, cores, qd})
			}
		}
	}
	cells := make([]*AsyncCell, len(specs))
	err := runCells(s, len(specs), func(sub *Session, i int) error {
		c, err := sub.runAsyncCell(cfg, specs[i].w, specs[i].cores, specs[i].qd)
		cells[i] = c
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Cells = cells
	return res, nil
}

// asyncTopology splits a machine between clients and shards: half the
// cores each (shards on the upper half), degenerating to one of each
// sharing the single core of a 1-core machine.
func asyncTopology(cores int) (clients, shards int) {
	shards = cores / 2
	if shards == 0 {
		shards = 1
	}
	clients = cores - shards
	if clients == 0 {
		clients = 1
	}
	return clients, shards
}

// runAsyncCell measures one (workload, cores, qd) configuration; qd 0 is
// the synchronous DirectCall baseline on the identical topology.
func (s *Session) runAsyncCell(cfg AsyncConfig, w ycsb.Workload, cores, qd int) (*AsyncCell, error) {
	mode := "sync"
	if qd > 0 {
		mode = fmt.Sprintf("qd%d", qd)
	}
	label := fmt.Sprintf("async/%s/%dc/%s", w.Name, cores, mode)
	world := s.world(label, WorldConfig{Flavor: cfg.Flavor, Cores: cores, SkyBridge: true})
	h := s.hist(label)
	k := world.K
	pl := k.Placement()
	clients, shards := asyncTopology(cores)

	// Register phase: one store shard per shard core, preloaded with the
	// records it owns (plain values — no crypto stage; this experiment
	// isolates the transport).
	slotSize := 4 + 32 + 2*w.FieldLength
	nslots := 2*cfg.Records/shards + 128
	stores := kv.NewStoreShards(k, "kv", shards, nslots, slotSize)
	kvIDs := make([]int, shards)
	var regErr error
	for i := range stores {
		i := i
		stores[i].Proc.Spawn("shard", pl.Core(clients+i), func(env *mk.Env) {
			for r := int64(0); r < int64(cfg.Records); r++ {
				key := scalingKey(r)
				if kv.ShardOf(key, shards) != i {
					continue
				}
				if err := stores[i].Preload(env, key, []byte(ycsb.RecordValue(w, r))); err != nil && regErr == nil {
					regErr = fmt.Errorf("shard %d preload: %w", i, err)
					return
				}
			}
			id, err := svc.RegisterSkyBridgeServer(world.SB, env, 2*clients, stores[i].Handler())
			if err != nil && regErr == nil {
				regErr = fmt.Errorf("shard %d register: %w", i, err)
				return
			}
			kvIDs[i] = id
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if regErr != nil {
		return nil, regErr
	}
	pol := mk.WakePolicy{}
	ringServers := make([]*core.RingServer, 0, shards)
	if qd > 0 {
		for _, id := range kvIDs {
			rs, err := world.SB.NewRingServer(id, pol)
			if err != nil {
				return nil, err
			}
			ringServers = append(ringServers, rs)
		}
	}

	// Bind phase: client ci on core ci, one connection (sync) or ring
	// (async) per shard.
	procs := make([]*mk.Process, clients)
	syncKVs := make([]*svc.Sharded, clients)
	asyncKVs := make([]*kv.AsyncKV, clients)
	var bindErr error
	for ci := 0; ci < clients; ci++ {
		ci := ci
		procs[ci] = k.NewProcess(fmt.Sprintf("cli%d", ci))
		procs[ci].Spawn("bind", pl.Core(ci), func(env *mk.Env) {
			if qd == 0 {
				conns := make([]svc.Conn, shards)
				for i, id := range kvIDs {
					c, err := svc.NewSkyBridge(world.SB, env, id)
					if err != nil {
						if bindErr == nil {
							bindErr = fmt.Errorf("client %d bind shard %d: %w", ci, i, err)
						}
						return
					}
					conns[i] = c
				}
				syncKVs[ci] = svc.NewSharded(conns, kv.PickReq(shards))
				return
			}
			rings := make([]*svc.AsyncConn, shards)
			for i, id := range kvIDs {
				c, err := svc.OpenAsync(world.SB, env, id, qd, slotSize+64, pol)
				if err != nil {
					if bindErr == nil {
						bindErr = fmt.Errorf("client %d ring to shard %d: %w", ci, i, err)
					}
					return
				}
				rings[i] = c
			}
			asyncKVs[ci] = kv.NewAsyncKV(rings)
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if bindErr != nil {
		return nil, bindErr
	}

	// Measurement: align the core clocks (setup charged unevenly — boot
	// and binding on core 0, preloading on the shard cores — and a skewed
	// start would bill the whole offset to the first cross-core completion
	// wait), reset machine-wide counters, then run the poll threads
	// (async) and the closed-loop clients together. The last client to
	// drain closes the poll loops so the engine can retire them.
	k.Mach.AlignClocks()
	k.Mach.ResetStats()
	s.callSite(label).Obs.Reset() // breakdown covers the window, not binding
	baseDirect := world.SB.DirectCalls
	baseRing, baseBells, baseSkip := world.SB.RingOps, world.SB.RingDoorbells, world.SB.RingDoorbellsSkipped
	baseSpin, baseParks, baseLocal, baseIPIW := k.SpinWakes, k.Parks, k.LocalWakes, k.IPIWakes

	var srvErr error
	for i, rs := range ringServers {
		i, rs := i, rs
		stores[i].Proc.Spawn("poll", pl.Core(clients+i), func(env *mk.Env) {
			if err := rs.Serve(env); err != nil && srvErr == nil {
				srvErr = fmt.Errorf("shard %d poll: %w", i, err)
			}
		})
	}
	durations := make([]uint64, clients)
	remaining := clients
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}
	for ci := 0; ci < clients; ci++ {
		ci := ci
		ops := cfg.TotalOps / clients
		if ci < cfg.TotalOps%clients {
			ops++
		}
		procs[ci].Spawn("drive", pl.Core(ci), func(env *mk.Env) {
			defer func() {
				if remaining--; remaining == 0 {
					for _, rs := range ringServers {
						rs.Close(env)
					}
				}
			}()
			g := ycsb.NewGenerator(w, 1000+int64(ci))
			start := env.Now()
			completed := 0
			if qd == 0 {
				c := syncKVs[ci]
				for done := 0; done < ops; done++ {
					op := g.Next()
					t := env.Now()
					resp, err := c.Invoke(env, asyncReq(op))
					if err != nil {
						fail(fmt.Errorf("client %d op %d: %w", ci, done, err))
						return
					}
					if err := kv.CheckResp(resp); err != nil {
						fail(fmt.Errorf("client %d op %d: %w", ci, done, err))
						return
					}
					completed++
					h.Observe(env.Now() - t)
				}
			} else {
				a := asyncKVs[ci]
				for done := 0; done < ops; done++ {
					op := g.Next()
					t := env.Now()
					var err error
					if op.Kind == ycsb.OpUpdate {
						err = a.SubmitPut(env, scalingKey(op.Key), []byte(op.Value))
					} else {
						err = a.SubmitGet(env, scalingKey(op.Key))
					}
					if err == nil {
						err = a.FlushAll(env)
					}
					var resps []svc.Resp
					if err == nil {
						resps, err = a.Reap(env)
					}
					if err != nil {
						fail(fmt.Errorf("client %d op %d: %w", ci, done, err))
						return
					}
					for _, r := range resps {
						if err := kv.CheckResp(r); err != nil {
							fail(fmt.Errorf("client %d: %w", ci, err))
							return
						}
						completed++
					}
					h.Observe(env.Now() - t)
				}
				resps, err := a.Drain(env)
				if err != nil {
					fail(fmt.Errorf("client %d drain: %w", ci, err))
					return
				}
				for _, r := range resps {
					if err := kv.CheckResp(r); err != nil {
						fail(fmt.Errorf("client %d: %w", ci, err))
						return
					}
					completed++
				}
			}
			if completed != ops {
				fail(fmt.Errorf("client %d completed %d of %d ops", ci, completed, ops))
				return
			}
			durations[ci] = env.Now() - start
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	if srvErr != nil {
		return nil, srvErr
	}

	cell := &AsyncCell{
		Workload: w.Name, Cores: cores, Mode: mode, QD: qd,
		ClientCycles:     durations,
		DirectCalls:      world.SB.DirectCalls - baseDirect,
		RingOps:          world.SB.RingOps - baseRing,
		Doorbells:        world.SB.RingDoorbells - baseBells,
		DoorbellsSkipped: world.SB.RingDoorbellsSkipped - baseSkip,
		SpinWakes:        k.SpinWakes - baseSpin,
		Parks:            k.Parks - baseParks,
		LocalWakes:       k.LocalWakes - baseLocal,
		IPIWakes:         k.IPIWakes - baseIPIW,
		IPIs:             k.Mach.Obs.Value("machine.ipis"),
	}
	var sum uint64
	for _, d := range durations {
		sum += d
		if d > cell.Makespan {
			cell.Makespan = d
		}
	}
	if cell.Makespan > 0 {
		cell.OpsPerMcyc = float64(cfg.TotalOps) * 1e6 / float64(cell.Makespan)
	}
	if cfg.TotalOps > 0 {
		cell.CyclesPerOp = float64(sum) / float64(cfg.TotalOps)
	}
	if qd > 0 {
		// Merge every client ring's per-submit depth histogram into the
		// session registry (label + "/depth") so the sweep's occupancy
		// distribution lands in the metrics document, and digest it into
		// the cell for BENCH_async.json.
		depth := s.hist(label + "/depth")
		for _, a := range asyncKVs {
			for _, c := range a.Rings {
				depth.Merge(c.Ring.Depth())
			}
		}
		if depth.Count() > 0 {
			cell.DepthMean = float64(depth.Sum()) / float64(depth.Count())
			cell.DepthMax = depth.Max()
			ds := depth.Summary()
			cell.Depth = &ds
		}
	}
	cell.Breakdown = s.breakdownOf(label)

	reg := k.Mach.Obs
	values := map[string]float64{
		"ops_per_megacycle":  cell.OpsPerMcyc,
		"cycles_per_op":      cell.CyclesPerOp,
		"makespan_cycles":    float64(cell.Makespan),
		"ops_per_sec":        OpsPerSec(cfg.TotalOps, cell.Makespan),
		"direct_calls":       float64(cell.DirectCalls),
		"ring_ops":           float64(cell.RingOps),
		"doorbells":          float64(cell.Doorbells),
		"doorbells_skipped":  float64(cell.DoorbellsSkipped),
		"spin_wakes":         float64(cell.SpinWakes),
		"parks":              float64(cell.Parks),
		"local_wakes":        float64(cell.LocalWakes),
		"ipi_wakes":          float64(cell.IPIWakes),
		"ipis":               float64(cell.IPIs),
		"depth_mean":         cell.DepthMean,
		"depth_max":          float64(cell.DepthMax),
		"vmfuncs":            float64(reg.SumSuffix(".vmfuncs")),
		"l1d_misses":         float64(reg.SumSuffix(".L1D.misses")),
		"spin_cycles_parked": float64(k.SpinCycles),
	}
	for i, d := range durations {
		values[fmt.Sprintf("client%d_cycles", i)] = float64(d)
	}
	s.record(Record{
		Experiment: "async",
		Config: map[string]string{
			"workload": w.Name,
			"cores":    fmt.Sprintf("%d", cores),
			"mode":     mode,
			"qd":       fmt.Sprintf("%d", qd),
			"records":  fmt.Sprintf("%d", cfg.Records),
			"ops":      fmt.Sprintf("%d", cfg.TotalOps),
		},
		CyclesPerOp: cell.CyclesPerOp,
		Values:      values,
		Latency:     s.latencyOf(label),
		Breakdown:   cell.Breakdown,
	})
	return cell, nil
}

// asyncReq converts a YCSB op to a store request (sync path).
func asyncReq(op ycsb.Op) svc.Req {
	if op.Kind == ycsb.OpUpdate {
		key := scalingKey(op.Key)
		payload := make([]byte, 2+len(key)+len(op.Value))
		payload[0], payload[1] = byte(len(key)), byte(len(key)>>8)
		copy(payload[2:], key)
		copy(payload[2+len(key):], op.Value)
		return svc.Req{Op: kv.OpPut, Data: payload}
	}
	return svc.Req{Op: kv.OpGet, Data: scalingKey(op.Key)}
}

// cell looks up (workload, cores, mode).
func (r *AsyncResult) cell(workload string, cores int, mode string) *AsyncCell {
	for _, c := range r.Cells {
		if c.Workload == workload && c.Cores == cores && c.Mode == mode {
			return c
		}
	}
	return nil
}

// Render formats the sweep: throughput per queue depth against the sync
// baseline, with the best-depth speedup per row.
func (r *AsyncResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Asynchronous IPC: submission/completion rings vs sync DirectCall (%d records, %d ops)\n",
		r.Records, r.TotalOps)
	fmt.Fprintf(&b, "%-10s %5s %12s", "workload", "cores", "sync op/Mc")
	for _, qd := range r.Depths {
		fmt.Fprintf(&b, " %11s", fmt.Sprintf("qd%d op/Mc", qd))
	}
	fmt.Fprintf(&b, " %8s\n", "best")
	for _, w := range r.Workloads {
		for _, cores := range r.CoreCounts {
			sync := r.cell(w, cores, "sync")
			if sync == nil {
				continue
			}
			fmt.Fprintf(&b, "%-10s %5d %12.1f", w, cores, sync.OpsPerMcyc)
			best := 0.0
			for _, qd := range r.Depths {
				c := r.cell(w, cores, fmt.Sprintf("qd%d", qd))
				if c == nil {
					fmt.Fprintf(&b, " %11s", "-")
					continue
				}
				fmt.Fprintf(&b, " %11.1f", c.OpsPerMcyc)
				if c.OpsPerMcyc > best {
					best = c.OpsPerMcyc
				}
			}
			if sync.OpsPerMcyc > 0 {
				fmt.Fprintf(&b, " %7.2fx", best/sync.OpsPerMcyc)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// WriteAsyncBench serializes r as the BENCH_async.json document.
func WriteAsyncBench(w io.Writer, r *AsyncResult) error {
	buf, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
