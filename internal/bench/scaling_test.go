package bench

import (
	"bytes"
	"testing"

	"skybridge/internal/ycsb"
)

// testScalingConfig is small enough for -race runs yet large enough
// (>=192 ops) that the per-crossing savings dominate the one-time
// cold-cache cost of the batch ring.
func testScalingConfig() ScalingConfig {
	return ScalingConfig{
		CoreCounts: []int{1, 2},
		Workloads:  []ycsb.Workload{ycsb.WorkloadC(64)},
		Records:    64,
		TotalOps:   192,
		Batch:      DefaultScalingBatch,
	}
}

// TestScalingSweep drives the full multi-client closed-loop stack — the
// -race target for the multicore driver — and checks the headline
// claims at miniature scale: adding a core raises aggregate throughput,
// and batched submission lowers amortized cycles per op.
func TestScalingSweep(t *testing.T) {
	r, err := Scaling(testScalingConfig())
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := r.cell("YCSB-C", 1), r.cell("YCSB-C", 2)
	if c1 == nil || c2 == nil {
		t.Fatalf("missing cells in %+v", r.Cells)
	}
	if c2.OpsPerMcyc <= c1.OpsPerMcyc {
		t.Errorf("2-core throughput %.2f ops/Mcyc not above 1-core %.2f",
			c2.OpsPerMcyc, c1.OpsPerMcyc)
	}
	if len(c2.ClientCycles) != 2 || len(c2.ShardCalls) != 2 {
		t.Errorf("2-core cell has %d client windows, %d shard counters; want 2, 2",
			len(c2.ClientCycles), len(c2.ShardCalls))
	}
	for i, calls := range c2.ShardCalls {
		if calls == 0 {
			t.Errorf("shard %d served no calls; routing is not fanning out", i)
		}
	}
	// Batching leverage: fewer crossings than requests.
	if c2.BatchCrossings == 0 || c2.DirectCalls <= c2.BatchCrossings {
		t.Errorf("crossings %d vs direct calls %d: batching not engaged",
			c2.BatchCrossings, c2.DirectCalls)
	}

	// Ablation: unbatched submission on the widest machine must cost more
	// amortized cycles per op than the batched partner cell.
	b1 := r.AblationB1
	if b1 == nil || b1.Batch != 1 || b1.Cores != 2 {
		t.Fatalf("ablation cell = %+v, want batch 1 on 2 cores", b1)
	}
	if b1.CyclesPerOp <= c2.CyclesPerOp {
		t.Errorf("B=1 costs %.0f cyc/op, batched B=%d costs %.0f; batching should be cheaper",
			b1.CyclesPerOp, c2.Batch, c2.CyclesPerOp)
	}
}

// TestScalingDeterministic: two independent sweeps must render and
// serialize byte-identically — the CI determinism gate depends on it.
func TestScalingDeterministic(t *testing.T) {
	run := func() (string, []byte) {
		r, err := Scaling(testScalingConfig())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteScalingBench(&buf, r); err != nil {
			t.Fatal(err)
		}
		return r.Render(), buf.Bytes()
	}
	out1, json1 := run()
	out2, json2 := run()
	if out1 != out2 {
		t.Errorf("renders differ:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	if !bytes.Equal(json1, json2) {
		t.Error("BENCH_scaling.json bytes differ between identical runs")
	}
	if out1 == "" {
		t.Error("empty render")
	}
}
