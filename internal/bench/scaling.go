package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"skybridge/internal/kv"
	"skybridge/internal/mk"
	"skybridge/internal/svc"
	"skybridge/internal/ycsb"
)

// Multicore scaling: the KV pipeline sharded per core — every core owns
// one store shard and one crypto shard, each registered as its own
// SkyBridge server — driven closed-loop by one client thread per core.
// A client routes each key to its shard (kv.ShardOf) and submits up to B
// requests per trampoline+VMFUNC crossing (core.DirectCallBatch), so the
// cost of the crossing amortizes over the batch; the EPTP slot LRU
// (hv/eptplru.go) sees the whole server fan-out. The experiment reports
// aggregate throughput in operations per simulated megacycle across core
// counts, plus a batching ablation (B=1 vs B>1) at the widest machine.

// DefaultScalingBatch is the batch size B used by the scaling cells
// (bounded by core.MaxBatch).
const DefaultScalingBatch = 8

// ScalingConfig parameterizes the scaling sweep.
type ScalingConfig struct {
	Flavor mk.Flavor
	// CoreCounts are the machine widths swept (default 1, 2, 4).
	CoreCounts []int
	// Workloads are the YCSB mixes driven (default A, B, C).
	Workloads []ycsb.Workload
	// Records is the preloaded keyspace size (spread over shards).
	Records int
	// TotalOps is the operation count per cell, split over the clients.
	TotalOps int
	// Batch is the requests submitted per crossing (default
	// DefaultScalingBatch).
	Batch int
}

// ScalingCell is one measured configuration.
type ScalingCell struct {
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	Batch    int    `json:"batch"`

	// OpsPerMcyc is aggregate closed-loop throughput: total operations
	// over the makespan (slowest client's measured window), in ops per
	// simulated megacycle.
	OpsPerMcyc float64 `json:"ops_per_mcyc"`
	// CyclesPerOp is the amortized per-operation cost: the sum of all
	// clients' busy cycles over total operations (the batching-ablation
	// metric — unlike makespan it does not reward parallelism).
	CyclesPerOp float64 `json:"cycles_per_op"`
	// Makespan is the slowest client's measured window in cycles.
	Makespan uint64 `json:"makespan_cycles"`

	// ClientCycles is each client's measured window (one per core).
	ClientCycles []uint64 `json:"client_cycles"`
	// ShardCalls is each store shard's served direct calls.
	ShardCalls []uint64 `json:"shard_calls"`

	// Crossings vs. requests served over them (batching leverage).
	BatchCrossings uint64 `json:"batch_crossings"`
	DirectCalls    uint64 `json:"direct_calls"`
	// SlotLoads/SlotEvictions are the EPTP virtual-slot LRU counters.
	SlotLoads     uint64 `json:"slot_loads"`
	SlotEvictions uint64 `json:"slot_evictions"`
}

// ScalingResult holds the sweep plus the batching ablation.
type ScalingResult struct {
	Records    int            `json:"records"`
	TotalOps   int            `json:"total_ops"`
	Batch      int            `json:"batch"`
	CoreCounts []int          `json:"core_counts"`
	Workloads  []string       `json:"workloads"`
	Cells      []*ScalingCell `json:"cells"`
	// AblationB1 re-runs the first workload at the widest machine with
	// unbatched submission; its partner batched cell is in Cells.
	AblationB1 *ScalingCell `json:"ablation_b1"`
}

// Scaling runs the sweep with catalog options (records/ops knobs).
func Scaling(cfg ScalingConfig) (*ScalingResult, error) {
	return NewSession(nil).Scaling(cfg)
}

// Scaling is the session form: each cell feeds a per-batch latency
// histogram "scaling/<workload>/<cores>c/b<batch>" and emits one Record.
func (s *Session) Scaling(cfg ScalingConfig) (*ScalingResult, error) {
	if len(cfg.CoreCounts) == 0 {
		cfg.CoreCounts = []int{1, 2, 4}
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []ycsb.Workload{
			ycsb.WorkloadA(cfg.Records), ycsb.WorkloadB(cfg.Records), ycsb.WorkloadC(cfg.Records),
		}
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultScalingBatch
	}
	res := &ScalingResult{
		Records: cfg.Records, TotalOps: cfg.TotalOps, Batch: cfg.Batch,
		CoreCounts: cfg.CoreCounts,
	}
	// Every (workload, cores, batch) cell builds its own world, so the
	// sweep partitions into independent cells run on the -j worker pool
	// (runCells) and merged in declaration order — the ablation cell
	// (same stack and workload, widest machine, one request per crossing)
	// rides along as the last cell.
	type cellSpec struct {
		w            ycsb.Workload
		cores, batch int
	}
	var specs []cellSpec
	for _, w := range cfg.Workloads {
		res.Workloads = append(res.Workloads, w.Name)
		for _, cores := range cfg.CoreCounts {
			specs = append(specs, cellSpec{w, cores, cfg.Batch})
		}
	}
	wide := cfg.CoreCounts[len(cfg.CoreCounts)-1]
	specs = append(specs, cellSpec{cfg.Workloads[0], wide, 1})

	cells := make([]*ScalingCell, len(specs))
	err := runCells(s, len(specs), func(sub *Session, i int) error {
		c, err := sub.runScalingCell(cfg, specs[i].w, specs[i].cores, specs[i].batch)
		cells[i] = c
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Cells = cells[:len(cells)-1]
	res.AblationB1 = cells[len(cells)-1]
	return res, nil
}

// scalingKey is the canonical record key (shared by preload and clients).
func scalingKey(i int64) []byte { return []byte(fmt.Sprintf("user%08d", i)) }

// runScalingCell measures one (workload, cores, batch) configuration.
func (s *Session) runScalingCell(cfg ScalingConfig, w ycsb.Workload, cores, batch int) (*ScalingCell, error) {
	label := fmt.Sprintf("scaling/%s/%dc/b%d", w.Name, cores, batch)
	world := s.world(label, WorldConfig{Flavor: cfg.Flavor, Cores: cores, SkyBridge: true})
	h := s.hist(label)
	k := world.K
	pl := k.Placement()
	shards := cores
	clients := cores

	// One store shard and one crypto shard per core; each shard preloads
	// the records it owns (ciphertext precomputed — the cipher is a pure
	// stream) and registers as its own SkyBridge server from its core.
	slotSize := 4 + 32 + 2*w.FieldLength
	nslots := 2*cfg.Records/shards + 128
	stores := kv.NewStoreShards(k, "kv", shards, nslots, slotSize)
	cryptos := kv.NewCryptoShards(k, "enc", shards)
	kvIDs := make([]int, shards)
	encIDs := make([]int, shards)
	var regErr error
	for i := range stores {
		i := i
		stores[i].Proc.Spawn("shard", pl.Core(i), func(env *mk.Env) {
			for r := int64(0); r < int64(cfg.Records); r++ {
				key := scalingKey(r)
				if kv.ShardOf(key, shards) != i {
					continue
				}
				val := kv.CipherStream([]byte(ycsb.RecordValue(w, r)))
				if err := stores[i].Preload(env, key, val); err != nil && regErr == nil {
					regErr = fmt.Errorf("shard %d preload: %w", i, err)
					return
				}
			}
			id, err := svc.RegisterSkyBridgeServer(world.SB, env, 2*clients, stores[i].Handler())
			if err != nil && regErr == nil {
				regErr = fmt.Errorf("shard %d register: %w", i, err)
				return
			}
			kvIDs[i] = id
		})
		cryptos[i].Proc.Spawn("shard", pl.Core(i), func(env *mk.Env) {
			id, err := svc.RegisterSkyBridgeServer(world.SB, env, 2*clients, cryptos[i].Handler())
			if err != nil && regErr == nil {
				regErr = fmt.Errorf("crypto shard %d register: %w", i, err)
				return
			}
			encIDs[i] = id
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if regErr != nil {
		return nil, regErr
	}

	// Bind phase: client ci lives on core ci, uses the crypto shard local
	// to its core, and holds one connection per store shard (binding is
	// per-process, so the measurement thread reuses them).
	procs := make([]*mk.Process, clients)
	pipes := make([]*kv.ShardedClient, clients)
	var bindErr error
	for ci := 0; ci < clients; ci++ {
		ci := ci
		procs[ci] = k.NewProcess(fmt.Sprintf("cli%d", ci))
		text := procs[ci].Alloc(24 << 10)
		procs[ci].Spawn("bind", pl.Core(ci), func(env *mk.Env) {
			enc, err := svc.NewSkyBridge(world.SB, env, encIDs[ci%shards])
			if err != nil && bindErr == nil {
				bindErr = fmt.Errorf("client %d bind crypto: %w", ci, err)
				return
			}
			conns := make([]svc.Conn, shards)
			for i, id := range kvIDs {
				if conns[i], err = svc.NewSkyBridge(world.SB, env, id); err != nil {
					if bindErr == nil {
						bindErr = fmt.Errorf("client %d bind shard %d: %w", ci, i, err)
					}
					return
				}
			}
			pipes[ci] = &kv.ShardedClient{
				Enc: enc, KV: svc.NewSharded(conns, kv.PickReq(shards)),
				Text: text, TextLen: 24 << 10,
			}
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if bindErr != nil {
		return nil, bindErr
	}

	// Measurement: reset machine-wide counters, then drive the closed
	// loop — each client consumes its own deterministic YCSB stream in
	// rounds of up to B operations, reads and updates each submitted as
	// one batch (one crossing per touched shard).
	k.Mach.ResetStats()
	s.callSite(label).Obs.Reset() // breakdown covers the window, not binding
	baseCalls := make([]uint64, shards)
	for i, id := range kvIDs {
		if srv, ok := world.SB.Server(id); ok {
			baseCalls[i] = srv.Calls
		}
	}
	baseDirect, baseBatch := world.SB.DirectCalls, world.SB.BatchCalls
	baseLoads, baseEvict := world.RK.SlotLoads(), world.RK.SlotEvictions()

	durations := make([]uint64, clients)
	var runErr error
	for ci := 0; ci < clients; ci++ {
		ci := ci
		ops := cfg.TotalOps / clients
		if ci < cfg.TotalOps%clients {
			ops++
		}
		procs[ci].Spawn("drive", pl.Core(ci), func(env *mk.Env) {
			g := ycsb.NewGenerator(w, 1000+int64(ci))
			c := pipes[ci]
			start := env.Now()
			for done := 0; done < ops; {
				n := batch
				if left := ops - done; n > left {
					n = left
				}
				var rKeys, uKeys, uVals [][]byte
				for j := 0; j < n; j++ {
					op := g.Next()
					switch op.Kind {
					case ycsb.OpRead:
						rKeys = append(rKeys, scalingKey(op.Key))
					case ycsb.OpUpdate:
						uKeys = append(uKeys, scalingKey(op.Key))
						uVals = append(uVals, []byte(op.Value))
					}
				}
				t := env.Now()
				if len(uKeys) > 0 {
					if err := c.InsertBatch(env, uKeys, uVals); err != nil {
						if runErr == nil {
							runErr = fmt.Errorf("client %d update: %w", ci, err)
						}
						return
					}
				}
				if len(rKeys) > 0 {
					if _, err := c.QueryBatch(env, rKeys); err != nil {
						if runErr == nil {
							runErr = fmt.Errorf("client %d read: %w", ci, err)
						}
						return
					}
				}
				h.Observe(env.Now() - t)
				done += n
			}
			durations[ci] = env.Now() - start
		})
	}
	if err := world.Eng.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}

	cell := &ScalingCell{
		Workload: w.Name, Cores: cores, Batch: batch,
		ClientCycles:   durations,
		BatchCrossings: world.SB.BatchCalls - baseBatch,
		DirectCalls:    world.SB.DirectCalls - baseDirect,
		SlotLoads:      world.RK.SlotLoads() - baseLoads,
		SlotEvictions:  world.RK.SlotEvictions() - baseEvict,
	}
	var sum uint64
	for _, d := range durations {
		sum += d
		if d > cell.Makespan {
			cell.Makespan = d
		}
	}
	if cell.Makespan > 0 {
		cell.OpsPerMcyc = float64(cfg.TotalOps) * 1e6 / float64(cell.Makespan)
	}
	if cfg.TotalOps > 0 {
		cell.CyclesPerOp = float64(sum) / float64(cfg.TotalOps)
	}
	for i, id := range kvIDs {
		if srv, ok := world.SB.Server(id); ok {
			cell.ShardCalls = append(cell.ShardCalls, srv.Calls-baseCalls[i])
		}
	}

	reg := k.Mach.Obs
	values := map[string]float64{
		"ops_per_megacycle":   cell.OpsPerMcyc,
		"amortized_cycles_op": cell.CyclesPerOp,
		"makespan_cycles":     float64(cell.Makespan),
		"ops_per_sec":         OpsPerSec(cfg.TotalOps, cell.Makespan),
		"batch_crossings":     float64(cell.BatchCrossings),
		"direct_calls":        float64(cell.DirectCalls),
		"eptp_slot_loads":     float64(cell.SlotLoads),
		"eptp_slot_evictions": float64(cell.SlotEvictions),
		"vmfuncs":             float64(reg.SumSuffix(".vmfuncs")),
		"l1d_misses":          float64(reg.SumSuffix(".L1D.misses")),
		"l1i_misses":          float64(reg.SumSuffix(".L1I.misses")),
		"l2_misses":           float64(reg.SumSuffix(".L2.misses")),
		"l3_misses":           float64(reg.Value("L3.misses")),
	}
	for i, d := range durations {
		values[fmt.Sprintf("client%d_cycles", i)] = float64(d)
	}
	for i, c := range cell.ShardCalls {
		values[fmt.Sprintf("shard%d_calls", i)] = float64(c)
	}
	s.record(Record{
		Experiment: "scaling",
		Config: map[string]string{
			"workload": w.Name,
			"cores":    fmt.Sprintf("%d", cores),
			"batch":    fmt.Sprintf("%d", batch),
			"records":  fmt.Sprintf("%d", cfg.Records),
			"ops":      fmt.Sprintf("%d", cfg.TotalOps),
		},
		CyclesPerOp: cell.CyclesPerOp,
		Values:      values,
		Latency:     s.latencyOf(label),
		Breakdown:   s.breakdownOf(label),
	})
	return cell, nil
}

// cell looks up the sweep cell for (workload, cores).
func (r *ScalingResult) cell(workload string, cores int) *ScalingCell {
	for _, c := range r.Cells {
		if c.Workload == workload && c.Cores == cores && c.Batch == r.Batch {
			return c
		}
	}
	return nil
}

// Render formats the scaling table and the batching ablation.
func (r *ScalingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multicore scaling: per-core shards + batched SkyBridge calls (B=%d, %d records, %d ops)\n",
		r.Batch, r.Records, r.TotalOps)
	fmt.Fprintf(&b, "%-10s", "workload")
	for _, n := range r.CoreCounts {
		fmt.Fprintf(&b, " %14s", fmt.Sprintf("%d-core op/Mc", n))
	}
	first, last := r.CoreCounts[0], r.CoreCounts[len(r.CoreCounts)-1]
	fmt.Fprintf(&b, " %8s\n", fmt.Sprintf("%dc/%dc", last, first))
	for _, w := range r.Workloads {
		fmt.Fprintf(&b, "%-10s", w)
		for _, n := range r.CoreCounts {
			if c := r.cell(w, n); c != nil {
				fmt.Fprintf(&b, " %14.1f", c.OpsPerMcyc)
			}
		}
		cf, cl := r.cell(w, first), r.cell(w, last)
		if cf != nil && cl != nil && cf.OpsPerMcyc > 0 {
			fmt.Fprintf(&b, " %7.2fx", cl.OpsPerMcyc/cf.OpsPerMcyc)
		}
		fmt.Fprintln(&b)
	}
	if b1 := r.AblationB1; b1 != nil {
		if bn := r.cell(b1.Workload, b1.Cores); bn != nil {
			fmt.Fprintf(&b, "Batching ablation (%s, %d cores): B=1 %.0f cyc/op, B=%d %.0f cyc/op (%.2fx)\n",
				b1.Workload, b1.Cores, b1.CyclesPerOp, r.Batch, bn.CyclesPerOp,
				b1.CyclesPerOp/bn.CyclesPerOp)
		}
	}
	return b.String()
}

// WriteScalingBench serializes r as the BENCH_scaling.json document.
func WriteScalingBench(w io.Writer, r *ScalingResult) error {
	buf, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
