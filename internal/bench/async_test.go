package bench

import (
	"bytes"
	"testing"

	"skybridge/internal/ycsb"
)

// testAsyncConfig is small enough for -race runs while still exercising
// the 4-core cell (2 clients driving 2 per-core shards concurrently) and
// a deep enough ring that pipelining actually engages.
func testAsyncConfig() AsyncConfig {
	return AsyncConfig{
		CoreCounts: []int{1, 2, 4},
		Workloads:  []ycsb.Workload{ycsb.WorkloadC(64)},
		Records:    64,
		TotalOps:   128,
		Depths:     []int{1, 8},
	}
}

// TestAsyncSweep drives the pipelined closed-loop stack — the -race
// target for the async driver with per-core shards — and checks the
// structural claims at miniature scale: async cells cross only to
// doorbell (no per-op DirectCalls), every submission is served through
// the rings, and pipelining beats the sync baseline once client and
// server have their own cores.
func TestAsyncSweep(t *testing.T) {
	r, err := Async(testAsyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{2, 4} {
		sync, qd8 := r.cell("YCSB-C", cores, "sync"), r.cell("YCSB-C", cores, "qd8")
		if sync == nil || qd8 == nil {
			t.Fatalf("missing %d-core cells in %+v", cores, r.Cells)
		}
		if sync.DirectCalls != uint64(r.TotalOps) || sync.RingOps != 0 {
			t.Errorf("%dc sync cell: %d direct calls, %d ring ops; want %d, 0",
				cores, sync.DirectCalls, sync.RingOps, r.TotalOps)
		}
		if qd8.RingOps != uint64(r.TotalOps) || qd8.DirectCalls != 0 {
			t.Errorf("%dc qd8 cell: %d ring ops, %d direct calls; want %d, 0",
				cores, qd8.RingOps, qd8.DirectCalls, r.TotalOps)
		}
		if qd8.Doorbells == 0 {
			t.Errorf("%dc qd8 cell rang no doorbells; the wakeup path never ran", cores)
		}
		if qd8.OpsPerMcyc <= sync.OpsPerMcyc {
			t.Errorf("%dc qd8 throughput %.1f ops/Mcyc not above sync %.1f",
				cores, qd8.OpsPerMcyc, sync.OpsPerMcyc)
		}
		if qd8.DepthMax == 0 || qd8.DepthMax > 8 {
			t.Errorf("%dc qd8 depth max %d outside (0, 8]", cores, qd8.DepthMax)
		}
	}
	// 4-core cells split the drive across two clients.
	if c := r.cell("YCSB-C", 4, "qd8"); len(c.ClientCycles) != 2 {
		t.Errorf("4-core cell has %d client windows, want 2", len(c.ClientCycles))
	}
}

// TestAsyncDeterministic: two independent sweeps must render and
// serialize byte-identically — the CI determinism gate byte-compares the
// async experiment across repeat runs and -j values.
func TestAsyncDeterministic(t *testing.T) {
	run := func() (string, []byte) {
		r, err := Async(testAsyncConfig())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteAsyncBench(&buf, r); err != nil {
			t.Fatal(err)
		}
		return r.Render(), buf.Bytes()
	}
	out1, json1 := run()
	out2, json2 := run()
	if out1 != out2 {
		t.Errorf("renders differ:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	if !bytes.Equal(json1, json2) {
		t.Error("BENCH_async.json bytes differ between identical runs")
	}
	if out1 == "" {
		t.Error("empty render")
	}
}
