package sim

import (
	"testing"

	"skybridge/internal/hw"
)

func newEngine(cores int) *Engine {
	return NewEngine(hw.NewMachine(hw.MachineConfig{Cores: cores, MemBytes: 1 << 24}))
}

func TestEngineRunsSingleThread(t *testing.T) {
	e := newEngine(1)
	ran := false
	e.Go("t0", e.Mach.Cores[0], func(th *Thread) {
		th.Core.Tick(100)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("thread body did not run")
	}
	if e.Mach.Cores[0].Clock != 100 {
		t.Fatalf("core clock %d, want 100", e.Mach.Cores[0].Clock)
	}
}

func TestEngineParallelCoresOverlapInTime(t *testing.T) {
	e := newEngine(2)
	e.Go("a", e.Mach.Cores[0], func(th *Thread) { th.Core.Tick(1000) })
	e.Go("b", e.Mach.Cores[1], func(th *Thread) { th.Core.Tick(800) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two cores run concurrently: neither clock includes the other's work.
	if e.Mach.Cores[0].Clock != 1000 || e.Mach.Cores[1].Clock != 800 {
		t.Fatalf("clocks %d, %d", e.Mach.Cores[0].Clock, e.Mach.Cores[1].Clock)
	}
}

func TestEngineSameCoreSerializes(t *testing.T) {
	e := newEngine(1)
	c := e.Mach.Cores[0]
	e.Go("a", c, func(th *Thread) { th.Core.Tick(500) })
	e.Go("b", c, func(th *Thread) { th.Core.Tick(300) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Clock != 800 {
		t.Fatalf("shared core clock %d, want 800", c.Clock)
	}
}

func TestEngineParkWake(t *testing.T) {
	e := newEngine(2)
	var waiter *Thread
	var got any
	waiter = e.Go("waiter", e.Mach.Cores[0], func(th *Thread) {
		got = th.Park()
	})
	e.Go("waker", e.Mach.Cores[1], func(th *Thread) {
		th.Core.Tick(250)
		e.Wake(waiter, th.Now(), "hello")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("park returned %v", got)
	}
	// The waiter resumed no earlier than the waker's send time.
	if e.Mach.Cores[0].Clock < 250 {
		t.Fatalf("waiter resumed at %d, before wake time 250", e.Mach.Cores[0].Clock)
	}
}

func TestEngineDeadlockDetected(t *testing.T) {
	e := newEngine(1)
	e.Go("stuck", e.Mach.Cores[0], func(th *Thread) { th.Park() })
	if err := e.Run(); err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestEngineClosureEvents(t *testing.T) {
	e := newEngine(1)
	var order []int
	e.At(500, func() { order = append(order, 2) })
	e.At(100, func() { order = append(order, 1) })
	e.Go("t", e.Mach.Cores[0], func(th *Thread) {
		th.Core.Tick(10)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("closure order %v", order)
	}
}

func TestEngineStaleWakeIgnored(t *testing.T) {
	e := newEngine(1)
	th := e.Go("t", e.Mach.Cores[0], func(th *Thread) {})
	e.Wake(th, 1_000_000, "late") // delivered after the thread finished
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexExclusionAndTiming(t *testing.T) {
	e := newEngine(2)
	var m Mutex
	var sections [][2]uint64
	worker := func(th *Thread) {
		m.Lock(th)
		start := th.Now()
		th.Core.Tick(1000)
		end := th.Now()
		m.Unlock(th)
		sections = append(sections, [2]uint64{start, end})
	}
	e.Go("a", e.Mach.Cores[0], worker)
	e.Go("b", e.Mach.Cores[1], worker)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sections) != 2 {
		t.Fatalf("%d sections", len(sections))
	}
	// Critical sections must not overlap.
	a, b := sections[0], sections[1]
	if a[0] < b[1] && b[0] < a[1] {
		t.Fatalf("critical sections overlap: %v %v", a, b)
	}
	if m.Contended != 1 {
		t.Fatalf("contended = %d, want 1", m.Contended)
	}
	if m.WaitCycles == 0 {
		t.Fatal("no wait cycles recorded despite contention")
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	e := newEngine(4)
	var m Mutex
	var order []string
	hold := func(name string, delay uint64) func(*Thread) {
		return func(th *Thread) {
			th.Core.Tick(delay)
			m.Lock(th)
			order = append(order, name)
			th.Core.Tick(10_000)
			m.Unlock(th)
		}
	}
	e.Go("first", e.Mach.Cores[0], hold("first", 0))
	e.Go("second", e.Mach.Cores[1], hold("second", 100))
	e.Go("third", e.Mach.Cores[2], hold("third", 200))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("acquisition order %v, want %v", order, want)
		}
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	e := newEngine(2)
	var m Mutex
	e.Go("a", e.Mach.Cores[0], func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("unlock by non-owner did not panic")
			}
		}()
		m.Unlock(th)
	})
	_ = e.Run()
}

func TestWaitQueue(t *testing.T) {
	e := newEngine(2)
	var q WaitQueue
	var got any
	e.Go("w", e.Mach.Cores[0], func(th *Thread) {
		got = q.Wait(th)
	})
	e.Go("s", e.Mach.Cores[1], func(th *Thread) {
		th.Core.Tick(100)
		// Checkpoint so the waiter is queued before we signal (global-time
		// order: waiter enqueues at t=0, signaler at t=100).
		th.Checkpoint()
		if !q.WakeOne(th.Engine(), th.Now(), 42) {
			t.Error("no waiter found")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("wait returned %v", got)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := newEngine(4)
		var m Mutex
		var times []uint64
		for i := 0; i < 4; i++ {
			core := e.Mach.Cores[i]
			e.Go("t", core, func(th *Thread) {
				for j := 0; j < 10; j++ {
					m.Lock(th)
					th.Core.Tick(97)
					m.Unlock(th)
					th.Core.Tick(13)
				}
				times = append(times, th.Now())
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: run1 %v run2 %v", a, b)
		}
	}
}
