// Package sim is a deterministic discrete-event execution engine for
// simulated threads running on the cores of a hw.Machine.
//
// Each simulated thread is a goroutine, but exactly one runs at a time: the
// engine resumes the thread whose pending event has the lowest timestamp,
// the thread executes until it parks (blocks) or checkpoints, and control
// returns to the engine. A thread bound to core C advances C's cycle clock
// as it executes hardware operations; when a thread is resumed by an event
// with timestamp t, its start time is max(t, C.Clock), which serializes
// threads sharing a core without any explicit core scheduler.
//
// Interaction points (locks, IPC endpoints) call Checkpoint first, so
// shared resources are claimed in global time order and runs are fully
// deterministic (ties broken by event sequence number).
package sim

import (
	"fmt"

	"skybridge/internal/hw"
)

// event is a scheduled occurrence: either resuming a parked thread or
// running a closure on the engine goroutine.
type event struct {
	t   uint64
	seq uint64

	thread *Thread
	val    any
	fn     func()
}

// eventHeap is a binary min-heap of events ordered by (t, seq), stored by
// value in one slice. Events used to be boxed *event nodes managed by
// container/heap, which allocated every push; the slice-backed heap is
// allocation-free at steady state (the backing array is reused) while
// popping in exactly the same (t, seq) order — seq is unique, so the
// ordering is total and independent of heap layout.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.less(r, child) {
			child = r
		}
		if !h.less(child, i) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}

// ThreadState tracks where a thread is in its lifecycle.
type ThreadState int

// Thread states.
const (
	StateReady ThreadState = iota
	StateRunning
	StateParked
	StateFinished
)

// Thread is one simulated thread of execution, pinned to a core.
type Thread struct {
	Name string
	Core *hw.CPU
	// Ctx lets higher layers (the microkernel) attach per-thread state.
	Ctx any

	eng    *Engine
	resume chan any
	state  ThreadState
}

// Engine owns the event queue and the machine.
type Engine struct {
	Mach *hw.Machine

	events  eventHeap
	seq     uint64
	yieldCh chan struct{}
	threads []*Thread
	// Deterministic failure of Run when all threads are parked.
	err error
}

// NewEngine creates an engine over the machine.
func NewEngine(m *hw.Machine) *Engine {
	return &Engine{Mach: m, yieldCh: make(chan struct{})}
}

func (e *Engine) push(ev event) {
	e.seq++
	ev.seq = e.seq
	e.events = append(e.events, ev)
	e.events.siftUp(len(e.events) - 1)
}

func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release thread/val/fn references
	e.events = h[:n]
	e.events.siftDown(0)
	return top
}

// Go creates a thread on the given core and schedules its first run at the
// core's current time. The body runs when Run is called.
func (e *Engine) Go(name string, core *hw.CPU, body func(t *Thread)) *Thread {
	th := &Thread{Name: name, Core: core, eng: e, resume: make(chan any), state: StateParked}
	e.threads = append(e.threads, th)
	go func() {
		<-th.resume
		th.state = StateRunning
		body(th)
		th.state = StateFinished
		e.yieldCh <- struct{}{}
	}()
	e.push(event{t: core.Clock, thread: th})
	return th
}

// At schedules fn to run on the engine goroutine at time t. fn must not
// block; it may wake parked threads.
func (e *Engine) At(t uint64, fn func()) {
	e.push(event{t: t, fn: fn})
}

// Wake schedules a parked thread to resume at time at, delivering val as
// the return value of its Park call. Waking a non-parked thread is an
// engine-usage bug detected at delivery time (the event is dropped with an
// error recorded if the thread has finished, ignored if it is running ---
// the caller must own the thread's lifecycle).
func (e *Engine) Wake(t *Thread, at uint64, val any) {
	e.push(event{t: at, thread: t, val: val})
}

// Run processes events until none remain. It returns an error if threads
// are still parked when the queue drains (deadlock) or if one was woken in
// an invalid state.
func (e *Engine) Run() error {
	for len(e.events) > 0 {
		ev := e.pop()
		if ev.fn != nil {
			ev.fn()
			continue
		}
		th := ev.thread
		switch th.state {
		case StateFinished:
			continue // stale wake (e.g. expired timeout)
		case StateRunning:
			return fmt.Errorf("sim: wake of running thread %q", th.Name)
		}
		// Serialize threads sharing a core: never start before the core's
		// clock.
		if ev.t > th.Core.Clock {
			th.Core.Clock = ev.t
		}
		th.state = StateRunning
		th.resume <- ev.val
		<-e.yieldCh
	}
	if e.err != nil {
		return e.err
	}
	var stuck []string
	for _, th := range e.threads {
		if th.state == StateParked {
			stuck = append(stuck, th.Name)
		}
	}
	if len(stuck) > 0 {
		return fmt.Errorf("sim: deadlock: threads still parked: %v", stuck)
	}
	return nil
}

// Now returns the thread's current time (its core's cycle clock).
func (t *Thread) Now() uint64 { return t.Core.Clock }

// Park blocks the thread until another thread or closure wakes it. It
// returns the value passed to Wake.
func (t *Thread) Park() any {
	t.state = StateParked
	t.eng.yieldCh <- struct{}{}
	v := <-t.resume
	t.state = StateRunning
	return v
}

// Checkpoint re-enters the thread into the event queue at its current time
// and parks, letting any earlier-timestamped thread run first. Interaction
// primitives call this before touching shared state so resources are
// claimed in global time order.
func (t *Thread) Checkpoint() {
	t.eng.Wake(t, t.Core.Clock, nil)
	t.Park()
}

// Engine returns the engine this thread belongs to.
func (t *Thread) Engine() *Engine { return t.eng }

// State reports the thread's lifecycle state.
func (t *Thread) State() ThreadState { return t.state }
