// Package sim is a deterministic discrete-event execution engine for
// simulated threads running on the cores of a hw.Machine.
//
// Each simulated thread is a goroutine, but exactly one runs at a time: the
// engine resumes the thread whose pending event has the lowest timestamp,
// the thread executes until it parks (blocks) or checkpoints, and control
// returns to the engine. A thread bound to core C advances C's cycle clock
// as it executes hardware operations; when a thread is resumed by an event
// with timestamp t, its start time is max(t, C.Clock), which serializes
// threads sharing a core without any explicit core scheduler.
//
// Interaction points (locks, IPC endpoints) call Checkpoint first, so
// shared resources are claimed in global time order and runs are fully
// deterministic (ties broken by event sequence number).
package sim

import (
	"fmt"

	"skybridge/internal/hw"
)

// event is a scheduled occurrence: either resuming a parked thread or
// running a closure on the engine goroutine.
type event struct {
	t   uint64
	seq uint64

	thread *Thread
	val    any
	fn     func()
}

// eventHeap is a binary min-heap of events ordered by (t, seq), stored by
// value in one slice. Events used to be boxed *event nodes managed by
// container/heap, which allocated every push; the slice-backed heap is
// allocation-free at steady state (the backing array is reused) while
// popping in exactly the same (t, seq) order — seq is unique, so the
// ordering is total and independent of heap layout.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.less(r, child) {
			child = r
		}
		if !h.less(child, i) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}

// ThreadState tracks where a thread is in its lifecycle.
type ThreadState int

// Thread states.
const (
	StateReady ThreadState = iota
	StateRunning
	StateParked
	StateFinished
)

// Thread is one simulated thread of execution, pinned to a core.
type Thread struct {
	Name string
	Core *hw.CPU
	// Ctx lets higher layers (the microkernel) attach per-thread state.
	Ctx any

	eng    *Engine
	resume chan any
	state  ThreadState
}

// Engine owns the event queue and the machine.
//
// Scheduling uses a baton handoff: exactly one goroutine at a time holds the
// right to touch engine state (the event heap, seq). Run seeds the baton by
// dispatching the first event; from then on, every thread that parks or
// finishes runs the dispatch loop itself and hands the baton directly to the
// next thread via its resume channel. A context switch therefore costs one
// channel handoff, not a park-then-resume round trip through a central
// scheduler goroutine — the event order processed is identical (the heap is
// the same; only which goroutine pops it changes).
type Engine struct {
	Mach *hw.Machine

	events  eventHeap
	seq     uint64
	done    chan struct{}
	threads []*Thread
	// Delivery errors (wake of a running thread) recorded by dispatch and
	// returned by Run.
	err error
}

// NewEngine creates an engine over the machine.
func NewEngine(m *hw.Machine) *Engine {
	// done is buffered so the drain signal can be sent from Run's own
	// goroutine when the queue empties without ever handing off to a thread.
	return &Engine{Mach: m, done: make(chan struct{}, 1)}
}

func (e *Engine) push(ev event) {
	e.seq++
	ev.seq = e.seq
	e.events = append(e.events, ev)
	e.events.siftUp(len(e.events) - 1)
}

func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release thread/val/fn references
	e.events = h[:n]
	e.events.siftDown(0)
	return top
}

// Go creates a thread on the given core and schedules its first run at the
// core's current time. The body runs when Run is called.
func (e *Engine) Go(name string, core *hw.CPU, body func(t *Thread)) *Thread {
	// resume is buffered so the dispatcher can hand a thread the baton and
	// return immediately — including the case where a parking thread's
	// dispatch loop resumes that same thread (its own wake is the next
	// event), where an unbuffered send from the sole goroutine would
	// deadlock.
	th := &Thread{Name: name, Core: core, eng: e, resume: make(chan any, 1), state: StateParked}
	e.threads = append(e.threads, th)
	go func() {
		<-th.resume
		th.state = StateRunning
		body(th)
		th.state = StateFinished
		e.dispatch()
	}()
	e.push(event{t: core.Clock, thread: th})
	return th
}

// At schedules fn to run on the engine goroutine at time t. fn must not
// block; it may wake parked threads.
func (e *Engine) At(t uint64, fn func()) {
	e.push(event{t: t, fn: fn})
}

// Wake schedules a parked thread to resume at time at, delivering val as
// the return value of its Park call. Waking a non-parked thread is an
// engine-usage bug detected at delivery time (the event is dropped with an
// error recorded if the thread has finished, ignored if it is running ---
// the caller must own the thread's lifecycle).
func (e *Engine) Wake(t *Thread, at uint64, val any) {
	e.push(event{t: at, thread: t, val: val})
}

// dispatch runs the event loop on the calling goroutine until control is
// handed to a thread (a send on its resume channel, after which the caller
// must stop touching engine state) or the queue drains, which signals Run.
// It is called by Run to seed the baton and by every thread as it parks or
// finishes.
func (e *Engine) dispatch() {
	for len(e.events) > 0 {
		ev := e.pop()
		if ev.fn != nil {
			ev.fn()
			continue
		}
		th := ev.thread
		switch th.state {
		case StateFinished:
			continue // stale wake (e.g. expired timeout)
		case StateRunning:
			e.err = fmt.Errorf("sim: wake of running thread %q", th.Name)
			e.done <- struct{}{}
			return
		}
		// Serialize threads sharing a core: never start before the core's
		// clock.
		if ev.t > th.Core.Clock {
			th.Core.Clock = ev.t
		}
		th.state = StateRunning
		th.resume <- ev.val
		return
	}
	e.done <- struct{}{}
}

// Run processes events until none remain. It returns an error if threads
// are still parked when the queue drains (deadlock) or if one was woken in
// an invalid state.
func (e *Engine) Run() error {
	e.dispatch()
	<-e.done
	if err := e.err; err != nil {
		e.err = nil
		return err
	}
	var stuck []string
	for _, th := range e.threads {
		if th.state == StateParked {
			stuck = append(stuck, th.Name)
		}
	}
	if len(stuck) > 0 {
		return fmt.Errorf("sim: deadlock: threads still parked: %v", stuck)
	}
	return nil
}

// Now returns the thread's current time (its core's cycle clock).
func (t *Thread) Now() uint64 { return t.Core.Clock }

// Park blocks the thread until another thread or closure wakes it. It
// returns the value passed to Wake. The parking goroutine dispatches the
// next event itself before blocking, handing the scheduling baton on.
func (t *Thread) Park() any {
	t.state = StateParked
	t.eng.dispatch()
	v := <-t.resume
	t.state = StateRunning
	return v
}

// Checkpoint re-enters the thread into the event queue at its current time
// and parks, letting any earlier-timestamped thread run first. Interaction
// primitives call this before touching shared state so resources are
// claimed in global time order.
func (t *Thread) Checkpoint() {
	e := t.eng
	if len(e.events) == 0 || e.events[0].t > t.Core.Clock {
		// Fast path: every pending event is strictly later than this
		// thread's clock, so parking would pop the freshly pushed wake
		// straight back and resume this same thread with nothing run in
		// between. Skipping the round trip only skips one sequence number;
		// the relative (t, seq) order of all other events is unchanged, so
		// the schedule is identical.
		return
	}
	e.Wake(t, t.Core.Clock, nil)
	t.Park()
}

// Engine returns the engine this thread belongs to.
func (t *Thread) Engine() *Engine { return t.eng }

// State reports the thread's lifecycle state.
func (t *Thread) State() ThreadState { return t.state }
