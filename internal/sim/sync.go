package sim

// Mutex is a simulated mutex with FIFO handoff and contention accounting.
// The xv6fs port uses one big lock (paper §6.5: "since the xv6fs does not
// support multithreading, we use one big lock in the file system, that is
// the reason why the scalability is so bad"), so lock contention is what
// shapes Figures 9-11.
type Mutex struct {
	Name string

	owner   *Thread
	waiters []*Thread
	// freeAt is the simulated time the last hold ended. Because the engine
	// runs whole segments atomically, a claimant whose timestamp ties with
	// (or falls inside) an already-simulated hold must still observe that
	// hold; it is made to wait until freeAt.
	freeAt uint64

	// Stats.
	Acquisitions uint64
	Contended    uint64
	WaitCycles   uint64
}

// Lock acquires the mutex, parking the thread if it is held. Acquisition
// order among concurrent threads is global-time order (via Checkpoint),
// then FIFO.
func (m *Mutex) Lock(t *Thread) {
	t.Checkpoint()
	m.Acquisitions++
	if m.owner == nil {
		if t.Now() < m.freeAt {
			m.Contended++
			m.WaitCycles += m.freeAt - t.Now()
			t.Core.Clock = m.freeAt
		}
		m.owner = t
		return
	}
	m.Contended++
	start := t.Now()
	m.waiters = append(m.waiters, t)
	t.Park()
	// Woken by Unlock with ownership already transferred.
	m.WaitCycles += t.Now() - start
}

// Unlock releases the mutex, handing it to the oldest waiter if any.
func (m *Mutex) Unlock(t *Thread) {
	if m.owner != t {
		panic("sim: Mutex.Unlock by non-owner " + t.Name)
	}
	if t.Now() > m.freeAt {
		m.freeAt = t.Now()
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next
	t.eng.Wake(next, t.Now(), nil)
}

// Holder returns the current owner (nil if free).
func (m *Mutex) Holder() *Thread { return m.owner }

// WaitQueue is a simple FIFO sleep queue (condition-variable style): the
// building block for IPC endpoints.
type WaitQueue struct {
	Name    string
	waiters []*Thread
}

// Wait parks the calling thread on the queue and returns the wake value.
func (q *WaitQueue) Wait(t *Thread) any {
	q.waiters = append(q.waiters, t)
	return t.Park()
}

// WakeOne wakes the oldest waiter at time at with val, reporting whether a
// waiter existed.
func (q *WaitQueue) WakeOne(e *Engine, at uint64, val any) bool {
	if len(q.waiters) == 0 {
		return false
	}
	th := q.waiters[0]
	q.waiters = q.waiters[1:]
	e.Wake(th, at, val)
	return true
}

// TakeWhere removes and returns the oldest waiter satisfying pred, or nil.
func (q *WaitQueue) TakeWhere(pred func(*Thread) bool) *Thread {
	for i, th := range q.waiters {
		if pred(th) {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return th
		}
	}
	return nil
}

// Remove deletes a specific thread from the queue (used by timeout paths).
// It reports whether the thread was queued.
func (q *WaitQueue) Remove(t *Thread) bool {
	for i, th := range q.waiters {
		if th == t {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the number of parked waiters.
func (q *WaitQueue) Len() int { return len(q.waiters) }
