package kv

import (
	"fmt"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/svc"
)

// Sharded serving: the store and the encryption service split into N
// per-core shards, each shard its own process (and, under SkyBridge, its
// own registered server). Keys route to store shards by FNV-1a hash;
// crypto shards are stateless, so each client uses the shard local to its
// core. Combined with batched IPC (svc.InvokeBatch), a client submits a
// whole batch of operations per trampoline crossing per shard.

// ShardOf returns the store shard owning key among n shards.
func ShardOf(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	return int(fnv1a(key) % uint64(n))
}

// PickReq routes a store request (OpPut: u16 keyLen | key | val; OpGet:
// key) to its shard by key hash. Malformed requests route to shard 0,
// whose handler rejects them.
func PickReq(n int) func(req svc.Req) int {
	return func(req svc.Req) int {
		key := req.Data
		if req.Op == OpPut {
			if len(req.Data) < 2 {
				return 0
			}
			klen := int(req.Data[0]) | int(req.Data[1])<<8
			if 2+klen > len(req.Data) {
				return 0
			}
			key = req.Data[2 : 2+klen]
		}
		return ShardOf(key, n)
	}
}

// NewStoreShards creates n store shards, each in its own process named
// "<name><i>" with nslots slots of slotSize bytes.
func NewStoreShards(k *mk.Kernel, name string, n, nslots, slotSize int) []*Store {
	shards := make([]*Store, n)
	for i := range shards {
		shards[i] = NewStore(k.NewProcess(fmt.Sprintf("%s%d", name, i)), nslots, slotSize)
	}
	return shards
}

// NewCryptoShards creates n encryption-service shards, each in its own
// process named "<name><i>".
func NewCryptoShards(k *mk.Kernel, name string, n int) []*Crypto {
	shards := make([]*Crypto, n)
	for i := range shards {
		shards[i] = NewCrypto(k.NewProcess(fmt.Sprintf("%s%d", name, i)))
	}
	return shards
}

// CipherStream applies the encryption service's XOR stream to data (the
// transform is its own inverse). Exported so loaders can precompute the
// stored ciphertext of a record without driving the pipeline.
func CipherStream(data []byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = b ^ byte(0x5A+i*7)
	}
	return out
}

// Preload stores key/val directly (a server warming its own shard before
// serving); the write is charged to env like any put.
func (s *Store) Preload(env *mk.Env, key, val []byte) error {
	if status := s.put(env, key, val); status != StatusOK {
		return fmt.Errorf("kv: preload status %d", status)
	}
	return nil
}

// ShardedClient drives the encrypt+put / get+decrypt pipeline over the
// sharded stack with batched IPC: values cross to the client's local
// crypto shard as one batch, and store operations batch per destination
// shard (svc.Sharded groups them).
type ShardedClient struct {
	Enc svc.Conn
	KV  *svc.Sharded
	// Text/TextLen model the client's code footprint (see Client).
	Text    hw.VA
	TextLen int
	textSeq uint64
}

// touchAll executes the client's per-operation code footprint once per
// operation in the batch (marshalling work does not amortize).
func (c *ShardedClient) touchAll(env *mk.Env, n int) {
	if c.Text == 0 {
		return
	}
	for i := 0; i < n; i++ {
		textTouch(env, c.Text, &c.textSeq)
	}
}

// InsertBatch encrypts vals (one batched crossing to the crypto shard)
// and stores them under keys (one batched crossing per store shard).
func (c *ShardedClient) InsertBatch(env *mk.Env, keys, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kv: %d keys, %d vals", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil
	}
	c.touchAll(env, len(keys))
	encReqs := make([]svc.Req, len(vals))
	for i, v := range vals {
		encReqs[i] = svc.Req{Op: OpEncrypt, Data: v}
	}
	encResps, err := svc.InvokeBatch(env, c.Enc, encReqs)
	if err != nil {
		return err
	}
	putReqs := make([]svc.Req, len(keys))
	for i, key := range keys {
		payload := make([]byte, 2+len(key)+len(encResps[i].Data))
		payload[0], payload[1] = byte(len(key)), byte(len(key)>>8)
		copy(payload[2:], key)
		copy(payload[2+len(key):], encResps[i].Data)
		putReqs[i] = svc.Req{Op: OpPut, Data: payload}
	}
	putResps, err := c.KV.InvokeBatch(env, putReqs)
	if err != nil {
		return err
	}
	for i, resp := range putResps {
		if resp.Status != StatusOK {
			return fmt.Errorf("kv: batched put %d failed: status %d", i, resp.Status)
		}
	}
	return nil
}

// QueryBatch fetches keys (one batched crossing per store shard) and
// decrypts the found values (one batched crossing to the crypto shard).
// Missing keys yield nil entries.
func (c *ShardedClient) QueryBatch(env *mk.Env, keys [][]byte) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	c.touchAll(env, len(keys))
	getReqs := make([]svc.Req, len(keys))
	for i, key := range keys {
		getReqs[i] = svc.Req{Op: OpGet, Data: key}
	}
	getResps, err := c.KV.InvokeBatch(env, getReqs)
	if err != nil {
		return nil, err
	}
	var decReqs []svc.Req
	var found []int
	for i, resp := range getResps {
		switch resp.Status {
		case StatusOK:
			decReqs = append(decReqs, svc.Req{Op: OpDecrypt, Data: resp.Data})
			found = append(found, i)
		case StatusNotFound:
		default:
			return nil, fmt.Errorf("kv: batched get %d failed: status %d", i, resp.Status)
		}
	}
	out := make([][]byte, len(keys))
	if len(decReqs) == 0 {
		return out, nil
	}
	decResps, err := svc.InvokeBatch(env, c.Enc, decReqs)
	if err != nil {
		return nil, err
	}
	for j, i := range found {
		out[i] = decResps[j].Data
	}
	return out, nil
}
