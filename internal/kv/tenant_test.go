package kv

import (
	"testing"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
	"skybridge/internal/svc"
)

// putFrame builds an OpPut payload (u16 keyLen | key | val).
func putFrame(key, val string) []byte {
	b := make([]byte, 2+len(key)+len(val))
	b[0], b[1] = byte(len(key)), byte(len(key)>>8)
	copy(b[2:], key)
	copy(b[2+len(key):], val)
	return b
}

// TestTenantGuard: the guarded handler confines each tenant to its own
// key prefix — cross-tenant gets and puts come back StatusWrongTenant
// without touching the store, while malformed frames still fall through
// to the store's own StatusBadReq.
func TestTenantGuard(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 1, MemBytes: 1 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("store")
	store := NewStore(p, 256, 1024)
	guarded := TenantGuard(store.Handler())
	p.Spawn("drv", k.Mach.Cores[0], func(env *mk.Env) {
		// Tenant 3 writes and reads under its own prefix.
		own := TenantKey(3, "alpha")
		if r := guarded(env, 3, svc.Req{Op: OpPut, Data: putFrame(own, "v1")}); r.Status != StatusOK {
			t.Errorf("own put status %d", r.Status)
		}
		if r := guarded(env, 3, svc.Req{Op: OpGet, Data: []byte(own)}); r.Status != StatusOK || string(r.Data) != "v1" {
			t.Errorf("own get = %d %q", r.Status, r.Data)
		}
		// Tenant 5 cannot read or overwrite tenant 3's key.
		if r := guarded(env, 5, svc.Req{Op: OpGet, Data: []byte(own)}); r.Status != StatusWrongTenant {
			t.Errorf("cross get status %d, want StatusWrongTenant", r.Status)
		}
		if r := guarded(env, 5, svc.Req{Op: OpPut, Data: putFrame(own, "evil")}); r.Status != StatusWrongTenant {
			t.Errorf("cross put status %d, want StatusWrongTenant", r.Status)
		}
		gets := store.Gets
		if r := guarded(env, 3, svc.Req{Op: OpGet, Data: []byte(own)}); r.Status != StatusOK || string(r.Data) != "v1" {
			t.Errorf("value after cross-tenant attempts = %d %q", r.Status, r.Data)
		}
		if store.Gets != gets+1 {
			t.Errorf("store.Gets advanced by %d; rejected requests reached the store", store.Gets-gets)
		}
		// An unprefixed key matches no tenant.
		if r := guarded(env, 0, svc.Req{Op: OpGet, Data: []byte("alpha")}); r.Status != StatusWrongTenant {
			t.Errorf("unprefixed get status %d, want StatusWrongTenant", r.Status)
		}
		// Malformed put frames still surface the store's StatusBadReq.
		if r := guarded(env, 3, svc.Req{Op: OpPut, Data: []byte{9}}); r.Status != StatusBadReq {
			t.Errorf("malformed put status %d, want StatusBadReq", r.Status)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
