package kv

import (
	"fmt"

	"skybridge/internal/mk"
	"skybridge/internal/svc"
)

// AsyncKV drives the sharded store over asynchronous SkyBridge rings: one
// ring per store shard, operations submitted without crossing and results
// reaped in bulk. A full target ring is flushed and reaped (blocking for
// one completion) before the submit retries, so the pipeline stays at the
// ring's depth without ever erroring out on backpressure.
type AsyncKV struct {
	Shards int
	// Rings[i] is the connection to store shard i (kv.ShardOf routing).
	Rings []*svc.AsyncConn
	// done stashes responses reaped during backpressure handling until
	// the caller's next Reap.
	done []svc.Resp
}

// NewAsyncKV bundles per-shard async connections (index = shard).
func NewAsyncKV(rings []*svc.AsyncConn) *AsyncKV {
	return &AsyncKV{Shards: len(rings), Rings: rings}
}

// SubmitPut enqueues a put (payload: u16 keyLen | key | val) on the
// owning shard's ring.
func (a *AsyncKV) SubmitPut(env *mk.Env, key, val []byte) error {
	payload := make([]byte, 2+len(key)+len(val))
	payload[0], payload[1] = byte(len(key)), byte(len(key)>>8)
	copy(payload[2:], key)
	copy(payload[2+len(key):], val)
	return a.submit(env, ShardOf(key, a.Shards), svc.Req{Op: OpPut, Data: payload})
}

// SubmitGet enqueues a get on the owning shard's ring.
func (a *AsyncKV) SubmitGet(env *mk.Env, key []byte) error {
	return a.submit(env, ShardOf(key, a.Shards), svc.Req{Op: OpGet, Data: key})
}

func (a *AsyncKV) submit(env *mk.Env, shard int, req svc.Req) error {
	c := a.Rings[shard]
	if c.Inflight() == c.Ring.QD {
		// Backpressure: make the pending window visible, then block for
		// one completion to free a slot.
		if err := c.Flush(env); err != nil {
			return err
		}
		resps, err := c.Reap(env, 1)
		if err != nil {
			return err
		}
		a.done = append(a.done, resps...)
	}
	return c.Submit(env, req)
}

// FlushAll makes every ring's pending submissions visible (doorbells only
// where the server sleeps).
func (a *AsyncKV) FlushAll(env *mk.Env) error {
	for _, c := range a.Rings {
		if err := c.Flush(env); err != nil {
			return err
		}
	}
	return nil
}

// Reap returns every response available right now (stashed backpressure
// responses first), without blocking.
func (a *AsyncKV) Reap(env *mk.Env) ([]svc.Resp, error) {
	out := a.done
	a.done = nil
	for _, c := range a.Rings {
		resps, err := c.Reap(env, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, resps...)
	}
	return out, nil
}

// Drain flushes and blocks until every in-flight operation has completed,
// returning all remaining responses.
func (a *AsyncKV) Drain(env *mk.Env) ([]svc.Resp, error) {
	out := a.done
	a.done = nil
	for _, c := range a.Rings {
		if err := c.Flush(env); err != nil {
			return nil, err
		}
		resps, err := c.Reap(env, c.Inflight())
		if err != nil {
			return nil, err
		}
		out = append(out, resps...)
	}
	return out, nil
}

// Inflight totals un-reaped submissions across all rings (excluding
// stashed responses, which are already complete).
func (a *AsyncKV) Inflight() int {
	n := 0
	for _, c := range a.Rings {
		n += c.Inflight()
	}
	return n
}

// CheckResp validates a store response: puts return StatusOK, gets
// StatusOK or StatusNotFound; anything else is an upstream failure.
func CheckResp(r svc.Resp) error {
	if r.Status != StatusOK && r.Status != StatusNotFound {
		return fmt.Errorf("kv: async response status %d", r.Status)
	}
	return nil
}
