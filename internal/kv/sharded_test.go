package kv

import (
	"bytes"
	"fmt"
	"testing"

	"skybridge/internal/hv"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
	"skybridge/internal/svc"

	"skybridge/internal/core"
)

// TestShardOfBalances: the key hash spreads a keyspace over shards
// without starving any shard.
func TestShardOfBalances(t *testing.T) {
	const n, keys = 4, 4096
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[ShardOf([]byte(fmt.Sprintf("key-%06d", i)), n)]++
	}
	for sh, c := range counts {
		if c < keys/n/2 || c > keys/n*2 {
			t.Errorf("shard %d owns %d of %d keys (counts %v)", sh, c, keys, counts)
		}
	}
	if got := ShardOf([]byte("anything"), 1); got != 0 {
		t.Errorf("ShardOf(_, 1) = %d", got)
	}
}

// TestPickReqRoutesPutAndGetAlike: a put and a get for the same key land
// on the same shard, and malformed puts route to shard 0.
func TestPickReqRoutesPutAndGetAlike(t *testing.T) {
	pick := PickReq(4)
	for i := 0; i < 64; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		put := svc.Req{Op: OpPut, Data: append([]byte{byte(len(key)), 0}, append(key, []byte("value")...)...)}
		get := svc.Req{Op: OpGet, Data: key}
		if pick(put) != pick(get) {
			t.Fatalf("key %q: put shard %d != get shard %d", key, pick(put), pick(get))
		}
	}
	if got := pick(svc.Req{Op: OpPut, Data: []byte{9}}); got != 0 {
		t.Errorf("malformed put routed to shard %d, want 0", got)
	}
}

// TestCipherStreamMatchesCrypto: the exported stream equals what the
// crypto service computes, and is its own inverse (so preloaded
// ciphertext decrypts correctly through the pipeline).
func TestCipherStreamMatchesCrypto(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 1, MemBytes: 1 << 30}))
	k := mk.New(mk.Config{}, eng)
	crypto := NewCrypto(k.NewProcess("enc"))
	plain := []byte("the quick brown fox")
	var viaService []byte
	crypto.Proc.Spawn("t", k.Mach.Cores[0], func(env *mk.Env) {
		viaService = crypto.transform(env, plain)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaService, CipherStream(plain)) {
		t.Error("CipherStream disagrees with the crypto service")
	}
	if !bytes.Equal(CipherStream(CipherStream(plain)), plain) {
		t.Error("CipherStream is not its own inverse")
	}
}

// TestShardedClientPipeline runs the full sharded stack over SkyBridge:
// 2 store shards + 1 crypto shard as servers, a client inserting and
// querying batches, values round-tripping through encryption and the
// correct shard.
func TestShardedClientPipeline(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 2 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	rk, err := hv.Boot(k, hv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sb := core.New(k, rk)

	const shards = 2
	stores := NewStoreShards(k, "kv", shards, 256, 4+2*64)
	cryptos := NewCryptoShards(k, "enc", 1)
	pl := k.Placement()
	kvIDs := make([]int, shards)
	var encID int
	for i := range stores {
		i := i
		stores[i].Proc.Spawn("reg", pl.Core(i), func(env *mk.Env) {
			id, err := svc.RegisterSkyBridgeServer(sb, env, 8, stores[i].Handler())
			if err != nil {
				t.Errorf("register shard %d: %v", i, err)
				return
			}
			kvIDs[i] = id
		})
	}
	cryptos[0].Proc.Spawn("reg", pl.Core(0), func(env *mk.Env) {
		encID, err = svc.RegisterSkyBridgeServer(sb, env, 8, cryptos[0].Handler())
		if err != nil {
			t.Errorf("register crypto: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	client := k.NewProcess("client")
	client.Spawn("cli", pl.Core(0), func(env *mk.Env) {
		enc, err := svc.NewSkyBridge(sb, env, encID)
		if err != nil {
			t.Errorf("bind crypto: %v", err)
			return
		}
		conns := make([]svc.Conn, shards)
		for i, id := range kvIDs {
			if conns[i], err = svc.NewSkyBridge(sb, env, id); err != nil {
				t.Errorf("bind shard %d: %v", i, err)
				return
			}
		}
		c := &ShardedClient{Enc: enc, KV: svc.NewSharded(conns, PickReq(shards))}
		const n = 12
		keys := make([][]byte, n)
		vals := make([][]byte, n)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("key-%06d", i))
			vals[i] = []byte(fmt.Sprintf("value-%06d", i))
		}
		if err := c.InsertBatch(env, keys, vals); err != nil {
			t.Errorf("insert batch: %v", err)
			return
		}
		got, err := c.QueryBatch(env, append(keys, []byte("missing-key")))
		if err != nil {
			t.Errorf("query batch: %v", err)
			return
		}
		for i := range keys {
			if !bytes.Equal(got[i], vals[i]) {
				t.Errorf("key %q: got %q, want %q", keys[i], got[i], vals[i])
			}
		}
		if got[n] != nil {
			t.Errorf("missing key returned %q", got[n])
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	// Both shards served puts, split by key hash, and stored ciphertext.
	var totalPuts uint64
	for i, s := range stores {
		if s.Puts == 0 {
			t.Errorf("shard %d served no puts", i)
		}
		totalPuts += s.Puts
	}
	if totalPuts != 12 {
		t.Errorf("total puts = %d, want 12", totalPuts)
	}
	if sb.BatchCalls == 0 {
		t.Error("pipeline used no batched crossings")
	}
}

// TestShardedPreloadVisibleToPipeline: records preloaded directly into a
// shard (with CipherStream-encrypted values) are readable through the
// batched query path.
func TestShardedPreloadVisibleToPipeline(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 1, MemBytes: 2 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	rk, err := hv.Boot(k, hv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sb := core.New(k, rk)

	stores := NewStoreShards(k, "kv", 1, 128, 4+2*64)
	cryptos := NewCryptoShards(k, "enc", 1)
	var kvID, encID int
	stores[0].Proc.Spawn("load", k.Mach.Cores[0], func(env *mk.Env) {
		if err := stores[0].Preload(env, []byte("warm"), CipherStream([]byte("toasty"))); err != nil {
			t.Errorf("preload: %v", err)
		}
		id, err := svc.RegisterSkyBridgeServer(sb, env, 8, stores[0].Handler())
		if err != nil {
			t.Errorf("register: %v", err)
			return
		}
		kvID = id
	})
	cryptos[0].Proc.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		encID, err = svc.RegisterSkyBridgeServer(sb, env, 8, cryptos[0].Handler())
		if err != nil {
			t.Errorf("register crypto: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	client := k.NewProcess("client")
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		enc, err := svc.NewSkyBridge(sb, env, encID)
		if err != nil {
			t.Errorf("bind crypto: %v", err)
			return
		}
		kvc, err := svc.NewSkyBridge(sb, env, kvID)
		if err != nil {
			t.Errorf("bind store: %v", err)
			return
		}
		c := &ShardedClient{Enc: enc, KV: svc.NewSharded([]svc.Conn{kvc}, PickReq(1))}
		got, err := c.QueryBatch(env, [][]byte{[]byte("warm"), []byte("cold")})
		if err != nil {
			t.Errorf("query: %v", err)
			return
		}
		if string(got[0]) != "toasty" {
			t.Errorf("preloaded value = %q, want %q", got[0], "toasty")
		}
		if got[1] != nil {
			t.Errorf("unloaded key = %q, want nil", got[1])
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
