package kv

import (
	"bytes"
	"fmt"

	"skybridge/internal/mk"
	"skybridge/internal/svc"
)

// Multi-tenant keyspace isolation for the KV store: every tenant's keys
// live under a per-tenant prefix, and the frontend-facing handler
// refuses any request whose key escapes the authenticated tenant's
// prefix — tenant A's ring (and key, and EPTP binding) can never read or
// write tenant B's records even though all records share one store.

// StatusWrongTenant is returned for a request whose key does not carry
// the authenticated tenant's prefix.
const StatusWrongTenant = 4

// TenantPrefix returns tenant t's keyspace prefix.
func TenantPrefix(tenant int) string { return fmt.Sprintf("t%04x|", tenant) }

// TenantKey builds tenant t's namespaced form of key.
func TenantKey(tenant int, key string) string { return TenantPrefix(tenant) + key }

// TenantGuard wraps a store handler with per-tenant keyspace
// enforcement: the key parsed from each request (OpGet's payload, or
// OpPut's keyLen-framed key) must carry the authenticated tenant's
// prefix, else StatusWrongTenant and the store is never touched.
// Malformed frames fall through to the handler, which rejects them with
// StatusBadReq as before.
func TenantGuard(h svc.Handler) func(env *mk.Env, tenant int, req svc.Req) svc.Resp {
	return func(env *mk.Env, tenant int, req svc.Req) svc.Resp {
		var key []byte
		switch req.Op {
		case OpPut:
			if len(req.Data) >= 2 {
				if klen := int(req.Data[0]) | int(req.Data[1])<<8; 2+klen <= len(req.Data) {
					key = req.Data[2 : 2+klen]
				}
			}
		case OpGet:
			key = req.Data
		}
		if key != nil && !bytes.HasPrefix(key, []byte(TenantPrefix(tenant))) {
			return svc.Resp{Status: StatusWrongTenant}
		}
		return h(env, req)
	}
}
