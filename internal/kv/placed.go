// Migratable shard placement: a set of co-resident shard stores served
// by several drain cores, where shard ownership can move between drains
// at runtime. The stores share one process (one EPT hierarchy), so a
// migration moves ownership and cache locality, not page tables — the
// new owner re-establishes its EPTP binding via Kernel.EnsureOn and
// pulls the shard's table through its own cache hierarchy.
package kv

import (
	"skybridge/internal/mk"
	"skybridge/internal/svc"
)

// StatusWrongEpoch rejects a request routed with a stale shard-to-owner
// mapping: the shard migrated since the client last read the routing
// epoch. Vals[0] of the response carries the current epoch; the client
// refreshes its owner table and resubmits to the new owner. The request
// is never executed, so a retry cannot double-apply.
const StatusWrongEpoch = 5

// NewStoreSet allocates n shard stores inside one shared process —
// the migratable counterpart of NewStoreShards' process-per-shard
// layout.
func NewStoreSet(proc *mk.Process, n, nslots, slotSize int) []*Store {
	shards := make([]*Store, n)
	for i := range shards {
		shards[i] = NewStore(proc, nslots, slotSize)
	}
	return shards
}

// MigrateWarm walks the store's slot region with charged reads,
// pulling the table into the cache hierarchy of the core taking
// ownership. This is the data-movement cost of a shard migration: the
// handoff itself is just an epoch bump, but the first touches of a
// cold table land here instead of stretching the serving tail. Returns
// the bytes walked.
func (s *Store) MigrateWarm(env *mk.Env) int {
	bytes := 0
	var hdr [slotHdr]byte
	for i := 0; i < s.nslots; i++ {
		va := s.slotVA(i)
		env.Read(va, hdr[:], slotHdr)
		bytes += slotHdr
		klen := int(hdr[0]) | int(hdr[1])<<8
		vlen := int(hdr[2]) | int(hdr[3])<<8
		if klen > 0 && slotHdr+klen+vlen <= s.slotSize {
			buf := make([]byte, klen+vlen)
			env.Read(va+slotHdr, buf, len(buf))
			bytes += len(buf)
		}
	}
	return bytes
}

// PlacedHandler serves a co-resident shard set behind one drain.
// Requests carry their target shard in Args[0] (stamped by the routing
// client); owns gates execution — when the drain no longer owns the
// shard the request is rejected with StatusWrongEpoch plus the current
// epoch in Vals[0], and the store is never touched. note, if non-nil,
// observes each executed op for the placement controller's load
// accounting.
func PlacedHandler(shards []*Store, owns func(shard int) (bool, uint64), note func(shard int)) svc.Handler {
	inner := make([]svc.Handler, len(shards))
	for i, s := range shards {
		inner[i] = s.Handler()
	}
	return func(env *mk.Env, req svc.Req) svc.Resp {
		shard := int(req.Args[0])
		if shard < 0 || shard >= len(shards) {
			return svc.Resp{Status: StatusBadReq}
		}
		ok, epoch := owns(shard)
		if !ok {
			return svc.Resp{Status: StatusWrongEpoch, Vals: [3]uint64{epoch}}
		}
		resp := inner[shard](env, req)
		if note != nil && resp.Status != StatusBadReq {
			note(shard)
		}
		return resp
	}
}
