package kv

import (
	"bytes"
	"fmt"
	"testing"

	"skybridge/internal/core"
	"skybridge/internal/hv"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
	"skybridge/internal/svc"
)

func pipelineCheck(t *testing.T, env *mk.Env, c *Client) {
	t.Helper()
	for i := 0; i < 16; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		val := bytes.Repeat([]byte{byte('A' + i)}, 64)
		if err := c.Insert(env, key, val); err != nil {
			t.Errorf("insert %d: %v", i, err)
			return
		}
	}
	for i := 0; i < 16; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		got, err := c.Query(env, key)
		if err != nil {
			t.Errorf("query %d: %v", i, err)
			return
		}
		want := bytes.Repeat([]byte{byte('A' + i)}, 64)
		if !bytes.Equal(got, want) {
			t.Errorf("key %d: value corrupted through encrypt/store/decrypt", i)
			return
		}
	}
	if _, err := c.Query(env, []byte("no-such-key")); err == nil {
		t.Error("missing key did not fail")
	}
}

func TestPipelineBaseline(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 1 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("all")
	store := NewStore(p, 1024, 2176)
	crypto := NewCrypto(p)
	p.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		c := &Client{Enc: svc.NewLocal(crypto.Handler()), KV: svc.NewLocal(store.Handler())}
		pipelineCheck(t, env, c)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if store.Puts != 16 || crypto.Ops != 32 {
		t.Fatalf("stats: puts=%d cryptoOps=%d", store.Puts, crypto.Ops)
	}
}

func TestPipelineIPC(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 4, MemBytes: 1 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	cliP := k.NewProcess("client")
	encP := k.NewProcess("enc")
	kvP := k.NewProcess("kv")

	store := NewStore(kvP, 1024, 2176)
	crypto := NewCrypto(encP)
	encEP := k.NewEndpoint("enc")
	kvEP := k.NewEndpoint("kv")
	encP.Spawn("srv", k.Mach.Cores[0], func(env *mk.Env) { svc.ServeIPC(env, encEP, crypto.Handler()) })
	kvP.Spawn("srv", k.Mach.Cores[0], func(env *mk.Env) { svc.ServeIPC(env, kvEP, store.Handler()) })

	cliP.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		c := &Client{Enc: svc.NewIPC(cliP, encEP), KV: svc.NewIPC(cliP, kvEP)}
		pipelineCheck(t, env, c)
		encEP.Close()
		kvEP.Close()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if k.IPCCalls == 0 {
		t.Fatal("no IPC recorded")
	}
}

func TestPipelineSkyBridge(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 4, MemBytes: 4 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	rk, err := hv.Boot(k, hv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sb := core.New(k, rk)

	cliP := k.NewProcess("client")
	encP := k.NewProcess("enc")
	kvP := k.NewProcess("kv")
	store := NewStore(kvP, 1024, 2176)
	crypto := NewCrypto(encP)

	var encID, kvID int
	encP.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		encID, err = svc.RegisterSkyBridgeServer(sb, env, 8, crypto.Handler())
		if err != nil {
			t.Errorf("register enc: %v", err)
		}
	})
	kvP.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		kvID, err = svc.RegisterSkyBridgeServer(sb, env, 8, store.Handler())
		if err != nil {
			t.Errorf("register kv: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	cliP.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		enc, err := svc.NewSkyBridge(sb, env, encID)
		if err != nil {
			t.Errorf("bind enc: %v", err)
			return
		}
		kvc, err := svc.NewSkyBridge(sb, env, kvID)
		if err != nil {
			t.Errorf("bind kv: %v", err)
			return
		}
		c := &Client{Enc: enc, KV: kvc}
		pipelineCheck(t, env, c)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sb.DirectCalls == 0 {
		t.Fatal("no direct calls recorded")
	}
	if k.IPCCalls != 0 {
		t.Fatalf("SkyBridge pipeline still made %d kernel IPCs", k.IPCCalls)
	}
}

func TestStoreCollisionProbing(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 1, MemBytes: 1 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("p")
	store := NewStore(p, 4, 256) // tiny: forces collisions
	p.Spawn("t", k.Mach.Cores[0], func(env *mk.Env) {
		for i := 0; i < 4; i++ {
			key := []byte{byte(i)}
			if st := store.put(env, key, []byte{byte(100 + i)}); st != StatusOK {
				t.Errorf("put %d: status %d", i, st)
			}
		}
		// Table full now.
		if st := store.put(env, []byte{9}, []byte{9}); st != StatusFull {
			t.Errorf("overfull put: status %d", st)
		}
		for i := 0; i < 4; i++ {
			val, st := store.get(env, []byte{byte(i)})
			if st != StatusOK || val[0] != byte(100+i) {
				t.Errorf("get %d: %v %d", i, val, st)
			}
		}
		// Overwrite existing key.
		if st := store.put(env, []byte{2}, []byte{222}); st != StatusOK {
			t.Errorf("overwrite: %d", st)
		}
		val, _ := store.get(env, []byte{2})
		if val[0] != 222 {
			t.Error("overwrite lost")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
