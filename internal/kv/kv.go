// Package kv implements the paper's motivating benchmark (Figure 1): a
// client, an encryption server, and a key-value store server. Insert
// requests flow client -> encryption -> KV store; queries flow back through
// decryption. The three processes are connected by a svc transport, so the
// same pipeline runs as Baseline (one address space, function calls),
// Delay (function calls plus an IPC-sized busy wait), kernel IPC (same or
// cross core), or SkyBridge — the five bars of Figures 2 and 8.
package kv

import (
	"fmt"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/svc"
)

// Service opcodes.
const (
	OpPut uint64 = iota + 1
	OpGet
	OpEncrypt
	OpDecrypt
)

// Status codes.
const (
	StatusOK       = svc.StatusOK
	StatusNotFound = 1
	StatusFull     = 2
	StatusBadReq   = 3
)

// Store is the key-value store server: an open-addressing hash table held
// in the owning process's simulated memory, so every probe and copy is
// charged through the cache hierarchy.
type Store struct {
	Proc     *mk.Process
	base     hw.VA
	nslots   int
	slotSize int
	used     int

	// text is the store's code footprint (its own copy of hash/probe/
	// runtime code).
	text    hw.VA
	textSeq uint64

	// Stats.
	Puts, Gets uint64
}

// Each pipeline component carries textBytes of code (its share of logic
// plus its own runtime copy — runtimes are not shared across address
// spaces) and executes a rotating opTextBytes window of it per operation.
// In the Baseline configuration all components share a single copy that
// fits the L1 i-cache; the multi-process configurations run 3x the
// footprint, which is the source of Table 1's i-cache pollution.
const (
	textBytes   = 24 << 10
	opTextBytes = 256
)

// textTouch executes a rotating window of a component's text.
func textTouch(env *mk.Env, text hw.VA, seq *uint64) {
	off := (*seq * 0x9E37) % uint64(textBytes-opTextBytes)
	off &^= uint64(hw.LineSize - 1)
	*seq++
	env.ExecCode(text+hw.VA(off), opTextBytes)
}

// slot layout: keyLen u16 | valLen u16 | key bytes | val bytes.
const slotHdr = 4

// NewStore allocates a store with nslots slots of slotSize bytes each.
func NewStore(proc *mk.Process, nslots, slotSize int) *Store {
	return &Store{
		Proc:     proc,
		base:     proc.Alloc(nslots * slotSize),
		nslots:   nslots,
		slotSize: slotSize,
		text:     proc.Alloc(textBytes),
	}
}

// fnv1a hashes a key; the caller charges hashing compute.
func fnv1a(key []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range key {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h
}

// UseSharedText points the store's code footprint at a shared region: the
// Baseline configuration links all components into one process, where they
// share a single runtime copy.
func (s *Store) UseSharedText(va hw.VA) { s.text = va }

// slotVA returns the address of slot i.
func (s *Store) slotVA(i int) hw.VA { return s.base + hw.VA(i*s.slotSize) }

// put stores key/val via linear probing.
func (s *Store) put(env *mk.Env, key, val []byte) uint64 {
	if slotHdr+len(key)+len(val) > s.slotSize {
		return StatusBadReq
	}
	env.Compute(uint64(5 + len(key))) // hash
	h := int(fnv1a(key) % uint64(s.nslots))
	for probe := 0; probe < s.nslots; probe++ {
		i := (h + probe) % s.nslots
		var hdr [slotHdr]byte
		env.Read(s.slotVA(i), hdr[:], slotHdr)
		klen := int(hdr[0]) | int(hdr[1])<<8
		if klen == 0 {
			// Empty slot: claim it.
			s.writeSlot(env, i, key, val)
			s.used++
			s.Puts++
			return StatusOK
		}
		existing := make([]byte, klen)
		env.Read(s.slotVA(i)+slotHdr, existing, klen)
		if string(existing) == string(key) {
			s.writeSlot(env, i, key, val)
			s.Puts++
			return StatusOK
		}
	}
	return StatusFull
}

func (s *Store) writeSlot(env *mk.Env, i int, key, val []byte) {
	buf := make([]byte, slotHdr+len(key)+len(val))
	buf[0], buf[1] = byte(len(key)), byte(len(key)>>8)
	buf[2], buf[3] = byte(len(val)), byte(len(val)>>8)
	copy(buf[slotHdr:], key)
	copy(buf[slotHdr+len(key):], val)
	env.Write(s.slotVA(i), buf, len(buf))
}

// get fetches the value for key.
func (s *Store) get(env *mk.Env, key []byte) ([]byte, uint64) {
	env.Compute(uint64(5 + len(key)))
	h := int(fnv1a(key) % uint64(s.nslots))
	for probe := 0; probe < s.nslots; probe++ {
		i := (h + probe) % s.nslots
		var hdr [slotHdr]byte
		env.Read(s.slotVA(i), hdr[:], slotHdr)
		klen := int(hdr[0]) | int(hdr[1])<<8
		if klen == 0 {
			return nil, StatusNotFound
		}
		vlen := int(hdr[2]) | int(hdr[3])<<8
		existing := make([]byte, klen)
		env.Read(s.slotVA(i)+slotHdr, existing, klen)
		if string(existing) == string(key) {
			val := make([]byte, vlen)
			env.Read(s.slotVA(i)+slotHdr+hw.VA(klen), val, vlen)
			s.Gets++
			return val, StatusOK
		}
	}
	return nil, StatusNotFound
}

// Handler serves OpPut (Data = u16 keyLen | key | val) and OpGet
// (Data = key).
func (s *Store) Handler() svc.Handler {
	return func(env *mk.Env, req svc.Req) svc.Resp {
		textTouch(env, s.text, &s.textSeq)
		switch req.Op {
		case OpPut:
			if len(req.Data) < 2 {
				return svc.Resp{Status: StatusBadReq}
			}
			klen := int(req.Data[0]) | int(req.Data[1])<<8
			if 2+klen > len(req.Data) {
				return svc.Resp{Status: StatusBadReq}
			}
			key := req.Data[2 : 2+klen]
			val := req.Data[2+klen:]
			return svc.Resp{Status: s.put(env, key, val)}
		case OpGet:
			val, status := s.get(env, req.Data)
			return svc.Resp{Status: status, Data: val}
		default:
			return svc.Resp{Status: StatusBadReq}
		}
	}
}

// Crypto is the encryption server: a rolling XOR stream cipher over a key
// schedule held in its address space. (The paper does not name its cipher;
// what matters for the benchmark is per-byte compute plus buffer traffic in
// a separate protection domain.)
type Crypto struct {
	Proc    *mk.Process
	keyVA   hw.VA
	keyLen  int
	scratch hw.VA
	text    hw.VA
	textSeq uint64

	// Ops counts served requests.
	Ops uint64
}

// NewCrypto creates the encryption server state.
func NewCrypto(proc *mk.Process) *Crypto {
	c := &Crypto{Proc: proc, keyLen: 256}
	c.keyVA = proc.Alloc(hw.PageSize)
	c.scratch = proc.Alloc(4 * hw.PageSize)
	c.text = proc.Alloc(textBytes)
	return c
}

// UseSharedText points the cipher's code footprint at a shared region (see
// Store.UseSharedText).
func (c *Crypto) UseSharedText(va hw.VA) { c.text = va }

// transform is its own inverse (XOR stream).
func (c *Crypto) transform(env *mk.Env, data []byte) []byte {
	// Execute the cipher's code footprint, load the key schedule, and
	// stream the payload through the scratch buffer (charged), plus
	// 2 cycles/byte of ALU work.
	textTouch(env, c.text, &c.textSeq)
	env.Read(c.keyVA, nil, c.keyLen)
	env.Write(c.scratch, data, len(data))
	env.Compute(uint64(2 * len(data)))
	out := CipherStream(data)
	env.Read(c.scratch, nil, len(data))
	c.Ops++
	return out
}

// Handler serves OpEncrypt/OpDecrypt.
func (c *Crypto) Handler() svc.Handler {
	return func(env *mk.Env, req svc.Req) svc.Resp {
		switch req.Op {
		case OpEncrypt, OpDecrypt:
			return svc.Resp{Data: c.transform(env, req.Data)}
		default:
			return svc.Resp{Status: StatusBadReq}
		}
	}
}

// Client drives the two-server pipeline.
type Client struct {
	Enc svc.Conn
	KV  svc.Conn
	// Text, when non-zero, is the client's code footprint (request
	// marshalling, its own runtime copy).
	Text    hw.VA
	TextLen int
	textSeq uint64
}

func (c *Client) touch(env *mk.Env) {
	if c.Text != 0 {
		textTouch(env, c.Text, &c.textSeq)
	}
}

// Insert encrypts the value and stores it under key.
func (c *Client) Insert(env *mk.Env, key, val []byte) error {
	c.touch(env)
	enc, err := c.Enc.Invoke(env, svc.Req{Op: OpEncrypt, Data: val})
	if err != nil {
		return err
	}
	payload := make([]byte, 2+len(key)+len(enc.Data))
	payload[0], payload[1] = byte(len(key)), byte(len(key)>>8)
	copy(payload[2:], key)
	copy(payload[2+len(key):], enc.Data)
	resp, err := c.KV.Invoke(env, svc.Req{Op: OpPut, Data: payload})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("kv: put failed: status %d", resp.Status)
	}
	return nil
}

// Query fetches and decrypts the value under key.
func (c *Client) Query(env *mk.Env, key []byte) ([]byte, error) {
	c.touch(env)
	resp, err := c.KV.Invoke(env, svc.Req{Op: OpGet, Data: key})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, fmt.Errorf("kv: get failed: status %d", resp.Status)
	}
	dec, err := c.Enc.Invoke(env, svc.Req{Op: OpDecrypt, Data: resp.Data})
	if err != nil {
		return nil, err
	}
	return dec.Data, nil
}
