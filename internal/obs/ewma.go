package obs

// ewmaFrac is the number of binary fraction bits EWMA keeps internally,
// so small per-period sample counts still smooth instead of truncating
// to zero.
const ewmaFrac = 8

// EWMA is a deterministic integer exponentially-weighted moving average
// with smoothing factor 1/2^Shift: each Observe folds the new sample in
// as v += (sample - v) >> Shift, carried in 1/2^ewmaFrac fixed point.
// Pure integer arithmetic keeps placement-control decisions identical
// across hosts, -j values, and repeat runs.
type EWMA struct {
	Shift uint
	v     uint64
}

// Observe folds one sample (e.g. ops served this control period) into
// the average.
func (e *EWMA) Observe(sample uint64) {
	s := sample << ewmaFrac
	if s >= e.v {
		// Round the increment up so a constant input is reached exactly
		// instead of stalling 2^Shift-1 fixed-point units below it.
		e.v += (s - e.v + 1<<e.Shift - 1) >> e.Shift
	} else {
		e.v -= (e.v - s) >> e.Shift
	}
}

// Value is the current average, rounded down to sample units.
func (e *EWMA) Value() uint64 { return e.v >> ewmaFrac }

// Scaled is the current average in 1/256 sample units, for comparisons
// that need sub-sample resolution.
func (e *EWMA) Scaled() uint64 { return e.v }

// Reset clears the average.
func (e *EWMA) Reset() { e.v = 0 }
