package obs

// FlightRecorder keeps a bounded ring of recent CallRecords and, when a
// call's end-to-end latency exceeds a quantile-tracked threshold, freezes
// the ring into a FlightDump: the causal context (what the system was
// doing just before) plus the trigger record itself. It is always-on and
// bounded — a fixed ring, a histogram for the threshold, and a capped
// number of dumps — so tail outliers in long benches are diagnosable
// post-hoc without unbounded trace buffers.
//
// Policy: the threshold is Quantile(cfg.Quantile) over all calls observed
// *before* the candidate (so an outlier cannot raise its own bar), and no
// dump fires until MinCalls observations have seeded the distribution.
// After MaxDumps dumps, further triggers are counted in Suppressed rather
// than recorded, bounding memory no matter how pathological the tail.

// FlightConfig parameterizes a FlightRecorder. Zero fields take the
// defaults noted on each field.
type FlightConfig struct {
	// Ring is the number of recent records retained (default 256).
	Ring int
	// Quantile is the latency quantile that sets the dump threshold
	// (default 0.999).
	Quantile float64
	// MinCalls is the number of observations required before any dump
	// can fire (default 128).
	MinCalls uint64
	// MaxDumps caps retained dumps (default 4).
	MaxDumps int
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.Ring <= 0 {
		c.Ring = 256
	}
	if c.Quantile <= 0 || c.Quantile >= 1 {
		c.Quantile = 0.999
	}
	if c.MinCalls == 0 {
		c.MinCalls = 128
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = 4
	}
	return c
}

// FlightDump is one frozen outlier: the trigger record, the threshold it
// exceeded, and the chain of records that preceded it (oldest first).
type FlightDump struct {
	Trigger   CallRecord   `json:"trigger"`
	Threshold uint64       `json:"threshold"`
	Chain     []CallRecord `json:"chain"`
}

// FlightRecorder implements the policy above. A nil recorder discards
// observations.
type FlightRecorder struct {
	cfg  FlightConfig
	ring []CallRecord
	next int
	full bool

	hist       Histogram
	dumps      []FlightDump
	suppressed uint64
}

// NewFlightRecorder creates a recorder with the given (defaulted) config.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	return &FlightRecorder{cfg: cfg, ring: make([]CallRecord, cfg.Ring)}
}

// Observe records one call, dumping first if it breaches the threshold
// established by the calls before it.
func (f *FlightRecorder) Observe(r *CallRecord) {
	if f == nil {
		return
	}
	e2e := r.E2E()
	if f.hist.Count() >= f.cfg.MinCalls {
		if thr := f.hist.Quantile(f.cfg.Quantile); e2e > thr {
			if len(f.dumps) < f.cfg.MaxDumps {
				f.dumps = append(f.dumps, FlightDump{
					Trigger:   *r,
					Threshold: thr,
					Chain:     f.chain(),
				})
			} else {
				f.suppressed++
			}
		}
	}
	f.hist.Observe(e2e)
	f.ring[f.next] = *r
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.full = true
	}
}

// chain copies the ring contents in chronological (insertion) order.
func (f *FlightRecorder) chain() []CallRecord {
	var out []CallRecord
	if f.full {
		out = make([]CallRecord, 0, len(f.ring))
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	} else {
		out = append(out, f.ring[:f.next]...)
	}
	return out
}

// Dumps returns the retained dumps in trigger order.
func (f *FlightRecorder) Dumps() []FlightDump {
	if f == nil {
		return nil
	}
	return f.dumps
}

// Suppressed returns the number of triggers discarded after MaxDumps.
func (f *FlightRecorder) Suppressed() uint64 {
	if f == nil {
		return 0
	}
	return f.suppressed
}

// Calls returns the number of observed calls.
func (f *FlightRecorder) Calls() uint64 {
	if f == nil {
		return 0
	}
	return f.hist.Count()
}

// Reset clears the recorder (ring, threshold state, and dumps).
func (f *FlightRecorder) Reset() {
	if f == nil {
		return
	}
	for i := range f.ring {
		f.ring[i] = CallRecord{}
	}
	f.next, f.full = 0, false
	f.hist.Reset()
	f.dumps = nil
	f.suppressed = 0
}
