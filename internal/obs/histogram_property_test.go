package obs

import (
	"math/rand"
	"sort"
	"testing"
)

// Property tests for the log-linear histogram: Quantile against an exact
// sorted reference, and Merge as an exact commutative/associative fold.
// All randomness is seeded, so failures reproduce.

// exactQuantile is the reference implementation: the ceil(q*n)-th order
// statistic of the observed values.
func exactQuantile(sorted []uint64, q float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// sampleSets generates value sets across the distributions the simulator
// produces: small exact-bucket values, cycle-scale latencies, and heavy
// tails spanning many octaves.
func sampleSets(rng *rand.Rand) [][]uint64 {
	sets := [][]uint64{
		{},        // empty
		{0},       // single zero
		{7},       // single small
		{1 << 40}, // single huge
	}
	// All-below-histSub: unit buckets, quantiles exact.
	small := make([]uint64, 100)
	for i := range small {
		small[i] = uint64(rng.Intn(histSub))
	}
	sets = append(sets, small)
	// Uniform cycle-scale.
	mid := make([]uint64, 1+rng.Intn(500))
	for i := range mid {
		mid[i] = uint64(rng.Intn(1 << 20))
	}
	sets = append(sets, mid)
	// Heavy tail: random octave, random mantissa.
	tail := make([]uint64, 1+rng.Intn(500))
	for i := range tail {
		tail[i] = rng.Uint64() >> uint(rng.Intn(64))
	}
	sets = append(sets, tail)
	return sets
}

func TestHistogramQuantileAgainstSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for trial := 0; trial < 50; trial++ {
		for _, vals := range sampleSets(rng) {
			h := NewHistogram()
			for _, v := range vals {
				h.Observe(v)
			}
			sorted := append([]uint64(nil), vals...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, q := range quantiles {
				got, want := h.Quantile(q), exactQuantile(sorted, q)
				if len(vals) == 0 {
					if got != 0 {
						t.Fatalf("empty histogram Quantile(%v) = %d, want 0", q, got)
					}
					continue
				}
				// The histogram returns the lower bound of the bucket
				// holding the exact order statistic: same bucket, never
				// above the exact value.
				if got > want {
					t.Fatalf("Quantile(%v) = %d above exact %d (n=%d)", q, got, want, len(vals))
				}
				if bucketIndex(got) != bucketIndex(want) {
					t.Fatalf("Quantile(%v) = %d in bucket %d, exact %d in bucket %d",
						q, got, bucketIndex(got), want, bucketIndex(want))
				}
				// Values below histSub land in unit buckets: exact.
				if want < histSub && got != want {
					t.Fatalf("Quantile(%v) = %d, want exact small value %d", q, got, want)
				}
				// The q=1 quantile is the exact maximum.
				if q >= 1 && got != sorted[len(sorted)-1] {
					t.Fatalf("Quantile(1) = %d, want exact max %d", got, sorted[len(sorted)-1])
				}
			}
		}
	}
}

func TestHistogramMergeCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() >> uint(rng.Intn(64))
		}
		// Three disjoint shards of the same observation stream.
		var a, b, c, whole Histogram
		for i, v := range vals {
			whole.Observe(v)
			switch i % 3 {
			case 0:
				a.Observe(v)
			case 1:
				b.Observe(v)
			case 2:
				c.Observe(v)
			}
		}
		merge := func(hs ...*Histogram) Histogram {
			var m Histogram
			for _, h := range hs {
				m.Merge(h)
			}
			return m
		}
		abc := merge(&a, &b, &c)
		// Commutativity: any shard order gives bit-identical state (the
		// struct holds only arrays and scalars, so == compares it all).
		if cba := merge(&c, &b, &a); abc != cba {
			t.Fatal("Merge not commutative: (a,b,c) != (c,b,a)")
		}
		if bac := merge(&b, &a, &c); abc != bac {
			t.Fatal("Merge not commutative: (a,b,c) != (b,a,c)")
		}
		// Associativity: (a+b)+c == a+(b+c).
		ab := merge(&a, &b)
		left := merge(&ab, &c)
		bc := merge(&b, &c)
		right := merge(&a, &bc)
		if left != right {
			t.Fatal("Merge not associative")
		}
		// Merging shards is bit-identical to one histogram observing the
		// whole stream.
		if abc != whole {
			t.Fatal("merged shards differ from single-histogram state")
		}
	}
}
