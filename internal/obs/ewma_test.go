package obs

import "testing"

func TestEWMAConvergesToConstant(t *testing.T) {
	e := EWMA{Shift: 2}
	for i := 0; i < 64; i++ {
		e.Observe(100)
	}
	if v := e.Value(); v < 99 || v > 100 {
		t.Fatalf("EWMA of constant 100 = %d", v)
	}
}

func TestEWMATracksStep(t *testing.T) {
	e := EWMA{Shift: 1}
	for i := 0; i < 32; i++ {
		e.Observe(0)
	}
	if e.Value() != 0 {
		t.Fatalf("EWMA of zeros = %d", e.Value())
	}
	e.Observe(64)
	if v := e.Value(); v != 32 {
		t.Fatalf("one step at shift 1 = %d, want 32", v)
	}
	for i := 0; i < 32; i++ {
		e.Observe(64)
	}
	if v := e.Value(); v < 63 || v > 64 {
		t.Fatalf("EWMA after step = %d, want ~64", v)
	}
	// Decay back toward zero strictly monotonically.
	prev := e.Scaled()
	for i := 0; i < 8; i++ {
		e.Observe(0)
		if e.Scaled() >= prev {
			t.Fatalf("EWMA did not decay: %d -> %d", prev, e.Scaled())
		}
		prev = e.Scaled()
	}
}

func TestEWMASmallSamplesDoNotVanish(t *testing.T) {
	// Fraction bits keep a stream of 1s from truncating to zero.
	e := EWMA{Shift: 3}
	for i := 0; i < 128; i++ {
		e.Observe(1)
	}
	if e.Value() < 1 {
		t.Fatalf("EWMA of ones = %d (scaled %d)", e.Value(), e.Scaled())
	}
	e.Reset()
	if e.Scaled() != 0 {
		t.Fatal("Reset did not clear")
	}
}
