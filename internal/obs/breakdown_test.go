package obs

import (
	"encoding/json"
	"testing"
)

// rec builds a CallRecord whose phases exactly partition [start, end).
func rec(start uint64, phases ...uint64) CallRecord {
	r := CallRecord{Kind: CallAsync, Start: start}
	end := start
	for i, p := range phases {
		r.Phases[CallPhase(i)] = p
		end += p
	}
	r.End = end
	return r
}

func TestCallRecordPhaseSum(t *testing.T) {
	r := rec(100, 10, 20, 30, 0, 5, 35)
	if r.E2E() != 100 || r.PhaseSum() != r.E2E() {
		t.Fatalf("E2E = %d, PhaseSum = %d, want 100", r.E2E(), r.PhaseSum())
	}
}

func TestBreakdownSummaryOmitsUnusedPhases(t *testing.T) {
	b := NewBreakdown()
	// A sync-shaped record: only crossing and service cycles.
	r := CallRecord{Kind: CallSync, Start: 0, End: 100}
	r.Phases[PhaseCrossing] = 60
	r.Phases[PhaseService] = 40
	b.Observe(&r)
	b.Observe(&r)
	sum := b.Summary()
	if sum.Calls != 2 {
		t.Fatalf("Calls = %d, want 2", sum.Calls)
	}
	if sum.E2E.Max != 100 || sum.E2E.Count != 2 {
		t.Fatalf("E2E summary = %+v", sum.E2E)
	}
	if _, ok := sum.Phases["crossing"]; !ok {
		t.Error("crossing phase missing from summary")
	}
	if _, ok := sum.Phases["service"]; !ok {
		t.Error("service phase missing from summary")
	}
	for _, unused := range []string{"ring_wait", "wakeup_delivery", "client_spin", "reap_delay"} {
		if _, ok := sum.Phases[unused]; ok {
			t.Errorf("unused phase %q present in summary", unused)
		}
	}
	// The summary serializes deterministically (sorted map keys).
	j1, _ := json.Marshal(sum)
	j2, _ := json.Marshal(b.Summary())
	if string(j1) != string(j2) {
		t.Error("BreakdownSummary serialization not deterministic")
	}
}

func TestBreakdownMergeMatchesSingle(t *testing.T) {
	var a, b, whole Breakdown
	for i := 0; i < 100; i++ {
		r := rec(uint64(i), uint64(i%7), uint64(i%3), uint64(i%11), 0, uint64(i%2), 1)
		whole.Observe(&r)
		if i%2 == 0 {
			a.Observe(&r)
		} else {
			b.Observe(&r)
		}
	}
	a.Merge(&b)
	if a != whole {
		t.Fatal("merged breakdown differs from single-sink state")
	}
}

func TestFlightRecorderWarmupAndDump(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Ring: 8, MinCalls: 16, MaxDumps: 2})
	// A massive first call must not dump: the distribution is unseeded.
	warm := rec(0, 1<<30)
	f.Observe(&warm)
	if len(f.Dumps()) != 0 {
		t.Fatal("dump fired before MinCalls observations")
	}
	f.Reset()
	// Seed a tight distribution of exactly-100-cycle calls: the quantile
	// threshold sits at 100, so in-distribution calls never exceed it.
	for i := 0; i < 100; i++ {
		r := rec(uint64(1000+i*200), 50, 0, 50)
		f.Observe(&r)
	}
	if len(f.Dumps()) != 0 {
		t.Fatalf("in-distribution calls dumped: %d", len(f.Dumps()))
	}
	// A tail outlier dumps, with the threshold computed from the calls
	// before it and the chain holding its causal context.
	out := rec(50_000, 4000, 0, 4000)
	f.Observe(&out)
	dumps := f.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Trigger != out {
		t.Errorf("trigger = %+v, want the outlier", d.Trigger)
	}
	if d.Threshold == 0 || d.Threshold >= out.E2E() {
		t.Errorf("threshold = %d, want in (0, %d)", d.Threshold, out.E2E())
	}
	if len(d.Chain) != 8 {
		t.Fatalf("chain length = %d, want full ring 8", len(d.Chain))
	}
	for i := 1; i < len(d.Chain); i++ {
		if d.Chain[i].Start < d.Chain[i-1].Start {
			t.Fatal("chain not in chronological order")
		}
	}
	// The chain holds the records immediately preceding the trigger, not
	// the trigger itself.
	if last := d.Chain[len(d.Chain)-1]; last.Start >= out.Start {
		t.Errorf("chain tail starts at %d, want before trigger %d", last.Start, out.Start)
	}

	// Past MaxDumps, triggers are counted, not stored.
	f.Observe(&out)
	f.Observe(&out)
	f.Observe(&out)
	if len(f.Dumps()) != 2 {
		t.Fatalf("dumps = %d, want capped at 2", len(f.Dumps()))
	}
	if f.Suppressed() == 0 {
		t.Error("suppressed counter not incremented past MaxDumps")
	}

	f.Reset()
	if f.Calls() != 0 || len(f.Dumps()) != 0 || f.Suppressed() != 0 {
		t.Error("Reset did not clear the recorder")
	}
}

func TestFlightRecorderThresholdExcludesCandidate(t *testing.T) {
	// Two identical outliers in a row: the first dumps against the tight
	// baseline; by the second, the first has raised the p-quantile only
	// through the histogram (observed after judgment), so the second must
	// be judged against a distribution that includes the first.
	f := NewFlightRecorder(FlightConfig{Ring: 4, MinCalls: 8, MaxDumps: 8, Quantile: 0.5})
	for i := 0; i < 8; i++ {
		r := rec(uint64(i*10), 10)
		f.Observe(&r)
	}
	big := rec(1000, 500)
	f.Observe(&big)
	if len(f.Dumps()) != 1 {
		t.Fatalf("first outlier: dumps = %d, want 1", len(f.Dumps()))
	}
	if thr := f.Dumps()[0].Threshold; thr != 10 {
		t.Errorf("threshold = %d, want the 10-cycle baseline median", thr)
	}
}

func TestCallObserverNilSafety(t *testing.T) {
	var o *CallObserver
	r := rec(0, 10)
	o.Observe(&r) // nil observer
	o.Reset()
	o = &CallObserver{} // nil components
	o.Observe(&r)
	o.Reset()
	o = &CallObserver{Breakdown: NewBreakdown()}
	o.Observe(&r)
	if o.Breakdown.Calls() != 1 {
		t.Fatal("breakdown-only observer did not record")
	}
}
