package obs

import "testing"

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := NewTracer()
	pt := tr.Process("m", 2)
	ct := pt.Core(0)

	outer := ct.Begin(10, "outer", "test")
	inner := ct.Begin(20, "inner", "test")
	ct.Instant(25, "mark", "test", U("k", 7))
	ct.End(inner, 30, U("ok", 1))
	ct.End(outer, 50)

	evs := ct.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Program order: outer opened first, then inner, then the instant.
	if evs[0].Name != "outer" || evs[1].Name != "inner" || evs[2].Name != "mark" {
		t.Fatalf("event order = %q %q %q", evs[0].Name, evs[1].Name, evs[2].Name)
	}
	if evs[0].Ts != 10 || evs[0].Dur != 40 {
		t.Errorf("outer = [%d, +%d), want [10, +40)", evs[0].Ts, evs[0].Dur)
	}
	if evs[1].Ts != 20 || evs[1].Dur != 10 {
		t.Errorf("inner = [%d, +%d), want [20, +10)", evs[1].Ts, evs[1].Dur)
	}
	// Inner nests strictly inside outer.
	if evs[1].Ts < evs[0].Ts || evs[1].Ts+evs[1].Dur > evs[0].Ts+evs[0].Dur {
		t.Errorf("inner [%d,+%d) not nested in outer [%d,+%d)",
			evs[1].Ts, evs[1].Dur, evs[0].Ts, evs[0].Dur)
	}
	if evs[2].Ph != PhaseInstant || evs[2].Ts != 25 {
		t.Errorf("instant = ph %q ts %d, want ph 'i' ts 25", evs[2].Ph, evs[2].Ts)
	}
	if len(evs[1].Args) != 1 || evs[1].Args[0] != (Arg{Key: "ok", Val: 1}) {
		t.Errorf("inner args = %v, want [{ok 1}]", evs[1].Args)
	}
	// The untouched second core stays empty.
	if pt.Core(1).Len() != 0 {
		t.Errorf("core1 has %d events, want 0", pt.Core(1).Len())
	}
	if tr.TotalEvents() != 3 {
		t.Errorf("TotalEvents = %d, want 3", tr.TotalEvents())
	}
}

func TestEndBeforeBeginClampsDuration(t *testing.T) {
	tr := NewTracer()
	ct := tr.Process("m", 1).Core(0)
	id := ct.Begin(100, "s", "test")
	ct.End(id, 90) // ts went backwards: duration stays 0, no underflow
	if d := ct.Events()[0].Dur; d != 0 {
		t.Errorf("Dur = %d, want 0", d)
	}
}

func TestBufferCapDropsNewest(t *testing.T) {
	tr := NewTracer()
	tr.EventCap = 3
	ct := tr.Process("m", 1).Core(0)

	a := ct.Begin(1, "a", "t")
	ct.Complete(2, 1, "b", "t")
	ct.Instant(3, "c", "t")
	// Buffer is now full: everything below is dropped, a's ID stays valid.
	if id := ct.Begin(4, "d", "t"); id != NoSpan {
		t.Fatalf("Begin on full buffer = %d, want NoSpan", id)
	}
	ct.Complete(5, 1, "e", "t")
	ct.Instant(6, "f", "t")
	ct.End(a, 10) // still lands on the right event

	if ct.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ct.Len())
	}
	if ct.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", ct.Dropped)
	}
	if tr.TotalDropped() != 3 {
		t.Errorf("TotalDropped = %d, want 3", tr.TotalDropped())
	}
	evs := ct.Events()
	if evs[0].Name != "a" || evs[0].Dur != 9 {
		t.Errorf("event 0 = %q dur %d, want a dur 9", evs[0].Name, evs[0].Dur)
	}
	if evs[1].Name != "b" || evs[2].Name != "c" {
		t.Errorf("kept %q %q, want b c (drop-newest)", evs[1].Name, evs[2].Name)
	}
}

func TestNilCoreTraceIsSafe(t *testing.T) {
	var ct *CoreTrace
	ct.Instant(1, "x", "t")
	ct.Complete(1, 1, "x", "t")
	id := ct.Begin(1, "x", "t")
	if id != NoSpan {
		t.Errorf("nil Begin = %d, want NoSpan", id)
	}
	ct.End(id, 2)
	ct.End(NoSpan, 2)
	if ct.Len() != 0 {
		t.Errorf("nil Len = %d, want 0", ct.Len())
	}
}

func TestProcessNumbering(t *testing.T) {
	tr := NewTracer()
	p0 := tr.Process("alpha", 1)
	p1 := tr.Process("beta", 2)
	if p0.Name() != "alpha" || p1.Name() != "beta" {
		t.Errorf("names = %q %q", p0.Name(), p1.Name())
	}
	if p1.Cores() != 2 {
		t.Errorf("beta cores = %d, want 2", p1.Cores())
	}
	if got := len(tr.Processes()); got != 2 {
		t.Errorf("Processes = %d, want 2", got)
	}
	// Distinct processes get distinct pids (visible through export paths);
	// the core tracks carry their owning pid.
	if p0.Core(0).pid == p1.Core(0).pid {
		t.Errorf("pids collide: %d", p0.Core(0).pid)
	}
}
