package obs

import "testing"

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	// Values below histSub (16) land in unit buckets: quantiles are exact.
	for v := uint64(1); v <= 10; v++ {
		h.Observe(v)
	}
	if h.Count() != 10 || h.Sum() != 55 || h.Max() != 10 {
		t.Fatalf("count/sum/max = %d/%d/%d, want 10/55/10", h.Count(), h.Sum(), h.Max())
	}
	if got := h.Mean(); got != 5.5 {
		t.Errorf("mean = %v, want 5.5", got)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := h.Quantile(0.9); got != 9 {
		t.Errorf("p90 = %d, want 9", got)
	}
	if got := h.Quantile(1.0); got != 10 {
		t.Errorf("p100 = %d, want exact max 10", got)
	}
}

func TestHistogramUniformDistribution(t *testing.T) {
	h := NewHistogram()
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	// Quantiles report the bucket lower bound, so they may under-report by
	// one sub-bucket: at most 1/16 = 6.25% relative error below the true
	// value, and never above it.
	check := func(q float64, want uint64) {
		got := h.Quantile(q)
		if got > want {
			t.Errorf("q%.2f = %d, above true value %d", q, got, want)
		}
		if float64(got) < float64(want)*(1-1.0/histSub) {
			t.Errorf("q%.2f = %d, more than %.2f%% below true value %d",
				q, got, 100.0/histSub, want)
		}
	}
	check(0.50, 500)
	check(0.90, 900)
	check(0.95, 950)
	check(0.99, 990)
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("max quantile = %d, want 1000", got)
	}
	if got := h.Mean(); got != 500.5 {
		t.Errorf("mean = %v, want 500.5", got)
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and the
	// value just below it to the previous bucket.
	for idx := 0; idx < numBuckets-1; idx++ {
		lo := bucketLower(idx)
		if got := bucketIndex(lo); got != idx {
			t.Fatalf("bucketIndex(bucketLower(%d)=%d) = %d", idx, lo, got)
		}
		if lo > 0 {
			if got := bucketIndex(lo - 1); got != idx-1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", lo-1, got, idx-1)
			}
		}
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram not zero-valued")
	}
	var nh *Histogram
	nh.Observe(42) // must not panic
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(100)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Errorf("reset histogram retains state")
	}
}

func TestSummary(t *testing.T) {
	h := NewHistogram()
	for v := uint64(1); v <= 8; v++ {
		h.Observe(v)
	}
	s := h.Summary()
	if s.Count != 8 || s.Max != 8 || s.P50 != 4 || s.Mean != 4.5 {
		t.Errorf("summary = %+v", s)
	}
}
