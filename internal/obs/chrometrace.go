package obs

import (
	"encoding/json"
	"io"
	"strconv"
)

// Chrome trace-event JSON export (the "JSON Array Format" with the object
// wrapper, understood by Perfetto and chrome://tracing).
//
// Mapping:
//   - one traced machine  -> one trace process (pid)
//   - one simulated core  -> one thread track (tid) inside that process
//   - 1 trace timestamp unit -> 1 simulated cycle
//
// Metadata events name every process and track, so the UI shows e.g.
// "table2.directcall" with tracks "core0".."core3". Events are emitted in
// (pid, tid, program order), and json.Marshal sorts map keys, so the
// output is byte-identical across identical runs.

type chromeSpan struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Dur  uint64            `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]uint64 `json:"args,omitempty"`
}

type chromeInstant struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s"`
	Args map[string]uint64 `json:"args,omitempty"`
}

// chromeFlow is a flow event ('s'/'t'/'f'). Flow ids must be unique per
// trace file, but obs flow IDs are only unique within one traced process
// (each experiment restarts its deterministic call counters), so the
// exported id is scoped by pid. BP "e" binds the arrow to the enclosing
// slice rather than the next one, matching where instrumentation emits
// flow events (inside the span doing the work).
type chromeFlow struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	Ts   uint64 `json:"ts"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	ID   string `json:"id"`
	BP   string `json:"bp"`
}

type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

type chromeTrace struct {
	TraceEvents []any             `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData"`
}

func argMap(args []Arg) map[string]uint64 {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]uint64, len(args))
	for _, a := range args {
		m[a.Key] = a.Val
	}
	return m
}

// WriteChromeTrace serializes every recorded event as Chrome trace-event
// JSON. The output is deterministic for identical runs.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var events []any
	for _, pt := range t.procs {
		events = append(events, chromeMeta{
			Name: "process_name", Ph: "M", Pid: pt.pid, Tid: 0,
			Args: map[string]string{"name": pt.name},
		})
		for _, ct := range pt.cores {
			events = append(events, chromeMeta{
				Name: "thread_name", Ph: "M", Pid: ct.pid, Tid: ct.tid,
				Args: map[string]string{"name": coreName(ct.tid)},
			})
		}
	}
	for _, pt := range t.procs {
		for _, ct := range pt.cores {
			for i := range ct.events {
				ev := &ct.events[i]
				switch ev.Ph {
				case PhaseInstant:
					events = append(events, chromeInstant{
						Name: ev.Name, Cat: ev.Cat, Ph: "i", Ts: ev.Ts,
						Pid: ct.pid, Tid: ct.tid, S: "t", Args: argMap(ev.Args),
					})
				case PhaseFlowStart, PhaseFlowStep, PhaseFlowEnd:
					events = append(events, chromeFlow{
						Name: ev.Name, Cat: ev.Cat, Ph: string(ev.Ph), Ts: ev.Ts,
						Pid: ct.pid, Tid: ct.tid, ID: flowID(ct.pid, ev.ID), BP: "e",
					})
				default:
					events = append(events, chromeSpan{
						Name: ev.Name, Cat: ev.Cat, Ph: "X", Ts: ev.Ts, Dur: ev.Dur,
						Pid: ct.pid, Tid: ct.tid, Args: argMap(ev.Args),
					})
				}
			}
		}
	}
	out := chromeTrace{
		TraceEvents: events,
		OtherData: map[string]string{
			"clockDomain": "simulated-cycles",
			"timeUnit":    "1 ts = 1 simulated cycle",
		},
	}
	buf, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

func coreName(tid int) string { return "core" + strconv.Itoa(tid) }

// flowID renders a pid-scoped flow identifier. The trace format accepts
// string ids, and scoping by pid keeps flows from distinct experiments
// (which reuse the same deterministic in-process ids) separate.
func flowID(pid int, id uint64) string {
	return strconv.Itoa(pid) + "." + strconv.FormatUint(id, 16)
}
