// Package obs is the simulator-native observability layer: a span/event
// tracer and a metrics registry, both keyed to the per-core simulated
// cycle clock (hw.CPU.Clock) rather than wall time.
//
// The paper's entire argument is a cycle-level cost breakdown of the IPC
// path (Table 2, §6); this package makes that breakdown visible inside one
// call instead of only as end-of-run aggregates:
//
//   - Tracer / ProcTrace / CoreTrace record spans and instant events into
//     per-CPU bounded buffers and export them as Chrome trace-event JSON
//     (loadable in Perfetto or chrome://tracing), one track per simulated
//     core. Timestamps are simulated cycles (1 trace "microsecond" = 1
//     cycle), so a SkyBridge call renders as a ~396-unit span with its
//     trampoline / VMFUNC / server / return phases nested inside.
//   - Registry unifies the ad-hoc hardware and kernel counters (cache and
//     TLB hit/miss statistics, VMFUNC and syscall counts, hypercalls, IPC
//     path counters) behind one name space with a single ResetAll, and
//     adds log-linear latency histograms reporting p50/p95/p99/max in
//     cycles.
//
// Two properties are load-bearing for the benchmarks:
//
//   - Zero cost when disabled: every instrumentation site guards on a nil
//     sink (cpu.Trace == nil), and recording never advances the simulated
//     clock or touches the cache/TLB models, so enabling tracing cannot
//     perturb measured cycle counts.
//   - Determinism: events carry only simulated timestamps and are stored
//     in program order (which the sim engine makes deterministic), and all
//     JSON exports order keys deterministically, so two identical runs
//     produce byte-identical trace and metrics files.
//
// obs deliberately imports nothing from the simulator packages; hw, hv,
// mk, core, and bench all import obs and pass cycle values in as plain
// uint64s.
package obs

// Arg is one key/value annotation attached to a trace event. Args are kept
// as an ordered slice (not a map) so traces serialize deterministically.
type Arg struct {
	Key string
	Val uint64
}

// U constructs an Arg (shorthand for instrumentation sites).
func U(key string, val uint64) Arg { return Arg{Key: key, Val: val} }
