package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRegistryBindReadsLiveField(t *testing.T) {
	r := NewRegistry()
	var field uint64
	r.Bind("cpu0.L1I.misses", &field)
	field = 7 // the hot path increments the plain field
	if got := r.Value("cpu0.L1I.misses"); got != 7 {
		t.Errorf("Value = %d, want 7", got)
	}
	// Rebinding replaces the pointer.
	var other uint64 = 99
	r.Bind("cpu0.L1I.misses", &other)
	if got := r.Value("cpu0.L1I.misses"); got != 99 {
		t.Errorf("after rebind Value = %d, want 99", got)
	}
}

func TestRegistrySumSuffix(t *testing.T) {
	r := NewRegistry()
	a, b, c := uint64(1), uint64(2), uint64(4)
	r.Bind("cpu0.L1I.misses", &a)
	r.Bind("cpu1.L1I.misses", &b)
	r.Bind("cpu0.L1D.misses", &c)
	if got := r.SumSuffix(".L1I.misses"); got != 3 {
		t.Errorf("SumSuffix = %d, want 3", got)
	}
	if got := r.SumSuffix(".misses"); got != 7 {
		t.Errorf("SumSuffix(.misses) = %d, want 7", got)
	}
	if got := r.SumSuffix(".absent"); got != 0 {
		t.Errorf("SumSuffix(absent) = %d, want 0", got)
	}
}

func TestRegistryResetAll(t *testing.T) {
	r := NewRegistry()
	var bound uint64 = 5
	r.Bind("bound", &bound)
	r.Counter("owned").Add(3)
	r.Histogram("lat").Observe(10)
	r.ResetAll()
	if bound != 0 {
		t.Errorf("bound field = %d after ResetAll, want 0", bound)
	}
	if got := r.Value("owned"); got != 0 {
		t.Errorf("owned = %d after ResetAll, want 0", got)
	}
	if got := r.Histogram("lat").Count(); got != 0 {
		t.Errorf("histogram count = %d after ResetAll, want 0", got)
	}
}

func TestRegistryCounterIdentity(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Counter("x").Add(2)
	if got := r.Counter("x").Value(); got != 3 {
		t.Errorf("x = %d, want 3", got)
	}
	if got := r.Value("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
}

func TestRegistryWriteJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insertion order differs run to run below; output must not.
		for _, n := range []string{"zeta", "alpha", "mid"} {
			r.Counter(n).Add(uint64(len(n)))
		}
		r.Histogram("lat").Observe(42)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("WriteJSON not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	var snap Snapshot
	if err := json.Unmarshal(b1.Bytes(), &snap); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if snap.Counters["alpha"] != 5 || snap.Histograms["lat"].Count != 1 {
		t.Errorf("round-trip snapshot = %+v", snap)
	}
	names := build().CounterNames()
	want := []string{"alpha", "mid", "zeta"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("CounterNames = %v, want %v", names, want)
		}
	}
}
