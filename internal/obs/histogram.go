package obs

import (
	"math"
	"math/bits"
)

// Log-linear histogram of uint64 cycle values (an HDR-histogram-style
// layout): histSub linear buckets per power-of-two octave, so relative
// quantile error is bounded by 1/histSub (6.25%) while the bucket array
// stays small and allocation-free. Values below histSub land in unit-width
// buckets and are exact.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // 16 sub-buckets per octave

	// numBuckets covers the full uint64 range: histSub unit buckets plus
	// (64 - histSubBits) octaves of histSub sub-buckets each.
	numBuckets = histSub + (64-histSubBits)*histSub
)

// Histogram accumulates a distribution of cycle values.
type Histogram struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the leading bit, >= histSubBits
	sub := int((v >> uint(exp-histSubBits)) & (histSub - 1))
	return (exp-histSubBits)*histSub + sub + histSub
}

// bucketLower returns the smallest value mapping to bucket idx.
func bucketLower(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	block := idx/histSub - 1
	sub := idx % histSub
	return (uint64(histSub) + uint64(sub)) << uint(block)
}

// Observe records one value. A nil histogram discards it, so callers can
// observe unconditionally with a possibly-disabled sink.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observed value (exact).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at quantile q in [0, 1]: the lower bound of
// the bucket containing the ceil(q*count)-th observation (so the result
// under-reports by at most one bucket width, i.e. 1/16 relative error).
// The q = 1 quantile returns the exact maximum.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for idx, n := range h.buckets {
		cum += n
		if cum >= rank {
			return bucketLower(idx)
		}
	}
	return h.max
}

// Reset empties the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Merge folds other into h. All fields are exact uint64 accumulators, so
// merging per-shard histograms yields bit-identical state to observing the
// same values through one histogram, regardless of merge order.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Summary is the JSON-serializable digest of a histogram: the percentiles
// the paper-style latency tables need, in cycles.
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// Summary digests the histogram.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.max,
	}
}

// SLOSummary is the digest used by SLO-style breakdown reports: like
// Summary but with the p99.9 tail percentile. It is a distinct type so
// adding the tail quantile does not change the serialized shape of
// existing Summary-bearing records.
type SLOSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
	Max   uint64  `json:"max"`
}

// SummarySLO digests the histogram with tail percentiles.
func (h *Histogram) SummarySLO() SLOSummary {
	return SLOSummary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.max,
	}
}
