package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Registry is a flat, named metric space: counters (owned or bound by
// pointer to an existing uint64 field) and latency histograms.
//
// Binding by pointer is what unifies the simulator's pre-existing stats
// structs (hw.CacheStats, hw.TLBStats, CPU counters, kernel and hypervisor
// counters) without putting a map lookup on the hot path: the hot code
// keeps incrementing its plain struct field, and the registry can read,
// snapshot, and reset that field by name.
type Registry struct {
	counters map[string]*uint64
	hists    map[string]*Histogram
	gauges   map[string]*uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*uint64),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]*uint64),
	}
}

// Bind registers an externally owned counter under name. Re-binding a name
// replaces the previous binding (the last-created owner wins, which lets a
// fresh kernel on a reused machine re-register its counters).
func (r *Registry) Bind(name string, p *uint64) {
	r.counters[name] = p
}

// Counter is a registry-owned counter handle.
type Counter struct{ p *uint64 }

// Inc adds one.
func (c Counter) Inc() { *c.p++ }

// Add adds n.
func (c Counter) Add(n uint64) { *c.p += n }

// Value reads the counter.
func (c Counter) Value() uint64 { return *c.p }

// Counter returns (creating if needed) a registry-owned counter.
func (r *Registry) Counter(name string) Counter {
	if p, ok := r.counters[name]; ok {
		return Counter{p: p}
	}
	p := new(uint64)
	r.counters[name] = p
	return Counter{p: p}
}

// Value reads a counter by name (0 if absent).
func (r *Registry) Value(name string) uint64 {
	if p, ok := r.counters[name]; ok {
		return *p
	}
	return 0
}

// SumSuffix sums every counter whose name ends with suffix — e.g.
// SumSuffix(".L1I.misses") totals i-cache misses across all cores.
func (r *Registry) SumSuffix(suffix string) uint64 {
	var total uint64
	for name, p := range r.counters {
		if len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix {
			total += *p
		}
	}
	return total
}

// Gauge is a registry-owned point-in-time level — ring occupancy, queue
// depth — as opposed to a monotonically accumulating counter. Gauges and
// counters share the reset/snapshot lifecycle but live in separate
// namespaces, so a snapshot can tell "how many are in flight right now"
// apart from "how many ever happened".
type Gauge struct{ p *uint64 }

// Set stores the current level.
func (g Gauge) Set(v uint64) { *g.p = v }

// Add raises the level by n.
func (g Gauge) Add(n uint64) { *g.p += n }

// Value reads the level.
func (g Gauge) Value() uint64 { return *g.p }

// Gauge returns (creating if needed) a registry-owned gauge.
func (r *Registry) Gauge(name string) Gauge {
	if p, ok := r.gauges[name]; ok {
		return Gauge{p: p}
	}
	p := new(uint64)
	r.gauges[name] = p
	return Gauge{p: p}
}

// GaugeValue reads a gauge by name (0 if absent).
func (r *Registry) GaugeValue(name string) uint64 {
	if p, ok := r.gauges[name]; ok {
		return *p
	}
	return 0
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// MergeHistograms folds every histogram of other into the same-named
// histogram here (created if absent). Counters are not merged: bound
// counters alias per-machine stats structs, which have no cross-registry
// meaning. Histogram merging is exact (see Histogram.Merge), so a
// declaration-ordered merge of per-experiment registries reproduces a
// serial run's histograms bit-for-bit.
func (r *Registry) MergeHistograms(other *Registry) {
	for name, h := range other.hists {
		r.Histogram(name).Merge(h)
	}
}

// ResetAll zeroes every counter (owned and bound) and every histogram.
// Benchmarks call this once after warm-up so the measurement window starts
// from a clean slate across all layers at once.
func (r *Registry) ResetAll() {
	for _, p := range r.counters {
		*p = 0
	}
	for _, p := range r.gauges {
		*p = 0
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot is a point-in-time copy of the registry, JSON-serializable with
// deterministic key order.
type Snapshot struct {
	Counters   map[string]uint64  `json:"counters"`
	Gauges     map[string]uint64  `json:"gauges,omitempty"`
	Histograms map[string]Summary `json:"histograms,omitempty"`
}

// Snapshot copies every metric value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: make(map[string]uint64, len(r.counters))}
	for name, p := range r.counters {
		s.Counters[name] = *p
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]uint64, len(r.gauges))
		for name, p := range r.gauges {
			s.Gauges[name] = *p
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]Summary, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Summary()
		}
	}
	return s
}

// WriteJSON serializes a snapshot of the registry. Deterministic for
// identical runs (json.Marshal orders map keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
