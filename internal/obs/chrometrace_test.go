package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTracer builds a small fixed trace exercising every event kind.
func goldenTracer() *Tracer {
	tr := NewTracer()
	m := tr.Process("table2.vmfunc", 2)
	c0 := m.Core(0)
	span := c0.Begin(100, "skybridge.call", "core")
	c0.Complete(100, 24, "phase.trampoline", "core")
	c0.Complete(124, 134, "phase.vmfunc", "core", U("slot", 3))
	c0.Instant(258, "eptp.load_slot", "hv", U("server", 1), U("slot", 3))
	c0.End(span, 496, U("server", 1))
	// One causal flow chain crossing cores: start on core 0, a step on
	// core 1 (the doorbell IPI), back to core 0 to finish.
	fid := FlowAsync | 1<<32 | 7
	c0.FlowStart(100, fid, "flow.call", "flow")
	m.Core(1).FlowStep(220, fid, "flow.ipi", "flow")
	c0.FlowEnd(496, fid, "flow.call", "flow")
	m.Core(1).Complete(40, 186, "WriteCR3", "hw", U("pcid", 7))
	tr.Process("fig7.echo", 1).Core(0).Instant(12, "IPI", "hw", U("to", 1))
	return tr
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrometrace_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if doc.OtherData["clockDomain"] != "simulated-cycles" {
		t.Errorf("clockDomain = %q", doc.OtherData["clockDomain"])
	}
	// 3 metadata (2 process names would be 2 + 3 thread names) + 6 events.
	var meta, spans, instants, flows int
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			meta++
			args, ok := ev["args"].(map[string]any)
			if !ok || args["name"] == "" {
				t.Errorf("metadata event missing name args: %v", ev)
			}
		case "X":
			spans++
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", ev)
			}
		case "i":
			instants++
			if s, _ := ev["s"].(string); s != "t" {
				t.Errorf("instant scope = %q, want t", s)
			}
		case "s", "t", "f":
			flows++
			if id, _ := ev["id"].(string); id == "" {
				t.Errorf("flow event missing id: %v", ev)
			}
			if bp, _ := ev["bp"].(string); bp != "e" {
				t.Errorf("flow binding point = %q, want e", bp)
			}
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	if meta != 5 || spans != 4 || instants != 2 || flows != 3 {
		t.Errorf("meta/spans/instants/flows = %d/%d/%d/%d, want 5/4/2/3", meta, spans, instants, flows)
	}
	// The chain's three events share one pid-scoped id across cores.
	ids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ph, _ := ev["ph"].(string); ph == "s" || ph == "t" || ph == "f" {
			id, _ := ev["id"].(string)
			ids[id]++
		}
	}
	if len(ids) != 1 {
		t.Errorf("flow ids = %v, want one shared id", ids)
	}
	// Determinism: a second serialization of an identical tracer is
	// byte-identical.
	var buf2 bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteChromeTrace not deterministic")
	}
}
