package obs

// Per-call phase attribution: each completed IPC call is summarized as a
// CallRecord whose cycles are decomposed into a fixed taxonomy of phases.
// The decomposition is an exact partition of [Start, End): instrumentation
// sites construct records from a monotone chain of phase boundaries, so
// the phase cycles always sum to the end-to-end latency (asserted by
// tests in internal/core). Records feed two sinks, both bounded and
// allocation-light so always-on observation cannot perturb a run:
//
//   - Breakdown: per-phase histograms answering "where do the cycles of a
//     p99 call go" (exported as the breakdown section of bench records);
//   - FlightRecorder (flight.go): a ring of recent records dumped when a
//     call exceeds a quantile-tracked latency threshold.

// CallKind classifies the IPC mechanism a record came from.
type CallKind uint8

// Call kinds.
const (
	CallSync  CallKind = iota // one DirectCall crossing
	CallBatch                 // one request inside a DirectCallBatch
	CallAsync                 // one submission through an AsyncRing
)

// String returns the bench-facing kind label.
func (k CallKind) String() string {
	switch k {
	case CallSync:
		return "sync"
	case CallBatch:
		return "batch"
	case CallAsync:
		return "async"
	}
	return "unknown"
}

// CallPhase indexes one slice of a call's cycle budget.
type CallPhase int

// The phase taxonomy. Every call's [Start, End) interval is partitioned
// into exactly these phases (unused phases are zero for a given kind):
//
//	PhaseCrossing   trampoline + VMFUNC world switches (both directions),
//	                argument decode, and key checks — the paper's Table 2
//	                costs;
//	PhaseRingWait   cycles a request waited in a submission ring or batch
//	                convoy before the server picked it up;
//	PhaseService    cycles the server spent executing the handler;
//	PhaseWakeup     completion-signal delivery: doorbell/IPI latency from
//	                the server publishing the result to the client
//	                observing it;
//	PhaseClientSpin client cycles burned spinning/adaptive-waiting for the
//	                completion;
//	PhaseReapDelay  cycles a finished completion sat in the CQ before the
//	                client reaped it (batch: before the batch returned).
const (
	PhaseCrossing CallPhase = iota
	PhaseRingWait
	PhaseService
	PhaseWakeup
	PhaseClientSpin
	PhaseReapDelay
	NumCallPhases
)

// phaseNames are the JSON/report keys, indexed by CallPhase.
var phaseNames = [NumCallPhases]string{
	"crossing",
	"ring_wait",
	"service",
	"wakeup_delivery",
	"client_spin",
	"reap_delay",
}

// String returns the phase's report key.
func (p CallPhase) String() string {
	if p < 0 || p >= NumCallPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// PhaseNames returns the report keys in phase order.
func PhaseNames() []string {
	names := make([]string, NumCallPhases)
	copy(names[:], phaseNames[:])
	return names
}

// CallRecord is the attribution summary of one completed call. Flow is
// the deterministic flow ID linking the record to the trace's causal
// chain; Seq is the per-kind call ordinal; Server identifies the callee.
// Phases partitions [Start, End) exactly; Wake carries the mechanism-
// specific wake kind (mk.WakeKind) for async calls, 0 otherwise.
type CallRecord struct {
	Flow   uint64                `json:"flow"`
	Kind   CallKind              `json:"kind"`
	Seq    uint64                `json:"seq"`
	Server int                   `json:"server"`
	Start  uint64                `json:"start"`
	End    uint64                `json:"end"`
	Phases [NumCallPhases]uint64 `json:"phases"`
	Wake   uint8                 `json:"wake"`
}

// E2E returns the record's end-to-end latency in cycles.
func (r *CallRecord) E2E() uint64 { return r.End - r.Start }

// PhaseSum returns the sum of the per-phase cycles (equal to E2E by
// construction; tests assert it).
func (r *CallRecord) PhaseSum() uint64 {
	var s uint64
	for _, v := range r.Phases {
		s += v
	}
	return s
}

// Breakdown accumulates per-phase and end-to-end latency distributions
// across calls. The zero value is ready to use; a nil *Breakdown discards
// observations.
type Breakdown struct {
	e2e    Histogram
	phases [NumCallPhases]Histogram
}

// NewBreakdown creates an empty breakdown.
func NewBreakdown() *Breakdown { return &Breakdown{} }

// Observe folds one call record in.
func (b *Breakdown) Observe(r *CallRecord) {
	if b == nil {
		return
	}
	b.e2e.Observe(r.E2E())
	for p := CallPhase(0); p < NumCallPhases; p++ {
		b.phases[p].Observe(r.Phases[p])
	}
}

// Calls returns the number of observed calls.
func (b *Breakdown) Calls() uint64 {
	if b == nil {
		return 0
	}
	return b.e2e.Count()
}

// E2E returns the end-to-end latency histogram.
func (b *Breakdown) E2E() *Histogram { return &b.e2e }

// Phase returns the histogram for one phase.
func (b *Breakdown) Phase(p CallPhase) *Histogram { return &b.phases[p] }

// Merge folds other into b. Histogram merges are exact, so per-worker
// breakdowns merged in declaration order are bit-identical to a serial
// run.
func (b *Breakdown) Merge(other *Breakdown) {
	if b == nil || other == nil {
		return
	}
	b.e2e.Merge(&other.e2e)
	for p := CallPhase(0); p < NumCallPhases; p++ {
		b.phases[p].Merge(&other.phases[p])
	}
}

// Reset empties the breakdown.
func (b *Breakdown) Reset() {
	if b == nil {
		return
	}
	*b = Breakdown{}
}

// BreakdownSummary is the JSON digest: an end-to-end SLO summary plus one
// per phase (map keys serialize sorted, so output is deterministic).
// Phases with zero observed cycles everywhere are omitted to keep the
// bench records readable (sync calls never ring-wait, for example).
type BreakdownSummary struct {
	Calls  uint64                `json:"calls"`
	E2E    SLOSummary            `json:"e2e"`
	Phases map[string]SLOSummary `json:"phases"`
}

// Summary digests the breakdown.
func (b *Breakdown) Summary() BreakdownSummary {
	s := BreakdownSummary{
		Calls:  b.Calls(),
		E2E:    b.e2e.SummarySLO(),
		Phases: make(map[string]SLOSummary, int(NumCallPhases)),
	}
	for p := CallPhase(0); p < NumCallPhases; p++ {
		if b.phases[p].Sum() == 0 && b.phases[p].Max() == 0 {
			continue
		}
		s.Phases[p.String()] = b.phases[p].SummarySLO()
	}
	return s
}

// CallObserver is the per-world sink instrumentation sites publish call
// records to: a breakdown and (optionally) a flight recorder. A nil
// observer, or nil components, cost one pointer test per call.
type CallObserver struct {
	Breakdown *Breakdown
	Flight    *FlightRecorder
	// Tap, when non-nil, receives every record after the sinks; tests
	// use it to assert per-record invariants.
	Tap func(*CallRecord)
}

// Observe publishes one completed call record.
func (o *CallObserver) Observe(r *CallRecord) {
	if o == nil {
		return
	}
	// Flight first: its threshold must be computed from calls *before*
	// this one, so a record cannot raise the bar it is judged against.
	o.Flight.Observe(r)
	o.Breakdown.Observe(r)
	if o.Tap != nil {
		o.Tap(r)
	}
}

// Reset clears both sinks (called at measurement-window boundaries).
func (o *CallObserver) Reset() {
	if o == nil {
		return
	}
	o.Breakdown.Reset()
	o.Flight.Reset()
}
