package obs

// Event phases (a subset of the Chrome trace-event phases).
const (
	// PhaseSpan is a complete event: a named interval [Ts, Ts+Dur).
	PhaseSpan byte = 'X'
	// PhaseInstant is a point event at Ts.
	PhaseInstant byte = 'i'
	// PhaseFlowStart opens a flow (causal arrow) identified by Event.ID.
	PhaseFlowStart byte = 's'
	// PhaseFlowStep continues a flow on another track.
	PhaseFlowStep byte = 't'
	// PhaseFlowEnd terminates a flow.
	PhaseFlowEnd byte = 'f'
)

// Event is one recorded trace event. Ts and Dur are simulated cycles. ID
// is only meaningful for flow events, where it names the causal chain the
// event belongs to; flow IDs are derived from deterministic per-kind call
// counters, never from allocation order of runtime state.
type Event struct {
	Name string
	Cat  string
	Ph   byte
	Ts   uint64
	Dur  uint64
	ID   uint64
	Args []Arg
}

// Flow-ID namespaces: the top nibble of a flow ID says which mechanism
// minted it, and the low bits come from that mechanism's deterministic
// counter (call ordinal, ring seq, wake seq). IDs are therefore stable
// across runs and across -j parallelism, never derived from host state.
const (
	FlowSync  uint64 = 1 << 60 // | DirectCall ordinal
	FlowBatch uint64 = 2 << 60 // | batch ordinal
	FlowAsync uint64 = 3 << 60 // | ring ID << 32 | submission seq
	FlowWake  uint64 = 4 << 60 // | kernel wake seq
)

// SpanID identifies an open span inside one CoreTrace. The zero value of a
// dropped or disabled span is NoSpan; End(NoSpan, ...) is a no-op, so
// instrumentation sites never need to branch on buffer state.
type SpanID int

// NoSpan is the SpanID returned when a span could not be recorded (buffer
// full or tracing disabled).
const NoSpan SpanID = -1

// DefaultEventCap is the per-core event-buffer capacity used when a Tracer
// does not override it.
const DefaultEventCap = 1 << 18

// CoreTrace is the per-CPU event buffer: one track (pid, tid) in the
// exported trace. It is bounded: once capacity is reached new events are
// dropped and counted rather than overwriting older ones, which keeps open
// SpanIDs stable and keeps the drop behaviour deterministic.
type CoreTrace struct {
	pid, tid int
	events   []Event
	capacity int

	// Dropped counts events discarded because the buffer was full.
	Dropped uint64
}

// Instant records a point event at cycle ts.
func (ct *CoreTrace) Instant(ts uint64, name, cat string, args ...Arg) {
	if ct == nil {
		return
	}
	ct.append(Event{Name: name, Cat: cat, Ph: PhaseInstant, Ts: ts, Args: args})
}

// Complete records a span whose duration is already known (e.g. a fixed-
// cost instruction such as VMFUNC): [ts, ts+dur).
func (ct *CoreTrace) Complete(ts, dur uint64, name, cat string, args ...Arg) {
	if ct == nil {
		return
	}
	ct.append(Event{Name: name, Cat: cat, Ph: PhaseSpan, Ts: ts, Dur: dur, Args: args})
}

// Begin opens a span at cycle ts and returns its ID for End. Returns
// NoSpan when the buffer is full.
func (ct *CoreTrace) Begin(ts uint64, name, cat string) SpanID {
	if ct == nil {
		return NoSpan
	}
	if len(ct.events) >= ct.capacity {
		ct.Dropped++
		return NoSpan
	}
	ct.events = append(ct.events, Event{Name: name, Cat: cat, Ph: PhaseSpan, Ts: ts})
	return SpanID(len(ct.events) - 1)
}

// End closes a span opened by Begin at cycle ts, attaching any args. A
// NoSpan id is ignored.
func (ct *CoreTrace) End(id SpanID, ts uint64, args ...Arg) {
	if ct == nil || id == NoSpan {
		return
	}
	ev := &ct.events[id]
	if ts > ev.Ts {
		ev.Dur = ts - ev.Ts
	}
	ev.Args = append(ev.Args, args...)
}

// FlowStart opens flow id at cycle ts on this track. Flow events bind to
// the enclosing slice in Perfetto, so emit them inside (or at the same
// timestamp as) the span that does the work.
func (ct *CoreTrace) FlowStart(ts uint64, id uint64, name, cat string) {
	if ct == nil {
		return
	}
	ct.append(Event{Name: name, Cat: cat, Ph: PhaseFlowStart, Ts: ts, ID: id})
}

// FlowStep continues flow id on this track at cycle ts.
func (ct *CoreTrace) FlowStep(ts uint64, id uint64, name, cat string) {
	if ct == nil {
		return
	}
	ct.append(Event{Name: name, Cat: cat, Ph: PhaseFlowStep, Ts: ts, ID: id})
}

// FlowEnd terminates flow id on this track at cycle ts.
func (ct *CoreTrace) FlowEnd(ts uint64, id uint64, name, cat string) {
	if ct == nil {
		return
	}
	ct.append(Event{Name: name, Cat: cat, Ph: PhaseFlowEnd, Ts: ts, ID: id})
}

// Events returns the recorded events in program order.
func (ct *CoreTrace) Events() []Event { return ct.events }

// Len returns the number of recorded events.
func (ct *CoreTrace) Len() int {
	if ct == nil {
		return 0
	}
	return len(ct.events)
}

func (ct *CoreTrace) append(ev Event) {
	if len(ct.events) >= ct.capacity {
		ct.Dropped++
		return
	}
	ct.events = append(ct.events, ev)
}

// ProcTrace is one traced machine (a Chrome trace "process"): a named
// group of per-core tracks. Benchmarks that assemble several simulated
// machines in one run give each its own ProcTrace, so their events do not
// interleave on shared tracks.
type ProcTrace struct {
	pid   int
	name  string
	cores []*CoreTrace
}

// Core returns the track for core i.
func (pt *ProcTrace) Core(i int) *CoreTrace { return pt.cores[i] }

// Cores returns the number of tracks.
func (pt *ProcTrace) Cores() int { return len(pt.cores) }

// Name returns the process label.
func (pt *ProcTrace) Name() string { return pt.name }

// Tracer owns all trace state for one run: a sequence of ProcTraces, each
// with per-core bounded event buffers.
type Tracer struct {
	// EventCap is the per-core buffer capacity applied to processes created
	// after it is set (default DefaultEventCap).
	EventCap int

	procs []*ProcTrace
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Process creates the next traced process with ncores per-core tracks.
func (t *Tracer) Process(name string, ncores int) *ProcTrace {
	capacity := t.EventCap
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	pt := &ProcTrace{pid: len(t.procs), name: name}
	for i := 0; i < ncores; i++ {
		pt.cores = append(pt.cores, &CoreTrace{pid: pt.pid, tid: i, capacity: capacity})
	}
	t.procs = append(t.procs, pt)
	return pt
}

// Processes returns the traced processes in creation order.
func (t *Tracer) Processes() []*ProcTrace { return t.procs }

// Adopt moves every process of other into t, renumbering pids to continue
// t's sequence, and leaves other empty. A runner that gives each
// experiment its own sub-tracer and adopts them in declaration order
// produces the same pid assignment — and therefore byte-identical trace
// output — as a serial run that created all processes in one tracer.
func (t *Tracer) Adopt(other *Tracer) {
	if other == nil || other == t {
		return
	}
	for _, pt := range other.procs {
		pt.pid = len(t.procs)
		for _, ct := range pt.cores {
			ct.pid = pt.pid
		}
		t.procs = append(t.procs, pt)
	}
	other.procs = nil
}

// TotalEvents returns the number of recorded events across all tracks.
func (t *Tracer) TotalEvents() int {
	n := 0
	for _, pt := range t.procs {
		for _, ct := range pt.cores {
			n += len(ct.events)
		}
	}
	return n
}

// TotalDropped returns the number of dropped events across all tracks.
func (t *Tracer) TotalDropped() uint64 {
	var n uint64
	for _, pt := range t.procs {
		for _, ct := range pt.cores {
			n += ct.Dropped
		}
	}
	return n
}
