package core

import (
	"encoding/binary"
	"fmt"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
)

// Batched direct calls: a client submits up to MaxBatch requests through
// one trampoline+VMFUNC round trip. The per-pair shared buffer doubles as
// a request ring: the head of the buffer holds one fixed-size ring entry
// per request (argument registers and payload length, later overwritten
// with the response registers and reply length), and the tail is divided
// into equal payload slots, one per request. The calling-key check runs
// once per crossing — the key authenticates the connection, not the
// individual request — while payload-length validation stays per request
// on both sides of the switch, so one oversized entry cannot smuggle
// bytes beyond its slot.
const (
	// batchHdrLen is one ring entry: 4 argument/result registers, a
	// payload length, and padding to a power-of-two stride.
	batchHdrLen = 48
	// MaxBatch bounds the ring so the header area cannot swallow the
	// payload area of the smallest (4-page) shared buffer.
	MaxBatch = 32
	// batchSlotMin is the floor on a ring slot: even a batch of
	// register-only or tiny-payload requests reserves this much per slot
	// so replies (which the client cannot size in advance) have room.
	batchSlotMin = 256
	// costBatchDispatch is the server trampoline's per-entry bookkeeping
	// (ring index advance, slot bounds arithmetic) beyond the charged
	// header reads and writes.
	costBatchDispatch = 8
)

// BatchLayout describes where a batch of N requests lives inside a
// connection's shared buffer.
type BatchLayout struct {
	N       int
	SlotLen int // payload bytes available to each request
	payBase int
}

// HdrOff returns the buffer offset of ring entry i.
func (l BatchLayout) HdrOff(i int) int { return i * batchHdrLen }

// PayloadOff returns the buffer offset of request i's payload slot.
func (l BatchLayout) PayloadOff(i int) int { return l.payBase + i*l.SlotLen }

// Layout computes the ring layout for a batch of n requests whose
// largest payload is cap bytes. Slots are packed — sized to the batch's
// actual payload capacity (floored at batchSlotMin for replies, rounded
// up to a cache line) rather than dividing the whole buffer — so a small
// batch reuses a small, warm region of the shared buffer instead of
// scattering slots across all four pages. Client staging and server
// dispatch both derive the layout from (n, max request length), so they
// agree on every offset without exchanging it.
func (conn *Connection) Layout(n, cap int) (BatchLayout, error) {
	if n < 1 || n > MaxBatch {
		return BatchLayout{}, fmt.Errorf("core: batch of %d requests (max %d)", n, MaxBatch)
	}
	if cap < 0 {
		return BatchLayout{}, fmt.Errorf("core: negative batch payload capacity %d", cap)
	}
	// Reject oversized capacities before the rounding arithmetic below: a
	// cap near MaxInt would wrap (cap + hw.LineSize - 1 goes negative),
	// slip past the total-size check, and hand back slot offsets outside
	// the shared buffer — silent ring corruption instead of an error.
	if cap > conn.BufLen {
		return BatchLayout{}, fmt.Errorf("core: batch payload capacity %d exceeds shared buffer %d",
			cap, conn.BufLen)
	}
	if cap < batchSlotMin {
		cap = batchSlotMin
	}
	payBase := (n*batchHdrLen + hw.LineSize - 1) &^ (hw.LineSize - 1)
	slot := (cap + hw.LineSize - 1) &^ (hw.LineSize - 1)
	if payBase+n*slot > conn.BufLen {
		return BatchLayout{}, fmt.Errorf("core: shared buffer %d too small for batch of %d x %d-byte slots",
			conn.BufLen, n, slot)
	}
	return BatchLayout{N: n, SlotLen: slot, payBase: payBase}, nil
}

// batchCap returns the slot capacity a batch of requests needs: the
// largest request payload or declared reply capacity (Layout floors it at
// batchSlotMin).
func batchCap(reqs []Request) int {
	cap := 0
	for i := range reqs {
		if reqs[i].Len > cap {
			cap = reqs[i].Len
		}
		if reqs[i].Cap > cap {
			cap = reqs[i].Cap
		}
	}
	return cap
}

// encodeEntry packs regs and a payload length into one ring entry.
func encodeEntry(regs [4]uint64, plen int) []byte {
	b := make([]byte, batchHdrLen)
	for i, r := range regs {
		binary.LittleEndian.PutUint64(b[8*i:], r)
	}
	binary.LittleEndian.PutUint32(b[32:], uint32(plen))
	return b
}

// decodeEntry unpacks one ring entry.
func decodeEntry(b []byte) (regs [4]uint64, plen int) {
	for i := range regs {
		regs[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return regs, int(binary.LittleEndian.Uint32(b[32:]))
}

// DirectCallBatch submits reqs to serverID through a single trampoline
// round trip (one VMFUNC each way), dispatching the server's handler once
// per request. Per-request payloads live in equal slots of the shared
// buffer (Layout); a request whose Buf already points at its slot skips
// the staging copy. Responses come back in submission order. A batch of
// one degenerates to DirectCall; DoS timeouts (DirectCallTimeout) apply
// only to unbatched calls.
func (sb *SkyBridge) DirectCallBatch(env *mk.Env, serverID int, reqs []Request) ([]Response, error) {
	switch len(reqs) {
	case 0:
		return nil, nil
	case 1:
		resp, err := sb.DirectCall(env, serverID, reqs[0])
		if err != nil {
			return nil, err
		}
		return []Response{resp}, nil
	}

	cpu := env.T.Core
	conn, ok := sb.bindings[env.P][serverID]
	if !ok {
		return nil, ErrNotRegistered
	}
	layout, err := conn.Layout(len(reqs), batchCap(reqs))
	if err != nil {
		return nil, err
	}
	srv := conn.Server
	env.T.Checkpoint()
	env.Enter()

	tr := cpu.Trace
	span := tr.Begin(cpu.Clock, "skybridge.batch", "core")
	t0 := cpu.Clock

	var fid uint64
	if tr != nil || sb.Calls != nil {
		fid = obs.FlowBatch | (sb.BatchCalls + 1)
	}
	if tr != nil {
		tr.FlowStart(t0, fid, "flow.batch", "flow")
	}

	// --- client-side trampoline: stage the ring ---
	if err := cpu.TouchCode(TrampolineVA, trampEntryLen); err != nil {
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return nil, fmt.Errorf("core: trampoline fetch: %w", err)
	}
	cpu.Tick(costSaveRegs)
	clientKey := sb.rng.Uint64()
	cpu.Tick(6)
	for i := range reqs {
		req := &reqs[i]
		// Per-request validation, client side: the payload must fit the
		// request's slot, not just the whole buffer.
		if req.Len > layout.SlotLen {
			tr.End(span, cpu.Clock, obs.U("error", 1))
			return nil, fmt.Errorf("core: batch request %d payload %d exceeds slot %d", i, req.Len, layout.SlotLen)
		}
		slotVA := conn.ClientBuf + hw.VA(layout.PayloadOff(i))
		if req.Len > 0 && req.Buf != slotVA {
			data := make([]byte, req.Len)
			env.Read(req.Buf, data, req.Len)
			env.Write(slotVA, data, req.Len)
		}
		env.Write(conn.ClientBuf+hw.VA(layout.HdrOff(i)), encodeEntry(req.Regs, req.Len), batchHdrLen)
	}

	// --- one slot resolve + one EPTP switch for the whole batch ---
	tc := sb.tc[env.T]
	if tc == nil {
		tc = &threadCtx{proc: env.P, stack: []int{0}}
		sb.tc[env.T] = tc
	}
	sb.ensureContext(cpu, tc)
	cpu.FlowID = fid
	slot, _, err := sb.RK.ResolveSlot(cpu, tc.proc, serverID, tc.stack)
	if err != nil {
		cpu.FlowID = 0
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return nil, fmt.Errorf("core: slot resolve for server %d: %w", serverID, err)
	}
	tTramp := cpu.Clock
	if err := cpu.VMFunc(0, slot); err != nil {
		cpu.FlowID = 0
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return nil, fmt.Errorf("core: vmfunc to server %d (slot %d): %w", serverID, slot, err)
	}
	cpu.FlowID = 0
	sb.afterSwitch(cpu)
	tc.stack = append(tc.stack, slot)
	tSwitch := cpu.Clock

	// --- server-side trampoline: key check once per crossing ---
	cpu.Tick(costInstallStack)
	var kb [8]byte
	senv := env.DirectEnv(srv.Proc)
	senv.Read(srv.keyTable+hw.VA(8*conn.slot), kb[:], 8)
	cpu.Tick(4)
	if leU64(kb) != conn.ServerKey {
		srv.Rejected++
		cpu.Syscall()
		cpu.Swapgs()
		cpu.Tick(50)
		cpu.Swapgs()
		cpu.Sysret()
		sb.switchBack(env, tc)
		tr.End(span, cpu.Clock, obs.U("bad_key", 1))
		return nil, ErrBadKey
	}

	// --- dispatch the ring ---
	// Per-request handler windows for the attribution records: requests
	// late in the batch wait (ring-wait) behind earlier handlers, and
	// early ones wait (reap-delay) for the batch to turn around.
	d0 := cpu.Clock
	var hs, he []uint64
	if sb.Calls != nil {
		hs = make([]uint64, len(reqs))
		he = make([]uint64, len(reqs))
	}
	hdr := make([]byte, batchHdrLen)
	for i := range reqs {
		cpu.Tick(costBatchDispatch)
		if tr != nil {
			tr.FlowStep(cpu.Clock, fid, "flow.dispatch", "flow")
		}
		senv.Read(conn.ServerBuf+hw.VA(layout.HdrOff(i)), hdr, batchHdrLen)
		regs, plen := decodeEntry(hdr)
		// Per-request validation, server side: a ring entry rewritten by
		// a malicious client thread between staging and dispatch must
		// still confine the payload to its slot.
		if plen > layout.SlotLen || plen < 0 {
			sb.switchBack(env, tc)
			tr.End(span, cpu.Clock, obs.U("error", 1))
			return nil, fmt.Errorf("core: batch entry %d length %d exceeds slot %d", i, plen, layout.SlotLen)
		}
		srv.Calls++
		if hs != nil {
			hs[i] = cpu.Clock
		}
		resp := srv.Handler(senv, Request{
			Regs:      regs,
			Len:       plen,
			SharedBuf: conn.ServerBuf + hw.VA(layout.PayloadOff(i)),
		})
		if he != nil {
			he[i] = cpu.Clock
		}
		if resp.Len > layout.SlotLen {
			sb.switchBack(env, tc)
			tr.End(span, cpu.Clock, obs.U("error", 1))
			return nil, fmt.Errorf("core: batch reply %d length %d exceeds slot %d", i, resp.Len, layout.SlotLen)
		}
		senv.Write(conn.ServerBuf+hw.VA(layout.HdrOff(i)), encodeEntry(resp.Regs, resp.Len), batchHdrLen)
	}
	tServer := cpu.Clock

	// --- return thunk: one switch back ---
	if err := cpu.TouchCode(trampReturnVA, trampReturnLen); err != nil {
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return nil, fmt.Errorf("core: return thunk fetch: %w", err)
	}
	cpu.Tick(costRestoreRegs)
	sb.switchBack(env, tc)

	echoed := clientKey
	cpu.Tick(6)
	if echoed != clientKey {
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return nil, ErrReturnKey
	}

	// --- client reads the responses out of the ring ---
	resps := make([]Response, len(reqs))
	for i := range resps {
		env.Read(conn.ClientBuf+hw.VA(layout.HdrOff(i)), hdr, batchHdrLen)
		regs, plen := decodeEntry(hdr)
		resps[i] = Response{Regs: regs, Len: plen}
	}
	sb.DirectCalls += uint64(len(reqs))
	sb.BatchCalls++
	if tr != nil {
		tr.Complete(t0, tTramp-t0, "phase.trampoline", "core")
		tr.Complete(tTramp, tSwitch-tTramp, "phase.vmfunc", "core")
		tr.Complete(tSwitch, tServer-tSwitch, "phase.server", "core")
		tr.Complete(tServer, cpu.Clock-tServer, "phase.return", "core")
		tr.FlowEnd(cpu.Clock, fid, "flow.batch", "flow")
		tr.End(span, cpu.Clock,
			obs.U("server", uint64(serverID)),
			obs.U("batch", uint64(len(reqs))),
			obs.U("trampoline", tTramp-t0),
			obs.U("vmfunc", tSwitch-tTramp),
			obs.U("server_cycles", tServer-tSwitch),
			obs.U("return", cpu.Clock-tServer))
	}
	if o := sb.Calls; o != nil {
		// One record per request, all sharing the batch's [t0, end) span.
		// Exact partition per request i:
		//   crossing  = (d0-t0) + (end-dEnd)   shared staging + turnaround
		//   ring_wait = hs[i]-d0               convoy behind earlier handlers
		//   service   = he[i]-hs[i]
		//   reap_delay= dEnd-he[i]             done, batch still dispatching
		end, dEnd := cpu.Clock, tServer
		for i := range reqs {
			rec := obs.CallRecord{
				Flow: fid, Kind: obs.CallBatch, Seq: sb.BatchCalls,
				Server: serverID, Start: t0, End: end,
			}
			rec.Phases[obs.PhaseCrossing] = (d0 - t0) + (end - dEnd)
			rec.Phases[obs.PhaseRingWait] = hs[i] - d0
			rec.Phases[obs.PhaseService] = he[i] - hs[i]
			rec.Phases[obs.PhaseReapDelay] = dEnd - he[i]
			o.Observe(&rec)
		}
	}
	return resps, nil
}
