package core

import (
	"fmt"
	"math/bits"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
)

// Adaptive placement: a Director coordinates several sibling frontends
// (one drain thread each, all registered by one server process) serving
// a set of co-resident shards whose ownership can move at runtime.
// Three mechanisms, all deterministic functions of simulated state:
//
// Migration. Each shard has exactly one owner drain. The Director
// samples per-shard served-ops EWMAs plus instantaneous ring backlog
// once per ControlPeriod and, when the hottest drain carries at least
// twice the coldest's load, marks the hottest shard whose move improves
// the balance as pending. The OLD owner executes the handoff at its
// next loop turn — right after a sweep, so its rings hold no entry it
// is still obliged to serve for that shard — by updating the owner
// byte and bumping the epoch word in a routing region clients map
// read-only. A request already in flight to the old owner is rejected
// with a wrong-epoch status (never executed); the client re-reads the
// routing table and resubmits to the new owner. Each submission is
// served exactly once and executes only under an ownership check, so
// no op is lost or doubly executed. The NEW owner re-establishes its
// EPTP binding (Kernel.EnsureOn) and pulls the shard's table through
// its cache hierarchy via the Acquire callback.
//
// Work stealing. A drain whose own sweep comes back empty scans its
// siblings' active-tenant bitmaps (the PR-9 directory, same address
// space) in deterministic order and steals one whole-tenant quantum
// under the victim's own DRR deficit accounting. A per-ring claim flag
// — host state flipped with no intervening checkpoint, so atomic in
// simulated time — guarantees a single drainer per ring at a time;
// entries are always served in submission order, so a tenant's SPSC
// FIFO is preserved across steals.
//
// Autoscaling. When the mean load per active drain stays under
// LowWater for HystTicks control periods, the coldest drain hands its
// shards away, drains its rings dry, and parks on an mk.Gate (the
// calibrated AdaptiveWait HLT path with a minimal spin budget). When
// the mean crosses HighWater for HystTicks periods the controller
// IPI-wakes a parked drain; migration then rebalances shards onto it.
// Gate.ParkedCycles lets experiments report busy-core-cycles.

// DirectorConfig parameterizes adaptive placement. Zero values mean
// defaults.
type DirectorConfig struct {
	// Shards is the number of placement units (required).
	Shards int
	// ControlPeriod is the simulated-cycle spacing of control
	// evaluations (default 24_000).
	ControlPeriod uint64
	// EWMAShift smooths the per-shard load average: 1/2^shift of each
	// new sample folds in per period (default 1).
	EWMAShift uint
	// MigrateMin is the minimum hottest-drain load (ops/period) before
	// migration triggers, filtering noise at idle (default 4).
	MigrateMin uint64
	// LowWater and HighWater bound the scale policy: mean ops/period
	// per active drain below LowWater parks a core, above HighWater
	// unparks one. Zero LowWater disables scale-down; zero HighWater
	// disables scale-up.
	LowWater, HighWater uint64
	// HystTicks is how many consecutive control periods the mean must
	// sit past a watermark before the scale decision fires (default 2).
	HystTicks int
	// MinActive floors the active drain count (default 1).
	MinActive int
	// Static freezes the initial block placement: the routing region is
	// published once and no migration, stealing, or scaling happens —
	// the ablation baseline.
	Static bool
	// Acquire, if set, is called by a shard's new owner after a
	// migration to pull the shard's state through its cache hierarchy
	// (e.g. kv.Store.MigrateWarm). Returns bytes moved.
	Acquire func(env *mk.Env, shard int) int
	// Obs, if set, receives the Director's counters and per-shard load
	// gauges under the "place." prefix.
	Obs *obs.Registry
}

func (c DirectorConfig) withDefaults() DirectorConfig {
	if c.ControlPeriod == 0 {
		c.ControlPeriod = 24_000
	}
	if c.EWMAShift == 0 {
		c.EWMAShift = 1
	}
	if c.MigrateMin == 0 {
		c.MigrateMin = 4
	}
	if c.HystTicks == 0 {
		c.HystTicks = 2
	}
	if c.MinActive == 0 {
		c.MinActive = 1
	}
	return c
}

// Director owns shard placement across sibling frontends.
type Director struct {
	cfg DirectorConfig
	fes []*Frontend

	owner   []int  // shard -> fe slot
	epoch   uint64 // routing epoch, bumped on every flip
	pending []int  // shard -> target slot, -1 when none
	moves   int    // count of pending entries (fast tick check)
	acquire [][]int
	active  []bool
	parkReq []bool
	gates   []*mk.Gate

	routeFrames []hw.GPA
	routeSrv    hw.VA

	opsSince []uint64
	load     []obs.EWMA
	gauges   []obs.Gauge

	nextControl         uint64
	lowTicks, highTicks int

	// Stats.
	Migrations    uint64 // ownership flips executed
	MigratedBytes uint64 // bytes pulled by Acquire warm walks
	Steals        uint64 // tenant quanta stolen
	StolenOps     uint64 // entries served by thieves
	ScaleDowns    uint64 // drains parked
	ScaleUps      uint64 // drains unparked
	ControlTicks  uint64 // control evaluations
	HelpWakes     uint64 // parked siblings IPI-woken to steal
	WrongEpoch    uint64 // rejects observed via NoteReject
}

// RouteOwnerOff is the routing-region layout: epoch u64 at offset 0
// (its own cache line), one owner byte per shard from RouteOwnerOff.
// Owner bytes are written before the epoch bump, so a client that sees
// a new epoch sees the new owners (and neither side checkpoints
// mid-update, so simulated readers never observe a torn pair).
const RouteOwnerOff = hw.LineSize

// NewDirector wires adaptive placement over sibling frontends. All
// frontends must belong to the caller's (server) process; shards get
// the static block assignment owner = shard*len(fes)/Shards, published
// in a one-page routing region clients map via MapRoute.
func (sb *SkyBridge) NewDirector(env *mk.Env, cfg DirectorConfig, fes []*Frontend) (*Director, error) {
	cfg = cfg.withDefaults()
	if len(fes) == 0 {
		return nil, fmt.Errorf("core: director needs at least one frontend")
	}
	if cfg.Shards < 1 || cfg.Shards > hw.PageSize-RouteOwnerOff {
		return nil, fmt.Errorf("core: director shard count %d out of range", cfg.Shards)
	}
	if len(fes) > 256 {
		return nil, fmt.Errorf("core: owner bytes cap frontends at 256, got %d", len(fes))
	}
	if cfg.MinActive > len(fes) {
		cfg.MinActive = len(fes)
	}
	for _, fe := range fes {
		if fe.sink.srv.Proc != env.P {
			return nil, fmt.Errorf("core: frontend for %s attached from process %s",
				fe.sink.srv.Proc.Name, env.P.Name)
		}
		if fe.dir != nil {
			return nil, fmt.Errorf("core: frontend already has a director")
		}
	}
	d := &Director{
		cfg:         cfg,
		fes:         fes,
		owner:       make([]int, cfg.Shards),
		epoch:       1,
		pending:     make([]int, cfg.Shards),
		acquire:     make([][]int, len(fes)),
		active:      make([]bool, len(fes)),
		parkReq:     make([]bool, len(fes)),
		gates:       make([]*mk.Gate, len(fes)),
		routeFrames: []hw.GPA{hw.GPA(sb.K.Mach.Mem.MustAllocFrame())},
		opsSince:    make([]uint64, cfg.Shards),
		load:        make([]obs.EWMA, cfg.Shards),
	}
	d.routeSrv = env.P.MapFrames(d.routeFrames, hw.PTEUser|hw.PTEWrite)
	for s := range d.owner {
		d.owner[s] = s * len(fes) / cfg.Shards
		d.pending[s] = -1
	}
	for i, fe := range fes {
		d.active[i] = true
		d.gates[i] = mk.NewGate()
		fe.dir = d
		fe.slot = i
	}
	for s := range d.load {
		d.load[s].Shift = cfg.EWMAShift
	}
	if cfg.Obs != nil {
		cfg.Obs.Bind("place.migrations", &d.Migrations)
		cfg.Obs.Bind("place.migrated_bytes", &d.MigratedBytes)
		cfg.Obs.Bind("place.steals", &d.Steals)
		cfg.Obs.Bind("place.stolen_ops", &d.StolenOps)
		cfg.Obs.Bind("place.scale_downs", &d.ScaleDowns)
		cfg.Obs.Bind("place.scale_ups", &d.ScaleUps)
		cfg.Obs.Bind("place.control_ticks", &d.ControlTicks)
		cfg.Obs.Bind("place.wrong_epoch", &d.WrongEpoch)
		d.gauges = make([]obs.Gauge, cfg.Shards)
		for s := range d.gauges {
			d.gauges[s] = cfg.Obs.Gauge(fmt.Sprintf("place.shard%03d.load", s))
		}
	}
	// Publish the initial table (charged writes through the server
	// mapping): owner bytes first, then the epoch.
	b := make([]byte, cfg.Shards)
	for s, o := range d.owner {
		b[s] = byte(o)
	}
	env.Write(d.routeSrv+RouteOwnerOff, b, len(b))
	writeDirU64(env, d.routeSrv, 0, d.epoch)
	return d, nil
}

// MapRoute maps the routing region read-only into the calling client's
// address space; the epoch-aware router reads it with charged loads.
func (d *Director) MapRoute(env *mk.Env) hw.VA {
	return env.P.MapFrames(d.routeFrames, hw.PTEUser)
}

// Shards returns the placement-unit count.
func (d *Director) Shards() int { return d.cfg.Shards }

// Epoch returns the current routing epoch (host view, for tests and
// reporting).
func (d *Director) Epoch() uint64 { return d.epoch }

// OwnerSlot returns the drain slot currently owning a shard (host
// view).
func (d *Director) OwnerSlot(shard int) int { return d.owner[shard] }

// Gates exposes the per-drain park gates for busy-cycle accounting.
func (d *Director) Gates() []*mk.Gate { return d.gates }

// Owns is the handler-side ownership gate: true when the shard is
// bound to the given drain slot, plus the current epoch for the reject
// payload when it is not.
func (d *Director) Owns(slot, shard int) (bool, uint64) {
	return d.owner[shard] == slot, d.epoch
}

// NoteOp feeds one executed op into a shard's load accounting.
func (d *Director) NoteOp(shard int) { d.opsSince[shard]++ }

// NoteReject counts a wrong-epoch reject (client resubmitted).
func (d *Director) NoteReject() { d.WrongEpoch++ }

// RequestMove queues a forced migration (tests, manual rebalancing):
// the shard's current owner executes the handoff at its next loop
// turn.
func (d *Director) RequestMove(env *mk.Env, shard, target int) {
	if d.pending[shard] >= 0 || target == d.owner[shard] {
		return
	}
	d.pending[shard] = target
	d.moves++
	d.kick(env, d.owner[shard])
}

// kick wakes a drain that may be idle-parked so it notices pending
// control work (pays the IPI if it crosses cores; a no-op when the
// drain is awake).
func (d *Director) kick(env *mk.Env, slot int) {
	env.K.WakeParker(env.T.Core, &d.fes[slot].sink.parker)
}

func (d *Director) ownsAny(slot int) bool {
	for _, o := range d.owner {
		if o == slot {
			return true
		}
	}
	return false
}

// gatePol parks almost immediately: the decision to HLT was already
// made by the controller, so the gate spends no spin budget.
var gatePol = mk.WakePolicy{SpinBudget: 1, SpinStep: 1}

// tick runs the Director's per-loop duties for one drain: execute
// handoffs this drain owes as old owner, warm-pull shards it just
// acquired, evaluate the control policy once per period, and park if
// scaled down. Called by Frontend.Serve right after a sweep — the
// point where this drain's rings hold no entry it is still obliged to
// serve under the old placement. Returns entries served as a side
// effect (the pre-park drain).
func (d *Director) tick(env *mk.Env, fe *Frontend) (int, error) {
	if fe.closed {
		return 0, nil
	}
	slot := fe.slot
	// Handoffs: flip owner byte, bump epoch, hand the shard to the
	// target's acquire queue. From here every routing read sees the new
	// owner, and this drain's handler rejects stragglers with the
	// wrong-epoch status.
	if d.moves > 0 {
		for s := range d.pending {
			if d.pending[s] < 0 || d.owner[s] != slot {
				continue
			}
			tgt := d.pending[s]
			d.pending[s] = -1
			d.moves--
			d.owner[s] = tgt
			var b [1]byte
			b[0] = byte(tgt)
			env.Write(d.routeSrv+RouteOwnerOff+hw.VA(s), b[:], 1)
			d.epoch++
			writeDirU64(env, d.routeSrv, 0, d.epoch)
			d.Migrations++
			d.acquire[tgt] = append(d.acquire[tgt], s)
			d.kick(env, tgt)
		}
	}
	// Acquisitions: re-establish the EPTP binding on this core and walk
	// the shard's table through our cache hierarchy.
	if len(d.acquire[slot]) > 0 {
		env.K.EnsureOn(env.T.Core, env.P)
		for _, s := range d.acquire[slot] {
			if d.cfg.Acquire != nil {
				d.MigratedBytes += uint64(d.cfg.Acquire(env, s))
			}
		}
		d.acquire[slot] = d.acquire[slot][:0]
	}
	if !d.cfg.Static && d.active[slot] && env.Now() >= d.nextControl {
		d.evaluate(env)
	}
	served := 0
	if d.parkReq[slot] && !d.active[slot] && !d.ownsAny(slot) {
		// Scale-down: drain every ring dry (all our shards are flipped
		// away, so shard ops complete as wrong-epoch rejects and the
		// clients re-route; nothing new arrives because routing no
		// longer names this drain), then HLT on the gate until the
		// controller scales back up.
		for {
			n := 0
			for _, r := range fe.rings {
				if r.claimed {
					continue
				}
				r.claimed = true
				m, _, err := r.serveDrainMax(env, r.QD)
				r.claimed = false
				if err != nil {
					return served, err
				}
				n += m
			}
			served += n
			if n == 0 {
				break
			}
		}
		d.parkReq[slot] = false
		d.ScaleDowns++
		g := d.gates[slot]
		g.Shut()
		g.Wait(env, gatePol, func() bool { return fe.closed })
	}
	return served, nil
}

// feLoads blends each active drain's owned-shard EWMAs (1/256 op
// units) with its instantaneous ring backlog (quarter weight): the
// EWMA carries history, the backlog catches a hot set that just moved.
func (d *Director) feLoads() []uint64 {
	loads := make([]uint64, len(d.fes))
	for s, o := range d.owner {
		loads[o] += d.load[s].Scaled()
	}
	for i, fe := range d.fes {
		if !d.active[i] {
			continue
		}
		var backlog uint32
		for _, r := range fe.rings {
			backlog += r.subSeq - r.srvSeq
		}
		loads[i] += uint64(backlog) << 6
	}
	return loads
}

// evaluate is one control period: fold the op counts into the load
// EWMAs, pick at most one migration, and run the scale policy with
// hysteresis. Runs inside whichever active drain's loop first crosses
// the period boundary — the engine's total order makes that choice,
// and everything read here, deterministic.
func (d *Director) evaluate(env *mk.Env) {
	d.nextControl = env.Now() + d.cfg.ControlPeriod
	d.ControlTicks++
	env.Compute(uint64(8*d.cfg.Shards + 16*len(d.fes))) // controller table scan
	for s := range d.load {
		d.load[s].Observe(d.opsSince[s])
		d.opsSince[s] = 0
		if d.gauges != nil {
			d.gauges[s].Set(d.load[s].Value())
		}
	}
	loads := d.feLoads()
	hi, lo, nAct, total := -1, -1, 0, uint64(0)
	var maxBacklog int
	for i := range d.fes {
		if !d.active[i] {
			continue
		}
		nAct++
		total += loads[i]
		if hi < 0 || loads[i] > loads[hi] {
			hi = i
		}
		if lo < 0 || loads[i] < loads[lo] {
			lo = i
		}
		backlog := 0
		for _, r := range d.fes[i].rings {
			backlog += int(r.subSeq - r.srvSeq)
		}
		if backlog > maxBacklog {
			maxBacklog = backlog
		}
	}
	// Help-wake: a drain sitting on real backlog should not wait for
	// sleeping siblings to stumble onto it — IPI them awake to steal.
	if maxBacklog > d.fes[0].cfg.Quantum {
		for i, fe := range d.fes {
			if d.active[i] && fe.sink.parker.Waiting() {
				d.kick(env, i)
				d.HelpWakes++
			}
		}
	}
	// Migration: hottest active drain at least 2x the coldest, and the
	// hottest shard whose move strictly improves the balance.
	if hi >= 0 && lo >= 0 && hi != lo &&
		loads[hi] >= d.cfg.MigrateMin<<8 && loads[hi] >= 2*loads[lo] {
		best, bestLoad := -1, uint64(0)
		for s, o := range d.owner {
			if o != hi || d.pending[s] >= 0 {
				continue
			}
			ls := d.load[s].Scaled()
			if ls > bestLoad && loads[lo]+ls < loads[hi] {
				best, bestLoad = s, ls
			}
		}
		if best >= 0 {
			d.pending[best] = lo
			d.moves++
			d.kick(env, hi)
		}
	}
	// Scale policy on the mean active load, with consecutive-tick
	// hysteresis.
	mean := total / uint64(nAct)
	switch {
	case d.cfg.LowWater > 0 && mean < d.cfg.LowWater<<8:
		d.lowTicks++
		d.highTicks = 0
	case d.cfg.HighWater > 0 && mean > d.cfg.HighWater<<8:
		d.highTicks++
		d.lowTicks = 0
	default:
		d.lowTicks, d.highTicks = 0, 0
	}
	if d.lowTicks >= d.cfg.HystTicks && nAct > d.cfg.MinActive {
		d.lowTicks = 0
		p := lo
		d.active[p] = false
		d.parkReq[p] = true
		// Hand p's shards to the coldest remaining drains, greedily.
		for s, o := range d.owner {
			if o != p || d.pending[s] >= 0 {
				continue
			}
			tgt, tgtLoad := -1, uint64(0)
			for i := range d.fes {
				if d.active[i] && (tgt < 0 || loads[i] < tgtLoad) {
					tgt, tgtLoad = i, loads[i]
				}
			}
			loads[tgt] += d.load[s].Scaled()
			d.pending[s] = tgt
			d.moves++
		}
		d.kick(env, p)
	}
	if d.highTicks >= d.cfg.HystTicks {
		for p := range d.fes {
			if d.active[p] {
				continue
			}
			d.highTicks = 0
			d.active[p] = true
			d.parkReq[p] = false
			d.ScaleUps++
			d.gates[p].Unpark(env)
			d.kick(env, p)
			break
		}
	}
}

// stealable is the idle drain's spin probe: any sibling bitmap word
// set means there may be work to steal (charged reads; the bitmap is a
// hint, steal re-checks the rings).
func (d *Director) stealable(env *mk.Env, self *Frontend) bool {
	if d.cfg.Static || !d.active[self.slot] {
		return false
	}
	nf := len(d.fes)
	for k := 1; k < nf; k++ {
		v := d.fes[(self.slot+k)%nf]
		if !d.active[v.slot] {
			continue
		}
		for w := 0; w < v.nWords; w++ {
			if readDirU64(env, v.dirSrv, dirOffBitmap+8*w) != 0 {
				return true
			}
		}
	}
	return false
}

// steal scans siblings in deterministic order (next slot first) and
// serves one whole-tenant quantum from the first unclaimed ring with a
// set bit, under the victim's own DRR deficit accounting — exactly
// what the victim's sweep would have granted, just executed on this
// core. One quantum per call keeps the thief responsive to its own
// tenants.
func (d *Director) steal(env *mk.Env, self *Frontend) (int, error) {
	if d.cfg.Static || !d.active[self.slot] {
		return 0, nil
	}
	nf := len(d.fes)
	for k := 1; k < nf; k++ {
		v := d.fes[(self.slot+k)%nf]
		if !d.active[v.slot] || v.closed {
			continue
		}
		for w := 0; w < v.nWords; w++ {
			word := readDirU64(env, v.dirSrv, dirOffBitmap+8*w)
			for bitsLeft := word; bitsLeft != 0; {
				tz := bits.TrailingZeros64(bitsLeft)
				bitsLeft &^= 1 << tz
				t := w*64 + tz
				if t >= len(v.rings) {
					continue
				}
				r := v.rings[t]
				if r.claimed {
					continue
				}
				r.claimed = true
				v.deficit[t] += v.cfg.Quantum
				n, more, err := r.serveDrainMax(env, v.deficit[t])
				r.claimed = false
				if err != nil {
					return 0, err
				}
				v.deficit[t] -= n
				if !more {
					v.deficit[t] = 0
					v.clearBit(env, t)
				}
				if n > 0 {
					d.Steals++
					d.StolenOps += uint64(n)
					return n, nil
				}
			}
		}
	}
	return 0, nil
}
