package core

import (
	"fmt"
	"testing"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
)

// Test statuses for the placed echo handler (small values, distinct
// from the ring's ^uint64 reject codes).
const (
	stPlacedOK   = 1
	stWrongEpoch = 2
)

// placedWorld builds nFE sibling frontends in one server process, a
// Director over nShards, and a per-slot handler that executes only
// under the ownership check: completions echo the op ID in Regs[3] and
// carry (status, slot, epoch) in Regs[0..2]. exec records every
// execution; serviceCost burns cycles per op (with a Sleep to open
// steal windows when sleepCost > 0).
type placedExec struct {
	op    uint64
	shard int
	slot  int
	epoch uint64
}

func placedWorld(t *testing.T, eng *sim.Engine, k *mk.Kernel, sb *SkyBridge, nFE, nShards int, cfg DirectorConfig,
	serviceCost, sleepCost uint64) (*mk.Process, []*Frontend, *Director, *[]placedExec) {
	t.Helper()
	server := k.NewProcess("placed")
	var d *Director
	execs := &[]placedExec{}
	fes := make([]*Frontend, nFE)
	handlerFor := func(slot int) TenantHandler {
		return func(env *mk.Env, tenant int, req Request) Response {
			shard := int(req.Regs[1])
			ok, ep := d.Owns(slot, shard)
			if !ok {
				d.NoteReject()
				return Response{Regs: [4]uint64{stWrongEpoch, uint64(slot), ep, req.Regs[0]}}
			}
			if serviceCost > 0 {
				env.Compute(serviceCost)
			}
			if sleepCost > 0 {
				env.Sleep(sleepCost)
			}
			*execs = append(*execs, placedExec{op: req.Regs[0], shard: shard, slot: slot, epoch: d.Epoch()})
			d.NoteOp(shard)
			return Response{Regs: [4]uint64{stPlacedOK, uint64(slot), d.Epoch(), req.Regs[0]}}
		}
	}
	server.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		for i := 0; i < nFE; i++ {
			i := i
			id, err := sb.RegisterServer(env, 16, 0x400100, func(env *mk.Env, req Request) Response {
				return Response{Regs: [4]uint64{RingStatusBadTenant}}
			})
			if err != nil {
				t.Errorf("register server %d: %v", i, err)
				return
			}
			fe, err := sb.NewFrontend(id, FrontendConfig{Quantum: 1}, handlerFor(i))
			if err != nil {
				t.Errorf("new frontend %d: %v", i, err)
				return
			}
			fes[i] = fe
		}
		cfg.Shards = nShards
		var err error
		d, err = sb.NewDirector(env, cfg, fes)
		if err != nil {
			t.Errorf("new director: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return server, fes, d, execs
}

// routedClient drives ops through the Director's routing region from a
// raw core-level client: one ring per frontend, owner byte re-read
// (charged) before every submit, wrong-epoch completions resubmitted.
type routedClient struct {
	rings   []*AsyncRing
	routeVA hw.VA
	pending []int // in-flight count per slot
	done    map[uint64]int
	retries int
}

func openRoutedClient(t *testing.T, eng *sim.Engine, k *mk.Kernel, name string, fes []*Frontend, d *Director, core *hw.CPU) (*mk.Process, *routedClient) {
	t.Helper()
	proc := k.NewProcess(name)
	rc := &routedClient{rings: make([]*AsyncRing, len(fes)), pending: make([]int, len(fes)), done: map[uint64]int{}}
	proc.Spawn("open", core, func(env *mk.Env) {
		for i, fe := range fes {
			if _, err := fe.sb.RegisterClient(env, fe.sink.srv.ID); err != nil {
				t.Errorf("%s register fe%d: %v", name, i, err)
				return
			}
			r, _, err := fe.OpenTenantRing(env, 8, 0)
			if err != nil {
				t.Errorf("%s open fe%d: %v", name, i, err)
				return
			}
			rc.rings[i] = r
		}
		rc.routeVA = d.MapRoute(env)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return proc, rc
}

func (rc *routedClient) ownerOf(env *mk.Env, shard int) int {
	var b [1]byte
	env.Read(rc.routeVA+RouteOwnerOff+hw.VA(shard), b[:], 1)
	return int(b[0])
}

func (rc *routedClient) submit(t *testing.T, env *mk.Env, id uint64, shard int) {
	for {
		slot := rc.ownerOf(env, shard)
		err := rc.rings[slot].Submit(env, Request{Regs: [4]uint64{id, uint64(shard)}})
		if err == nil {
			rc.pending[slot]++
			if err := rc.rings[slot].Flush(env); err != nil {
				t.Errorf("flush: %v", err)
			}
			return
		}
		if err != ErrRingFull {
			t.Errorf("submit: %v", err)
			return
		}
		rc.reap(t, env, slot, 1)
	}
}

// reap collects >= minN completions from slot, resubmitting any
// wrong-epoch rejects through the refreshed routing table.
func (rc *routedClient) reap(t *testing.T, env *mk.Env, slot, minN int) {
	cs, err := rc.rings[slot].Reap(env, minN)
	if err != nil {
		t.Errorf("reap: %v", err)
		return
	}
	rc.pending[slot] -= len(cs)
	for _, c := range cs {
		id, shard := c.Regs[3], int(c.Regs[3]>>32)
		switch c.Regs[0] {
		case stPlacedOK:
			rc.done[id]++
		case stWrongEpoch:
			rc.retries++
			_ = shard
			rc.submit(t, env, id, int(id>>32))
		default:
			t.Errorf("completion status %d for op %d", c.Regs[0], id)
		}
	}
}

func (rc *routedClient) drain(t *testing.T, env *mk.Env) {
	for slot := range rc.rings {
		for rc.pending[slot] > 0 {
			rc.reap(t, env, slot, 1)
		}
	}
}

// opID packs the target shard into the high word so a reject can be
// resubmitted without side tables.
func opID(client, seq, shard int) uint64 {
	return uint64(shard)<<32 | uint64(client)<<16 | uint64(seq)
}

// TestMigrationExactlyOnce: concurrent clients issue ops across a
// forced hot-shard migration. Every op executes exactly once, every
// execution passed the ownership check, and no op observes the old
// owner after the epoch bump (all old-slot executions carry a strictly
// older epoch than every new-slot execution).
func TestMigrationExactlyOnce(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	cfg := DirectorConfig{ControlPeriod: 1 << 40} // manual moves only
	server, fes, d, execs := placedWorld(t, eng, k, sb, 2, 2, cfg, 400, 0)

	const nClients, nOps = 2, 40
	procs := make([]*mk.Process, nClients)
	rcs := make([]*routedClient, nClients)
	for i := 0; i < nClients; i++ {
		procs[i], rcs[i] = openRoutedClient(t, eng, k, fmt.Sprintf("cl%d", i), fes, d, k.Mach.Cores[0])
	}

	k.Mach.AlignClocks()
	for i := 0; i < 2; i++ {
		spawnDrain(t, fes[i], server, k.Mach.Cores[i])
	}
	remaining := nClients
	for i := 0; i < nClients; i++ {
		i := i
		procs[i].Spawn("drv", k.Mach.Cores[2+i%2], func(env *mk.Env) {
			defer func() {
				rcs[i].drain(t, env)
				remaining--
				if remaining == 0 {
					for _, fe := range fes {
						fe.Close(env)
					}
				}
			}()
			for op := 0; op < nOps; op++ {
				shard := op % 2
				rcs[i].submit(t, env, opID(i, op, shard), shard)
				// Forced migration: halfway through client 0's stream,
				// move shard 0 (owned by slot 0) to slot 1 — the flip
				// lands mid-traffic with shard-0 entries in flight.
				if i == 0 && op == nOps/2 {
					d.RequestMove(env, 0, 1)
				}
				if op%4 == 3 {
					for slot := range rcs[i].rings {
						if rcs[i].pending[slot] > 0 {
							rcs[i].reap(t, env, slot, 1)
						}
					}
				}
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	if d.Migrations != 1 {
		t.Errorf("Migrations = %d, want 1", d.Migrations)
	}
	// Exactly once: every op completed OK exactly once, and the
	// execution log holds no duplicates.
	counts := map[uint64]int{}
	for _, e := range *execs {
		counts[e.op]++
	}
	for i := 0; i < nClients; i++ {
		for op := 0; op < nOps; op++ {
			id := opID(i, op, op%2)
			if rcs[i].done[id] != 1 {
				t.Errorf("op %x completed %d times, want 1", id, rcs[i].done[id])
			}
			if counts[id] != 1 {
				t.Errorf("op %x executed %d times, want 1", id, counts[id])
			}
		}
	}
	// No op observed the old owner after the epoch bump: shard 0's
	// slot-0 executions all predate (epoch-wise) every slot-1 one.
	var maxOld, minNew uint64 = 0, ^uint64(0)
	oldN, newN := 0, 0
	for _, e := range *execs {
		if e.shard != 0 {
			continue
		}
		if e.slot == 0 {
			oldN++
			if e.epoch > maxOld {
				maxOld = e.epoch
			}
		} else {
			newN++
			if e.epoch < minNew {
				minNew = e.epoch
			}
		}
	}
	if oldN == 0 || newN == 0 {
		t.Fatalf("migration not exercised mid-traffic: %d old-owner, %d new-owner executions", oldN, newN)
	}
	if maxOld >= minNew {
		t.Errorf("old owner executed at epoch %d after bump to %d", maxOld, minNew)
	}
	if d.WrongEpoch == 0 {
		t.Error("no wrong-epoch rejects: in-flight handoff path not exercised")
	}
	rt := 0
	for _, rc := range rcs {
		rt += rc.retries
	}
	if rt == 0 {
		t.Error("no client retries recorded")
	}
}

// TestStealPreservesTenantFIFO: one loaded frontend with slow, parking
// handlers; an idle sibling steals whole-tenant quanta. Every op
// executes exactly once and each client's ops execute in submission
// order even when owner sweeps and thief drains interleave.
func TestStealPreservesTenantFIFO(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	cfg := DirectorConfig{
		ControlPeriod: 8_000,   // frequent help-wakes for the thief
		MigrateMin:    1 << 30, // stealing only, no migration
	}
	server, fes, d, execs := placedWorld(t, eng, k, sb, 2, 1, cfg, 200, 1_500)

	const nClients, nOps = 3, 24
	procs := make([]*mk.Process, nClients)
	rcs := make([]*routedClient, nClients)
	for i := 0; i < nClients; i++ {
		procs[i], rcs[i] = openRoutedClient(t, eng, k, fmt.Sprintf("cl%d", i), fes, d, k.Mach.Cores[0])
	}
	k.Mach.AlignClocks()
	for i := 0; i < 2; i++ {
		spawnDrain(t, fes[i], server, k.Mach.Cores[i])
	}
	remaining := nClients
	for i := 0; i < nClients; i++ {
		i := i
		procs[i].Spawn("drv", k.Mach.Cores[2+i%2], func(env *mk.Env) {
			defer func() {
				rcs[i].drain(t, env)
				remaining--
				if remaining == 0 {
					for _, fe := range fes {
						fe.Close(env)
					}
				}
			}()
			for op := 0; op < nOps; op++ {
				rcs[i].submit(t, env, opID(i, op, 0), 0)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	if d.Steals == 0 || d.StolenOps == 0 {
		t.Fatalf("no steals happened (steals=%d stolen=%d); the race under test never ran", d.Steals, d.StolenOps)
	}
	counts := map[uint64]int{}
	lastSeq := map[int]int{}
	for _, e := range *execs {
		counts[e.op]++
		client := int(e.op>>16) & 0xffff
		seq := int(e.op & 0xffff)
		if last, ok := lastSeq[client]; ok && seq <= last {
			t.Errorf("client %d op %d executed after op %d: per-tenant FIFO broken", client, seq, last)
		}
		lastSeq[client] = seq
	}
	for i := 0; i < nClients; i++ {
		for op := 0; op < nOps; op++ {
			if counts[opID(i, op, 0)] != 1 {
				t.Errorf("client %d op %d executed %d times", i, op, counts[opID(i, op, 0)])
			}
		}
	}
}

// TestScaleDownParksAndScaleUpWakes: a think-paced trickle drives the
// mean load under the low-water mark — the cold drain hands its shard
// away, drains dry, and HLTs on its gate. A closed-loop burst then
// crosses the high-water mark and the controller IPI-wakes it. All ops
// complete exactly once across both transitions.
func TestScaleDownParksAndScaleUpWakes(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	cfg := DirectorConfig{
		ControlPeriod: 10_000,
		LowWater:      1,
		HighWater:     3,
		HystTicks:     2,
	}
	server, fes, d, execs := placedWorld(t, eng, k, sb, 2, 2, cfg, 2_500, 0)

	proc, rc := openRoutedClient(t, eng, k, "cl0", fes, d, k.Mach.Cores[0])
	k.Mach.AlignClocks()
	for i := 0; i < 2; i++ {
		spawnDrain(t, fes[i], server, k.Mach.Cores[i])
	}
	const trickleOps, burstOps = 12, 120
	proc.Spawn("drv", k.Mach.Cores[2], func(env *mk.Env) {
		defer func() {
			rc.drain(t, env)
			for _, fe := range fes {
				fe.Close(env)
			}
		}()
		// Trickle: one op per 30k cycles, alternating shards.
		for op := 0; op < trickleOps; op++ {
			env.Sleep(30_000)
			rc.submit(t, env, opID(0, op, op%2), op%2)
			rc.drain(t, env)
		}
		// Burst: closed-loop window of 8.
		for op := 0; op < burstOps; op++ {
			rc.submit(t, env, opID(0, trickleOps+op, op%2), op%2)
			if op%8 == 7 {
				rc.drain(t, env)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	if d.ScaleDowns == 0 {
		t.Error("no scale-down: trickle never parked a drain")
	}
	if d.ScaleUps == 0 {
		t.Error("no scale-up: burst never woke the parked drain")
	}
	parked := uint64(0)
	for _, g := range d.Gates() {
		parked += g.ParkedCycles
	}
	if parked == 0 {
		t.Error("no gate-parked cycles recorded")
	}
	counts := map[uint64]int{}
	for _, e := range *execs {
		counts[e.op]++
	}
	for op := 0; op < trickleOps+burstOps; op++ {
		shard := op % 2
		if op >= trickleOps {
			shard = (op - trickleOps) % 2
		}
		id := opID(0, op, shard)
		if counts[id] != 1 {
			t.Errorf("op %d executed %d times, want 1", op, counts[id])
		}
	}
}
