package core

import (
	"fmt"
	"testing"

	"skybridge/internal/mk"
	"skybridge/internal/obs"
)

// attachTap wires a capturing CallObserver to sb and returns the slice of
// records it accumulates.
func attachTap(sb *SkyBridge) *[]obs.CallRecord {
	recs := &[]obs.CallRecord{}
	sb.Calls = &obs.CallObserver{
		Breakdown: obs.NewBreakdown(),
		Tap:       func(r *obs.CallRecord) { *recs = append(*recs, *r) },
	}
	return recs
}

// assertExactPartition checks the invariant the whole breakdown rests on:
// every record's phase cycles sum exactly to its end-to-end latency.
func assertExactPartition(t *testing.T, recs []obs.CallRecord, kind obs.CallKind, wantN int) {
	t.Helper()
	if len(recs) != wantN {
		t.Fatalf("captured %d records, want %d", len(recs), wantN)
	}
	for i, r := range recs {
		if r.Kind != kind {
			t.Errorf("record %d: kind %v, want %v", i, r.Kind, kind)
		}
		if r.End <= r.Start {
			t.Errorf("record %d: empty interval [%d, %d)", i, r.Start, r.End)
		}
		if r.Flow == 0 {
			t.Errorf("record %d: zero flow id", i)
		}
		if r.PhaseSum() != r.E2E() {
			t.Errorf("record %d: phases sum to %d, e2e %d (phases %v)",
				i, r.PhaseSum(), r.E2E(), r.Phases)
		}
	}
}

// TestCallRecordExactPartitionSync: every DirectCall record partitions its
// round trip exactly into service + crossing, with ordinal flow IDs.
func TestCallRecordExactPartitionSync(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
	recs := attachTap(sb)

	const n = 10
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		for i := 0; i < n; i++ {
			if _, err := sb.DirectCall(env, id, Request{Regs: [4]uint64{uint64(i)}}); err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	assertExactPartition(t, *recs, obs.CallSync, n)
	for i, r := range *recs {
		if want := obs.FlowSync | uint64(i+1); r.Flow != want {
			t.Errorf("record %d: flow %#x, want %#x", i, r.Flow, want)
		}
		if r.Phases[obs.PhaseService] == 0 || r.Phases[obs.PhaseCrossing] == 0 {
			t.Errorf("record %d: service/crossing = %d/%d, want both nonzero",
				i, r.Phases[obs.PhaseService], r.Phases[obs.PhaseCrossing])
		}
	}
	// The aggregate breakdown preserves the identity: phase sums total the
	// e2e sum exactly.
	b := sb.Calls.Breakdown
	var phaseTotal uint64
	for p := obs.CallPhase(0); p < obs.NumCallPhases; p++ {
		phaseTotal += b.Phase(p).Sum()
	}
	if phaseTotal != b.E2E().Sum() {
		t.Errorf("breakdown phase total %d != e2e total %d", phaseTotal, b.E2E().Sum())
	}
}

// TestCallRecordExactPartitionBatch: one record per request inside a
// DirectCallBatch, each an exact partition, all sharing the batch's flow.
func TestCallRecordExactPartitionBatch(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
	recs := attachTap(sb)

	const batches, per = 3, 5
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		for b := 0; b < batches; b++ {
			reqs := make([]Request, per)
			for i := range reqs {
				reqs[i] = Request{Regs: [4]uint64{uint64(b*per + i)}}
			}
			if _, err := sb.DirectCallBatch(env, id, reqs); err != nil {
				t.Errorf("batch %d: %v", b, err)
				return
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	assertExactPartition(t, *recs, obs.CallBatch, batches*per)
	for i, r := range *recs {
		if want := obs.FlowBatch | uint64(i/per+1); r.Flow != want {
			t.Errorf("record %d: flow %#x, want %#x", i, r.Flow, want)
		}
		// Requests in one batch share the convoy window: same Start/End.
		if first := (*recs)[(i/per)*per]; r.Start != first.Start || r.End != first.End {
			t.Errorf("record %d: window [%d,%d) differs from batch head [%d,%d)",
				i, r.Start, r.End, first.Start, first.End)
		}
	}
	// Later requests in a batch wait longer before service and less after.
	head, tail := (*recs)[0], (*recs)[per-1]
	if tail.Phases[obs.PhaseRingWait] <= head.Phases[obs.PhaseRingWait] {
		t.Errorf("ring_wait head %d, tail %d: want tail larger",
			head.Phases[obs.PhaseRingWait], tail.Phases[obs.PhaseRingWait])
	}
	if head.Phases[obs.PhaseReapDelay] <= tail.Phases[obs.PhaseReapDelay] {
		t.Errorf("reap_delay head %d, tail %d: want head larger",
			head.Phases[obs.PhaseReapDelay], tail.Phases[obs.PhaseReapDelay])
	}
}

// TestCallRecordExactPartitionAsync: a QD-8 ring driven cross-core yields
// one exact-partition record per submission, tagged with the ring's flow
// namespace and the reap's wake kind.
func TestCallRecordExactPartitionAsync(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
	recs := attachTap(sb)
	rs := startRingServer(t, sb, id, server, k.Mach.Cores[1], mk.WakePolicy{})

	const n = 20
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		defer rs.Close(env)
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		r, err := sb.OpenRing(env, id, 8, 64, mk.WakePolicy{})
		if err != nil {
			t.Errorf("open ring: %v", err)
			return
		}
		for i := 0; i < n; i++ {
			payload := []byte(fmt.Sprintf("obs-req-%02d", i))
			env.Write(r.SlotVA(), payload, len(payload))
			if err := r.Submit(env, Request{
				Regs: [4]uint64{uint64(i)},
				Buf:  r.SlotVA(), Len: len(payload),
			}); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if err := r.Flush(env); err != nil {
				t.Errorf("flush %d: %v", i, err)
				return
			}
			minN := 0
			if r.Inflight() == 8 {
				minN = 1
			}
			if _, err := r.Reap(env, minN); err != nil {
				t.Errorf("reap: %v", err)
				return
			}
		}
		for r.Inflight() > 0 {
			if err := r.Flush(env); err != nil {
				t.Errorf("final flush: %v", err)
				return
			}
			if _, err := r.Reap(env, r.Inflight()); err != nil {
				t.Errorf("final reap: %v", err)
				return
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	assertExactPartition(t, *recs, obs.CallAsync, n)
	seen := map[uint64]bool{}
	for i, r := range *recs {
		const ringID = 1 // first ring opened on this SkyBridge
		if want := obs.FlowAsync | uint64(ringID)<<32 | r.Seq; r.Flow != want {
			t.Errorf("record %d: flow %#x, want %#x", i, r.Flow, want)
		}
		if seen[r.Flow] {
			t.Errorf("record %d: duplicate flow %#x", i, r.Flow)
		}
		seen[r.Flow] = true
	}
}

// TestFlightRecorderDumpsSlowestCall: a tail outlier in a steady stream of
// direct calls produces a flight dump whose trigger is the slowest call
// and whose chain is the chronological run-up to it.
func TestFlightRecorderDumpsSlowestCall(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	idCh := make(chan int, 1)
	const slowReg = 777
	server.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		id, err := sb.RegisterServer(env, 8, 0x400100, func(env *mk.Env, req Request) Response {
			if req.Regs[0] == slowReg {
				env.Compute(200_000) // the pathological request
			}
			return Response{Regs: [4]uint64{req.Regs[0]}}
		})
		if err != nil {
			t.Errorf("register server: %v", err)
			return
		}
		idCh <- id
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	id := <-idCh

	flight := obs.NewFlightRecorder(obs.FlightConfig{Ring: 64, MinCalls: 32, MaxDumps: 16})
	sb.Calls = &obs.CallObserver{Breakdown: obs.NewBreakdown(), Flight: flight}

	const fast = 100
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		call := func(reg uint64) {
			if _, err := sb.DirectCall(env, id, Request{Regs: [4]uint64{reg}}); err != nil {
				t.Errorf("call %d: %v", reg, err)
			}
		}
		for i := 0; i < fast; i++ {
			call(uint64(i))
		}
		call(slowReg)
		for i := 0; i < 10; i++ {
			call(uint64(fast + i))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	dumps := flight.Dumps()
	if len(dumps) == 0 {
		t.Fatal("no flight dumps for a 200k-cycle tail outlier")
	}
	// Find the dump triggered by the slowest observed call.
	slowest := sb.Calls.Breakdown.E2E().Max()
	var hit *obs.FlightDump
	for i := range dumps {
		if dumps[i].Trigger.E2E() == slowest {
			hit = &dumps[i]
		}
	}
	if hit == nil {
		t.Fatalf("no dump triggered by the slowest call (%d cycles); triggers: %v",
			slowest, len(dumps))
	}
	if hit.Trigger.Phases[obs.PhaseService] < 200_000 {
		t.Errorf("trigger service phase = %d, want >= 200000 (the injected stall)",
			hit.Trigger.Phases[obs.PhaseService])
	}
	if hit.Threshold == 0 || hit.Threshold >= hit.Trigger.E2E() {
		t.Errorf("threshold = %d, want in (0, %d)", hit.Threshold, hit.Trigger.E2E())
	}
	if len(hit.Chain) == 0 {
		t.Fatal("empty causal chain")
	}
	for i := 1; i < len(hit.Chain); i++ {
		if hit.Chain[i].Start < hit.Chain[i-1].Start {
			t.Fatal("chain not chronological")
		}
	}
	if last := hit.Chain[len(hit.Chain)-1]; last.End > hit.Trigger.Start {
		t.Errorf("chain tail ends at %d, after trigger start %d", last.End, hit.Trigger.Start)
	}
}
