package core

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
)

// startFrontend registers a frontend server on proc (tenant-echo handler:
// doubles Regs[0], returns the authenticated tenant in Regs[1], uppercases
// the payload in place) and spawns its drain thread on pollCore.
func startFrontend(t *testing.T, eng *sim.Engine, k *mk.Kernel, sb *SkyBridge, proc *mk.Process, regCore *hw.CPU, cfg FrontendConfig) *Frontend {
	t.Helper()
	feCh := make(chan *Frontend, 1)
	proc.Spawn("reg", regCore, func(env *mk.Env) {
		id, err := sb.RegisterServer(env, 64, 0x400100, func(env *mk.Env, req Request) Response {
			return Response{Regs: [4]uint64{RingStatusBadTenant}}
		})
		if err != nil {
			t.Errorf("register server: %v", err)
			return
		}
		fe, err := sb.NewFrontend(id, cfg, func(env *mk.Env, tenant int, req Request) Response {
			resp := Response{Regs: [4]uint64{req.Regs[0] * 2, uint64(tenant)}}
			if req.Len > 0 {
				data := make([]byte, req.Len)
				env.Read(req.SharedBuf, data, req.Len)
				for i := range data {
					if data[i] >= 'a' && data[i] <= 'z' {
						data[i] -= 32
					}
				}
				env.Write(req.SharedBuf, data, len(data))
				resp.Len = req.Len
			}
			return resp
		})
		if err != nil {
			t.Errorf("new frontend: %v", err)
			return
		}
		feCh <- fe
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return <-feCh
}

// spawnDrain starts the frontend's drain thread. Call it only for the
// engine run that ends with fe.Close — a run finishing with the drain
// still parked reads as a deadlock to the engine.
func spawnDrain(t *testing.T, fe *Frontend, proc *mk.Process, core *hw.CPU) {
	t.Helper()
	proc.Spawn("drain", core, func(env *mk.Env) {
		if err := fe.Serve(env); err != nil {
			t.Errorf("frontend serve: %v", err)
		}
	})
}

// openTenants registers nTen client processes to the frontend and opens
// their tenant rings (one engine run). Tenant i's ring ends up at
// rings[i]; the assigned IDs must equal the open order.
func openTenants(t *testing.T, eng *sim.Engine, k *mk.Kernel, fe *Frontend, nTen, qd, payloadCap int, core *hw.CPU) ([]*mk.Process, []*AsyncRing) {
	t.Helper()
	sb := fe.sb
	procs := make([]*mk.Process, nTen)
	rings := make([]*AsyncRing, nTen)
	for i := 0; i < nTen; i++ {
		procs[i] = k.NewProcess(fmt.Sprintf("tenant%02d", i))
	}
	for i := 0; i < nTen; i++ {
		i := i
		procs[i].Spawn("open", core, func(env *mk.Env) {
			if _, err := sb.RegisterClient(env, fe.sink.srv.ID); err != nil {
				t.Errorf("tenant %d register: %v", i, err)
				return
			}
			r, tenant, err := fe.OpenTenantRing(env, qd, payloadCap)
			if err != nil {
				t.Errorf("tenant %d open ring: %v", i, err)
				return
			}
			if tenant != i {
				t.Errorf("tenant %d assigned ID %d", i, tenant)
			}
			rings[i] = r
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return procs, rings
}

// TestFrontendMultiTenantEcho: several tenants submit through their own
// rings, one drain thread multiplexes them through the directory, and
// every completion carries the right tenant binding and payload. Flushes
// against an awake drain skip the doorbell.
func TestFrontendMultiTenantEcho(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	fe := startFrontend(t, eng, k, sb, server, k.Mach.Cores[0], FrontendConfig{})
	const nTen, nOps = 4, 10
	procs, rings := openTenants(t, eng, k, fe, nTen, 0, 64, k.Mach.Cores[0])

	spawnDrain(t, fe, server, k.Mach.Cores[1])
	remaining := nTen
	for i := 0; i < nTen; i++ {
		i := i
		procs[i].Spawn("drv", k.Mach.Cores[2+i%2], func(env *mk.Env) {
			defer func() {
				remaining--
				if remaining == 0 {
					fe.Close(env)
				}
			}()
			r := rings[i]
			got := 0
			reap := func(minN int) {
				cs, err := r.Reap(env, minN)
				if err != nil {
					t.Errorf("tenant %d reap: %v", i, err)
					return
				}
				for _, c := range cs {
					if c.Regs[0] != uint64(100+i)*2 || c.Regs[1] != uint64(i) {
						t.Errorf("tenant %d completion regs %v", i, c.Regs)
					}
					want := fmt.Sprintf("T%02d-OP", i)
					if string(c.Data) != want {
						t.Errorf("tenant %d payload %q, want %q", i, c.Data, want)
					}
					got++
				}
			}
			for op := 0; op < nOps; op++ {
				payload := []byte(fmt.Sprintf("t%02d-op", i))
				env.Write(r.SlotVA(), payload, len(payload))
				err := r.Submit(env, Request{
					Regs: [4]uint64{uint64(100 + i)},
					Buf:  r.SlotVA(), Len: len(payload),
				})
				if err != nil {
					t.Errorf("tenant %d submit: %v", i, err)
					return
				}
				if err := r.Flush(env); err != nil {
					t.Errorf("tenant %d flush: %v", i, err)
					return
				}
				minN := 0
				if r.Inflight() == r.QD {
					minN = 1
				}
				reap(minN)
			}
			for r.Inflight() > 0 {
				if err := r.Flush(env); err != nil {
					t.Errorf("tenant %d final flush: %v", i, err)
					return
				}
				reap(r.Inflight())
			}
			if got != nOps {
				t.Errorf("tenant %d reaped %d, want %d", i, got, nOps)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fe.Served() != nTen*nOps || fe.Bad() != 0 {
		t.Errorf("Served/Bad = %d/%d, want %d/0", fe.Served(), fe.Bad(), nTen*nOps)
	}
	if fe.Sweeps == 0 {
		t.Error("no sweeps recorded")
	}
	skipped := uint64(0)
	for _, r := range rings {
		skipped += r.DoorbellsSkipped
	}
	if skipped == 0 {
		t.Error("no doorbells skipped: drain never looked awake to a flush")
	}
}

// TestFrontendForgedTenantRejected: a tenant rewriting its submission
// entry's tenant tag to another tenant's ID gets RingStatusBadTenant —
// the handler never runs under the forged identity and the victim's ring
// memory is untouched.
func TestFrontendForgedTenantRejected(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	fe := startFrontend(t, eng, k, sb, server, k.Mach.Cores[0], FrontendConfig{})
	procs, rings := openTenants(t, eng, k, fe, 2, 0, 64, k.Mach.Cores[0])
	victim, attacker := 0, 1

	spawnDrain(t, fe, server, k.Mach.Cores[1])
	// The victim stages a sentinel in its first payload slot (no submit:
	// nothing should ever serve or overwrite it).
	sentinel := []byte("victim-slot-data")
	procs[victim].Spawn("stage", k.Mach.Cores[2], func(env *mk.Env) {
		env.Write(rings[victim].SlotVA(), sentinel, len(sentinel))
	})
	procs[attacker].Spawn("atk", k.Mach.Cores[3], func(env *mk.Env) {
		defer fe.Close(env)
		r := rings[attacker]
		if err := r.Submit(env, Request{Regs: [4]uint64{7}}); err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		// Rewrite the published entry, claiming the victim's tenant ID.
		env.Write(r.conn.ClientBuf+hw.VA(r.sqeBase),
			encodeRingEntry([4]uint64{7}, 0, 0, uint32(victim)), ringEntryLen)
		if err := r.Flush(env); err != nil {
			t.Errorf("flush: %v", err)
			return
		}
		cs, err := r.Reap(env, 1)
		if err != nil {
			t.Errorf("reap: %v", err)
			return
		}
		if len(cs) != 1 || cs[0].Regs[0] != RingStatusBadTenant {
			t.Errorf("completion = %+v, want RingStatusBadTenant", cs)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fe.Bad() != 1 {
		t.Errorf("Bad = %d, want 1", fe.Bad())
	}
	if fe.sink.srv.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", fe.sink.srv.Rejected)
	}
	// The victim's ring never advanced and its staged slot is intact.
	server.Spawn("check", k.Mach.Cores[0], func(env *mk.Env) {
		rv := rings[victim]
		if got := readCtl(env, rv.conn.ServerBuf, ctlCQTail); got != 0 {
			t.Errorf("victim cqTail = %d, want 0", got)
		}
		buf := make([]byte, len(sentinel))
		env.Read(rv.conn.ServerBuf+hw.VA(rv.payBase), buf, len(buf))
		if string(buf) != string(sentinel) {
			t.Errorf("victim slot = %q, want %q", buf, sentinel)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFrontendWrongKeyDoorbell: presenting another tenant's calling key
// on a doorbell crossing is rejected at the server trampoline (ErrBadKey)
// exactly like the synchronous paths — per-tenant keys stay per-tenant.
func TestFrontendWrongKeyDoorbell(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	fe := startFrontend(t, eng, k, sb, server, k.Mach.Cores[0], FrontendConfig{})
	procs, rings := openTenants(t, eng, k, fe, 2, 0, 64, k.Mach.Cores[0])

	spawnDrain(t, fe, server, k.Mach.Cores[1])
	stolen := rings[0].conn.ServerKey // tenant 0's calling key
	rejBefore := fe.sink.srv.Rejected
	procs[1].Spawn("atk", k.Mach.Cores[2], func(env *mk.Env) {
		defer fe.Close(env)
		r := rings[1]
		if err := r.Submit(env, Request{Regs: [4]uint64{7}}); err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		if err := r.DoorbellWithKey(env, stolen); !errors.Is(err, ErrBadKey) {
			t.Errorf("doorbell with stolen key = %v, want ErrBadKey", err)
		}
		// The legitimate key still works and the submission completes.
		if err := r.Flush(env); err != nil {
			t.Errorf("flush: %v", err)
			return
		}
		if _, err := r.Reap(env, 1); err != nil {
			t.Errorf("reap: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fe.sink.srv.Rejected - rejBefore; got != 1 {
		t.Errorf("Rejected delta = %d, want 1", got)
	}
}

// TestFrontendMaliciousTailClamped: a tenant publishing a submission tail
// far beyond its ring window is clamped to the window — the drain serves
// garbage completions back to the attacker (mostly RingStatusBadEntry)
// but never indexes outside the ring, never dies, and keeps serving a
// well-behaved tenant correctly.
func TestFrontendMaliciousTailClamped(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	fe := startFrontend(t, eng, k, sb, server, k.Mach.Cores[0], FrontendConfig{})
	procs, rings := openTenants(t, eng, k, fe, 2, 0, 64, k.Mach.Cores[0])
	const forged = 200

	spawnDrain(t, fe, server, k.Mach.Cores[1])
	remaining := 2
	done := func(env *mk.Env) {
		remaining--
		if remaining == 0 {
			fe.Close(env)
		}
	}
	procs[0].Spawn("atk", k.Mach.Cores[2], func(env *mk.Env) {
		defer done(env)
		r := rings[0]
		// No real submission: just a forged tail, out-of-range by far.
		writeCtl(env, r.conn.ClientBuf, ctlSQTail, forged)
		if err := r.Doorbell(env); err != nil {
			t.Errorf("doorbell: %v", err)
		}
	})
	procs[1].Spawn("good", k.Mach.Cores[3], func(env *mk.Env) {
		defer done(env)
		r := rings[1]
		for op := 0; op < 20; op++ {
			if err := r.Submit(env, Request{Regs: [4]uint64{uint64(op)}}); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			if err := r.Flush(env); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			cs, err := r.Reap(env, 1)
			if err != nil {
				t.Errorf("reap: %v", err)
				return
			}
			for _, c := range cs {
				if c.Regs[0] != uint64(op)*2 || c.Regs[1] != 1 {
					t.Errorf("good tenant completion %v for op %d", c.Regs, op)
				}
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The drain chewed through the forged window (clamped to QD per
	// visit) without dying; everything it "served" the attacker was
	// rejected except entries that happen to validate as all-zero.
	if rings[0].srvSeq != forged {
		t.Errorf("attacker drain cursor = %d, want %d (clamped progress)", rings[0].srvSeq, forged)
	}
	if fe.Bad() == 0 {
		t.Error("no rejected submissions recorded for the forged window")
	}
}

// TestFrontendMaliciousBitClear: a tenant clearing another tenant's
// directory bit (the bitmap is writable, untrusted hint state) delays the
// victim at most briefly — the pre-park tail rescan repairs the bit and
// the victim's blocking reap still completes.
func TestFrontendMaliciousBitClear(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	// No drain thread yet: stage the race first, then start it.
	feCh := make(chan *Frontend, 1)
	server.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		id, err := sb.RegisterServer(env, 8, 0x400100, func(env *mk.Env, req Request) Response {
			return Response{Regs: [4]uint64{RingStatusBadTenant}}
		})
		if err != nil {
			t.Errorf("register server: %v", err)
			return
		}
		fe, err := sb.NewFrontend(id, FrontendConfig{}, func(env *mk.Env, tenant int, req Request) Response {
			return Response{Regs: [4]uint64{req.Regs[0] + 1, uint64(tenant)}}
		})
		if err != nil {
			t.Errorf("new frontend: %v", err)
			return
		}
		feCh <- fe
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	fe := <-feCh
	procs, rings := openTenants(t, eng, k, fe, 2, 0, 64, k.Mach.Cores[0])

	// Victim submits and flushes (sets its bit); attacker clears the
	// victim's bit through its own writable directory mapping.
	procs[0].Spawn("victim-submit", k.Mach.Cores[2], func(env *mk.Env) {
		r := rings[0]
		if err := r.Submit(env, Request{Regs: [4]uint64{41}}); err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		if err := r.Flush(env); err != nil {
			t.Errorf("flush: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	procs[1].Spawn("atk", k.Mach.Cores[3], func(env *mk.Env) {
		r := rings[1]
		w := readDirU64(env, r.dirVA, dirOffBitmap)
		writeDirU64(env, r.dirVA, dirOffBitmap, w&^uint64(1)) // clear tenant 0's bit
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	server.Spawn("drain", k.Mach.Cores[1], func(env *mk.Env) {
		if err := fe.Serve(env); err != nil {
			t.Errorf("frontend serve: %v", err)
		}
	})
	procs[0].Spawn("victim-reap", k.Mach.Cores[2], func(env *mk.Env) {
		defer fe.Close(env)
		cs, err := rings[0].Reap(env, 1)
		if err != nil {
			t.Errorf("reap: %v", err)
			return
		}
		if len(cs) != 1 || cs[0].Regs[0] != 42 {
			t.Errorf("completion = %+v, want Regs[0]=42", cs)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fe.Served() != 1 {
		t.Errorf("Served = %d, want 1", fe.Served())
	}
}

// TestFrontendOpenErrors: ring depth above the tenant credit is refused,
// and an unregistered process cannot open a tenant ring.
func TestFrontendOpenErrors(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	fe := startFrontend(t, eng, k, sb, server, k.Mach.Cores[0], FrontendConfig{Credit: 8})
	stranger := k.NewProcess("stranger")
	stranger.Spawn("open", k.Mach.Cores[2], func(env *mk.Env) {
		defer fe.Close(env)
		if _, _, err := fe.OpenTenantRing(env, 0, 64); !errors.Is(err, ErrNotRegistered) {
			t.Errorf("unregistered open = %v, want ErrNotRegistered", err)
		}
		if _, err := sb.RegisterClient(env, fe.sink.srv.ID); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		if _, _, err := fe.OpenTenantRing(env, 16, 64); err == nil {
			t.Error("open with qd 16 > credit 8 succeeded")
		}
		if _, _, err := fe.OpenTenantRing(env, 0, 64); err != nil {
			t.Errorf("open: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// fairnessColdP99 runs 16 tenants against one frontend drain and returns
// the p99 of the cold tenants' end-to-end latencies. With hot=true,
// tenant 0 runs closed-loop at full credit (a zipfian-style hog); the
// other 15 submit one request per think-time gap. With hot=false, all 16
// run the paced loop — the uniform baseline.
func fairnessColdP99(t *testing.T, hot bool) float64 {
	t.Helper()
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	feCh := make(chan *Frontend, 1)
	server.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		id, err := sb.RegisterServer(env, 16, 0x400100, func(env *mk.Env, req Request) Response {
			return Response{Regs: [4]uint64{RingStatusBadTenant}}
		})
		if err != nil {
			t.Errorf("register server: %v", err)
			return
		}
		fe, err := sb.NewFrontend(id, FrontendConfig{}, func(env *mk.Env, tenant int, req Request) Response {
			env.Compute(2000) // fixed service cost
			return Response{Regs: [4]uint64{req.Regs[0], uint64(tenant)}}
		})
		if err != nil {
			t.Errorf("new frontend: %v", err)
			return
		}
		feCh <- fe
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	fe := <-feCh
	const nTen, coldOps = 16, 30
	procs, rings := openTenants(t, eng, k, fe, nTen, 0, 0, k.Mach.Cores[0])

	spawnDrain(t, fe, server, k.Mach.Cores[1])
	var lat []uint64
	coldLeft := nTen - 1
	if !hot {
		coldLeft = nTen
	}
	hotDone := !hot
	maybeClose := func(env *mk.Env) {
		if coldLeft == 0 && hotDone {
			fe.Close(env)
		}
	}
	for i := 0; i < nTen; i++ {
		i := i
		core := k.Mach.Cores[2+i%2]
		if hot && i == 0 {
			procs[i].Spawn("hot", core, func(env *mk.Env) {
				defer func() { hotDone = true; maybeClose(env) }()
				r := rings[i]
				for coldLeft > 0 || r.Inflight() > 0 {
					for coldLeft > 0 && r.Inflight() < r.QD {
						if err := r.Submit(env, Request{Regs: [4]uint64{1}}); err != nil {
							t.Errorf("hot submit: %v", err)
							return
						}
					}
					if err := r.Flush(env); err != nil {
						t.Errorf("hot flush: %v", err)
						return
					}
					if _, err := r.Reap(env, 1); err != nil {
						t.Errorf("hot reap: %v", err)
						return
					}
				}
			})
			continue
		}
		procs[i].Spawn("cold", core, func(env *mk.Env) {
			defer func() { coldLeft--; maybeClose(env) }()
			r := rings[i]
			// Deterministic per-tenant stagger, then a fixed think gap.
			env.Sleep(uint64(i) * 2777)
			for op := 0; op < coldOps; op++ {
				env.Sleep(40_000)
				t0 := env.Now()
				if err := r.Submit(env, Request{Regs: [4]uint64{uint64(op)}}); err != nil {
					t.Errorf("cold %d submit: %v", i, err)
					return
				}
				if err := r.Flush(env); err != nil {
					t.Errorf("cold %d flush: %v", i, err)
					return
				}
				if _, err := r.Reap(env, 1); err != nil {
					t.Errorf("cold %d reap: %v", i, err)
					return
				}
				lat = append(lat, env.Now()-t0)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if want := (nTen - 1) * coldOps; len(lat) < want {
		t.Fatalf("collected %d cold latencies, want >= %d", len(lat), want)
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	return float64(lat[len(lat)*99/100])
}

// TestFrontendDRRFairness: with one hot tenant running closed-loop at
// full credit against 15 paced cold tenants, deficit-round-robin drain
// keeps the cold tenants' p99 latency within a constant factor of the
// all-uniform baseline — the hog cannot starve the cold class.
func TestFrontendDRRFairness(t *testing.T) {
	uniform := fairnessColdP99(t, false)
	skewed := fairnessColdP99(t, true)
	t.Logf("cold p99: uniform %.0f cycles, hot-tenant %.0f cycles (ratio %.2f)",
		uniform, skewed, skewed/uniform)
	const factor = 8.0
	if skewed > uniform*factor {
		t.Errorf("cold p99 under skew = %.0f, more than %.0fx the uniform %.0f",
			skewed, factor, uniform)
	}
}
