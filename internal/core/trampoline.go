package core

import "skybridge/internal/isa"

// TrampolineCode assembles the trampoline page: the only code in a
// registered process allowed to contain the VMFUNC encoding. The layout is
//
//	+0x00  direct_server_call entry: save registers, load the calling key,
//	       copy long payloads to the shared buffer (out of line), VMFUNC to
//	       the target EPTP index, install the connection stack, and call
//	       the server's registered function.
//	+0x80  return thunk: reload the caller's stack, VMFUNC back to the
//	       caller's EPTP index, restore registers, return the reply key.
//
// The simulator drives the trampoline's state machine from Go (the handler
// is a Go function), but the page content is real machine code: it is what
// the rewriter must leave untouched, what instruction fetches during a
// direct call hit in the i-cache, and what an attacker who maps the page
// would find.
func TrampolineCode() []byte {
	var a isa.Asm

	// --- entry: direct_server_call(rdi=server id, rsi=key, rdx=arg) ---
	a.PushReg(isa.RBP)
	a.PushReg(isa.RBX)
	a.PushReg(isa.R12)
	a.PushReg(isa.R13)
	a.PushReg(isa.R14)
	a.PushReg(isa.R15)
	a.MovRR(isa.RBP, isa.RSP)
	// EPTP switching: VMFUNC leaf 0 (rax=0), index in rcx.
	a.MovRI32(isa.RAX, 0)
	a.MovRR(isa.RCX, isa.RDI)
	a.Vmfunc()
	// Now translating through the server's page table: install the
	// connection stack (r12 carries it) and check the calling key against
	// the table slot (r13 points at it).
	a.MovRR(isa.RSP, isa.R12)
	a.MovRM(isa.RBX, isa.Mem{Base: isa.R13, Index: isa.NoReg, Scale: 1})
	a.AluRR(isa.CMP, isa.RBX, isa.RSI)
	a.Jcc(isa.CondNE, 0x30) // deny path (kernel notification) lives below
	// Call the server's registered handler (address in r14).
	a.PushReg(isa.R14)
	a.Ret() // indirect transfer to the handler via the pushed address

	// Pad to the return thunk at +0x80.
	for a.Len() < 0x80 {
		a.Int3()
	}

	// --- return thunk ---
	a.MovRR(isa.RSP, isa.RBP)
	a.MovRI32(isa.RAX, 0)
	a.MovRR(isa.RCX, isa.R15) // caller's EPTP index, saved at entry
	a.Vmfunc()
	a.PopReg(isa.R15)
	a.PopReg(isa.R14)
	a.PopReg(isa.R13)
	a.PopReg(isa.R12)
	a.PopReg(isa.RBX)
	a.PopReg(isa.RBP)
	a.Ret()

	// --- deny path: notify the kernel of an illegal call (§4.4) ---
	a.Syscall()
	a.Ret()

	code := a.Bytes()
	page := make([]byte, 4096)
	copy(page, code)
	return page
}
