package core

import (
	"bytes"
	"errors"
	"testing"

	"skybridge/internal/hw"
	"skybridge/internal/isa"
	"skybridge/internal/mk"
)

// The tests in this file walk the paper's §7 security analysis, one threat
// at a time.

// TestSecMaliciousEPTSwitching (§7 "Malicious EPT switching"): a process
// whose binary carries a self-prepared VMFUNC is defanged at registration;
// and the instruction stream that remains decodes to the documented
// replacement (three NOPs for a literal VMFUNC).
func TestSecMaliciousEPTSwitching(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	attacker := k.NewProcess("attacker")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	var a isa.Asm
	a.MovRI32(isa.RAX, 0)
	a.MovRI32(isa.RCX, int32(id))
	a.Vmfunc()
	for i := 0; i < 8; i++ {
		a.Nop()
	}
	a.Hlt()
	attacker.MapCode(a.Bytes())

	attacker.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register: %v", err)
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	code := attacker.ReadCode()
	insts, err := isa.DecodeAll(code)
	if err != nil {
		t.Fatalf("rewritten code does not decode: %v", err)
	}
	for _, in := range insts {
		if in.Op == isa.VMFUNC {
			t.Fatal("a VMFUNC instruction survives in the attacker's code")
		}
	}
}

// TestSecVMFuncDoesNotExposeAttackerCode: after a (hypothetical) raw EPTP
// switch, the attacker's own instructions are gone — every subsequent fetch
// translates through the *victim's* page table, so the attacker cannot run
// self-prepared code in the victim's address space, only jump into existing
// victim code (which the calling-key check gates at the legitimate entry).
func TestSecVMFuncDoesNotExposeAttackerCode(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	evil := []byte{0x48, 0xc7, 0xc0, 0x44, 0x33, 0x22, 0x11} // mov rax, 0x11223344
	client.MapCode(evil)
	// Map server-side bytes at the same VA so the post-switch view is
	// observable.
	srvBytes := []byte{0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90}
	frame := k.Mach.Mem.MustAllocFrame()
	k.Mach.Mem.Write(frame, srvBytes)
	server.MapAt(mk.UserTextBase, []hw.GPA{hw.GPA(frame)}, hw.PTEUser)

	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		cpu := env.T.Core
		before, err := cpu.FetchCode(mk.UserTextBase, len(evil))
		if err != nil {
			t.Errorf("fetch before: %v", err)
			return
		}
		if err := cpu.VMFunc(0, 1); err != nil { // slot 1: the bound server view
			t.Errorf("vmfunc: %v", err)
			return
		}
		after, err := cpu.FetchCode(mk.UserTextBase, len(evil))
		cpu.VMFunc(0, 0)
		if err != nil {
			// Faulting is an acceptable outcome: the VA may be unmapped in
			// the server.
			return
		}
		if bytes.Equal(before, after) {
			t.Error("attacker's own code still fetchable after the EPTP switch")
		}
		if !bytes.Equal(after, srvBytes) {
			t.Errorf("post-switch fetch returned %x, want the server's bytes", after)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	_ = eng
}

// TestSecMeltdownStylePageTables (§7 "Meltdown Attacks"): SkyBridge keeps
// processes in separate page tables — and direct calls still work with the
// KPTI mitigation enabled in the Subkernel.
func TestSecMeltdownStylePageTables(t *testing.T) {
	eng, k, _, sb := newWorldWith(t, true)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	if server.PT.Root == client.PT.Root {
		t.Fatal("processes share a page table")
	}
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		resp, err := sb.DirectCall(env, id, Request{Regs: [4]uint64{5}})
		if err != nil || resp.Regs[0] != 10 {
			t.Errorf("direct call under KPTI: %v %v", resp, err)
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSecDoSTimeout (§7 "DoS Attacks"): covered functionally by
// TestDirectCallTimeout; here we additionally check the server's failure
// does not wedge the client for subsequent calls to other servers.
func TestSecDoSTimeout(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	good := k.NewProcess("good")
	evil := k.NewProcess("evil")
	client := k.NewProcess("client")
	goodID := registerEcho(t, eng, k, sb, good, k.Mach.Cores[0])

	var evilID int
	evil.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		evilID, _ = sb.RegisterServer(env, 4, 0, func(env *mk.Env, req Request) Response {
			env.Compute(50_000_000) // never returns in time
			return Response{}
		})
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		sb.RegisterClient(env, goodID)
		sb.RegisterClient(env, evilID)
		if _, err := sb.DirectCallTimeout(env, evilID, Request{}, 10_000); !errors.Is(err, ErrTimeout) {
			t.Errorf("timeout: %v", err)
		}
		// The client is still functional against the good server.
		resp, err := sb.DirectCall(env, goodID, Request{Regs: [4]uint64{3}})
		if err != nil || resp.Regs[0] != 6 {
			t.Errorf("call after DoS: %v %v", resp, err)
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSecMaliciousServerCall (§7 "Malicious Server Call"): the EPTP list
// necessarily holds the server's dependencies, so a client CAN hardware-
// switch to a dependency it never registered with — but the library refuses
// (no binding), and a protocol-level call without the issued key is denied
// by the dependency's calling-key table.
func TestSecMaliciousServerCall(t *testing.T) {
	eng, k, rk, sb := newWorld(t)
	s2 := k.NewProcess("s2") // the sensitive dependency
	s1 := k.NewProcess("s1")
	client := k.NewProcess("client")
	core0 := k.Mach.Cores[0]

	var id1, id2 int
	s2.Spawn("reg", core0, func(env *mk.Env) {
		id2, _ = sb.RegisterServer(env, 4, 0, func(env *mk.Env, req Request) Response {
			return Response{Regs: [4]uint64{0x5EC12E7}}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s1.Spawn("reg", core0, func(env *mk.Env) {
		id1, _ = sb.RegisterServer(env, 4, 0, func(env *mk.Env, req Request) Response {
			r, err := sb.DirectCall(env, id2, Request{})
			if err != nil {
				return Response{}
			}
			return r
		})
		sb.RegisterClient(env, id2) // s1 legitimately depends on s2
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}

	client.Spawn("cli", core0, func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id1); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		// The legitimate nested path works.
		resp, err := sb.DirectCall(env, id1, Request{})
		if err != nil || resp.Regs[0] != 0x5EC12E7 {
			t.Errorf("nested path: %v %v", resp, err)
		}
		// The library refuses a direct call to the dependency.
		if _, err := sb.DirectCall(env, id2, Request{}); !errors.Is(err, ErrNotRegistered) {
			t.Errorf("unregistered dependency call: %v", err)
		}
		// The client CAN hardware-switch to s2's view (the EPTP list must
		// contain it for nesting) — the paper concedes this — but it holds
		// no calling key for s2, so a protocol-level call is denied.
		slot, _, err := rk.ResolveSlot(env.T.Core, client, id2, []int{0})
		if err != nil {
			t.Errorf("resolve dep slot: %v", err)
			return
		}
		if err := env.T.Core.VMFunc(0, slot); err != nil {
			t.Errorf("hardware switch to dependency failed: %v", err)
			return
		}
		env.T.Core.VMFunc(0, 0)
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSecCallingKeysUnique: each connection gets its own 8-byte key, so a
// leaked key only exposes the leaker's own connection (§4.4).
func TestSecCallingKeysUnique(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
	keys := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		c := k.NewProcess("c")
		c.Spawn("r", k.Mach.Cores[0], func(env *mk.Env) {
			conn, err := sb.RegisterClient(env, id)
			if err != nil {
				t.Errorf("register: %v", err)
				return
			}
			if keys[conn.ServerKey] {
				t.Error("duplicate calling key issued")
			}
			keys[conn.ServerKey] = true
		})
		if err := k.Eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	_ = eng
}

// TestSecStolenKeyFromAnotherConnection: presenting another connection's
// valid key is still rejected, because the trampoline checks the slot bound
// to *this* connection.
func TestSecStolenKeyFromAnotherConnection(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	victim := k.NewProcess("victim")
	thief := k.NewProcess("thief")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	var victimKey uint64
	victim.Spawn("r", k.Mach.Cores[0], func(env *mk.Env) {
		conn, _ := sb.RegisterClient(env, id)
		victimKey = conn.ServerKey
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	thief.Spawn("r", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		if _, err := sb.DirectCallWithKey(env, id, Request{}, victimKey); !errors.Is(err, ErrBadKey) {
			t.Errorf("stolen key accepted: %v", err)
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}
