package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
)

// Asynchronous submission/completion rings: an io_uring-style IPC mode
// over the existing per-pair shared buffer. The client enqueues up to QD
// requests into a single-producer/single-consumer submission ring without
// trampolining; the server's poll thread drains them on its own core and
// posts results to a completion ring the client reaps. The only crossing
// left on the path is the *doorbell* — one trampoline+VMFUNC round trip
// that hands a sleeping server the current ring tail — and the adaptive
// wakeup policy (mk.AdaptiveWait) makes even that rare: a busy server
// polls the ring through shared memory and no crossing happens at all.
//
// Security parity with the synchronous paths is preserved:
//
//   - every doorbell crossing presents the connection's calling key and
//     the server-side trampoline checks it against the calling-key table,
//     exactly like DirectCall (one check per crossing — the key
//     authenticates the connection, not the individual request);
//   - every ring entry's payload length is bounds-checked on both sides:
//     the server rejects submissions whose length or sequence tag escapes
//     their slot (RingStatusBadEntry, without dying), and the client
//     validates every completion index, sequence tag, and length against
//     its own cursors before touching payload memory, so a malicious
//     server can fail a Reap with ErrRingCorrupt but never redirect it.
//
// Ring layout inside the 4-page shared buffer (offsets in bytes):
//
//	0     sqTail       (control word, one cache line each)
//	64    cqTail
//	128   needDoorbell (server arms before sleeping)
//	192   clientWait   (client arms before sleeping)
//	256   QD submission entries (48 B each)
//	      QD completion entries (48 B each, line-aligned base)
//	      QD payload slots (SlotLen each, line-aligned, >= 256 B)
//
// Indices are free-running uint32 sequence numbers (slot = seq % QD), so
// full/empty never ambiguate and wraparound is a modulo, not a state.
const (
	// MaxQD bounds a ring's queue depth so control words + two entry
	// rings + MaxQD minimum slots always fit the smallest shared buffer.
	MaxQD = 32

	// Control-word offsets, one per cache line so the two sides' polling
	// does not false-share.
	ctlSQTail       = 0 * hw.LineSize
	ctlCQTail       = 1 * hw.LineSize
	ctlNeedDoorbell = 2 * hw.LineSize
	ctlClientWait   = 3 * hw.LineSize
	ringCtlBytes    = 4 * hw.LineSize

	// ringEntryLen is one submission or completion entry: 4 argument/
	// result registers, a payload length, a sequence tag, and padding.
	ringEntryLen = 48
	// ringSlotMin mirrors batchSlotMin: every slot leaves room for a
	// reply the client cannot size in advance.
	ringSlotMin = batchSlotMin
	// costRingDispatch is the server's per-entry bookkeeping beyond the
	// charged entry reads and writes (same work as the batch path).
	costRingDispatch = costBatchDispatch
)

// RingStatusBadEntry is echoed in Regs[0] of a completion whose
// submission entry failed the server-side bounds check (length or
// sequence tag outside its slot). No handler status uses this value.
const RingStatusBadEntry = ^uint64(0)

// RingStatusBadTenant is echoed in Regs[0] of a completion whose
// submission entry carried a tenant tag different from the tenant the
// ring was issued to (a forged tenant ID — the tag is client-writable
// ring memory, but the binding checked here is server-side state set at
// ring-open time, which the client cannot touch). No handler runs and no
// other tenant's slots are read or written.
const RingStatusBadTenant = ^uint64(1)

// Async-ring errors.
var (
	ErrRingFull    = errors.New("core: submission ring full")
	ErrRingCorrupt = errors.New("core: completion ring failed client-side validation")
)

// Completion is one reaped result.
type Completion struct {
	Regs [4]uint64
	Len  int
	Seq  uint32
	// Data is the reply payload, copied out of the ring slot (nil when
	// Len == 0).
	Data []byte
}

// ringSink is the drain side a ring belongs to: the registered server
// whose handler runs, the parker its doorbell kicks, and the served/bad
// counters. Both RingServer (one flat poll loop) and Frontend (the
// multi-tenant directory drain, mpsc.go) embed one, so a ring never needs
// to know which kind of loop drains it.
type ringSink struct {
	srv    *Server
	parker mk.Parker

	// Served counts completions written; Bad counts submissions rejected
	// by the server-side bounds check (or the tenant-tag check).
	Served uint64
	Bad    uint64
}

// RingServer is the server half of the asynchronous path: one poll
// thread (Serve) draining every ring attached to one registered server.
type RingServer struct {
	ringSink
	rings  []*AsyncRing
	pol    mk.WakePolicy
	closed bool
}

// NewRingServer attaches an asynchronous poll loop to a registered
// server. Clients then open rings against it with OpenRing, and the
// server process runs rs.Serve on a dedicated thread.
func (sb *SkyBridge) NewRingServer(serverID int, pol mk.WakePolicy) (*RingServer, error) {
	srv, ok := sb.servers[serverID]
	if !ok {
		return nil, ErrNoSuchServer
	}
	if sb.ringServers[serverID] != nil {
		return nil, fmt.Errorf("core: server %d already has a ring server", serverID)
	}
	rs := &RingServer{ringSink: ringSink{srv: srv}, pol: pol}
	sb.ringServers[serverID] = rs
	return rs, nil
}

// AsyncRing is the client handle of one submission/completion ring pair,
// laid out in the client's existing connection buffer to serverID.
type AsyncRing struct {
	sb       *SkyBridge
	conn     *Connection
	sink     *ringSink
	serverID int

	QD      int
	SlotLen int

	sqeBase int
	cqeBase int
	payBase int

	// Tenant binding (frontend rings only): tagged rings carry the tenant
	// ID in every submission entry, and the drain rejects entries whose
	// tag differs from the server-side binding (RingStatusBadTenant).
	tagged bool
	tenant uint32
	// handler, when non-nil, overrides the server's registered handler
	// for this ring (the frontend binds the authenticated tenant here).
	handler Handler

	// Directory binding (frontend rings only): the client's view of the
	// frontend's ring-of-rings directory page. Flush sets this ring's
	// active bit and reads the server-sleeping flag instead of the
	// per-ring needDoorbell word (mpsc.go).
	dirVA   hw.VA
	dirWord int
	dirMask uint64

	// Client cursors (free-running): subSeq counts submissions, reapSeq
	// reaped completions, lastCQ the last validated cqTail observation.
	subSeq  uint32
	reapSeq uint32
	lastCQ  uint32

	// srvSeq is the server poll loop's drain cursor.
	srvSeq uint32

	// claimed marks a drain (owner sweep, stealing sibling, final or
	// pre-park drain) currently inside serveDrainMax on this ring.
	// Host-side state flipped with no intervening checkpoint, so it is
	// atomic in simulated time; it guarantees one drainer per ring at a
	// time, which is what keeps per-tenant FIFO order across steals.
	claimed bool

	pol       mk.WakePolicy
	cliParker mk.Parker

	// callObs, when non-nil, overrides sb.Calls as this ring's
	// attribution sink (SetObserver) — the tenants sweep splits hot and
	// cold tenant classes into separate breakdowns this way.
	callObs *obs.CallObserver

	depth     *obs.Histogram
	occupancy obs.Gauge

	// ringID seeds this ring's deterministic flow IDs (creation order).
	ringID uint32

	// Host-side per-slot attribution stamps, indexed seq % QD and valid
	// for a sequence from its Submit until it is reaped (Submit of seq
	// s+QD cannot happen before s is reaped, so slots never alias live
	// sequences). Allocated — and written — only when a CallObserver is
	// attached; tracing alone uses none of them.
	subT   []uint64 // Submit entry time
	pubT   []uint64 // tail-publish time (Submit exit)
	flushT []uint64 // time the submission was made visible (Flush/doorbell)
	svcS   []uint64 // server handler start
	svcE   []uint64 // server handler end
	svcSeq []uint32 // sequence the svcS/svcE slot entry belongs to
	// flushSeq is the first sequence not yet covered by a Flush.
	flushSeq uint32

	// Client-side stats.
	Submitted        uint64
	Reaped           uint64
	Doorbells        uint64 // crossings actually taken
	DoorbellsSkipped uint64 // flushes that found the server awake
}

func alignLine(n int) int { return (n + hw.LineSize - 1) &^ (hw.LineSize - 1) }

// OpenRing lays a ring pair of depth qd with payload slots of at least
// payloadCap bytes over the calling client's connection to serverID (the
// client must have registered first, and the server must have a
// RingServer). The control words are zeroed with charged writes.
func (sb *SkyBridge) OpenRing(env *mk.Env, serverID, qd, payloadCap int, pol mk.WakePolicy) (*AsyncRing, error) {
	conn, ok := sb.bindings[env.P][serverID]
	if !ok {
		return nil, ErrNotRegistered
	}
	rs := sb.ringServers[serverID]
	if rs == nil {
		return nil, fmt.Errorf("core: server %d has no ring server", serverID)
	}
	r, err := sb.newRing(conn, &rs.ringSink, serverID, qd, payloadCap, pol)
	if err != nil {
		return nil, err
	}
	var zero [8]byte
	for _, off := range []int{ctlSQTail, ctlCQTail, ctlClientWait} {
		env.Write(conn.ClientBuf+hw.VA(off), zero[:], 8)
	}
	// A new ring starts with its doorbell armed: the poll thread may have
	// parked before this ring existed (its arm pass could not flag it), so
	// the first Flush must take the crossing unconditionally. The server's
	// next disarm clears it.
	writeCtl(env, conn.ClientBuf, ctlNeedDoorbell, 1)
	rs.rings = append(rs.rings, r)
	return r, nil
}

// newRing validates parameters, computes the ring layout over conn's
// shared buffer, and constructs the client handle bound to sink. An
// overflowing layout reports the computed bases, not just the inputs —
// sizing failures at high tenant counts are otherwise undiagnosable.
func (sb *SkyBridge) newRing(conn *Connection, sink *ringSink, serverID, qd, payloadCap int, pol mk.WakePolicy) (*AsyncRing, error) {
	if qd < 1 || qd > MaxQD {
		return nil, fmt.Errorf("core: ring depth %d (max %d)", qd, MaxQD)
	}
	if payloadCap < 0 {
		return nil, fmt.Errorf("core: negative ring payload capacity %d", payloadCap)
	}
	// Same early guard as Layout: bound the capacity before any rounding
	// arithmetic can wrap.
	if payloadCap > conn.BufLen {
		return nil, fmt.Errorf("core: ring payload capacity %d exceeds shared buffer %d",
			payloadCap, conn.BufLen)
	}
	if payloadCap < ringSlotMin {
		payloadCap = ringSlotMin
	}
	slot := alignLine(payloadCap)
	sqeBase := ringCtlBytes
	cqeBase := alignLine(sqeBase + qd*ringEntryLen)
	payBase := alignLine(cqeBase + qd*ringEntryLen)
	if end := payBase + qd*slot; end > conn.BufLen {
		return nil, fmt.Errorf("core: ring layout overflows shared buffer: "+
			"qd %d x %d-byte slots need %d bytes (sqes at %d, cqes at %d, payload at %d) but the buffer holds %d",
			qd, slot, end, sqeBase, cqeBase, payBase, conn.BufLen)
	}
	sb.ringSeq++
	r := &AsyncRing{
		sb: sb, conn: conn, sink: sink, serverID: serverID,
		QD: qd, SlotLen: slot,
		sqeBase: sqeBase, cqeBase: cqeBase, payBase: payBase,
		pol:    pol,
		ringID: sb.ringSeq,
	}
	if sb.Calls != nil {
		r.allocStamps()
	}
	name := fmt.Sprintf("async.%s.s%d", conn.Client.Name, serverID)
	r.depth = sb.K.Mach.Obs.Histogram(name + ".depth")
	r.occupancy = sb.K.Mach.Obs.Gauge(name + ".occupancy")
	return r, nil
}

// allocStamps lazily allocates the host-side per-slot attribution stamps.
func (r *AsyncRing) allocStamps() {
	if r.subT != nil {
		return
	}
	qd := r.QD
	r.subT = make([]uint64, qd)
	r.pubT = make([]uint64, qd)
	r.flushT = make([]uint64, qd)
	r.svcS = make([]uint64, qd)
	r.svcE = make([]uint64, qd)
	r.svcSeq = make([]uint32, qd)
	for i := range r.svcSeq {
		r.svcSeq[i] = ^uint32(0) // no sequence served into this slot yet
	}
}

// SetObserver redirects this ring's phase-attribution records to o
// instead of the facility-wide sb.Calls sink (nil restores the default).
// Benches use it to split tenant classes into separate breakdowns.
func (r *AsyncRing) SetObserver(o *obs.CallObserver) {
	r.callObs = o
	if o != nil {
		r.allocStamps()
	}
}

// observer returns the ring's attribution sink: the per-ring override
// when set, else the facility-wide one.
func (r *AsyncRing) observer() *obs.CallObserver {
	if r.callObs != nil {
		return r.callObs
	}
	return r.sb.Calls
}

// Tenant returns the ring's bound tenant ID (frontend rings; 0, false
// for plain rings).
func (r *AsyncRing) Tenant() (int, bool) { return int(r.tenant), r.tagged }

// encodeRingEntry packs an entry: regs, payload length, sequence tag, and
// the tenant tag (bytes 40:44 of the former padding; zero on untagged
// rings).
func encodeRingEntry(regs [4]uint64, plen int, seq, tenant uint32) []byte {
	b := make([]byte, ringEntryLen)
	for i, r := range regs {
		binary.LittleEndian.PutUint64(b[8*i:], r)
	}
	binary.LittleEndian.PutUint32(b[32:], uint32(plen))
	binary.LittleEndian.PutUint32(b[36:], seq)
	binary.LittleEndian.PutUint32(b[40:], tenant)
	return b
}

// decodeRingEntry unpacks an entry. The length converts through int32 so
// garbage in the high bit surfaces as a negative (rejectable) length.
func decodeRingEntry(b []byte) (regs [4]uint64, plen int, seq, tenant uint32) {
	for i := range regs {
		regs[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return regs, int(int32(binary.LittleEndian.Uint32(b[32:]))),
		binary.LittleEndian.Uint32(b[36:]), binary.LittleEndian.Uint32(b[40:])
}

// readCtl/writeCtl access one control word with a charged 8-byte memory
// operation from the given side of the buffer.
func readCtl(env *mk.Env, base hw.VA, off int) uint32 {
	var b [8]byte
	env.Read(base+hw.VA(off), b[:], 8)
	return binary.LittleEndian.Uint32(b[:])
}

func writeCtl(env *mk.Env, base hw.VA, off int, v uint32) {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:], v)
	env.Write(base+hw.VA(off), b[:], 8)
}

// flowID returns the deterministic flow ID of submission seq on this
// ring: ring creation order in the middle bits, the free-running
// submission sequence in the low bits.
func (r *AsyncRing) flowID(seq uint32) uint64 {
	return obs.FlowAsync | uint64(r.ringID)<<32 | uint64(seq)
}

// Inflight returns submissions not yet reaped.
func (r *AsyncRing) Inflight() int { return int(r.subSeq - r.reapSeq) }

// Depth returns the ring's queue-depth histogram (one Observe per
// Submit, of the post-submit in-flight count).
func (r *AsyncRing) Depth() *obs.Histogram { return r.depth }

// SlotVA returns the client VA of the payload slot the *next* Submit
// will use; callers staging payloads in place write there and pass the
// same VA as Request.Buf to skip the copy.
func (r *AsyncRing) SlotVA() hw.VA {
	return r.conn.ClientBuf + hw.VA(r.payBase+int(r.subSeq%uint32(r.QD))*r.SlotLen)
}

// Submit enqueues one request without crossing: payload into its slot,
// entry into the submission ring, tail published. ErrRingFull when QD
// submissions are already in flight (reap first). The submission only
// becomes *guaranteed* visible to a sleeping server after Flush.
func (r *AsyncRing) Submit(env *mk.Env, req Request) error {
	if r.Inflight() >= r.QD {
		return ErrRingFull
	}
	if req.Len < 0 || req.Len > r.SlotLen {
		return fmt.Errorf("core: ring payload %d exceeds slot %d", req.Len, r.SlotLen)
	}
	cpu := env.T.Core
	t0 := cpu.Clock
	if tr := cpu.Trace; tr != nil {
		tr.FlowStart(t0, r.flowID(r.subSeq), "flow.async", "flow")
	}
	idx := int(r.subSeq % uint32(r.QD))
	slotVA := r.conn.ClientBuf + hw.VA(r.payBase+idx*r.SlotLen)
	if req.Len > 0 && req.Buf != slotVA {
		data := make([]byte, req.Len)
		env.Read(req.Buf, data, req.Len)
		env.Write(slotVA, data, req.Len)
	}
	env.Write(r.conn.ClientBuf+hw.VA(r.sqeBase+idx*ringEntryLen),
		encodeRingEntry(req.Regs, req.Len, r.subSeq, r.tenant), ringEntryLen)
	r.subSeq++
	writeCtl(env, r.conn.ClientBuf, ctlSQTail, r.subSeq)
	r.Submitted++
	if r.subT != nil {
		// Until a Flush covers it, the publish time doubles as the
		// visibility time (an awake server sees the tail write itself).
		r.subT[idx] = t0
		r.pubT[idx] = cpu.Clock
		r.flushT[idx] = cpu.Clock
	}
	d := uint64(r.Inflight())
	r.depth.Observe(d)
	r.occupancy.Set(d)
	return nil
}

// Flush makes pending submissions visible to the server: if the server's
// poll loop is awake (needDoorbell clear) the shared-memory tail write
// already did the job and no crossing happens; if the server armed its
// doorbell flag before sleeping, Flush performs the doorbell crossing.
// The sqTail write in Submit precedes this flag read (Dekker order
// against the server's arm -> re-check -> park sequence), so a sleeping
// server is always either doorbelled or about to see the tail itself.
func (r *AsyncRing) Flush(env *mk.Env) error {
	if r.dirVA != 0 {
		// Frontend ring: publish through the directory (set the active
		// bit, doorbell only if the drain loop declared itself asleep).
		return r.flushDir(env)
	}
	if readCtl(env, r.conn.ClientBuf, ctlNeedDoorbell) == 0 {
		r.DoorbellsSkipped++
		r.sb.RingDoorbellsSkipped++
		// The tail write already made these visible; their publish stamp
		// stands as the visibility time.
		r.flushSeq = r.subSeq
		return nil
	}
	return r.doorbell(env, 0, false)
}

// Doorbell forces the crossing regardless of the server's armed state
// (tests and callers that want the trampoline on every flush).
func (r *AsyncRing) Doorbell(env *mk.Env) error { return r.doorbell(env, 0, false) }

// DoorbellWithKey lets tests present an arbitrary calling key on the
// crossing (modelling a malicious client); normal clients always present
// their issued key.
func (r *AsyncRing) DoorbellWithKey(env *mk.Env, key uint64) error {
	return r.doorbell(env, key, true)
}

// doorbell is the one remaining crossing of the asynchronous path: a
// trampoline+VMFUNC round trip into the server's EPT view that presents
// the calling key, reads the submission tail from the server side of the
// buffer, and kicks the parked poll thread (IPI if cross-core). Cost
// structure mirrors call(): the crossing itself is a full DirectCall
// round trip minus the handler.
func (r *AsyncRing) doorbell(env *mk.Env, forcedKey uint64, useForced bool) error {
	sb, conn, srv := r.sb, r.conn, r.sink.srv
	cpu := env.T.Core
	env.T.Checkpoint()
	env.Enter()

	tr := cpu.Trace
	span := tr.Begin(cpu.Clock, "skybridge.doorbell", "core")

	// Tag the crossing with the oldest submission this doorbell makes
	// visible, so the IPI and any EPTP work join that call's flow chain.
	if r.flushSeq != r.subSeq {
		cpu.FlowID = r.flowID(r.flushSeq)
		defer func() { cpu.FlowID = 0 }()
	}

	// --- client-side trampoline ---
	if err := cpu.TouchCode(TrampolineVA, trampEntryLen); err != nil {
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return fmt.Errorf("core: trampoline fetch: %w", err)
	}
	cpu.Tick(costSaveRegs)
	clientKey := sb.rng.Uint64()
	cpu.Tick(6)
	presented := conn.ServerKey
	if useForced {
		presented = forcedKey
	}

	tc := sb.tc[env.T]
	if tc == nil {
		tc = &threadCtx{proc: env.P, stack: []int{0}}
		sb.tc[env.T] = tc
	}
	sb.ensureContext(cpu, tc)
	slot, _, err := sb.RK.ResolveSlot(cpu, tc.proc, r.serverID, tc.stack)
	if err != nil {
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return fmt.Errorf("core: slot resolve for server %d: %w", r.serverID, err)
	}

	// --- the EPTP switch ---
	if err := cpu.VMFunc(0, slot); err != nil {
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return fmt.Errorf("core: vmfunc to server %d (slot %d): %w", r.serverID, slot, err)
	}
	sb.afterSwitch(cpu)
	tc.stack = append(tc.stack, slot)

	// --- server-side trampoline: calling-key check, every crossing ---
	cpu.Tick(costInstallStack)
	var kb [8]byte
	senv := env.DirectEnv(srv.Proc)
	senv.Read(srv.keyTable+hw.VA(8*conn.slot), kb[:], 8)
	cpu.Tick(4)
	if leU64(kb) != presented {
		srv.Rejected++
		cpu.Syscall()
		cpu.Swapgs()
		cpu.Tick(50)
		cpu.Swapgs()
		cpu.Sysret()
		sb.switchBack(env, tc)
		tr.End(span, cpu.Clock, obs.U("bad_key", 1))
		return ErrBadKey
	}

	// Hand over the ring tail (read back through the server's view) and
	// kick the parked poll thread awake.
	_ = readCtl(senv, conn.ServerBuf, ctlSQTail)
	sb.K.WakeParker(cpu, &r.sink.parker)

	// --- return thunk ---
	if err := cpu.TouchCode(trampReturnVA, trampReturnLen); err != nil {
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return fmt.Errorf("core: return thunk fetch: %w", err)
	}
	cpu.Tick(costRestoreRegs)
	sb.switchBack(env, tc)
	echoed := clientKey
	cpu.Tick(6)
	if echoed != clientKey {
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return ErrReturnKey
	}
	r.Doorbells++
	sb.RingDoorbells++
	if r.flushT != nil {
		for s := r.flushSeq; s != r.subSeq; s++ {
			r.flushT[s%uint32(r.QD)] = cpu.Clock
		}
	}
	r.flushSeq = r.subSeq
	tr.End(span, cpu.Clock, obs.U("server", uint64(r.serverID)))
	return nil
}

// availCompletions reads the completion tail and validates it against the
// client's cursors: a tail that regresses behind an earlier observation,
// or runs ahead of what was actually submitted, means the server
// fabricated completions (completion-before-submission) and the ring is
// declared corrupt.
func (r *AsyncRing) availCompletions(env *mk.Env) (uint32, error) {
	tail := readCtl(env, r.conn.ClientBuf, ctlCQTail)
	if int32(tail-r.lastCQ) < 0 {
		return 0, fmt.Errorf("%w: completion tail moved backwards (%d after %d)",
			ErrRingCorrupt, tail, r.lastCQ)
	}
	if d := tail - r.reapSeq; d > r.subSeq-r.reapSeq {
		return 0, fmt.Errorf("%w: completion tail %d ahead of submissions (reaped %d, submitted %d)",
			ErrRingCorrupt, tail, r.reapSeq, r.subSeq)
	}
	r.lastCQ = tail
	return tail - r.reapSeq, nil
}

// Reap collects completions: it waits (adaptively — spin, then HLT with
// the clientWait flag armed) until at least minN are available, then
// reaps *everything* available. minN of 0 never blocks. Callers must
// Flush before a blocking Reap, or a sleeping server may never see the
// submissions being waited on. Every completion is validated before its
// payload is read: sequence tag must match the expected cursor and the
// length must fit the slot — a malicious server writing out-of-bounds
// completion indices or lengths yields ErrRingCorrupt, never an
// out-of-slot read.
func (r *AsyncRing) Reap(env *mk.Env, minN int) ([]Completion, error) {
	if minN > r.Inflight() {
		return nil, fmt.Errorf("core: reap of %d with only %d in flight", minN, r.Inflight())
	}
	avail, err := r.availCompletions(env)
	if err != nil {
		return nil, err
	}
	// AdaptiveWait's ready closure refreshes avail while spinning, but a
	// parked thread returns on the waker's kick *without* a final ready
	// call — so re-read the tail after every wait and loop until the
	// quorum is really there (a spurious wake just waits again).
	// totSpin/totDelivery accumulate the waits' cycle decomposition for
	// the attribution records; wake remembers how the last wait resolved.
	var totSpin, totDelivery uint64
	var wake mk.WakeKind
	for int(avail) < minN {
		var verr error
		env.AdaptiveWait(&r.cliParker, r.pol, func() bool {
			avail, verr = r.availCompletions(env)
			return verr != nil || int(avail) >= minN
		}, func() {
			writeCtl(env, r.conn.ClientBuf, ctlClientWait, 1)
		}, func() {
			writeCtl(env, r.conn.ClientBuf, ctlClientWait, 0)
		})
		totSpin += r.cliParker.Last.Spin
		totDelivery += r.cliParker.Last.Delivery
		wake = r.cliParker.Last.Kind
		if verr == nil && int(avail) < minN {
			avail, verr = r.availCompletions(env)
		}
		if verr != nil {
			return nil, verr
		}
	}
	if avail == 0 {
		return nil, nil
	}
	out := make([]Completion, 0, avail)
	hdr := make([]byte, ringEntryLen)
	for ; r.reapSeq != r.lastCQ; r.reapSeq++ {
		idx := int(r.reapSeq % uint32(r.QD))
		env.Read(r.conn.ClientBuf+hw.VA(r.cqeBase+idx*ringEntryLen), hdr, ringEntryLen)
		regs, plen, seq, _ := decodeRingEntry(hdr)
		if seq != r.reapSeq {
			return nil, fmt.Errorf("%w: completion %d carries sequence tag %d",
				ErrRingCorrupt, r.reapSeq, seq)
		}
		if plen < 0 || plen > r.SlotLen {
			return nil, fmt.Errorf("%w: completion %d length %d exceeds slot %d",
				ErrRingCorrupt, r.reapSeq, plen, r.SlotLen)
		}
		c := Completion{Regs: regs, Len: plen, Seq: r.reapSeq}
		if plen > 0 {
			c.Data = make([]byte, plen)
			env.Read(r.conn.ClientBuf+hw.VA(r.payBase+idx*r.SlotLen), c.Data, plen)
		}
		if tr := env.T.Core.Trace; tr != nil {
			tr.FlowEnd(env.T.Core.Clock, r.flowID(r.reapSeq), "flow.async", "flow")
		}
		out = append(out, c)
		r.Reaped++
	}
	r.occupancy.Set(uint64(r.Inflight()))
	if o := r.observer(); o != nil && r.subT != nil {
		r.observeReaped(env.T.Core.Clock, out, totSpin, totDelivery, wake, o)
	}
	return out, nil
}

// observeReaped assembles one attribution record per completion just
// reaped. Each record partitions the call's [submit, reap-return) span
// with a clamped monotone boundary chain, so the phases sum to the
// end-to-end latency exactly even though client spinning overlaps server
// service in wall time:
//
//	b0 submit entry    -> crossing   -> b1 visibility (publish/doorbell)
//	b1                 -> ring_wait  -> b2 handler start (clamped)
//	b2                 -> service    -> b3 handler end (clamped)
//	b3                 -> wakeup     -> b4 = b3 + delivery (clamped)
//	b4                 -> client_spin-> b5 = b4 + spin (clamped)
//	b5                 -> reap_delay -> end
//
// The wait cycles (spin, delivery) accumulated across this Reap's
// AdaptiveWaits are carved out of each record's post-service tail;
// whatever remains is the time the finished completion sat unreaped.
func (r *AsyncRing) observeReaped(end uint64, out []Completion, spin, delivery uint64, wake mk.WakeKind, o *obs.CallObserver) {
	qd := uint32(r.QD)
	for i := range out {
		seq := out[i].Seq
		idx := seq % qd
		b0 := r.subT[idx]
		b1 := clampRange(r.flushT[idx], b0, end)
		b2, b3 := b1, b1
		if r.svcSeq[idx] == seq {
			b2 = clampRange(r.svcS[idx], b1, end)
			b3 = clampRange(r.svcE[idx], b2, end)
		}
		b4 := b3 + min64(delivery, end-b3)
		b5 := b4 + min64(spin, end-b4)
		rec := obs.CallRecord{
			Flow: r.flowID(seq), Kind: obs.CallAsync, Seq: uint64(seq),
			Server: r.serverID, Start: b0, End: end, Wake: uint8(wake),
		}
		rec.Phases[obs.PhaseCrossing] = b1 - b0
		rec.Phases[obs.PhaseRingWait] = b2 - b1
		rec.Phases[obs.PhaseService] = b3 - b2
		rec.Phases[obs.PhaseWakeup] = b4 - b3
		rec.Phases[obs.PhaseClientSpin] = b5 - b4
		rec.Phases[obs.PhaseReapDelay] = end - b5
		o.Observe(&rec)
	}
}

func clampRange(v, lo, hi uint64) uint64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Serve is the server's poll loop: drain every attached ring, and when
// all are empty wait adaptively — spin reading the submission tails, then
// arm the doorbell flags and HLT until a client's doorbell (or Close)
// kicks the thread. Runs on a dedicated thread of the server process;
// returns nil after Close once the rings are drained, or the first
// dispatch error.
func (rs *RingServer) Serve(env *mk.Env) error {
	if env.P != rs.srv.Proc {
		return fmt.Errorf("core: ring server for %s serving from process %s",
			rs.srv.Proc.Name, env.P.Name)
	}
	for {
		env.T.Checkpoint()
		progressed := false
		for _, r := range rs.rings {
			n, err := r.serveDrain(env)
			if err != nil {
				return err
			}
			if n > 0 {
				progressed = true
			}
		}
		if progressed {
			continue
		}
		if rs.closed {
			return nil
		}
		env.AdaptiveWait(&rs.parker, rs.pol, func() bool {
			if rs.closed {
				return true
			}
			for _, r := range rs.rings {
				if readCtl(env, r.conn.ServerBuf, ctlSQTail) != r.srvSeq {
					return true
				}
			}
			return false
		}, func() {
			for _, r := range rs.rings {
				writeCtl(env, r.conn.ServerBuf, ctlNeedDoorbell, 1)
			}
		}, func() {
			for _, r := range rs.rings {
				writeCtl(env, r.conn.ServerBuf, ctlNeedDoorbell, 0)
			}
		})
	}
}

// Close marks the poll loop for shutdown and kicks it awake (shutdown
// bookkeeping: no IPI is modeled). The loop drains any remaining
// submissions before returning. Callers stop submitting first.
func (rs *RingServer) Close(env *mk.Env) {
	rs.closed = true
	env.K.CloseParker(env.T.Core, &rs.parker)
}

// serveDrain dispatches every pending submission of one ring (the flat
// RingServer loop has no per-ring quantum).
func (r *AsyncRing) serveDrain(env *mk.Env) (int, error) {
	n, _, err := r.serveDrainMax(env, r.QD)
	return n, err
}

// serveDrainMax dispatches up to max pending submissions of one ring:
// charged entry read, per-entry bounds validation (a client rewriting
// entries after submission must still confine its payload to its slot),
// tenant-tag validation on tagged rings, handler dispatch, completion
// write. The completion tail publishes once per drain, after which a
// parked reaper is kicked (cqTail write precedes the clientWait flag
// read — the Dekker pairing of Reap's arm sequence). It returns the
// count served and whether submissions remain past the quantum (the
// deficit-round-robin drain leaves the tenant's directory bit set then).
func (r *AsyncRing) serveDrainMax(env *mk.Env, max int) (int, bool, error) {
	cpu := env.T.Core
	srv := r.sink.srv
	tail := readCtl(env, r.conn.ServerBuf, ctlSQTail)
	if d := tail - r.srvSeq; d > uint32(r.QD) {
		// A malicious client advanced the tail beyond its own ring; clamp
		// to the window instead of chasing a fabricated cursor.
		tail = r.srvSeq + uint32(r.QD)
	}
	stop := tail
	if pending := int(tail - r.srvSeq); pending > max {
		stop = r.srvSeq + uint32(max)
	}
	n := 0
	tr := cpu.Trace
	hdr := make([]byte, ringEntryLen)
	for ; r.srvSeq != stop; r.srvSeq++ {
		cpu.Tick(costRingDispatch)
		if tr != nil {
			tr.FlowStep(cpu.Clock, r.flowID(r.srvSeq), "flow.drain", "flow")
		}
		idx := int(r.srvSeq % uint32(r.QD))
		env.Read(r.conn.ServerBuf+hw.VA(r.sqeBase+idx*ringEntryLen), hdr, ringEntryLen)
		regs, plen, seq, tenant := decodeRingEntry(hdr)
		if r.svcSeq != nil {
			r.svcS[idx] = cpu.Clock
			r.svcSeq[idx] = r.srvSeq
		}
		var out Response
		switch {
		case seq != r.srvSeq || plen < 0 || plen > r.SlotLen:
			srv.Rejected++
			r.sink.Bad++
			out = Response{Regs: [4]uint64{RingStatusBadEntry}}
		case r.tagged && tenant != r.tenant:
			// Forged tenant ID: the entry claims an identity other than
			// the one this ring was issued to. Reject without running the
			// handler — the request never acts under the forged tenant,
			// and no other tenant's ring or slots are touched.
			srv.Rejected++
			r.sink.Bad++
			out = Response{Regs: [4]uint64{RingStatusBadTenant}}
		default:
			srv.Calls++
			h := srv.Handler
			if r.handler != nil {
				h = r.handler
			}
			out = h(env, Request{
				Regs:      regs,
				Len:       plen,
				SharedBuf: r.conn.ServerBuf + hw.VA(r.payBase+idx*r.SlotLen),
			})
			if out.Len < 0 || out.Len > r.SlotLen {
				return n, false, fmt.Errorf("core: ring reply %d length %d exceeds slot %d",
					r.srvSeq, out.Len, r.SlotLen)
			}
		}
		if r.svcSeq != nil {
			r.svcE[idx] = cpu.Clock
		}
		if tr != nil {
			tr.FlowStep(cpu.Clock, r.flowID(r.srvSeq), "flow.service", "flow")
		}
		env.Write(r.conn.ServerBuf+hw.VA(r.cqeBase+idx*ringEntryLen),
			encodeRingEntry(out.Regs, out.Len, r.srvSeq, r.tenant), ringEntryLen)
		r.sink.Served++
		n++
	}
	if n > 0 {
		writeCtl(env, r.conn.ServerBuf, ctlCQTail, r.srvSeq)
		// The poll loop is demonstrably awake: clear a doorbell flag left
		// over from OpenRing (or a spurious arm) so flushes go back to the
		// crossing-free path.
		if r.dirVA == 0 && readCtl(env, r.conn.ServerBuf, ctlNeedDoorbell) != 0 {
			writeCtl(env, r.conn.ServerBuf, ctlNeedDoorbell, 0)
		}
		r.sb.RingOps += uint64(n)
		if readCtl(env, r.conn.ServerBuf, ctlClientWait) != 0 {
			writeCtl(env, r.conn.ServerBuf, ctlClientWait, 0)
			env.K.WakeParker(cpu, &r.cliParker)
		}
	}
	return n, r.srvSeq != tail, nil
}
