package core

import (
	"testing"

	"skybridge/internal/isa"
	"skybridge/internal/mk"
	"skybridge/internal/rewrite"
)

// TestManyServersWithSlotEviction exercises the §10 extension end to end:
// a client bound to more servers than the 512-entry hardware EPTP list can
// hold keeps making correct direct calls while the Rootkernel transparently
// evicts and reloads slots.
func TestManyServersWithSlotEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("builds 530 processes")
	}
	eng, k, rk, sb := newWorld(t)
	const nservers = 530
	client := k.NewProcess("client")
	core0 := k.Mach.Cores[0]

	ids := make([]int, nservers)
	for i := 0; i < nservers; i++ {
		i := i
		proc := k.NewProcess("srv")
		proc.Spawn("reg", core0, func(env *mk.Env) {
			id, err := sb.RegisterServer(env, 2, 0, func(env *mk.Env, req Request) Response {
				return Response{Regs: [4]uint64{req.Regs[0] + uint64(i)}}
			})
			if err != nil {
				t.Errorf("register %d: %v", i, err)
				return
			}
			ids[i] = id
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	client.Spawn("cli", core0, func(env *mk.Env) {
		for i, id := range ids {
			if _, err := sb.RegisterClient(env, id); err != nil {
				t.Errorf("bind %d: %v", i, err)
				return
			}
		}
		// Sweep every server twice: the second sweep re-faults the evicted
		// majority back in.
		for sweep := 0; sweep < 2; sweep++ {
			for i, id := range ids {
				resp, err := sb.DirectCall(env, id, Request{Regs: [4]uint64{100}})
				if err != nil {
					t.Errorf("sweep %d call %d: %v", sweep, i, err)
					return
				}
				if resp.Regs[0] != uint64(100+i) {
					t.Errorf("server %d returned %d, want %d", i, resp.Regs[0], 100+i)
					return
				}
			}
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rk.SlotEvictions() == 0 {
		t.Fatal("no slot evictions despite 530 bindings")
	}
	t.Logf("slot loads: %d, evictions: %d", rk.SlotLoads(), rk.SlotEvictions())
}

// TestRemapCodePagesRescansJITCode exercises the §9 W⊕X extension: code
// generated after registration is rescanned and rewritten when remapped
// executable.
func TestRemapCodePagesRescansJITCode(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	jit := k.NewProcess("jit")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	// Initial (clean) code.
	var a isa.Asm
	for i := 0; i < 8; i++ {
		a.Nop()
	}
	a.Hlt()
	jit.MapCode(a.Bytes())

	jit.Spawn("main", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		// "JIT" new code containing a self-prepared VMFUNC plus an
		// inadvertent encoding, then remap it executable.
		var g isa.Asm
		g.MovRI32(isa.RAX, 0)
		g.MovRI32(isa.RCX, int32(id))
		g.Vmfunc()
		g.AluRI(isa.ADD, isa.RBX, 0xD4010F)
		for i := 0; i < 8; i++ {
			g.Nop()
		}
		g.Hlt()
		if err := sb.RemapCodePages(env, g.Bytes()); err != nil {
			t.Errorf("remap: %v", err)
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := jit.ReadCode(); len(rewrite.FindPattern(got)) != 0 {
		t.Fatal("VMFUNC pattern survives in remapped JIT code")
	}
	if sb.Rewrites < 2 {
		t.Fatalf("Rewrites = %d; remap should rescan", sb.Rewrites)
	}
}

// TestRemapCodePagesRequiresRegistration: unregistered processes cannot use
// the remap interface.
func TestRemapCodePagesRequiresRegistration(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	p := k.NewProcess("stranger")
	p.Spawn("m", k.Mach.Cores[0], func(env *mk.Env) {
		if err := sb.RemapCodePages(env, []byte{0x90}); err == nil {
			t.Error("unregistered remap succeeded")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
