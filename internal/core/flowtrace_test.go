package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"skybridge/internal/mk"
	"skybridge/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestAsyncFlowChainGolden drives exactly one async call across two cores
// — client submit on core 0, parked server woken by the doorbell IPI on
// core 1, completion reaped back on core 0 — and pins the exported
// Perfetto flow chain: one flow id stitching start → steps → end across
// both tracks in timestamp order. Clocks are aligned before the measured
// call (the bench measurement protocol), so cross-core timestamps share
// one timeline.
func TestAsyncFlowChainGolden(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	tr := obs.NewTracer()
	k.Mach.AttachTrace(tr, "ipc")
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
	rs, err := sb.NewRingServer(id, mk.WakePolicy{})
	if err != nil {
		t.Fatal(err)
	}

	// Bind phase: register the client and open the ring, then align the
	// core clocks so the measured call's cross-core timestamps compare.
	var ring *AsyncRing
	client.Spawn("bind", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		ring, err = sb.OpenRing(env, id, 4, 64, mk.WakePolicy{})
		if err != nil {
			t.Errorf("open ring: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	k.Mach.AlignClocks()

	server.Spawn("poll", k.Mach.Cores[1], func(env *mk.Env) {
		if err := rs.Serve(env); err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	client.Spawn("drive", k.Mach.Cores[0], func(env *mk.Env) {
		defer rs.Close(env)
		// Idle until the cross-core poll thread exhausts its spin budget
		// and parks: the flush below must take the doorbell crossing and
		// IPI the server awake, putting the whole causal chain on record.
		for !rs.parker.Waiting() {
			env.T.Checkpoint()
			env.Compute(64)
		}
		if err := ring.Submit(env, Request{Regs: [4]uint64{41}}); err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		if err := ring.Flush(env); err != nil {
			t.Errorf("flush: %v", err)
			return
		}
		if _, err := ring.Reap(env, 1); err != nil {
			t.Errorf("reap: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
			Tid  int     `json:"tid"`
			ID   string  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}

	// The one submission on the first ring: seq 0 in ring 1's namespace.
	fid := obs.FlowAsync | uint64(1)<<32
	wantSuffix := fmt.Sprintf(".%x", fid)
	type flowEv struct {
		ph, name string
		tid      int
		ts       float64
	}
	var evs []flowEv
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "s" && ev.Ph != "t" && ev.Ph != "f" {
			continue
		}
		if !strings.HasSuffix(ev.ID, wantSuffix) {
			continue
		}
		evs = append(evs, flowEv{ev.Ph, ev.Name, ev.Tid, ev.Ts})
	}
	// The export is track-major; the causal chain reads in time order.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })

	var chain []string
	clientTid, serverTid := -1, -1
	for _, ev := range evs {
		switch ev.name {
		case "flow.async":
			clientTid = ev.tid
		case "flow.drain", "flow.service":
			serverTid = ev.tid
		}
		chain = append(chain, fmt.Sprintf("%s %s tid%d ts%d", ev.ph, ev.name, ev.tid, int64(ev.ts)))
	}
	if len(chain) < 4 {
		t.Fatalf("flow chain too short: %q", chain)
	}
	if first := chain[0]; !strings.HasPrefix(first, "s flow.async tid0") {
		t.Errorf("chain starts with %q, want the client's flow start", first)
	}
	if last := chain[len(chain)-1]; !strings.HasPrefix(last, "f flow.async tid0") {
		t.Errorf("chain ends with %q, want the client's flow end", last)
	}
	if clientTid < 0 || serverTid < 0 || clientTid == serverTid {
		t.Errorf("chain did not cross cores: client tid %d, server tid %d", clientTid, serverTid)
	}

	got := []byte(strings.Join(chain, "\n") + "\n")
	golden := filepath.Join("testdata", "flowchain_golden.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("flow chain differs from %s (run with -update to regenerate)\ngot:\n%s", golden, got)
	}
}
