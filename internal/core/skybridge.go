// Package core implements SkyBridge itself: the kernel-less synchronous
// IPC facility of the paper. A client registered to a server invokes the
// server's handler *directly*, on its own thread and scheduling quantum,
// by executing VMFUNC in user mode: the EPTP switch makes the hardware
// translate all subsequent virtual addresses through the server's page
// table (the Rootkernel remapped the client's CR3 GPA, §4.3), so no
// syscall, no scheduler, and no CR3 write appear anywhere on the path.
//
// The package implements the full §4 design:
//
//   - register_server / register_client_to_server / direct_server_call
//     (Figure 4's programming model);
//   - the trampoline (§4.4): register save/restore, shared-buffer copy for
//     long messages, VMFUNC, server stack installation, with per-step cycle
//     charging calibrated to the paper's 396-cycle round trip;
//   - per-process calling-key tables defending against illegal server
//     calls and illegal client returns, with the keys held in simulated
//     memory and checked with charged reads;
//   - per-connection shared buffers bound to server threads;
//   - binary scanning/rewriting of every registering process's code pages
//     (via internal/rewrite), closing the VMFUNC-faking attack;
//   - the timeout mechanism against denial-of-service servers (§7).
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"skybridge/internal/hv"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
	"skybridge/internal/rewrite"
	"skybridge/internal/sim"
)

// Architected virtual addresses.
const (
	// TrampolineVA is where the trampoline code page is mapped in every
	// registered process.
	TrampolineVA hw.VA = 0x20_0000
	// RewritePageVA is the rewriting page (second page of the address
	// space, §5.1).
	RewritePageVA hw.VA = hw.VA(rewrite.DefaultRewriteBase)
	// KeyTableVA is where a server's calling-key table page is mapped.
	KeyTableVA hw.VA = 0x21_0000
	// FuncListVA is where the server function list is mapped in clients.
	FuncListVA hw.VA = 0x22_0000
	// keyTableBigVA is where multi-page calling-key tables are mapped
	// (servers whose maxConns exceed the 512 keys of a single page —
	// e.g. a multi-tenant frontend). Single-page tables keep the
	// architected KeyTableVA slots; big tables allocate contiguously from
	// this region via a per-process cursor, far from text, heap, and the
	// architected pages.
	keyTableBigVA hw.VA = 0x3000_0000
)

// keysPerPage is how many 8-byte calling keys one table page holds.
const keysPerPage = hw.PageSize / 8

// Trampoline cost constants (cycles), calibrated so that a warm direct
// call round trip costs ~396 cycles: 2x VMFUNC (134 each) plus 2x ~64
// cycles of "all other operations, such as saving and restoring register
// values and installing the target stack" (§6.3).
const (
	costSaveRegs     = 40
	costRestoreRegs  = 30
	costInstallStack = 22
)

// Errors.
var (
	ErrBadKey        = errors.New("core: calling key rejected")
	ErrNoSuchServer  = errors.New("core: unknown server id")
	ErrConnLimit     = errors.New("core: server connection limit reached")
	ErrTimeout       = errors.New("core: direct call timed out")
	ErrReturnKey     = errors.New("core: client return-key mismatch")
	ErrNotRegistered = errors.New("core: process not registered to server")
)

// Handler is a server's registered function. env is a direct Env in the
// server's address space on the caller's thread; req.SharedBuf points at
// the connection's shared buffer in server VAs.
type Handler func(env *mk.Env, req Request) Response

// Request is the argument set of a direct server call.
type Request struct {
	Regs [4]uint64
	// Buf/Len locate a long payload in the *caller's* address space; the
	// trampoline copies it into the connection's shared buffer.
	Buf hw.VA
	Len int
	// Cap, when non-zero, is the reply payload capacity the caller expects
	// back. Batched calls size their ring slots from max(Len, Cap) so a
	// request with a small (or empty) payload can still receive a large
	// reply — e.g. a batched block read. Ignored by unbatched DirectCall,
	// whose replies use the whole shared buffer.
	Cap int
	// SharedBuf (set by the trampoline) is the server-side VA of the
	// connection's shared buffer holding the payload.
	SharedBuf hw.VA
}

// Response is the result of a direct server call. A long reply is written
// by the server into the shared buffer (at req.SharedBuf); Len tells the
// client how much to read back.
type Response struct {
	Regs [4]uint64
	Len  int
}

// Server is a registered SkyBridge server.
type Server struct {
	ID       int // global EPTP-list index, assigned by the Rootkernel
	Proc     *mk.Process
	Handler  Handler
	MaxConns int

	// FuncAddr is the registered handler address inside the server (the
	// trampoline "calls the server's registered function according to the
	// server ID").
	FuncAddr hw.VA

	// keyTableVAServer holds the calling-key table page (server VA space).
	keyTable hw.VA
	conns    []*Connection

	// Stats.
	Calls    uint64
	Rejected uint64
}

// Connection binds one client registration to a server: a dedicated server
// stack and a shared buffer mapped into both processes.
type Connection struct {
	Server *Server
	Client *mk.Process

	// ServerKey is the key the client presents on every call; it lives in
	// the server's calling-key table.
	ServerKey uint64

	// Shared buffer, mapped in both address spaces.
	BufFrames []hw.GPA
	ClientBuf hw.VA
	ServerBuf hw.VA
	BufLen    int

	// Stack is the server-side stack for this connection's calls.
	Stack hw.VA

	slot int // index in the server's key table
}

// SkyBridge ties a Subkernel and Rootkernel together into the IPC facility.
type SkyBridge struct {
	K  *mk.Kernel
	RK *hv.Rootkernel

	servers map[int]*Server
	// ringServers[serverID] is the asynchronous poll loop attached to a
	// server, if any (asyncring.go).
	ringServers map[int]*RingServer
	// frontends[serverID] is the multi-tenant directory drain attached to
	// a server, if any (mpsc.go).
	frontends map[int]*Frontend
	// bindings[client] lists the servers the client registered to.
	bindings map[*mk.Process]map[int]*Connection
	// tc tracks each thread's active direct-call chain: the EPT-context
	// process (the top-level client whose EPTP list and CR3 are live) and
	// the stack of hardware slots the chain has switched through. The
	// stack doubles as the pin set for LRU slot eviction (eptplru.go).
	tc map[*sim.Thread]*threadCtx

	rng *rand.Rand

	// FlushTLBOnSwitch models hardware without VPID tagging: every EPTP
	// switch flushes the TLBs. It exists only as the ablation baseline for
	// the VPID-tagged design (Table 2's 134-cycle VMFUNC depends on VPID).
	FlushTLBOnSwitch bool

	// Rewrites counts processes whose code was scanned and rewritten.
	Rewrites int
	// DirectCalls counts completed direct server calls (each request of a
	// batch counts as one call).
	DirectCalls uint64
	// BatchCalls counts batched crossings (DirectCallBatch with 2+
	// requests): one trampoline round trip serving several calls.
	BatchCalls uint64
	// RingOps counts requests served through asynchronous rings (no
	// crossing per request; see asyncring.go).
	RingOps uint64
	// RingDoorbells counts doorbell crossings taken; RingDoorbellsSkipped
	// counts flushes that found the server awake and crossed nothing.
	RingDoorbells        uint64
	RingDoorbellsSkipped uint64

	// Calls, when non-nil, receives one phase-attribution record per
	// completed sync, batch, and async call (observability layer; see
	// obs.CallObserver). Nil costs one pointer test per call.
	Calls *obs.CallObserver

	// ringSeq numbers opened rings in creation order; it seeds the
	// deterministic flow IDs of async submissions.
	ringSeq uint32
}

// New creates the SkyBridge facility over a booted Rootkernel.
func New(k *mk.Kernel, rk *hv.Rootkernel) *SkyBridge {
	sb := &SkyBridge{
		K:           k,
		RK:          rk,
		servers:     make(map[int]*Server),
		ringServers: make(map[int]*RingServer),
		frontends:   make(map[int]*Frontend),
		bindings:    make(map[*mk.Process]map[int]*Connection),
		tc:          make(map[*sim.Thread]*threadCtx),
		rng:         rand.New(rand.NewSource(0x5B)), // deterministic key stream
	}
	k.Mach.Obs.Bind("core.direct_calls", &sb.DirectCalls)
	k.Mach.Obs.Bind("core.batch_calls", &sb.BatchCalls)
	k.Mach.Obs.Bind("core.ring_ops", &sb.RingOps)
	k.Mach.Obs.Bind("core.ring_doorbells", &sb.RingDoorbells)
	k.Mach.Obs.Bind("core.ring_doorbells_skipped", &sb.RingDoorbellsSkipped)
	return sb
}

// threadCtx is one thread's direct-call chain state.
type threadCtx struct {
	proc  *mk.Process
	stack []int // hardware slots; stack[len-1] is the current view
}

// prepareProcess maps the trampoline, scans and rewrites the process's code
// pages, and maps the rewriting page. Idempotent per process.
func (sb *SkyBridge) prepareProcess(p *mk.Process) error {
	if p.Ext != nil {
		return nil
	}
	// Map the trampoline code page (real x86 bytes; see trampoline.go).
	tramp := TrampolineCode()
	frame := sb.K.Mach.Mem.MustAllocFrame()
	sb.K.Mach.Mem.Write(frame, tramp)
	p.MapAt(TrampolineVA, []hw.GPA{hw.GPA(frame)}, hw.PTEUser)

	// Scan and rewrite the process's own code (§5): after this, the only
	// executable VMFUNC bytes in the process are the trampoline's.
	if err := sb.scanAndRewrite(p); err != nil {
		return err
	}
	p.Ext = &procExt{}
	return nil
}

// scanAndRewrite neutralizes every VMFUNC byte pattern in p's mapped text,
// installing (or replacing) the rewriting page as needed.
func (sb *SkyBridge) scanAndRewrite(p *mk.Process) error {
	if p.CodeSize == 0 {
		return nil
	}
	rw := rewrite.New(uint64(p.CodeBase))
	res, err := rw.Rewrite(p.ReadCode())
	if err != nil {
		return fmt.Errorf("core: rewriting %s: %w", p.Name, err)
	}
	p.WriteCode(res.Code)
	if len(res.RewritePage) > 0 {
		rpFrame := sb.K.Mach.Mem.MustAllocFrame()
		sb.K.Mach.Mem.Write(rpFrame, res.RewritePage)
		p.MapAt(RewritePageVA, []hw.GPA{hw.GPA(rpFrame)}, hw.PTEUser)
	}
	sb.Rewrites++
	return nil
}

// RemapCodePages implements the §9 W⊕X discipline for dynamic code: a
// registered process that generated code (a JIT, a live updater) writes it
// while the pages are non-executable, then asks the Subkernel to remap
// them executable. The Subkernel rescans and rewrites the new text before
// granting execute permission, so dynamically generated VMFUNCs are
// neutralized exactly like static ones.
func (sb *SkyBridge) RemapCodePages(env *mk.Env, newCode []byte) error {
	p := env.P
	if p.Ext == nil {
		return fmt.Errorf("core: %s is not registered with SkyBridge", p.Name)
	}
	cpu := env.T.Core
	cpu.Syscall()
	cpu.Swapgs()
	defer func() { cpu.Swapgs(); cpu.Sysret() }()
	// Remap + rescan cost, proportional to the new text size (§9 suggests
	// batching to amortize this; we charge the unbatched cost).
	cpu.Tick(uint64(len(newCode) / 8))
	p.MapCode(newCode)
	return sb.scanAndRewrite(p)
}

type procExt struct {
	// ktNext is the process's allocation cursor for multi-page calling-key
	// tables (keyTableBigVA region).
	ktNext hw.VA
}

// RegisterServer implements register_server (Figure 4): the server provides
// a handler (and its address) plus the maximum number of connections; the
// kernel maps trampoline and stack pages, rewrites the binary, and the
// Rootkernel assigns the server's global EPTP index, which doubles as the
// server ID.
func (sb *SkyBridge) RegisterServer(env *mk.Env, maxConns int, funcAddr hw.VA, handler Handler) (int, error) {
	p := env.P
	if err := sb.prepareProcess(p); err != nil {
		return 0, err
	}
	// Registration is a syscall.
	cpu := env.T.Core
	cpu.Syscall()
	cpu.Swapgs()
	defer func() { cpu.Swapgs(); cpu.Sysret() }()
	// Scanning cost is proportional to code size (off the IPC path).
	cpu.Tick(uint64(p.CodeSize / 8))

	id, err := sb.RK.RegisterServer(cpu, p)
	if err != nil {
		return 0, err
	}
	// Key table, mapped user-read-only into the server (the server's
	// trampoline checks keys against it; only the kernel writes it). One
	// page holds 512 keys; a server admitting more connections than that
	// (a multi-tenant frontend) gets a contiguous multi-page table from
	// the keyTableBigVA region — slot 512+ would otherwise write past the
	// single architected frame into foreign memory.
	pages := (maxConns*8 + hw.PageSize - 1) / hw.PageSize
	if pages < 1 {
		pages = 1
	}
	ktBase := KeyTableVA + hw.VA((id-1)*hw.PageSize)
	if pages > 1 {
		ext := p.Ext.(*procExt)
		if ext.ktNext == 0 {
			ext.ktNext = keyTableBigVA
		}
		ktBase = ext.ktNext
		ext.ktNext += hw.VA((pages + 1) * hw.PageSize) // one-page guard gap
	}
	frames := make([]hw.GPA, pages)
	for i := range frames {
		frames[i] = hw.GPA(sb.K.Mach.Mem.MustAllocFrame())
	}
	p.MapAt(ktBase, frames, hw.PTEUser)

	srv := &Server{
		ID:       id,
		Proc:     p,
		Handler:  handler,
		MaxConns: maxConns,
		FuncAddr: funcAddr,
		keyTable: ktBase,
	}
	sb.servers[id] = srv
	return id, nil
}

// RegisterClient implements register_client_to_server: maps trampoline and
// function-list pages into the client, rewrites its code, asks the
// Rootkernel to bind client and server at the EPT level (and every server
// the target server itself depends on), creates the connection's shared
// buffer and server stack, and issues the calling key.
func (sb *SkyBridge) RegisterClient(env *mk.Env, serverID int) (*Connection, error) {
	p := env.P
	srv, ok := sb.servers[serverID]
	if !ok {
		return nil, ErrNoSuchServer
	}
	if len(srv.conns) >= srv.MaxConns {
		return nil, ErrConnLimit
	}
	if err := sb.prepareProcess(p); err != nil {
		return nil, err
	}
	cpu := env.T.Core
	cpu.Syscall()
	cpu.Swapgs()
	defer func() { cpu.Swapgs(); cpu.Sysret() }()
	cpu.Tick(uint64(p.CodeSize / 8))

	// Bind at the EPT level: the target server and, transitively, every
	// server it is itself a client of ("the Rootkernel also writes all
	// processes' EPTPs that the server depends on into the client's EPTP
	// list", §4.2).
	for _, dep := range sb.dependencyClosure(srv) {
		if _, err := sb.RK.Bind(cpu, p, dep.Proc, dep.ID); err != nil {
			return nil, err
		}
	}
	if err := sb.RK.InstallFor(cpu, p); err != nil {
		return nil, err
	}

	// Shared buffer: one page pair per connection, mapped in both.
	const bufPages = 4
	frames := make([]hw.GPA, bufPages)
	for i := range frames {
		frames[i] = hw.GPA(sb.K.Mach.Mem.MustAllocFrame())
	}
	conn := &Connection{
		Server:    srv,
		Client:    p,
		ServerKey: sb.rng.Uint64(),
		BufFrames: frames,
		ClientBuf: p.MapFrames(frames, hw.PTEUser|hw.PTEWrite),
		ServerBuf: srv.Proc.MapFrames(frames, hw.PTEUser|hw.PTEWrite),
		BufLen:    bufPages * hw.PageSize,
		Stack:     srv.Proc.AllocStack(4 * hw.PageSize),
		slot:      len(srv.conns),
	}
	// Write the key into the server's calling-key table (kernel-side write
	// through physical memory). The table may span pages, and frames are
	// not physically contiguous: walk the page the slot lands on, then
	// offset within that frame.
	ktPage := srv.keyTable + hw.VA((conn.slot/keysPerPage)*hw.PageSize)
	ktGPA, _, okWalk := srv.Proc.PT.Walk(ktPage)
	if !okWalk {
		return nil, fmt.Errorf("core: server key table unmapped")
	}
	writeU64Phys(sb.K.Mach.Mem, hw.HPA(ktGPA)+hw.HPA(8*(conn.slot%keysPerPage)), conn.ServerKey)

	srv.conns = append(srv.conns, conn)
	if sb.bindings[p] == nil {
		sb.bindings[p] = make(map[int]*Connection)
	}
	sb.bindings[p][serverID] = conn
	return conn, nil
}

// dependencyClosure returns srv plus every server reachable through srv's
// own client registrations.
func (sb *SkyBridge) dependencyClosure(srv *Server) []*Server {
	seen := map[int]bool{}
	var out []*Server
	var walk func(s *Server)
	walk = func(s *Server) {
		if seen[s.ID] {
			return
		}
		seen[s.ID] = true
		out = append(out, s)
		for id := range sb.bindings[s.Proc] {
			if dep, ok := sb.servers[id]; ok {
				walk(dep)
			}
		}
	}
	walk(srv)
	return out
}

// Connection lookup for a process.
func (sb *SkyBridge) ConnectionOf(p *mk.Process, serverID int) (*Connection, bool) {
	c, ok := sb.bindings[p][serverID]
	return c, ok
}

// Server returns a registered server by ID.
func (sb *SkyBridge) Server(id int) (*Server, bool) {
	s, ok := sb.servers[id]
	return s, ok
}

func writeU64Phys(mem *hw.PhysMem, at hw.HPA, v uint64) {
	mem.WriteU64(at, v)
}
