package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
)

// startRingServer attaches a poll loop to a registered server and spawns
// its Serve thread on core. Returns the RingServer; Serve errors fail the
// test.
func startRingServer(t *testing.T, sb *SkyBridge, id int, proc *mk.Process, core *hw.CPU, pol mk.WakePolicy) *RingServer {
	t.Helper()
	rs, err := sb.NewRingServer(id, pol)
	if err != nil {
		t.Fatalf("ring server: %v", err)
	}
	proc.Spawn("poll", core, func(env *mk.Env) {
		if err := rs.Serve(env); err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return rs
}

// TestAsyncRingEcho: submissions flow through the ring to the echo
// handler and completions carry the doubled registers and uppercased
// payloads back, without any per-request crossing.
func TestAsyncRingEcho(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
	rs := startRingServer(t, sb, id, server, k.Mach.Cores[1], mk.WakePolicy{})

	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		defer rs.Close(env)
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		r, err := sb.OpenRing(env, id, 8, 64, mk.WakePolicy{})
		if err != nil {
			t.Errorf("open ring: %v", err)
			return
		}
		const n = 20
		got := 0
		for i := 0; i < n; i++ {
			payload := []byte(fmt.Sprintf("ring-req-%02d", i))
			env.Write(r.SlotVA(), payload, len(payload))
			err := r.Submit(env, Request{
				Regs: [4]uint64{uint64(100 + i)},
				Buf:  r.SlotVA(), Len: len(payload),
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if err := r.Flush(env); err != nil {
				t.Errorf("flush %d: %v", i, err)
				return
			}
			// Opportunistic reap, or a blocking one when the ring is full.
			minN := 0
			if r.Inflight() == 8 {
				minN = 1
			}
			cs, err := r.Reap(env, minN)
			if err != nil {
				t.Errorf("reap: %v", err)
				return
			}
			got += checkEchoCompletions(t, cs, got)
		}
		for r.Inflight() > 0 {
			if err := r.Flush(env); err != nil {
				t.Errorf("final flush: %v", err)
				return
			}
			cs, err := r.Reap(env, r.Inflight())
			if err != nil {
				t.Errorf("final reap: %v", err)
				return
			}
			got += checkEchoCompletions(t, cs, got)
		}
		if got != n {
			t.Errorf("reaped %d completions, want %d", got, n)
		}
		if r.Submitted != n || r.Reaped != n {
			t.Errorf("Submitted/Reaped = %d/%d, want %d/%d", r.Submitted, r.Reaped, n, n)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sb.RingOps != 20 {
		t.Errorf("RingOps = %d, want 20", sb.RingOps)
	}
	if sb.DirectCalls != 0 {
		t.Errorf("DirectCalls = %d, want 0 (no per-request crossing)", sb.DirectCalls)
	}
	if rs.Served != 20 || rs.Bad != 0 {
		t.Errorf("Served/Bad = %d/%d, want 20/0", rs.Served, rs.Bad)
	}
}

// checkEchoCompletions validates a reaped slice against the echo
// handler's contract, given how many completions came before.
func checkEchoCompletions(t *testing.T, cs []Completion, base int) int {
	t.Helper()
	for j, c := range cs {
		i := base + j
		if c.Seq != uint32(i) {
			t.Errorf("completion %d: seq %d", i, c.Seq)
		}
		if c.Regs[0] != uint64(2*(100+i)) {
			t.Errorf("completion %d: Regs[0] = %d, want %d", i, c.Regs[0], 2*(100+i))
		}
		want := bytes.ToUpper([]byte(fmt.Sprintf("ring-req-%02d", i)))
		if !bytes.Equal(c.Data, want) {
			t.Errorf("completion %d: payload %q, want %q", i, c.Data, want)
		}
	}
	return len(cs)
}

// TestAsyncRingWraparound: a depth-4 ring driven to full depth for many
// windows keeps sequence numbers, slots, and payloads straight across
// index wraparound (uint32 cursors, slot = seq % QD).
func TestAsyncRingWraparound(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
	rs := startRingServer(t, sb, id, server, k.Mach.Cores[1], mk.WakePolicy{})

	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		defer rs.Close(env)
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		const qd = 4
		r, err := sb.OpenRing(env, id, qd, 64, mk.WakePolicy{})
		if err != nil {
			t.Errorf("open ring: %v", err)
			return
		}
		next := 0
		for window := 0; window < 6; window++ {
			// Fill the ring completely...
			for r.Inflight() < qd {
				payload := []byte(fmt.Sprintf("wrap-%03d", next))
				env.Write(r.SlotVA(), payload, len(payload))
				if err := r.Submit(env, Request{
					Regs: [4]uint64{uint64(next)},
					Buf:  r.SlotVA(), Len: len(payload),
				}); err != nil {
					t.Errorf("submit %d: %v", next, err)
					return
				}
				next++
			}
			// ...verify the ring reports full...
			if err := r.Submit(env, Request{}); !errors.Is(err, ErrRingFull) {
				t.Errorf("submit past full = %v, want ErrRingFull", err)
				return
			}
			// ...and drain it all.
			if err := r.Flush(env); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			cs, err := r.Reap(env, qd)
			if err != nil {
				t.Errorf("reap: %v", err)
				return
			}
			if len(cs) != qd {
				t.Errorf("window %d: reaped %d, want %d", window, len(cs), qd)
				return
			}
			for _, c := range cs {
				i := int(c.Seq)
				if c.Regs[0] != uint64(2*i) {
					t.Errorf("seq %d: Regs[0] = %d, want %d", i, c.Regs[0], 2*i)
				}
				want := bytes.ToUpper([]byte(fmt.Sprintf("wrap-%03d", i)))
				if !bytes.Equal(c.Data, want) {
					t.Errorf("seq %d: payload %q, want %q", i, c.Data, want)
				}
			}
		}
		if r.Inflight() != 0 {
			t.Errorf("inflight %d after drain", r.Inflight())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sb.RingOps != 24 {
		t.Errorf("RingOps = %d, want 24", sb.RingOps)
	}
}

// TestAsyncRingCompletionBeforeSubmission: a malicious server advancing
// the completion tail past what the client ever submitted is caught by
// the client's cursor validation, not believed.
func TestAsyncRingCompletionBeforeSubmission(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
	if _, err := sb.NewRingServer(id, mk.WakePolicy{}); err != nil {
		t.Fatal(err)
	}
	// No Serve thread: the "server" here is the attacker, scribbling on
	// the ring control words directly.
	var conn *Connection
	var ring *AsyncRing
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		c, err := sb.RegisterClient(env, id)
		if err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		conn = c
		ring, err = sb.OpenRing(env, id, 8, 64, mk.WakePolicy{})
		if err != nil {
			t.Errorf("open ring: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	server.Spawn("evil", k.Mach.Cores[1], func(env *mk.Env) {
		// Claim 5 completions; the client submitted nothing.
		writeCtl(env, conn.ServerBuf, ctlCQTail, 5)
	})
	client.Spawn("cli2", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := ring.Reap(env, 0); !errors.Is(err, ErrRingCorrupt) {
			t.Errorf("reap = %v, want ErrRingCorrupt", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	// A regressing tail is equally corrupt — but regression is only
	// detectable against a *validated* observation, so first complete one
	// request legitimately (hand-written valid completion), then yank the
	// tail backwards below what the client already saw.
	client.Spawn("cli3", k.Mach.Cores[0], func(env *mk.Env) {
		if err := ring.Submit(env, Request{Regs: [4]uint64{1}}); err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	server.Spawn("evil2", k.Mach.Cores[1], func(env *mk.Env) {
		env.Write(conn.ServerBuf+hw.VA(ring.cqeBase), encodeRingEntry([4]uint64{2}, 0, 0, 0), ringEntryLen)
		writeCtl(env, conn.ServerBuf, ctlCQTail, 1)
	})
	client.Spawn("cli4", k.Mach.Cores[0], func(env *mk.Env) {
		if cs, err := ring.Reap(env, 1); err != nil || len(cs) != 1 {
			t.Errorf("legitimate reap = %v, %v", cs, err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	server.Spawn("evil3", k.Mach.Cores[1], func(env *mk.Env) {
		writeCtl(env, conn.ServerBuf, ctlCQTail, 0)
	})
	client.Spawn("cli5", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := ring.Reap(env, 0); !errors.Is(err, ErrRingCorrupt) {
			t.Errorf("reap after regression = %v, want ErrRingCorrupt", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncRingMaliciousCompletionEntries: out-of-bounds completion
// entries — a wrong sequence tag (pointing the client at another slot)
// or an oversized length — are rejected by the client before any payload
// memory is touched.
func TestAsyncRingMaliciousCompletionEntries(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(env *mk.Env, conn *Connection, r *AsyncRing)
	}{
		{"bad-seq", func(env *mk.Env, conn *Connection, r *AsyncRing) {
			// Completion 0 claims to be completion 7: accepting it would
			// make the client read slot 7 % QD instead of its own.
			env.Write(conn.ServerBuf+hw.VA(r.cqeBase), encodeRingEntry([4]uint64{1}, 4, 7, 0), ringEntryLen)
			writeCtl(env, conn.ServerBuf, ctlCQTail, 1)
		}},
		{"bad-len", func(env *mk.Env, conn *Connection, r *AsyncRing) {
			// Length far beyond the slot: accepting it would read past the
			// slot (and, for big values, past the shared buffer).
			env.Write(conn.ServerBuf+hw.VA(r.cqeBase), encodeRingEntry([4]uint64{1}, r.SlotLen+1, 0, 0), ringEntryLen)
			writeCtl(env, conn.ServerBuf, ctlCQTail, 1)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, k, _, sb := newWorld(t)
			server := k.NewProcess("server")
			client := k.NewProcess("client")
			id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
			if _, err := sb.NewRingServer(id, mk.WakePolicy{}); err != nil {
				t.Fatal(err)
			}
			var conn *Connection
			var ring *AsyncRing
			client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
				c, err := sb.RegisterClient(env, id)
				if err != nil {
					t.Errorf("register client: %v", err)
					return
				}
				conn = c
				ring, err = sb.OpenRing(env, id, 8, 64, mk.WakePolicy{})
				if err != nil {
					t.Errorf("open ring: %v", err)
					return
				}
				// One real submission, so the tail the attacker writes is
				// within the submitted window and only the entry is bad.
				if err := ring.Submit(env, Request{Regs: [4]uint64{9}}); err != nil {
					t.Errorf("submit: %v", err)
				}
			})
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			server.Spawn("evil", k.Mach.Cores[1], func(env *mk.Env) {
				tc.corrupt(env, conn, ring)
			})
			client.Spawn("cli2", k.Mach.Cores[0], func(env *mk.Env) {
				if _, err := ring.Reap(env, 0); !errors.Is(err, ErrRingCorrupt) {
					t.Errorf("reap = %v, want ErrRingCorrupt", err)
				}
			})
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAsyncRingMaliciousSubmissionRejected: a client rewriting a
// submission entry after publishing it (oversized length) gets a
// RingStatusBadEntry completion, counted against the server's Rejected
// stat — the server neither dispatches it nor dies.
func TestAsyncRingMaliciousSubmissionRejected(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
	rs := startRingServer(t, sb, id, server, k.Mach.Cores[1], mk.WakePolicy{})
	srv, _ := sb.Server(id)

	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		defer rs.Close(env)
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		r, err := sb.OpenRing(env, id, 8, 64, mk.WakePolicy{})
		if err != nil {
			t.Errorf("open ring: %v", err)
			return
		}
		// Legitimate submit, then overwrite the published entry with an
		// out-of-slot length before the server drains it.
		if err := r.Submit(env, Request{Regs: [4]uint64{7}}); err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		env.Write(r.conn.ClientBuf+hw.VA(r.sqeBase),
			encodeRingEntry([4]uint64{7}, r.conn.BufLen, 0, 0), ringEntryLen)
		if err := r.Flush(env); err != nil {
			t.Errorf("flush: %v", err)
			return
		}
		cs, err := r.Reap(env, 1)
		if err != nil {
			t.Errorf("reap: %v", err)
			return
		}
		if len(cs) != 1 || cs[0].Regs[0] != RingStatusBadEntry {
			t.Errorf("completions = %+v, want one RingStatusBadEntry", cs)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.Rejected != 1 || rs.Bad != 1 {
		t.Errorf("Rejected/Bad = %d/%d, want 1/1", srv.Rejected, rs.Bad)
	}
	if srv.Calls != 0 {
		t.Errorf("Calls = %d, want 0 (bad entry must not dispatch)", srv.Calls)
	}
}

// TestAsyncRingDoorbellBadKey: every doorbell crossing presents the
// connection's calling key, and a wrong key bounces off the server-side
// trampoline exactly like a bad DirectCall key.
func TestAsyncRingDoorbellBadKey(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
	rs := startRingServer(t, sb, id, server, k.Mach.Cores[1], mk.WakePolicy{})
	srv, _ := sb.Server(id)

	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		defer rs.Close(env)
		conn, err := sb.RegisterClient(env, id)
		if err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		r, err := sb.OpenRing(env, id, 8, 64, mk.WakePolicy{})
		if err != nil {
			t.Errorf("open ring: %v", err)
			return
		}
		if err := r.DoorbellWithKey(env, conn.ServerKey+1); !errors.Is(err, ErrBadKey) {
			t.Errorf("forged doorbell = %v, want ErrBadKey", err)
			return
		}
		// The real key still works afterwards.
		if err := r.Doorbell(env); err != nil {
			t.Errorf("genuine doorbell: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", srv.Rejected)
	}
	if sb.RingDoorbells != 1 {
		t.Errorf("RingDoorbells = %d, want 1 (the genuine one)", sb.RingDoorbells)
	}
}

// TestAsyncRingWakeupKinds pins the adaptive wakeup policy's three exits:
// a cross-core doorbell to a parked server is an IPI wake, a same-core
// one is a local wake, and a server given an unbounded spin budget never
// parks at all.
func TestAsyncRingWakeupKinds(t *testing.T) {
	run := func(t *testing.T, pollCore int, pol mk.WakePolicy) (*mk.Kernel, *SkyBridge) {
		t.Helper()
		eng, k, _, sb := newWorld(t)
		server := k.NewProcess("server")
		client := k.NewProcess("client")
		id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
		rs := startRingServer(t, sb, id, server, k.Mach.Cores[pollCore], pol)
		client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
			defer rs.Close(env)
			if _, err := sb.RegisterClient(env, id); err != nil {
				t.Errorf("register client: %v", err)
				return
			}
			r, err := sb.OpenRing(env, id, 4, 64, mk.WakePolicy{})
			if err != nil {
				t.Errorf("open ring: %v", err)
				return
			}
			for i := 0; i < 8; i++ {
				if err := r.Submit(env, Request{Regs: [4]uint64{uint64(i)}}); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if err := r.Flush(env); err != nil {
					t.Errorf("flush: %v", err)
					return
				}
				if _, err := r.Reap(env, 1); err != nil {
					t.Errorf("reap: %v", err)
					return
				}
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return k, sb
	}

	t.Run("ipi", func(t *testing.T) {
		// Client registration costs far exceed the default spin budget, so
		// the cross-core poll thread parks and the first doorbell IPIs it.
		k, sb := run(t, 1, mk.WakePolicy{})
		if k.IPIWakes == 0 {
			t.Errorf("IPIWakes = 0, want > 0")
		}
		if k.Parks == 0 {
			t.Errorf("Parks = 0, want > 0")
		}
		if sb.RingDoorbells == 0 {
			t.Errorf("RingDoorbells = 0, want > 0")
		}
	})
	t.Run("local", func(t *testing.T) {
		// Same-core client and poll thread share a clock, so the poll
		// thread only parks if the client idles cooperatively (yielding)
		// long enough for the spin budget to lapse with no work pending.
		eng, k, _, sb := newWorld(t)
		server := k.NewProcess("server")
		client := k.NewProcess("client")
		id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
		rs := startRingServer(t, sb, id, server, k.Mach.Cores[0], mk.WakePolicy{})
		client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
			defer rs.Close(env)
			if _, err := sb.RegisterClient(env, id); err != nil {
				t.Errorf("register client: %v", err)
				return
			}
			r, err := sb.OpenRing(env, id, 4, 64, mk.WakePolicy{})
			if err != nil {
				t.Errorf("open ring: %v", err)
				return
			}
			for i := 0; i < 4; i++ {
				// Idle with yields until the poll thread gives up spinning
				// and parks, then submit: the doorbell wakes it same-core.
				for !rs.parker.Waiting() {
					env.T.Checkpoint()
					env.Compute(64)
				}
				if err := r.Submit(env, Request{Regs: [4]uint64{uint64(i)}}); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if err := r.Flush(env); err != nil {
					t.Errorf("flush: %v", err)
					return
				}
				if _, err := r.Reap(env, 1); err != nil {
					t.Errorf("reap: %v", err)
					return
				}
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if k.LocalWakes == 0 {
			t.Errorf("LocalWakes = 0, want > 0")
		}
		if k.IPIWakes != 0 {
			t.Errorf("IPIWakes = %d, want 0 (same core)", k.IPIWakes)
		}
	})
	t.Run("spin", func(t *testing.T) {
		// An effectively unbounded spin budget keeps the poll thread out of
		// the parked state entirely: no IPIs, no parks, and after the
		// armed-at-open doorbell every flush skips the crossing.
		k, sb := run(t, 1, mk.WakePolicy{SpinBudget: math.MaxUint64 / 2})
		if k.Parks != 0 {
			t.Errorf("Parks = %d, want 0", k.Parks)
		}
		if k.IPIWakes != 0 {
			t.Errorf("IPIWakes = %d, want 0", k.IPIWakes)
		}
		if k.SpinWakes == 0 {
			t.Errorf("SpinWakes = 0, want > 0")
		}
		if sb.RingDoorbellsSkipped == 0 {
			t.Errorf("RingDoorbellsSkipped = 0, want > 0")
		}
	})
}

// TestOpenRingValidation: depth and payload-capacity limits, including
// the same near-MaxInt overflow guard Layout has.
func TestOpenRingValidation(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])
	if _, err := sb.NewRingServer(id, mk.WakePolicy{}); err != nil {
		t.Fatal(err)
	}
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		conn, err := sb.RegisterClient(env, id)
		if err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		for _, bad := range []struct {
			qd, cap int
		}{
			{0, 64}, {MaxQD + 1, 64}, {8, -1},
			{8, conn.BufLen + 1},
			{8, math.MaxInt - 1}, // must error, not wrap into a "valid" layout
			{MaxQD, conn.BufLen}, // slots cannot fit
		} {
			if _, err := sb.OpenRing(env, id, bad.qd, bad.cap, mk.WakePolicy{}); err == nil {
				t.Errorf("OpenRing(qd=%d, cap=%d) succeeded, want error", bad.qd, bad.cap)
			}
		}
		r, err := sb.OpenRing(env, id, MaxQD, 0, mk.WakePolicy{})
		if err != nil {
			t.Errorf("OpenRing(max qd, min slots): %v", err)
			return
		}
		if r.SlotLen < ringSlotMin {
			t.Errorf("SlotLen = %d, want >= %d", r.SlotLen, ringSlotMin)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestLayoutOverflowGuard: Layout must reject capacities whose rounding
// arithmetic would overflow int, instead of wrapping negative and handing
// back out-of-buffer slot offsets.
func TestLayoutOverflowGuard(t *testing.T) {
	conn := &Connection{BufLen: 4 * hw.PageSize}
	for _, cap := range []int{
		math.MaxInt,
		math.MaxInt - 1,
		math.MaxInt - hw.LineSize,
		math.MaxInt/MaxBatch + 1,
		conn.BufLen + 1,
	} {
		l, err := conn.Layout(MaxBatch, cap)
		if err == nil {
			t.Errorf("Layout(%d, %d) = %+v, want error", MaxBatch, cap, l)
			continue
		}
		if !strings.Contains(err.Error(), "exceeds shared buffer") {
			t.Errorf("Layout(%d, %d) error = %v, want the capacity guard", MaxBatch, cap, err)
		}
	}
	// The guard must not break legitimate layouts.
	l, err := conn.Layout(4, 1024)
	if err != nil {
		t.Fatalf("Layout(4, 1024): %v", err)
	}
	if l.SlotLen != 1024 {
		t.Errorf("SlotLen = %d, want 1024", l.SlotLen)
	}
	for i := 0; i < 4; i++ {
		if off := l.PayloadOff(i); off < 0 || off+l.SlotLen > conn.BufLen {
			t.Errorf("slot %d at %d..%d escapes buffer %d", i, off, off+l.SlotLen, conn.BufLen)
		}
	}
}
