package core

import (
	"bytes"
	"errors"
	"testing"

	"skybridge/internal/hv"
	"skybridge/internal/hw"
	"skybridge/internal/isa"
	"skybridge/internal/mk"
	"skybridge/internal/rewrite"
	"skybridge/internal/sim"
)

func newWorld(t *testing.T) (*sim.Engine, *mk.Kernel, *hv.Rootkernel, *SkyBridge) {
	return newWorldWith(t, false)
}

func newWorldWith(t *testing.T, kpti bool) (*sim.Engine, *mk.Kernel, *hv.Rootkernel, *SkyBridge) {
	t.Helper()
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 4, MemBytes: 4 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4, KPTI: kpti}, eng)
	rk, err := hv.Boot(k, hv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return eng, k, rk, New(k, rk)
}

// registerEcho registers an echo server (doubles Regs[0], uppercases the
// shared-buffer payload in place) and returns its ID.
func registerEcho(t *testing.T, eng *sim.Engine, k *mk.Kernel, sb *SkyBridge, proc *mk.Process, core *hw.CPU) int {
	t.Helper()
	idCh := make(chan int, 1)
	proc.Spawn("reg", core, func(env *mk.Env) {
		id, err := sb.RegisterServer(env, 8, 0x400100, func(env *mk.Env, req Request) Response {
			resp := Response{Regs: [4]uint64{req.Regs[0] * 2}}
			if req.Len > 0 {
				data := make([]byte, req.Len)
				env.Read(req.SharedBuf, data, req.Len)
				for i := range data {
					if data[i] >= 'a' && data[i] <= 'z' {
						data[i] -= 32
					}
				}
				env.Write(req.SharedBuf, data, len(data))
				resp.Len = req.Len
			}
			return resp
		})
		if err != nil {
			t.Errorf("register server: %v", err)
			return
		}
		idCh <- id
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return <-idCh
}

func TestDirectCallBasic(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	eng2 := k.Eng
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		resp, err := sb.DirectCall(env, id, Request{Regs: [4]uint64{21}})
		if err != nil {
			t.Errorf("direct call: %v", err)
			return
		}
		if resp.Regs[0] != 42 {
			t.Errorf("resp = %d, want 42", resp.Regs[0])
		}
	})
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if sb.DirectCalls != 1 {
		t.Fatalf("DirectCalls = %d", sb.DirectCalls)
	}
}

func TestDirectCallRoundTripCycles(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	var cycles uint64
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		for i := 0; i < 32; i++ { // warm caches and TLBs
			sb.DirectCall(env, id, Request{})
		}
		start := env.Now()
		const rounds = 200
		for i := 0; i < rounds; i++ {
			sb.DirectCall(env, id, Request{})
		}
		cycles = (env.Now() - start) / rounds
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Paper §6.3: "an IPC roundtrip in SkyBridge costs 396 cycles".
	if cycles < 340 || cycles > 450 {
		t.Fatalf("direct call roundtrip = %d cycles, want ~396", cycles)
	}
	t.Logf("direct call roundtrip: %d cycles", cycles)
	_ = eng
}

func TestDirectCallPayloadIntegrity(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	payload := []byte("the quick brown fox jumps over the lazy dog, 1024 bytes eventually")
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		conn, err := sb.RegisterClient(env, id)
		if err != nil {
			t.Errorf("register: %v", err)
			return
		}
		buf := env.P.Alloc(hw.PageSize)
		env.Write(buf, payload, len(payload))
		resp, err := sb.DirectCall(env, id, Request{Buf: buf, Len: len(payload)})
		if err != nil {
			t.Errorf("call: %v", err)
			return
		}
		got := make([]byte, resp.Len)
		conn.ReadReply(env, got, resp.Len)
		want := bytes.ToUpper(payload)
		if !bytes.Equal(got, want) {
			t.Errorf("payload corrupted:\n got %q\nwant %q", got, want)
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCallingKeyRejected(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		_, err := sb.DirectCallWithKey(env, id, Request{}, 0xBADBADBADBAD)
		if !errors.Is(err, ErrBadKey) {
			t.Errorf("forged key: err = %v, want ErrBadKey", err)
		}
		// The genuine key still works afterwards.
		if _, err := sb.DirectCall(env, id, Request{}); err != nil {
			t.Errorf("genuine call after rejection: %v", err)
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	srv, _ := sb.Server(id)
	if srv.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", srv.Rejected)
	}
}

func TestUnregisteredClientCannotCall(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	stranger := k.NewProcess("stranger")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	stranger.Spawn("s", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.DirectCall(env, id, Request{}); !errors.Is(err, ErrNotRegistered) {
			t.Errorf("err = %v, want ErrNotRegistered", err)
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConnectionLimit(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	idCh := make(chan int, 1)
	server.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		id, err := sb.RegisterServer(env, 2, 0, func(env *mk.Env, req Request) Response { return Response{} })
		if err != nil {
			t.Errorf("%v", err)
		}
		idCh <- id
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	id := <-idCh
	for i := 0; i < 3; i++ {
		c := k.NewProcess("c")
		i := i
		c.Spawn("r", k.Mach.Cores[0], func(env *mk.Env) {
			_, err := sb.RegisterClient(env, id)
			if i < 2 && err != nil {
				t.Errorf("client %d rejected: %v", i, err)
			}
			if i == 2 && !errors.Is(err, ErrConnLimit) {
				t.Errorf("client 2: err = %v, want ErrConnLimit", err)
			}
		})
		if err := k.Eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDirectCallTimeout(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	idCh := make(chan int, 1)
	server.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		id, _ := sb.RegisterServer(env, 4, 0, func(env *mk.Env, req Request) Response {
			env.Compute(1_000_000) // malicious: never comes back in time
			return Response{}
		})
		idCh <- id
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	id := <-idCh
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		if _, err := sb.DirectCallTimeout(env, id, Request{}, 10_000); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedDirectCalls(t *testing.T) {
	// client -> server1 -> server2, exercising the dependency-closure
	// binding: the client's EPTP list must contain server2's entry with
	// the *client's* CR3 remapped, because CR3 never changes on the path.
	eng, k, _, sb := newWorld(t)
	s1 := k.NewProcess("s1")
	s2 := k.NewProcess("s2")
	client := k.NewProcess("client")
	core0 := k.Mach.Cores[0]

	var id1, id2 int
	s2.Spawn("reg2", core0, func(env *mk.Env) {
		id2, _ = sb.RegisterServer(env, 4, 0, func(env *mk.Env, req Request) Response {
			return Response{Regs: [4]uint64{req.Regs[0] + 100}}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s1.Spawn("reg1", core0, func(env *mk.Env) {
		id1, _ = sb.RegisterServer(env, 4, 0, func(env *mk.Env, req Request) Response {
			// Nested direct call from inside server1.
			r2, err := sb.DirectCall(env, id2, Request{Regs: [4]uint64{req.Regs[0] * 10}})
			if err != nil {
				t.Errorf("nested call: %v", err)
				return Response{}
			}
			return Response{Regs: [4]uint64{r2.Regs[0] + 1}}
		})
		// server1 is itself a client of server2.
		if _, err := sb.RegisterClient(env, id2); err != nil {
			t.Errorf("s1->s2 register: %v", err)
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	client.Spawn("cli", core0, func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id1); err != nil {
			t.Errorf("client register: %v", err)
			return
		}
		resp, err := sb.DirectCall(env, id1, Request{Regs: [4]uint64{5}})
		if err != nil {
			t.Errorf("call: %v", err)
			return
		}
		// 5 -> s1: nested (5*10=50) -> s2: +100 = 150 -> s1: +1 = 151.
		if resp.Regs[0] != 151 {
			t.Errorf("resp = %d, want 151", resp.Regs[0])
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationRewritesClientCode(t *testing.T) {
	// A process whose code contains a self-prepared VMFUNC (the faking
	// attack) gets its binary rewritten at registration: afterwards no
	// VMFUNC bytes remain outside the trampoline.
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	evil := k.NewProcess("evil")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	var a isa.Asm
	a.MovRI32(isa.RAX, 0)
	a.MovRI32(isa.RCX, int32(id))
	a.Vmfunc()                          // self-prepared VMFUNC targeting the server
	a.AluRI(isa.ADD, isa.RBX, 0xD4010F) // plus an inadvertent encoding
	for i := 0; i < 8; i++ {
		a.Nop()
	}
	a.Hlt()
	evil.MapCode(a.Bytes())

	evil.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register: %v", err)
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := evil.ReadCode(); len(rewrite.FindPattern(got)) != 0 {
		t.Fatal("VMFUNC pattern survives in registered process code")
	}
	if sb.Rewrites == 0 {
		t.Fatal("no rewrite recorded")
	}
}

func TestTrampolineContainsOnlyLegitimateVMFuncs(t *testing.T) {
	code := TrampolineCode()
	occs := rewrite.FindPattern(code)
	if len(occs) != 2 {
		t.Fatalf("trampoline has %d VMFUNC encodings, want 2 (call+return)", len(occs))
	}
	// The page must decode cleanly up to the trailing zero fill.
	end := len(code)
	for end > 0 && code[end-1] == 0 {
		end--
	}
	if _, err := isa.DecodeAll(code[:end]); err != nil {
		t.Fatalf("trampoline does not decode: %v", err)
	}
}

func TestIdentityPageTracksEPTView(t *testing.T) {
	// The process-misidentification fix (§4.2): a kernel entry during a
	// direct call must attribute to the *server*.
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	core0 := k.Mach.Cores[0]

	var inHandler uint64
	idCh := make(chan int, 1)
	server.Spawn("reg", core0, func(env *mk.Env) {
		id, _ := sb.RegisterServer(env, 4, 0, func(env *mk.Env, req Request) Response {
			inHandler = k.CurrentIdentity(env.T.Core)
			return Response{}
		})
		idCh <- id
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	id := <-idCh

	var before, after uint64
	client.Spawn("cli", core0, func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		before = k.CurrentIdentity(env.T.Core)
		sb.DirectCall(env, id, Request{})
		after = k.CurrentIdentity(env.T.Core)
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if before != uint64(client.PID) || after != uint64(client.PID) {
		t.Fatalf("client identity = %d/%d, want %d", before, after, client.PID)
	}
	if inHandler != uint64(server.PID) {
		t.Fatalf("identity during handler = %d, want server pid %d", inHandler, server.PID)
	}
}

func TestNoVMExitsDuringDirectCalls(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register: %v", err)
			return
		}
		k.Mach.ResetVMExitCounts() // registration legitimately exits (hypercalls)
		for i := 0; i < 100; i++ {
			if _, err := sb.DirectCall(env, id, Request{Regs: [4]uint64{1}}); err != nil {
				t.Errorf("call: %v", err)
				return
			}
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n := k.Mach.TotalVMExits(); n != 0 {
		t.Fatalf("%d VM exits during direct calls, want 0 (%v)", n, k.Mach.VMExits)
	}
}

func TestSharedBufferIsolationPerConnection(t *testing.T) {
	// Two clients get distinct shared buffers; one client's payload never
	// appears in the other's buffer.
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	c1 := k.NewProcess("c1")
	c2 := k.NewProcess("c2")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	var conn1, conn2 *Connection
	c1.Spawn("r", k.Mach.Cores[0], func(env *mk.Env) {
		conn1, _ = sb.RegisterClient(env, id)
		conn1.WriteRequest(env, []byte("from-c1"))
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	c2.Spawn("r", k.Mach.Cores[0], func(env *mk.Env) {
		conn2, _ = sb.RegisterClient(env, id)
		var got [7]byte
		env.Read(conn2.ClientBuf, got[:], 7)
		if string(got[:]) == "from-c1" {
			t.Error("shared buffer leaked across connections")
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if conn1.ClientBuf == conn2.ClientBuf && conn1.Client == conn2.Client {
		t.Fatal("connections share a buffer")
	}
}
