package core

import (
	"fmt"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
)

// trampEntryVA/trampReturnVA are the fetch targets charged during a call.
const (
	trampEntryLen  = 64
	trampReturnVA  = TrampolineVA + 0x80
	trampReturnLen = 48
)

// DirectCall implements direct_server_call: the client's thread executes
// the server's handler in the server's address space with no kernel
// involvement. Round-trip direct cost is ~396 cycles warm (2x VMFUNC plus
// ~64 cycles/leg of register save/restore and stack installation, §6.3).
func (sb *SkyBridge) DirectCall(env *mk.Env, serverID int, req Request) (Response, error) {
	return sb.call(env, serverID, req, 0, 0, false)
}

// DirectCallTimeout is DirectCall with the §7 DoS defense: if the server
// exceeds the cycle budget, control is forced back to the client with
// ErrTimeout.
func (sb *SkyBridge) DirectCallTimeout(env *mk.Env, serverID int, req Request, timeout uint64) (Response, error) {
	return sb.call(env, serverID, req, timeout, 0, false)
}

// DirectCallWithKey lets tests present an arbitrary calling key (modelling
// a malicious client); normal clients always present their issued key.
func (sb *SkyBridge) DirectCallWithKey(env *mk.Env, serverID int, req Request, key uint64) (Response, error) {
	return sb.call(env, serverID, req, 0, key, true)
}

func (sb *SkyBridge) call(env *mk.Env, serverID int, req Request, timeout uint64, forcedKey uint64, useForced bool) (Response, error) {
	cpu := env.T.Core
	conn, ok := sb.bindings[env.P][serverID]
	if !ok {
		return Response{}, ErrNotRegistered
	}
	srv := conn.Server
	env.T.Checkpoint()
	// Restore our address space (and, via the Rootkernel context-switch
	// hook, our EPTP list) if other threads ran on this core meanwhile.
	env.Enter()

	// One span per direct call, with per-phase cycle attribution (the
	// in-trace analogue of the paper's Table 2 breakdown). The phase
	// timestamps are plain Clock reads, so an untraced run is unperturbed.
	tr := cpu.Trace
	span := tr.Begin(cpu.Clock, "skybridge.call", "core")
	t0 := cpu.Clock

	// Deterministic flow ID: the ordinal this call will get on success.
	// Computed only when someone is listening.
	var fid uint64
	if tr != nil || sb.Calls != nil {
		fid = obs.FlowSync | (sb.DirectCalls + 1)
	}
	if tr != nil {
		tr.FlowStart(t0, fid, "flow.call", "flow")
	}

	// --- client-side trampoline ---
	if err := cpu.TouchCode(TrampolineVA, trampEntryLen); err != nil {
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return Response{}, fmt.Errorf("core: trampoline fetch: %w", err)
	}
	cpu.Tick(costSaveRegs)
	// Per-call client key (the server must echo it back, §4.4).
	clientKey := sb.rng.Uint64()
	cpu.Tick(6)

	presented := conn.ServerKey
	if useForced {
		presented = forcedKey
	}

	// Long payloads go through the connection's shared buffer: one copy,
	// client side, user mode.
	if req.Len > 0 {
		if req.Len > conn.BufLen {
			tr.End(span, cpu.Clock, obs.U("error", 1))
			return Response{}, fmt.Errorf("core: payload %d exceeds shared buffer %d", req.Len, conn.BufLen)
		}
		if req.Buf != conn.ClientBuf {
			// Copy the caller's internal buffer into the shared buffer;
			// callers that build requests in place skip this copy.
			data := make([]byte, req.Len)
			env.Read(req.Buf, data, req.Len)
			env.Write(conn.ClientBuf, data, req.Len)
		}
	}

	// Resolve the server's hardware EPTP slot in the context process's
	// slot cache (user-level hit; hypercall + possible LRU eviction on a
	// miss — the paper's §10 extension). The active chain's slots are
	// pinned so nested returns always find their EPT resident.
	tc := sb.tc[env.T]
	if tc == nil {
		tc = &threadCtx{proc: env.P, stack: []int{0}}
		sb.tc[env.T] = tc
	}
	sb.ensureContext(cpu, tc)
	cpu.FlowID = fid // tag slot-resolve hypercalls with the call's flow
	slot, _, err := sb.RK.ResolveSlot(cpu, tc.proc, serverID, tc.stack)
	if err != nil {
		cpu.FlowID = 0
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return Response{}, fmt.Errorf("core: slot resolve for server %d: %w", serverID, err)
	}
	tTramp := cpu.Clock

	// --- the EPTP switch ---
	if err := cpu.VMFunc(0, slot); err != nil {
		cpu.FlowID = 0
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return Response{}, fmt.Errorf("core: vmfunc to server %d (slot %d): %w", serverID, slot, err)
	}
	cpu.FlowID = 0
	sb.afterSwitch(cpu)
	tc.stack = append(tc.stack, slot)
	tSwitch := cpu.Clock

	// --- server-side trampoline ---
	cpu.Tick(costInstallStack)
	// Calling-key check against the server's table, read through the
	// server's address space (§4.4: "checks the key against its
	// calling-key table").
	var kb [8]byte
	senv := env.DirectEnv(srv.Proc)
	senv.Read(srv.keyTable+hw.VA(8*conn.slot), kb[:], 8)
	stored := leU64(kb)
	cpu.Tick(4) // compare + branch
	if stored != presented {
		// Deny and notify the Subkernel (§4.4).
		srv.Rejected++
		cpu.Syscall()
		cpu.Swapgs()
		cpu.Tick(50) // kernel logging of the violation
		cpu.Swapgs()
		cpu.Sysret()
		sb.switchBack(env, tc)
		tr.End(span, cpu.Clock, obs.U("bad_key", 1))
		return Response{}, ErrBadKey
	}

	// --- invoke the registered handler on the caller's thread ---
	srv.Calls++
	req.SharedBuf = conn.ServerBuf
	start := cpu.Clock
	resp := srv.Handler(senv, req)

	if timeout > 0 && cpu.Clock-start > timeout {
		// Forced return (§7): the control flow comes back to the client.
		sb.switchBack(env, tc)
		tr.End(span, cpu.Clock, obs.U("timeout", 1))
		return Response{}, ErrTimeout
	}
	tServer := cpu.Clock

	// --- return thunk ---
	if err := cpu.TouchCode(trampReturnVA, trampReturnLen); err != nil {
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return Response{}, fmt.Errorf("core: return thunk fetch: %w", err)
	}
	cpu.Tick(costRestoreRegs)
	sb.switchBack(env, tc)

	// Client re-checks the echoed client key ("the receiver should return
	// this key to the sender, which rechecks it").
	echoed := clientKey // the simulated trampoline echoes it in a register
	cpu.Tick(6)
	if echoed != clientKey {
		tr.End(span, cpu.Clock, obs.U("error", 1))
		return Response{}, ErrReturnKey
	}
	sb.DirectCalls++
	if tr != nil {
		tr.Complete(t0, tTramp-t0, "phase.trampoline", "core")
		tr.Complete(tTramp, tSwitch-tTramp, "phase.vmfunc", "core")
		tr.Complete(tSwitch, tServer-tSwitch, "phase.server", "core")
		tr.Complete(tServer, cpu.Clock-tServer, "phase.return", "core")
		tr.FlowEnd(cpu.Clock, fid, "flow.call", "flow")
		tr.End(span, cpu.Clock,
			obs.U("server", uint64(serverID)),
			obs.U("trampoline", tTramp-t0),
			obs.U("vmfunc", tSwitch-tTramp),
			obs.U("server_cycles", tServer-tSwitch),
			obs.U("return", cpu.Clock-tServer))
	}
	if o := sb.Calls; o != nil {
		// Exact partition of [t0, now): the handler's cycles are service,
		// everything else on the round trip is crossing work.
		end := cpu.Clock
		rec := obs.CallRecord{
			Flow: fid, Kind: obs.CallSync, Seq: sb.DirectCalls,
			Server: serverID, Start: t0, End: end,
		}
		rec.Phases[obs.PhaseService] = tServer - tSwitch
		rec.Phases[obs.PhaseCrossing] = (end - t0) - (tServer - tSwitch)
		o.Observe(&rec)
	}
	return resp, nil
}

// switchBack VMFUNCs to the caller's previous EPTP slot and pops the call
// chain (clearing the thread's context when the chain fully unwinds).
func (sb *SkyBridge) switchBack(env *mk.Env, tc *threadCtx) {
	cpu := env.T.Core
	sb.ensureContext(cpu, tc)
	prev := tc.stack[len(tc.stack)-2]
	if err := cpu.VMFunc(0, prev); err != nil {
		panic(fmt.Sprintf("core: vmfunc back to slot %d: %v", prev, err))
	}
	sb.afterSwitch(cpu)
	tc.stack = tc.stack[:len(tc.stack)-1]
	if len(tc.stack) == 1 {
		delete(sb.tc, env.T)
	}
}

// ensureContext restores the chain's context process on the core before a
// VMFUNC. A handler running under a direct call can park (server-side
// locks, condition waits); threads of other processes may run on the core
// meanwhile, installing *their* CR3 and EPTP lists. The resumed chain
// resolves slots against its context process's list, and every server
// view's CR3 remap is keyed on the context process's CR3 GPA — so a stale
// context would make the switch target nil (VMFUNC_FAIL) or translate
// through the wrong page table. The restore is the ordinary reschedule
// context switch, issued lazily at the resumed thread's next crossing;
// when the context is still resident this is a pointer compare.
func (sb *SkyBridge) ensureContext(cpu *hw.CPU, tc *threadCtx) {
	sb.K.EnsureOn(cpu, tc.proc)
}

// afterSwitch applies the no-VPID ablation: flush both TLBs on every EPTP
// switch, as hardware without VPID tagging would.
func (sb *SkyBridge) afterSwitch(cpu *hw.CPU) {
	if sb.FlushTLBOnSwitch {
		cpu.ITLB.FlushAll()
		cpu.DTLB.FlushAll()
	}
}

// ReadReply copies a long reply out of the connection's shared buffer into
// buf (client side, charged).
func (conn *Connection) ReadReply(env *mk.Env, buf []byte, n int) {
	env.Read(conn.ClientBuf, buf, n)
}

// WriteRequest writes payload bytes directly into the shared buffer
// (clients that build their request in place skip the trampoline copy).
func (conn *Connection) WriteRequest(env *mk.Env, data []byte) {
	env.Write(conn.ClientBuf, data, len(data))
}

func leU64(b [8]byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
