package core

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
)

// Multi-tenant frontend: one server core draining the per-tenant SPSC
// rings of N mutually-distrusting tenants through a ring-of-rings
// directory. The per-pair AsyncRing (asyncring.go) is the paper's
// two-party shape; a serving frontend needs one poll thread to multiplex
// hundreds or thousands of clients without paying an O(N) tail scan per
// sweep, and without letting one hot tenant starve the rest.
//
// The directory is a small shared region mapped into the server and every
// tenant:
//
//	0    epoch          (u64, server-stamped once per drain sweep)
//	64   serverSleeping (u64, server arms before parking)
//	128  active-tenant bitmap (u64 words; bit t = tenant t has work)
//
// A tenant's Flush sets its own bit (one read-modify-write of its word)
// and reads the single serverSleeping flag: if the drain loop declared
// itself asleep, Flush takes the one doorbell crossing — key-checked
// through the tenant's own connection, exactly like a plain ring — and
// kicks the frontend's parker; otherwise the shared-memory writes alone
// make the work visible and nothing crosses. The drain loop's spin probe
// reads only the bitmap words — O(N/64), not O(N) — and visits exactly
// the set bits.
//
// The bitmap is a performance hint, never a correctness gate: a tenant
// could set a stale bit (the sweep finds an empty ring and clears it) or
// clear bits it does not own (its directory mapping is writable). Two
// mechanisms bound the damage of a malicious clear: before parking, the
// arm sequence re-scans every ring's submission tail directly (the
// Dekker re-check, O(N) but paid only on the sleep edge), and every
// FullSweepEvery busy sweeps the loop rescans all tails and repairs the
// bits. A cleared bit therefore delays a tenant by at most a bounded
// number of sweeps, and never loses its work.
//
// Fairness: admission is credit-based (a tenant's ring depth is its
// in-flight credit), and the drain is deficit round robin — each sweep a
// visited tenant's deficit grows by the quantum and it may dispatch at
// most its deficit, so a zipfian-hot tenant at full credit cannot starve
// cold tenants (their p99 stays within a constant factor of the uniform
// case; see TestFrontendDRRFairness).
//
// Isolation parity with the rest of SkyBridge: every tenant has its own
// calling key (checked on every doorbell crossing), its own EPTP
// registration, its own ring over its own shared buffer, and every
// submission entry carries the tenant's ID — the drain rejects entries
// whose tag differs from the server-side binding (RingStatusBadTenant)
// and never touches another tenant's slots.

// Directory offsets (bytes). Epoch and sleep flag get a cache line each
// so tenant bit traffic does not false-share with the sleep flag; bitmap
// words pack behind them.
const (
	dirOffEpoch  = 0 * hw.LineSize
	dirOffSleep  = 1 * hw.LineSize
	dirOffBitmap = 2 * hw.LineSize
)

// FrontendConfig parameterizes a Frontend. The zero value means
// defaults.
type FrontendConfig struct {
	// Pol is the drain loop's (and the tenants' reap) wake policy.
	Pol mk.WakePolicy
	// Credit is the default per-tenant in-flight credit: the ring depth
	// OpenTenantRing uses when the caller passes qd 0 (default 8, max
	// MaxQD).
	Credit int
	// Quantum is the deficit-round-robin refill per sweep visit: how many
	// requests a tenant's deficit grows by each time the sweep reaches
	// its set bit (default 4).
	Quantum int
	// FullSweepEvery is how many busy sweeps pass between full
	// tail rescans repairing the bitmap (default 64).
	FullSweepEvery int
}

func (c FrontendConfig) withDefaults() FrontendConfig {
	if c.Credit == 0 {
		c.Credit = 8
	}
	if c.Quantum == 0 {
		c.Quantum = 4
	}
	if c.FullSweepEvery == 0 {
		c.FullSweepEvery = 64
	}
	return c
}

// TenantHandler is a frontend's request handler: like Handler, plus the
// ring-authenticated tenant ID the request arrived on. The tenant is
// server-side state bound at ring-open time — a client cannot forge it.
type TenantHandler func(env *mk.Env, tenant int, req Request) Response

// Frontend is the multiplexing drain attached to one registered server.
type Frontend struct {
	sb   *SkyBridge
	sink ringSink
	cfg  FrontendConfig

	handler TenantHandler

	rings   []*AsyncRing // tenant ID -> ring, in open order
	deficit []int        // DRR deficit per tenant

	dirFrames []hw.GPA
	dirSrv    hw.VA // server-side mapping of the directory
	nWords    int

	epoch           uint64
	sweepsSinceFull int
	closed          bool

	// dir and slot bind this frontend into an adaptive-placement
	// Director (adaptive.go); nil means standalone.
	dir  *Director
	slot int

	// Stats.
	Sweeps           uint64 // drain sweeps (one epoch stamp each)
	FullSweeps       uint64 // sweeps that rescanned every tail
	TailPolls        uint64 // individual ring-tail reads by full rescans
	TenantsVisited   uint64 // set bits drained across all sweeps
	TenantsSkipped   uint64 // idle tenants skipped by the bitmap
	PollCycles       uint64 // sweep cycles outside ring drain + dispatch
	ServiceCycles    uint64 // sweep cycles inside ring drain + dispatch
	IdleParkedCycles uint64 // cycles HLTed in the idle AdaptiveWait path
}

// NewFrontend attaches a multi-tenant drain to a registered server. The
// directory is sized for the server's MaxConns tenants. Tenants then
// open rings with OpenTenantRing, and the server process runs fe.Serve
// on a dedicated thread.
func (sb *SkyBridge) NewFrontend(serverID int, cfg FrontendConfig, h TenantHandler) (*Frontend, error) {
	srv, ok := sb.servers[serverID]
	if !ok {
		return nil, ErrNoSuchServer
	}
	if sb.frontends[serverID] != nil {
		return nil, fmt.Errorf("core: server %d already has a frontend", serverID)
	}
	if h == nil {
		return nil, fmt.Errorf("core: frontend for server %d needs a tenant handler", serverID)
	}
	cfg = cfg.withDefaults()
	if cfg.Credit > MaxQD {
		return nil, fmt.Errorf("core: frontend credit %d exceeds ring depth limit %d", cfg.Credit, MaxQD)
	}
	words := (srv.MaxConns + 63) / 64
	if words < 1 {
		words = 1
	}
	dirBytes := dirOffBitmap + 8*words
	pages := (dirBytes + hw.PageSize - 1) / hw.PageSize
	frames := make([]hw.GPA, pages)
	for i := range frames {
		frames[i] = hw.GPA(sb.K.Mach.Mem.MustAllocFrame())
	}
	fe := &Frontend{
		sb:        sb,
		sink:      ringSink{srv: srv},
		cfg:       cfg,
		handler:   h,
		dirFrames: frames,
		dirSrv:    srv.Proc.MapFrames(frames, hw.PTEUser|hw.PTEWrite),
		nWords:    words,
	}
	sb.frontends[serverID] = fe
	return fe, nil
}

// Server returns the registered server this frontend drains for.
func (fe *Frontend) Server() *Server { return fe.sink.srv }

// Served returns completions written; Bad submissions rejected (bounds
// or tenant-tag checks).
func (fe *Frontend) Served() uint64 { return fe.sink.Served }

// Bad returns rejected submissions.
func (fe *Frontend) Bad() uint64 { return fe.sink.Bad }

// Rings returns the tenant rings in tenant-ID order.
func (fe *Frontend) Rings() []*AsyncRing { return fe.rings }

// OpenTenantRing opens the calling client's per-tenant ring: depth qd (0
// means the frontend's credit), payload slots of at least payloadCap
// bytes, tagged with the next tenant ID and wired into the directory.
// The client must have registered to the frontend's server first
// (RegisterClient issued its calling key and EPTP binding). Returns the
// ring and the assigned tenant ID.
func (fe *Frontend) OpenTenantRing(env *mk.Env, qd, payloadCap int) (*AsyncRing, int, error) {
	sb, srv := fe.sb, fe.sink.srv
	conn, ok := sb.bindings[env.P][srv.ID]
	if !ok {
		return nil, 0, ErrNotRegistered
	}
	tenant := len(fe.rings)
	if tenant >= fe.nWords*64 {
		return nil, 0, fmt.Errorf("core: frontend directory full (%d tenants)", tenant)
	}
	if qd == 0 {
		qd = fe.cfg.Credit
	}
	if qd > fe.cfg.Credit {
		return nil, 0, fmt.Errorf("core: ring depth %d exceeds tenant credit %d", qd, fe.cfg.Credit)
	}
	r, err := sb.newRing(conn, &fe.sink, srv.ID, qd, payloadCap, fe.cfg.Pol)
	if err != nil {
		return nil, 0, err
	}
	r.tagged = true
	r.tenant = uint32(tenant)
	r.handler = func(env *mk.Env, req Request) Response {
		return fe.handler(env, tenant, req)
	}
	// Map the directory into the tenant (writable: it sets its own bit;
	// the bitmap is a hint, so this grants no authority — see the package
	// comment on malicious clears).
	r.dirVA = env.P.MapFrames(fe.dirFrames, hw.PTEUser|hw.PTEWrite)
	r.dirWord = tenant / 64
	r.dirMask = 1 << (tenant % 64)
	var zero [8]byte
	for _, off := range []int{ctlSQTail, ctlCQTail, ctlNeedDoorbell, ctlClientWait} {
		env.Write(conn.ClientBuf+hw.VA(off), zero[:], 8)
	}
	fe.rings = append(fe.rings, r)
	fe.deficit = append(fe.deficit, 0)
	return r, tenant, nil
}

// readDirU64/writeDirU64 access one directory word with a charged 8-byte
// memory operation through the given mapping.
func readDirU64(env *mk.Env, base hw.VA, off int) uint64 {
	var b [8]byte
	env.Read(base+hw.VA(off), b[:], 8)
	return binary.LittleEndian.Uint64(b[:])
}

func writeDirU64(env *mk.Env, base hw.VA, off int, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	env.Write(base+hw.VA(off), b[:], 8)
}

// flushDir is the directory form of Flush (asyncring.go): set the
// tenant's active bit, then doorbell only if the drain loop declared
// itself asleep. The sqTail write in Submit and the bit write here both
// precede the sleep-flag read, pairing with the drain loop's
// arm -> full-rescan -> park sequence: a parking server either sees the
// tail in its pre-park rescan or is doorbelled.
func (r *AsyncRing) flushDir(env *mk.Env) error {
	w := readDirU64(env, r.dirVA, dirOffBitmap+8*r.dirWord)
	if w&r.dirMask == 0 {
		writeDirU64(env, r.dirVA, dirOffBitmap+8*r.dirWord, w|r.dirMask)
	}
	if readDirU64(env, r.dirVA, dirOffSleep) == 0 {
		r.DoorbellsSkipped++
		r.sb.RingDoorbellsSkipped++
		if r.flushT != nil {
			for s := r.flushSeq; s != r.subSeq; s++ {
				r.flushT[s%uint32(r.QD)] = env.T.Core.Clock
			}
		}
		r.flushSeq = r.subSeq
		return nil
	}
	return r.doorbell(env, 0, false)
}

// setBit/clearBit repair or retire a tenant's directory bit from the
// server side (one charged read-modify-write; sweeps never interleave
// with tenant flushes mid-RMW because neither side checkpoints inside).
func (fe *Frontend) setBit(env *mk.Env, t int) {
	off := dirOffBitmap + 8*(t/64)
	w := readDirU64(env, fe.dirSrv, off)
	if m := uint64(1) << (t % 64); w&m == 0 {
		writeDirU64(env, fe.dirSrv, off, w|m)
	}
}

func (fe *Frontend) clearBit(env *mk.Env, t int) {
	off := dirOffBitmap + 8*(t/64)
	w := readDirU64(env, fe.dirSrv, off)
	if m := uint64(1) << (t % 64); w&m != 0 {
		writeDirU64(env, fe.dirSrv, off, w&^m)
	}
}

// sweep is one epoch of the drain: stamp the epoch word, optionally
// rescan every tail to repair the bitmap, then visit exactly the set
// bits in tenant-ID order, draining each visited tenant by at most its
// deficit (deficit round robin). A tenant drained empty has its bit
// cleared and deficit reset; one left with pending work keeps its bit
// and earns another quantum next sweep.
func (fe *Frontend) sweep(env *mk.Env) (int, error) {
	cpu := env.T.Core
	t0 := cpu.Clock
	fe.Sweeps++
	fe.epoch++
	writeDirU64(env, fe.dirSrv, dirOffEpoch, fe.epoch)

	fe.sweepsSinceFull++
	if fe.sweepsSinceFull >= fe.cfg.FullSweepEvery {
		fe.sweepsSinceFull = 0
		fe.FullSweeps++
		for t, r := range fe.rings {
			fe.TailPolls++
			if readCtl(env, r.conn.ServerBuf, ctlSQTail) != r.srvSeq {
				fe.setBit(env, t)
			}
		}
	}

	served, visited := 0, 0
	var service uint64
	for w := 0; w < fe.nWords; w++ {
		word := readDirU64(env, fe.dirSrv, dirOffBitmap+8*w)
		for bitsLeft := word; bitsLeft != 0; {
			tz := bits.TrailingZeros64(bitsLeft)
			bitsLeft &^= 1 << tz
			t := w*64 + tz
			if t >= len(fe.rings) {
				// A bit beyond any issued ring: only a malicious or
				// buggy tenant sets one; retire it.
				fe.clearBit(env, t)
				continue
			}
			r := fe.rings[t]
			if r.claimed {
				// A stealing sibling is mid-drain (adaptive.go); the
				// bit stays set and the next sweep revisits.
				continue
			}
			visited++
			fe.deficit[t] += fe.cfg.Quantum
			s0 := cpu.Clock
			r.claimed = true
			n, more, err := r.serveDrainMax(env, fe.deficit[t])
			r.claimed = false
			service += cpu.Clock - s0
			if err != nil {
				return served, err
			}
			fe.deficit[t] -= n
			served += n
			if !more {
				fe.deficit[t] = 0
				fe.clearBit(env, t)
			}
		}
	}
	fe.TenantsVisited += uint64(visited)
	fe.TenantsSkipped += uint64(len(fe.rings) - visited)
	fe.ServiceCycles += service
	fe.PollCycles += (cpu.Clock - t0) - service
	return served, nil
}

// Serve is the frontend's drain loop: sweep while work arrives, and when
// a sweep comes back empty wait adaptively — spin probing only the
// bitmap words (O(words)), then publish the serverSleeping flag, re-scan
// every ring's tail directly (the Dekker re-check that makes malicious
// bit clears harmless on the sleep edge), and park until a tenant's
// doorbell (or Close) kicks the thread. Runs on a dedicated thread of
// the server process; returns nil after Close once every ring is
// drained, or the first dispatch error.
func (fe *Frontend) Serve(env *mk.Env) error {
	if env.P != fe.sink.srv.Proc {
		return fmt.Errorf("core: frontend for %s serving from process %s",
			fe.sink.srv.Proc.Name, env.P.Name)
	}
	for {
		env.T.Checkpoint()
		n, err := fe.sweep(env)
		if err != nil {
			return err
		}
		if fe.dir != nil {
			m, err := fe.dir.tick(env, fe)
			if err != nil {
				return err
			}
			n += m
		}
		if n > 0 {
			continue
		}
		if fe.closed {
			return fe.finalDrain(env)
		}
		if fe.dir != nil {
			m, err := fe.dir.steal(env, fe)
			if err != nil {
				return err
			}
			if m > 0 {
				continue
			}
		}
		armed := false
		env.AdaptiveWait(&fe.sink.parker, fe.cfg.Pol, func() bool {
			if fe.closed {
				return true
			}
			if !armed {
				// Spin probe: bitmap words only (plus sibling bitmaps
				// when stealing is on).
				for w := 0; w < fe.nWords; w++ {
					if readDirU64(env, fe.dirSrv, dirOffBitmap+8*w) != 0 {
						return true
					}
				}
				if fe.dir != nil && fe.dir.stealable(env, fe) {
					return true
				}
				return false
			}
			// Post-arm re-check: every tail, directly. A tenant whose bit
			// was cleared out from under it is found here — repair the bit
			// so the next sweep drains it instead of spinning back here.
			for t, r := range fe.rings {
				if readCtl(env, r.conn.ServerBuf, ctlSQTail) != r.srvSeq {
					fe.setBit(env, t)
					return true
				}
			}
			return false
		}, func() {
			armed = true
			writeDirU64(env, fe.dirSrv, dirOffSleep, 1)
		}, func() {
			armed = false
			writeDirU64(env, fe.dirSrv, dirOffSleep, 0)
		})
		fe.IdleParkedCycles += fe.sink.parker.Last.Parked
	}
}

// finalDrain empties every ring after Close, ignoring the bitmap (a
// shutdown must not trust a hint).
func (fe *Frontend) finalDrain(env *mk.Env) error {
	for {
		n := 0
		for _, r := range fe.rings {
			if r.claimed {
				continue
			}
			r.claimed = true
			m, err := r.serveDrain(env)
			r.claimed = false
			if err != nil {
				return err
			}
			n += m
		}
		if n == 0 {
			return nil
		}
	}
}

// Close marks the drain loop for shutdown and kicks it awake (shutdown
// bookkeeping: no IPI is modeled). The loop drains any remaining
// submissions before returning. Callers stop submitting first.
func (fe *Frontend) Close(env *mk.Env) {
	fe.closed = true
	if fe.dir != nil {
		fe.dir.gates[fe.slot].Close(env)
	}
	env.K.CloseParker(env.T.Core, &fe.sink.parker)
}
