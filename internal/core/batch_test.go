package core

import (
	"bytes"
	"fmt"
	"testing"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
)

// TestDirectCallBatchCorrectness: a batch of mixed register-only and
// payload requests returns the same responses, in order, as individual
// direct calls.
func TestDirectCallBatchCorrectness(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		conn, err := sb.RegisterClient(env, id)
		if err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		const n = 6
		scratch := env.P.Alloc(hw.PageSize)
		reqs := make([]Request, n)
		var want [][]byte
		maxLen := 0
		for i := range reqs {
			reqs[i].Regs[0] = uint64(10 + i)
			if i%2 == 1 {
				payload := []byte(fmt.Sprintf("batch-req-%d", i))
				at := scratch + hw.VA(64*i)
				env.Write(at, payload, len(payload))
				reqs[i].Buf, reqs[i].Len = at, len(payload)
				want = append(want, bytes.ToUpper(payload))
				if len(payload) > maxLen {
					maxLen = len(payload)
				}
			} else {
				want = append(want, nil)
			}
		}
		layout, err := conn.Layout(n, maxLen)
		if err != nil {
			t.Errorf("layout: %v", err)
			return
		}
		resps, err := sb.DirectCallBatch(env, id, reqs)
		if err != nil {
			t.Errorf("batch call: %v", err)
			return
		}
		if len(resps) != n {
			t.Errorf("got %d responses, want %d", len(resps), n)
			return
		}
		for i, resp := range resps {
			if resp.Regs[0] != uint64(2*(10+i)) {
				t.Errorf("resp %d Regs[0] = %d, want %d", i, resp.Regs[0], 2*(10+i))
			}
			if want[i] == nil {
				continue
			}
			if resp.Len != len(want[i]) {
				t.Errorf("resp %d Len = %d, want %d", i, resp.Len, len(want[i]))
				continue
			}
			got := make([]byte, resp.Len)
			env.Read(conn.ClientBuf+hw.VA(layout.PayloadOff(i)), got, resp.Len)
			if !bytes.Equal(got, want[i]) {
				t.Errorf("resp %d payload = %q, want %q", i, got, want[i])
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sb.BatchCalls != 1 {
		t.Errorf("BatchCalls = %d, want 1", sb.BatchCalls)
	}
	if sb.DirectCalls != 6 {
		t.Errorf("DirectCalls = %d, want 6 (one per batched request)", sb.DirectCalls)
	}
}

// TestDirectCallBatchAmortizesCrossing: a batch of B requests costs
// noticeably less than B individual calls — the trampoline+VMFUNC round
// trip and the key check are paid once per crossing.
func TestDirectCallBatchAmortizes(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	const batch = 8
	var single, batched uint64
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		call := func(i int) Request { return Request{Regs: [4]uint64{uint64(i)}} }
		// Warm both paths.
		for i := 0; i < batch; i++ {
			if _, err := sb.DirectCall(env, id, call(i)); err != nil {
				t.Errorf("warm call: %v", err)
				return
			}
		}
		reqs := make([]Request, batch)
		for i := range reqs {
			reqs[i] = call(i)
		}
		if _, err := sb.DirectCallBatch(env, id, reqs); err != nil {
			t.Errorf("warm batch: %v", err)
			return
		}
		start := env.Now()
		for i := 0; i < batch; i++ {
			if _, err := sb.DirectCall(env, id, call(i)); err != nil {
				t.Errorf("call: %v", err)
				return
			}
		}
		single = env.Now() - start
		start = env.Now()
		if _, err := sb.DirectCallBatch(env, id, reqs); err != nil {
			t.Errorf("batch: %v", err)
			return
		}
		batched = env.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// One warm round trip is ~396 cycles; batching should save most of
	// (batch-1) of them even after paying the ring traffic.
	if batched >= single {
		t.Fatalf("batched %d cycles >= %d unbatched", batched, single)
	}
	saved := single - batched
	if saved < (batch-1)*250 {
		t.Errorf("batch of %d saved only %d cycles (unbatched %d, batched %d)", batch, saved, single, batched)
	}
}

// TestDirectCallBatchValidation: a batch whose slots cannot fit the
// shared buffer is rejected before the crossing, and ring limits are
// enforced.
func TestDirectCallBatchValidation(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		conn, err := sb.RegisterClient(env, id)
		if err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		// Register-only batches get the floor slot size.
		layout, err := conn.Layout(4, 0)
		if err != nil {
			t.Errorf("layout: %v", err)
			return
		}
		if layout.SlotLen < 256 {
			t.Errorf("floor SlotLen = %d, want >= 256 (reply headroom)", layout.SlotLen)
		}
		calls := sb.DirectCalls
		// 8 slots of 4 KiB cannot fit the 16 KiB shared buffer.
		reqs := make([]Request, 8)
		for i := range reqs {
			reqs[i].Buf, reqs[i].Len = conn.ClientBuf, 4096
		}
		if _, err := sb.DirectCallBatch(env, id, reqs); err == nil {
			t.Error("batch overflowing the shared buffer accepted")
		}
		if sb.DirectCalls != calls {
			t.Error("failed batch still counted direct calls")
		}
		if _, err := conn.Layout(MaxBatch+1, 0); err == nil {
			t.Errorf("Layout(%d) accepted beyond MaxBatch", MaxBatch+1)
		}
		if _, err := conn.Layout(4, -1); err == nil {
			t.Error("Layout accepted a negative capacity")
		}
		if _, err := sb.DirectCallBatch(env, 9999, reqs[:2]); err != ErrNotRegistered {
			t.Errorf("unknown server: err = %v, want ErrNotRegistered", err)
		}
		if resps, err := sb.DirectCallBatch(env, id, nil); err != nil || resps != nil {
			t.Errorf("empty batch: resps=%v err=%v", resps, err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDirectCallBatchOfOneDelegates: a 1-request batch takes the plain
// DirectCall path (no ring traffic, no BatchCalls increment).
func TestDirectCallBatchOfOneDelegates(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	server := k.NewProcess("server")
	client := k.NewProcess("client")
	id := registerEcho(t, eng, k, sb, server, k.Mach.Cores[0])

	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, id); err != nil {
			t.Errorf("register client: %v", err)
			return
		}
		resps, err := sb.DirectCallBatch(env, id, []Request{{Regs: [4]uint64{21}}})
		if err != nil {
			t.Errorf("batch of one: %v", err)
			return
		}
		if len(resps) != 1 || resps[0].Regs[0] != 42 {
			t.Errorf("batch of one: resps = %v", resps)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sb.BatchCalls != 0 {
		t.Errorf("BatchCalls = %d, want 0 for a batch of one", sb.BatchCalls)
	}
	if sb.DirectCalls != 1 {
		t.Errorf("DirectCalls = %d, want 1", sb.DirectCalls)
	}
}

// TestDirectCallBatchNested: a server handler may itself issue a batched
// call to another server mid-crossing; the slot stack keeps both EPT views
// resident and the chain unwinds correctly.
func TestDirectCallBatchNested(t *testing.T) {
	eng, k, _, sb := newWorld(t)
	leafProc := k.NewProcess("leaf")
	leafID := registerEcho(t, eng, k, sb, leafProc, k.Mach.Cores[0])

	hubProc := k.NewProcess("hub")
	var hubID int
	hubProc.Spawn("reg", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, leafID); err != nil {
			t.Errorf("hub->leaf bind: %v", err)
			return
		}
		var err error
		hubID, err = sb.RegisterServer(env, 8, 0x400200, func(env *mk.Env, req Request) Response {
			reqs := []Request{
				{Regs: [4]uint64{req.Regs[0]}},
				{Regs: [4]uint64{req.Regs[0] + 1}},
			}
			resps, err := sb.DirectCallBatch(env, leafID, reqs)
			if err != nil {
				t.Errorf("nested batch: %v", err)
				return Response{}
			}
			return Response{Regs: [4]uint64{resps[0].Regs[0] + resps[1].Regs[0]}}
		})
		if err != nil {
			t.Errorf("register hub: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	client := k.NewProcess("client")
	client.Spawn("cli", k.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sb.RegisterClient(env, hubID); err != nil {
			t.Errorf("bind hub: %v", err)
			return
		}
		resps, err := sb.DirectCallBatch(env, hubID, []Request{
			{Regs: [4]uint64{5}}, {Regs: [4]uint64{7}},
		})
		if err != nil {
			t.Errorf("outer batch: %v", err)
			return
		}
		// Hub(x) = 2x + 2(x+1).
		if resps[0].Regs[0] != 22 || resps[1].Regs[0] != 30 {
			t.Errorf("nested results = %v, want [22 30]", resps)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sb.tc) != 0 {
		t.Errorf("thread contexts leaked: %d", len(sb.tc))
	}
}
