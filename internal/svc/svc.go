// Package svc is a small service-transport abstraction that lets the same
// server implementation (block device, file system, KV store, encryption
// service) be reached three ways:
//
//   - Local: a plain function call inside the same address space — the
//     paper's "Baseline" configuration;
//   - IPC: synchronous kernel IPC through an mk.Endpoint — the
//     configuration every microkernel uses today;
//   - SkyBridge: a direct server call through internal/core.
//
// The evaluation's comparisons (Figures 2 and 8, Table 4, Figures 9-11)
// are all "same app, different transport", which this package makes a
// one-line change.
package svc

import (
	"encoding/binary"
	"fmt"

	"skybridge/internal/core"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
)

// Req is a service request: an opcode, three scalar arguments, and an
// optional payload.
type Req struct {
	Op   uint64
	Args [3]uint64
	Data []byte
	// RespCap, when non-zero, declares the largest reply payload the caller
	// expects. Batching transports size their per-request ring slots from
	// max(len(Data), RespCap); single-shot transports ignore it.
	RespCap int
}

// Resp is a service response: a status, three scalar results, and an
// optional payload.
type Resp struct {
	Status uint64
	Vals   [3]uint64
	Data   []byte
}

// StatusOK is the conventional success status.
const StatusOK = 0

// Handler implements a service. env is the execution context in the
// *server's* address space (whatever transport delivered the request).
//
// req.Data is only valid for the duration of the call: the transports reuse
// the backing buffer for subsequent requests, so a handler that keeps
// payload bytes must copy them (all in-tree handlers copy what they keep
// into simulated memory or fresh slices).
type Handler func(env *mk.Env, req Req) Resp

// Conn invokes a service from a client environment.
type Conn interface {
	Invoke(env *mk.Env, req Req) (Resp, error)
}

// --- Local transport (Baseline) ---

// localConn calls the handler in the caller's own address space, modelling
// the paper's Baseline configuration where client and servers share one
// virtual address space and are connected by function calls.
type localConn struct {
	handler Handler
	// delay, when non-zero, adds the paper's "Delay" configuration: a
	// busy-loop equal to the direct cost of an IPC (493 cycles).
	delay uint64
}

// NewLocal returns a Conn that performs plain function calls.
func NewLocal(handler Handler) Conn { return &localConn{handler: handler} }

// NewDelay returns a Conn that performs function calls padded with a fixed
// busy-wait, the paper's "Delay" configuration (§2.1.2).
func NewDelay(handler Handler, cycles uint64) Conn {
	return &localConn{handler: handler, delay: cycles}
}

func (c *localConn) Invoke(env *mk.Env, req Req) (Resp, error) {
	env.Compute(10) // call/return overhead
	if c.delay > 0 {
		env.Compute(c.delay)
	}
	resp := c.handler(env, req)
	if c.delay > 0 {
		env.Compute(c.delay)
	}
	return resp, nil
}

// --- Kernel IPC transport ---

// ipcConn marshals requests over a synchronous kernel endpoint.
type ipcConn struct {
	ep       *mk.Endpoint
	sendBuf  hw.VA
	replyBuf hw.VA
	bufLen   int
}

// NewIPC creates a client connection to an endpoint; per-connection send
// and reply buffers are allocated in the client process.
func NewIPC(client *mk.Process, ep *mk.Endpoint) Conn {
	const bufPages = 4
	client.Grant(ep)
	return &ipcConn{
		ep:       ep,
		sendBuf:  client.Alloc(bufPages * hw.PageSize),
		replyBuf: client.Alloc(bufPages * hw.PageSize),
		bufLen:   bufPages * hw.PageSize,
	}
}

func (c *ipcConn) Invoke(env *mk.Env, req Req) (Resp, error) {
	msg := mk.Msg{Regs: [4]uint64{req.Op, req.Args[0], req.Args[1], req.Args[2]}}
	if len(req.Data) > 0 {
		if len(req.Data) > c.bufLen {
			return Resp{}, fmt.Errorf("svc: payload %d exceeds buffer", len(req.Data))
		}
		env.Write(c.sendBuf, req.Data, len(req.Data))
		msg.Buf, msg.Len = c.sendBuf, len(req.Data)
	}
	reply, err := env.Call(c.ep, msg, c.replyBuf)
	if err != nil {
		return Resp{}, err
	}
	resp := Resp{Status: reply.Regs[0], Vals: [3]uint64{reply.Regs[1], reply.Regs[2], reply.Regs[3]}}
	if reply.Len > 0 {
		resp.Data = make([]byte, reply.Len)
		env.Read(c.replyBuf, resp.Data, reply.Len)
	}
	return resp, nil
}

// ServeIPC runs handler as an IPC server loop on env's thread. The server
// receive buffer is allocated in the server process. It returns when the
// endpoint closes.
func ServeIPC(env *mk.Env, ep *mk.Endpoint, handler Handler) {
	recvBuf := env.P.Alloc(4 * hw.PageSize)
	outBuf := env.P.Alloc(4 * hw.PageSize)
	// One serve loop is one server thread, so a single request buffer can be
	// reused across iterations (handlers do not retain req.Data; see Handler).
	var reqBuf []byte
	env.K.Serve(env, ep, recvBuf, func(env *mk.Env, m mk.Msg) mk.Msg {
		req := Req{Op: m.Regs[0], Args: [3]uint64{m.Regs[1], m.Regs[2], m.Regs[3]}}
		if m.Len > 0 {
			if cap(reqBuf) < m.Len {
				reqBuf = make([]byte, m.Len)
			}
			req.Data = reqBuf[:m.Len]
			env.Read(m.Buf, req.Data, m.Len)
		}
		resp := handler(env, req)
		out := mk.Msg{Regs: [4]uint64{resp.Status, resp.Vals[0], resp.Vals[1], resp.Vals[2]}}
		if len(resp.Data) > 0 {
			env.Write(outBuf, resp.Data, len(resp.Data))
			out.Buf, out.Len = outBuf, len(resp.Data)
		}
		return out
	})
}

// --- SkyBridge transport ---

// sbConn invokes a service through a SkyBridge direct server call.
type sbConn struct {
	sb       *core.SkyBridge
	serverID int
	conn     *core.Connection
}

// RegisterSkyBridgeServer registers handler as a SkyBridge server on env's
// process and returns the server ID.
func RegisterSkyBridgeServer(sb *core.SkyBridge, env *mk.Env, maxConns int, handler Handler) (int, error) {
	// Direct server calls execute on the *calling* thread, so several
	// simulated threads can be inside this wrapper at once (interleaved at
	// park points). Request buffers therefore come from a free list: each
	// in-flight call owns its buffer exclusively from pop to push, and the
	// push happens only after the reply payload has been written out
	// (handlers do not retain req.Data; see Handler).
	var bufs [][]byte
	return sb.RegisterServer(env, maxConns, 0, func(env *mk.Env, dreq core.Request) core.Response {
		req := Req{Op: dreq.Regs[0], Args: [3]uint64{dreq.Regs[1], dreq.Regs[2], dreq.Regs[3]}}
		var buf []byte
		if dreq.Len > 0 {
			if n := len(bufs); n > 0 {
				buf, bufs = bufs[n-1], bufs[:n-1]
			}
			if cap(buf) < dreq.Len {
				buf = make([]byte, dreq.Len)
			}
			req.Data = buf[:dreq.Len]
			env.Read(dreq.SharedBuf, req.Data, dreq.Len)
		}
		resp := handler(env, req)
		out := core.Response{Regs: [4]uint64{resp.Status, resp.Vals[0], resp.Vals[1], resp.Vals[2]}}
		if len(resp.Data) > 0 {
			env.Write(dreq.SharedBuf, resp.Data, len(resp.Data))
			out.Len = len(resp.Data)
		}
		if buf != nil {
			bufs = append(bufs, buf)
		}
		return out
	})
}

// NewSkyBridge registers the calling client to serverID and returns a Conn
// that performs direct server calls.
func NewSkyBridge(sb *core.SkyBridge, env *mk.Env, serverID int) (Conn, error) {
	conn, err := sb.RegisterClient(env, serverID)
	if err != nil {
		return nil, err
	}
	return &sbConn{sb: sb, serverID: serverID, conn: conn}, nil
}

func (c *sbConn) Invoke(env *mk.Env, req Req) (Resp, error) {
	dreq := core.Request{Regs: [4]uint64{req.Op, req.Args[0], req.Args[1], req.Args[2]}}
	if len(req.Data) > 0 {
		// Write the payload straight into the shared buffer (one copy).
		c.conn.WriteRequest(env, req.Data)
		dreq.Len = len(req.Data)
		dreq.Buf = c.conn.ClientBuf
	}
	dresp, err := c.sb.DirectCall(env, c.serverID, dreq)
	if err != nil {
		return Resp{}, err
	}
	resp := Resp{Status: dresp.Regs[0], Vals: [3]uint64{dresp.Regs[1], dresp.Regs[2], dresp.Regs[3]}}
	if dresp.Len > 0 {
		resp.Data = make([]byte, dresp.Len)
		c.conn.ReadReply(env, resp.Data, dresp.Len)
	}
	return resp, nil
}

// PutU64/GetU64 are payload marshalling helpers shared by services.
func PutU64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }

// GetU64 reads a little-endian u64 at off.
func GetU64(b []byte, off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }
