package svc

import (
	"skybridge/internal/core"
	"skybridge/internal/mk"
)

// AsyncConn is the asynchronous counterpart of a SkyBridge Conn: requests
// are submitted into the connection's submission ring (core.AsyncRing)
// without crossing, made visible with Flush (a doorbell crossing only
// when the server sleeps), and results collected with Reap. Up to the
// ring's queue depth requests overlap the server's work.
type AsyncConn struct {
	Ring *core.AsyncRing
}

// OpenAsync registers the calling client to serverID (if not already) and
// opens a ring of depth qd with payload slots of at least payloadCap
// bytes. The server must have a core.RingServer poll loop attached.
func OpenAsync(sb *core.SkyBridge, env *mk.Env, serverID, qd, payloadCap int, pol mk.WakePolicy) (*AsyncConn, error) {
	if _, ok := sb.ConnectionOf(env.P, serverID); !ok {
		if _, err := sb.RegisterClient(env, serverID); err != nil {
			return nil, err
		}
	}
	r, err := sb.OpenRing(env, serverID, qd, payloadCap, pol)
	if err != nil {
		return nil, err
	}
	return &AsyncConn{Ring: r}, nil
}

// Submit enqueues one request. Payloads are staged straight into the
// request's ring slot (one copy, client side). ErrRingFull surfaces as
// core.ErrRingFull; callers reap and retry.
func (c *AsyncConn) Submit(env *mk.Env, req Req) error {
	dreq := core.Request{Regs: [4]uint64{req.Op, req.Args[0], req.Args[1], req.Args[2]}}
	if len(req.Data) > 0 {
		slot := c.Ring.SlotVA()
		env.Write(slot, req.Data, len(req.Data))
		dreq.Buf, dreq.Len = slot, len(req.Data)
	}
	return c.Ring.Submit(env, dreq)
}

// Flush makes pending submissions visible to the server (doorbell only if
// it sleeps). Call before a blocking Reap.
func (c *AsyncConn) Flush(env *mk.Env) error { return c.Ring.Flush(env) }

// Inflight returns submissions not yet reaped.
func (c *AsyncConn) Inflight() int { return c.Ring.Inflight() }

// Reap collects at least minN responses (0 = whatever is ready),
// blocking adaptively like the underlying ring. Responses come back in
// submission order.
func (c *AsyncConn) Reap(env *mk.Env, minN int) ([]Resp, error) {
	cs, err := c.Ring.Reap(env, minN)
	if err != nil {
		return nil, err
	}
	resps := make([]Resp, len(cs))
	for i, comp := range cs {
		resps[i] = Resp{
			Status: comp.Regs[0],
			Vals:   [3]uint64{comp.Regs[1], comp.Regs[2], comp.Regs[3]},
			Data:   comp.Data,
		}
	}
	return resps, nil
}
