package svc

import (
	"fmt"
	"testing"

	"skybridge/internal/mk"
)

// recordConn is a Conn (not a Batcher) that records how requests arrive.
type recordConn struct {
	id      int
	invokes int
	ops     []uint64
}

func (c *recordConn) Invoke(env *mk.Env, req Req) (Resp, error) {
	c.invokes++
	c.ops = append(c.ops, req.Op)
	return Resp{Status: StatusOK, Vals: [3]uint64{uint64(c.id), req.Op, 0}}, nil
}

// batchConn is a Batcher that records batch boundaries.
type batchConn struct {
	recordConn
	batches [][]uint64
}

func (c *batchConn) InvokeBatch(env *mk.Env, reqs []Req) ([]Resp, error) {
	ops := make([]uint64, len(reqs))
	resps := make([]Resp, len(reqs))
	for i, req := range reqs {
		ops[i] = req.Op
		resps[i] = Resp{Status: StatusOK, Vals: [3]uint64{uint64(c.id), req.Op, 0}}
	}
	c.batches = append(c.batches, ops)
	return resps, nil
}

// TestInvokeBatchFallsBackSequentially: a plain Conn serves a batch as
// sequential Invoke calls, in submission order.
func TestInvokeBatchFallsBackSequentially(t *testing.T) {
	c := &recordConn{id: 7}
	reqs := []Req{{Op: 3}, {Op: 1}, {Op: 2}}
	resps, err := InvokeBatch(nil, c, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if c.invokes != 3 {
		t.Errorf("invokes = %d, want 3", c.invokes)
	}
	for i, r := range resps {
		if r.Vals[1] != reqs[i].Op {
			t.Errorf("resp %d echoes op %d, want %d", i, r.Vals[1], reqs[i].Op)
		}
	}
}

// TestInvokeBatchPrefersBatcher: a Batcher gets the whole batch in one
// call.
func TestInvokeBatchPrefersBatcher(t *testing.T) {
	c := &batchConn{recordConn: recordConn{id: 2}}
	resps, err := InvokeBatch(nil, c, []Req{{Op: 5}, {Op: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.batches) != 1 || len(c.batches[0]) != 2 {
		t.Errorf("batches = %v, want one batch of 2", c.batches)
	}
	if c.invokes != 0 {
		t.Errorf("fell back to %d sequential invokes", c.invokes)
	}
	if len(resps) != 2 || resps[1].Vals[1] != 6 {
		t.Errorf("resps = %v", resps)
	}
}

// TestShardedRoutesAndScatters: requests group per shard (visited in
// index order), batch once per shard, and responses scatter back to
// submission order.
func TestShardedRoutesAndScatters(t *testing.T) {
	shards := []Conn{
		&batchConn{recordConn: recordConn{id: 0}},
		&batchConn{recordConn: recordConn{id: 1}},
		&batchConn{recordConn: recordConn{id: 2}},
	}
	s := NewSharded(shards, func(req Req) int { return int(req.Op % 3) })

	reqs := make([]Req, 10)
	for i := range reqs {
		reqs[i] = Req{Op: uint64(i)}
	}
	resps, err := s.InvokeBatch(nil, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		wantShard := uint64(i % 3)
		if r.Vals[0] != wantShard || r.Vals[1] != uint64(i) {
			t.Errorf("resp %d came from shard %d for op %d, want shard %d op %d",
				i, r.Vals[0], r.Vals[1], wantShard, i)
		}
	}
	// Shard 0 owns ops 0,3,6,9 as one batch; shard 2 owns 2,5,8.
	b0 := shards[0].(*batchConn)
	if len(b0.batches) != 1 || fmt.Sprint(b0.batches[0]) != "[0 3 6 9]" {
		t.Errorf("shard 0 batches = %v", b0.batches)
	}
	b2 := shards[2].(*batchConn)
	if len(b2.batches) != 1 || fmt.Sprint(b2.batches[0]) != "[2 5 8]" {
		t.Errorf("shard 2 batches = %v", b2.batches)
	}
}

// TestShardedSingleInvoke routes one request straight to its shard.
func TestShardedSingleInvoke(t *testing.T) {
	shards := []Conn{&recordConn{id: 0}, &recordConn{id: 1}}
	s := NewSharded(shards, func(req Req) int { return int(req.Op) })
	resp, err := s.Invoke(nil, Req{Op: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Vals[0] != 1 {
		t.Errorf("routed to shard %d, want 1", resp.Vals[0])
	}
	if shards[0].(*recordConn).invokes != 0 {
		t.Error("shard 0 was invoked")
	}
}

// TestShardedSkipsEmptyShards: a batch touching a subset of shards only
// crosses to those shards.
func TestShardedSkipsEmptyShards(t *testing.T) {
	shards := []Conn{
		&batchConn{recordConn: recordConn{id: 0}},
		&batchConn{recordConn: recordConn{id: 1}},
	}
	s := NewSharded(shards, func(req Req) int { return 0 })
	if _, err := s.InvokeBatch(nil, []Req{{Op: 1}, {Op: 2}}); err != nil {
		t.Fatal(err)
	}
	if n := len(shards[1].(*batchConn).batches); n != 0 {
		t.Errorf("idle shard received %d batches", n)
	}
}
