package svc

import (
	"encoding/binary"

	"skybridge/internal/core"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
)

// Router is the epoch-aware client half of adaptive placement
// (core.Director): one tenant ring per sibling frontend, plus a
// read-only mapping of the Director's routing region. Every routed
// submit re-reads the epoch word (one charged 8-byte load of a
// line that stays cache-hot between migrations); when it moved, the
// owner table is re-read and the request goes to the shard's new
// owner. A request that still lands on a stale owner — it was already
// in the old owner's ring when the epoch bumped — comes back with the
// service's wrong-epoch status and is resubmitted by the caller, so
// every op executes exactly once, on the current owner.
type Router struct {
	Conns []*TenantConn // drain slot -> this client's ring on it

	routeVA hw.VA
	epoch   uint64
	owner   []byte

	// Stats (client-side).
	Refreshes uint64 // owner-table re-reads after an epoch move
	Retries   uint64 // wrong-epoch resubmits (caller-counted via NoteRetry)
}

// OpenRouter opens one tenant ring per sibling frontend (depth qd,
// payload capacity payloadCap) and maps the routing region read-only
// into the calling client.
func OpenRouter(env *mk.Env, d *core.Director, fes []*Frontend, qd, payloadCap int) (*Router, error) {
	rt := &Router{owner: make([]byte, d.Shards())}
	for _, f := range fes {
		c, err := f.OpenTenant(env, qd, payloadCap)
		if err != nil {
			return nil, err
		}
		rt.Conns = append(rt.Conns, c)
	}
	rt.routeVA = d.MapRoute(env)
	rt.refresh(env)
	return rt, nil
}

func (rt *Router) refresh(env *mk.Env) {
	env.Read(rt.routeVA+core.RouteOwnerOff, rt.owner, len(rt.owner))
	rt.Refreshes++
}

// OwnerOf returns the drain slot currently owning shard, re-reading
// the owner table if the routing epoch moved since the last look.
func (rt *Router) OwnerOf(env *mk.Env, shard int) int {
	var b [8]byte
	env.Read(rt.routeVA, b[:], 8)
	if e := binary.LittleEndian.Uint64(b[:]); e != rt.epoch {
		rt.epoch = e
		rt.refresh(env)
	}
	return int(rt.owner[shard])
}

// Submit stamps the shard into Args[0] (the placed handler's ownership
// check reads it back) and submits to the shard's current owner.
// Returns the drain slot used so the caller can flush and track
// in-flight ops per connection. No simulated checkpoint separates the
// routing read from the ring write, so the routing decision and the
// entry placement are atomic against migrations.
func (rt *Router) Submit(env *mk.Env, shard int, req Req) (int, error) {
	req.Args[0] = uint64(shard)
	slot := rt.OwnerOf(env, shard)
	return slot, rt.Conns[slot].Submit(env, req)
}

// NoteRetry counts a wrong-epoch resubmit.
func (rt *Router) NoteRetry() { rt.Retries++ }

// Inflight sums un-reaped submissions across all connections.
func (rt *Router) Inflight() int {
	n := 0
	for _, c := range rt.Conns {
		n += c.Inflight()
	}
	return n
}
