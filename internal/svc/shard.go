package svc

import (
	"fmt"

	"skybridge/internal/core"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
)

// Batcher is a Conn whose transport can carry several requests in one
// crossing. SkyBridge connections batch natively (one trampoline+VMFUNC
// round trip serves the whole batch, core.DirectCallBatch); the other
// transports fall back to sequential calls via InvokeBatch.
type Batcher interface {
	Conn
	InvokeBatch(env *mk.Env, reqs []Req) ([]Resp, error)
}

// InvokeBatch submits reqs through c in one transport crossing when the
// connection supports batching, and as sequential Invoke calls otherwise,
// returning responses in submission order either way.
func InvokeBatch(env *mk.Env, c Conn, reqs []Req) ([]Resp, error) {
	if b, ok := c.(Batcher); ok {
		return b.InvokeBatch(env, reqs)
	}
	resps := make([]Resp, len(reqs))
	for i, req := range reqs {
		resp, err := c.Invoke(env, req)
		if err != nil {
			return nil, err
		}
		resps[i] = resp
	}
	return resps, nil
}

// InvokeBatch implements Batcher for SkyBridge connections: payloads are
// written straight into each request's ring slot (one copy, client side)
// and the whole batch crosses in one direct call round trip.
func (c *sbConn) InvokeBatch(env *mk.Env, reqs []Req) ([]Resp, error) {
	switch len(reqs) {
	case 0:
		return nil, nil
	case 1:
		resp, err := c.Invoke(env, reqs[0])
		if err != nil {
			return nil, err
		}
		return []Resp{resp}, nil
	}
	// The layout must match what core.DirectCallBatch derives: slots sized
	// to the largest request payload or declared reply capacity.
	maxLen := 0
	for i := range reqs {
		if len(reqs[i].Data) > maxLen {
			maxLen = len(reqs[i].Data)
		}
		if reqs[i].RespCap > maxLen {
			maxLen = reqs[i].RespCap
		}
	}
	layout, err := c.conn.Layout(len(reqs), maxLen)
	if err != nil {
		return nil, err
	}
	dreqs := make([]core.Request, len(reqs))
	for i, req := range reqs {
		dreqs[i].Regs = [4]uint64{req.Op, req.Args[0], req.Args[1], req.Args[2]}
		dreqs[i].Cap = req.RespCap
		if len(req.Data) > 0 {
			if len(req.Data) > layout.SlotLen {
				return nil, fmt.Errorf("svc: batch payload %d exceeds slot %d", len(req.Data), layout.SlotLen)
			}
			at := c.conn.ClientBuf + hw.VA(layout.PayloadOff(i))
			env.Write(at, req.Data, len(req.Data))
			dreqs[i].Buf, dreqs[i].Len = at, len(req.Data)
		}
	}
	dresps, err := c.sb.DirectCallBatch(env, c.serverID, dreqs)
	if err != nil {
		return nil, err
	}
	resps := make([]Resp, len(dresps))
	for i, dr := range dresps {
		resps[i] = Resp{Status: dr.Regs[0], Vals: [3]uint64{dr.Regs[1], dr.Regs[2], dr.Regs[3]}}
		if dr.Len > 0 {
			resps[i].Data = make([]byte, dr.Len)
			env.Read(c.conn.ClientBuf+hw.VA(layout.PayloadOff(i)), resps[i].Data, dr.Len)
		}
	}
	return resps, nil
}

// Sharded fans one logical service out over per-shard connections: Pick
// routes each request (typically by key hash) to the shard owning it.
// Registering every shard as its own server — one per core — is what
// turns SkyBridge's cheap crossing into multicore throughput: clients on
// different cores drive their shards concurrently.
type Sharded struct {
	Shards []Conn
	// Pick returns the shard index owning req. It must be deterministic
	// in the request (routing is part of the simulated results).
	Pick func(req Req) int
}

// NewSharded builds a sharded connection over per-shard conns.
func NewSharded(shards []Conn, pick func(req Req) int) *Sharded {
	return &Sharded{Shards: shards, Pick: pick}
}

// Invoke routes a single request to its shard.
func (s *Sharded) Invoke(env *mk.Env, req Req) (Resp, error) {
	return s.Shards[s.Pick(req)%len(s.Shards)].Invoke(env, req)
}

// InvokeBatch groups reqs by destination shard and submits one batched
// call per shard group (shards visited in index order), scattering the
// responses back into submission order. With all shards registered as
// SkyBridge servers, a batch of B requests spread over S shards costs S
// crossings instead of B.
func (s *Sharded) InvokeBatch(env *mk.Env, reqs []Req) ([]Resp, error) {
	groups := make([][]int, len(s.Shards))
	for i, req := range reqs {
		sh := s.Pick(req) % len(s.Shards)
		groups[sh] = append(groups[sh], i)
	}
	resps := make([]Resp, len(reqs))
	for sh, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		sub := make([]Req, len(idxs))
		for j, i := range idxs {
			sub[j] = reqs[i]
		}
		subResps, err := InvokeBatch(env, s.Shards[sh], sub)
		if err != nil {
			return nil, fmt.Errorf("svc: shard %d: %w", sh, err)
		}
		for j, i := range idxs {
			resps[i] = subResps[j]
		}
	}
	return resps, nil
}
