package svc

import (
	"skybridge/internal/core"
	"skybridge/internal/mk"
)

// Multi-tenant frontend transport: the svc-level face of core's MPSC
// ring multiplexing (internal/core/mpsc.go). One server process runs a
// Frontend whose drain loop multiplexes the per-tenant rings of N
// registered tenants; each tenant holds a TenantConn — an AsyncConn
// whose ring is tagged with its server-assigned tenant ID and wired into
// the frontend's active-tenant directory.

// TenantHandler is a multi-tenant service implementation: a Handler plus
// the ring-authenticated tenant ID the request arrived on (bound
// server-side at ring-open time; a client cannot forge it — see
// core.RingStatusBadTenant).
type TenantHandler func(env *mk.Env, tenant int, req Req) Resp

// Frontend is a registered multi-tenant server: the SkyBridge server
// registration plus its core.Frontend drain.
type Frontend struct {
	SB       *core.SkyBridge
	FE       *core.Frontend
	ServerID int
}

// NewFrontend registers env's process as a SkyBridge server for up to
// maxConns tenants and attaches a multi-tenant drain with the given
// config. Requests reach handler with the authenticated tenant ID; the
// synchronous DirectCall path carries no tenant binding and is rejected
// outright (status core.RingStatusBadTenant) — frontend servers speak
// rings only.
func NewFrontend(sb *core.SkyBridge, env *mk.Env, maxConns int, cfg core.FrontendConfig, handler TenantHandler) (*Frontend, error) {
	id, err := sb.RegisterServer(env, maxConns, 0, func(env *mk.Env, _ core.Request) core.Response {
		return core.Response{Regs: [4]uint64{core.RingStatusBadTenant}}
	})
	if err != nil {
		return nil, err
	}
	// Same free-list discipline as RegisterSkyBridgeServer: the drain runs
	// on one poll thread but handlers can nest at park points, so each
	// in-flight request owns its buffer from pop to push.
	var bufs [][]byte
	fe, err := sb.NewFrontend(id, cfg, func(env *mk.Env, tenant int, dreq core.Request) core.Response {
		req := Req{Op: dreq.Regs[0], Args: [3]uint64{dreq.Regs[1], dreq.Regs[2], dreq.Regs[3]}}
		var buf []byte
		if dreq.Len > 0 {
			if n := len(bufs); n > 0 {
				buf, bufs = bufs[n-1], bufs[:n-1]
			}
			if cap(buf) < dreq.Len {
				buf = make([]byte, dreq.Len)
			}
			req.Data = buf[:dreq.Len]
			env.Read(dreq.SharedBuf, req.Data, dreq.Len)
		}
		resp := handler(env, tenant, req)
		out := core.Response{Regs: [4]uint64{resp.Status, resp.Vals[0], resp.Vals[1], resp.Vals[2]}}
		if len(resp.Data) > 0 {
			env.Write(dreq.SharedBuf, resp.Data, len(resp.Data))
			out.Len = len(resp.Data)
		}
		if buf != nil {
			bufs = append(bufs, buf)
		}
		return out
	})
	if err != nil {
		return nil, err
	}
	return &Frontend{SB: sb, FE: fe, ServerID: id}, nil
}

// Serve runs the drain loop (on a dedicated server-process thread).
func (f *Frontend) Serve(env *mk.Env) error { return f.FE.Serve(env) }

// Close shuts the drain loop down after a final drain of every ring.
func (f *Frontend) Close(env *mk.Env) { f.FE.Close(env) }

// TenantConn is a tenant's connection to a Frontend: an AsyncConn over a
// tenant-tagged ring, plus the server-assigned tenant ID.
type TenantConn struct {
	AsyncConn
	Tenant int
}

// OpenTenant registers the calling client to the frontend's server (if
// not already) and opens its tenant ring: depth qd (0 = the frontend's
// credit), payload slots of at least payloadCap bytes.
func (f *Frontend) OpenTenant(env *mk.Env, qd, payloadCap int) (*TenantConn, error) {
	if _, ok := f.SB.ConnectionOf(env.P, f.ServerID); !ok {
		if _, err := f.SB.RegisterClient(env, f.ServerID); err != nil {
			return nil, err
		}
	}
	r, tenant, err := f.FE.OpenTenantRing(env, qd, payloadCap)
	if err != nil {
		return nil, err
	}
	return &TenantConn{AsyncConn: AsyncConn{Ring: r}, Tenant: tenant}, nil
}
