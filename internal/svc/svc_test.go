package svc

import (
	"bytes"
	"testing"

	"skybridge/internal/core"
	"skybridge/internal/hv"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
)

// echoHandler doubles Regs[1] and reverses the payload.
func echoHandler(env *mk.Env, req Req) Resp {
	data := make([]byte, len(req.Data))
	for i, b := range req.Data {
		data[len(data)-1-i] = b
	}
	return Resp{Status: req.Op, Vals: [3]uint64{req.Args[0] * 2}, Data: data}
}

func checkEcho(t *testing.T, env *mk.Env, c Conn, payload int) {
	t.Helper()
	data := make([]byte, payload)
	for i := range data {
		data[i] = byte(i)
	}
	resp, err := c.Invoke(env, Req{Op: 7, Args: [3]uint64{21}, Data: data})
	if err != nil {
		t.Errorf("invoke: %v", err)
		return
	}
	if resp.Status != 7 || resp.Vals[0] != 42 {
		t.Errorf("scalars lost: %+v", resp)
	}
	if len(resp.Data) != payload {
		t.Errorf("payload len %d, want %d", len(resp.Data), payload)
		return
	}
	for i := range data {
		if resp.Data[len(data)-1-i] != data[i] {
			t.Error("payload not reversed correctly")
			return
		}
	}
}

func TestLocalTransport(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 1 << 28}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("p")
	p.Spawn("t", k.Mach.Cores[0], func(env *mk.Env) {
		checkEcho(t, env, NewLocal(echoHandler), 100)
		checkEcho(t, env, NewLocal(echoHandler), 0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayTransportAddsCycles(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 1 << 28}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("p")
	p.Spawn("t", k.Mach.Cores[0], func(env *mk.Env) {
		local := NewLocal(echoHandler)
		delay := NewDelay(echoHandler, 493)
		s1 := env.Now()
		local.Invoke(env, Req{})
		localCost := env.Now() - s1
		s2 := env.Now()
		delay.Invoke(env, Req{})
		delayCost := env.Now() - s2
		if delayCost != localCost+2*493 {
			t.Errorf("delay cost %d, want local %d + 986", delayCost, localCost)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestIPCTransportPayloadSizes covers the register-inline path (<=32B),
// the kernel-copy path, and multi-page payloads.
func TestIPCTransportPayloadSizes(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 1 << 28}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	srvP := k.NewProcess("srv")
	cliP := k.NewProcess("cli")
	ep := k.NewEndpoint("e")
	srvP.Spawn("s", k.Mach.Cores[0], func(env *mk.Env) { ServeIPC(env, ep, echoHandler) })
	cliP.Spawn("c", k.Mach.Cores[1], func(env *mk.Env) {
		c := NewIPC(cliP, ep)
		for _, n := range []int{0, 8, 32, 33, 100, 4096, 9000} {
			checkEcho(t, env, c, n)
		}
		ep.Close()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSkyBridgeTransport(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 4 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	rk, err := hv.Boot(k, hv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sb := core.New(k, rk)
	srvP := k.NewProcess("srv")
	cliP := k.NewProcess("cli")
	var id int
	srvP.Spawn("s", k.Mach.Cores[0], func(env *mk.Env) {
		id, err = RegisterSkyBridgeServer(sb, env, 4, echoHandler)
		if err != nil {
			t.Error(err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	cliP.Spawn("c", k.Mach.Cores[0], func(env *mk.Env) {
		c, err := NewSkyBridge(sb, env, id)
		if err != nil {
			t.Error(err)
			return
		}
		for _, n := range []int{0, 8, 100, 4096} {
			checkEcho(t, env, c, n)
		}
	})
	if err := k.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetU64(t *testing.T) {
	b := make([]byte, 16)
	PutU64(b, 4, 0xDEADBEEF12345678)
	if GetU64(b, 4) != 0xDEADBEEF12345678 {
		t.Fatal("u64 helper round trip failed")
	}
}

func TestIPCOversizedPayloadRejected(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 1 << 28}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	cliP := k.NewProcess("cli")
	ep := k.NewEndpoint("e")
	cliP.Spawn("c", k.Mach.Cores[0], func(env *mk.Env) {
		c := NewIPC(cliP, ep)
		if _, err := c.Invoke(env, Req{Data: bytes.Repeat([]byte{1}, 64*1024)}); err == nil {
			t.Error("oversized payload accepted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
