package fs

import (
	"bytes"
	"testing"

	"skybridge/internal/blockdev"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
	"skybridge/internal/svc"
)

// crashConn models power loss on the fs→blockdev connection: once armed,
// the first crashAt block writes reach the device and every later write
// (and flush) is acknowledged but silently dropped, exactly as if the
// machine died between those two device commands. Reads pass through —
// the post-crash world only reads via a fresh mount.
type crashConn struct {
	inner   svc.Conn
	armed   bool
	crashAt int
	writes  int // armed writes that reached the device
}

func (cc *crashConn) Invoke(env *mk.Env, req svc.Req) (svc.Resp, error) {
	if cc.armed && req.Op == blockdev.OpWrite {
		if cc.writes >= cc.crashAt {
			return svc.Resp{}, nil
		}
		cc.writes++
	}
	if cc.armed && req.Op == blockdev.OpFlush && cc.writes >= cc.crashAt {
		return svc.Resp{}, nil
	}
	return cc.inner.Invoke(env, req)
}

// crashRun makes a filesystem durable with oldData in "victim", then
// overwrites it with newData while the device drops every write after
// the crashAt'th, remounts a fresh FS over the surviving blocks (running
// log recovery), and asserts the file reads back as entirely old or
// entirely new. It returns how many writes the overwrite issued before
// the simulated power loss cut in, so the caller can size the sweep.
func crashRun(t *testing.T, cfg Config, crashAt int) int {
	t.Helper()
	const blocks = 1024
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 2 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("crashworld")
	dev := blockdev.New(p, blocks)
	inj := &crashConn{inner: svc.NewLocal(dev.Handler()), crashAt: crashAt}
	f1 := NewFS(p, inj, cfg)
	c1 := &Client{Conn: svc.NewLocal(f1.Handler())}

	// Old and new images span three blocks, so a torn commit would be
	// visible as a mix of the two patterns.
	n := 2*BlockSize + 512
	oldData := bytes.Repeat([]byte{'o'}, n)
	newData := bytes.Repeat([]byte{'n'}, n)

	p.Spawn("main", k.Mach.Cores[0], func(env *mk.Env) {
		if err := f1.Mkfs(env, blocks, 128); err != nil {
			t.Errorf("mkfs: %v", err)
			return
		}
		fd, _, err := c1.Open(env, "victim", true)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := c1.WriteAt(env, fd, 0, oldData); err != nil {
			t.Errorf("write old: %v", err)
			return
		}
		if err := c1.Fsync(env); err != nil {
			t.Errorf("fsync old: %v", err)
			return
		}
		// Power fails partway through the overwrite's commit. The dropped
		// writes are acknowledged, so the doomed FS sees no error.
		inj.armed = true
		if err := c1.WriteAt(env, fd, 0, newData); err != nil {
			t.Errorf("write new: %v", err)
			return
		}
		if err := c1.Fsync(env); err != nil {
			t.Errorf("fsync new: %v", err)
			return
		}
		inj.armed = false

		// Reboot: a fresh FS over the raw device replays any committed log.
		f2 := NewFS(p, svc.NewLocal(dev.Handler()), cfg)
		if err := f2.Mount(env); err != nil {
			t.Errorf("crashAt %d: remount: %v", crashAt, err)
			return
		}
		c2 := &Client{Conn: svc.NewLocal(f2.Handler())}
		fd2, size, err := c2.Open(env, "victim", false)
		if err != nil {
			t.Errorf("crashAt %d: reopen: %v", crashAt, err)
			return
		}
		if int(size) != n {
			t.Errorf("crashAt %d: size %d, want %d", crashAt, size, n)
			return
		}
		var got []byte
		for off := 0; off < n; off += maxIO {
			m := min(maxIO, n-off)
			chunk, err := c2.ReadAt(env, fd2, off, m)
			if err != nil {
				t.Errorf("crashAt %d: read: %v", crashAt, err)
				return
			}
			got = append(got, chunk...)
		}
		if !bytes.Equal(got, oldData) && !bytes.Equal(got, newData) {
			t.Errorf("crashAt %d: recovered content is neither old nor new (got %q... )",
				crashAt, got[:16])
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return inj.writes
}

// TestCrashConsistency kills the device at every write boundary of a
// commit — mid log append, between header and install, mid install,
// before the header clear — for both lock configurations, and checks
// write atomicity survives recovery each time.
func TestCrashConsistency(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"biglock", Config{}},
		{"finelock", Config{Lock: LockFine}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Dry run with the crash point beyond the workload: counts the
			// overwrite's device writes and checks the uninjected path.
			total := crashRun(t, tc.cfg, 1<<30)
			// A 3-block write commits ~3 data + inode blocks twice (log +
			// install) plus header writes; anything shallower means the
			// injector missed the commit protocol.
			if total < 8 {
				t.Fatalf("overwrite issued only %d device writes; injector not covering a commit", total)
			}
			for crashAt := 0; crashAt <= total; crashAt++ {
				crashRun(t, tc.cfg, crashAt)
			}
		})
	}
}
