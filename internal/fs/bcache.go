package fs

import (
	"errors"

	"skybridge/internal/blockdev"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
)

// nbuf is the buffer-cache capacity in blocks (total, across shards).
const nbuf = 128

// nshards is the shard count of the fine-grained cache. Block numbers
// spread round-robin (bn % nshards), so the sequential block ranges of
// the log, bitmap, and file extents load every shard evenly. The big-lock
// configuration keeps one shard so its scan order — and therefore its
// simulated cost — matches the original single cache.
const nshards = 8

// MaxOpBlocks is the reservation quota per transaction (xv6 MAXOPBLOCKS):
// the worst case is a maxIO append that dirties four data blocks plus the
// inode, bitmap, and up to three indirect blocks. Group commit admits
// writers while len(logged) + (outstanding+1)*MaxOpBlocks fits LogBlocks.
const MaxOpBlocks = 10

// ErrCacheExhausted reports that every buffer in the relevant cache shard
// is dirty, pinned, or referenced — cache pressure, as opposed to a
// device fault. Callers test with errors.Is.
var ErrCacheExhausted = errors.New("fs: buffer cache exhausted (all blocks dirty/pinned)")

// buf is one cached block. Data is the authoritative copy while cached;
// slotVA is the block's address in the FS server's address space, used to
// charge the hardware model for every access to the cached bytes. ref
// counts get() references not yet put() back: a referenced buffer is
// never chosen as an eviction victim, so a buffer stays valid across the
// park points (lock handoffs, transport calls) its holder may cross.
type buf struct {
	bn     int
	data   []byte
	slotVA hw.VA
	dirty  bool
	pinned bool // in an uncommitted transaction; not evictable
	ref    int  // held by callers between get and put; not evictable
	lru    uint64
	valid  bool
}

// bshard is one cache shard: its own slots, index, LRU clock, and (in
// fine mode) its own kernel-backed lock. Under the big lock lk is nil —
// the big lock already serializes every access.
type bshard struct {
	lk    *mk.KMutex
	slots []buf
	index map[int]*buf
	clock uint64

	hits   uint64
	misses uint64
}

// bcache is the buffer cache plus the write-ahead log (xv6's bio.c+log.c).
//
// Locking (fine mode): each shard guards its own slots and index; loglk
// guards the log set, the reservation count, and the commit protocol;
// logCond waits for log capacity or for in-flight reservations to drain.
// loglk is a leaf lock — nothing is acquired while it is held — and
// shard locks nest only inside the allocator lock, so the global order
// is: inode stripes → alloclk → shard locks / loglk.
type bcache struct {
	dev     *blockdev.Client
	batchIO bool // fold commit/recover device IO into batched crossings
	shards  []*bshard

	// Log state: blocks dirtied by running transactions, in order.
	logStart    int
	loglk       *mk.KMutex // nil under the big lock
	logCond     *mk.KCond
	inTx        bool // big-lock mode: the single running transaction
	outstanding int  // fine mode: active reservations
	logged      []*buf

	// Stats.
	Commits   uint64
	LogWrites uint64
}

// newBcache builds the cache over a device connection. cfg selects the
// shape: one unlocked shard under the big lock (identical to the original
// single cache), or nshards locked shards plus the group-commit log in
// fine mode. nslots is the total capacity (nbuf for a real mount; tests
// shrink it to force exhaustion).
func newBcache(dev *blockdev.Client, region hw.VA, logStart, nslots int, cfg Config, k *mk.Kernel) *bcache {
	c := &bcache{dev: dev, logStart: logStart, batchIO: cfg.BatchIO}
	shardCount := 1
	if cfg.Lock == LockFine {
		shardCount = nshards
		if nslots < shardCount {
			shardCount = nslots
		}
	}
	per := nslots / shardCount
	for s := 0; s < shardCount; s++ {
		sh := &bshard{
			slots: make([]buf, per),
			index: make(map[int]*buf, per),
		}
		for i := range sh.slots {
			sh.slots[i].slotVA = region + hw.VA((s*per+i)*BlockSize)
		}
		if cfg.Lock == LockFine {
			sh.lk = k.NewKMutex("fs.bcache")
		}
		c.shards = append(c.shards, sh)
	}
	if cfg.Lock == LockFine {
		c.loglk = k.NewKMutex("fs.log")
		c.logCond = k.NewKCond("fs.logspace")
	}
	return c
}

// get returns the cached block bn with one reference held, reading it
// from the device on a miss. The caller must put() the buffer when done.
// In fine mode the shard lock is held across the device read, so two
// threads missing on the same block never race to duplicate it.
func (c *bcache) get(env *mk.Env, bn int) (*buf, error) {
	sh := c.shards[bn%len(c.shards)]
	if sh.lk != nil {
		sh.lk.Lock(env)
	}
	sh.clock++
	if b, ok := sh.index[bn]; ok {
		sh.hits++
		b.lru = sh.clock
		env.Compute(12) // tag lookup
		b.ref++
		if sh.lk != nil {
			sh.lk.Unlock(env)
		}
		return b, nil
	}
	sh.misses++
	// Choose a victim: invalid first, then clean unreferenced LRU.
	var victim *buf
	for i := range sh.slots {
		b := &sh.slots[i]
		if !b.valid {
			victim = b
			break
		}
		if b.dirty || b.pinned || b.ref > 0 {
			continue
		}
		if victim == nil || b.lru < victim.lru {
			victim = b
		}
	}
	if victim == nil {
		if sh.lk != nil {
			sh.lk.Unlock(env)
		}
		return nil, ErrCacheExhausted
	}
	if victim.valid {
		delete(sh.index, victim.bn)
		victim.valid = false
	}
	data, err := c.dev.ReadBlock(env, bn)
	if err != nil {
		if sh.lk != nil {
			sh.lk.Unlock(env)
		}
		return nil, err
	}
	victim.bn = bn
	victim.data = data
	victim.dirty = false
	victim.pinned = false
	victim.ref = 1
	victim.valid = true
	victim.lru = sh.clock
	sh.index[bn] = victim
	// Filling the slot touches the whole block in the FS address space.
	env.Write(victim.slotVA, nil, BlockSize)
	copyInto(env, victim, data)
	if sh.lk != nil {
		sh.lk.Unlock(env)
	}
	return victim, nil
}

// put drops a reference taken by get. Host-only bookkeeping: releasing a
// reference models nothing xv6fs charges cycles for.
func (c *bcache) put(b *buf) {
	if b.ref <= 0 {
		panic("fs: put of unreferenced buffer")
	}
	b.ref--
}

func copyInto(env *mk.Env, b *buf, data []byte) {
	b.data = append(b.data[:0], data...)
}

// read returns n bytes at off within the block, charging the access.
func (b *buf) read(env *mk.Env, off, n int) []byte {
	env.Read(b.slotVA+hw.VA(off), nil, n)
	return b.data[off : off+n]
}

// write stores data at off within the block, charging the access. The
// caller must be inside a transaction (hold a reservation in fine mode);
// the block joins the log set. The referenced buffer cannot be evicted,
// so rechecking dirty under loglk closes the only window in which two
// writers could double-log one block.
func (c *bcache) write(env *mk.Env, b *buf, off int, data []byte) {
	if c.loglk == nil {
		if !c.inTx {
			panic("fs: block write outside transaction")
		}
		env.Write(b.slotVA+hw.VA(off), nil, len(data))
		copy(b.data[off:], data)
		if !b.dirty {
			if len(c.logged) >= LogBlocks {
				panic("fs: transaction exceeds log capacity")
			}
			b.dirty = true
			b.pinned = true
			c.logged = append(c.logged, b) // absorption: each block once
			c.LogWrites++
		}
		return
	}
	env.Write(b.slotVA+hw.VA(off), nil, len(data))
	copy(b.data[off:], data)
	if b.dirty {
		return
	}
	c.loglk.Lock(env)
	if !b.dirty {
		if len(c.logged) >= LogBlocks {
			panic("fs: transaction exceeds log capacity")
		}
		b.dirty = true
		b.pinned = true
		c.logged = append(c.logged, b)
		c.LogWrites++
	}
	c.loglk.Unlock(env)
}

// beginTx starts a transaction (xv6 begin_op; the big lock already
// serializes us, so there is exactly one transaction at a time).
func (c *bcache) beginTx() {
	if c.inTx {
		panic("fs: nested transaction")
	}
	c.inTx = true
}

// commitTx ends the big-lock transaction and runs the commit protocol.
func (c *bcache) commitTx(env *mk.Env) error {
	if !c.inTx {
		panic("fs: commit outside transaction")
	}
	c.inTx = false
	return c.deviceCommit(env)
}

// reserve admits one transaction against the group-commit log (fine
// mode): it waits until the running reservations plus this one fit the
// log's capacity at MaxOpBlocks apiece. Readers never reserve, so a
// commit in flight does not block them.
func (c *bcache) reserve(env *mk.Env) {
	c.loglk.Lock(env)
	for len(c.logged)+(c.outstanding+1)*MaxOpBlocks > LogBlocks {
		c.logCond.Wait(env, c.loglk)
	}
	c.outstanding++
	c.loglk.Unlock(env)
}

// release ends a reservation. The last releaser of a group becomes the
// commit leader: it writes every block the group logged in one protocol
// run, so N overlapping transactions cost one commit instead of N.
func (c *bcache) release(env *mk.Env) error {
	c.loglk.Lock(env)
	c.outstanding--
	var err error
	if c.outstanding == 0 && len(c.logged) > 0 {
		err = c.deviceCommit(env)
	}
	c.logCond.Broadcast(env)
	c.loglk.Unlock(env)
	return err
}

// drain waits out in-flight reservations and commits whatever is logged
// (fine mode; Fsync's durability barrier).
func (c *bcache) drain(env *mk.Env) error {
	c.loglk.Lock(env)
	for c.outstanding > 0 {
		c.logCond.Wait(env, c.loglk)
	}
	err := c.deviceCommit(env)
	c.logCond.Broadcast(env)
	c.loglk.Unlock(env)
	return err
}

// deviceCommit implements the xv6 commit protocol: copy dirty blocks to
// the log area, write the log header (the commit point), flush, install
// the blocks in their home locations, clear the header, flush. With
// batchIO the same device-write sequence folds into batched crossings —
// entries dispatch in submission order within a crossing, so the
// header-last and clear-last ordering the protocol depends on survives.
func (c *bcache) deviceCommit(env *mk.Env) error {
	if len(c.logged) == 0 {
		return nil
	}
	c.Commits++
	// 1+2. Log data blocks, then the header that commits them.
	hdr := make([]byte, BlockSize)
	putU64(hdr, 0, uint64(len(c.logged)))
	for i, b := range c.logged {
		putU64(hdr, 8+8*i, uint64(b.bn))
	}
	bns := make([]int, 0, len(c.logged)+1)
	datas := make([][]byte, 0, len(c.logged)+1)
	for i, b := range c.logged {
		bns = append(bns, c.logStart+1+i)
		datas = append(datas, b.data)
	}
	bns = append(bns, c.logStart)
	datas = append(datas, hdr)
	if err := c.writeBlocks(env, bns, datas); err != nil {
		return err
	}
	if err := c.dev.Flush(env); err != nil {
		return err
	}
	// 3+4. Install to home locations, then clear the header.
	bns = bns[:0]
	datas = datas[:0]
	for _, b := range c.logged {
		bns = append(bns, b.bn)
		datas = append(datas, b.data)
	}
	bns = append(bns, c.logStart)
	datas = append(datas, make([]byte, BlockSize))
	if err := c.writeBlocks(env, bns, datas); err != nil {
		return err
	}
	for _, b := range c.logged {
		b.dirty = false
		b.pinned = false
	}
	if err := c.dev.Flush(env); err != nil {
		return err
	}
	c.logged = c.logged[:0]
	return nil
}

// writeBlocks routes a commit's writes through the batched fast path when
// configured, and block-at-a-time otherwise. Order is identical.
func (c *bcache) writeBlocks(env *mk.Env, bns []int, datas [][]byte) error {
	if c.batchIO {
		return c.dev.WriteBlocks(env, bns, datas)
	}
	for i := range bns {
		if err := c.dev.WriteBlock(env, bns[i], datas[i]); err != nil {
			return err
		}
	}
	return nil
}

// recover replays a committed-but-uninstalled log after a crash.
func (c *bcache) recover(env *mk.Env) error {
	hdr, err := c.dev.ReadBlock(env, c.logStart)
	if err != nil {
		return err
	}
	n := int(getU64(hdr, 0))
	if n > 0 {
		bns := make([]int, n)
		for i := range bns {
			bns[i] = c.logStart + 1 + i
		}
		var datas [][]byte
		if c.batchIO {
			if datas, err = c.dev.ReadBlocks(env, bns); err != nil {
				return err
			}
		} else {
			datas = make([][]byte, n)
			for i, bn := range bns {
				if datas[i], err = c.dev.ReadBlock(env, bn); err != nil {
					return err
				}
			}
		}
		homes := make([]int, n)
		for i := 0; i < n; i++ {
			homes[i] = int(getU64(hdr, 8+8*i))
		}
		if err := c.writeBlocks(env, homes, datas); err != nil {
			return err
		}
	}
	clear(hdr[:8])
	return c.dev.WriteBlock(env, c.logStart, hdr)
}

// stats sums the per-shard hit/miss counters.
func (c *bcache) stats() (hits, misses uint64) {
	for _, sh := range c.shards {
		hits += sh.hits
		misses += sh.misses
	}
	return hits, misses
}

func putU64(b []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte, off int) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[off+i])
	}
	return v
}
