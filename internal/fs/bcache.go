package fs

import (
	"fmt"

	"skybridge/internal/blockdev"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
)

// nbuf is the buffer-cache capacity in blocks.
const nbuf = 128

// buf is one cached block. Data is the authoritative copy while cached;
// slotVA is the block's address in the FS server's address space, used to
// charge the hardware model for every access to the cached bytes.
type buf struct {
	bn     int
	data   []byte
	slotVA hw.VA
	dirty  bool
	pinned bool // in the current transaction; not evictable
	lru    uint64
	valid  bool
}

// bcache is the buffer cache plus the write-ahead log (xv6's bio.c+log.c).
type bcache struct {
	dev   *blockdev.Client
	slots [nbuf]buf
	index map[int]*buf
	clock uint64

	// Log state: blocks dirtied by the running transaction, in order.
	logStart int
	inTx     bool
	logged   []*buf

	// Stats.
	Hits      uint64
	Misses    uint64
	Commits   uint64
	LogWrites uint64
}

func newBcache(dev *blockdev.Client, region hw.VA, logStart int) *bcache {
	c := &bcache{dev: dev, index: make(map[int]*buf, nbuf), logStart: logStart}
	for i := range c.slots {
		c.slots[i].slotVA = region + hw.VA(i*BlockSize)
	}
	return c
}

// get returns the cached block bn, reading it from the device on a miss.
func (c *bcache) get(env *mk.Env, bn int) (*buf, error) {
	c.clock++
	if b, ok := c.index[bn]; ok {
		c.Hits++
		b.lru = c.clock
		env.Compute(12) // tag lookup
		return b, nil
	}
	c.Misses++
	// Choose a victim: invalid first, then clean LRU.
	var victim *buf
	for i := range c.slots {
		b := &c.slots[i]
		if !b.valid {
			victim = b
			break
		}
		if b.dirty || b.pinned {
			continue
		}
		if victim == nil || b.lru < victim.lru {
			victim = b
		}
	}
	if victim == nil {
		return nil, fmt.Errorf("fs: buffer cache exhausted (all blocks dirty/pinned)")
	}
	if victim.valid {
		delete(c.index, victim.bn)
	}
	data, err := c.dev.ReadBlock(env, bn)
	if err != nil {
		return nil, err
	}
	victim.bn = bn
	victim.data = data
	victim.dirty = false
	victim.pinned = false
	victim.valid = true
	victim.lru = c.clock
	c.index[bn] = victim
	// Filling the slot touches the whole block in the FS address space.
	env.Write(victim.slotVA, nil, BlockSize)
	copyInto(env, victim, data)
	return victim, nil
}

func copyInto(env *mk.Env, b *buf, data []byte) {
	b.data = append(b.data[:0], data...)
}

// read returns n bytes at off within the block, charging the access.
func (b *buf) read(env *mk.Env, off, n int) []byte {
	env.Read(b.slotVA+hw.VA(off), nil, n)
	return b.data[off : off+n]
}

// write stores data at off within the block, charging the access. The
// caller must be inside a transaction; the block joins the log set.
func (c *bcache) write(env *mk.Env, b *buf, off int, data []byte) {
	if !c.inTx {
		panic("fs: block write outside transaction")
	}
	env.Write(b.slotVA+hw.VA(off), nil, len(data))
	copy(b.data[off:], data)
	if !b.dirty {
		if len(c.logged) >= LogBlocks {
			panic("fs: transaction exceeds log capacity")
		}
		b.dirty = true
		b.pinned = true
		c.logged = append(c.logged, b) // absorption: each block once
		c.LogWrites++
	}
}

// beginTx starts a transaction (xv6 begin_op; the big lock already
// serializes us, so there is exactly one transaction at a time).
func (c *bcache) beginTx() {
	if c.inTx {
		panic("fs: nested transaction")
	}
	c.inTx = true
}

// commitTx implements the xv6 commit protocol: copy dirty blocks to the
// log area, write the log header (the commit point), install the blocks in
// their home locations, then clear the header.
func (c *bcache) commitTx(env *mk.Env) error {
	if !c.inTx {
		panic("fs: commit outside transaction")
	}
	c.inTx = false
	if len(c.logged) == 0 {
		return nil
	}
	c.Commits++
	// 1. Log data blocks.
	for i, b := range c.logged {
		if err := c.dev.WriteBlock(env, c.logStart+1+i, b.data); err != nil {
			return err
		}
	}
	// 2. Header: n + block numbers. This write commits the transaction.
	hdr := make([]byte, BlockSize)
	putU64(hdr, 0, uint64(len(c.logged)))
	for i, b := range c.logged {
		putU64(hdr, 8+8*i, uint64(b.bn))
	}
	if err := c.dev.WriteBlock(env, c.logStart, hdr); err != nil {
		return err
	}
	if err := c.dev.Flush(env); err != nil {
		return err
	}
	// 3. Install to home locations.
	for _, b := range c.logged {
		if err := c.dev.WriteBlock(env, b.bn, b.data); err != nil {
			return err
		}
		b.dirty = false
		b.pinned = false
	}
	// 4. Clear the header.
	clear(hdr[:8])
	if err := c.dev.WriteBlock(env, c.logStart, hdr); err != nil {
		return err
	}
	if err := c.dev.Flush(env); err != nil {
		return err
	}
	c.logged = c.logged[:0]
	return nil
}

// recover replays a committed-but-uninstalled log after a crash.
func (c *bcache) recover(env *mk.Env) error {
	hdr, err := c.dev.ReadBlock(env, c.logStart)
	if err != nil {
		return err
	}
	n := int(getU64(hdr, 0))
	for i := 0; i < n; i++ {
		bn := int(getU64(hdr, 8+8*i))
		data, err := c.dev.ReadBlock(env, c.logStart+1+i)
		if err != nil {
			return err
		}
		if err := c.dev.WriteBlock(env, bn, data); err != nil {
			return err
		}
	}
	clear(hdr[:8])
	return c.dev.WriteBlock(env, c.logStart, hdr)
}

func putU64(b []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte, off int) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[off+i])
	}
	return v
}
