package fs

import (
	"fmt"

	"skybridge/internal/blockdev"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/svc"
)

// rootInum is the root directory's inode.
const rootInum = 1

// LockMode selects the FS's concurrency discipline.
type LockMode int

const (
	// LockBig serializes every operation behind one kernel-backed lock —
	// the paper's xv6fs port, and the cause of Figures 9-11's negative
	// scaling.
	LockBig LockMode = iota
	// LockFine replaces the big lock with per-inode stripe locks, a
	// sharded buffer cache, and a group-commit log that admits readers
	// while a commit is in flight.
	LockFine
)

// Config selects the FS's locking discipline and device-IO routing.
type Config struct {
	Lock LockMode
	// BatchIO folds the commit protocol's block writes (and recovery's
	// reads) into batched transport crossings (core.DirectCallBatch when
	// the device connection is a SkyBridge one).
	BatchIO bool
}

// nstripes is the inode-lock stripe count (LockFine). The root
// directory's stripe doubles as the namespace lock: Open/Close/Unlink
// take it first, so the only nested stripe order is root → target.
const nstripes = 32

// FS is the file-system server state.
type FS struct {
	Proc *mk.Process
	dev  *blockdev.Client
	sb   *Superblock
	bc   *bcache
	cfg  Config

	// Lock is the single big lock serializing every operation (§6.5). It
	// is kernel-backed: contended handoff goes through the kernel (with
	// cross-core IPIs), which is what makes the FS the scalability
	// bottleneck of Figures 9-11. Unused when cfg.Lock is LockFine.
	Lock *mk.KMutex

	// stripes/alloclk are the LockFine replacement: inum%nstripes picks
	// the stripe serializing operations on an inode, and alloclk covers
	// the block allocator's read-bit→write-bit window (which can park on
	// a cache-shard lock, so it needs its own exclusion).
	stripes []*mk.KMutex
	alloclk *mk.KMutex

	fds    map[uint64]uint64 // fd -> inum
	nextFD uint64
}

// New creates a big-lock FS server bound to a device connection — the
// paper-faithful configuration. The cache region is allocated inside proc.
func New(proc *mk.Process, dev svc.Conn) *FS {
	return NewFS(proc, dev, Config{})
}

// NewFS creates an FS server with an explicit lock/IO configuration.
func NewFS(proc *mk.Process, dev svc.Conn, cfg Config) *FS {
	f := &FS{
		Proc:   proc,
		dev:    &blockdev.Client{Conn: dev},
		cfg:    cfg,
		fds:    make(map[uint64]uint64),
		nextFD: 3,
		Lock:   proc.Kernel().NewKMutex("fs.biglock"),
	}
	if cfg.Lock == LockFine {
		k := proc.Kernel()
		f.stripes = make([]*mk.KMutex, nstripes)
		for i := range f.stripes {
			f.stripes[i] = k.NewKMutex(fmt.Sprintf("fs.stripe%d", i))
		}
		f.alloclk = k.NewKMutex("fs.alloc")
	}
	return f
}

// fine reports whether fine-grained locking is active.
func (f *FS) fine() bool { return f.cfg.Lock == LockFine }

// stripe returns the lock covering inum in fine mode.
func (f *FS) stripe(inum uint64) *mk.KMutex { return f.stripes[inum%nstripes] }

// lockNS acquires the namespace lock — the big lock, or the root
// directory's stripe (which also guards the fd table and inode
// allocation) in fine mode — and returns its unlock.
func (f *FS) lockNS(env *mk.Env) func() {
	m := f.Lock
	if f.fine() {
		m = f.stripe(rootInum)
	}
	m.Lock(env)
	return func() { m.Unlock(env) }
}

// lockFD resolves fd and acquires the lock covering its inode. In fine
// mode the fd-table lookup itself needs no lock: it crosses no park
// point, so the DES executes it atomically; the inode's stripe then
// serializes the operation.
func (f *FS) lockFD(env *mk.Env, fd uint64) (uint64, func(), error) {
	if !f.fine() {
		f.Lock.Lock(env)
		inum, ok := f.fds[fd]
		if !ok {
			f.Lock.Unlock(env)
			return 0, nil, fmt.Errorf("fs: bad fd %d", fd)
		}
		return inum, func() { f.Lock.Unlock(env) }, nil
	}
	inum, ok := f.fds[fd]
	if !ok {
		return 0, nil, fmt.Errorf("fs: bad fd %d", fd)
	}
	st := f.stripe(inum)
	st.Lock(env)
	return inum, func() { st.Unlock(env) }, nil
}

// begin opens a log transaction: exclusive under the big lock, a
// group-commit reservation in fine mode.
func (f *FS) begin(env *mk.Env) {
	if f.fine() {
		f.bc.reserve(env)
	} else {
		f.bc.beginTx()
	}
}

// end closes the transaction begun by begin. Under the big lock it
// commits immediately; in fine mode the last releaser of an overlapping
// group commits for everyone.
func (f *FS) end(env *mk.Env) error {
	if f.fine() {
		return f.bc.release(env)
	}
	return f.bc.commitTx(env)
}

// Mkfs formats the device and mounts the file system.
func (f *FS) Mkfs(env *mk.Env, totalBlocks, ninodes int) error {
	inodeBlocks := (ninodes + InodesPerBlock - 1) / InodesPerBlock
	bmapBlocks := (totalBlocks + BlockSize*8 - 1) / (BlockSize * 8)
	sb := &Superblock{
		Magic:      Magic,
		Size:       uint64(totalBlocks),
		NInodes:    uint64(ninodes),
		LogStart:   1,
		InodeStart: uint64(1 + 1 + LogBlocks),
		BmapStart:  uint64(1 + 1 + LogBlocks + inodeBlocks),
		DataStart:  uint64(1 + 1 + LogBlocks + inodeBlocks + bmapBlocks),
	}
	if err := f.dev.WriteBlock(env, 0, sb.encode()); err != nil {
		return err
	}
	zero := make([]byte, BlockSize)
	// Clear the log header, inode blocks, and bitmap.
	if err := f.dev.WriteBlock(env, int(sb.LogStart), zero); err != nil {
		return err
	}
	for i := 0; i < inodeBlocks; i++ {
		if err := f.dev.WriteBlock(env, int(sb.InodeStart)+i, zero); err != nil {
			return err
		}
	}
	// Bitmap: metadata blocks (everything below DataStart) are in use.
	for i := 0; i < bmapBlocks; i++ {
		bm := make([]byte, BlockSize)
		for bn := i * BlockSize * 8; bn < (i+1)*BlockSize*8 && bn < totalBlocks; bn++ {
			if uint64(bn) < sb.DataStart {
				bm[(bn%(BlockSize*8))/8] |= 1 << (bn % 8)
			}
		}
		if err := f.dev.WriteBlock(env, int(sb.BmapStart)+i, bm); err != nil {
			return err
		}
	}
	if err := f.Mount(env); err != nil {
		return err
	}
	// Root directory: inode 1.
	f.begin(env)
	root := dinode{Type: TypeDir, Nlink: 1}
	if err := f.writeInode(env, rootInum, root); err != nil {
		return err
	}
	return f.end(env)
}

// Mount reads the superblock and replays any committed log.
func (f *FS) Mount(env *mk.Env) error {
	blk, err := (&blockdev.Client{Conn: f.dev.Conn}).ReadBlock(env, 0)
	if err != nil {
		return err
	}
	sb, err := decodeSuperblock(blk)
	if err != nil {
		return err
	}
	f.sb = sb
	region := f.Proc.Alloc(nbuf * BlockSize)
	f.bc = newBcache(f.dev, region, int(sb.LogStart), nbuf, f.cfg, f.Proc.Kernel())
	return f.bc.recover(env)
}

// Superblock returns the mounted superblock.
func (f *FS) Superblock() *Superblock { return f.sb }

// Cache exposes buffer-cache statistics.
func (f *FS) Cache() (hits, misses, commits uint64) {
	hits, misses = f.bc.stats()
	return hits, misses, f.bc.Commits
}

// LockStats sums the acquisition/contention counters over every lock the
// configured mode uses (the big lock, or the stripes plus the allocator
// and log locks), so biglock and finelock cells report comparable totals.
func (f *FS) LockStats() (acq, contended, waitCycles, wakeIPIs uint64) {
	add := func(m *mk.KMutex) {
		if m == nil {
			return
		}
		acq += m.Acquisitions
		contended += m.Contended
		waitCycles += m.WaitCycles
		wakeIPIs += m.WakeIPIs
	}
	add(f.Lock)
	for _, st := range f.stripes {
		add(st)
	}
	add(f.alloclk)
	if f.bc != nil {
		add(f.bc.loglk)
		if f.bc.logCond != nil {
			wakeIPIs += f.bc.logCond.WakeIPIs
		}
	}
	return acq, contended, waitCycles, wakeIPIs
}

// --- directory operations (single root directory, like the paper's port) ---

func (f *FS) dirLookup(env *mk.Env, name string) (uint64, bool, error) {
	d, err := f.readInode(env, rootInum)
	if err != nil {
		return 0, false, err
	}
	for off := 0; off < int(d.Size); off += DirentSize {
		raw, err := f.readi(env, rootInum, off, DirentSize)
		if err != nil {
			return 0, false, err
		}
		de := decodeDirent(raw)
		if de.Inum != 0 && de.Name == name {
			return de.Inum, true, nil
		}
	}
	return 0, false, nil
}

func (f *FS) dirLink(env *mk.Env, name string, inum uint64) error {
	if len(name) > MaxNameLen {
		return fmt.Errorf("fs: name %q too long", name)
	}
	d, err := f.readInode(env, rootInum)
	if err != nil {
		return err
	}
	// Reuse a free slot if any.
	slot := int(d.Size)
	for off := 0; off < int(d.Size); off += DirentSize {
		raw, err := f.readi(env, rootInum, off, DirentSize)
		if err != nil {
			return err
		}
		if decodeDirent(raw).Inum == 0 {
			slot = off
			break
		}
	}
	img := make([]byte, DirentSize)
	de := dirent{Inum: inum, Name: name}
	de.encode(img)
	return f.writei(env, rootInum, slot, img)
}

func (f *FS) dirUnlink(env *mk.Env, name string) (uint64, error) {
	d, err := f.readInode(env, rootInum)
	if err != nil {
		return 0, err
	}
	for off := 0; off < int(d.Size); off += DirentSize {
		raw, err := f.readi(env, rootInum, off, DirentSize)
		if err != nil {
			return 0, err
		}
		de := decodeDirent(raw)
		if de.Inum != 0 && de.Name == name {
			img := make([]byte, DirentSize)
			if err := f.writei(env, rootInum, off, img); err != nil {
				return 0, err
			}
			return de.Inum, nil
		}
	}
	return 0, fmt.Errorf("fs: unlink %q: not found", name)
}

// --- file operations ---
//
// Under the big lock every operation takes f.Lock. In fine mode the
// stripe covering the operated-on inode serializes the operation; the
// root stripe doubles as the namespace/fd-table lock; and a transaction
// is a group-commit reservation. Lock order is: root stripe → target
// stripe → reservation → alloclk → shard locks, with loglk a leaf. A
// stripe is never acquired while a reservation is held — a reservation
// holder waiting on a stripe whose owner is waiting for log capacity
// would deadlock.

// Open opens (optionally creating) a file, returning (fd, size).
func (f *FS) Open(env *mk.Env, name string, create bool) (uint64, uint64, error) {
	unlock := f.lockNS(env)
	defer unlock()

	inum, ok, err := f.dirLookup(env, name)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		if !create {
			return 0, 0, fmt.Errorf("fs: open %q: not found", name)
		}
		f.begin(env)
		inum, err = f.allocInode(env, TypeFile)
		if err != nil {
			f.end(env)
			return 0, 0, err
		}
		if err := f.dirLink(env, name, inum); err != nil {
			f.end(env)
			return 0, 0, err
		}
		if err := f.end(env); err != nil {
			return 0, 0, err
		}
	}
	d, err := f.readInode(env, inum)
	if err != nil {
		return 0, 0, err
	}
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = inum
	return fd, d.Size, nil
}

// Read reads n bytes at off from fd.
func (f *FS) Read(env *mk.Env, fd uint64, off, n int) ([]byte, error) {
	inum, unlock, err := f.lockFD(env, fd)
	if err != nil {
		return nil, err
	}
	defer unlock()
	return f.readi(env, inum, off, n)
}

// Write writes data at off into fd. Each write is one log transaction.
func (f *FS) Write(env *mk.Env, fd uint64, off int, data []byte) (int, error) {
	inum, unlock, err := f.lockFD(env, fd)
	if err != nil {
		return 0, err
	}
	defer unlock()
	f.begin(env)
	if err := f.writei(env, inum, off, data); err != nil {
		f.end(env)
		return 0, err
	}
	if err := f.end(env); err != nil {
		return 0, err
	}
	return len(data), nil
}

// Stat returns the file size.
func (f *FS) Stat(env *mk.Env, fd uint64) (uint64, error) {
	inum, unlock, err := f.lockFD(env, fd)
	if err != nil {
		return 0, err
	}
	defer unlock()
	d, err := f.readInode(env, inum)
	if err != nil {
		return 0, err
	}
	return d.Size, nil
}

// Close releases a descriptor.
func (f *FS) Close(env *mk.Env, fd uint64) error {
	unlock := f.lockNS(env)
	defer unlock()
	if _, ok := f.fds[fd]; !ok {
		return fmt.Errorf("fs: bad fd %d", fd)
	}
	delete(f.fds, fd)
	return nil
}

// Truncate empties a file.
func (f *FS) Truncate(env *mk.Env, fd uint64) error {
	inum, unlock, err := f.lockFD(env, fd)
	if err != nil {
		return err
	}
	defer unlock()
	f.begin(env)
	if err := f.itrunc(env, inum); err != nil {
		f.end(env)
		return err
	}
	return f.end(env)
}

// Unlink removes a file name and frees its inode and blocks.
func (f *FS) Unlink(env *mk.Env, name string) error {
	unlock := f.lockNS(env)
	defer unlock()
	if f.fine() {
		// Take the target's stripe before reserving: a pre-lookup finds
		// the inode so the root → target stripe order holds without a
		// reservation in hand.
		inum, ok, err := f.dirLookup(env, name)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("fs: unlink %q: not found", name)
		}
		if st := f.stripe(inum); st != f.stripe(rootInum) {
			st.Lock(env)
			defer st.Unlock(env)
		}
	}
	f.begin(env)
	inum, err := f.dirUnlink(env, name)
	if err != nil {
		f.end(env)
		return err
	}
	if err := f.itrunc(env, inum); err != nil {
		f.end(env)
		return err
	}
	if err := f.writeInode(env, inum, dinode{}); err != nil {
		f.end(env)
		return err
	}
	return f.end(env)
}

// Fsync flushes the device (the log already commits per write). In fine
// mode it first drains in-flight reservations and commits the logged
// group, so a returning Fsync means everything submitted before it is
// durable.
func (f *FS) Fsync(env *mk.Env) error {
	if f.fine() {
		if err := f.bc.drain(env); err != nil {
			return err
		}
		return f.dev.Flush(env)
	}
	f.Lock.Lock(env)
	defer f.Lock.Unlock(env)
	return f.dev.Flush(env)
}

// --- service interface ---

// Service opcodes.
const (
	OpOpen uint64 = iota + 1
	OpCreate
	OpRead
	OpWrite
	OpStat
	OpClose
	OpUnlink
	OpTruncate
	OpFsync
)

// Status codes.
const (
	StatusOK  = svc.StatusOK
	StatusErr = 1
)

// maxIO bounds a single read/write payload (the transport buffer size).
const maxIO = 4 * hw.PageSize

// Handler returns the FS's service handler.
func (f *FS) Handler() svc.Handler {
	return func(env *mk.Env, req svc.Req) svc.Resp {
		switch req.Op {
		case OpOpen, OpCreate:
			fd, size, err := f.Open(env, string(req.Data), req.Op == OpCreate)
			if err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{Vals: [3]uint64{fd, size}}
		case OpRead:
			n := int(req.Args[2])
			if n > maxIO {
				return svc.Resp{Status: StatusErr}
			}
			data, err := f.Read(env, req.Args[0], int(req.Args[1]), n)
			if err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{Data: data}
		case OpWrite:
			n, err := f.Write(env, req.Args[0], int(req.Args[1]), req.Data)
			if err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{Vals: [3]uint64{uint64(n)}}
		case OpStat:
			size, err := f.Stat(env, req.Args[0])
			if err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{Vals: [3]uint64{size}}
		case OpClose:
			if err := f.Close(env, req.Args[0]); err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{}
		case OpUnlink:
			if err := f.Unlink(env, string(req.Data)); err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{}
		case OpTruncate:
			if err := f.Truncate(env, req.Args[0]); err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{}
		case OpFsync:
			if err := f.Fsync(env); err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{}
		default:
			return svc.Resp{Status: StatusErr}
		}
	}
}

// Client is a typed client over a transport connection to an FS server.
type Client struct {
	Conn svc.Conn
}

// Open opens a file.
func (c *Client) Open(env *mk.Env, name string, create bool) (fd, size uint64, err error) {
	op := OpOpen
	if create {
		op = OpCreate
	}
	resp, err := c.Conn.Invoke(env, svc.Req{Op: op, Data: []byte(name)})
	if err != nil {
		return 0, 0, err
	}
	if resp.Status != StatusOK {
		return 0, 0, fmt.Errorf("fs: open %q failed", name)
	}
	return resp.Vals[0], resp.Vals[1], nil
}

// ReadAt reads n bytes at off.
func (c *Client) ReadAt(env *mk.Env, fd uint64, off, n int) ([]byte, error) {
	resp, err := c.Conn.Invoke(env, svc.Req{Op: OpRead, Args: [3]uint64{fd, uint64(off), uint64(n)}})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, fmt.Errorf("fs: read failed")
	}
	return resp.Data, nil
}

// WriteAt writes data at off.
func (c *Client) WriteAt(env *mk.Env, fd uint64, off int, data []byte) error {
	resp, err := c.Conn.Invoke(env, svc.Req{Op: OpWrite, Args: [3]uint64{fd, uint64(off)}, Data: data})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("fs: write failed")
	}
	return nil
}

// clientBatch is how many page-sized writes fit in one batched crossing:
// the 4-page shared buffer holds the batch headers plus three ~4 KiB
// slots (core.BatchLayout rounds each slot to a cache line).
const clientBatch = 3

// WriteAtBatch issues the writes (fd, offs[i], datas[i]) in submission
// order, folding up to three per transport crossing when the connection
// batches (svc.Batcher). Each payload must fit a third of the shared
// buffer — page- and journal-record-sized writes do; larger writes should
// go through WriteAt.
func (c *Client) WriteAtBatch(env *mk.Env, fd uint64, offs []int, datas [][]byte) error {
	if len(offs) != len(datas) {
		return fmt.Errorf("fs: write batch: %d offsets, %d buffers", len(offs), len(datas))
	}
	for start := 0; start < len(offs); start += clientBatch {
		end := start + clientBatch
		if end > len(offs) {
			end = len(offs)
		}
		reqs := make([]svc.Req, end-start)
		for i := range reqs {
			reqs[i] = svc.Req{
				Op:   OpWrite,
				Args: [3]uint64{fd, uint64(offs[start+i])},
				Data: datas[start+i],
			}
		}
		resps, err := svc.InvokeBatch(env, c.Conn, reqs)
		if err != nil {
			return err
		}
		for i, resp := range resps {
			if resp.Status != StatusOK {
				return fmt.Errorf("fs: batched write at %d failed", offs[start+i])
			}
		}
	}
	return nil
}

// Stat returns the file size.
func (c *Client) Stat(env *mk.Env, fd uint64) (uint64, error) {
	resp, err := c.Conn.Invoke(env, svc.Req{Op: OpStat, Args: [3]uint64{fd}})
	if err != nil {
		return 0, err
	}
	if resp.Status != StatusOK {
		return 0, fmt.Errorf("fs: stat failed")
	}
	return resp.Vals[0], nil
}

// Truncate empties the file.
func (c *Client) Truncate(env *mk.Env, fd uint64) error {
	resp, err := c.Conn.Invoke(env, svc.Req{Op: OpTruncate, Args: [3]uint64{fd}})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("fs: truncate failed")
	}
	return nil
}

// Unlink removes a file.
func (c *Client) Unlink(env *mk.Env, name string) error {
	resp, err := c.Conn.Invoke(env, svc.Req{Op: OpUnlink, Data: []byte(name)})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("fs: unlink %q failed", name)
	}
	return nil
}

// Fsync flushes the device.
func (c *Client) Fsync(env *mk.Env) error {
	resp, err := c.Conn.Invoke(env, svc.Req{Op: OpFsync})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("fs: fsync failed")
	}
	return nil
}
