package fs

import (
	"fmt"

	"skybridge/internal/blockdev"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/svc"
)

// rootInum is the root directory's inode.
const rootInum = 1

// FS is the file-system server state.
type FS struct {
	Proc *mk.Process
	dev  *blockdev.Client
	sb   *Superblock
	bc   *bcache

	// Lock is the single big lock serializing every operation (§6.5). It
	// is kernel-backed: contended handoff goes through the kernel (with
	// cross-core IPIs), which is what makes the FS the scalability
	// bottleneck of Figures 9-11.
	Lock *mk.KMutex

	fds    map[uint64]uint64 // fd -> inum
	nextFD uint64
}

// New creates an FS server bound to a device connection. The cache region
// is allocated inside proc.
func New(proc *mk.Process, dev svc.Conn) *FS {
	f := &FS{
		Proc:   proc,
		dev:    &blockdev.Client{Conn: dev},
		fds:    make(map[uint64]uint64),
		nextFD: 3,
		Lock:   proc.Kernel().NewKMutex("fs.biglock"),
	}
	return f
}

// Mkfs formats the device and mounts the file system.
func (f *FS) Mkfs(env *mk.Env, totalBlocks, ninodes int) error {
	inodeBlocks := (ninodes + InodesPerBlock - 1) / InodesPerBlock
	bmapBlocks := (totalBlocks + BlockSize*8 - 1) / (BlockSize * 8)
	sb := &Superblock{
		Magic:      Magic,
		Size:       uint64(totalBlocks),
		NInodes:    uint64(ninodes),
		LogStart:   1,
		InodeStart: uint64(1 + 1 + LogBlocks),
		BmapStart:  uint64(1 + 1 + LogBlocks + inodeBlocks),
		DataStart:  uint64(1 + 1 + LogBlocks + inodeBlocks + bmapBlocks),
	}
	if err := f.dev.WriteBlock(env, 0, sb.encode()); err != nil {
		return err
	}
	zero := make([]byte, BlockSize)
	// Clear the log header, inode blocks, and bitmap.
	if err := f.dev.WriteBlock(env, int(sb.LogStart), zero); err != nil {
		return err
	}
	for i := 0; i < inodeBlocks; i++ {
		if err := f.dev.WriteBlock(env, int(sb.InodeStart)+i, zero); err != nil {
			return err
		}
	}
	// Bitmap: metadata blocks (everything below DataStart) are in use.
	for i := 0; i < bmapBlocks; i++ {
		bm := make([]byte, BlockSize)
		for bn := i * BlockSize * 8; bn < (i+1)*BlockSize*8 && bn < totalBlocks; bn++ {
			if uint64(bn) < sb.DataStart {
				bm[(bn%(BlockSize*8))/8] |= 1 << (bn % 8)
			}
		}
		if err := f.dev.WriteBlock(env, int(sb.BmapStart)+i, bm); err != nil {
			return err
		}
	}
	if err := f.Mount(env); err != nil {
		return err
	}
	// Root directory: inode 1.
	f.bc.beginTx()
	root := dinode{Type: TypeDir, Nlink: 1}
	if err := f.writeInode(env, rootInum, root); err != nil {
		return err
	}
	return f.bc.commitTx(env)
}

// Mount reads the superblock and replays any committed log.
func (f *FS) Mount(env *mk.Env) error {
	blk, err := (&blockdev.Client{Conn: f.dev.Conn}).ReadBlock(env, 0)
	if err != nil {
		return err
	}
	sb, err := decodeSuperblock(blk)
	if err != nil {
		return err
	}
	f.sb = sb
	region := f.Proc.Alloc(nbuf * BlockSize)
	f.bc = newBcache(f.dev, region, int(sb.LogStart))
	return f.bc.recover(env)
}

// Superblock returns the mounted superblock.
func (f *FS) Superblock() *Superblock { return f.sb }

// Cache exposes buffer-cache statistics.
func (f *FS) Cache() (hits, misses, commits uint64) {
	return f.bc.Hits, f.bc.Misses, f.bc.Commits
}

// --- directory operations (single root directory, like the paper's port) ---

func (f *FS) dirLookup(env *mk.Env, name string) (uint64, bool, error) {
	d, err := f.readInode(env, rootInum)
	if err != nil {
		return 0, false, err
	}
	for off := 0; off < int(d.Size); off += DirentSize {
		raw, err := f.readi(env, rootInum, off, DirentSize)
		if err != nil {
			return 0, false, err
		}
		de := decodeDirent(raw)
		if de.Inum != 0 && de.Name == name {
			return de.Inum, true, nil
		}
	}
	return 0, false, nil
}

func (f *FS) dirLink(env *mk.Env, name string, inum uint64) error {
	if len(name) > MaxNameLen {
		return fmt.Errorf("fs: name %q too long", name)
	}
	d, err := f.readInode(env, rootInum)
	if err != nil {
		return err
	}
	// Reuse a free slot if any.
	slot := int(d.Size)
	for off := 0; off < int(d.Size); off += DirentSize {
		raw, err := f.readi(env, rootInum, off, DirentSize)
		if err != nil {
			return err
		}
		if decodeDirent(raw).Inum == 0 {
			slot = off
			break
		}
	}
	img := make([]byte, DirentSize)
	de := dirent{Inum: inum, Name: name}
	de.encode(img)
	return f.writei(env, rootInum, slot, img)
}

func (f *FS) dirUnlink(env *mk.Env, name string) (uint64, error) {
	d, err := f.readInode(env, rootInum)
	if err != nil {
		return 0, err
	}
	for off := 0; off < int(d.Size); off += DirentSize {
		raw, err := f.readi(env, rootInum, off, DirentSize)
		if err != nil {
			return 0, err
		}
		de := decodeDirent(raw)
		if de.Inum != 0 && de.Name == name {
			img := make([]byte, DirentSize)
			if err := f.writei(env, rootInum, off, img); err != nil {
				return 0, err
			}
			return de.Inum, nil
		}
	}
	return 0, fmt.Errorf("fs: unlink %q: not found", name)
}

// --- file operations (each takes the big lock) ---

// Open opens (optionally creating) a file, returning (fd, size).
func (f *FS) Open(env *mk.Env, name string, create bool) (uint64, uint64, error) {
	f.Lock.Lock(env)
	defer f.Lock.Unlock(env)

	inum, ok, err := f.dirLookup(env, name)
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		if !create {
			return 0, 0, fmt.Errorf("fs: open %q: not found", name)
		}
		f.bc.beginTx()
		inum, err = f.allocInode(env, TypeFile)
		if err != nil {
			return 0, 0, err
		}
		if err := f.dirLink(env, name, inum); err != nil {
			return 0, 0, err
		}
		if err := f.bc.commitTx(env); err != nil {
			return 0, 0, err
		}
	}
	d, err := f.readInode(env, inum)
	if err != nil {
		return 0, 0, err
	}
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = inum
	return fd, d.Size, nil
}

// Read reads n bytes at off from fd.
func (f *FS) Read(env *mk.Env, fd uint64, off, n int) ([]byte, error) {
	f.Lock.Lock(env)
	defer f.Lock.Unlock(env)
	inum, ok := f.fds[fd]
	if !ok {
		return nil, fmt.Errorf("fs: bad fd %d", fd)
	}
	return f.readi(env, inum, off, n)
}

// Write writes data at off into fd. Each write is one log transaction.
func (f *FS) Write(env *mk.Env, fd uint64, off int, data []byte) (int, error) {
	f.Lock.Lock(env)
	defer f.Lock.Unlock(env)
	inum, ok := f.fds[fd]
	if !ok {
		return 0, fmt.Errorf("fs: bad fd %d", fd)
	}
	f.bc.beginTx()
	if err := f.writei(env, inum, off, data); err != nil {
		return 0, err
	}
	if err := f.bc.commitTx(env); err != nil {
		return 0, err
	}
	return len(data), nil
}

// Stat returns the file size.
func (f *FS) Stat(env *mk.Env, fd uint64) (uint64, error) {
	f.Lock.Lock(env)
	defer f.Lock.Unlock(env)
	inum, ok := f.fds[fd]
	if !ok {
		return 0, fmt.Errorf("fs: bad fd %d", fd)
	}
	d, err := f.readInode(env, inum)
	if err != nil {
		return 0, err
	}
	return d.Size, nil
}

// Close releases a descriptor.
func (f *FS) Close(env *mk.Env, fd uint64) error {
	f.Lock.Lock(env)
	defer f.Lock.Unlock(env)
	if _, ok := f.fds[fd]; !ok {
		return fmt.Errorf("fs: bad fd %d", fd)
	}
	delete(f.fds, fd)
	return nil
}

// Truncate empties a file.
func (f *FS) Truncate(env *mk.Env, fd uint64) error {
	f.Lock.Lock(env)
	defer f.Lock.Unlock(env)
	inum, ok := f.fds[fd]
	if !ok {
		return fmt.Errorf("fs: bad fd %d", fd)
	}
	f.bc.beginTx()
	if err := f.itrunc(env, inum); err != nil {
		return err
	}
	return f.bc.commitTx(env)
}

// Unlink removes a file name and frees its inode and blocks.
func (f *FS) Unlink(env *mk.Env, name string) error {
	f.Lock.Lock(env)
	defer f.Lock.Unlock(env)
	f.bc.beginTx()
	inum, err := f.dirUnlink(env, name)
	if err != nil {
		f.bc.commitTx(env)
		return err
	}
	if err := f.itrunc(env, inum); err != nil {
		return err
	}
	if err := f.writeInode(env, inum, dinode{}); err != nil {
		return err
	}
	return f.bc.commitTx(env)
}

// Fsync flushes the device (the log already commits per write).
func (f *FS) Fsync(env *mk.Env) error {
	f.Lock.Lock(env)
	defer f.Lock.Unlock(env)
	return f.dev.Flush(env)
}

// --- service interface ---

// Service opcodes.
const (
	OpOpen uint64 = iota + 1
	OpCreate
	OpRead
	OpWrite
	OpStat
	OpClose
	OpUnlink
	OpTruncate
	OpFsync
)

// Status codes.
const (
	StatusOK  = svc.StatusOK
	StatusErr = 1
)

// maxIO bounds a single read/write payload (the transport buffer size).
const maxIO = 4 * hw.PageSize

// Handler returns the FS's service handler.
func (f *FS) Handler() svc.Handler {
	return func(env *mk.Env, req svc.Req) svc.Resp {
		switch req.Op {
		case OpOpen, OpCreate:
			fd, size, err := f.Open(env, string(req.Data), req.Op == OpCreate)
			if err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{Vals: [3]uint64{fd, size}}
		case OpRead:
			n := int(req.Args[2])
			if n > maxIO {
				return svc.Resp{Status: StatusErr}
			}
			data, err := f.Read(env, req.Args[0], int(req.Args[1]), n)
			if err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{Data: data}
		case OpWrite:
			n, err := f.Write(env, req.Args[0], int(req.Args[1]), req.Data)
			if err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{Vals: [3]uint64{uint64(n)}}
		case OpStat:
			size, err := f.Stat(env, req.Args[0])
			if err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{Vals: [3]uint64{size}}
		case OpClose:
			if err := f.Close(env, req.Args[0]); err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{}
		case OpUnlink:
			if err := f.Unlink(env, string(req.Data)); err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{}
		case OpTruncate:
			if err := f.Truncate(env, req.Args[0]); err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{}
		case OpFsync:
			if err := f.Fsync(env); err != nil {
				return svc.Resp{Status: StatusErr}
			}
			return svc.Resp{}
		default:
			return svc.Resp{Status: StatusErr}
		}
	}
}

// Client is a typed client over a transport connection to an FS server.
type Client struct {
	Conn svc.Conn
}

// Open opens a file.
func (c *Client) Open(env *mk.Env, name string, create bool) (fd, size uint64, err error) {
	op := OpOpen
	if create {
		op = OpCreate
	}
	resp, err := c.Conn.Invoke(env, svc.Req{Op: op, Data: []byte(name)})
	if err != nil {
		return 0, 0, err
	}
	if resp.Status != StatusOK {
		return 0, 0, fmt.Errorf("fs: open %q failed", name)
	}
	return resp.Vals[0], resp.Vals[1], nil
}

// ReadAt reads n bytes at off.
func (c *Client) ReadAt(env *mk.Env, fd uint64, off, n int) ([]byte, error) {
	resp, err := c.Conn.Invoke(env, svc.Req{Op: OpRead, Args: [3]uint64{fd, uint64(off), uint64(n)}})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, fmt.Errorf("fs: read failed")
	}
	return resp.Data, nil
}

// WriteAt writes data at off.
func (c *Client) WriteAt(env *mk.Env, fd uint64, off int, data []byte) error {
	resp, err := c.Conn.Invoke(env, svc.Req{Op: OpWrite, Args: [3]uint64{fd, uint64(off)}, Data: data})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("fs: write failed")
	}
	return nil
}

// Stat returns the file size.
func (c *Client) Stat(env *mk.Env, fd uint64) (uint64, error) {
	resp, err := c.Conn.Invoke(env, svc.Req{Op: OpStat, Args: [3]uint64{fd}})
	if err != nil {
		return 0, err
	}
	if resp.Status != StatusOK {
		return 0, fmt.Errorf("fs: stat failed")
	}
	return resp.Vals[0], nil
}

// Truncate empties the file.
func (c *Client) Truncate(env *mk.Env, fd uint64) error {
	resp, err := c.Conn.Invoke(env, svc.Req{Op: OpTruncate, Args: [3]uint64{fd}})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("fs: truncate failed")
	}
	return nil
}

// Unlink removes a file.
func (c *Client) Unlink(env *mk.Env, name string) error {
	resp, err := c.Conn.Invoke(env, svc.Req{Op: OpUnlink, Data: []byte(name)})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("fs: unlink %q failed", name)
	}
	return nil
}

// Fsync flushes the device.
func (c *Client) Fsync(env *mk.Env) error {
	resp, err := c.Conn.Invoke(env, svc.Req{Op: OpFsync})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("fs: fsync failed")
	}
	return nil
}
