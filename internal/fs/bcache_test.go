package fs

import (
	"errors"
	"testing"

	"skybridge/internal/mk"
)

// tinyCache builds a bcache with nslots total buffers over the mounted
// world's device, so tests can force exhaustion without filling a real
// 128-buffer cache.
func tinyCache(f *FS, nslots int, cfg Config) *bcache {
	region := f.Proc.Alloc(nslots * BlockSize)
	return newBcache(f.dev, region, int(f.sb.LogStart), nslots, cfg, f.Proc.Kernel())
}

// TestCacheExhaustedSentinel pins the typed sentinel: when every buffer
// is referenced, get reports ErrCacheExhausted (matched with errors.Is),
// and releasing a reference makes the same request succeed.
func TestCacheExhaustedSentinel(t *testing.T) {
	fsWorld(t, 512, func(env *mk.Env, f *FS, c *Client) {
		bc := tinyCache(f, 2, Config{})
		b0, err := bc.get(env, 10)
		if err != nil {
			t.Fatalf("get 10: %v", err)
		}
		if _, err := bc.get(env, 11); err != nil {
			t.Fatalf("get 11: %v", err)
		}
		_, err = bc.get(env, 12)
		if err == nil {
			t.Fatal("get 12 with all buffers referenced: want error, got nil")
		}
		if !errors.Is(err, ErrCacheExhausted) {
			t.Fatalf("get 12: err = %v, want errors.Is(_, ErrCacheExhausted)", err)
		}
		// Cache pressure must be distinguishable from device faults.
		if errors.Is(err, errors.New("other")) {
			t.Fatal("sentinel matched an unrelated error")
		}
		bc.put(b0)
		if _, err := bc.get(env, 12); err != nil {
			t.Fatalf("get 12 after releasing a buffer: %v", err)
		}
	})
}

// TestCacheExhaustedDirty covers the other exhaustion cause: buffers
// dirtied by an uncommitted transaction are pinned and not evictable,
// and committing unpins them.
func TestCacheExhaustedDirty(t *testing.T) {
	fsWorld(t, 512, func(env *mk.Env, f *FS, c *Client) {
		bc := tinyCache(f, 2, Config{})
		bc.inTx = true
		for _, bn := range []int{10, 11} {
			b, err := bc.get(env, bn)
			if err != nil {
				t.Fatalf("get %d: %v", bn, err)
			}
			bc.write(env, b, 0, []byte{0xAB})
			bc.put(b)
		}
		if _, err := bc.get(env, 12); !errors.Is(err, ErrCacheExhausted) {
			t.Fatalf("get 12 with all buffers dirty: err = %v, want ErrCacheExhausted", err)
		}
		if err := bc.commitTx(env); err != nil {
			t.Fatalf("commit: %v", err)
		}
		if _, err := bc.get(env, 12); err != nil {
			t.Fatalf("get 12 after commit: %v", err)
		}
	})
}

// TestCacheExhaustedFineShard checks the sharded cache: exhaustion is
// per shard, so a full shard errors while its sibling still has room.
func TestCacheExhaustedFineShard(t *testing.T) {
	fsWorld(t, 512, func(env *mk.Env, f *FS, c *Client) {
		bc := tinyCache(f, 2, Config{Lock: LockFine}) // 2 shards x 1 slot
		if _, err := bc.get(env, 10); err != nil {    // shard 0
			t.Fatalf("get 10: %v", err)
		}
		if _, err := bc.get(env, 12); !errors.Is(err, ErrCacheExhausted) { // shard 0 again
			t.Fatalf("get 12: err = %v, want ErrCacheExhausted", err)
		}
		if _, err := bc.get(env, 11); err != nil { // shard 1 has room
			t.Fatalf("get 11 on free shard: %v", err)
		}
	})
}
