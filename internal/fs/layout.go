// Package fs implements an xv6fs-like log-structured, crash-consistent
// file system, the substrate the paper ports for its SQLite3 evaluation
// (§6.5: "we also port a log-based file system named xv6fs"). It runs as a
// server process: the database calls it through a svc transport, and it in
// turn calls the block-device server — the exact three-tier pipeline whose
// IPC volume the evaluation measures.
//
// Like the paper's port, the file system has a single big lock ("since the
// xv6fs does not support multithreading, we use one big lock in the file
// system, that is the reason why the scalability is so bad"); Figures 9-11
// inherit their negative scaling from it.
package fs

import (
	"encoding/binary"
	"fmt"

	"skybridge/internal/blockdev"
)

// Geometry.
const (
	// BlockSize matches the device block size.
	BlockSize = blockdev.BlockSize
	// LogBlocks is the number of log data blocks (xv6's LOGSIZE).
	LogBlocks = 30
	// InodeSize is the on-disk inode footprint.
	InodeSize = 128
	// InodesPerBlock derives from the block size.
	InodesPerBlock = BlockSize / InodeSize
	// NDirect is the number of direct block pointers per inode.
	NDirect = 12
	// NIndirect is the number of pointers in an indirect block.
	NIndirect = BlockSize / 8
	// MaxFileBlocks is the largest file: direct + single + double indirect.
	MaxFileBlocks = NDirect + NIndirect + NIndirect*NIndirect
	// DirentSize is the on-disk directory entry footprint.
	DirentSize = 32
	// MaxNameLen is the longest file name.
	MaxNameLen = 23

	// Magic identifies a formatted file system.
	Magic = 0x5B_F5_2019
)

// Inode types.
const (
	TypeFree = 0
	TypeDir  = 1
	TypeFile = 2
)

// Superblock describes the on-disk layout (block 0).
type Superblock struct {
	Magic      uint64
	Size       uint64 // total blocks
	NInodes    uint64
	LogStart   uint64 // log header block; log data follows
	InodeStart uint64
	BmapStart  uint64
	DataStart  uint64
}

func (sb *Superblock) encode() []byte {
	b := make([]byte, BlockSize)
	for i, v := range []uint64{sb.Magic, sb.Size, sb.NInodes, sb.LogStart, sb.InodeStart, sb.BmapStart, sb.DataStart} {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	return b
}

func decodeSuperblock(b []byte) (*Superblock, error) {
	sb := &Superblock{
		Magic:      binary.LittleEndian.Uint64(b[0:]),
		Size:       binary.LittleEndian.Uint64(b[8:]),
		NInodes:    binary.LittleEndian.Uint64(b[16:]),
		LogStart:   binary.LittleEndian.Uint64(b[24:]),
		InodeStart: binary.LittleEndian.Uint64(b[32:]),
		BmapStart:  binary.LittleEndian.Uint64(b[40:]),
		DataStart:  binary.LittleEndian.Uint64(b[48:]),
	}
	if sb.Magic != Magic {
		return nil, fmt.Errorf("fs: bad magic %#x", sb.Magic)
	}
	return sb, nil
}

// dinode is the on-disk inode image.
type dinode struct {
	Type  uint16
	Nlink uint16
	Size  uint64
	// Addrs: NDirect direct blocks, then one single-indirect, then one
	// double-indirect block pointer.
	Addrs [NDirect + 2]uint64
}

func (d *dinode) encode(b []byte) {
	binary.LittleEndian.PutUint16(b[0:], d.Type)
	binary.LittleEndian.PutUint16(b[2:], d.Nlink)
	binary.LittleEndian.PutUint64(b[8:], d.Size)
	for i, a := range d.Addrs {
		binary.LittleEndian.PutUint64(b[16+8*i:], a)
	}
}

func decodeDinode(b []byte) dinode {
	var d dinode
	d.Type = binary.LittleEndian.Uint16(b[0:])
	d.Nlink = binary.LittleEndian.Uint16(b[2:])
	d.Size = binary.LittleEndian.Uint64(b[8:])
	for i := range d.Addrs {
		d.Addrs[i] = binary.LittleEndian.Uint64(b[16+8*i:])
	}
	return d
}

// dirent is an on-disk directory entry.
type dirent struct {
	Inum uint64
	Name string
}

func (de *dirent) encode(b []byte) {
	binary.LittleEndian.PutUint64(b[0:], de.Inum)
	for i := 0; i < MaxNameLen+1; i++ {
		b[8+i] = 0
	}
	copy(b[8:8+MaxNameLen], de.Name)
}

func decodeDirent(b []byte) dirent {
	name := b[8 : 8+MaxNameLen]
	n := 0
	for n < len(name) && name[n] != 0 {
		n++
	}
	return dirent{
		Inum: binary.LittleEndian.Uint64(b[0:]),
		Name: string(name[:n]),
	}
}
