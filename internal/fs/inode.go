package fs

import (
	"fmt"

	"skybridge/internal/mk"
)

// inodeBlock returns the block and intra-block offset of an inode.
func (f *FS) inodeBlock(inum uint64) (int, int) {
	return int(f.sb.InodeStart) + int(inum)/InodesPerBlock,
		(int(inum) % InodesPerBlock) * InodeSize
}

// readInode loads an inode image.
func (f *FS) readInode(env *mk.Env, inum uint64) (dinode, error) {
	bn, off := f.inodeBlock(inum)
	b, err := f.bc.get(env, bn)
	if err != nil {
		return dinode{}, err
	}
	d := decodeDinode(b.read(env, off, InodeSize))
	f.bc.put(b)
	return d, nil
}

// writeInode stores an inode image (inside a transaction).
func (f *FS) writeInode(env *mk.Env, inum uint64, d dinode) error {
	bn, off := f.inodeBlock(inum)
	b, err := f.bc.get(env, bn)
	if err != nil {
		return err
	}
	img := make([]byte, InodeSize)
	d.encode(img)
	f.bc.write(env, b, off, img)
	f.bc.put(b)
	return nil
}

// allocInode finds a free inode and types it. Callers hold the namespace
// lock, which serializes allocation.
func (f *FS) allocInode(env *mk.Env, typ uint16) (uint64, error) {
	for inum := uint64(1); inum < f.sb.NInodes; inum++ {
		d, err := f.readInode(env, inum)
		if err != nil {
			return 0, err
		}
		if d.Type == TypeFree {
			d = dinode{Type: typ, Nlink: 1}
			if err := f.writeInode(env, inum, d); err != nil {
				return 0, err
			}
			return inum, nil
		}
	}
	return 0, fmt.Errorf("fs: out of inodes")
}

// balloc allocates a zeroed data block. In fine mode alloclk covers the
// whole scan: the read-bit→write-bit window crosses park points (shard
// locks, the log lock), so without it two writers could claim one bit.
func (f *FS) balloc(env *mk.Env) (int, error) {
	if f.alloclk != nil {
		f.alloclk.Lock(env)
		defer f.alloclk.Unlock(env)
	}
	bitsPerBlock := BlockSize * 8
	for bn := 0; bn < int(f.sb.Size); bn += bitsPerBlock {
		bmapBlock := int(f.sb.BmapStart) + bn/bitsPerBlock
		b, err := f.bc.get(env, bmapBlock)
		if err != nil {
			return 0, err
		}
		for bi := 0; bi < bitsPerBlock && bn+bi < int(f.sb.Size); bi++ {
			byteOff, mask := bi/8, byte(1)<<(bi%8)
			cur := b.read(env, byteOff, 1)
			if cur[0]&mask == 0 {
				f.bc.write(env, b, byteOff, []byte{cur[0] | mask})
				// Zero the block.
				zb, err := f.bc.get(env, bn+bi)
				if err != nil {
					f.bc.put(b)
					return 0, err
				}
				f.bc.write(env, zb, 0, make([]byte, BlockSize))
				f.bc.put(zb)
				f.bc.put(b)
				return bn + bi, nil
			}
		}
		f.bc.put(b)
	}
	return 0, fmt.Errorf("fs: out of data blocks")
}

// bfree releases a data block.
func (f *FS) bfree(env *mk.Env, bn int) error {
	if f.alloclk != nil {
		f.alloclk.Lock(env)
		defer f.alloclk.Unlock(env)
	}
	bitsPerBlock := BlockSize * 8
	bmapBlock := int(f.sb.BmapStart) + bn/bitsPerBlock
	b, err := f.bc.get(env, bmapBlock)
	if err != nil {
		return err
	}
	defer f.bc.put(b)
	bi := bn % bitsPerBlock
	byteOff, mask := bi/8, byte(1)<<(bi%8)
	cur := b.read(env, byteOff, 1)
	if cur[0]&mask == 0 {
		return fmt.Errorf("fs: freeing free block %d", bn)
	}
	f.bc.write(env, b, byteOff, []byte{cur[0] &^ mask})
	return nil
}

// indirectLookup reads (or allocates) slot idx in the indirect block at
// *addr, allocating the indirect block itself if needed. The buffer's
// reference pins it across the balloc call — which parks on the
// allocator lock in fine mode — so the slot write below cannot land in a
// recycled buffer.
func (f *FS) indirectLookup(env *mk.Env, addr *uint64, idx int, alloc bool) (uint64, bool, error) {
	dirty := false
	if *addr == 0 {
		if !alloc {
			return 0, false, nil
		}
		bn, err := f.balloc(env)
		if err != nil {
			return 0, false, err
		}
		*addr = uint64(bn)
		dirty = true
	}
	b, err := f.bc.get(env, int(*addr))
	if err != nil {
		return 0, false, err
	}
	slot := getU64(b.read(env, 8*idx, 8), 0)
	if slot == 0 && alloc {
		bn, err := f.balloc(env)
		if err != nil {
			f.bc.put(b)
			return 0, false, err
		}
		slot = uint64(bn)
		img := make([]byte, 8)
		putU64(img, 0, slot)
		f.bc.write(env, b, 8*idx, img)
	}
	f.bc.put(b)
	return slot, dirty, nil
}

// bmap resolves file block fb of inode d to a device block, allocating as
// needed. It reports whether the inode image changed.
func (f *FS) bmap(env *mk.Env, d *dinode, fb int, alloc bool) (uint64, bool, error) {
	changed := false
	switch {
	case fb < NDirect:
		if d.Addrs[fb] == 0 && alloc {
			bn, err := f.balloc(env)
			if err != nil {
				return 0, false, err
			}
			d.Addrs[fb] = uint64(bn)
			changed = true
		}
		return d.Addrs[fb], changed, nil

	case fb < NDirect+NIndirect:
		prev := d.Addrs[NDirect]
		bn, _, err := f.indirectLookup(env, &d.Addrs[NDirect], fb-NDirect, alloc)
		return bn, d.Addrs[NDirect] != prev, err

	case fb < MaxFileBlocks:
		fb -= NDirect + NIndirect
		prev := d.Addrs[NDirect+1]
		l1, _, err := f.indirectLookup(env, &d.Addrs[NDirect+1], fb/NIndirect, alloc)
		if err != nil {
			return 0, false, err
		}
		changed = d.Addrs[NDirect+1] != prev
		if l1 == 0 {
			return 0, changed, nil
		}
		bn, _, err := f.indirectLookup(env, &l1, fb%NIndirect, alloc)
		return bn, changed, err

	default:
		return 0, false, fmt.Errorf("fs: file block %d beyond maximum", fb)
	}
}

// readi reads up to n bytes at off from inode inum.
func (f *FS) readi(env *mk.Env, inum uint64, off, n int) ([]byte, error) {
	d, err := f.readInode(env, inum)
	if err != nil {
		return nil, err
	}
	if off >= int(d.Size) {
		return nil, nil
	}
	if off+n > int(d.Size) {
		n = int(d.Size) - off
	}
	out := make([]byte, 0, n)
	for n > 0 {
		fb, bo := off/BlockSize, off%BlockSize
		chunk := BlockSize - bo
		if chunk > n {
			chunk = n
		}
		bn, _, err := f.bmap(env, &d, fb, false)
		if err != nil {
			return nil, err
		}
		if bn == 0 {
			out = append(out, make([]byte, chunk)...) // hole
		} else {
			b, err := f.bc.get(env, int(bn))
			if err != nil {
				return nil, err
			}
			out = append(out, b.read(env, bo, chunk)...)
			f.bc.put(b)
		}
		off += chunk
		n -= chunk
	}
	return out, nil
}

// writei writes data at off into inode inum (inside a transaction),
// growing the file as needed.
func (f *FS) writei(env *mk.Env, inum uint64, off int, data []byte) error {
	d, err := f.readInode(env, inum)
	if err != nil {
		return err
	}
	n := len(data)
	pos := 0
	dirty := false
	for pos < n {
		fb, bo := (off+pos)/BlockSize, (off+pos)%BlockSize
		chunk := BlockSize - bo
		if chunk > n-pos {
			chunk = n - pos
		}
		bn, ch, err := f.bmap(env, &d, fb, true)
		if err != nil {
			return err
		}
		dirty = dirty || ch
		b, err := f.bc.get(env, int(bn))
		if err != nil {
			return err
		}
		f.bc.write(env, b, bo, data[pos:pos+chunk])
		f.bc.put(b)
		pos += chunk
	}
	if off+n > int(d.Size) {
		d.Size = uint64(off + n)
		dirty = true
	}
	if dirty {
		return f.writeInode(env, inum, d)
	}
	return nil
}

// itrunc frees all blocks of inode inum and zeroes its size.
func (f *FS) itrunc(env *mk.Env, inum uint64) error {
	d, err := f.readInode(env, inum)
	if err != nil {
		return err
	}
	freeIndirect := func(addr uint64, depth int) error {
		var walk func(a uint64, depth int) error
		walk = func(a uint64, depth int) error {
			if a == 0 {
				return nil
			}
			if depth > 0 {
				b, err := f.bc.get(env, int(a))
				if err != nil {
					return err
				}
				for i := 0; i < NIndirect; i++ {
					slot := getU64(b.read(env, 8*i, 8), 0)
					if err := walk(slot, depth-1); err != nil {
						f.bc.put(b)
						return err
					}
				}
				f.bc.put(b)
			}
			return f.bfree(env, int(a))
		}
		return walk(addr, depth)
	}
	for i := 0; i < NDirect; i++ {
		if d.Addrs[i] != 0 {
			if err := f.bfree(env, int(d.Addrs[i])); err != nil {
				return err
			}
		}
	}
	if err := freeIndirect(d.Addrs[NDirect], 1); err != nil {
		return err
	}
	if err := freeIndirect(d.Addrs[NDirect+1], 2); err != nil {
		return err
	}
	d.Addrs = [NDirect + 2]uint64{}
	d.Size = 0
	return f.writeInode(env, inum, d)
}
