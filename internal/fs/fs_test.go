package fs

import (
	"bytes"
	"fmt"
	"testing"

	"skybridge/internal/blockdev"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
	"skybridge/internal/svc"
)

// fsWorld builds a single-process world (Baseline transport) with a
// formatted big-lock file system, and runs body on a thread in it.
func fsWorld(t *testing.T, blocks int, body func(env *mk.Env, f *FS, c *Client)) {
	t.Helper()
	fsWorldCfg(t, blocks, Config{}, body)
}

// fsWorldCfg is fsWorld with an explicit lock/IO configuration, so the
// same tests cover the big lock and the fine-grained replacement.
func fsWorldCfg(t *testing.T, blocks int, cfg Config, body func(env *mk.Env, f *FS, c *Client)) {
	t.Helper()
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 2 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("fsworld")
	dev := blockdev.New(p, blocks)
	f := NewFS(p, svc.NewLocal(dev.Handler()), cfg)
	c := &Client{Conn: svc.NewLocal(f.Handler())}
	p.Spawn("main", k.Mach.Cores[0], func(env *mk.Env) {
		if err := f.Mkfs(env, blocks, 128); err != nil {
			t.Errorf("mkfs: %v", err)
			return
		}
		body(env, f, c)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// lockModes enumerates the two FS configurations the shared tests sweep.
var lockModes = []struct {
	name string
	cfg  Config
}{
	{"biglock", Config{}},
	{"finelock", Config{Lock: LockFine}},
}

func TestMkfsAndMount(t *testing.T) {
	fsWorld(t, 512, func(env *mk.Env, f *FS, c *Client) {
		sb := f.Superblock()
		if sb.Magic != Magic || sb.Size != 512 {
			t.Errorf("superblock %+v", sb)
		}
		if sb.DataStart <= sb.BmapStart {
			t.Error("layout overlap")
		}
	})
}

func TestCreateWriteRead(t *testing.T) {
	fsWorld(t, 512, func(env *mk.Env, f *FS, c *Client) {
		fd, size, err := c.Open(env, "hello.txt", true)
		if err != nil {
			t.Error(err)
			return
		}
		if size != 0 {
			t.Errorf("new file size %d", size)
		}
		msg := []byte("hello, file system")
		if err := c.WriteAt(env, fd, 0, msg); err != nil {
			t.Error(err)
			return
		}
		got, err := c.ReadAt(env, fd, 0, len(msg))
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("read %q", got)
		}
		// Reopen sees the same size.
		fd2, size2, err := c.Open(env, "hello.txt", false)
		if err != nil || size2 != uint64(len(msg)) {
			t.Errorf("reopen: fd=%d size=%d err=%v", fd2, size2, err)
		}
	})
}

func TestWriteAtOffsetsAndHoles(t *testing.T) {
	fsWorld(t, 1024, func(env *mk.Env, f *FS, c *Client) {
		fd, _, _ := c.Open(env, "holes", true)
		// Write beyond a hole.
		if err := c.WriteAt(env, fd, 3*BlockSize+10, []byte("tail")); err != nil {
			t.Error(err)
			return
		}
		got, err := c.ReadAt(env, fd, 0, BlockSize)
		if err != nil {
			t.Error(err)
			return
		}
		for _, b := range got {
			if b != 0 {
				t.Error("hole not zero")
				break
			}
		}
		got, _ = c.ReadAt(env, fd, 3*BlockSize+10, 4)
		if string(got) != "tail" {
			t.Errorf("tail = %q", got)
		}
	})
}

func TestLargeFileThroughIndirects(t *testing.T) {
	// A file spanning direct + single-indirect + into double-indirect
	// blocks: > (12 + 512) * 4096 bytes would need 2 GiB of sim memory to
	// be fun; instead write sparse probes at the boundaries.
	fsWorld(t, 4096, func(env *mk.Env, f *FS, c *Client) {
		fd, _, _ := c.Open(env, "big", true)
		probes := []int{
			0,                                       // direct
			(NDirect - 1) * BlockSize,               // last direct
			NDirect * BlockSize,                     // first single-indirect
			(NDirect + 5) * BlockSize,               // inside single-indirect
			(NDirect + NIndirect) * BlockSize,       // first double-indirect
			(NDirect + NIndirect + 700) * BlockSize, // into second L2 table
		}
		for i, off := range probes {
			payload := []byte(fmt.Sprintf("probe-%d", i))
			if err := c.WriteAt(env, fd, off, payload); err != nil {
				t.Errorf("probe %d: %v", i, err)
				return
			}
		}
		for i, off := range probes {
			want := fmt.Sprintf("probe-%d", i)
			got, err := c.ReadAt(env, fd, off, len(want))
			if err != nil || string(got) != want {
				t.Errorf("probe %d: %q err=%v", i, got, err)
			}
		}
	})
}

func TestUnlinkFreesBlocks(t *testing.T) {
	fsWorld(t, 512, func(env *mk.Env, f *FS, c *Client) {
		countFree := func() int {
			n := 0
			for bn := int(f.sb.DataStart); bn < int(f.sb.Size); bn++ {
				b, _ := f.bc.get(env, int(f.sb.BmapStart)+bn/(BlockSize*8))
				bi := bn % (BlockSize * 8)
				if b.data[bi/8]&(1<<(bi%8)) == 0 {
					n++
				}
			}
			return n
		}
		// Warm the root directory's data block so it does not perturb the
		// free-block accounting below.
		c.Open(env, "warmup", true)
		before := countFree()
		fd, _, _ := c.Open(env, "victim", true)
		data := make([]byte, 8*BlockSize)
		if err := c.WriteAt(env, fd, 0, data[:4*hw.PageSize]); err != nil {
			t.Error(err)
			return
		}
		if countFree() >= before {
			t.Error("write did not consume blocks")
		}
		if err := c.Unlink(env, "victim"); err != nil {
			t.Error(err)
			return
		}
		if got := countFree(); got != before {
			t.Errorf("unlink leaked blocks: %d free, want %d", got, before)
		}
		if _, _, err := c.Open(env, "victim", false); err == nil {
			t.Error("unlinked file still opens")
		}
	})
}

func TestMultipleFiles(t *testing.T) {
	fsWorld(t, 1024, func(env *mk.Env, f *FS, c *Client) {
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("file-%d", i)
			fd, _, err := c.Open(env, name, true)
			if err != nil {
				t.Error(err)
				return
			}
			if err := c.WriteAt(env, fd, 0, []byte(name)); err != nil {
				t.Error(err)
				return
			}
		}
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("file-%d", i)
			fd, size, err := c.Open(env, name, false)
			if err != nil || size != uint64(len(name)) {
				t.Errorf("%s: size=%d err=%v", name, size, err)
				continue
			}
			got, _ := c.ReadAt(env, fd, 0, len(name))
			if string(got) != name {
				t.Errorf("%s contains %q", name, got)
			}
		}
	})
}

func TestTruncate(t *testing.T) {
	fsWorld(t, 512, func(env *mk.Env, f *FS, c *Client) {
		fd, _, _ := c.Open(env, "t", true)
		c.WriteAt(env, fd, 0, make([]byte, 3*BlockSize))
		if err := c.Truncate(env, fd); err != nil {
			t.Error(err)
			return
		}
		size, _ := c.Stat(env, fd)
		if size != 0 {
			t.Errorf("size after truncate = %d", size)
		}
	})
}

// TestCrashRecovery simulates the log's crash consistency: a committed but
// uninstalled transaction is replayed by recover; an uncommitted one
// vanishes.
func TestCrashRecovery(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 2 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("crash")
	dev := blockdev.New(p, 512)
	devConn := svc.NewLocal(dev.Handler())
	f := New(p, devConn)
	p.Spawn("main", k.Mach.Cores[0], func(env *mk.Env) {
		if err := f.Mkfs(env, 512, 64); err != nil {
			t.Error(err)
			return
		}
		fd, _, _ := f.Open(env, "data", true)
		f.Write(env, fd, 0, []byte("stable-data!")) // >= 10 bytes so the recovered prefix is readable

		// Build a "committed but not installed" state by hand: write log
		// blocks + header for an update of the file's data block, without
		// installing.
		d, _ := f.readInode(env, f.fds[fd])
		dataBlock := int(d.Addrs[0])
		victim := make([]byte, BlockSize)
		copy(victim, "recovered!")
		cli := &blockdev.Client{Conn: devConn}
		cli.WriteBlock(env, int(f.sb.LogStart)+1, victim)
		hdr := make([]byte, BlockSize)
		putU64(hdr, 0, 1)
		putU64(hdr, 8, uint64(dataBlock))
		cli.WriteBlock(env, int(f.sb.LogStart), hdr)

		// "Reboot": a fresh FS instance mounts and recovers.
		f2 := New(p, devConn)
		if err := f2.Mount(env); err != nil {
			t.Error(err)
			return
		}
		fd2, _, err := f2.Open(env, "data", false)
		if err != nil {
			t.Error(err)
			return
		}
		got, _ := f2.Read(env, fd2, 0, 10)
		if string(got) != "recovered!" {
			t.Errorf("after recovery: %q", got)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFSOverIPC runs the FS as a real IPC server with the device as
// another IPC server — the full three-tier pipeline of the paper.
func TestFSOverIPC(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 4, MemBytes: 2 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	devProc := k.NewProcess("blockdev")
	fsProc := k.NewProcess("fs")
	appProc := k.NewProcess("app")

	dev := blockdev.New(devProc, 512)
	devEP := k.NewEndpoint("dev")
	fsEP := k.NewEndpoint("fs")

	devProc.Spawn("srv", k.Mach.Cores[0], func(env *mk.Env) {
		svc.ServeIPC(env, devEP, dev.Handler())
	})

	f := New(fsProc, svc.NewIPC(fsProc, devEP))
	fsProc.Spawn("srv", k.Mach.Cores[0], func(env *mk.Env) {
		if err := f.Mkfs(env, 512, 64); err != nil {
			t.Errorf("mkfs: %v", err)
			return
		}
		svc.ServeIPC(env, fsEP, f.Handler())
	})

	appProc.Spawn("app", k.Mach.Cores[0], func(env *mk.Env) {
		c := &Client{Conn: svc.NewIPC(appProc, fsEP)}
		fd, _, err := c.Open(env, "ipc-file", true)
		if err != nil {
			t.Error(err)
			return
		}
		msg := []byte("written through two IPC hops")
		if err := c.WriteAt(env, fd, 0, msg); err != nil {
			t.Error(err)
			return
		}
		got, err := c.ReadAt(env, fd, 0, len(msg))
		if err != nil || !bytes.Equal(got, msg) {
			t.Errorf("got %q err=%v", got, err)
		}
		fsEP.Close()
		devEP.Close()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if k.IPCCalls == 0 {
		t.Fatal("no IPC recorded in the three-tier pipeline")
	}
}
