package fs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"skybridge/internal/mk"
)

// modelFile mirrors one file's expected content.
type modelFile struct {
	data []byte
}

// TestFSAgainstModel drives random file-system operations against both the
// FS and an in-memory model and checks they agree at every step.
func TestFSAgainstModel(t *testing.T) {
	fsWorld(t, 2048, func(env *mk.Env, f *FS, c *Client) {
		rng := rand.New(rand.NewSource(2024))
		model := map[string]*modelFile{}
		fds := map[string]uint64{}

		names := make([]string, 6)
		for i := range names {
			names[i] = fmt.Sprintf("f%d", i)
		}
		pick := func() string { return names[rng.Intn(len(names))] }

		openIt := func(name string) uint64 {
			if fd, ok := fds[name]; ok {
				return fd
			}
			fd, _, err := c.Open(env, name, true)
			if err != nil {
				t.Fatalf("open %s: %v", name, err)
			}
			fds[name] = fd
			if _, ok := model[name]; !ok {
				model[name] = &modelFile{}
			}
			return fd
		}

		for step := 0; step < 300; step++ {
			name := pick()
			switch rng.Intn(5) {
			case 0, 1: // write at random offset
				fd := openIt(name)
				off := rng.Intn(3 * BlockSize)
				n := 1 + rng.Intn(2*BlockSize)
				data := make([]byte, n)
				rng.Read(data)
				if err := c.WriteAt(env, fd, off, data); err != nil {
					t.Fatalf("step %d: write %s: %v", step, name, err)
				}
				m := model[name]
				if off+n > len(m.data) {
					m.data = append(m.data, make([]byte, off+n-len(m.data))...)
				}
				copy(m.data[off:], data)
			case 2, 3: // read a random range and compare
				fd := openIt(name)
				m := model[name]
				if len(m.data) == 0 {
					continue
				}
				off := rng.Intn(len(m.data))
				n := 1 + rng.Intn(len(m.data)-off)
				got, err := c.ReadAt(env, fd, off, n)
				if err != nil {
					t.Fatalf("step %d: read %s: %v", step, name, err)
				}
				if !bytes.Equal(got, m.data[off:off+n]) {
					t.Fatalf("step %d: %s[%d:%d] mismatch", step, name, off, off+n)
				}
			case 4: // unlink
				if _, ok := fds[name]; !ok {
					continue
				}
				if err := c.Unlink(env, name); err != nil {
					t.Fatalf("step %d: unlink %s: %v", step, name, err)
				}
				delete(fds, name)
				delete(model, name)
			}
		}
		// Final sweep: sizes and full contents agree.
		for name, m := range model {
			fd := fds[name]
			size, err := c.Stat(env, fd)
			if err != nil || int(size) != len(m.data) {
				t.Fatalf("final %s: size %d, want %d (%v)", name, size, len(m.data), err)
			}
			if size == 0 {
				continue
			}
			// Read in chunks bounded by the transport buffer.
			for off := 0; off < len(m.data); off += 8192 {
				n := min(8192, len(m.data)-off)
				got, err := c.ReadAt(env, fd, off, n)
				if err != nil || !bytes.Equal(got, m.data[off:off+n]) {
					t.Fatalf("final %s at %d: mismatch (%v)", name, off, err)
				}
			}
		}
	})
}
