package fs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"skybridge/internal/blockdev"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
	"skybridge/internal/svc"
)

// modelFile mirrors one file's expected content.
type modelFile struct {
	data []byte
}

// TestFSAgainstModel drives random file-system operations against both the
// FS and an in-memory model and checks they agree at every step — under
// the big lock and under the fine-grained lock replacement, which must be
// observationally identical to a single client.
func TestFSAgainstModel(t *testing.T) {
	for _, lm := range lockModes {
		t.Run(lm.name, func(t *testing.T) { fsModelRun(t, lm.cfg) })
	}
}

func fsModelRun(t *testing.T, cfg Config) {
	fsWorldCfg(t, 2048, cfg, func(env *mk.Env, f *FS, c *Client) {
		rng := rand.New(rand.NewSource(2024))
		model := map[string]*modelFile{}
		fds := map[string]uint64{}

		names := make([]string, 6)
		for i := range names {
			names[i] = fmt.Sprintf("f%d", i)
		}
		pick := func() string { return names[rng.Intn(len(names))] }

		openIt := func(name string) uint64 {
			if fd, ok := fds[name]; ok {
				return fd
			}
			fd, _, err := c.Open(env, name, true)
			if err != nil {
				t.Fatalf("open %s: %v", name, err)
			}
			fds[name] = fd
			if _, ok := model[name]; !ok {
				model[name] = &modelFile{}
			}
			return fd
		}

		for step := 0; step < 300; step++ {
			name := pick()
			switch rng.Intn(5) {
			case 0, 1: // write at random offset
				fd := openIt(name)
				off := rng.Intn(3 * BlockSize)
				n := 1 + rng.Intn(2*BlockSize)
				data := make([]byte, n)
				rng.Read(data)
				if err := c.WriteAt(env, fd, off, data); err != nil {
					t.Fatalf("step %d: write %s: %v", step, name, err)
				}
				m := model[name]
				if off+n > len(m.data) {
					m.data = append(m.data, make([]byte, off+n-len(m.data))...)
				}
				copy(m.data[off:], data)
			case 2, 3: // read a random range and compare
				fd := openIt(name)
				m := model[name]
				if len(m.data) == 0 {
					continue
				}
				off := rng.Intn(len(m.data))
				n := 1 + rng.Intn(len(m.data)-off)
				got, err := c.ReadAt(env, fd, off, n)
				if err != nil {
					t.Fatalf("step %d: read %s: %v", step, name, err)
				}
				if !bytes.Equal(got, m.data[off:off+n]) {
					t.Fatalf("step %d: %s[%d:%d] mismatch", step, name, off, off+n)
				}
			case 4: // unlink
				if _, ok := fds[name]; !ok {
					continue
				}
				if err := c.Unlink(env, name); err != nil {
					t.Fatalf("step %d: unlink %s: %v", step, name, err)
				}
				delete(fds, name)
				delete(model, name)
			}
		}
		// Final sweep: sizes and full contents agree.
		for name, m := range model {
			fd := fds[name]
			size, err := c.Stat(env, fd)
			if err != nil || int(size) != len(m.data) {
				t.Fatalf("final %s: size %d, want %d (%v)", name, size, len(m.data), err)
			}
			if size == 0 {
				continue
			}
			// Read in chunks bounded by the transport buffer.
			for off := 0; off < len(m.data); off += 8192 {
				n := min(8192, len(m.data)-off)
				got, err := c.ReadAt(env, fd, off, n)
				if err != nil || !bytes.Equal(got, m.data[off:off+n]) {
					t.Fatalf("final %s at %d: mismatch (%v)", name, off, err)
				}
			}
		}
	})
}

// TestFSConcurrentClientsFineLock runs several client threads against one
// fine-locked FS at once — each driving random writes and reads on its
// own files, all sharing the root directory, allocator, log, and cache
// shards — and checks every file reads back exactly as its owner's model
// predicts. The threads interleave at lock and transport park points, so
// under -race this also exercises the stripe/shard/log lock protocol.
func TestFSConcurrentClientsFineLock(t *testing.T) {
	const (
		blocks  = 4096
		workers = 4
		steps   = 40
	)
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 2 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("fsworld")
	dev := blockdev.New(p, blocks)
	f := NewFS(p, svc.NewLocal(dev.Handler()), Config{Lock: LockFine})

	ready := k.NewKCond("test.ready")
	readyLk := k.NewKMutex("test.readylk")
	formatted := false

	for w := 0; w < workers; w++ {
		w := w
		c := &Client{Conn: svc.NewLocal(f.Handler())}
		p.Spawn(fmt.Sprintf("w%d", w), k.Mach.Cores[w%2], func(env *mk.Env) {
			// Worker 0 formats; the rest wait for the mount.
			readyLk.Lock(env)
			if w == 0 {
				if err := f.Mkfs(env, blocks, 128); err != nil {
					t.Errorf("mkfs: %v", err)
					readyLk.Unlock(env)
					return
				}
				formatted = true
				ready.Broadcast(env)
			} else {
				for !formatted {
					ready.Wait(env, readyLk)
				}
			}
			readyLk.Unlock(env)

			rng := rand.New(rand.NewSource(int64(7000 + w)))
			names := []string{fmt.Sprintf("w%d-a", w), fmt.Sprintf("w%d-b", w)}
			model := map[string][]byte{}
			fds := map[string]uint64{}
			for _, name := range names {
				fd, _, err := c.Open(env, name, true)
				if err != nil {
					t.Errorf("w%d: open %s: %v", w, name, err)
					return
				}
				fds[name] = fd
				model[name] = nil
			}
			for step := 0; step < steps; step++ {
				name := names[rng.Intn(len(names))]
				fd := fds[name]
				switch rng.Intn(3) {
				case 0, 1: // write a random extent
					off := rng.Intn(2 * BlockSize)
					n := 1 + rng.Intn(BlockSize)
					data := make([]byte, n)
					rng.Read(data)
					if err := c.WriteAt(env, fd, off, data); err != nil {
						t.Errorf("w%d step %d: write: %v", w, step, err)
						return
					}
					if off+n > len(model[name]) {
						model[name] = append(model[name], make([]byte, off+n-len(model[name]))...)
					}
					copy(model[name][off:], data)
				case 2: // read back a random extent
					m := model[name]
					if len(m) == 0 {
						continue
					}
					off := rng.Intn(len(m))
					n := 1 + rng.Intn(len(m)-off)
					got, err := c.ReadAt(env, fd, off, n)
					if err != nil {
						t.Errorf("w%d step %d: read: %v", w, step, err)
						return
					}
					if !bytes.Equal(got, m[off:off+n]) {
						t.Errorf("w%d step %d: %s[%d:%d] mismatch", w, step, name, off, off+n)
						return
					}
				}
			}
			if err := c.Fsync(env); err != nil {
				t.Errorf("w%d: fsync: %v", w, err)
				return
			}
			for _, name := range names {
				m := model[name]
				size, err := c.Stat(env, fds[name])
				if err != nil || int(size) != len(m) {
					t.Errorf("w%d final %s: size %d, want %d (%v)", w, name, size, len(m), err)
					return
				}
				for off := 0; off < len(m); off += maxIO {
					n := min(maxIO, len(m)-off)
					got, err := c.ReadAt(env, fds[name], off, n)
					if err != nil || !bytes.Equal(got, m[off:off+n]) {
						t.Errorf("w%d final %s at %d: mismatch (%v)", w, name, off, err)
						return
					}
				}
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
