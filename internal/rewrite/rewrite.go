package rewrite

import (
	"fmt"

	"skybridge/internal/isa"
)

// Result is the output of Rewrite.
type Result struct {
	// Code is the rewritten code page content (same length as the input).
	Code []byte
	// RewritePage is the content of the rewriting page mapped at
	// RewriteBase. Empty if everything was fixable in place.
	RewritePage []byte
	// Fixed lists the occurrences that were neutralized, in fix order.
	Fixed []Occurrence
}

// CaseCounts tallies fixed occurrences by overlap case.
func (r *Result) CaseCounts() map[Case]int {
	m := make(map[Case]int)
	for _, o := range r.Fixed {
		m[o.Case]++
	}
	return m
}

// Rewriter rewrites one process's code so that no executable byte sequence
// equals the VMFUNC encoding. CodeBase is the virtual address the code page
// is mapped at; RewriteBase is the virtual address of the rewriting page.
type Rewriter struct {
	CodeBase    uint64
	RewriteBase uint64
	// MaxFixes bounds the fix loop (safety net against pathological
	// inputs). Zero means the default of 1024.
	MaxFixes int
}

// New returns a Rewriter with the conventional rewriting page at 0x1000.
func New(codeBase uint64) *Rewriter {
	return &Rewriter{CodeBase: codeBase, RewriteBase: DefaultRewriteBase}
}

// scratchCandidates are registers usable as temporaries: callee-clobbered
// choices avoiding RSP/RBP (stack discipline), R12/R13 (ModRM special
// cases), and anything whose low 3 bits are 111 (would re-create the 0F
// ModRM/SIB byte: RDI, R15).
var scratchCandidates = []isa.Reg{
	isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI,
	isa.R8, isa.R9, isa.R10, isa.R11, isa.R14,
}

// deltaCandidates are the perturbations tried when splitting displacements
// and immediates; splits are verified by re-scanning, so the values only
// need to be diverse.
var deltaCandidates = []int64{
	0x101, 0x1111, 0x11111, 0x31313, 0x777, 0x123, 0x7f, 0x80,
	-0x101, -0x1111, -0x777, 0x2222, 0x4444, 0x12345, 0x54321, 0x6666,
}

// pickScratch returns the attempt-th scratch register not conflicting with
// the instruction's operands.
func pickScratch(in isa.Inst, attempt int) (isa.Reg, error) {
	used := map[isa.Reg]bool{in.Dst: true, in.Src: true}
	if in.HasMem {
		used[in.M.Base] = true
		used[in.M.Index] = true
	}
	var avail []isa.Reg
	for _, r := range scratchCandidates {
		if !used[r] {
			avail = append(avail, r)
		}
	}
	if len(avail) == 0 {
		return 0, fmt.Errorf("rewrite: no scratch register available for %v", in)
	}
	return avail[attempt%len(avail)], nil
}

// Rewrite scans code and fixes every occurrence of the pattern. The
// returned code has identical length to the input (displaced windows are
// replaced by a jump plus INT3 padding); replacement snippets live on the
// rewriting page.
func (rw *Rewriter) Rewrite(code []byte) (*Result, error) {
	out := append([]byte(nil), code...)
	res := &Result{}
	maxFixes := rw.MaxFixes
	if maxFixes == 0 {
		maxFixes = 1024
	}
	for iter := 0; ; iter++ {
		if iter > maxFixes {
			return nil, fmt.Errorf("rewrite: fix loop did not converge after %d fixes", iter)
		}
		occs, err := Scan(out)
		if err != nil {
			return nil, err
		}
		if len(occs) == 0 {
			break
		}
		o := occs[0]
		if err := rw.fix(out, &res.RewritePage, o); err != nil {
			return nil, err
		}
		res.Fixed = append(res.Fixed, o)
	}
	// Security invariant: no raw pattern anywhere executable.
	if offs := FindPattern(out); len(offs) > 0 {
		return nil, fmt.Errorf("rewrite: pattern survives in code at %v", offs)
	}
	if offs := FindPattern(res.RewritePage); len(offs) > 0 {
		return nil, fmt.Errorf("rewrite: pattern survives in rewriting page at %v", offs)
	}
	res.Code = out
	return res, nil
}

// fix neutralizes one occurrence in place or by displacement to the
// rewriting page.
func (rw *Rewriter) fix(out []byte, page *[]byte, o Occurrence) error {
	if o.Case == CaseOpcode {
		// Table 3 row 1: a literal VMFUNC is replaced by three NOPs.
		copy(out[o.InstOff:o.InstOff+3], []byte{0x90, 0x90, 0x90})
		return nil
	}

	// Determine the displacement window [ws, we).
	ws := o.InstOff
	we := o.InstOff + o.Inst.Len
	if o.Case == CaseSpanning {
		we = o.SpanEnd
	}
	// The window must hold a 5-byte JMP rel32.
	for we-ws < 5 {
		in, err := isa.Decode(out[we:])
		if err != nil {
			return fmt.Errorf("rewrite: cannot grow window past +%d: %w", we, err)
		}
		we += in.Len
	}
	// Branch-immediate and RIP-relative-displacement occurrences are fixed
	// by moving the instruction (its rel32/disp32 is recomputed at the new
	// address — Table 3's "modify immediate after moving this
	// instruction"); everything else gets an explicit replacement.
	selfMoved := o.Case == CaseSpanning ||
		(o.Case == CaseImm && (o.Inst.Op == isa.JMP || o.Inst.Op == isa.CALL || o.Inst.Op == isa.JCC)) ||
		(o.Case == CaseDisp && o.Inst.M.RIPRel)

	// Collect the instructions the window displaces. For self-moved cases
	// that includes the offending instruction(s) themselves.
	var moved []movedInst
	cursor := o.InstOff + o.Inst.Len
	if selfMoved {
		cursor = ws
	}
	for cursor < we {
		in, err := isa.Decode(out[cursor:])
		if err != nil {
			return err
		}
		moved = append(moved, movedInst{in: in, origOff: cursor})
		cursor += in.Len
	}

	for attempt := 0; attempt < 64; attempt++ {
		var a isa.Asm
		snipVA := rw.RewriteBase + uint64(len(*page)) + uint64(attempt%8) // pad varies snippet VA
		pad := attempt % 8

		emitErr := func() error {
			if !selfMoved {
				if err := rw.emitReplacement(&a, o, snipVA, attempt); err != nil {
					return err
				}
			}
			for _, mi := range moved {
				if err := rw.emitMoved(&a, mi, snipVA); err != nil {
					return err
				}
				a.Nop() // break any byte pattern spanning moved instructions
			}
			// Jump back to the first instruction after the window.
			backTarget := rw.CodeBase + uint64(we)
			a.JmpRel32(int32(int64(backTarget) - int64(snipVA+uint64(a.Len())+5)))
			return nil
		}()
		if emitErr != nil {
			if attempt < 63 {
				continue
			}
			return emitErr
		}

		// Build the in-code patch: JMP snippet + INT3 fill.
		var patch isa.Asm
		patch.JmpRel32(int32(int64(snipVA) - int64(rw.CodeBase+uint64(ws)+5)))
		for patch.Len() < we-ws {
			patch.Int3()
		}

		// Verify cleanliness of the new snippet (with page context) and of
		// the patched window (with 2-byte margins into neighbours).
		newPage := append(append(append([]byte(nil), *page...), nops(pad)...), a.Bytes()...)
		lo, hi := ws-2, we+2
		if lo < 0 {
			lo = 0
		}
		if hi > len(out) {
			hi = len(out)
		}
		region := append(append([]byte(nil), out[lo:ws]...), patch.Bytes()...)
		region = append(region, out[we:hi]...)
		if len(FindPattern(newPage)) == 0 && len(FindPattern(region)) == 0 {
			*page = newPage
			copy(out[ws:we], patch.Bytes())
			return nil
		}
	}
	return fmt.Errorf("rewrite: could not find a clean rewriting for %v at +%d (case %v)", o.Inst, o.Off, o.Case)
}

func nops(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = 0x90
	}
	return b
}

type movedInst struct {
	in      isa.Inst
	origOff int
}

// emitMoved re-emits an instruction at its new location on the rewriting
// page, preserving semantics: branch displacements and RIP-relative
// displacements are recomputed against the instruction's new address.
func (rw *Rewriter) emitMoved(a *isa.Asm, mi movedInst, snipVA uint64) error {
	in := mi.in
	origVA := rw.CodeBase + uint64(mi.origOff)
	curVA := snipVA + uint64(a.Len())

	switch {
	case in.Op == isa.JMP || in.Op == isa.CALL || in.Op == isa.JCC:
		target := int64(origVA) + int64(in.Len) + int64(in.Rel)
		newLen := 5 // E9/E8 + rel32
		if in.Op == isa.JCC {
			newLen = 6
		}
		in.Rel = int32(target - int64(curVA) - int64(newLen))
		return a.Encode(in)
	case in.HasMem && in.M.RIPRel:
		target := int64(origVA) + int64(in.Len) + int64(in.M.Disp)
		// Trial-encode to learn the new length (disp32 is fixed-width, so
		// length is stable across disp values).
		var trial isa.Asm
		t := in
		t.M.Disp = 0
		if err := trial.Encode(t); err != nil {
			return err
		}
		in.M.Disp = int32(target - int64(curVA) - int64(trial.Len()))
		return a.Encode(in)
	default:
		return a.Encode(in)
	}
}

// emitReplacement emits the functionally equivalent expansion of the
// offending instruction, per Table 3.
func (rw *Rewriter) emitReplacement(a *isa.Asm, o Occurrence, snipVA uint64, attempt int) error {
	in := o.Inst
	switch o.Case {
	case CaseModRM, CaseSIB:
		// Rows 2-3: "push/pop used register; use new register". The 0F
		// ModRM/SIB byte encodes a base register of rdi/r15; copying the
		// base into a scratch register changes the byte.
		scratch, err := pickScratch(in, attempt)
		if err != nil {
			return err
		}
		if !in.HasMem || in.M.Base == isa.NoReg {
			return fmt.Errorf("rewrite: %v classified %v but has no base register", in, o.Case)
		}
		a.PushReg(scratch)
		a.MovRR(scratch, in.M.Base)
		sub := in
		sub.M.Base = scratch
		adjustRSPBase(&sub) // base can't be RSP here, but keep uniform
		if err := a.Encode(sub); err != nil {
			return err
		}
		a.PopReg(scratch)
		return nil

	case CaseDisp:
		return rw.emitDispSplit(a, in, snipVA, attempt)

	case CaseImm:
		return rw.emitImmRewrite(a, in, snipVA, attempt)
	}
	return fmt.Errorf("rewrite: no replacement strategy for case %v", o.Case)
}

// adjustRSPBase compensates a memory operand based on RSP for the PUSH that
// precedes it inside a push/pop bracket (RSP is 8 lower there).
func adjustRSPBase(in *isa.Inst) {
	if in.HasMem && in.M.Base == isa.RSP {
		in.M.Disp += 8
	}
}

// emitDispSplit handles Table 3 row 4: "compute displacement value before
// the instruction". The displacement is split d = d1 + d2; a LEA computes
// base+index*scale+d1 into a scratch register and the instruction is
// re-issued as [scratch + d2].
func (rw *Rewriter) emitDispSplit(a *isa.Asm, in isa.Inst, snipVA uint64, attempt int) error {
	scratch, err := pickScratch(in, attempt)
	if err != nil {
		return err
	}
	delta := deltaCandidates[attempt%len(deltaCandidates)]
	d1 := int64(in.M.Disp) - delta
	if d1 < -1<<31 || d1 >= 1<<31 {
		d1 = int64(in.M.Disp) + delta
		delta = -delta
	}
	lea := isa.Mem{Base: in.M.Base, Index: in.M.Index, Scale: in.M.Scale, Disp: int32(d1)}
	a.PushReg(scratch)
	if lea.Base == isa.RSP {
		lea.Disp += 8
	}
	a.Lea(scratch, lea)
	sub := in
	sub.M = isa.Mem{Base: scratch, Index: isa.NoReg, Scale: 1, Disp: int32(delta)}
	if err := a.Encode(sub); err != nil {
		return err
	}
	a.PopReg(scratch)
	return nil
}

// emitImmRewrite handles Table 3 row 5: "apply instruction twice with
// different immediates", with op-specific split rules, falling back to a
// scratch register for non-splittable operations (CMP, IMUL3) and to a
// flag-preserving MOV+LEA pair for MOV-immediate.
func (rw *Rewriter) emitImmRewrite(a *isa.Asm, in isa.Inst, snipVA uint64, attempt int) error {
	delta := deltaCandidates[attempt%len(deltaCandidates)]

	switch in.Op {
	case isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR:
		imm := int64(int32(in.Imm))
		var i1, i2 int64
		switch in.Op {
		case isa.ADD, isa.SUB:
			i1, i2 = imm-delta, delta
			if i1 < -1<<31 || i1 >= 1<<31 {
				i1, i2 = imm+delta, -delta
			}
		case isa.XOR:
			i1, i2 = imm^delta, delta
		case isa.AND:
			// (imm|m1) & (imm|m2) == imm when m1 and m2 are disjoint
			// subsets of ^imm.
			free := ^imm
			m1 := free & 0x5555_5555 & rotMask(attempt)
			m2 := free & ^m1
			i1, i2 = int64(int32(imm|m1)), int64(int32(imm|m2))
		case isa.OR:
			// (imm&m) | (imm&^m) == imm.
			m := int64(0x5555_5555) ^ rotMask(attempt)
			i1, i2 = int64(int32(imm&m)), int64(int32(imm&^m))
		}
		first, second := in, in
		first.Imm, second.Imm = i1, i2
		if err := a.Encode(first); err != nil {
			return err
		}
		return a.Encode(second)

	case isa.CMP:
		scratch, err := pickScratch(in, attempt)
		if err != nil {
			return err
		}
		imm := int64(int32(in.Imm))
		a.PushReg(scratch)
		a.MovRI64(scratch, imm-delta)
		a.Lea(scratch, isa.Mem{Base: scratch, Index: isa.NoReg, Scale: 1, Disp: int32(delta)})
		cmp := in
		cmp.HasImm, cmp.Imm = false, 0
		cmp.Src = scratch
		adjustRSPBase(&cmp)
		if err := a.Encode(cmp); err != nil {
			return err
		}
		a.PopReg(scratch)
		return nil

	case isa.MOVI:
		imm := in.Imm
		if in.ImmLen == 4 {
			imm = int64(int32(imm))
		}
		if !in.HasMem {
			if in.ImmLen == 8 {
				// The pattern can hide anywhere in an imm64, including its
				// high bytes, which a small additive delta never perturbs.
				// Split with a full-width pseudo-random value instead, kept
				// flag-preserving via LEA's base+index form:
				//   push s; movabs s, d; movabs dst, imm-d;
				//   lea dst, [dst + s*1]; pop s
				scratch, err := pickScratch(in, attempt)
				if err != nil {
					return err
				}
				d := int64(uint64(0x9E3779B97F4A7C15) * uint64(attempt+1))
				a.PushReg(scratch)
				a.MovRI64(scratch, d)
				a.MovRI64(in.Dst, imm-d)
				a.Lea(in.Dst, isa.Mem{Base: in.Dst, Index: scratch, Scale: 1})
				a.PopReg(scratch)
				return nil
			}
			// Flag-preserving: MOV dst, imm-δ; LEA dst, [dst+δ].
			a.MovRI64(in.Dst, imm-delta)
			a.Lea(in.Dst, isa.Mem{Base: in.Dst, Index: isa.NoReg, Scale: 1, Disp: int32(delta)})
			return nil
		}
		scratch, err := pickScratch(in, attempt)
		if err != nil {
			return err
		}
		a.PushReg(scratch)
		a.MovRI64(scratch, imm-delta)
		a.Lea(scratch, isa.Mem{Base: scratch, Index: isa.NoReg, Scale: 1, Disp: int32(delta)})
		st := in
		st.Op = isa.MOV
		st.HasImm, st.Imm = false, 0
		st.Src = scratch
		st.MemIsDst = true
		adjustRSPBase(&st)
		if err := a.Encode(st); err != nil {
			return err
		}
		a.PopReg(scratch)
		return nil

	case isa.IMUL3:
		scratch, err := pickScratch(in, attempt)
		if err != nil {
			return err
		}
		imm := int64(int32(in.Imm))
		a.PushReg(scratch)
		a.MovRI64(scratch, imm-delta)
		a.Lea(scratch, isa.Mem{Base: scratch, Index: isa.NoReg, Scale: 1, Disp: int32(delta)})
		mul := isa.Inst{Op: isa.IMUL2, Dst: scratch, Src: in.Src}
		if in.HasMem {
			mul.HasMem, mul.M = true, in.M
			mul.Src = isa.NoReg
			adjustRSPBase(&mul)
		}
		if err := a.Encode(mul); err != nil {
			return err
		}
		a.MovRR(in.Dst, scratch)
		a.PopReg(scratch)
		return nil

	case isa.JMP, isa.CALL, isa.JCC:
		// "Jump-like instruction: modify immediate after moving this
		// instruction" — the caller's window machinery moves it; emitting
		// at the snippet position recomputes the relative displacement.
		// o.InstOff is supplied by the caller through the moved path, so
		// this branch is handled in fix(); reaching here means a direct
		// call with the instruction's original offset unknown.
		return fmt.Errorf("rewrite: branch immediate must be handled by the move path")
	}
	return fmt.Errorf("rewrite: no immediate strategy for %v", in.Op)
}

// rotMask varies the AND/OR split masks across attempts.
func rotMask(attempt int) int64 {
	shift := uint(attempt % 16)
	v := (uint32(0xF0F0_F0F0) >> shift) | (uint32(0xF0F0_F0F0) << (32 - shift))
	return int64(int32(v))
}
