package rewrite

import (
	"testing"

	"skybridge/internal/isa"
)

// TestRewritePassOverExecutedCode models the deployment sequence the
// host-side code caches must survive: a process executes its code
// (populating the interpreter's decode cache and, in superblock mode, its
// fused-block cache), then the Rootkernel's rewrite pass patches the
// mapped code page in place. Re-execution must follow the rewritten
// bytes — zero VMFUNCs and equivalent architectural results — not stale
// cached decodes or fused blocks of the original.
func TestRewritePassOverExecutedCode(t *testing.T) {
	for _, superblock := range []bool{false, true} {
		name := "step"
		if superblock {
			name = "superblock"
		}
		t.Run(name, func(t *testing.T) {
			prevCache := isa.SetDecodeCache(true)
			prevSB := isa.SetSuperblock(superblock)
			defer func() { isa.SetDecodeCache(prevCache); isa.SetSuperblock(prevSB) }()

			code := buildProgram(func(a *isa.Asm) {
				a.MovRI32(isa.RAX, 1)
				a.Vmfunc()
				a.MovRI32(isa.RBX, 2)
				a.AluRI(isa.ADD, isa.RAX, 0xD4010F)
			})
			res, err := New(testCodeBase).Rewrite(code)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Code) != len(code) {
				t.Fatalf("rewrite changed code length: %d -> %d", len(code), len(res.Code))
			}

			// The interpreter shares the region's backing slice, so copying the
			// rewritten bytes over it is an in-place patch of already-executed,
			// already-cached code.
			region := append([]byte(nil), code...)
			ip := isa.NewInterp()
			ip.AddRegion(testCodeBase, region)
			ip.AddRegion(testDataBase, make([]byte, testDataLen))
			if len(res.RewritePage) > 0 {
				ip.AddRegion(DefaultRewriteBase, res.RewritePage)
			}
			ip.RIP = testCodeBase
			ip.Regs[isa.RSP] = testDataBase + testDataLen - 256
			if err := ip.Run(100000); err != nil {
				t.Fatal(err)
			}
			if ip.VMFuncCount != 1 {
				t.Fatalf("original code executed %d VMFUNCs, want 1", ip.VMFuncCount)
			}
			wantRAX, wantRBX := ip.Regs[isa.RAX], ip.Regs[isa.RBX]
			if superblock {
				if ip.SBStats.Formed == 0 {
					t.Fatal("first run fused nothing")
				}
			} else if ip.DecodeMisses == 0 {
				t.Fatal("first run cached nothing")
			}

			copy(region, res.Code) // the rewrite pass lands
			ip.RIP = testCodeBase
			ip.Halted = false
			ip.VMFuncCount = 0
			ip.Regs = [16]uint64{}
			ip.Regs[isa.RSP] = testDataBase + testDataLen - 256
			if err := ip.Run(100000); err != nil {
				t.Fatal(err)
			}
			if ip.VMFuncCount != 0 {
				t.Fatalf("rewritten code executed %d VMFUNCs (stale cached code)", ip.VMFuncCount)
			}
			if ip.Regs[isa.RAX] != wantRAX || ip.Regs[isa.RBX] != wantRBX {
				t.Fatalf("rewritten run diverged: rax=%#x rbx=%#x, want rax=%#x rbx=%#x",
					ip.Regs[isa.RAX], ip.Regs[isa.RBX], wantRAX, wantRBX)
			}
		})
	}
}
