package rewrite

import (
	"math/rand"

	"skybridge/internal/isa"
)

// RandomProgram generates a straight-line program of at least size bytes of
// valid instructions, terminated by HLT. Programs are register-and-memory
// workloads confined to the data region [dataBase, dataBase+dataLen), so
// they can be executed by the interpreter before and after rewriting. The
// generator is used to build the Table 6 scanning corpus (the stand-in for
// SPEC/PARSEC/nginx/... binaries, which we cannot ship).
func RandomProgram(rng *rand.Rand, size int, dataBase uint64, dataLen int) []byte {
	var a isa.Asm
	aluOps := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.CMP}

	// Immediates follow a real-code-like distribution: overwhelmingly
	// small constants, occasionally medium, rarely arbitrary. (Uniform
	// random immediates would contain the 3-byte VMFUNC pattern orders of
	// magnitude more often than compiled binaries do, distorting the
	// Table 6 occurrence rate.)
	imm32 := func() int32 {
		switch rng.Intn(10) {
		case 0:
			return int32(rng.Uint32()) // arbitrary
		case 1, 2:
			return int32(rng.Intn(1 << 16))
		default:
			return int32(rng.Intn(4096))
		}
	}
	imm64 := func() int64 {
		if rng.Intn(10) == 0 {
			return int64(rng.Uint64())
		}
		return int64(imm32())
	}
	// Registers used freely (avoiding RSP/RBP so the stack stays intact).
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI,
		isa.R8, isa.R9, isa.R10, isa.R11, isa.R12, isa.R13, isa.R14, isa.R15}
	reg := func() isa.Reg { return regs[rng.Intn(len(regs))] }

	// dataPtr returns a memory operand guaranteed to land inside the data
	// region: an absolute-base operand with a bounded displacement.
	dataPtr := func() isa.Mem {
		off := int32(rng.Intn(dataLen-8) &^ 7)
		return isa.Mem{Base: isa.NoReg, Index: isa.NoReg, Scale: 1, Disp: int32(dataBase) + off}
	}

	for a.Len() < size {
		switch rng.Intn(12) {
		case 0:
			a.MovRR(reg(), reg())
		case 1:
			a.MovRI32(reg(), imm32())
		case 2:
			a.MovRI64(reg(), imm64())
		case 3:
			a.AluRR(aluOps[rng.Intn(len(aluOps))], reg(), reg())
		case 4:
			a.AluRI(aluOps[rng.Intn(len(aluOps))], reg(), imm32())
		case 5:
			a.Lea(reg(), isa.Mem{Base: reg(), Index: isa.NoReg, Scale: 1, Disp: imm32()})
		case 6:
			a.Imul3(reg(), reg(), imm32())
		case 7:
			a.MovRM(reg(), dataPtr())
		case 8:
			a.MovMR(dataPtr(), reg())
		case 9:
			a.Nop()
		case 10:
			a.AluRM(aluOps[rng.Intn(len(aluOps))], reg(), dataPtr())
		case 11:
			a.Imul2(reg(), reg())
		}
	}
	a.Hlt()
	return a.Bytes()
}
