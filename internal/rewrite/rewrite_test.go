package rewrite

import (
	"math/rand"
	"testing"

	"skybridge/internal/isa"
)

const (
	testCodeBase = uint64(0x400000)
	testDataBase = uint64(0x100000)
	testDataLen  = 1 << 16
)

// buildProgram assembles instructions and appends trailing NOP padding plus
// HLT so rewrite windows always have room to grow.
func buildProgram(build func(a *isa.Asm)) []byte {
	var a isa.Asm
	build(&a)
	for i := 0; i < 8; i++ {
		a.Nop()
	}
	a.Hlt()
	return a.Bytes()
}

// runBoth executes the original program and its rewritten form from
// identical initial states and compares final registers (except RSP is
// compared too — push/pop brackets must balance), data memory, and ZF/SF.
func runBoth(t *testing.T, code []byte, res *Result, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var initRegs [16]uint64
	for i := range initRegs {
		initRegs[i] = rng.Uint64()
	}
	// Keep pointers inside the data region for memory-operand programs.
	initRegs[isa.RSP] = testDataBase + testDataLen - 256

	initData := make([]byte, testDataLen)
	rng.Read(initData)

	run := func(code, page []byte) (*isa.Interp, []byte) {
		ip := isa.NewInterp()
		data := append([]byte(nil), initData...)
		ip.AddRegion(testCodeBase, append([]byte(nil), code...))
		if len(page) > 0 {
			ip.AddRegion(DefaultRewriteBase, append([]byte(nil), page...))
		}
		ip.AddRegion(testDataBase, data)
		ip.RIP = testCodeBase
		ip.Regs = initRegs
		if err := ip.Run(100000); err != nil {
			t.Fatalf("execution failed: %v", err)
		}
		return ip, data
	}

	orig, origData := run(code, nil)
	got, gotData := run(res.Code, res.RewritePage)

	for r := 0; r < 16; r++ {
		if orig.Regs[r] != got.Regs[r] {
			t.Errorf("register %v: original %#x, rewritten %#x", isa.Reg(r), orig.Regs[r], got.Regs[r])
		}
	}
	if orig.ZF != got.ZF || orig.SF != got.SF {
		t.Errorf("flags: original ZF=%v SF=%v, rewritten ZF=%v SF=%v", orig.ZF, orig.SF, got.ZF, got.SF)
	}
	// Bytes below the stack pointer are architecturally undefined (push/pop
	// brackets in rewritten code legitimately scribble there), so exclude a
	// small window below the initial RSP from the comparison.
	rspOff := int(initRegs[isa.RSP] - testDataBase)
	for i := range origData {
		if i >= rspOff-64 && i < rspOff {
			continue
		}
		if origData[i] != gotData[i] {
			t.Fatalf("data byte %#x differs: %#x vs %#x", i, origData[i], gotData[i])
		}
	}
	if got.VMFuncCount != 0 {
		t.Errorf("rewritten code executed %d VMFUNCs", got.VMFuncCount)
	}
}

// rewriteAndVerify rewrites, asserts the pattern is gone, and checks
// execution equivalence across several random initial states.
func rewriteAndVerify(t *testing.T, code []byte, wantCase Case) *Result {
	t.Helper()
	if len(FindPattern(code)) == 0 {
		t.Fatal("test program does not contain the pattern")
	}
	occs, err := Scan(code)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range occs {
		if o.Case == wantCase {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an occurrence of case %v, got %+v", wantCase, occs)
	}
	rw := New(testCodeBase)
	res, err := rw.Rewrite(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(FindPattern(res.Code)) != 0 {
		t.Fatal("pattern survives in code")
	}
	if len(FindPattern(res.RewritePage)) != 0 {
		t.Fatal("pattern survives in rewriting page")
	}
	if len(res.Code) != len(code) {
		t.Fatalf("code length changed: %d -> %d", len(code), len(res.Code))
	}
	for seed := int64(1); seed <= 5; seed++ {
		runBoth(t, code, res, seed)
	}
	return res
}

func TestRewriteLiteralVMFunc(t *testing.T) {
	code := buildProgram(func(a *isa.Asm) {
		a.MovRI32(isa.RAX, 1)
		a.Vmfunc()
		a.MovRI32(isa.RBX, 2)
	})
	res := rewriteAndVerify(t, code, CaseOpcode)
	if len(res.RewritePage) != 0 {
		t.Error("literal VMFUNC should be fixed in place with NOPs")
	}
	if res.CaseCounts()[CaseOpcode] != 1 {
		t.Errorf("case counts: %v", res.CaseCounts())
	}
}

func TestRewriteModRMCase(t *testing.T) {
	// imul rcx, [rdi], 0x2222D401 encodes ModRM=0F followed by imm 01 D4 22 22.
	code := buildProgram(func(a *isa.Asm) {
		a.MovRI32(isa.RDI, int32(testDataBase+0x100))
		a.Imul3M(isa.RCX, isa.Mem{Base: isa.RDI, Index: isa.NoReg, Scale: 1}, 0x2222D401)
	})
	rewriteAndVerify(t, code, CaseModRM)
}

func TestRewriteSIBCase(t *testing.T) {
	// lea rbx, [rdi + rcx + 0xD401]: SIB=0F, disp starts 01 D4.
	code := buildProgram(func(a *isa.Asm) {
		a.MovRI32(isa.RDI, 0x1000)
		a.MovRI32(isa.RCX, 0x20)
		a.Lea(isa.RBX, isa.Mem{Base: isa.RDI, Index: isa.RCX, Scale: 1, Disp: 0xD401})
	})
	rewriteAndVerify(t, code, CaseSIB)
}

func TestRewriteDispCase(t *testing.T) {
	// add rbx, [rax + disp] where disp's little-endian bytes contain
	// 0F 01 D4. The base register is chosen so base+disp wraps back into
	// the data region.
	code := buildProgram(func(a *isa.Asm) {
		a.MovRI32(isa.RAX, int32(int64(testDataBase)+0x100-0xD4010F))
		a.MovRI32(isa.RBX, 5)
		a.AluRM(isa.ADD, isa.RBX, isa.Mem{Base: isa.RAX, Index: isa.NoReg, Scale: 1, Disp: 0xD4010F})
	})
	rewriteAndVerify(t, code, CaseDisp)
}

func TestRewriteDispCaseStore(t *testing.T) {
	// Store form: the displaced memory operand is the destination.
	code := buildProgram(func(a *isa.Asm) {
		a.MovRI32(isa.RAX, int32(int64(testDataBase)+0x200-0xD4010F))
		a.MovRI32(isa.RBX, 0x1234)
		a.MovMR(isa.Mem{Base: isa.RAX, Index: isa.NoReg, Scale: 1, Disp: 0xD4010F}, isa.RBX)
		a.MovRM(isa.RCX, isa.Mem{Base: isa.RAX, Index: isa.NoReg, Scale: 1, Disp: 0xD4010F})
	})
	rewriteAndVerify(t, code, CaseDisp)
}

func TestRewriteImmCaseALU(t *testing.T) {
	for _, op := range []isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR} {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			code := buildProgram(func(a *isa.Asm) {
				a.MovRI32(isa.RAX, 0x1234)
				a.AluRI(op, isa.RAX, 0xD4010F)
			})
			rewriteAndVerify(t, code, CaseImm)
		})
	}
}

func TestRewriteImmCaseCMP(t *testing.T) {
	code := buildProgram(func(a *isa.Asm) {
		a.MovRI32(isa.RAX, 0xD4010F)
		a.AluRI(isa.CMP, isa.RAX, 0xD4010F)
		a.Jcc(isa.CondNE, 7)
		a.MovRI32(isa.RBX, 1) // taken only if equal
	})
	rewriteAndVerify(t, code, CaseImm)
}

func TestRewriteImmCaseMovImm32(t *testing.T) {
	code := buildProgram(func(a *isa.Asm) {
		a.MovRI32(isa.RBX, 0xD4010F)
	})
	rewriteAndVerify(t, code, CaseImm)
}

func TestRewriteImmCaseMovImm64(t *testing.T) {
	code := buildProgram(func(a *isa.Asm) {
		a.MovRI64(isa.RBX, 0x11_0FD4010F_22) // pattern inside imm64 bytes: 22 0F 01 D4 0F 11
	})
	// Verify the pattern really is in there.
	if len(FindPattern(code)) == 0 {
		t.Skip("constructed imm64 does not contain pattern")
	}
	rewriteAndVerify(t, code, CaseImm)
}

func TestRewriteImmCaseImul3(t *testing.T) {
	code := buildProgram(func(a *isa.Asm) {
		a.MovRI32(isa.RSI, 3)
		a.Imul3(isa.RBX, isa.RSI, 0xD4010F)
	})
	rewriteAndVerify(t, code, CaseImm)
}

func TestRewriteImmCaseImul3SameDstSrc(t *testing.T) {
	code := buildProgram(func(a *isa.Asm) {
		a.MovRI32(isa.RBX, 3)
		a.Imul3(isa.RBX, isa.RBX, 0xD4010F)
	})
	rewriteAndVerify(t, code, CaseImm)
}

func TestRewriteImmCaseMemALU(t *testing.T) {
	code := buildProgram(func(a *isa.Asm) {
		a.MovRI32(isa.RAX, int32(testDataBase+0x40))
		a.AluMI(isa.ADD, isa.Mem{Base: isa.RAX, Index: isa.NoReg, Scale: 1}, 0xD4010F)
		a.MovRM(isa.RBX, isa.Mem{Base: isa.RAX, Index: isa.NoReg, Scale: 1})
	})
	rewriteAndVerify(t, code, CaseImm)
}

func TestRewriteJumpImmediate(t *testing.T) {
	// A forward jump whose rel32 equals 0x0FD4010F would land far outside
	// the program; instead craft a CALL whose rel32 bytes contain the
	// pattern by placing the callee at exactly the right offset. Simpler:
	// use a JMP over a large NOP sled of exactly 0xD4010F... that is too
	// big to execute. Instead verify the scan classification and that
	// rewriting produces clean output (without executing).
	var a isa.Asm
	a.JmpRel32(0x0FD4010F &^ 0xFF) // rel bytes: 00 01 D4 0F -> contains 01 D4 0F? build explicitly below
	code := a.Bytes()
	// Overwrite the rel bytes so that they contain exactly 0F 01 D4.
	code[1], code[2], code[3], code[4] = 0x0f, 0x01, 0xd4, 0x00
	occs, err := Scan(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(occs) != 1 || occs[0].Case != CaseImm || occs[0].Inst.Op != isa.JMP {
		t.Fatalf("occurrences: %+v", occs)
	}
	rw := New(testCodeBase)
	res, err := rw.Rewrite(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(FindPattern(res.Code))+len(FindPattern(res.RewritePage)) != 0 {
		t.Fatal("pattern survives")
	}
	// The moved JMP must preserve its absolute target.
	insts, err := isa.DecodeAll(res.RewritePage)
	if err != nil {
		t.Fatal(err)
	}
	origTarget := int64(testCodeBase) + 5 + int64(int32(0x00d4010f))
	found := false
	off := 0
	for _, in := range insts {
		if in.Op == isa.JMP {
			target := int64(DefaultRewriteBase) + int64(off) + int64(in.Len) + int64(in.Rel)
			if target == origTarget {
				found = true
			}
		}
		off += in.Len
	}
	if !found {
		t.Fatal("moved jump does not retarget the original destination")
	}
}

func TestRewriteSpanningCase(t *testing.T) {
	// Instruction 1 ends with 0F (imm32 = 0x0F??????), instruction 2 is
	// the 32-bit `add esp, edx` (01 D4): the pattern spans the boundary.
	var a isa.Asm
	a.AluRI(isa.ADD, isa.RAX, 0x0F000000)
	a.Alu32RR(isa.ADD, isa.RSP, isa.RDX)
	a.Alu32RR(isa.XOR, isa.RDX, isa.RDX) // rsp damage is undone below
	for i := 0; i < 8; i++ {
		a.Nop()
	}
	a.Hlt()
	code := a.Bytes()

	occs, err := Scan(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(occs) != 1 || occs[0].Case != CaseSpanning {
		t.Fatalf("occurrences: %+v", occs)
	}
	rw := New(testCodeBase)
	res, err := rw.Rewrite(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(FindPattern(res.Code))+len(FindPattern(res.RewritePage)) != 0 {
		t.Fatal("pattern survives")
	}

	// Execute both with rdx chosen so rsp stays valid (rdx=0).
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var regs [16]uint64
		for i := range regs {
			regs[i] = rng.Uint64()
		}
		regs[isa.RDX] = 0
		regs[isa.RSP] = testDataBase + 1024

		run := func(c, page []byte) *isa.Interp {
			ip := isa.NewInterp()
			ip.AddRegion(testCodeBase, append([]byte(nil), c...))
			if len(page) > 0 {
				ip.AddRegion(DefaultRewriteBase, append([]byte(nil), page...))
			}
			ip.AddRegion(testDataBase, make([]byte, 4096))
			ip.RIP = testCodeBase
			ip.Regs = regs
			if err := ip.Run(1000); err != nil {
				t.Fatal(err)
			}
			return ip
		}
		o, g := run(code, nil), run(res.Code, res.RewritePage)
		for r := 0; r < 16; r++ {
			if o.Regs[r] != g.Regs[r] {
				t.Fatalf("seed %d reg %v: %#x vs %#x", seed, isa.Reg(r), o.Regs[r], g.Regs[r])
			}
		}
	}
}

func TestRewriteMultipleOccurrences(t *testing.T) {
	code := buildProgram(func(a *isa.Asm) {
		a.MovRI32(isa.RAX, 1)
		a.Vmfunc()
		a.AluRI(isa.ADD, isa.RAX, 0xD4010F)
		a.Vmfunc()
		a.MovRI32(isa.RBX, 0xD4010F)
	})
	rw := New(testCodeBase)
	res, err := rw.Rewrite(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fixed) != 4 {
		t.Fatalf("fixed %d occurrences, want 4", len(res.Fixed))
	}
	if len(FindPattern(res.Code))+len(FindPattern(res.RewritePage)) != 0 {
		t.Fatal("pattern survives")
	}
	runBoth(t, code, res, 99)
}

func TestRewriteCleanCodeUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	code := RandomProgram(rng, 2048, testDataBase, testDataLen)
	if len(FindPattern(code)) != 0 {
		t.Skip("random program accidentally contains pattern")
	}
	rw := New(testCodeBase)
	res, err := rw.Rewrite(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fixed) != 0 || len(res.RewritePage) != 0 {
		t.Fatal("clean code was modified")
	}
}

// TestRewriteRandomProgramsProperty plants pattern-bearing instructions
// into random programs and verifies rewrite + execution equivalence.
func TestRewriteRandomProgramsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 25; trial++ {
		var a isa.Asm
		pre := RandomProgram(rng, 128+rng.Intn(256), testDataBase, testDataLen)
		pre = pre[:len(pre)-1] // strip HLT
		a = isa.Asm{}
		appendBytes(&a, pre)
		// Plant one of the rewritable forms.
		switch rng.Intn(5) {
		case 0:
			a.Vmfunc()
		case 1:
			a.AluRI(isa.ADD, isa.RBX, 0xD4010F)
		case 2:
			a.MovRI32(isa.RCX, 0xD4010F)
		case 3:
			// Point rax so base+disp wraps into the data region, placed
			// immediately before the planted instruction so the random
			// prefix cannot clobber it.
			a.MovRI32(isa.RAX, int32(int64(testDataBase)+0x300-0xD4010F))
			a.AluRM(isa.XOR, isa.RDX, isa.Mem{Base: isa.RAX, Index: isa.NoReg, Scale: 1, Disp: 0xD4010F})
		case 4:
			a.Imul3(isa.RSI, isa.RBX, 0xD4010F)
		}
		post := RandomProgram(rng, 64, testDataBase, testDataLen)
		appendBytes(&a, post) // includes HLT
		code := a.Bytes()

		if len(FindPattern(code)) == 0 {
			t.Fatalf("trial %d: plant failed", trial)
		}
		rw := New(testCodeBase)
		res, err := rw.Rewrite(code)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(FindPattern(res.Code))+len(FindPattern(res.RewritePage)) != 0 {
			t.Fatalf("trial %d: pattern survives", trial)
		}
		runBoth(t, code, res, int64(trial))
	}
}

func appendBytes(a *isa.Asm, b []byte) {
	insts, err := isa.DecodeAll(b)
	if err != nil {
		panic(err)
	}
	for _, in := range insts {
		if err := a.Encode(in); err != nil {
			panic(err)
		}
	}
}

func TestScanClassification(t *testing.T) {
	var a isa.Asm
	a.Vmfunc()
	occs, err := Scan(a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(occs) != 1 || occs[0].Case != CaseOpcode {
		t.Fatalf("%+v", occs)
	}
}

func TestCountInadvertent(t *testing.T) {
	code := buildProgram(func(a *isa.Asm) {
		a.Vmfunc()                          // deliberate: not counted
		a.AluRI(isa.ADD, isa.RAX, 0xD4010F) // inadvertent
	})
	n, err := CountInadvertent(code)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("inadvertent count = %d, want 1", n)
	}
}

func TestRewritePatternAtCodeStart(t *testing.T) {
	// The very first instruction is VMFUNC: in-place NOP fix at offset 0.
	var a isa.Asm
	a.Vmfunc()
	a.MovRI32(isa.RAX, 1)
	a.Hlt()
	code := a.Bytes()
	rw := New(testCodeBase)
	res, err := rw.Rewrite(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(FindPattern(res.Code)) != 0 {
		t.Fatal("pattern survives")
	}
	if res.Code[0] != 0x90 || res.Code[1] != 0x90 || res.Code[2] != 0x90 {
		t.Fatalf("expected leading NOPs, got %x", res.Code[:3])
	}
}

func TestRewriteAdjacentPatterns(t *testing.T) {
	// Two back-to-back VMFUNCs plus an immediate-case in between.
	code := buildProgram(func(a *isa.Asm) {
		a.Vmfunc()
		a.Vmfunc()
		a.AluRI(isa.ADD, isa.RAX, 0xD4010F)
		a.Vmfunc()
	})
	rw := New(testCodeBase)
	res, err := rw.Rewrite(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fixed) != 4 {
		t.Fatalf("fixed %d, want 4", len(res.Fixed))
	}
	if len(FindPattern(res.Code))+len(FindPattern(res.RewritePage)) != 0 {
		t.Fatal("pattern survives")
	}
	runBoth(t, code, res, 5)
}

func TestRewriteSpanningViaImm8(t *testing.T) {
	// imm8 = 0x0F at the end of one instruction, followed by the 32-bit
	// `add esp, edx` (bytes 01 D4): a genuine C2 spanning case distinct
	// from the imm32 variant.
	var a isa.Asm
	a.AluRI8(isa.AND, isa.RDX, 0x0F)
	a.Alu32RR(isa.ADD, isa.RSP, isa.RDX)
	for i := 0; i < 8; i++ {
		a.Nop()
	}
	a.Hlt()
	code := a.Bytes()
	occs, err := Scan(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(occs) != 1 || occs[0].Case != CaseSpanning {
		t.Fatalf("occurrences: %+v", occs)
	}
	rw := New(testCodeBase)
	res, err := rw.Rewrite(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(FindPattern(res.Code))+len(FindPattern(res.RewritePage)) != 0 {
		t.Fatal("pattern survives")
	}
}

func TestRewriteImm64PatternInHighBytes(t *testing.T) {
	// The regression found by the Table 6 corpus scan: a movabs whose
	// VMFUNC pattern sits in the HIGH bytes of the imm64, where additive
	// low-byte deltas cannot disturb it.
	for _, imm := range []int64{
		-0x2bfef0aeebdcbb42,       // the corpus value (pattern in bytes 4-6)
		int64(0x0FD4010F00000000), // pattern at bytes 4-6 exactly
		int64(0x000F01D400000000), // pattern at bytes 3-5
		0x11223344_55667788 ^ 0x0000_0F01_D400_0000,
	} {
		code := buildProgram(func(a *isa.Asm) {
			a.MovRI64(isa.R9, imm)
		})
		if len(FindPattern(code)) == 0 {
			continue // this particular value happens not to contain it
		}
		res := rewriteAndVerify(t, code, CaseImm)
		_ = res
	}
}
