// Package rewrite implements SkyBridge's defense against the VMFUNC-faking
// attack (paper §5): scanning a process's code pages for any occurrence of
// the VMFUNC byte pattern — intended or inadvertent — and rewriting it into
// functionally equivalent instructions that do not contain the pattern.
//
// Because the CR3-remapping design makes *any* VMFUNC usable from *any*
// virtual address (unlike SeCage, where the trampoline is the only mapped
// entry), the kernel must guarantee that no executable byte sequence
// 0F 01 D4 exists outside the trampoline page. The rewriter implements the
// five overlap cases of Table 3 plus the instruction-spanning case, placing
// oversized replacements on a rewriting page mapped at 0x1000 ("the second
// page in the virtual address space", §5.1) and linking them with jumps.
package rewrite

import (
	"bytes"
	"fmt"

	"skybridge/internal/isa"
)

// Pattern is the VMFUNC instruction encoding.
var Pattern = []byte{0x0f, 0x01, 0xd4}

// DefaultRewriteBase is the virtual address of the rewriting page: the
// second page of the address space, deliberately left unmapped by most
// operating systems (§5.1).
const DefaultRewriteBase uint64 = 0x1000

// Case classifies where an occurrence of the pattern falls, following
// Table 3 plus the spanning condition C2.
type Case int

// Overlap cases.
const (
	// CaseOpcode: the instruction is literally VMFUNC (Table 3 row 1).
	CaseOpcode Case = iota
	// CaseModRM: the 0F byte is the ModRM field (row 2).
	CaseModRM
	// CaseSIB: the 0F byte is the SIB field (row 3).
	CaseSIB
	// CaseDisp: the 0F byte falls in the displacement (row 4).
	CaseDisp
	// CaseImm: the 0F byte falls in the immediate (row 5).
	CaseImm
	// CaseSpanning: the pattern spans two or more instructions (C2).
	CaseSpanning
)

// String implements fmt.Stringer.
func (c Case) String() string {
	switch c {
	case CaseOpcode:
		return "opcode"
	case CaseModRM:
		return "modrm"
	case CaseSIB:
		return "sib"
	case CaseDisp:
		return "disp"
	case CaseImm:
		return "imm"
	case CaseSpanning:
		return "spanning"
	default:
		return fmt.Sprintf("Case(%d)", int(c))
	}
}

// Occurrence is one place the pattern appears in a code stream.
type Occurrence struct {
	// Off is the byte offset of the pattern's 0F byte.
	Off int
	// Case classifies the overlap.
	Case Case
	// InstOff is the offset of the instruction containing Off.
	InstOff int
	// Inst is that instruction.
	Inst isa.Inst
	// SpanEnd, for CaseSpanning, is the end offset of the last spanned
	// instruction.
	SpanEnd int
}

// FindPattern returns the offsets of every (possibly overlapping)
// occurrence of the VMFUNC byte pattern in b.
func FindPattern(b []byte) []int {
	var offs []int
	for i := 0; i+len(Pattern) <= len(b); i++ {
		if bytes.Equal(b[i:i+len(Pattern)], Pattern) {
			offs = append(offs, i)
		}
	}
	return offs
}

// Scan decodes code linearly ("the Subkernel will bookkeep the current
// instruction during scanning, which helps to determine instruction
// boundaries", §5.2) and classifies every occurrence of the pattern.
func Scan(code []byte) ([]Occurrence, error) {
	offs := FindPattern(code)
	if len(offs) == 0 {
		return nil, nil
	}
	insts, err := isa.DecodeAll(code)
	if err != nil {
		return nil, fmt.Errorf("rewrite: scan: %w", err)
	}
	starts := make([]int, len(insts))
	off := 0
	for i, in := range insts {
		starts[i] = off
		off += in.Len
	}

	var occs []Occurrence
	for _, p := range offs {
		// Find the instruction containing p.
		idx := -1
		for i := range insts {
			if p >= starts[i] && p < starts[i]+insts[i].Len {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("rewrite: pattern at +%d outside decoded instructions", p)
		}
		in, instOff := insts[idx], starts[idx]
		end := instOff + in.Len
		occ := Occurrence{Off: p, InstOff: instOff, Inst: in}
		if p+len(Pattern) > end {
			occ.Case = CaseSpanning
			// Find the last instruction the pattern reaches into.
			last := idx
			for starts[last]+insts[last].Len < p+len(Pattern) {
				last++
				if last >= len(insts) {
					return nil, fmt.Errorf("rewrite: pattern at +%d runs past code end", p)
				}
			}
			occ.SpanEnd = starts[last] + insts[last].Len
			occs = append(occs, occ)
			continue
		}
		rel := p - instOff
		switch {
		case rel >= in.OpcodeOff && rel < in.OpcodeOff+in.OpcodeLen:
			occ.Case = CaseOpcode
		case rel == in.ModRMOff:
			occ.Case = CaseModRM
		case rel == in.SIBOff:
			occ.Case = CaseSIB
		case in.DispOff >= 0 && rel >= in.DispOff && rel < in.DispOff+in.DispLen:
			occ.Case = CaseDisp
		case in.ImmOff >= 0 && rel >= in.ImmOff && rel < in.ImmOff+in.ImmLen:
			occ.Case = CaseImm
		default:
			return nil, fmt.Errorf("rewrite: pattern at +%d in unclassifiable field of %v", p, in)
		}
		occs = append(occs, occ)
	}
	return occs, nil
}

// CountInadvertent returns the number of pattern occurrences that are NOT
// literal VMFUNC instructions — the quantity Table 6 reports per program.
func CountInadvertent(code []byte) (int, error) {
	occs, err := Scan(code)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, o := range occs {
		if o.Case != CaseOpcode {
			n++
		}
	}
	return n, nil
}
