package hw

import (
	"fmt"

	"skybridge/internal/obs"
)

// MachineConfig sizes a simulated machine. Zero fields take Skylake-like
// defaults matching the paper's i7-6700K testbed.
type MachineConfig struct {
	Cores    int
	MemBytes uint64

	L1ISize, L1DSize, L2Size, L3Size int
	L1Latency, L2Latency, L3Latency  uint64
	MemLatency                       uint64

	ITLBEntries, DTLBEntries int
}

func (c *MachineConfig) applyDefaults() {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.MemBytes == 0 {
		c.MemBytes = 16 << 30
	}
	if c.L1ISize == 0 {
		c.L1ISize = DefaultL1ISize
	}
	if c.L1DSize == 0 {
		c.L1DSize = DefaultL1DSize
	}
	if c.L2Size == 0 {
		c.L2Size = DefaultL2Size
	}
	if c.L3Size == 0 {
		c.L3Size = DefaultL3Size
	}
	if c.L1Latency == 0 {
		c.L1Latency = DefaultL1Latency
	}
	if c.L2Latency == 0 {
		c.L2Latency = DefaultL2Latency
	}
	if c.L3Latency == 0 {
		c.L3Latency = DefaultL3Latency
	}
	if c.MemLatency == 0 {
		c.MemLatency = DefaultMemLatency
	}
	if c.ITLBEntries == 0 {
		c.ITLBEntries = DefaultITLBEntries
	}
	if c.DTLBEntries == 0 {
		c.DTLBEntries = DefaultDTLBEntries
	}
}

// ExitHandler is the Rootkernel's entry point for VM exits. It runs in root
// mode on the exiting core. Returning a non-nil error aborts the faulting
// operation (the simulator's analogue of killing the guest).
type ExitHandler func(c *CPU, exit *VMExit) error

// Machine is a multicore simulated machine: shared physical memory, a
// shared L3, per-core private L1/L2 caches and TLBs.
type Machine struct {
	Config MachineConfig
	Mem    *PhysMem
	Cores  []*CPU
	L3     *Cache

	exitHandler ExitHandler

	// Obs is the machine's metric registry. Every cache, TLB, and CPU
	// counter is bound into it at construction; kernels and the hypervisor
	// bind their own counters into the same registry at boot.
	Obs *obs.Registry

	// Counters.
	VMExits  map[ExitReason]uint64
	IPICount uint64

	// memo is the host-side walk memo (nil when host fast paths are
	// disabled). Purely host-side: see hostmemo.go.
	memo *hostMemo
}

// NewMachine builds a machine from cfg (zero-value fields defaulted).
func NewMachine(cfg MachineConfig) *Machine {
	cfg.applyDefaults()
	m := &Machine{
		Config:  cfg,
		Mem:     NewPhysMem(cfg.MemBytes),
		Obs:     obs.NewRegistry(),
		VMExits: make(map[ExitReason]uint64),
	}
	m.L3 = NewCache(CacheConfig{Name: "L3", Size: cfg.L3Size, Ways: 16, Latency: cfg.L3Latency}, nil, cfg.MemLatency)
	m.L3.BindObs(m.Obs)
	if hostFastPaths {
		m.memo = newHostMemo()
		m.Mem.SetDirtyHook(m.memo.invalidateAll)
	}
	for i := 0; i < cfg.Cores; i++ {
		l2 := NewCache(CacheConfig{Name: fmt.Sprintf("cpu%d.L2", i), Size: cfg.L2Size, Ways: 4, Latency: cfg.L2Latency}, m.L3, 0)
		cpu := &CPU{
			ID:          i,
			mach:        m,
			Mode:        ModeKernel,
			VPID:        uint16(i + 1),
			blockCharge: blockCharge,
			L1I:         NewCache(CacheConfig{Name: fmt.Sprintf("cpu%d.L1I", i), Size: cfg.L1ISize, Ways: 8, Latency: cfg.L1Latency}, l2, 0),
			L1D:         NewCache(CacheConfig{Name: fmt.Sprintf("cpu%d.L1D", i), Size: cfg.L1DSize, Ways: 8, Latency: cfg.L1Latency}, l2, 0),
			L2:          l2,
			ITLB:        NewTLB(cfg.ITLBEntries),
			DTLB:        NewTLB(cfg.DTLBEntries),
		}
		if m.memo != nil {
			// An explicit TLB flush (shootdown) must also drop memoized
			// walks, machine-wide.
			cpu.ITLB.onFlush = m.memo.invalidateAll
			cpu.DTLB.onFlush = m.memo.invalidateAll
		}
		m.Cores = append(m.Cores, cpu)

		prefix := fmt.Sprintf("cpu%d", i)
		cpu.L1I.BindObs(m.Obs)
		cpu.L1D.BindObs(m.Obs)
		cpu.L2.BindObs(m.Obs)
		cpu.ITLB.BindObs(m.Obs, prefix+".ITLB")
		cpu.DTLB.BindObs(m.Obs, prefix+".DTLB")
		m.Obs.Bind(prefix+".instructions", &cpu.Counters.Instructions)
		m.Obs.Bind(prefix+".data_accesses", &cpu.Counters.DataAccesses)
		m.Obs.Bind(prefix+".code_fetches", &cpu.Counters.CodeFetches)
		m.Obs.Bind(prefix+".page_walks", &cpu.Counters.PageWalks)
		m.Obs.Bind(prefix+".ept_walk_reads", &cpu.Counters.EPTWalkReads)
		m.Obs.Bind(prefix+".syscalls", &cpu.Counters.Syscalls)
		m.Obs.Bind(prefix+".vmfuncs", &cpu.Counters.VMFuncs)
	}
	m.Obs.Bind("machine.ipis", &m.IPICount)
	return m
}

// AttachTrace creates one trace process (named label) for this machine and
// wires one track per core into the CPUs. Passing a nil tracer detaches.
func (m *Machine) AttachTrace(t *obs.Tracer, label string) {
	if t == nil {
		for _, c := range m.Cores {
			c.Trace = nil
		}
		return
	}
	pt := t.Process(label, len(m.Cores))
	for i, c := range m.Cores {
		c.Trace = pt.Core(i)
	}
}

// SetExitHandler installs the Rootkernel's VM-exit handler.
func (m *Machine) SetExitHandler(h ExitHandler) { m.exitHandler = h }

// deliverExit charges the exit cost, counts it, and runs the handler.
func (m *Machine) deliverExit(c *CPU, exit *VMExit) error {
	c.Clock += CostVMExit
	m.VMExits[exit.Reason]++
	if c.Trace != nil {
		c.Trace.Complete(c.Clock-CostVMExit, CostVMExit, "vmexit:"+exit.Reason.String(), "hw")
	}
	if m.exitHandler == nil {
		return fmt.Errorf("hw: unhandled %v (no hypervisor installed)", exit)
	}
	return m.exitHandler(c, exit)
}

// TotalVMExits sums exits across all reasons.
func (m *Machine) TotalVMExits() uint64 {
	var n uint64
	for _, v := range m.VMExits {
		n += v
	}
	return n
}

// ResetVMExitCounts zeroes the exit counters (e.g. after boot, so Table 5
// measures steady-state exits only).
func (m *Machine) ResetVMExitCounts() { clear(m.VMExits) }

// SendIPI charges the inter-processor-interrupt cost to the sending core
// and counts the event. Wakeup semantics live in the discrete-event layer.
func (m *Machine) SendIPI(from, to int) {
	if from < 0 || from >= len(m.Cores) || to < 0 || to >= len(m.Cores) {
		panic(fmt.Sprintf("hw: SendIPI %d -> %d out of range", from, to))
	}
	m.Cores[from].Clock += CostIPI
	m.IPICount++
	if tr := m.Cores[from].Trace; tr != nil {
		tr.Complete(m.Cores[from].Clock-CostIPI, CostIPI, "IPI", "hw", obs.U("to", uint64(to)))
		if fid := m.Cores[from].FlowID; fid != 0 {
			tr.FlowStep(m.Cores[from].Clock-CostIPI, fid, "flow.ipi", "flow")
		}
	}
}

// HostMemoStats returns the host-side walk-memo counters (zero when host
// fast paths are disabled). Host diagnostics only — never simulated state.
func (m *Machine) HostMemoStats() HostMemoStats {
	if m.memo == nil {
		return HostMemoStats{}
	}
	return m.memo.Stats
}

// HostMemoEntries returns the number of live walk-memo entries (test and
// benchmark helper).
func (m *Machine) HostMemoEntries() int {
	if m.memo == nil {
		return 0
	}
	return m.memo.entryCount()
}

// ResetStats clears every counter registered with the machine's registry —
// caches, TLBs, CPU counters, plus whatever the kernels and hypervisor have
// bound — along with all histograms. Cache/TLB contents are preserved; only
// statistics reset. VMExits is intentionally excluded (ResetVMExitCounts).
func (m *Machine) ResetStats() { m.Obs.ResetAll() }

// AlignClocks advances every core's clock to the furthest-ahead core — a
// barrier before a timed region. Setup phases charge unevenly (boot and
// binding on one core, preloading on others); without the barrier, the
// first cross-core wake of a measured phase makes the lagging thread
// absorb the skew as apparent latency. Call it only between engine runs,
// while no thread is executing.
func (m *Machine) AlignClocks() {
	var max uint64
	for _, c := range m.Cores {
		if c.Clock > max {
			max = c.Clock
		}
	}
	for _, c := range m.Cores {
		c.Clock = max
	}
}
