package hw

// Cycle costs of the architectural operations the simulator charges.
// The measured values come from the paper's Skylake i7-6700K (Table 2 and
// §2.1.1); CostVMExit is not reported by the paper and is set to a value
// consistent with published Skylake VM-exit round-trip measurements.
const (
	// CostSYSCALL is the cost of the SYSCALL instruction (§2.1.1).
	CostSYSCALL uint64 = 82
	// CostSWAPGS is the cost of one SWAPGS (§2.1.1).
	CostSWAPGS uint64 = 26
	// CostSYSRET is the cost of the SYSRET instruction (§2.1.1).
	CostSYSRET uint64 = 75
	// CostWriteCR3 is the cost of a CR3 write with PCID enabled (Table 2).
	CostWriteCR3 uint64 = 186
	// CostVMFUNC is the cost of VMFUNC EPTP switching with VPID enabled,
	// which does not flush the TLB (Table 2).
	CostVMFUNC uint64 = 134
	// CostIPI is the cost of delivering one inter-processor interrupt
	// (§2.1.3).
	CostIPI uint64 = 1913
	// CostVMExit is the round-trip cost of a VM exit plus VM entry. The
	// paper eliminates these entirely (Table 5 reports zero exits), so
	// this constant only matters for the trap-everything ablation.
	CostVMExit uint64 = 1500
	// CostInterrupt is the cost of delivering and dispatching a local
	// interrupt (vector through IDT, no VM exit).
	CostInterrupt uint64 = 600

	// ClockHz is the nominal clock used to convert simulated cycles to
	// seconds for throughput reporting (the paper's machine is a 4.0 GHz
	// i7-6700K).
	ClockHz = 4_000_000_000
)

// Cache hierarchy latencies and geometry (Skylake-like defaults).
const (
	DefaultL1Latency  uint64 = 4
	DefaultL2Latency  uint64 = 12
	DefaultL3Latency  uint64 = 42
	DefaultMemLatency uint64 = 200

	DefaultL1ISize = 32 << 10
	DefaultL1DSize = 32 << 10
	DefaultL2Size  = 256 << 10
	DefaultL3Size  = 8 << 20

	DefaultITLBEntries = 128
	DefaultDTLBEntries = 64
)
