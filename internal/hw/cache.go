package hw

import (
	"fmt"

	"skybridge/internal/obs"
)

// CacheConfig describes one level of a set-associative cache.
type CacheConfig struct {
	Name    string
	Size    int // total bytes
	Ways    int
	Latency uint64 // cycles charged on a hit at this level
}

// CacheStats are the observable counters of one cache level, used to
// regenerate Table 1 (processor-structure pollution).
type CacheStats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// Cache is one level of a set-associative cache with LRU replacement,
// indexed by host physical address at 64-byte line granularity. Levels are
// chained via next; a miss at the last level charges memLatency.
//
// Host-side layout: tags and LRU stamps live in separate flat
// [nsets*assoc] arrays (structure of arrays). Tags are uint32 (line
// address + 1, 0 = invalid; valid for physical memories up to 2^38 bytes),
// so scanning a 16-way set for a tag touches a single 64-byte host cache
// line — the scan is the hottest loop in the whole simulator, and for an
// L3-sized cache the tag array is a quarter the footprint of an
// array-of-pairs layout. Slot positions within a set are pure host-side
// state: which *line* is evicted is decided by the unique LRU stamps, not
// by slot position, so any placement policy yields identical simulated
// costs, stats, and contents. AccessRange additionally memoizes recurring
// bursts (see below).
type Cache struct {
	cfg        CacheConfig
	tags       []uint32 // flattened [nsets][assoc]
	lrus       []uint64 // flattened [nsets][assoc], parallel to tags
	assoc      int
	setMask    uint64
	next       *Cache
	memLatency uint64
	clock      uint64 // monotonic counter for LRU ordering
	Stats      CacheStats

	// memo records, per recurring burst shape (start line, length), the way
	// slot each line was last found in, so AccessRange can replay an all-hit
	// burst with one tag check and one LRU store per line instead of a set
	// scan. Direct-mapped by a hash of the burst key; collisions simply
	// re-record. Host-side only: every replayed line is validated by tag, so
	// a moved or evicted line drops back to the per-line path. See
	// blockcharge.go.
	memo []burstMemo

	// lineIdx is a direct-mapped line -> way-slot memo probed before every
	// set scan: entry lineHash(line) holds slot+1 where the line was last
	// seen (0 = empty). A probe is validated by the tag at the recorded
	// slot, which is sound without a set check: a line is only ever stored
	// in its own set, and two distinct lines share a uint32 tag only if
	// they are 2^32 lines apart (beyond any modeled memory), so a matching
	// tag can only be the right line in the right set. Stale entries
	// (evicted or collided) fail validation and fall through to the scan.
	lineIdx  []int32
	lineBits uint
}

// burstMemo is one recorded burst: its key (start line << 7 | length) and
// the way-array index each line was last found at.
type burstMemo struct {
	key uint64
	idx []int32
}

// memoTabBits sizes the direct-mapped burst-memo table (per cache level).
const memoTabBits = 12

// memoHash spreads burst keys over the table (Fibonacci hashing).
func memoHash(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> (64 - memoTabBits))
}

// cacheWay is one way slot viewed as a {tag, lru} pair (test helper; the
// hot path keeps the two in separate arrays).
type cacheWay struct {
	tag, lru uint64
}

// NewCache builds a cache level. next may be nil, in which case a miss
// costs memLatency (DRAM). Size must be a power-of-two multiple of
// Ways*LineSize.
func NewCache(cfg CacheConfig, next *Cache, memLatency uint64) *Cache {
	lines := cfg.Size / LineSize
	if lines == 0 || lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("hw: cache %q: %d lines not divisible by %d ways", cfg.Name, lines, cfg.Ways))
	}
	nsets := lines / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("hw: cache %q: set count %d not a power of two", cfg.Name, nsets))
	}
	// Size the line->slot memo at 2x the line count (load factor 0.5),
	// clamped to sane bounds.
	bits := uint(10)
	for 1<<bits < 2*lines && bits < 18 {
		bits++
	}
	return &Cache{
		cfg:        cfg,
		tags:       make([]uint32, lines),
		lrus:       make([]uint64, lines),
		assoc:      cfg.Ways,
		setMask:    uint64(nsets - 1),
		next:       next,
		memLatency: memLatency,
		lineIdx:    make([]int32, 1<<bits),
		lineBits:   bits,
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access touches the line containing h and returns the cycles the access
// cost: this level's latency plus, on a miss, the cost of filling from the
// next level (or DRAM).
//
// The scan is a single merged pass: while looking for the tag it also
// tracks the eviction victim, so a miss already knows its fill slot. Hit
// lines stay in place: slot positions are pure host-side layout; every
// simulated outcome (hit/miss, cost, stats, eviction victim) depends only
// on the set's tag/LRU contents, which evolve identically under any slot
// ordering.
func (c *Cache) Access(h HPA, write bool) uint64 {
	c.clock++
	c.Stats.Accesses++
	key := uint64(h)>>LineShift + 1 // stored tag: line address + 1, 0 = invalid
	k32 := uint32(key)
	lh := c.lineHash(key)
	if ix := c.lineIdx[lh]; ix > 0 && c.tags[ix-1] == k32 {
		c.Stats.Hits++
		c.lrus[ix-1] = c.clock
		return c.cfg.Latency
	}
	base := int((key-1)&c.setMask) * c.assoc
	tags := c.tags[base : base+c.assoc]
	lrus := c.lrus[base : base+c.assoc : base+c.assoc]

	// Victim selection is a single argmin over LRU stamps: a free way always
	// has stamp 0 (never filled, or cleared by Flush) while a filled way's
	// stamp is >= 1, so the argmin picks the first free way in slot order
	// when one exists and the unique LRU way otherwise — exactly the
	// first-free-else-LRU policy, one comparison per way.
	victim, minLru := 0, ^uint64(0)
	for i := 0; i < len(tags); i++ {
		if tags[i] == k32 {
			c.Stats.Hits++
			lrus[i] = c.clock
			c.lineIdx[lh] = int32(base+i) + 1
			return c.cfg.Latency
		}
		if l := lrus[i]; l < minLru {
			victim, minLru = i, l
		}
	}
	c.Stats.Misses++
	cost := c.cfg.Latency
	if c.next != nil {
		cost += c.next.Access(h, write)
	} else {
		cost += c.memLatency
	}
	tags[victim] = k32
	lrus[victim] = c.clock
	c.lineIdx[lh] = int32(base+victim) + 1
	return cost
}

// lineHash spreads line keys over the lineIdx memo (Fibonacci hashing).
func (c *Cache) lineHash(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> (64 - c.lineBits))
}

// memoMinLines gates burst memoization: below this length, the memo-table
// probe costs more than the set scans it saves.
const memoMinLines = 8

// AccessRange touches the nLines consecutive lines starting at the line
// containing h and returns the total cycles charged. It is exactly
// equivalent to nLines sequential Access calls — identical clock advance,
// per-line costs, LRU stamps, and eviction decisions; the per-level stats
// are batched but reach the same final counts, and hit lines are not
// reordered to way slot 0 (slot positions are pure host-side layout: every
// simulated decision — hit/miss, cost, eviction victim — depends only on
// the set's tag/LRU contents, which evolve identically; see Access's swap
// comment).
//
// Recurring bursts (the same payload buffers copied every IPC round trip)
// are memoized: the way slot each line was found in is recorded, and the
// next occurrence of the same burst replays with one tag check and one LRU
// store per line. A line whose tag no longer matches its recorded slot
// (moved or evicted by any fill since) falls back to the per-line path from
// that point, which re-records the slots.
func (c *Cache) AccessRange(h HPA, nLines int, write bool) uint64 {
	key := uint64(h)>>LineShift + 1
	if nLines == 1 {
		// Single-line access: the dominant non-burst case (individual loads
		// and stores).
		return c.Access(h, write)
	}
	if nLines >= memoMinLines && nLines < 128 {
		mk := key<<7 | uint64(nLines)
		if c.memo == nil {
			c.memo = make([]burstMemo, 1<<memoTabBits)
		}
		e := &c.memo[memoHash(mk)]
		if e.key == mk {
			m := e.idx
			tags, lrus := c.tags, c.lrus
			clk := c.clock
			for i := 0; i < nLines; i++ {
				ix := m[i]
				if tags[ix] != uint32(key+uint64(i)) {
					// The prefix stamps already written are exactly the hits
					// the per-line path would have produced; account for
					// them and continue per line, re-recording slots.
					c.clock = clk + uint64(i)
					c.Stats.Accesses += uint64(i)
					c.Stats.Hits += uint64(i)
					return uint64(i)*c.cfg.Latency + c.rangeLines(key, i, nLines, write, m)
				}
				lrus[ix] = clk + uint64(i) + 1
			}
			c.clock = clk + uint64(nLines)
			c.Stats.Accesses += uint64(nLines)
			c.Stats.Hits += uint64(nLines)
			return uint64(nLines) * c.cfg.Latency
		}
		// Miss or collision: (re-)record this burst in the slot.
		if len(e.idx) != nLines {
			e.idx = make([]int32, nLines)
		}
		e.key = mk
		return c.rangeLines(key, 0, nLines, write, e.idx)
	}
	return c.rangeLines(key, 0, nLines, write, nil)
}

// rangeLines is AccessRange's per-line path: lines from..nLines-1 of the
// burst starting at line key-1, with Access's exact state transitions.
// When rec is non-nil, each line's final way index is recorded into rec[i]
// — hits record where the line was found, misses record the way they were
// filled into.
//
// Runs of consecutive missing lines are charged against the next level with
// one AccessRange call per run instead of one Access per line, so the next
// level's burst memo and merged scan apply to streaming bursts too. This is
// exactly equivalent: this level's per-line state transitions (clock, LRU
// stamp or fill) are unchanged and the next level sees the same lines in
// the same ascending order — the two levels' states are disjoint, so
// whether the next-level charges interleave with this level's fills cannot
// affect any outcome, and the total cost is the same sum.
func (c *Cache) rangeLines(key uint64, from, nLines int, write bool, rec []int32) uint64 {
	var cost uint64
	var hits, misses uint64
	tags, lrus, assoc := c.tags, c.lrus, c.assoc
	clock := c.clock
	runStart, runLen := 0, 0 // pending run of missing lines for c.next
line:
	for i := from; i < nLines; i++ {
		k := key + uint64(i)
		k32 := uint32(k)
		clock++
		lh := c.lineHash(k)
		if ix := c.lineIdx[lh]; ix > 0 && tags[ix-1] == k32 {
			hits++
			lrus[ix-1] = clock
			cost += c.cfg.Latency
			if rec != nil {
				rec[i] = ix - 1
			}
			continue
		}
		base := int((k-1)&c.setMask) * assoc
		end := base + assoc
		victim, minLru := base, ^uint64(0)
		for j := base; j < end; j++ {
			if tags[j] == k32 {
				hits++
				lrus[j] = clock
				cost += c.cfg.Latency
				if rec != nil {
					rec[i] = int32(j)
				}
				c.lineIdx[lh] = int32(j) + 1
				continue line
			}
			if l := lrus[j]; l < minLru {
				victim, minLru = j, l
			}
		}
		// Miss: charge this level, fill into the first free way (stamp 0)
		// else the LRU way (see Access on why one argmin covers both), and
		// defer the next-level charge to the run.
		misses++
		cost += c.cfg.Latency
		if c.next == nil {
			cost += c.memLatency
		} else if runLen > 0 && runStart+runLen == i {
			runLen++
		} else {
			if runLen > 0 {
				cost += c.next.AccessRange(HPA(key+uint64(runStart)-1)<<LineShift, runLen, write)
			}
			runStart, runLen = i, 1
		}
		tags[victim] = k32
		lrus[victim] = clock
		c.lineIdx[lh] = int32(victim) + 1
		if rec != nil {
			rec[i] = int32(victim)
		}
	}
	c.clock = clock
	if runLen > 0 {
		cost += c.next.AccessRange(HPA(key+uint64(runStart)-1)<<LineShift, runLen, write)
	}
	c.Stats.Accesses += uint64(nLines - from)
	c.Stats.Hits += hits
	c.Stats.Misses += misses
	return cost
}

// Contains reports whether the line holding h is currently cached at this
// level, without touching LRU state or counters.
func (c *Cache) Contains(h HPA) bool {
	key := uint64(h)>>LineShift + 1
	base := int((key-1)&c.setMask) * c.assoc
	for _, t := range c.tags[base : base+c.assoc] {
		if t == uint32(key) {
			return true
		}
	}
	return false
}

// Flush invalidates every line (used only by tests and ablations; SkyBridge
// itself never flushes caches).
func (c *Cache) Flush() {
	clear(c.tags)
	clear(c.lrus)
}

// ResetStats zeroes the counters without touching cache contents, so an
// experiment can warm up and then measure.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }

// BindObs registers this cache's counters with the registry under
// "<name>.accesses" etc., where <name> is the configured cache name
// (e.g. "cpu0.L1I"). The hot path keeps incrementing the struct fields
// directly; the registry only reads and resets them.
func (c *Cache) BindObs(r *obs.Registry) {
	r.Bind(c.cfg.Name+".accesses", &c.Stats.Accesses)
	r.Bind(c.cfg.Name+".hits", &c.Stats.Hits)
	r.Bind(c.cfg.Name+".misses", &c.Stats.Misses)
}
