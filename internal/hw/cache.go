package hw

import (
	"fmt"

	"skybridge/internal/obs"
)

// CacheConfig describes one level of a set-associative cache.
type CacheConfig struct {
	Name    string
	Size    int // total bytes
	Ways    int
	Latency uint64 // cycles charged on a hit at this level
}

// CacheStats are the observable counters of one cache level, used to
// regenerate Table 1 (processor-structure pollution).
type CacheStats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// Cache is one level of a set-associative cache with LRU replacement,
// indexed by host physical address at 64-byte line granularity. Levels are
// chained via next; a miss at the last level charges memLatency.
//
// Host-side layout: each way is a 16-byte {tag, lru} pair (tag = line
// address + 1, 0 = invalid) in one flat [nsets*assoc] array, so the
// dominant case — a hit in way slot 0 — reads the tag and writes the LRU
// stamp on the same host cache line. On a hit the line is swapped to way
// slot 0 of its set, so repeat accesses match on the first compare.
// Neither change is observable in the simulation: which *line* is evicted
// is decided by the unique LRU stamps, not by slot position, and the
// charged costs and stats are identical. Access is the hottest function in
// the whole simulator.
type Cache struct {
	cfg        CacheConfig
	ways       []cacheWay // flattened [nsets][assoc]
	assoc      int
	setMask    uint64
	next       *Cache
	memLatency uint64
	clock      uint64 // monotonic counter for LRU ordering
	Stats      CacheStats
}

// cacheWay is one way slot: the stored tag (line address + 1, 0 invalid)
// and its LRU stamp.
type cacheWay struct {
	tag, lru uint64
}

// NewCache builds a cache level. next may be nil, in which case a miss
// costs memLatency (DRAM). Size must be a power-of-two multiple of
// Ways*LineSize.
func NewCache(cfg CacheConfig, next *Cache, memLatency uint64) *Cache {
	lines := cfg.Size / LineSize
	if lines == 0 || lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("hw: cache %q: %d lines not divisible by %d ways", cfg.Name, lines, cfg.Ways))
	}
	nsets := lines / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("hw: cache %q: set count %d not a power of two", cfg.Name, nsets))
	}
	return &Cache{
		cfg:        cfg,
		ways:       make([]cacheWay, lines),
		assoc:      cfg.Ways,
		setMask:    uint64(nsets - 1),
		next:       next,
		memLatency: memLatency,
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access touches the line containing h and returns the cycles the access
// cost: this level's latency plus, on a miss, the cost of filling from the
// next level (or DRAM).
func (c *Cache) Access(h HPA, write bool) uint64 {
	c.clock++
	c.Stats.Accesses++
	key := uint64(h)>>LineShift + 1 // stored tag: line address + 1, 0 = invalid
	base := int((key-1)&c.setMask) * c.assoc
	set := c.ways[base : base+c.assoc]

	// Way slot 0 holds the set's MRU line (swapped there on every hit), so
	// this first compare serves the overwhelming majority of accesses.
	if set[0].tag == key {
		c.Stats.Hits++
		set[0].lru = c.clock
		return c.cfg.Latency
	}
	for i := 1; i < len(set); i++ {
		if set[i].tag == key {
			c.Stats.Hits++
			set[i].lru = c.clock
			// Keep the MRU line in slot 0 (pure host-side reordering; see
			// type comment).
			set[i], set[0] = set[0], set[i]
			return c.cfg.Latency
		}
	}
	c.Stats.Misses++
	cost := c.cfg.Latency
	if c.next != nil {
		cost += c.next.Access(h, write)
	} else {
		cost += c.memLatency
	}
	// Fill: use a free way if present, else evict the LRU way.
	victim := 0
	for i := 1; i < len(set); i++ {
		if set[i].tag == 0 {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = cacheWay{tag: key, lru: c.clock}
	return cost
}

// Contains reports whether the line holding h is currently cached at this
// level, without touching LRU state or counters.
func (c *Cache) Contains(h HPA) bool {
	key := uint64(h)>>LineShift + 1
	base := int((key-1)&c.setMask) * c.assoc
	for _, w := range c.ways[base : base+c.assoc] {
		if w.tag == key {
			return true
		}
	}
	return false
}

// Flush invalidates every line (used only by tests and ablations; SkyBridge
// itself never flushes caches).
func (c *Cache) Flush() {
	clear(c.ways)
}

// ResetStats zeroes the counters without touching cache contents, so an
// experiment can warm up and then measure.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }

// BindObs registers this cache's counters with the registry under
// "<name>.accesses" etc., where <name> is the configured cache name
// (e.g. "cpu0.L1I"). The hot path keeps incrementing the struct fields
// directly; the registry only reads and resets them.
func (c *Cache) BindObs(r *obs.Registry) {
	r.Bind(c.cfg.Name+".accesses", &c.Stats.Accesses)
	r.Bind(c.cfg.Name+".hits", &c.Stats.Hits)
	r.Bind(c.cfg.Name+".misses", &c.Stats.Misses)
}
