package hw

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPhysMemReadWriteRoundTrip(t *testing.T) {
	m := NewPhysMem(1 << 20)
	data := []byte("hello physical world")
	m.Write(0x1234, data)
	got := make([]byte, len(data))
	m.Read(0x1234, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestPhysMemCrossFrame(t *testing.T) {
	m := NewPhysMem(1 << 20)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := HPA(PageSize - 100) // spans 4 frames
	m.Write(addr, data)
	got := make([]byte, len(data))
	m.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-frame write/read mismatch")
	}
}

func TestPhysMemZeroOnAlloc(t *testing.T) {
	m := NewPhysMem(1 << 20)
	f := m.MustAllocFrame()
	m.Write(f, []byte{1, 2, 3})
	m.FreeFrame(f)
	f2 := m.MustAllocFrame()
	if f2 != f {
		t.Fatalf("expected recycled frame %#x, got %#x", uint64(f), uint64(f2))
	}
	got := make([]byte, 3)
	m.Read(f2, got)
	if got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("recycled frame not zeroed: %v", got)
	}
}

func TestPhysMemU64(t *testing.T) {
	m := NewPhysMem(1 << 20)
	m.WriteU64(0x2000, 0xdeadbeefcafebabe)
	if v := m.ReadU64(0x2000); v != 0xdeadbeefcafebabe {
		t.Fatalf("got %#x", v)
	}
}

func TestPhysMemAllocatesFromTop(t *testing.T) {
	m := NewPhysMem(1 << 20)
	f := m.MustAllocFrame()
	if uint64(f) != 1<<20-PageSize {
		t.Fatalf("first frame %#x, want top frame", uint64(f))
	}
	if m.AllocatorFloor() != f {
		t.Fatalf("floor %#x, want %#x", uint64(m.AllocatorFloor()), uint64(f))
	}
}

func TestPhysMemExhaustion(t *testing.T) {
	m := NewPhysMem(4 * PageSize)
	for i := 0; i < 4; i++ {
		if _, err := m.AllocFrame(); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if _, err := m.AllocFrame(); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestPhysMemUnalignedSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unaligned size")
		}
	}()
	NewPhysMem(PageSize + 1)
}

func TestPhysMemOutOfRangePanics(t *testing.T) {
	m := NewPhysMem(PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range access")
		}
	}()
	m.Read(HPA(PageSize), make([]byte, 1))
}

// Property: for any offset/content, a write followed by a read at the same
// address returns the content.
func TestPhysMemRoundTripProperty(t *testing.T) {
	m := NewPhysMem(1 << 22)
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := HPA(uint64(off) % (1<<22 - uint64(len(data))))
		m.Write(addr, data)
		got := make([]byte, len(data))
		m.Read(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
