package hw

import (
	"testing"
	"testing/quick"
)

func TestPageTableMapWalk(t *testing.T) {
	m := NewPhysMem(1 << 22)
	pt := NewPageTable(m)
	va := VA(0x7fff_0000_1000)
	gpa := GPA(0x5000)
	if err := pt.Map(va, gpa, PTEWrite|PTEUser); err != nil {
		t.Fatal(err)
	}
	got, flags, ok := pt.Walk(va)
	if !ok || got != gpa {
		t.Fatalf("walk: got %#x ok=%v, want %#x", uint64(got), ok, uint64(gpa))
	}
	if flags&PTEWrite == 0 || flags&PTEUser == 0 {
		t.Fatalf("flags %#x missing write/user", uint64(flags))
	}
}

func TestPageTableWalkOffset(t *testing.T) {
	m := NewPhysMem(1 << 22)
	pt := NewPageTable(m)
	if err := pt.Map(0x4000, 0x9000, PTEUser); err != nil {
		t.Fatal(err)
	}
	got, _, ok := pt.Walk(0x4123)
	if !ok || got != 0x9123 {
		t.Fatalf("offset walk: got %#x, want 0x9123", uint64(got))
	}
}

func TestPageTableUnmap(t *testing.T) {
	m := NewPhysMem(1 << 22)
	pt := NewPageTable(m)
	if err := pt.Map(0x4000, 0x9000, PTEUser); err != nil {
		t.Fatal(err)
	}
	pt.Unmap(0x4000)
	if _, _, ok := pt.Walk(0x4000); ok {
		t.Fatal("mapping survived unmap")
	}
}

func TestPageTableUnmappedWalkFails(t *testing.T) {
	m := NewPhysMem(1 << 22)
	pt := NewPageTable(m)
	if _, _, ok := pt.Walk(0xdead000); ok {
		t.Fatal("walk of unmapped va succeeded")
	}
}

func TestPageTableUnalignedMapRejected(t *testing.T) {
	m := NewPhysMem(1 << 22)
	pt := NewPageTable(m)
	if err := pt.Map(0x4001, 0x9000, 0); err == nil {
		t.Fatal("unaligned va accepted")
	}
	if err := pt.Map(0x4000, 0x9001, 0); err == nil {
		t.Fatal("unaligned gpa accepted")
	}
}

func TestPageTableMapRange(t *testing.T) {
	m := NewPhysMem(1 << 22)
	pt := NewPageTable(m)
	if err := pt.MapRange(0x10000, 0x80000, 16, PTEWrite); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		got, _, ok := pt.Walk(VA(0x10000 + i*PageSize))
		if !ok || got != GPA(0x80000+i*PageSize) {
			t.Fatalf("page %d: got %#x ok=%v", i, uint64(got), ok)
		}
	}
}

func TestPageTableDistinctAddressSpaces(t *testing.T) {
	m := NewPhysMem(1 << 22)
	a := NewPageTable(m)
	b := NewPageTable(m)
	if err := a.Map(0x4000, 0x1000, PTEUser); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(0x4000, 0x2000, PTEUser); err != nil {
		t.Fatal(err)
	}
	ga, _, _ := a.Walk(0x4000)
	gb, _, _ := b.Walk(0x4000)
	if ga == gb {
		t.Fatal("two address spaces alias the same va to the same gpa")
	}
}

// Property: map then walk is the identity on (va, gpa) pairs for arbitrary
// canonical addresses.
func TestPageTableMapWalkProperty(t *testing.T) {
	m := NewPhysMem(1 << 26)
	pt := NewPageTable(m)
	f := func(vpn, ppn uint32) bool {
		va := VA(uint64(vpn) << PageShift)
		gpa := GPA(uint64(ppn) << PageShift)
		if err := pt.Map(va, gpa, PTEWrite|PTEUser); err != nil {
			return false
		}
		got, _, ok := pt.Walk(va)
		return ok && got == gpa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPageTablePagesAccounting(t *testing.T) {
	m := NewPhysMem(1 << 22)
	pt := NewPageTable(m)
	if pt.TablePages() != 1 {
		t.Fatalf("fresh table has %d pages, want 1", pt.TablePages())
	}
	if err := pt.Map(0x4000, 0x9000, 0); err != nil {
		t.Fatal(err)
	}
	// Root + PDPT + PD + PT.
	if pt.TablePages() != 4 {
		t.Fatalf("after one map: %d pages, want 4", pt.TablePages())
	}
	// Second page in the same leaf table allocates nothing new.
	if err := pt.Map(0x5000, 0xa000, 0); err != nil {
		t.Fatal(err)
	}
	if pt.TablePages() != 4 {
		t.Fatalf("after adjacent map: %d pages, want 4", pt.TablePages())
	}
}
