package hw

import "fmt"

// EPTFlags are extended-page-table entry permission bits (Intel SDM Vol 3,
// Table 28-1: bit 0 read, bit 1 write, bit 2 execute; bit 7 marks a large
// page at the PDPT/PD levels).
type EPTFlags uint64

// EPT entry flag bits.
const (
	EPTRead  EPTFlags = 1 << 0
	EPTWrite EPTFlags = 1 << 1
	EPTExec  EPTFlags = 1 << 2
	EPTPS    EPTFlags = 1 << 7

	// EPTAll is the common read+write+execute permission set.
	EPTAll = EPTRead | EPTWrite | EPTExec

	eptAddrMask = 0x000ffffffffff000
)

// EPTViolation describes a failed GPA translation. It becomes the payload
// of an EPT-violation VM exit.
type EPTViolation struct {
	GPA    GPA
	Access Access
	Level  int // table level at which the walk failed (4..1, 0 = leaf perms)
}

// Error implements the error interface.
func (v *EPTViolation) Error() string {
	return fmt.Sprintf("ept violation: %s of gpa %#x (level %d)", v.Access, uint64(v.GPA), v.Level)
}

// EPT is a four-level extended page table translating GPA to HPA, with
// support for 1 GiB, 2 MiB, and 4 KiB mappings.
//
// EPTs support shallow cloning: a clone shares every interior table page
// with its parent and owns only its root. RemapGPA then path-copies just
// the table pages between the root and one leaf — the paper's observation
// that binding a client to a server modifies "only four pages" while "all
// other EPT pages are kept intact". Ownership is tracked per table page so a
// clone never writes through to pages it shares with the base EPT.
type EPT struct {
	mem   *PhysMem
	src   FrameSource
	Root  HPA
	owned map[HPA]bool // table pages exclusively owned by this EPT

	// OwnedPages is the number of table pages this EPT had to allocate
	// for itself (1 for a fresh clone's root; +N after remaps). Exposed
	// for the shallow-vs-deep ablation benchmark.
	OwnedPages int
}

// FrameSource supplies physical frames for table pages. PhysMem itself is
// one; the Rootkernel supplies a source drawing from its reserved region so
// that EPT structures are not guest-accessible.
type FrameSource interface {
	AllocFrame() (HPA, error)
}

// NewEPT allocates an empty EPT with table frames from general memory.
func NewEPT(mem *PhysMem) *EPT { return NewEPTFrom(mem, mem) }

// NewEPTFrom allocates an empty EPT drawing table frames from src.
func NewEPTFrom(mem *PhysMem, src FrameSource) *EPT {
	root := mustFrame(src)
	return &EPT{
		mem:        mem,
		src:        src,
		Root:       root,
		owned:      map[HPA]bool{root: true},
		OwnedPages: 1,
	}
}

func mustFrame(src FrameSource) HPA {
	h, err := src.AllocFrame()
	if err != nil {
		panic(err)
	}
	return h
}

// newTable allocates one owned table page.
func (e *EPT) newTable() HPA {
	h := mustFrame(e.src)
	e.owned[h] = true
	e.OwnedPages++
	return h
}

// levelFor returns the leaf level for a mapping size.
func levelFor(size uint64) (int, error) {
	switch size {
	case PageSize:
		return 1, nil
	case Page2MSize:
		return 2, nil
	case Page1GSize:
		return 3, nil
	default:
		return 0, fmt.Errorf("hw: unsupported EPT mapping size %#x", size)
	}
}

// Map establishes a translation gpa -> hpa of the given size (PageSize,
// Page2MSize, or Page1GSize) with the given permissions. Both addresses
// must be size aligned. Map is used to build EPTs from scratch and assumes
// all pages along the path are owned (it is not clone-safe; clones must use
// RemapGPA).
func (e *EPT) Map(gpa GPA, hpa HPA, size uint64, flags EPTFlags) error {
	leaf, err := levelFor(size)
	if err != nil {
		return err
	}
	if uint64(gpa)%size != 0 || uint64(hpa)%size != 0 {
		return fmt.Errorf("hw: EPT.Map unaligned gpa=%#x hpa=%#x size=%#x", uint64(gpa), uint64(hpa), size)
	}
	table := e.Root
	for level := 4; level > leaf; level-- {
		slot := table + HPA(8*gpa.Index(level))
		entry := e.mem.ReadU64(slot)
		if EPTFlags(entry)&EPTAll == 0 {
			next := e.newTable()
			entry = uint64(next) | uint64(EPTAll)
			e.mem.WriteU64(slot, entry)
		} else if EPTFlags(entry)&EPTPS != 0 {
			return fmt.Errorf("hw: EPT.Map would split existing %d-level large page at gpa %#x; use RemapGPA", level, uint64(gpa))
		}
		table = HPA(entry & eptAddrMask)
	}
	entry := uint64(hpa) | uint64(flags)
	if leaf > 1 {
		entry |= uint64(EPTPS)
	}
	e.mem.WriteU64(table+HPA(8*gpa.Index(leaf)), entry)
	return nil
}

// MapIdentityRange identity-maps [base, base+n*size) using n mappings of the
// given size. It is the Rootkernel's tool for building the hugepage base EPT.
func (e *EPT) MapIdentityRange(base GPA, n int, size uint64, flags EPTFlags) error {
	for i := 0; i < n; i++ {
		off := uint64(i) * size
		if err := e.Map(base+GPA(off), HPA(uint64(base)+off), size, flags); err != nil {
			return err
		}
	}
	return nil
}

// CloneShallow creates a copy-on-write clone sharing all interior pages.
func (e *EPT) CloneShallow() *EPT {
	root := mustFrame(e.src)
	var buf [PageSize]byte
	e.mem.Read(e.Root, buf[:])
	e.mem.Write(root, buf[:])
	return &EPT{
		mem:        e.mem,
		src:        e.src,
		Root:       root,
		owned:      map[HPA]bool{root: true},
		OwnedPages: 1,
	}
}

// CloneDeep creates a full copy of every table page. It exists only as the
// ablation baseline for CloneShallow.
func (e *EPT) CloneDeep() *EPT {
	c := &EPT{mem: e.mem, src: e.src, owned: make(map[HPA]bool)}
	c.Root = c.deepCopyTable(e.Root, 4)
	return c
}

func (c *EPT) deepCopyTable(src HPA, level int) HPA {
	dst := c.newTable()
	for i := 0; i < EntriesPerTable; i++ {
		entry := c.mem.ReadU64(src + HPA(8*i))
		if EPTFlags(entry)&EPTAll == 0 {
			continue
		}
		if level > 1 && EPTFlags(entry)&EPTPS == 0 {
			next := c.deepCopyTable(HPA(entry&eptAddrMask), level-1)
			entry = uint64(next) | (entry &^ eptAddrMask)
		}
		c.mem.WriteU64(dst+HPA(8*i), entry)
	}
	return dst
}

// RemapGPA changes the 4 KiB translation of gpa to newHPA with the given
// permissions, path-copying (and splitting large pages) as needed so that no
// shared table page is modified. It returns the number of table pages that
// had to be copied or created — the paper's "only four pages are modified"
// claim is asserted against this value in tests.
//
// This is the operation the Rootkernel uses to remap the GPA of the client's
// CR3 to the HPA of the server's page-table root inside the server's EPT.
func (e *EPT) RemapGPA(gpa GPA, newHPA HPA, flags EPTFlags) (copied int, err error) {
	if gpa.PageOff() != 0 || uint64(newHPA)%PageSize != 0 {
		return 0, fmt.Errorf("hw: RemapGPA unaligned gpa=%#x hpa=%#x", uint64(gpa), uint64(newHPA))
	}
	table := e.Root
	for level := 4; level > 1; level-- {
		slot := table + HPA(8*gpa.Index(level))
		entry := e.mem.ReadU64(slot)
		switch {
		case EPTFlags(entry)&EPTAll == 0:
			// Hole: create a fresh owned table.
			next := e.newTable()
			copied++
			e.mem.WriteU64(slot, uint64(next)|uint64(EPTAll))
			table = next
		case EPTFlags(entry)&EPTPS != 0:
			// Large page: split into an owned table of the next-smaller size.
			next, n := e.splitLargePage(entry, level)
			copied += n
			e.mem.WriteU64(slot, uint64(next)|uint64(EPTFlags(entry)&EPTAll))
			table = next
		default:
			next := HPA(entry & eptAddrMask)
			if !e.owned[next] {
				// Shared interior page: copy before descending.
				cp := e.copyTablePage(next)
				copied++
				e.mem.WriteU64(slot, uint64(cp)|(entry&^eptAddrMask))
				next = cp
			}
			table = next
		}
	}
	e.mem.WriteU64(table+HPA(8*gpa.Index(1)), uint64(newHPA)|uint64(flags))
	return copied, nil
}

// splitLargePage replaces a PS entry at the given level with an owned table
// of 512 entries covering the same range. At level 3 the children are 2 MiB
// PS entries; at level 2 they are 4 KiB leaves.
func (e *EPT) splitLargePage(entry uint64, level int) (HPA, int) {
	base := entry & eptAddrMask
	perms := uint64(EPTFlags(entry) & EPTAll)
	childSize := uint64(PageSize)
	childPS := uint64(0)
	if level == 3 {
		childSize = Page2MSize
		childPS = uint64(EPTPS)
	}
	next := e.newTable()
	for i := uint64(0); i < EntriesPerTable; i++ {
		e.mem.WriteU64(next+HPA(8*i), (base+i*childSize)|perms|childPS)
	}
	return next, 1
}

// copyTablePage duplicates a shared table page into an owned one.
func (e *EPT) copyTablePage(src HPA) HPA {
	dst := e.newTable()
	var buf [PageSize]byte
	e.mem.Read(src, buf[:])
	e.mem.Write(dst, buf[:])
	return dst
}

// Translate resolves gpa to an HPA, enforcing permissions. On failure it
// returns an *EPTViolation describing the fault.
func (e *EPT) Translate(gpa GPA, acc Access) (HPA, *EPTViolation) {
	hpa, _, v := e.TranslateTrace(gpa, acc)
	return hpa, v
}

// TranslateTrace is Translate but additionally returns the physical
// addresses of every EPT entry the walk read, so the CPU model can charge
// cache accesses for the walk (this is where the 2-level-translation cost
// the paper discusses comes from).
func (e *EPT) TranslateTrace(gpa GPA, acc Access) (HPA, []HPA, *EPTViolation) {
	hpa, trace, _, v := e.TranslateInto(gpa, acc, nil)
	return hpa, trace, v
}

// eptNeed returns the EPT permission bit an access kind requires.
func eptNeed(acc Access) EPTFlags {
	switch acc {
	case AccessWrite:
		return EPTWrite
	case AccessExec:
		return EPTExec
	}
	return EPTRead
}

// TranslateInto is TranslateTrace with two hot-path additions: the walk
// appends entry slots to the caller-provided trace buffer (pass a reused
// scratch slice to avoid the per-walk allocation), and on success it also
// returns the leaf entry's permission flags, which the host-side walk memo
// stores so a memo hit can re-check permissions without re-walking.
func (e *EPT) TranslateInto(gpa GPA, acc Access, trace []HPA) (HPA, []HPA, EPTFlags, *EPTViolation) {
	need := eptNeed(acc)
	table := e.Root
	for level := 4; level >= 1; level-- {
		slot := table + HPA(8*gpa.Index(level))
		trace = append(trace, slot)
		entry := e.mem.ReadU64(slot)
		if EPTFlags(entry)&EPTAll == 0 {
			return 0, trace, 0, &EPTViolation{GPA: gpa, Access: acc, Level: level}
		}
		if level == 1 || EPTFlags(entry)&EPTPS != 0 {
			if EPTFlags(entry)&need == 0 {
				return 0, trace, 0, &EPTViolation{GPA: gpa, Access: acc, Level: 0}
			}
			var size uint64
			switch level {
			case 1:
				size = PageSize
			case 2:
				size = Page2MSize
			case 3:
				size = Page1GSize
			default:
				return 0, trace, 0, &EPTViolation{GPA: gpa, Access: acc, Level: level}
			}
			base := entry & eptAddrMask
			return HPA(base + uint64(gpa)%size), trace, EPTFlags(entry) & EPTAll, nil
		}
		table = HPA(entry & eptAddrMask)
	}
	return 0, trace, 0, &EPTViolation{GPA: gpa, Access: acc, Level: 1}
}
