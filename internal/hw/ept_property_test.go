package hw

import (
	"math/rand"
	"testing"
)

// TestEPTRemapAgainstModel drives random RemapGPA operations on a clone and
// checks translations against a model map, including that untouched
// addresses keep their identity mapping and the base EPT never changes.
func TestEPTRemapAgainstModel(t *testing.T) {
	mem := NewPhysMem(4 << 30)
	base := NewEPT(mem)
	if err := base.MapIdentityRange(0, 2, Page1GSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	clone := base.CloneShallow()
	rng := rand.New(rand.NewSource(11))
	model := map[GPA]HPA{}

	for step := 0; step < 400; step++ {
		gpa := GPA(rng.Intn(2<<30)) &^ GPA(PageMask)
		switch rng.Intn(3) {
		case 0, 1: // remap to a random frame
			hpa := HPA(rng.Intn(2<<30)) &^ HPA(PageMask)
			if _, err := clone.RemapGPA(gpa, hpa, EPTAll); err != nil {
				t.Fatalf("step %d: remap: %v", step, err)
			}
			model[gpa] = hpa
		case 2: // check a random page
			want, remapped := model[gpa]
			if !remapped {
				want = HPA(gpa)
			}
			got, v := clone.Translate(gpa+GPA(rng.Intn(PageSize)), AccessRead)
			if v != nil {
				t.Fatalf("step %d: violation: %v", step, v)
			}
			if got.PageBase() != want {
				t.Fatalf("step %d: gpa %#x -> %#x, want %#x", step, uint64(gpa), uint64(got), uint64(want))
			}
			// Base stays identity throughout.
			bgot, bv := base.Translate(gpa, AccessRead)
			if bv != nil || bgot != HPA(gpa) {
				t.Fatalf("step %d: base EPT corrupted at %#x", step, uint64(gpa))
			}
		}
	}
	// Full sweep of every remapped page.
	for gpa, want := range model {
		got, v := clone.Translate(gpa, AccessRead)
		if v != nil || got != want {
			t.Fatalf("final: gpa %#x -> %#x (%v), want %#x", uint64(gpa), uint64(got), v, uint64(want))
		}
	}
}

// TestTLBCapacityRespected: the TLB never exceeds its configured capacity
// under random insert workloads.
func TestTLBCapacityRespected(t *testing.T) {
	tlb := NewTLB(64)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		tag := TLBTag{VPID: uint16(rng.Intn(4)), PCID: uint16(rng.Intn(4))}
		tlb.Insert(tag, uint64(rng.Intn(5000)), HPA(rng.Intn(1<<20))<<PageShift, PTEUser)
		if tlb.Len() > 64 {
			t.Fatalf("TLB grew to %d entries", tlb.Len())
		}
	}
}

// TestCacheInclusionOfCosts: a hit at L1 never costs more than a miss, and
// the miss cost equals the sum of the chain's latencies.
func TestCacheInclusionOfCosts(t *testing.T) {
	l3 := NewCache(CacheConfig{Name: "L3", Size: 1 << 20, Ways: 16, Latency: 42}, nil, 200)
	l2 := NewCache(CacheConfig{Name: "L2", Size: 1 << 16, Ways: 4, Latency: 12}, l3, 0)
	l1 := NewCache(CacheConfig{Name: "L1", Size: 1 << 13, Ways: 8, Latency: 4}, l2, 0)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		addr := HPA(rng.Intn(1<<21)) &^ HPA(LineSize-1)
		cost := l1.Access(addr, rng.Intn(2) == 0)
		switch cost {
		case 4, 4 + 12, 4 + 12 + 42, 4 + 12 + 42 + 200:
		default:
			t.Fatalf("impossible access cost %d", cost)
		}
	}
}
