package hw

import "fmt"

// PTFlags are x86-64-style page-table entry flags. Only the bits the
// simulator interprets are defined; the physical address occupies bits
// 12..51 as on real hardware.
type PTFlags uint64

// Page-table entry flag bits.
const (
	PTEPresent PTFlags = 1 << 0
	PTEWrite   PTFlags = 1 << 1
	PTEUser    PTFlags = 1 << 2
	PTEPS      PTFlags = 1 << 7 // large page (2 MiB at level 2)
	PTENX      PTFlags = 1 << 63

	pteAddrMask = 0x000ffffffffff000
)

// PageTable is a four-level guest page table translating VA to GPA. The
// table pages themselves live in simulated physical memory; the kernel that
// builds the table runs under the Rootkernel's identity-mapped base EPT, so
// table pages are addressed with GPA == HPA (exactly as the Subkernel does
// in the paper).
type PageTable struct {
	mem  *PhysMem
	Root GPA // CR3 value: guest-physical base of the PML4 page

	// pages counts table pages allocated for this tree (excluding Root's
	// shared mappings), for accounting in tests.
	pages int
}

// NewPageTable allocates an empty four-level page table.
func NewPageTable(mem *PhysMem) *PageTable {
	root := mem.MustAllocFrame()
	return &PageTable{mem: mem, Root: GPA(root), pages: 1}
}

// TablePages returns the number of table pages backing this tree.
func (pt *PageTable) TablePages() int { return pt.pages }

// Map establishes a 4 KiB translation va -> gpa with the given flags.
// Intermediate table pages are created as needed with Present|Write|User so
// leaf flags alone decide permissions, matching common kernel practice.
func (pt *PageTable) Map(va VA, gpa GPA, flags PTFlags) error {
	if va.PageOff() != 0 || gpa.PageOff() != 0 {
		return fmt.Errorf("hw: PageTable.Map unaligned va=%#x gpa=%#x", uint64(va), uint64(gpa))
	}
	table := HPA(pt.Root) // identity: table pages are at GPA == HPA
	for level := 4; level > 1; level-- {
		slot := table + HPA(8*va.Index(level))
		e := pt.mem.ReadU64(slot)
		if PTFlags(e)&PTEPresent == 0 {
			next := pt.mem.MustAllocFrame()
			pt.pages++
			e = uint64(next) | uint64(PTEPresent|PTEWrite|PTEUser)
			pt.mem.WriteU64(slot, e)
		}
		table = HPA(e & pteAddrMask)
	}
	slot := table + HPA(8*va.Index(1))
	pt.mem.WriteU64(slot, uint64(gpa)|uint64(flags|PTEPresent))
	return nil
}

// MapRange maps n contiguous pages starting at (va, gpa).
func (pt *PageTable) MapRange(va VA, gpa GPA, n int, flags PTFlags) error {
	for i := 0; i < n; i++ {
		off := VA(i * PageSize)
		if err := pt.Map(va+off, gpa+GPA(i*PageSize), flags); err != nil {
			return err
		}
	}
	return nil
}

// Unmap removes the 4 KiB translation for va if present.
func (pt *PageTable) Unmap(va VA) {
	table := HPA(pt.Root)
	for level := 4; level > 1; level-- {
		e := pt.mem.ReadU64(table + HPA(8*va.Index(level)))
		if PTFlags(e)&PTEPresent == 0 {
			return
		}
		table = HPA(e & pteAddrMask)
	}
	pt.mem.WriteU64(table+HPA(8*va.Index(1)), 0)
}

// Walk performs a software walk (no cost accounting) and returns the mapped
// GPA and leaf flags for va.
func (pt *PageTable) Walk(va VA) (GPA, PTFlags, bool) {
	table := HPA(pt.Root)
	for level := 4; level > 1; level-- {
		e := pt.mem.ReadU64(table + HPA(8*va.Index(level)))
		if PTFlags(e)&PTEPresent == 0 {
			return 0, 0, false
		}
		table = HPA(e & pteAddrMask)
	}
	e := pt.mem.ReadU64(table + HPA(8*va.Index(1)))
	if PTFlags(e)&PTEPresent == 0 {
		return 0, 0, false
	}
	return GPA(e&pteAddrMask) + GPA(va.PageOff()), PTFlags(e) &^ PTFlags(pteAddrMask), true
}
