package hw

import "testing"

func testCacheChain() (l1, l2, l3 *Cache) {
	l3 = NewCache(CacheConfig{Name: "L3", Size: 1 << 20, Ways: 16, Latency: 42}, nil, 200)
	l2 = NewCache(CacheConfig{Name: "L2", Size: 1 << 16, Ways: 4, Latency: 12}, l3, 0)
	l1 = NewCache(CacheConfig{Name: "L1", Size: 1 << 13, Ways: 8, Latency: 4}, l2, 0)
	return
}

func TestCacheMissThenHit(t *testing.T) {
	l1, _, _ := testCacheChain()
	cold := l1.Access(0x1000, false)
	if cold != 4+12+42+200 {
		t.Fatalf("cold miss cost %d, want %d", cold, 4+12+42+200)
	}
	warm := l1.Access(0x1000, false)
	if warm != 4 {
		t.Fatalf("warm hit cost %d, want 4", warm)
	}
	if l1.Stats.Hits != 1 || l1.Stats.Misses != 1 {
		t.Fatalf("stats %+v", l1.Stats)
	}
}

func TestCacheSameLineDifferentBytesHit(t *testing.T) {
	l1, _, _ := testCacheChain()
	l1.Access(0x1000, false)
	if got := l1.Access(0x103f, false); got != 4 {
		t.Fatalf("access within line cost %d, want 4", got)
	}
	if got := l1.Access(0x1040, false); got == 4 {
		t.Fatal("next line should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache with 2 sets: 4 lines of 64B => size 256.
	c := NewCache(CacheConfig{Name: "tiny", Size: 256, Ways: 2, Latency: 1}, nil, 100)
	// Three lines mapping to set 0 (stride = nsets*64 = 128).
	c.Access(0x0000, false)
	c.Access(0x0080, false)
	c.Access(0x0000, false) // refresh line 0
	c.Access(0x0100, false) // evicts 0x0080 (LRU)
	if !c.Contains(0x0000) {
		t.Fatal("recently used line evicted")
	}
	if c.Contains(0x0080) {
		t.Fatal("LRU line survived")
	}
	if !c.Contains(0x0100) {
		t.Fatal("newly filled line missing")
	}
}

func TestCacheSharedLowerLevel(t *testing.T) {
	l3 := NewCache(CacheConfig{Name: "L3", Size: 1 << 20, Ways: 16, Latency: 42}, nil, 200)
	l1a := NewCache(CacheConfig{Name: "a", Size: 1 << 13, Ways: 8, Latency: 4}, l3, 0)
	l1b := NewCache(CacheConfig{Name: "b", Size: 1 << 13, Ways: 8, Latency: 4}, l3, 0)
	l1a.Access(0x4000, false)
	// Core b misses L1 but hits the shared L3 warmed by core a.
	if got := l1b.Access(0x4000, false); got != 4+42 {
		t.Fatalf("cross-core L3 hit cost %d, want %d", got, 4+42)
	}
}

func TestCacheFlushAndResetStats(t *testing.T) {
	l1, _, _ := testCacheChain()
	l1.Access(0x1000, false)
	l1.Flush()
	if l1.Contains(0x1000) {
		t.Fatal("line survived flush")
	}
	l1.ResetStats()
	if l1.Stats != (CacheStats{}) {
		t.Fatalf("stats not reset: %+v", l1.Stats)
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	NewCache(CacheConfig{Name: "bad", Size: 3 * 64, Ways: 1, Latency: 1}, nil, 10)
}

func TestTLBInsertLookup(t *testing.T) {
	tlb := NewTLB(4)
	tag := TLBTag{VPID: 1, PCID: 2}
	tlb.Insert(tag, 0x100, 0x5000, PTEUser)
	pfn, flags, ok := tlb.Lookup(tag, 0x100)
	if !ok || pfn != 0x5000 || flags != PTEUser {
		t.Fatalf("lookup: %#x %#x %v", uint64(pfn), uint64(flags), ok)
	}
}

func TestTLBTagIsolation(t *testing.T) {
	tlb := NewTLB(8)
	a := TLBTag{VPID: 1, PCID: 1}
	b := TLBTag{VPID: 1, PCID: 2}
	tlb.Insert(a, 0x100, 0x5000, 0)
	if _, _, ok := tlb.Lookup(b, 0x100); ok {
		t.Fatal("entry visible under different PCID tag")
	}
	c := TLBTag{VPID: 1, PCID: 1, EPTP: 0x9000}
	if _, _, ok := tlb.Lookup(c, 0x100); ok {
		t.Fatal("entry visible under different EPTP tag")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2)
	tag := TLBTag{}
	tlb.Insert(tag, 1, 0x1000, 0)
	tlb.Insert(tag, 2, 0x2000, 0)
	tlb.Lookup(tag, 1) // refresh 1
	tlb.Insert(tag, 3, 0x3000, 0)
	if _, _, ok := tlb.Lookup(tag, 2); ok {
		t.Fatal("LRU entry 2 survived")
	}
	if _, _, ok := tlb.Lookup(tag, 1); !ok {
		t.Fatal("recently used entry 1 evicted")
	}
}

func TestTLBFlushTag(t *testing.T) {
	tlb := NewTLB(8)
	a := TLBTag{VPID: 1}
	b := TLBTag{VPID: 2}
	tlb.Insert(a, 1, 0x1000, 0)
	tlb.Insert(b, 1, 0x2000, 0)
	tlb.FlushTag(a)
	if _, _, ok := tlb.Lookup(a, 1); ok {
		t.Fatal("flushed tag survived")
	}
	if _, _, ok := tlb.Lookup(b, 1); !ok {
		t.Fatal("other tag flushed")
	}
	tlb.FlushAll()
	if tlb.Len() != 0 {
		t.Fatal("FlushAll left entries")
	}
}

func TestTLBUpdateInPlace(t *testing.T) {
	tlb := NewTLB(2)
	tag := TLBTag{}
	tlb.Insert(tag, 1, 0x1000, 0)
	tlb.Insert(tag, 1, 0x9000, PTEWrite)
	if tlb.Len() != 1 {
		t.Fatalf("duplicate insert grew TLB to %d", tlb.Len())
	}
	pfn, flags, _ := tlb.Lookup(tag, 1)
	if pfn != 0x9000 || flags != PTEWrite {
		t.Fatal("in-place update lost")
	}
}
