package hw

import (
	"fmt"

	"skybridge/internal/obs"
)

// Mode is the CPU privilege mode (the x86 ring, collapsed to the two levels
// that matter here).
type Mode int

// Privilege modes.
const (
	ModeUser   Mode = iota // ring 3
	ModeKernel             // ring 0
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeUser {
		return "user"
	}
	return "kernel"
}

// PageFault is a guest page-table translation failure, delivered to the
// (Sub)kernel like a #PF exception.
type PageFault struct {
	VA     VA
	Access Access
	Mode   Mode
}

// Error implements the error interface.
func (f *PageFault) Error() string {
	return fmt.Sprintf("page fault: %s of va %#x in %s mode", f.Access, uint64(f.VA), f.Mode)
}

// CPUCounters are the per-core event counters an experiment can sample,
// standing in for the Intel PMU the paper uses for Table 1.
type CPUCounters struct {
	Instructions uint64 // explicit Compute/instruction charges
	DataAccesses uint64
	CodeFetches  uint64
	PageWalks    uint64 // guest page-table walks (TLB misses serviced)
	EPTWalkReads uint64 // EPT entry reads performed during walks
	Syscalls     uint64
	VMFuncs      uint64
}

// CPU is one simulated core. All operations advance Clock by their cycle
// cost; memory operations additionally move data and update the cache/TLB
// models.
type CPU struct {
	ID   int
	mach *Machine

	// Clock is the core-local cycle counter (the simulated TSC).
	Clock uint64

	Mode Mode
	CR3  GPA
	// PCID tags TLB entries per address space, so CR3 writes do not flush
	// (the paper measures the 186-cycle switch "with PCID enabled").
	PCID uint16
	// VPID tags TLB entries per virtual CPU so VMFUNC does not flush.
	VPID uint16

	// NonRoot is true once the Rootkernel has downgraded this core to
	// VMX non-root mode. VMFUNC is only legal in non-root mode.
	NonRoot bool
	VMCS    *VMCS
	ept     *EPT // active EPT; nil when running natively or in root mode

	L1I, L1D, L2 *Cache
	ITLB, DTLB   *TLB

	Counters CPUCounters

	// Trace is this core's trace track; nil disables tracing. Event
	// recording only reads Clock — it never advances it and never touches
	// the cache/TLB models, so tracing cannot perturb measured cycles.
	Trace *obs.CoreTrace

	// FlowID, when nonzero, tags charged crossing operations (SendIPI,
	// hypervisor EPTP installs) with a causal-flow step so the trace can
	// stitch one call's journey across cores. Host-side annotation only:
	// it is written around instrumented regions, read only when Trace is
	// attached, and never observable to simulated code.
	FlowID uint64

	// Host-side scratch state (never observable in the simulation).
	// eptTrace is the reused EPT walk-trace buffer; walkRec collects the
	// cache charges of an in-progress walk for the walk memo while
	// recording is set (see hostmemo.go). blockCharge, snapshotted at
	// machine construction, selects burst-wise cache charging
	// (blockcharge.go).
	eptTrace    []HPA
	walkRec     []memoCharge
	recording   bool
	blockCharge bool
}

// Machine returns the machine this core belongs to.
func (c *CPU) Machine() *Machine { return c.mach }

// EPT returns the currently active EPT (nil when running natively).
func (c *CPU) EPT() *EPT { return c.ept }

// SetEPT installs an EPT directly. Only the Rootkernel (root mode) may do
// this; guests must go through VMFunc.
func (c *CPU) SetEPT(e *EPT) { c.ept = e }

// Tick advances the core clock by n cycles of pure computation.
func (c *CPU) Tick(n uint64) {
	c.Clock += n
	c.Counters.Instructions += n
}

// tlbTag returns the tag new TLB entries are filled with in the current
// translation context.
func (c *CPU) tlbTag() TLBTag {
	tag := TLBTag{VPID: c.VPID, PCID: c.PCID}
	if c.ept != nil {
		tag.EPTP = c.ept.Root
	}
	return tag
}

// resolveGPA translates a guest-physical address to host-physical, charging
// one L1D access per EPT entry read, and returns the EPT leaf permissions
// of the resolved page (EPTAll with no EPT active, where GPA == HPA).
func (c *CPU) resolveGPA(g GPA, acc Access) (HPA, EPTFlags, error) {
	if c.ept == nil {
		if uint64(g) >= c.mach.Mem.Size() {
			return 0, 0, &EPTViolation{GPA: g, Access: acc, Level: 4}
		}
		return HPA(g), EPTAll, nil
	}
	hpa, trace, leaf, v := c.ept.TranslateInto(g, acc, c.eptTrace[:0])
	c.eptTrace = trace[:0] // keep the (possibly grown) buffer for reuse
	for _, slot := range trace {
		c.Clock += c.L1D.Access(slot, false)
		c.Counters.EPTWalkReads++
		if c.recording {
			c.walkRec = append(c.walkRec, memoCharge{slot: slot, eptRead: true})
		}
	}
	if v != nil {
		return 0, 0, c.raiseEPTViolation(v)
	}
	return hpa, leaf, nil
}

// raiseEPTViolation packages an EPT violation as a VM exit and dispatches
// it to the machine's exit handler (the Rootkernel).
func (c *CPU) raiseEPTViolation(v *EPTViolation) error {
	// The handler may run arbitrary kernel code (including nested walks);
	// abandon any in-progress walk recording rather than corrupt it.
	c.recording = false
	return c.mach.deliverExit(c, &VMExit{Reason: ExitEPTViolation, Violation: v})
}

// walkGuest performs a full two-dimensional page walk for va: four guest
// page-table levels, each entry read through the EPT, charging cache
// accesses for every entry touched. On success it returns the host-physical
// address of the page and the guest leaf flags, and fills the TLB.
//
// When the machine has a host-side walk memo, a memoized walk is served by
// replaying its recorded charge sequence through the live cache model —
// identical slots in identical order, so clock, counters, and cache state
// evolve exactly as a re-executed walk (see hostmemo.go). Permissions are
// re-checked against the current access and mode on every hit; a would-be
// fault always takes the real walk so fault charging stays authoritative.
func (c *CPU) walkGuest(va VA, acc Access, tlb *TLB) (HPA, PTFlags, error) {
	memo := c.mach.memo
	var eptp HPA
	if c.ept != nil {
		eptp = c.ept.Root
	}
	if memo != nil {
		if m := memo.lookup(c.CR3, eptp, va.PageNum()); m != nil {
			if checkPTPerms(m.flags, acc, c.Mode, va) == nil && m.eptLeaf&eptNeed(acc) != 0 {
				memo.noteHit()
				c.Counters.PageWalks++
				for _, ch := range m.charges {
					c.Clock += c.L1D.Access(ch.slot, false)
					if ch.eptRead {
						c.Counters.EPTWalkReads++
					}
				}
				tlb.Insert(c.tlbTag(), va.PageNum(), m.pageBase, m.flags)
				return m.pageBase, m.flags, nil
			}
			memo.Stats.PermFallbacks++
		} else {
			memo.Stats.Misses++
		}
		if memo.shouldStore() {
			c.walkRec = c.walkRec[:0]
			c.recording = true
		}
	}

	c.Counters.PageWalks++
	table := GPA(c.CR3)
	for level := 4; level > 1; level-- {
		entryGPA := table + GPA(8*va.Index(level))
		entryHPA, _, err := c.resolveGPA(entryGPA, AccessRead)
		if err != nil {
			c.recording = false
			return 0, 0, err
		}
		c.Clock += c.L1D.Access(entryHPA, false)
		if c.recording {
			c.walkRec = append(c.walkRec, memoCharge{slot: entryHPA})
		}
		e := c.mach.Mem.ReadU64(entryHPA)
		if PTFlags(e)&PTEPresent == 0 {
			c.recording = false
			return 0, 0, &PageFault{VA: va, Access: acc, Mode: c.Mode}
		}
		table = GPA(e & pteAddrMask)
	}
	entryGPA := table + GPA(8*va.Index(1))
	entryHPA, _, err := c.resolveGPA(entryGPA, AccessRead)
	if err != nil {
		c.recording = false
		return 0, 0, err
	}
	c.Clock += c.L1D.Access(entryHPA, false)
	if c.recording {
		c.walkRec = append(c.walkRec, memoCharge{slot: entryHPA})
	}
	e := c.mach.Mem.ReadU64(entryHPA)
	flags := PTFlags(e) &^ PTFlags(pteAddrMask)
	if flags&PTEPresent == 0 {
		c.recording = false
		return 0, 0, &PageFault{VA: va, Access: acc, Mode: c.Mode}
	}
	if err := checkPTPerms(flags, acc, c.Mode, va); err != nil {
		c.recording = false
		return 0, 0, err
	}
	// Translate the data page itself through the EPT to get the frame.
	pageHPA, eptLeaf, err := c.resolveGPA(GPA(e&pteAddrMask), acc)
	if err != nil {
		c.recording = false
		return 0, 0, err
	}
	tlb.Insert(c.tlbTag(), va.PageNum(), pageHPA.PageBase(), flags)
	if memo != nil && c.recording {
		// Record the walk outcome and watch every frame it read, so any
		// later write into a guest PT page or EPT table page (or a recycle
		// of one) drops the memo before it could go stale.
		c.recording = false
		charges := append([]memoCharge(nil), c.walkRec...)
		memo.store(GPA(c.CR3), eptp, va.PageNum(), &memoEntry{
			charges:  charges,
			pageBase: pageHPA.PageBase(),
			flags:    flags,
			eptLeaf:  eptLeaf,
		})
		for _, ch := range charges {
			c.mach.Mem.WatchFrame(ch.slot)
		}
	}
	return pageHPA.PageBase(), flags, nil
}

func checkPTPerms(flags PTFlags, acc Access, mode Mode, va VA) error {
	if mode == ModeUser && flags&PTEUser == 0 {
		return &PageFault{VA: va, Access: acc, Mode: mode}
	}
	if acc == AccessWrite && flags&PTEWrite == 0 {
		return &PageFault{VA: va, Access: acc, Mode: mode}
	}
	if acc == AccessExec && flags&PTENX != 0 {
		return &PageFault{VA: va, Access: acc, Mode: mode}
	}
	return nil
}

// translate resolves va for the given access kind through the chosen TLB,
// falling back to a charged page walk on a miss.
func (c *CPU) translate(va VA, acc Access, tlb *TLB) (HPA, error) {
	if pfn, flags, ok := tlb.Lookup(c.tlbTag(), va.PageNum()); ok {
		if err := checkPTPerms(flags, acc, c.Mode, va); err == nil {
			return pfn + HPA(va.PageOff()), nil
		}
		// Permission mismatch: fall through to a full walk, which will
		// raise the authoritative fault.
	}
	base, _, err := c.walkGuest(va, acc, tlb)
	if err != nil {
		return 0, err
	}
	return base + HPA(va.PageOff()), nil
}

// ReadData performs a charged data read of n bytes at va into buf (buf may
// be nil to model the access without observing the data).
func (c *CPU) ReadData(va VA, buf []byte, n int) error {
	return c.accessData(va, buf, n, AccessRead)
}

// WriteData performs a charged data write of n bytes at va from buf (buf
// may be nil to model the access pattern only; the memory is then zeroed).
func (c *CPU) WriteData(va VA, buf []byte, n int) error {
	return c.accessData(va, buf, n, AccessWrite)
}

func (c *CPU) accessData(va VA, buf []byte, n int, acc Access) error {
	off := 0
	for off < n {
		// Length remaining within this page.
		chunk := int(PageSize - (va + VA(off)).PageOff())
		if chunk > n-off {
			chunk = n - off
		}
		hpa, err := c.translate(va+VA(off), acc, c.DTLB)
		if err != nil {
			return err
		}
		// Charge one cache access per line spanned.
		first := hpa.LineBase()
		last := (hpa + HPA(chunk) - 1).LineBase()
		if c.blockCharge {
			n := int((last-first)>>LineShift) + 1
			c.Clock += c.L1D.AccessRange(first, n, acc == AccessWrite)
			c.Counters.DataAccesses += uint64(n)
		} else {
			for line := first; line <= last; line += LineSize {
				c.Clock += c.L1D.Access(line, acc == AccessWrite)
				c.Counters.DataAccesses++
			}
		}
		switch acc {
		case AccessRead:
			if buf != nil {
				c.mach.Mem.Read(hpa, buf[off:off+chunk])
			}
		case AccessWrite:
			if buf != nil {
				c.mach.Mem.Write(hpa, buf[off:off+chunk])
			} else {
				c.mach.Mem.Write(hpa, zeroPage[:chunk])
			}
		}
		off += chunk
	}
	return nil
}

// zeroPage backs nil-buffer modeled writes; it is only ever read from.
var zeroPage [PageSize]byte

// FetchCode performs a charged instruction fetch of n bytes at va through
// the instruction TLB and L1I, returning the bytes (for the decoder).
func (c *CPU) FetchCode(va VA, n int) ([]byte, error) {
	buf := make([]byte, n)
	if err := c.fetchCode(va, n, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// FetchCodeInto is FetchCode into a caller-provided buffer of len(buf)
// bytes, avoiding the per-fetch allocation on the decode hot path.
func (c *CPU) FetchCodeInto(va VA, buf []byte) error {
	return c.fetchCode(va, len(buf), buf)
}

// TouchCode models execution of code spanning [va, va+n) without decoding
// it: it charges instruction fetches line by line. Kernels use this to
// model the i-cache footprint of their IPC paths.
func (c *CPU) TouchCode(va VA, n int) error {
	return c.fetchCode(va, n, nil)
}

// fetchCode charges an instruction fetch of n bytes at va; with a non-nil
// buf it also copies the bytes out. The copy is host-side only, so a nil
// buf (TouchCode) charges identically.
func (c *CPU) fetchCode(va VA, n int, buf []byte) error {
	off := 0
	for off < n {
		chunk := int(PageSize - (va + VA(off)).PageOff())
		if chunk > n-off {
			chunk = n - off
		}
		hpa, err := c.translate(va+VA(off), AccessExec, c.ITLB)
		if err != nil {
			return err
		}
		first := hpa.LineBase()
		last := (hpa + HPA(chunk) - 1).LineBase()
		if c.blockCharge {
			n := int((last-first)>>LineShift) + 1
			c.Clock += c.L1I.AccessRange(first, n, false)
			c.Counters.CodeFetches += uint64(n)
		} else {
			for line := first; line <= last; line += LineSize {
				c.Clock += c.L1I.Access(line, false)
				c.Counters.CodeFetches++
			}
		}
		if buf != nil {
			c.mach.Mem.Read(hpa, buf[off:off+chunk])
		}
		off += chunk
	}
	return nil
}

// Syscall charges the SYSCALL instruction and enters kernel mode.
func (c *CPU) Syscall() {
	c.Clock += CostSYSCALL
	c.Counters.Syscalls++
	c.Mode = ModeKernel
	if c.Trace != nil {
		c.Trace.Complete(c.Clock-CostSYSCALL, CostSYSCALL, "SYSCALL", "hw")
	}
}

// Sysret charges the SYSRET instruction and returns to user mode.
func (c *CPU) Sysret() {
	c.Clock += CostSYSRET
	c.Mode = ModeUser
	if c.Trace != nil {
		c.Trace.Complete(c.Clock-CostSYSRET, CostSYSRET, "SYSRET", "hw")
	}
}

// Swapgs charges one SWAPGS instruction.
func (c *CPU) Swapgs() {
	c.Clock += CostSWAPGS
}

// WriteCR3 installs a new page-table root. With PCID enabled (always, in
// this model) the TLB is not flushed; entries are distinguished by tag.
func (c *CPU) WriteCR3(root GPA, pcid uint16) error {
	if c.Mode != ModeKernel {
		return fmt.Errorf("hw: CR3 write in user mode (#GP)")
	}
	c.Clock += CostWriteCR3
	if c.Trace != nil {
		c.Trace.Complete(c.Clock-CostWriteCR3, CostWriteCR3, "WriteCR3", "hw",
			obs.U("pcid", uint64(pcid)))
	}
	if c.NonRoot && c.VMCS != nil && c.VMCS.Controls.ExitOnCR3Write {
		if err := c.mach.deliverExit(c, &VMExit{Reason: ExitCR3Write}); err != nil {
			return err
		}
	}
	c.CR3 = root
	c.PCID = pcid
	// Host-side note: the walk memo is deliberately NOT touched here. Its
	// entries are keyed by root and stay valid until the frames they were
	// derived from change, which the PhysMem dirty watch tracks; dropping
	// per-root state on CR3 loads thrashed the memo on kernels that switch
	// CR3 on every IPC (see hostmemo.go).
	return nil
}

// VMFunc executes VMFUNC(fn, index): EPTP switching when fn == 0. It is
// legal from both user and kernel mode in non-root operation, costs 134
// cycles, and — with VPID enabled — flushes nothing. Selecting an invalid
// index or an empty EPTP slot raises a VM exit, so a malicious index cannot
// escape the configured list.
func (c *CPU) VMFunc(fn int, index int) error {
	c.Clock += CostVMFUNC
	c.Counters.VMFuncs++
	if c.Trace != nil {
		c.Trace.Complete(c.Clock-CostVMFUNC, CostVMFUNC, "VMFUNC", "hw",
			obs.U("fn", uint64(fn)), obs.U("index", uint64(index)))
	}
	if !c.NonRoot {
		return fmt.Errorf("hw: VMFUNC outside VMX non-root mode (#UD)")
	}
	if fn != 0 {
		return c.mach.deliverExit(c, &VMExit{Reason: ExitVMFuncFail, Index: index})
	}
	if index < 0 || index >= EPTPListSize || c.VMCS.EPTPList[index] == nil {
		return c.mach.deliverExit(c, &VMExit{Reason: ExitVMFuncFail, Index: index})
	}
	c.VMCS.CurrentIndex = index
	c.ept = c.VMCS.EPTPList[index]
	return nil
}

// CPUID executes the CPUID instruction, which unconditionally exits in
// non-root mode.
func (c *CPU) CPUID() error {
	c.Tick(30)
	if c.NonRoot {
		return c.mach.deliverExit(c, &VMExit{Reason: ExitCPUID})
	}
	return nil
}

// VMCall issues a hypercall to the Rootkernel and returns its result.
func (c *CPU) VMCall(call *Hypercall) (uint64, error) {
	if !c.NonRoot {
		return 0, fmt.Errorf("hw: VMCALL outside VMX non-root mode")
	}
	if err := c.mach.deliverExit(c, &VMExit{Reason: ExitVMCall, Hypercall: call}); err != nil {
		return 0, err
	}
	if call.Err != nil {
		return 0, call.Err
	}
	return call.Ret, nil
}

// Interrupt models delivery of a local external interrupt. Under
// SkyBridge's exit-less configuration interrupts vector directly to the
// non-root kernel; a trap-everything hypervisor takes a VM exit first.
func (c *CPU) Interrupt() error {
	c.Clock += CostInterrupt
	c.Mode = ModeKernel
	if c.NonRoot && c.VMCS != nil && c.VMCS.Controls.ExitOnExternalIntr {
		return c.mach.deliverExit(c, &VMExit{Reason: ExitExternalInterrupt})
	}
	return nil
}
