// Package hw implements the simulated hardware substrate that SkyBridge runs
// on: physical memory, x86-64-style four-level page tables, extended page
// tables (EPT) with 4 KiB / 2 MiB / 1 GiB mappings, VPID-tagged TLBs, a
// set-associative cache hierarchy, and per-core CPU models that charge the
// cycle costs measured in the paper (Table 2: SYSCALL 82, SWAPGS 26,
// SYSRET 75, CR3 write 186, VMFUNC 134, IPI 1913).
//
// The substrate is deliberately structural rather than purely analytic:
// address translation really walks simulated page-table pages held in
// simulated physical memory, EPT violations really occur when a guest
// physical address has no mapping, and VMFUNC really swaps the active EPT
// root from a 512-entry EPTP list held in a VMCS. This is what lets the
// layers above (Rootkernel, Subkernel, SkyBridge trampoline) reproduce the
// paper's mechanisms rather than just its constants.
package hw

import "fmt"

// Fundamental translation granularities. These mirror x86-64.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KiB
	PageMask  = PageSize - 1

	Page2MShift = 21
	Page2MSize  = 1 << Page2MShift
	Page1GShift = 30
	Page1GSize  = 1 << Page1GShift

	LineShift = 6
	LineSize  = 1 << LineShift // 64-byte cache lines

	// EntriesPerTable is the number of 8-byte entries in one table page.
	EntriesPerTable = PageSize / 8
)

// VA is a guest virtual address.
type VA uint64

// GPA is a guest physical address: the address space the Subkernel
// (microkernel) believes is physical memory.
type GPA uint64

// HPA is a host physical address: the address space the Rootkernel
// (hypervisor) manages and the EPT translates into.
type HPA uint64

// PageNum returns the 4 KiB virtual page number of v.
func (v VA) PageNum() uint64 { return uint64(v) >> PageShift }

// PageOff returns the offset of v within its 4 KiB page.
func (v VA) PageOff() uint64 { return uint64(v) & PageMask }

// PageBase returns v rounded down to its 4 KiB page boundary.
func (v VA) PageBase() VA { return v &^ VA(PageMask) }

// Index returns the 9-bit page-table index of v at the given level.
// Level 4 is the root (PML4), level 1 is the leaf page table.
func (v VA) Index(level int) int {
	shift := PageShift + 9*(level-1)
	return int((uint64(v) >> shift) & 0x1ff)
}

// PageBase returns g rounded down to its 4 KiB page boundary.
func (g GPA) PageBase() GPA { return g &^ GPA(PageMask) }

// PageOff returns the offset of g within its 4 KiB page.
func (g GPA) PageOff() uint64 { return uint64(g) & PageMask }

// Index returns the 9-bit EPT index of g at the given level (4 = root).
func (g GPA) Index(level int) int {
	shift := PageShift + 9*(level-1)
	return int((uint64(g) >> shift) & 0x1ff)
}

// PageBase returns h rounded down to its 4 KiB page boundary.
func (h HPA) PageBase() HPA { return h &^ HPA(PageMask) }

// LineBase returns h rounded down to its cache-line boundary.
func (h HPA) LineBase() HPA { return h &^ HPA(LineSize-1) }

// Access describes the kind of memory access being translated, used for
// permission checks in both guest page tables and EPTs.
type Access int

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

// String implements fmt.Stringer.
func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return fmt.Sprintf("Access(%d)", int(a))
	}
}
