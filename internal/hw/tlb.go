package hw

import "skybridge/internal/obs"

// TLBTag identifies the translation context an entry belongs to. Real
// Skylake hardware tags combined-mapping TLB entries with (VPID, PCID,
// EPTP); we carry exactly those three components. Because entries are
// tagged, neither a CR3 write with PCID enabled nor a VMFUNC EPTP switch
// with VPID enabled needs to flush the TLB — the property SkyBridge's 134-
// cycle address-space switch depends on (paper §2.2).
type TLBTag struct {
	VPID uint16
	PCID uint16
	EPTP HPA // root of the EPT active when the entry was filled
}

// TLBStats are the observable counters of a TLB.
type TLBStats struct {
	Lookups uint64
	Hits    uint64
	Misses  uint64
	Flushes uint64
}

type tlbEntry struct {
	tag   TLBTag
	vpn   uint64
	pfn   HPA
	flags PTFlags
	lru   uint64
}

// TLB is a fully-associative, LRU-replaced translation cache keyed by
// (tag, virtual page number) and mapping to a host-physical frame.
//
// Host-side layout: resident entries live in one compact slice scanned
// linearly. For the 64–128 entry capacities modeled here this beats a hash
// map (no hashing on the miss path, no per-entry allocation). A small
// direct-mapped index caches the slot each (tag, vpn) was last found in, so
// a repeat lookup costs one hash and one compare instead of a scan; index
// entries are validated against the live entry on every probe, so
// evictions, flushes, and FlushTag compaction need no index maintenance.
// Slot order and the index are pure host-side state: hit/miss outcomes,
// stats, and LRU eviction decisions (driven by the unique lru stamps) are
// identical to a plain linear scan — keys are unique in the TLB, so a
// validated index hit finds exactly the entry the scan would.
type TLB struct {
	capacity int
	entries  []tlbEntry
	idx      []int32 // direct-mapped (tag, vpn) -> entry slot + 1; 0 = empty
	clock    uint64
	Stats    TLBStats

	// onFlush, when set, runs after every FlushAll/FlushTag. The machine
	// wires this to its host-side walk memo so that explicit TLB
	// invalidation also drops memoized walks (see hostmemo.go).
	onFlush func()
}

// tlbIdxBits sizes the direct-mapped lookup index.
const tlbIdxBits = 8

// tlbHash spreads (tag, vpn) pairs over the index (Fibonacci hashing).
func tlbHash(tag TLBTag, vpn uint64) int {
	key := vpn ^ uint64(tag.VPID)<<48 ^ uint64(tag.PCID)<<32 ^ uint64(tag.EPTP)<<12
	return int((key * 0x9E3779B97F4A7C15) >> (64 - tlbIdxBits))
}

// NewTLB creates a TLB with the given entry capacity.
func NewTLB(capacity int) *TLB {
	return &TLB{
		capacity: capacity,
		entries:  make([]tlbEntry, 0, capacity),
		idx:      make([]int32, 1<<tlbIdxBits),
	}
}

// Lookup returns the cached translation for (tag, vpn) if present.
func (t *TLB) Lookup(tag TLBTag, vpn uint64) (HPA, PTFlags, bool) {
	t.clock++
	t.Stats.Lookups++
	h := tlbHash(tag, vpn)
	// Index probe: validated against the live entry, so a stale slot (the
	// entry was evicted, flushed, or compacted away) simply falls through to
	// the scan.
	if ix := t.idx[h]; ix > 0 && int(ix) <= len(t.entries) {
		if e := &t.entries[ix-1]; e.vpn == vpn && e.tag == tag {
			t.Stats.Hits++
			e.lru = t.clock
			return e.pfn, e.flags, true
		}
	}
	for i := range t.entries {
		e := &t.entries[i]
		if e.vpn == vpn && e.tag == tag {
			t.Stats.Hits++
			e.lru = t.clock
			t.idx[h] = int32(i + 1)
			return e.pfn, e.flags, true
		}
	}
	t.Stats.Misses++
	return 0, 0, false
}

// Insert caches a translation, evicting the least recently used entry if
// the TLB is full.
func (t *TLB) Insert(tag TLBTag, vpn uint64, pfn HPA, flags PTFlags) {
	t.clock++
	for i := range t.entries {
		e := &t.entries[i]
		if e.vpn == vpn && e.tag == tag {
			e.pfn, e.flags, e.lru = pfn, flags, t.clock
			return
		}
	}
	if len(t.entries) >= t.capacity {
		victim := 0
		for i := 1; i < len(t.entries); i++ {
			if t.entries[i].lru < t.entries[victim].lru {
				victim = i
			}
		}
		t.entries[victim] = tlbEntry{tag: tag, vpn: vpn, pfn: pfn, flags: flags, lru: t.clock}
		t.idx[tlbHash(tag, vpn)] = int32(victim + 1)
		return
	}
	t.entries = append(t.entries, tlbEntry{tag: tag, vpn: vpn, pfn: pfn, flags: flags, lru: t.clock})
	t.idx[tlbHash(tag, vpn)] = int32(len(t.entries))
}

// FlushAll invalidates every entry (a CR3 write with PCID disabled, or an
// INVEPT).
func (t *TLB) FlushAll() {
	t.Stats.Flushes++
	t.entries = t.entries[:0]
	if t.onFlush != nil {
		t.onFlush()
	}
}

// FlushTag invalidates all entries with the given tag (INVVPID/INVPCID).
func (t *TLB) FlushTag(tag TLBTag) {
	t.Stats.Flushes++
	kept := t.entries[:0]
	for i := range t.entries {
		if t.entries[i].tag != tag {
			kept = append(kept, t.entries[i])
		}
	}
	t.entries = kept
	if t.onFlush != nil {
		t.onFlush()
	}
}

// Len returns the number of resident entries.
func (t *TLB) Len() int { return len(t.entries) }

// ResetStats zeroes the counters without invalidating entries.
func (t *TLB) ResetStats() { t.Stats = TLBStats{} }

// BindObs registers this TLB's counters with the registry under
// "<prefix>.lookups" etc. (e.g. prefix "cpu0.ITLB").
func (t *TLB) BindObs(r *obs.Registry, prefix string) {
	r.Bind(prefix+".lookups", &t.Stats.Lookups)
	r.Bind(prefix+".hits", &t.Stats.Hits)
	r.Bind(prefix+".misses", &t.Stats.Misses)
	r.Bind(prefix+".flushes", &t.Stats.Flushes)
}
