package hw

import "skybridge/internal/obs"

// TLBTag identifies the translation context an entry belongs to. Real
// Skylake hardware tags combined-mapping TLB entries with (VPID, PCID,
// EPTP); we carry exactly those three components. Because entries are
// tagged, neither a CR3 write with PCID enabled nor a VMFUNC EPTP switch
// with VPID enabled needs to flush the TLB — the property SkyBridge's 134-
// cycle address-space switch depends on (paper §2.2).
type TLBTag struct {
	VPID uint16
	PCID uint16
	EPTP HPA // root of the EPT active when the entry was filled
}

// TLBStats are the observable counters of a TLB.
type TLBStats struct {
	Lookups uint64
	Hits    uint64
	Misses  uint64
	Flushes uint64
}

type tlbKey struct {
	tag TLBTag
	vpn uint64
}

type tlbEntry struct {
	pfn   HPA
	flags PTFlags
	lru   uint64
}

// TLB is a fully-associative, LRU-replaced translation cache keyed by
// (tag, virtual page number) and mapping to a host-physical frame.
type TLB struct {
	capacity int
	entries  map[tlbKey]*tlbEntry
	clock    uint64
	Stats    TLBStats
}

// NewTLB creates a TLB with the given entry capacity.
func NewTLB(capacity int) *TLB {
	return &TLB{capacity: capacity, entries: make(map[tlbKey]*tlbEntry, capacity)}
}

// Lookup returns the cached translation for (tag, vpn) if present.
func (t *TLB) Lookup(tag TLBTag, vpn uint64) (HPA, PTFlags, bool) {
	t.clock++
	t.Stats.Lookups++
	e, ok := t.entries[tlbKey{tag, vpn}]
	if !ok {
		t.Stats.Misses++
		return 0, 0, false
	}
	t.Stats.Hits++
	e.lru = t.clock
	return e.pfn, e.flags, true
}

// Insert caches a translation, evicting the least recently used entry if
// the TLB is full.
func (t *TLB) Insert(tag TLBTag, vpn uint64, pfn HPA, flags PTFlags) {
	t.clock++
	k := tlbKey{tag, vpn}
	if e, ok := t.entries[k]; ok {
		e.pfn, e.flags, e.lru = pfn, flags, t.clock
		return
	}
	if len(t.entries) >= t.capacity {
		var victim tlbKey
		var oldest uint64 = ^uint64(0)
		for k, e := range t.entries {
			if e.lru < oldest {
				oldest, victim = e.lru, k
			}
		}
		delete(t.entries, victim)
	}
	t.entries[k] = &tlbEntry{pfn: pfn, flags: flags, lru: t.clock}
}

// FlushAll invalidates every entry (a CR3 write with PCID disabled, or an
// INVEPT).
func (t *TLB) FlushAll() {
	t.Stats.Flushes++
	clear(t.entries)
}

// FlushTag invalidates all entries with the given tag (INVVPID/INVPCID).
func (t *TLB) FlushTag(tag TLBTag) {
	t.Stats.Flushes++
	for k := range t.entries {
		if k.tag == tag {
			delete(t.entries, k)
		}
	}
}

// Len returns the number of resident entries.
func (t *TLB) Len() int { return len(t.entries) }

// ResetStats zeroes the counters without invalidating entries.
func (t *TLB) ResetStats() { t.Stats = TLBStats{} }

// BindObs registers this TLB's counters with the registry under
// "<prefix>.lookups" etc. (e.g. prefix "cpu0.ITLB").
func (t *TLB) BindObs(r *obs.Registry, prefix string) {
	r.Bind(prefix+".lookups", &t.Stats.Lookups)
	r.Bind(prefix+".hits", &t.Stats.Hits)
	r.Bind(prefix+".misses", &t.Stats.Misses)
	r.Bind(prefix+".flushes", &t.Stats.Flushes)
}
