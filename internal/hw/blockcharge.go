package hw

// Block-level charge fast path.
//
// accessData and fetchCode charge one cache access per line spanned; bulk
// operations (payload copies, TouchCode over multi-KB code paths) hit the
// same L1 sets in ascending line order, making Cache.Access the hottest
// function in the whole simulator. With the block charge enabled, each
// per-page chunk issues one Cache.AccessRange call instead of a per-line
// loop. AccessRange is exactly state-equivalent to the loop (see cache.go),
// so simulated clocks, counters, LRU stamps, and eviction decisions are
// byte-identical either way; only host wall-clock changes.
//
// The toggle rides the same flag family as the other host fast paths
// (skybench -superblock on|off) and is snapshotted per CPU at machine
// construction, mirroring SetHostFastPaths.

// blockCharge gates the block-level charge fast path in machines
// constructed afterwards.
var blockCharge = true

// SetBlockCharge enables or disables block-level cache charging for
// machines constructed afterwards, returning the previous setting.
func SetBlockCharge(on bool) bool {
	prev := blockCharge
	blockCharge = on
	return prev
}

// BlockCharge reports whether new machines charge cache bursts block-wise.
func BlockCharge() bool { return blockCharge }
