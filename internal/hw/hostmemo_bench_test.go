package hw

import "testing"

// benchMachine builds a machine with a deliberately tiny DTLB so that
// cycling over pages misses the TLB on every access, exposing the walk
// path (memoized or not) rather than the TLB hit path.
func benchMachine(b *testing.B, fastPaths bool) (*Machine, *CPU) {
	b.Helper()
	prev := SetHostFastPaths(fastPaths)
	b.Cleanup(func() { SetHostFastPaths(prev) })
	m := NewMachine(MachineConfig{Cores: 1, MemBytes: 1 << 26, DTLBEntries: 4})
	cpu := m.Cores[0]
	pt := NewPageTable(m.Mem)
	cpu.CR3 = pt.Root
	cpu.Mode = ModeUser
	for i := 0; i < 16; i++ {
		if err := pt.Map(VA(0x40_0000+i*PageSize), GPA(0x8000+i*PageSize), PTEUser|PTEWrite); err != nil {
			b.Fatal(err)
		}
	}
	return m, cpu
}

// BenchmarkTranslateTLBHit measures the dominant fast path: a data access
// whose translation is resident in the DTLB.
func BenchmarkTranslateTLBHit(b *testing.B) {
	_, cpu := benchMachine(b, true)
	var buf [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cpu.ReadData(0x40_0000, buf[:], 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalkMemoHit measures a TLB-missing access served by the host
// walk memo (16 pages cycled through a 4-entry TLB: every access walks).
func BenchmarkWalkMemoHit(b *testing.B) {
	m, cpu := benchMachine(b, true)
	var buf [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := VA(0x40_0000 + (i%16)*PageSize)
		if err := cpu.ReadData(va, buf[:], 8); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := m.HostMemoStats(); b.N > 64 && st.Hits == 0 {
		b.Fatal("benchmark loop produced no memo hits")
	}
}

// BenchmarkWalkNoMemo is the same TLB-missing access pattern with host
// fast paths disabled: every walk re-derives the full two-dimensional
// walk. The gap to BenchmarkWalkMemoHit is what the memo buys.
func BenchmarkWalkNoMemo(b *testing.B) {
	_, cpu := benchMachine(b, false)
	var buf [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := VA(0x40_0000 + (i%16)*PageSize)
		if err := cpu.ReadData(va, buf[:], 8); err != nil {
			b.Fatal(err)
		}
	}
}
