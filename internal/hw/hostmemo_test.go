package hw

import (
	"bytes"
	"testing"
)

// withFastPaths forces the host fast-path toggle for the duration of a test
// and restores the previous setting afterwards.
func withFastPaths(t *testing.T, on bool) {
	t.Helper()
	prev := SetHostFastPaths(on)
	t.Cleanup(func() { SetHostFastPaths(prev) })
}

// newMemoMachine builds a small machine (tiny DTLB so walks are easy to
// force) with the walk memo enabled, plus a mapped scratch page table.
func newMemoMachine(t *testing.T) (*Machine, *PageTable) {
	t.Helper()
	withFastPaths(t, true)
	m := NewMachine(MachineConfig{Cores: 2, MemBytes: 1 << 26, DTLBEntries: 4})
	if m.memo == nil {
		t.Fatal("machine built without walk memo despite fast paths on")
	}
	pt := NewPageTable(m.Mem)
	for _, cpu := range m.Cores {
		cpu.CR3 = pt.Root
	}
	return m, pt
}

// TestWalkMemoHitAcrossCores: a walk on core 0 memoizes the translation;
// core 1's cold TLB misses but the memo serves the walk, and the data read
// through it is correct.
func TestWalkMemoHitAcrossCores(t *testing.T) {
	m, pt := newMemoMachine(t)
	if err := pt.Map(0x40_0000, 0x8000, PTEUser|PTEWrite); err != nil {
		t.Fatal(err)
	}
	msg := []byte("memoized")
	m.Mem.Write(0x8000, msg)

	c0, c1 := m.Cores[0], m.Cores[1]
	c0.Mode = ModeUser
	c1.Mode = ModeUser
	if err := c0.ReadData(0x40_0000, nil, 1); err != nil {
		t.Fatal(err)
	}
	st := m.HostMemoStats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after first walk: %+v", st)
	}
	if m.HostMemoEntries() != 1 {
		t.Fatalf("entries = %d, want 1", m.HostMemoEntries())
	}

	got := make([]byte, len(msg))
	if err := c1.ReadData(0x40_0000, got, len(got)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q through memo, want %q", got, msg)
	}
	st = m.HostMemoStats()
	if st.Hits != 1 {
		t.Fatalf("core 1 walk not served by memo: %+v", st)
	}
	if c1.Counters.PageWalks != 1 {
		t.Fatalf("memo hit must still count as a page walk, got %d", c1.Counters.PageWalks)
	}
}

// TestWalkMemoStalePTEEdit: editing a guest PTE (remapping a VA to a new
// frame) must invalidate the memo — a later walk of the same VA on a
// TLB-cold core has to see the new frame, never the memoized one.
func TestWalkMemoStalePTEEdit(t *testing.T) {
	m, pt := newMemoMachine(t)
	if err := pt.Map(0x40_0000, 0x8000, PTEUser|PTEWrite); err != nil {
		t.Fatal(err)
	}
	m.Mem.Write(0x8000, []byte{0xAA})
	m.Mem.Write(0x9000, []byte{0xBB})

	c0, c1 := m.Cores[0], m.Cores[1]
	c0.Mode = ModeUser
	c1.Mode = ModeUser
	var b [1]byte
	if err := c0.ReadData(0x40_0000, b[:], 1); err != nil || b[0] != 0xAA {
		t.Fatalf("before edit: %v %#x", err, b[0])
	}

	// Remap the VA to the 0x9000 frame. The PTE write lands in a watched
	// page-table frame, so the memo must drop everything.
	if err := pt.Map(0x40_0000, 0x9000, PTEUser|PTEWrite); err != nil {
		t.Fatal(err)
	}
	if n := m.HostMemoEntries(); n != 0 {
		t.Fatalf("memo still holds %d entries after PTE edit", n)
	}
	if st := m.HostMemoStats(); st.Invalidations == 0 {
		t.Fatalf("PTE edit did not count an invalidation: %+v", st)
	}

	// Core 1 never cached the old translation in its TLB, so a stale result
	// here could only come from the memo.
	if err := c1.ReadData(0x40_0000, b[:], 1); err != nil || b[0] != 0xBB {
		t.Fatalf("after edit: err=%v got %#x, want 0xBB (stale memo hit?)", err, b[0])
	}
}

// TestWalkMemoCR3Reload: CR3 reloads must never surface stale data. The
// memo is keyed by root, so a reload to a different page table resolves
// through that table's frames; reloading back may legitimately reuse the
// memoized walk — but only until the underlying page-table frames change.
func TestWalkMemoCR3Reload(t *testing.T) {
	m, pt1 := newMemoMachine(t)
	pt2 := NewPageTable(m.Mem)
	if err := pt1.Map(0x40_0000, 0x8000, PTEUser); err != nil {
		t.Fatal(err)
	}
	if err := pt2.Map(0x40_0000, 0x9000, PTEUser); err != nil {
		t.Fatal(err)
	}
	m.Mem.Write(0x8000, []byte{0xA1})
	m.Mem.Write(0x9000, []byte{0xB2})

	c0 := m.Cores[0]
	c0.Mode = ModeUser
	var b [1]byte
	if err := c0.ReadData(0x40_0000, b[:], 1); err != nil || b[0] != 0xA1 {
		t.Fatalf("under pt1: err=%v got %#x", err, b[0])
	}
	if m.HostMemoEntries() != 1 {
		t.Fatalf("entries = %d, want 1", m.HostMemoEntries())
	}

	// Reload CR3 with a different page table, on a fresh PCID so the TLB
	// cannot answer: the same VA must resolve through pt2, never through the
	// entry memoized under pt1's root.
	c0.Mode = ModeKernel
	if err := c0.WriteCR3(pt2.Root, 2); err != nil {
		t.Fatal(err)
	}
	c0.Mode = ModeUser
	if err := c0.ReadData(0x40_0000, b[:], 1); err != nil || b[0] != 0xB2 {
		t.Fatalf("after CR3 switch: err=%v got %#x, want 0xB2 (stale memo hit?)", err, b[0])
	}

	// Switching back may reuse pt1's memoized walk — its frames are
	// unchanged, so that is correct — and must serve the right data.
	c0.Mode = ModeKernel
	if err := c0.WriteCR3(pt1.Root, 3); err != nil {
		t.Fatal(err)
	}
	c0.Mode = ModeUser
	hits := m.HostMemoStats().Hits
	if err := c0.ReadData(0x40_0000, b[:], 1); err != nil || b[0] != 0xA1 {
		t.Fatalf("back on pt1: err=%v got %#x", err, b[0])
	}
	if m.HostMemoStats().Hits != hits+1 {
		t.Fatalf("switch-back walk not served by memo: %+v", m.HostMemoStats())
	}

	// ...but only until pt1's frames change: after a PTE edit the reloaded
	// root must see the new mapping.
	if err := pt1.Map(0x40_0000, 0x9000, PTEUser); err != nil {
		t.Fatal(err)
	}
	if n := m.HostMemoEntries(); n != 0 {
		t.Fatalf("memo holds %d entries after PTE edit", n)
	}
	c0.Mode = ModeKernel
	if err := c0.WriteCR3(pt1.Root, 4); err != nil {
		t.Fatal(err)
	}
	c0.Mode = ModeUser
	if err := c0.ReadData(0x40_0000, b[:], 1); err != nil || b[0] != 0xB2 {
		t.Fatalf("after pt1 edit: err=%v got %#x, want 0xB2 (stale memo hit?)", err, b[0])
	}
}

// TestWalkMemoThrashCooldown: wipes that never served a hit escalate an
// exponential store cooldown (so thrashy phases stop paying store costs),
// and a single served hit resets it.
func TestWalkMemoThrashCooldown(t *testing.T) {
	m := newHostMemo()
	e := &memoEntry{}
	want := uint64(64)
	for i := 0; i < 3; i++ {
		m.skipBudget = 0 // drain the pending cooldown so the store lands
		m.store(1, 0, uint64(i), e)
		m.invalidateAll()
		if m.skipBudget != want {
			t.Fatalf("fruitless wipe %d: skipBudget = %d, want %d", i, m.skipBudget, want)
		}
		want *= 2
	}
	if m.shouldStore() {
		t.Fatal("store allowed during cooldown")
	}
	if m.Stats.StoreSkips == 0 {
		t.Fatal("cooldown skip not counted")
	}
	// A served hit resets the escalation on the next wipe.
	m.skipBudget = 0
	m.store(1, 0, 99, e)
	m.noteHit()
	m.invalidateAll()
	if m.skipBudget != 0 || m.penalty != 0 {
		t.Fatalf("fruitful wipe kept cooldown: budget=%d penalty=%d", m.skipBudget, m.penalty)
	}
	// The escalation caps out instead of growing unbounded.
	m.penalty = memoCooldownMax
	m.store(1, 0, 7, e)
	m.invalidateAll()
	if m.skipBudget != memoCooldownMax {
		t.Fatalf("budget exceeded cap: %d", m.skipBudget)
	}
}

// TestWalkMemoTLBShootdown: an explicit TLB flush (the model's shootdown /
// IPI invalidation primitive) must also drop the memo, machine-wide, so no
// memoized walk can outlive an invalidation the OS requested.
func TestWalkMemoTLBShootdown(t *testing.T) {
	m, pt := newMemoMachine(t)
	if err := pt.Map(0x40_0000, 0x8000, PTEUser); err != nil {
		t.Fatal(err)
	}
	c0, c1 := m.Cores[0], m.Cores[1]
	c0.Mode = ModeUser
	c1.Mode = ModeUser
	if err := c0.ReadData(0x40_0000, nil, 1); err != nil {
		t.Fatal(err)
	}
	if m.HostMemoEntries() != 1 {
		t.Fatal("walk not memoized")
	}
	// A served hit on the other core (so the flush below is a "fruitful"
	// wipe and does not arm the thrash cooldown).
	if err := c1.ReadData(0x40_0000, nil, 1); err != nil {
		t.Fatal(err)
	}
	// Shootdown arrives on the *other* core: any core's flush must kill the
	// shared memo.
	c1.DTLB.FlushAll()
	if n := m.HostMemoEntries(); n != 0 {
		t.Fatalf("memo survived a TLB shootdown with %d entries", n)
	}
	inval := m.HostMemoStats().Invalidations
	if inval == 0 {
		t.Fatal("shootdown did not count an invalidation")
	}
	// FlushTag must invalidate too. Flush core 0's TLB first (c0 still has
	// the entry cached) so the next read walks and repopulates the memo.
	c0.DTLB.FlushAll()
	if err := c0.ReadData(0x40_0000, nil, 1); err != nil {
		t.Fatal(err)
	}
	if m.HostMemoEntries() == 0 {
		t.Fatal("memo not repopulated")
	}
	inval = m.HostMemoStats().Invalidations
	c0.DTLB.FlushTag(c0.tlbTag())
	if m.HostMemoEntries() != 0 {
		t.Fatal("memo survived a tagged TLB flush")
	}
	if m.HostMemoStats().Invalidations <= inval {
		t.Fatal("tagged flush did not count an invalidation")
	}
}

// TestWalkMemoEPTPermissionDowngrade: after an EPT permission downgrade the
// next access must raise an EPT violation, not succeed from a memoized
// walk recorded under the old permissions.
func TestWalkMemoEPTPermissionDowngrade(t *testing.T) {
	withFastPaths(t, true)
	m := NewMachine(MachineConfig{Cores: 2, MemBytes: 1 << 26, DTLBEntries: 4})
	cpu := m.Cores[0]
	pt := NewPageTable(m.Mem)
	cpu.CR3 = pt.Root
	ept := NewEPT(m.Mem)
	if err := ept.MapIdentityRange(0, 1, Page1GSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	vmcs := &VMCS{}
	if err := vmcs.InstallEPTPList([]*EPT{ept}); err != nil {
		t.Fatal(err)
	}
	cpu.NonRoot = true
	cpu.VMCS = vmcs
	cpu.SetEPT(ept)

	if err := pt.Map(0x40_0000, 0x8000, PTEUser|PTEWrite); err != nil {
		t.Fatal(err)
	}
	cpu.Mode = ModeUser
	if err := cpu.WriteData(0x40_0000, []byte{1}, 1); err != nil {
		t.Fatal(err)
	}
	if m.HostMemoEntries() == 0 {
		t.Fatal("walk not memoized")
	}

	// Downgrade the data frame to read-only in the EPT. The remap edits EPT
	// table frames, which are watched, so the memo must drop.
	if _, err := ept.RemapGPA(0x8000, 0x8000, EPTRead); err != nil {
		t.Fatal(err)
	}
	var got *VMExit
	m.SetExitHandler(func(c *CPU, e *VMExit) error {
		got = e
		return e
	})
	// A TLB-cold core would walk; force this core cold the hard way by
	// touching enough other pages to evict the entry (capacity 4).
	for i := 0; i < 8; i++ {
		va := VA(0x50_0000 + i*PageSize)
		if err := pt.Map(va, GPA(0xA000+i*PageSize), PTEUser); err != nil {
			t.Fatal(err)
		}
		if err := cpu.ReadData(va, nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	err := cpu.WriteData(0x40_0000, []byte{2}, 1)
	if err == nil {
		t.Fatal("write after EPT downgrade succeeded (stale memoized walk?)")
	}
	if got == nil || got.Reason != ExitEPTViolation {
		t.Fatalf("exit %+v, err %v", got, err)
	}
}

// TestWalkMemoFrameRecycle: recycling a frame that backed a memoized walk
// (free then re-allocate, which zeroes it) must invalidate the memo.
func TestWalkMemoFrameRecycle(t *testing.T) {
	m, pt := newMemoMachine(t)
	if err := pt.Map(0x40_0000, 0x8000, PTEUser); err != nil {
		t.Fatal(err)
	}
	c0 := m.Cores[0]
	c0.Mode = ModeUser
	if err := c0.ReadData(0x40_0000, nil, 1); err != nil {
		t.Fatal(err)
	}
	if m.HostMemoEntries() != 1 {
		t.Fatal("walk not memoized")
	}
	// Recycle the page-table root frame: free it and allocate it again. The
	// allocator zeroes recycled frames, which is a write into a watched
	// frame.
	m.Mem.FreeFrame(HPA(pt.Root))
	if _, err := m.Mem.AllocFrame(); err != nil {
		t.Fatal(err)
	}
	if n := m.HostMemoEntries(); n != 0 {
		t.Fatalf("memo survived frame recycle with %d entries", n)
	}
}

// TestWalkMemoPermFallback: a memo hit whose recorded guest flags would
// deny the requested access must fall back to a real walk that raises the
// authoritative fault.
func TestWalkMemoPermFallback(t *testing.T) {
	m, pt := newMemoMachine(t)
	if err := pt.Map(0x40_0000, 0x8000, PTEUser); err != nil { // read-only
		t.Fatal(err)
	}
	c0, c1 := m.Cores[0], m.Cores[1]
	c0.Mode = ModeUser
	c1.Mode = ModeUser
	if err := c0.ReadData(0x40_0000, nil, 1); err != nil {
		t.Fatal(err)
	}
	// Core 1, cold TLB: the memo entry matches but a write is not allowed
	// by the recorded flags, so the real walk must run and fault.
	if err := c1.WriteData(0x40_0000, []byte{1}, 1); err == nil {
		t.Fatal("write through read-only mapping succeeded")
	}
	if st := m.HostMemoStats(); st.PermFallbacks != 1 {
		t.Fatalf("perm fallback not counted: %+v", st)
	}
}

// TestHostFastPathsOffDisablesMemo: with the escape hatch off, machines
// carry no memo and every TLB miss is a real walk.
func TestHostFastPathsOffDisablesMemo(t *testing.T) {
	withFastPaths(t, false)
	m := NewMachine(MachineConfig{Cores: 1, MemBytes: 1 << 26})
	if m.memo != nil {
		t.Fatal("machine built a walk memo with fast paths off")
	}
	if m.HostMemoEntries() != 0 {
		t.Fatal("entry count nonzero without a memo")
	}
}

// TestWalkMemoLockstepTransparency drives two identical machines — fast
// paths on vs. off — through the same access script (walks, TLB-capacity
// thrash, CR3 reloads, PTE edits, faults) and requires every simulated
// observable to stay in lockstep: clocks, walk counters, cache and TLB
// stats.
func TestWalkMemoLockstepTransparency(t *testing.T) {
	type world struct {
		m  *Machine
		pt *PageTable
	}
	build := func(on bool) *world {
		prev := SetHostFastPaths(on)
		defer SetHostFastPaths(prev)
		m := NewMachine(MachineConfig{Cores: 2, MemBytes: 1 << 26, DTLBEntries: 4})
		pt := NewPageTable(m.Mem)
		for _, cpu := range m.Cores {
			cpu.CR3 = pt.Root
			cpu.Mode = ModeUser
		}
		return &world{m: m, pt: pt}
	}
	on, off := build(true), build(false)
	if on.m.memo == nil || off.m.memo != nil {
		t.Fatal("toggle not honored at construction")
	}

	// The script runs on both worlds; any divergence of simulated state is
	// a transparency violation.
	script := func(w *world) {
		pt, cores := w.pt, w.m.Cores
		for i := 0; i < 12; i++ {
			va := VA(0x40_0000 + i*PageSize)
			if err := pt.Map(va, GPA(0x8000+i*PageSize), PTEUser|PTEWrite); err != nil {
				t.Fatal(err)
			}
		}
		var b [8]byte
		for round := 0; round < 4; round++ {
			// Two sweeps: 12 pages cycled through a 4-entry LRU TLB miss on
			// every access, so on the fast-path world the second sweep's
			// walks are all served by the memo.
			for sweep := 0; sweep < 2; sweep++ {
				for i := 0; i < 12; i++ {
					va := VA(0x40_0000 + i*PageSize)
					cpu := cores[(round+i)%2]
					if err := cpu.WriteData(va, []byte{byte(i)}, 1); err != nil {
						t.Fatal(err)
					}
					if err := cpu.ReadData(va+8, b[:], 8); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Remap one page mid-script (memo invalidation on one world,
			// plain PTE edit on the other).
			if err := pt.Map(0x40_0000, GPA(0x30000+round*PageSize), PTEUser|PTEWrite); err != nil {
				t.Fatal(err)
			}
			// CR3 reload with the same root (must stay transparent).
			cores[0].Mode = ModeKernel
			if err := cores[0].WriteCR3(pt.Root, 1); err != nil {
				t.Fatal(err)
			}
			cores[0].Mode = ModeUser
			// A faulting access (kernel-only page from user mode).
			if round == 2 {
				if err := pt.Map(0x70_0000, 0x2000, PTEWrite); err != nil {
					t.Fatal(err)
				}
				if err := cores[1].ReadData(0x70_0000, nil, 1); err == nil {
					t.Fatal("expected fault")
				}
			}
		}
		cores[1].DTLB.FlushAll()
		for i := 0; i < 12; i++ {
			va := VA(0x40_0000 + i*PageSize)
			if err := cores[1].ReadData(va, nil, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	script(on)
	script(off)

	if st := on.m.HostMemoStats(); st.Hits == 0 {
		t.Fatalf("script exercised no memo hits (weak test): %+v", st)
	}
	for i := range on.m.Cores {
		co, cf := on.m.Cores[i], off.m.Cores[i]
		if co.Clock != cf.Clock {
			t.Errorf("core %d clock: on=%d off=%d", i, co.Clock, cf.Clock)
		}
		if co.Counters != cf.Counters {
			t.Errorf("core %d counters: on=%+v off=%+v", i, co.Counters, cf.Counters)
		}
		if co.L1D.Stats != cf.L1D.Stats {
			t.Errorf("core %d L1D: on=%+v off=%+v", i, co.L1D.Stats, cf.L1D.Stats)
		}
		if co.L1I.Stats != cf.L1I.Stats {
			t.Errorf("core %d L1I: on=%+v off=%+v", i, co.L1I.Stats, cf.L1I.Stats)
		}
		if co.DTLB.Stats != cf.DTLB.Stats {
			t.Errorf("core %d DTLB: on=%+v off=%+v", i, co.DTLB.Stats, cf.DTLB.Stats)
		}
	}
	if on.m.Cores[0].L2.Stats != off.m.Cores[0].L2.Stats {
		t.Errorf("L2: on=%+v off=%+v", on.m.Cores[0].L2.Stats, off.m.Cores[0].L2.Stats)
	}
	if on.m.L3.Stats != off.m.L3.Stats {
		t.Errorf("L3: on=%+v off=%+v", on.m.L3.Stats, off.m.L3.Stats)
	}
}
