package hw

// Host-side walk memoization.
//
// A TLB miss costs the simulator a full two-dimensional page walk: up to
// four guest page-table entry reads, each resolved through a four-level
// EPT walk, every entry read charged through the cache model and backed by
// real PhysMem reads. The *simulated* cost of that walk is the point — but
// the host-side work of re-deriving which entries get touched is pure
// overhead, because the walk's outcome is a deterministic function of
// (CR3 root, EPTP, virtual page) and the contents of the page-table and
// EPT frames it reads.
//
// hostMemo caches exactly that function. An entry records the walk's
// outcome (page frame, guest leaf flags, EPT leaf permissions) plus the
// exact sequence of cache-charged slots the walk touched. On a hit the
// sequence is REPLAYED through the live cache model — same slots, same
// order — so cache state, hit/miss statistics, and charged cycles evolve
// bit-for-bit identically to a re-executed walk. Nothing about the
// simulation is approximated; only the host-side re-derivation is skipped.
//
// Invalidation (see also DESIGN.md):
//   - any PhysMem write into a frame a memoized walk read from — guest PT
//     frames and EPT table frames — invalidates the whole memo (PhysMem
//     dirty-watch, rebuilt lazily by subsequent walks). This covers guest
//     PTE edits, EPT edits (Map/RemapGPA/splits), and frame recycling
//     (AllocFrame zeroing a previously freed frame).
//   - any TLB flush (FlushAll or FlushTag) invalidates the whole memo,
//     via the TLB onFlush hook — so an explicit shootdown can never be
//     survived by a stale memo entry.
//   - guest and EPT *permissions* are not trusted from the memo blindly:
//     every hit re-checks the stored leaf flags against the current
//     access kind and CPU mode, and falls back to a real (and really
//     charged) walk when they would fault, so fault delivery is always
//     authoritative.
//
// A CR3 load deliberately does NOT invalidate. The memo is not
// architectural TLB state; it is a memoized pure function, and a root's
// entries stay valid for exactly as long as the frames they were derived
// from are unmodified — which the dirty-watch enforces regardless of which
// root is live. (Re-building a page table at a recycled root frame always
// writes or zeroes that watched frame first.) Dropping per-root state on
// every CR3 write was measured to thrash the memo to zero hits on kernels
// that switch CR3 per IPC (KPTI + context switch).
//
// Workloads whose kernels edit page tables or flush TLBs on every
// operation (temporary-mapping IPC) wipe the memo faster than it can pay
// off; storing there is pure overhead. invalidateAll therefore applies an
// exponential store cooldown whenever the memo was wiped without having
// served a single hit, and any hit resets it — phases that can use the
// memo do, phases that cannot stop paying for it. The cooldown changes
// only host work, never simulated results.
//
// The memo is machine-wide (walk outcomes are core-independent; replay
// charges go through the *requesting* core's caches) and purely host-side:
// its counters are deliberately NOT bound into the obs registry, so
// metrics output is byte-identical whether the memo is on or off.

// hostFastPaths gates construction of host-side caches in new machines.
// It exists as an escape hatch (skybench -hostcache=off) and for the
// on/off equivalence tests.
var hostFastPaths = true

// SetHostFastPaths enables or disables host-side fast-path caches for
// machines constructed afterwards. It returns the previous setting.
func SetHostFastPaths(on bool) bool {
	prev := hostFastPaths
	hostFastPaths = on
	return prev
}

// HostFastPaths reports whether new machines get host-side caches.
func HostFastPaths() bool { return hostFastPaths }

// HostMemoStats counts host-side memo traffic. These are host diagnostics
// only — never part of simulated metrics.
type HostMemoStats struct {
	Hits          uint64 // walks served by replay
	Misses        uint64 // walks executed for real (and recorded)
	PermFallbacks uint64 // hits rejected by perm re-check (real walk ran)
	Invalidations uint64 // whole-memo drops (dirty frame or TLB flush)
	StoreSkips    uint64 // walks not recorded while cooling down
}

// memoKey identifies a walk within one address-space root.
type memoKey struct {
	eptp HPA    // active EPT root (0 = no EPT)
	vpn  uint64 // virtual page number
}

// memoCharge is one cache charge the walk performed: the slot's HPA and
// whether it was an EPT entry read (which also bumps EPTWalkReads).
type memoCharge struct {
	slot    HPA
	eptRead bool
}

// memoEntry is the recorded outcome of one successful walk.
type memoEntry struct {
	charges  []memoCharge
	pageBase HPA
	flags    PTFlags  // guest leaf flags (re-checked per hit)
	eptLeaf  EPTFlags // data-page EPT leaf perms (re-checked per hit)
}

// hostMemo is the machine-wide walk memo.
type hostMemo struct {
	byRoot map[GPA]map[memoKey]*memoEntry
	Stats  HostMemoStats

	// Thrash guard: when invalidateAll wipes a memo that served zero hits
	// since the last wipe, the next `skipBudget` stores are skipped, and
	// the budget doubles on each fruitless wipe (capped). Hits reset it.
	hitsSinceInval uint64
	skipBudget     uint64
	penalty        uint64
}

// memoCooldownMax caps the exponential store-skip budget.
const memoCooldownMax = 8192

// noteHit records a served hit (resets the thrash guard's escalation).
func (m *hostMemo) noteHit() {
	m.Stats.Hits++
	m.hitsSinceInval++
}

// shouldStore reports whether the current walk should be recorded, paying
// down the cooldown budget when not.
func (m *hostMemo) shouldStore() bool {
	if m.skipBudget > 0 {
		m.skipBudget--
		m.Stats.StoreSkips++
		return false
	}
	return true
}

func newHostMemo() *hostMemo {
	return &hostMemo{byRoot: make(map[GPA]map[memoKey]*memoEntry)}
}

// lookup returns the memo entry for (root, eptp, vpn), or nil.
func (m *hostMemo) lookup(root GPA, eptp HPA, vpn uint64) *memoEntry {
	return m.byRoot[root][memoKey{eptp: eptp, vpn: vpn}]
}

// store records a successful walk.
func (m *hostMemo) store(root GPA, eptp HPA, vpn uint64, e *memoEntry) {
	inner := m.byRoot[root]
	if inner == nil {
		inner = make(map[memoKey]*memoEntry)
		m.byRoot[root] = inner
	}
	inner[memoKey{eptp: eptp, vpn: vpn}] = e
}

// invalidateAll drops every entry: a watched frame was written, a frame
// was recycled, or a TLB was flushed. Fruitless wipes (no hits served
// since the previous wipe) escalate the store cooldown.
func (m *hostMemo) invalidateAll() {
	if len(m.byRoot) == 0 {
		return
	}
	m.Stats.Invalidations++
	clear(m.byRoot)
	if m.hitsSinceInval == 0 {
		switch {
		case m.penalty == 0:
			m.penalty = 64
		case m.penalty < memoCooldownMax:
			m.penalty *= 2
		}
	} else {
		m.penalty = 0
	}
	m.skipBudget = m.penalty
	m.hitsSinceInval = 0
}

// entryCount returns the number of live entries (test helper).
func (m *hostMemo) entryCount() int {
	n := 0
	for _, inner := range m.byRoot {
		n += len(inner)
	}
	return n
}
