package hw

import (
	"bytes"
	"errors"
	"testing"
)

// newNativeCPU builds a 1-page-table machine running natively (no EPT).
func newNativeCPU(t *testing.T) (*Machine, *CPU, *PageTable) {
	t.Helper()
	m := NewMachine(MachineConfig{Cores: 2, MemBytes: 1 << 26})
	cpu := m.Cores[0]
	pt := NewPageTable(m.Mem)
	cpu.CR3 = pt.Root
	return m, cpu, pt
}

func TestCPUDataRoundTrip(t *testing.T) {
	_, cpu, pt := newNativeCPU(t)
	if err := pt.Map(0x40_0000, 0x8000, PTEWrite|PTEUser); err != nil {
		t.Fatal(err)
	}
	cpu.Mode = ModeUser
	msg := []byte("skybridge")
	if err := cpu.WriteData(0x40_0100, msg, len(msg)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := cpu.ReadData(0x40_0100, got, len(got)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
}

func TestCPUPageFaults(t *testing.T) {
	_, cpu, pt := newNativeCPU(t)
	cpu.Mode = ModeUser

	var pf *PageFault
	err := cpu.ReadData(0xdead_0000, nil, 1)
	if !errors.As(err, &pf) {
		t.Fatalf("unmapped read: got %v, want PageFault", err)
	}

	// Supervisor-only page faults in user mode.
	if err := pt.Map(0x50_0000, 0x9000, PTEWrite); err != nil {
		t.Fatal(err)
	}
	if err := cpu.ReadData(0x50_0000, nil, 1); !errors.As(err, &pf) {
		t.Fatalf("user access to kernel page: got %v", err)
	}
	cpu.Mode = ModeKernel
	if err := cpu.ReadData(0x50_0000, nil, 1); err != nil {
		t.Fatalf("kernel access failed: %v", err)
	}

	// Read-only page rejects writes.
	if err := pt.Map(0x60_0000, 0xa000, PTEUser); err != nil {
		t.Fatal(err)
	}
	cpu.Mode = ModeUser
	if err := cpu.WriteData(0x60_0000, nil, 1); !errors.As(err, &pf) {
		t.Fatalf("write to read-only page: got %v", err)
	}

	// NX page rejects fetches.
	if err := pt.Map(0x70_0000, 0xb000, PTEUser|PTENX); err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.FetchCode(0x70_0000, 4); !errors.As(err, &pf) {
		t.Fatalf("fetch from NX page: got %v", err)
	}
}

func TestCPUTLBWarming(t *testing.T) {
	_, cpu, pt := newNativeCPU(t)
	if err := pt.Map(0x40_0000, 0x8000, PTEWrite|PTEUser); err != nil {
		t.Fatal(err)
	}
	cpu.Mode = ModeUser
	if err := cpu.ReadData(0x40_0000, nil, 1); err != nil {
		t.Fatal(err)
	}
	walks := cpu.Counters.PageWalks
	if walks != 1 {
		t.Fatalf("first access did %d walks, want 1", walks)
	}
	if err := cpu.ReadData(0x40_0800, nil, 1); err != nil {
		t.Fatal(err)
	}
	if cpu.Counters.PageWalks != walks {
		t.Fatal("second access to same page walked again (TLB not used)")
	}
}

func TestCPUSyscallCosts(t *testing.T) {
	_, cpu, _ := newNativeCPU(t)
	cpu.Mode = ModeUser
	start := cpu.Clock
	cpu.Syscall()
	cpu.Swapgs()
	cpu.Swapgs()
	cpu.Sysret()
	elapsed := cpu.Clock - start
	want := CostSYSCALL + 2*CostSWAPGS + CostSYSRET
	if elapsed != want {
		t.Fatalf("null syscall cost %d, want %d", elapsed, want)
	}
	if cpu.Mode != ModeUser {
		t.Fatal("mode not restored after sysret")
	}
}

func TestCPUWriteCR3(t *testing.T) {
	m, cpu, pt := newNativeCPU(t)
	pt2 := NewPageTable(m.Mem)
	if err := pt.Map(0x1000, 0x8000, PTEUser); err != nil {
		t.Fatal(err)
	}
	if err := pt2.Map(0x1000, 0x9000, PTEUser); err != nil {
		t.Fatal(err)
	}
	m.Mem.Write(0x8000, []byte{1})
	m.Mem.Write(0x9000, []byte{2})

	cpu.PCID = 1 // address space 1's PCID
	cpu.Mode = ModeUser
	var b [1]byte
	if err := cpu.ReadData(0x1000, b[:], 1); err != nil || b[0] != 1 {
		t.Fatalf("as1: %v %v", err, b)
	}
	// CR3 write requires kernel mode.
	if err := cpu.WriteCR3(pt2.Root, 2); err == nil {
		t.Fatal("user-mode CR3 write allowed")
	}
	cpu.Mode = ModeKernel
	before := cpu.Clock
	if err := cpu.WriteCR3(pt2.Root, 2); err != nil {
		t.Fatal(err)
	}
	if cpu.Clock-before != CostWriteCR3 {
		t.Fatalf("CR3 write cost %d, want %d", cpu.Clock-before, CostWriteCR3)
	}
	cpu.Mode = ModeUser
	if err := cpu.ReadData(0x1000, b[:], 1); err != nil || b[0] != 2 {
		t.Fatalf("as2 after CR3 switch: %v %v", err, b)
	}
	// PCID tagging: switching back must not have lost as1's TLB entry, and
	// must still translate correctly.
	cpu.Mode = ModeKernel
	if err := cpu.WriteCR3(pt.Root, 1); err != nil {
		t.Fatal(err)
	}
	cpu.Mode = ModeUser
	walks := cpu.Counters.PageWalks
	if err := cpu.ReadData(0x1000, b[:], 1); err != nil || b[0] != 1 {
		t.Fatalf("back to as1: %v %v", err, b)
	}
	if cpu.Counters.PageWalks != walks {
		t.Fatal("PCID-tagged entry was lost across CR3 switches")
	}
}

// installVirt places the CPU in non-root mode with an identity base EPT and
// returns (baseEPT, vmcs).
func installVirt(t *testing.T, m *Machine, cpu *CPU) (*EPT, *VMCS) {
	t.Helper()
	base := NewEPT(m.Mem)
	if err := base.MapIdentityRange(0, 1, Page1GSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	vmcs := &VMCS{}
	if err := vmcs.InstallEPTPList([]*EPT{base}); err != nil {
		t.Fatal(err)
	}
	cpu.NonRoot = true
	cpu.VMCS = vmcs
	cpu.SetEPT(base)
	return base, vmcs
}

func TestCPUVMFuncSwitchesEPT(t *testing.T) {
	m, cpu, pt := newNativeCPU(t)
	base, vmcs := installVirt(t, m, cpu)

	// Build a second "server" view: clone base and remap the client's CR3
	// page to a different frame so we can observe the switch.
	pt2 := NewPageTable(m.Mem)
	serverEPT := base.CloneShallow()
	if _, err := serverEPT.RemapGPA(pt.Root.PageBase(), HPA(pt2.Root), EPTRead|EPTWrite); err != nil {
		t.Fatal(err)
	}
	vmcs.EPTPList[1] = serverEPT

	if err := pt.Map(0x1000, 0x8000, PTEUser); err != nil {
		t.Fatal(err)
	}
	if err := pt2.Map(0x1000, 0x9000, PTEUser); err != nil {
		t.Fatal(err)
	}
	m.Mem.Write(0x8000, []byte{0xAA})
	m.Mem.Write(0x9000, []byte{0xBB})

	cpu.Mode = ModeUser
	var b [1]byte
	if err := cpu.ReadData(0x1000, b[:], 1); err != nil || b[0] != 0xAA {
		t.Fatalf("client view: %v %#x", err, b[0])
	}

	// The key SkyBridge mechanism: VMFUNC from user mode, CR3 unchanged,
	// yet the *page table itself* is now the server's because the EPT
	// remaps the CR3 GPA.
	before := cpu.Clock
	if err := cpu.VMFunc(0, 1); err != nil {
		t.Fatal(err)
	}
	if cpu.Clock-before != CostVMFUNC {
		t.Fatalf("VMFUNC cost %d, want %d", cpu.Clock-before, CostVMFUNC)
	}
	if err := cpu.ReadData(0x1000, b[:], 1); err != nil || b[0] != 0xBB {
		t.Fatalf("server view after VMFUNC: %v %#x", err, b[0])
	}

	// Switch back.
	if err := cpu.VMFunc(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := cpu.ReadData(0x1000, b[:], 1); err != nil || b[0] != 0xAA {
		t.Fatalf("client view after return: %v %#x", err, b[0])
	}
}

func TestCPUVMFuncDoesNotFlushTLB(t *testing.T) {
	m, cpu, pt := newNativeCPU(t)
	base, vmcs := installVirt(t, m, cpu)
	vmcs.EPTPList[1] = base.CloneShallow()

	if err := pt.Map(0x1000, 0x8000, PTEUser); err != nil {
		t.Fatal(err)
	}
	cpu.Mode = ModeUser
	if err := cpu.ReadData(0x1000, nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := cpu.VMFunc(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := cpu.VMFunc(0, 0); err != nil {
		t.Fatal(err)
	}
	walks := cpu.Counters.PageWalks
	if err := cpu.ReadData(0x1000, nil, 1); err != nil {
		t.Fatal(err)
	}
	if cpu.Counters.PageWalks != walks {
		t.Fatal("TLB entry lost across VMFUNC round trip (VPID tagging broken)")
	}
	if cpu.DTLB.Stats.Flushes != 0 {
		t.Fatalf("VMFUNC flushed the TLB %d times", cpu.DTLB.Stats.Flushes)
	}
}

func TestCPUVMFuncInvalidIndexExits(t *testing.T) {
	m, cpu, _ := newNativeCPU(t)
	installVirt(t, m, cpu)
	var got *VMExit
	m.SetExitHandler(func(c *CPU, e *VMExit) error {
		got = e
		return errors.New("guest killed")
	})
	if err := cpu.VMFunc(0, 7); err == nil {
		t.Fatal("invalid EPTP index did not fail")
	}
	if got == nil || got.Reason != ExitVMFuncFail || got.Index != 7 {
		t.Fatalf("exit %+v", got)
	}
	if m.VMExits[ExitVMFuncFail] != 1 {
		t.Fatal("exit not counted")
	}
}

func TestCPUVMFuncOutsideNonRootIsUD(t *testing.T) {
	_, cpu, _ := newNativeCPU(t)
	if err := cpu.VMFunc(0, 0); err == nil {
		t.Fatal("VMFUNC in root mode should #UD")
	}
}

func TestCPUEPTViolationDeliversExit(t *testing.T) {
	m, cpu, pt := newNativeCPU(t)
	base, _ := installVirt(t, m, cpu)
	_ = base
	// Map a VA whose GPA lies outside the 1 GiB identity region.
	if err := pt.Map(0x1000, GPA(2<<30), PTEUser|PTEWrite); err != nil {
		t.Fatal(err)
	}
	var got *VMExit
	m.SetExitHandler(func(c *CPU, e *VMExit) error {
		got = e
		return e
	})
	cpu.Mode = ModeUser
	err := cpu.ReadData(0x1000, nil, 1)
	if err == nil {
		t.Fatal("expected EPT violation")
	}
	if got == nil || got.Reason != ExitEPTViolation {
		t.Fatalf("exit %+v", got)
	}
	if got.Violation.GPA != GPA(2<<30) {
		t.Fatalf("violation gpa %#x", uint64(got.Violation.GPA))
	}
}

func TestCPUHypercall(t *testing.T) {
	m, cpu, _ := newNativeCPU(t)
	installVirt(t, m, cpu)
	m.SetExitHandler(func(c *CPU, e *VMExit) error {
		if e.Reason == ExitVMCall {
			e.Hypercall.Ret = e.Hypercall.Args[0] + 1
			return nil
		}
		return e
	})
	ret, err := cpu.VMCall(&Hypercall{Nr: 1, Args: [4]uint64{41}})
	if err != nil || ret != 42 {
		t.Fatalf("hypercall: ret=%d err=%v", ret, err)
	}
	if m.VMExits[ExitVMCall] != 1 {
		t.Fatal("VMCALL exit not counted")
	}
}

func TestCPUInterruptExitless(t *testing.T) {
	m, cpu, _ := newNativeCPU(t)
	installVirt(t, m, cpu)
	m.SetExitHandler(func(c *CPU, e *VMExit) error { return nil })
	if err := cpu.Interrupt(); err != nil {
		t.Fatal(err)
	}
	if m.TotalVMExits() != 0 {
		t.Fatal("exit-less config still exited on interrupt")
	}
	cpu.VMCS.Controls.ExitOnExternalIntr = true
	if err := cpu.Interrupt(); err != nil {
		t.Fatal(err)
	}
	if m.VMExits[ExitExternalInterrupt] != 1 {
		t.Fatal("trap-everything config did not exit on interrupt")
	}
}

func TestMachineIPI(t *testing.T) {
	m := NewMachine(MachineConfig{Cores: 2, MemBytes: 1 << 24})
	before := m.Cores[0].Clock
	m.SendIPI(0, 1)
	if m.Cores[0].Clock-before != CostIPI {
		t.Fatalf("IPI cost %d, want %d", m.Cores[0].Clock-before, CostIPI)
	}
	if m.IPICount != 1 {
		t.Fatal("IPI not counted")
	}
}

func TestCPUCodeFetchReturnsBytes(t *testing.T) {
	m, cpu, pt := newNativeCPU(t)
	if err := pt.Map(0x40_0000, 0x8000, PTEUser); err != nil {
		t.Fatal(err)
	}
	code := []byte{0x0f, 0x01, 0xd4, 0x90} // vmfunc; nop
	m.Mem.Write(0x8000, code)
	cpu.Mode = ModeUser
	got, err := cpu.FetchCode(0x40_0000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, code) {
		t.Fatalf("fetched %x, want %x", got, code)
	}
	if cpu.Counters.CodeFetches == 0 {
		t.Fatal("code fetch not counted")
	}
}

func TestCPUDataCrossPage(t *testing.T) {
	m, cpu, pt := newNativeCPU(t)
	if err := pt.MapRange(0x40_0000, 0x8000, 2, PTEUser|PTEWrite); err != nil {
		t.Fatal(err)
	}
	_ = m
	cpu.Mode = ModeUser
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	va := VA(0x40_0000 + PageSize - 100)
	if err := cpu.WriteData(va, data, len(data)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := cpu.ReadData(va, got, len(got)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page data mismatch")
	}
}

func TestVMCSEPTPListLimit(t *testing.T) {
	vmcs := &VMCS{}
	m := NewPhysMem(1 << 24)
	epts := make([]*EPT, EPTPListSize+1)
	for i := range epts {
		epts[i] = NewEPT(m)
	}
	if err := vmcs.InstallEPTPList(epts); err == nil {
		t.Fatal("EPTP list over 512 entries accepted")
	}
	if err := vmcs.InstallEPTPList(epts[:EPTPListSize]); err != nil {
		t.Fatal(err)
	}
}
