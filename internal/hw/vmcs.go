package hw

import "fmt"

// EPTPListSize is the hardware limit on EPTP-list entries reachable by
// VMFUNC EPTP switching (Intel SDM: the EPTP list is one 4 KiB page of
// 512 8-byte pointers).
const EPTPListSize = 512

// ExitReason classifies VM exits, mirroring the subset of Intel exit
// reasons the Rootkernel must handle (§4.1: CPUID, VMCALL, EPT violation)
// plus the ones the exit-less configuration avoids.
type ExitReason int

// VM exit reasons.
const (
	ExitCPUID ExitReason = iota
	ExitVMCall
	ExitEPTViolation
	ExitExternalInterrupt
	ExitHLT
	ExitCR3Write
	ExitVMFuncFail
)

// String implements fmt.Stringer.
func (r ExitReason) String() string {
	switch r {
	case ExitCPUID:
		return "CPUID"
	case ExitVMCall:
		return "VMCALL"
	case ExitEPTViolation:
		return "EPT_VIOLATION"
	case ExitExternalInterrupt:
		return "EXTERNAL_INTERRUPT"
	case ExitHLT:
		return "HLT"
	case ExitCR3Write:
		return "CR3_WRITE"
	case ExitVMFuncFail:
		return "VMFUNC_FAIL"
	default:
		return fmt.Sprintf("ExitReason(%d)", int(r))
	}
}

// VMExit is delivered to the Machine's exit handler (the Rootkernel) when a
// non-root operation requires hypervisor intervention.
type VMExit struct {
	Reason    ExitReason
	Violation *EPTViolation // set for ExitEPTViolation
	Hypercall *Hypercall    // set for ExitVMCall
	Index     int           // set for ExitVMFuncFail: the offending EPTP index
}

// Error implements the error interface so exits can propagate through the
// memory-access paths.
func (e *VMExit) Error() string { return "vm exit: " + e.Reason.String() }

// Hypercall is the VMCALL payload: the Subkernel -> Rootkernel interface.
type Hypercall struct {
	Nr   int
	Args [4]uint64
	// Ptr carries structured arguments. A real hypercall marshals through
	// guest memory; the simulator passes the value directly while still
	// charging the VM-exit cost.
	Ptr any
	// Ret receives the handler's result.
	Ret uint64
	Err error
}

// VMExitControls selects which events leave non-root mode. SkyBridge's
// Rootkernel clears everything clearable so that "there are no VM exits
// when running normal applications" (§4.1); the trap-everything settings
// exist for the legacy-hypervisor ablation.
type VMExitControls struct {
	ExitOnCPUID        bool // CPUID always exits on real hardware
	ExitOnHLT          bool
	ExitOnCR3Write     bool
	ExitOnExternalIntr bool
}

// VMCS models the per-virtual-CPU control structure: the EPTP list consulted
// by VMFUNC, the currently installed EPT, and the exit controls.
type VMCS struct {
	Controls VMExitControls

	// EPTPList is the 512-entry list VMFUNC(0, idx) selects from. A nil
	// entry is invalid and causes a VM exit if selected.
	EPTPList [EPTPListSize]*EPT

	// CurrentIndex is the EPTP-list index currently installed.
	CurrentIndex int
}

// InstallEPTPList replaces the list contents. Slot 0 conventionally holds
// the caller's own EPT.
func (v *VMCS) InstallEPTPList(epts []*EPT) error {
	if len(epts) > EPTPListSize {
		return fmt.Errorf("hw: EPTP list of %d entries exceeds hardware limit %d", len(epts), EPTPListSize)
	}
	for i := range v.EPTPList {
		if i < len(epts) {
			v.EPTPList[i] = epts[i]
		} else {
			v.EPTPList[i] = nil
		}
	}
	return nil
}

// CurrentEPT returns the EPT installed by the last successful EPTP switch.
func (v *VMCS) CurrentEPT() *EPT { return v.EPTPList[v.CurrentIndex] }
