package hw

import (
	"encoding/binary"
	"fmt"
)

// PhysMem models host physical memory as a sparse set of 4 KiB frames.
// Frames are materialized lazily on first touch, so a simulated 16 GiB
// machine costs only as much real memory as the experiment actually uses.
//
// PhysMem also embeds a simple frame allocator (bump pointer plus free
// list). The allocator hands out frames from the top of a reserved region
// downward so that "allocator frames" (page tables, EPT tables, kernel
// objects) never collide with identity-mapped guest RAM handed to
// applications, which grows from low addresses.
type PhysMem struct {
	size   uint64
	frames map[uint64]*[PageSize]byte

	// Allocator state. allocNext is the next unallocated frame number,
	// counting down from the top of memory. free holds recycled frames.
	allocNext uint64
	free      []uint64

	// Stats.
	allocated uint64
	freed     uint64

	// Frame cache for frame(): accesses cluster heavily on a handful of
	// frames (copy loops alternate between a source frame and the kernel
	// transfer buffer; page-table walks re-read one table page), and a
	// frame's backing array pointer never changes once materialized — frames
	// are never removed from the map, and zeroFrame clears contents in place
	// — so this direct-mapped cache can never go stale and needs no
	// invalidation.
	fcache [16]struct {
		fn uint64
		f  *[PageSize]byte
	}

	// Dirty watch (host-side walk memo support). watch is a frame-number
	// bitmap of frames whose contents some memoized walk depends on; it is
	// nil until the first WatchFrame, so the write paths stay check-free
	// cheap before any walk is memoized. Writing (or recycling) a watched
	// frame fires onDirty once and clears the whole watch — the memo
	// invalidates itself and rebuilds the watch from subsequent walks.
	watch   []uint64
	onDirty func()
}

// NewPhysMem creates a physical memory of the given byte size, which must be
// a multiple of PageSize.
func NewPhysMem(size uint64) *PhysMem {
	if size == 0 || size%PageSize != 0 {
		panic(fmt.Sprintf("hw: physical memory size %#x is not page aligned", size))
	}
	return &PhysMem{
		size:      size,
		frames:    make(map[uint64]*[PageSize]byte),
		allocNext: size / PageSize, // one past the last frame; allocation decrements
	}
}

// Size returns the total size of physical memory in bytes.
func (m *PhysMem) Size() uint64 { return m.size }

// AllocatedFrames returns the number of frames currently handed out by the
// allocator (allocations minus frees).
func (m *PhysMem) AllocatedFrames() uint64 { return m.allocated - m.freed }

// AllocFrame returns a newly allocated, zeroed 4 KiB frame.
func (m *PhysMem) AllocFrame() (HPA, error) {
	m.allocated++
	if n := len(m.free); n > 0 {
		fn := m.free[n-1]
		m.free = m.free[:n-1]
		m.zeroFrame(fn)
		return HPA(fn * PageSize), nil
	}
	if m.allocNext == 0 {
		return 0, fmt.Errorf("hw: out of physical memory (%d frames in use)", m.AllocatedFrames())
	}
	m.allocNext--
	m.zeroFrame(m.allocNext)
	return HPA(m.allocNext * PageSize), nil
}

// MustAllocFrame is AllocFrame but panics on exhaustion. It is intended for
// boot-time setup code where exhaustion is a configuration error.
func (m *PhysMem) MustAllocFrame() HPA {
	h, err := m.AllocFrame()
	if err != nil {
		panic(err)
	}
	return h
}

// FreeFrame returns a frame to the allocator. The address must be frame
// aligned and previously allocated.
func (m *PhysMem) FreeFrame(h HPA) {
	if uint64(h)%PageSize != 0 {
		panic(fmt.Sprintf("hw: FreeFrame of unaligned address %#x", uint64(h)))
	}
	m.freed++
	m.free = append(m.free, uint64(h)/PageSize)
}

// AllocatorFloor returns the lowest HPA the frame allocator has handed out.
// Identity-mapped guest RAM must stay below this boundary.
func (m *PhysMem) AllocatorFloor() HPA { return HPA(m.allocNext * PageSize) }

// ReserveRegion carves a contiguous region of frames from the top of
// unallocated memory (below anything already allocated) and returns its
// [base, top) bounds. The general allocator will never hand out frames from
// the region again. The Rootkernel uses this for its private memory
// (§4.1: "SkyBridge only reserves a small portion of physical memory").
func (m *PhysMem) ReserveRegion(frames uint64) (base, top HPA, err error) {
	return m.ReserveRegionAligned(frames*PageSize, PageSize)
}

// ReserveRegionAligned reserves at least bytes of memory whose base and top
// are align-aligned (align must be a power-of-two multiple of PageSize).
// Unaligned slack between the region top and previously allocated frames is
// returned to the free list, so no memory is lost.
func (m *PhysMem) ReserveRegionAligned(bytes, align uint64) (base, top HPA, err error) {
	if align < PageSize || align&(align-1) != 0 {
		return 0, 0, fmt.Errorf("hw: bad reservation alignment %#x", align)
	}
	curTop := m.allocNext * PageSize
	alignedTop := curTop &^ (align - 1)
	size := (bytes + align - 1) &^ (align - 1)
	if size > alignedTop {
		return 0, 0, fmt.Errorf("hw: cannot reserve %#x bytes; only %#x available", size, alignedTop)
	}
	// Give the slack frames back to the allocator.
	for f := alignedTop / PageSize; f < curTop/PageSize; f++ {
		m.free = append(m.free, f)
	}
	base = HPA(alignedTop - size)
	m.allocNext = uint64(base) / PageSize
	return base, HPA(alignedTop), nil
}

// SetDirtyHook installs the callback fired when a watched frame is
// written or recycled. The machine wires this to its walk memo.
func (m *PhysMem) SetDirtyHook(f func()) { m.onDirty = f }

// WatchFrame marks the frame containing h as contents-sensitive: the next
// write into it fires the dirty hook.
func (m *PhysMem) WatchFrame(h HPA) {
	if m.watch == nil {
		m.watch = make([]uint64, (m.size/PageSize+63)/64)
	}
	fn := uint64(h) / PageSize
	m.watch[fn/64] |= 1 << (fn % 64)
}

// noteWrite checks the dirty watch for a write touching frame fn.
func (m *PhysMem) noteWrite(fn uint64) {
	if m.watch == nil || m.watch[fn/64]&(1<<(fn%64)) == 0 {
		return
	}
	m.watch = nil
	if m.onDirty != nil {
		m.onDirty()
	}
}

func (m *PhysMem) zeroFrame(fn uint64) {
	m.noteWrite(fn)
	if f, ok := m.frames[fn]; ok {
		*f = [PageSize]byte{}
	}
}

// frame returns the backing array for the frame containing h, materializing
// it if necessary.
func (m *PhysMem) frame(h HPA) *[PageSize]byte {
	if uint64(h) >= m.size {
		panic(fmt.Sprintf("hw: physical access out of range: %#x >= %#x", uint64(h), m.size))
	}
	fn := uint64(h) / PageSize
	slot := &m.fcache[fn%uint64(len(m.fcache))]
	if slot.f != nil && slot.fn == fn {
		return slot.f
	}
	f, ok := m.frames[fn]
	if !ok {
		f = new([PageSize]byte)
		m.frames[fn] = f
	}
	slot.fn, slot.f = fn, f
	return f
}

// Read copies len(buf) bytes starting at h into buf. Reads may cross frame
// boundaries.
func (m *PhysMem) Read(h HPA, buf []byte) {
	for len(buf) > 0 {
		f := m.frame(h)
		off := uint64(h) & PageMask
		n := copy(buf, f[off:])
		buf = buf[n:]
		h += HPA(n)
	}
}

// Write copies buf into physical memory starting at h. Writes may cross
// frame boundaries.
func (m *PhysMem) Write(h HPA, buf []byte) {
	for len(buf) > 0 {
		m.noteWrite(uint64(h) / PageSize)
		f := m.frame(h)
		off := uint64(h) & PageMask
		n := copy(f[off:], buf)
		buf = buf[n:]
		h += HPA(n)
	}
}

// ReadU64 reads a little-endian 8-byte value at h. Used for page-table and
// EPT entries, which are always naturally aligned and never cross frames.
func (m *PhysMem) ReadU64(h HPA) uint64 {
	f := m.frame(h)
	off := uint64(h) & PageMask
	if off+8 > PageSize {
		panic(fmt.Sprintf("hw: unaligned 8-byte physical read at %#x", uint64(h)))
	}
	return binary.LittleEndian.Uint64(f[off : off+8])
}

// WriteU64 writes a little-endian 8-byte value at h.
func (m *PhysMem) WriteU64(h HPA, v uint64) {
	m.noteWrite(uint64(h) / PageSize)
	f := m.frame(h)
	off := uint64(h) & PageMask
	if off+8 > PageSize {
		panic(fmt.Sprintf("hw: unaligned 8-byte physical write at %#x", uint64(h)))
	}
	binary.LittleEndian.PutUint64(f[off:off+8], v)
}
