package hw

import (
	"testing"
	"testing/quick"
)

func newTestEPT(t *testing.T, memBits int) (*PhysMem, *EPT) {
	t.Helper()
	m := NewPhysMem(1 << memBits)
	return m, NewEPT(m)
}

func TestEPT4KMapTranslate(t *testing.T) {
	_, e := newTestEPT(t, 24)
	if err := e.Map(0x3000, 0x7000, PageSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	hpa, v := e.Translate(0x3abc, AccessRead)
	if v != nil {
		t.Fatal(v)
	}
	if hpa != 0x7abc {
		t.Fatalf("got %#x, want 0x7abc", uint64(hpa))
	}
}

func TestEPT2MMapTranslate(t *testing.T) {
	m := NewPhysMem(1 << 30)
	e := NewEPT(m)
	if err := e.Map(GPA(2*Page2MSize), HPA(5*Page2MSize), Page2MSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	hpa, v := e.Translate(GPA(2*Page2MSize)+0x1234, AccessWrite)
	if v != nil {
		t.Fatal(v)
	}
	if want := HPA(5*Page2MSize) + 0x1234; hpa != want {
		t.Fatalf("got %#x, want %#x", uint64(hpa), uint64(want))
	}
}

func TestEPT1GMapTranslate(t *testing.T) {
	m := NewPhysMem(4 << 30)
	e := NewEPT(m)
	if err := e.Map(0, 0, Page1GSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	hpa, v := e.Translate(0x1234_5678, AccessExec)
	if v != nil {
		t.Fatal(v)
	}
	if hpa != 0x1234_5678 {
		t.Fatalf("identity 1G translate: got %#x", uint64(hpa))
	}
}

func TestEPTViolationOnHole(t *testing.T) {
	_, e := newTestEPT(t, 24)
	if _, v := e.Translate(0xdead000, AccessRead); v == nil {
		t.Fatal("expected EPT violation for unmapped gpa")
	}
}

func TestEPTPermissionViolation(t *testing.T) {
	_, e := newTestEPT(t, 24)
	if err := e.Map(0x3000, 0x7000, PageSize, EPTRead|EPTExec); err != nil {
		t.Fatal(err)
	}
	if _, v := e.Translate(0x3000, AccessWrite); v == nil {
		t.Fatal("expected write-permission violation")
	}
	if _, v := e.Translate(0x3000, AccessRead); v != nil {
		t.Fatalf("read should succeed: %v", v)
	}
}

func TestEPTUnalignedMapRejected(t *testing.T) {
	_, e := newTestEPT(t, 24)
	if err := e.Map(0x3001, 0x7000, PageSize, EPTAll); err == nil {
		t.Fatal("unaligned gpa accepted")
	}
	if err := e.Map(GPA(Page2MSize/2), 0, Page2MSize, EPTAll); err == nil {
		t.Fatal("2M map not 2M-aligned accepted")
	}
	if err := e.Map(0, 0, 12345, EPTAll); err == nil {
		t.Fatal("bogus size accepted")
	}
}

func TestEPTShallowCloneSharesMappings(t *testing.T) {
	_, e := newTestEPT(t, 24)
	if err := e.Map(0x3000, 0x7000, PageSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	c := e.CloneShallow()
	hpa, v := c.Translate(0x3000, AccessRead)
	if v != nil || hpa != 0x7000 {
		t.Fatalf("clone lost parent mapping: hpa=%#x v=%v", uint64(hpa), v)
	}
	if c.OwnedPages != 1 {
		t.Fatalf("shallow clone owns %d pages, want 1 (root only)", c.OwnedPages)
	}
}

// TestEPTRemapCR3FourPages verifies the paper's §4.3 claim: binding a
// client to a server modifies "only four pages" of the server's EPT when
// the base EPT maps memory with 1 GiB hugepages.
func TestEPTRemapCR3FourPages(t *testing.T) {
	m := NewPhysMem(4 << 30)
	base := NewEPT(m)
	if err := base.MapIdentityRange(0, 4, Page1GSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	serverEPT := base.CloneShallow()

	clientCR3 := GPA(0x0040_0000) // somewhere in the first 1 GiB hugepage
	serverCR3 := HPA(0x1234_5000)
	copied, err := serverEPT.RemapGPA(clientCR3, serverCR3, EPTRead|EPTWrite)
	if err != nil {
		t.Fatal(err)
	}
	// Walking down from the (already owned) cloned root: split 1G -> new PD,
	// split 2M -> new PT... The root is owned; level-3 table must be copied
	// (1 page), the 1G entry splits into a PD (1 page) and the 2M entry
	// splits into a PT (1 page). Plus the root was copied at clone time:
	// four modified pages in total, matching the paper.
	totalModified := copied + 1 // + cloned root
	if totalModified != 4 {
		t.Fatalf("remap modified %d pages (incl. root), want 4", totalModified)
	}

	// The clone now translates the client's CR3 GPA to the server's root.
	hpa, v := serverEPT.Translate(clientCR3, AccessRead)
	if v != nil || hpa != serverCR3 {
		t.Fatalf("remapped translate: hpa=%#x v=%v", uint64(hpa), v)
	}
	// Neighbouring pages in the split region still translate identically.
	hpa, v = serverEPT.Translate(clientCR3+PageSize, AccessRead)
	if v != nil || hpa != HPA(clientCR3+PageSize) {
		t.Fatalf("neighbour page broken by split: hpa=%#x v=%v", uint64(hpa), v)
	}
	// And the base EPT is untouched.
	hpa, v = base.Translate(clientCR3, AccessRead)
	if v != nil || hpa != HPA(clientCR3) {
		t.Fatalf("base EPT corrupted by clone remap: hpa=%#x v=%v", uint64(hpa), v)
	}
}

func TestEPTRemapTwiceReusesOwnedPath(t *testing.T) {
	m := NewPhysMem(4 << 30)
	base := NewEPT(m)
	if err := base.MapIdentityRange(0, 1, Page1GSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	c := base.CloneShallow()
	if _, err := c.RemapGPA(0x40_0000, 0x9000, EPTAll); err != nil {
		t.Fatal(err)
	}
	copied, err := c.RemapGPA(0x40_1000, 0xa000, EPTAll) // same leaf table
	if err != nil {
		t.Fatal(err)
	}
	if copied != 0 {
		t.Fatalf("second remap in same leaf copied %d pages, want 0", copied)
	}
}

func TestEPTDeepCloneIndependent(t *testing.T) {
	m := NewPhysMem(1 << 26)
	e := NewEPT(m)
	if err := e.Map(0x3000, 0x7000, PageSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	d := e.CloneDeep()
	if _, err := d.RemapGPA(0x3000, 0xb000, EPTAll); err != nil {
		t.Fatal(err)
	}
	hpa, _ := e.Translate(0x3000, AccessRead)
	if hpa != 0x7000 {
		t.Fatalf("deep clone modified parent: parent now %#x", uint64(hpa))
	}
	hpa, _ = d.Translate(0x3000, AccessRead)
	if hpa != 0xb000 {
		t.Fatalf("deep clone remap lost: %#x", uint64(hpa))
	}
	if d.OwnedPages <= e.OwnedPages-1 {
		t.Fatalf("deep clone owns %d pages, parent %d", d.OwnedPages, e.OwnedPages)
	}
}

func TestEPTTranslateTraceLengths(t *testing.T) {
	m := NewPhysMem(4 << 30)
	e := NewEPT(m)
	if err := e.Map(0, 0, Page1GSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	_, trace, v := e.TranslateTrace(0x1000, AccessRead)
	if v != nil {
		t.Fatal(v)
	}
	if len(trace) != 2 {
		t.Fatalf("1G walk read %d entries, want 2 (PML4+PDPT)", len(trace))
	}
	if err := e.Map(GPA(2<<30), HPA(2<<30), PageSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	_, trace, v = e.TranslateTrace(GPA(2<<30), AccessRead)
	if v != nil {
		t.Fatal(v)
	}
	if len(trace) != 4 {
		t.Fatalf("4K walk read %d entries, want 4", len(trace))
	}
}

// Property: identity 1G mapping translates every in-range GPA to itself.
func TestEPTIdentityProperty(t *testing.T) {
	m := NewPhysMem(4 << 30)
	e := NewEPT(m)
	if err := e.MapIdentityRange(0, 4, Page1GSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	f := func(g uint32) bool {
		gpa := GPA(g)
		hpa, v := e.Translate(gpa, AccessRead)
		return v == nil && uint64(hpa) == uint64(gpa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEPTMapRefusesSilentSplit(t *testing.T) {
	m := NewPhysMem(4 << 30)
	e := NewEPT(m)
	if err := e.Map(0, 0, Page1GSize, EPTAll); err != nil {
		t.Fatal(err)
	}
	if err := e.Map(0x1000, 0x1000, PageSize, EPTAll); err == nil {
		t.Fatal("Map through an existing hugepage should be rejected")
	}
}
