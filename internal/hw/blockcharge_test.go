package hw

import (
	"math/rand"
	"sort"
	"testing"
)

// newChain builds a tiny L1->L2 chain so bursts wrap sets and evict often.
func newChain() *Cache {
	l2 := NewCache(CacheConfig{Name: "l2", Size: 16 * 1024, Ways: 4, Latency: 12}, nil, 200)
	return NewCache(CacheConfig{Name: "l1", Size: 2 * 1024, Ways: 2, Latency: 4}, l2, 0)
}

// chainOp is one random burst against the chain.
type chainOp struct {
	addr  HPA
	lines int
	write bool
}

// setContents returns each set's ways sorted by (tag, lru) — the canonical
// per-set contents. Way slot POSITIONS are host-side layout (AccessRange
// skips the MRU swap and fills may land in different free slots), but the
// multiset of (tag, lru) pairs per set fully determines every simulated
// decision and must match exactly.
func setContents(c *Cache) [][]cacheWay {
	nsets := len(c.tags) / c.assoc
	out := make([][]cacheWay, nsets)
	for s := 0; s < nsets; s++ {
		set := make([]cacheWay, c.assoc)
		for w := range set {
			set[w] = cacheWay{tag: uint64(c.tags[s*c.assoc+w]), lru: c.lrus[s*c.assoc+w]}
		}
		sort.Slice(set, func(i, j int) bool {
			if set[i].tag != set[j].tag {
				return set[i].tag < set[j].tag
			}
			return set[i].lru < set[j].lru
		})
		out[s] = set
	}
	return out
}

// TestAccessRangeExactEquivalence drives two identical cache chains with
// the same access stream — one charging bursts per line, one via
// AccessRange — and requires identical costs, stats, clocks, and per-set
// contents (tags AND LRU stamps) at every level after every operation.
// The tiny geometry forces same-set wraparound, misses mid-burst, and
// evictions, exercising the fallback path; repeating bursts from a small
// pool exercises memo replay and stale-memo fallback.
func TestAccessRangeExactEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(0xB10C))
	perLine := newChain()
	ranged := newChain()

	// A small pool of recurring bursts (IPC payload buffers in steady state)
	// interleaved with fresh random bursts that displace lines and stale the
	// memos.
	var pool []chainOp
	for i := 0; i < 12; i++ {
		pool = append(pool, chainOp{
			addr:  HPA(rng.Intn(1 << 14)),
			lines: 1 + rng.Intn(80), // up to 80 lines: wraps the 16-set L1
			write: rng.Intn(2) == 0,
		})
	}
	var ops []chainOp
	for i := 0; i < 4000; i++ {
		if rng.Intn(4) > 0 {
			ops = append(ops, pool[rng.Intn(len(pool))])
			continue
		}
		ops = append(ops, chainOp{
			addr:  HPA(rng.Intn(1 << 16)),
			lines: 1 + rng.Intn(80),
			write: rng.Intn(2) == 0,
		})
	}
	for i, op := range ops {
		var costA, costB uint64
		base := op.addr.LineBase()
		for l := 0; l < op.lines; l++ {
			costA += perLine.Access(base+HPA(l)<<LineShift, op.write)
		}
		costB += ranged.AccessRange(base, op.lines, op.write)
		if costA != costB {
			t.Fatalf("op %d (%d lines at %#x): cost %d (per-line) != %d (ranged)", i, op.lines, uint64(op.addr), costA, costB)
		}
		for lvl, pair := range [][2]*Cache{{perLine, ranged}, {perLine.next, ranged.next}} {
			a, b := pair[0], pair[1]
			if a.Stats != b.Stats {
				t.Fatalf("op %d level %d: stats %+v != %+v", i, lvl, a.Stats, b.Stats)
			}
			if a.clock != b.clock {
				t.Fatalf("op %d level %d: clock %d != %d", i, lvl, a.clock, b.clock)
			}
			ca, cb := setContents(a), setContents(b)
			for s := range ca {
				for w := range ca[s] {
					if ca[s][w] != cb[s][w] {
						t.Fatalf("op %d level %d set %d: contents %+v != %+v", i, lvl, s, ca[s], cb[s])
					}
				}
			}
		}
	}
}

// blockChargeWorld builds a machine with the block charge pinned, two
// user-mode cores, and 16 mapped pages of scratch VA space.
func blockChargeWorld(t *testing.T, on bool) (*Machine, *PageTable) {
	t.Helper()
	prev := SetBlockCharge(on)
	defer SetBlockCharge(prev)
	m := NewMachine(MachineConfig{Cores: 2, MemBytes: 1 << 26, DTLBEntries: 4})
	pt := NewPageTable(m.Mem)
	for _, cpu := range m.Cores {
		cpu.CR3 = pt.Root
		cpu.Mode = ModeUser
	}
	if err := pt.MapRange(0x40_0000, 0x8000, 16, PTEUser|PTEWrite); err != nil {
		t.Fatal(err)
	}
	return m, pt
}

// cpuSnapshot captures the simulated outcome of a drive sequence.
type cpuSnapshot struct {
	Clock    uint64
	Counters CPUCounters
	L1D, L2  CacheStats
	L3       CacheStats
}

func snapCPU(c *CPU) cpuSnapshot {
	return cpuSnapshot{
		Clock: c.Clock, Counters: c.Counters,
		L1D: c.L1D.Stats, L2: c.L2.Stats, L3: c.mach.L3.Stats,
	}
}

// driveBlocks performs a mixed burst workload: multi-KB reads and writes
// spanning page boundaries, single-byte touches, code touches, a TLB
// shootdown landing between two halves of a block-sized access, and a
// frame recycle under an in-flight sequence.
func driveBlocks(t *testing.T, m *Machine, pt *PageTable) {
	t.Helper()
	c := m.Cores[0]
	buf := make([]byte, 8192)
	for i := range buf {
		buf[i] = byte(i)
	}
	// 4KB-aligned page burst (the dominant shape in the suite).
	if err := c.WriteData(0x40_0000, buf[:4096], 4096); err != nil {
		t.Fatal(err)
	}
	// Cross-page 8KB read, unaligned start.
	if err := c.ReadData(0x40_0040, buf, 8192); err != nil {
		t.Fatal(err)
	}
	// Sub-line and line-straddling accesses.
	if err := c.WriteData(0x40_1037, buf[:8], 8); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadData(0x40_103f, nil, 2); err != nil {
		t.Fatal(err)
	}
	// Code-side burst through L1I.
	if err := c.TouchCode(0x40_2000, 4096+128); err != nil {
		t.Fatal(err)
	}

	// TLB shootdown spanning a block boundary: read the first half of a
	// 2-page block, shoot down both TLBs machine-wide, then read the
	// second half — the second half must re-walk, on both settings.
	if err := c.ReadData(0x40_4000, nil, 4096); err != nil {
		t.Fatal(err)
	}
	for _, cpu := range m.Cores {
		cpu.DTLB.FlushAll()
		cpu.ITLB.FlushAll()
	}
	if err := c.ReadData(0x40_5000, nil, 4096); err != nil {
		t.Fatal(err)
	}

	// Frame recycle under an executing block: remap the VA to a fresh
	// frame mid-sequence; the next burst must translate to the new frame
	// and charge accordingly.
	if err := pt.Map(0x40_6000, 0xA000, PTEUser|PTEWrite); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteData(0x40_6000, buf[:4096], 4096); err != nil {
		t.Fatal(err)
	}
	pt.Unmap(0x40_6000)
	for _, cpu := range m.Cores {
		cpu.DTLB.FlushAll()
	}
	if err := pt.Map(0x40_6000, 0xC000, PTEUser|PTEWrite); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadData(0x40_6000, buf[:4096], 4096); err != nil {
		t.Fatal(err)
	}

	// Fault mid-stream: an unmapped VA faults after the mapped prefix has
	// been charged — identically either way.
	if err := c.WriteData(0x41_0000, buf[:64], 64); err == nil {
		t.Fatal("expected page fault on unmapped VA")
	}
}

// TestBlockChargeLockstep runs the burst workload on two machines that
// differ only in the block-charge toggle and requires identical simulated
// clocks, counters, and cache stats — including across a TLB shootdown
// that splits a block and a frame recycle under the access stream.
func TestBlockChargeLockstep(t *testing.T) {
	mOn, ptOn := blockChargeWorld(t, true)
	mOff, ptOff := blockChargeWorld(t, false)
	if !mOn.Cores[0].blockCharge || mOff.Cores[0].blockCharge {
		t.Fatal("toggle not snapshotted into CPUs")
	}
	driveBlocks(t, mOn, ptOn)
	driveBlocks(t, mOff, ptOff)
	on, off := snapCPU(mOn.Cores[0]), snapCPU(mOff.Cores[0])
	if on != off {
		t.Fatalf("block charge changed simulated state:\n on: %+v\noff: %+v", on, off)
	}
	l1iOn, l1iOff := mOn.Cores[0].L1I.Stats, mOff.Cores[0].L1I.Stats
	if l1iOn != l1iOff {
		t.Fatalf("L1I stats diverged: %+v vs %+v", l1iOn, l1iOff)
	}
}
