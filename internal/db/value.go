// Package db implements an embedded relational database engine in the
// mould of SQLite3, the application the paper's macro-benchmarks drive
// (§6.5): a pager with a rollback journal over the file-system service, a
// B+tree per table, a record codec, a catalog, and a small SQL dialect
// (CREATE TABLE / INSERT / SELECT / UPDATE / DELETE / BEGIN / COMMIT).
//
// The engine runs inside the client process ("we put the client and the
// SQLite3 database into the same virtual address space") and reaches
// storage through a svc transport to the file-system server, which in turn
// calls the block-device server — so every page fault in the database
// becomes the IPC traffic the evaluation measures.
package db

import (
	"encoding/binary"
	"fmt"
	"strconv"
)

// ValueKind discriminates SQL values.
type ValueKind int

// Value kinds.
const (
	KindNull ValueKind = iota
	KindInt
	KindText
)

// Value is one SQL value.
type Value struct {
	Kind ValueKind
	Int  int64
	Text string
}

// NullValue is the SQL NULL.
var NullValue = Value{Kind: KindNull}

// IntValue builds an integer value.
func IntValue(v int64) Value { return Value{Kind: KindInt, Int: v} }

// TextValue builds a text value.
func TextValue(s string) Value { return Value{Kind: KindText, Text: s} }

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindText:
		return "'" + v.Text + "'"
	default:
		return fmt.Sprintf("Value(%d)", int(v.Kind))
	}
}

// Equal compares two values (NULL equals nothing, as in SQL).
func (v Value) Equal(o Value) bool {
	if v.Kind == KindNull || o.Kind == KindNull {
		return false
	}
	if v.Kind != o.Kind {
		return false
	}
	if v.Kind == KindInt {
		return v.Int == o.Int
	}
	return v.Text == o.Text
}

// EncodeRecord serializes a row: a header of per-column type/length
// varints followed by the column bodies (SQLite's record format, slightly
// simplified).
func EncodeRecord(vals []Value) []byte {
	var hdr, body []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vals {
		switch v.Kind {
		case KindNull:
			hdr = append(hdr, 0)
		case KindInt:
			hdr = append(hdr, 1)
			n := binary.PutVarint(tmp[:], v.Int)
			body = append(body, tmp[:n]...)
		case KindText:
			hdr = append(hdr, 2)
			n := binary.PutUvarint(tmp[:], uint64(len(v.Text)))
			hdr = append(hdr, tmp[:n]...)
			body = append(body, v.Text...)
		}
	}
	out := make([]byte, 0, 2+len(hdr)+len(body))
	var tmp2 [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp2[:], uint64(len(hdr)))
	out = append(out, tmp2[:n]...)
	out = append(out, hdr...)
	out = append(out, body...)
	return out
}

// DecodeRecord parses a serialized row.
func DecodeRecord(b []byte) ([]Value, error) {
	hlen, n := binary.Uvarint(b)
	if n <= 0 || int(hlen)+n > len(b) {
		return nil, fmt.Errorf("db: corrupt record header")
	}
	hdr := b[n : n+int(hlen)]
	body := b[n+int(hlen):]
	var vals []Value
	for len(hdr) > 0 {
		switch hdr[0] {
		case 0:
			vals = append(vals, NullValue)
			hdr = hdr[1:]
		case 1:
			v, m := binary.Varint(body)
			if m <= 0 {
				return nil, fmt.Errorf("db: corrupt int column")
			}
			body = body[m:]
			vals = append(vals, IntValue(v))
			hdr = hdr[1:]
		case 2:
			l, m := binary.Uvarint(hdr[1:])
			if m <= 0 || int(l) > len(body) {
				return nil, fmt.Errorf("db: corrupt text column")
			}
			hdr = hdr[1+m:]
			vals = append(vals, TextValue(string(body[:l])))
			body = body[l:]
		default:
			return nil, fmt.Errorf("db: unknown column tag %d", hdr[0])
		}
	}
	return vals, nil
}
