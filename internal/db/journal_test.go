package db

import (
	"testing"

	"skybridge/internal/blockdev"
	"skybridge/internal/fs"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
	"skybridge/internal/svc"
)

// TestHotJournalRollback simulates a crash between journal commit and page
// writeback: a fresh Open must roll the database back to the pre-transaction
// state.
func TestHotJournalRollback(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 2 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("crash")
	dev := blockdev.New(p, 4096)
	f := fs.New(p, svc.NewLocal(dev.Handler()))
	p.Spawn("main", k.Mach.Cores[0], func(env *mk.Env) {
		if err := f.Mkfs(env, 4096, 64); err != nil {
			t.Error(err)
			return
		}
		fsc := &fs.Client{Conn: svc.NewLocal(f.Handler())}
		d, err := Open(env, p, fsc, "j.db")
		if err != nil {
			t.Error(err)
			return
		}
		mustExec(t, env, d, "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
		mustExec(t, env, d, "INSERT INTO t VALUES (1, 100)")

		// Simulate the crash window: journal the original page images and
		// then scribble over the database pages WITHOUT clearing the
		// journal (as if we died mid-writeback).
		tab, _ := d.TableByName("t")
		d.pager.Begin()
		if _, err := tab.Update(env, 1, []Value{IntValue(1), IntValue(999)}); err != nil {
			t.Error(err)
			return
		}
		// Manually run the journal-write half of Commit, then write the
		// dirty pages home, but never truncate the journal.
		jfd, _, _ := fsc.Open(env, d.pager.jname, true)
		hdr := make([]byte, 16)
		off := PageSize
		cnt := 0
		for no, orig := range d.pager.journal {
			if orig == nil {
				continue
			}
			rec := make([]byte, 8+PageSize)
			putU64(rec, 0, uint64(no))
			copy(rec[8:], orig)
			fsc.WriteAt(env, jfd, off, rec)
			off += len(rec)
			cnt++
		}
		putU64(hdr, 0, journalMagic)
		putU64(hdr, 8, uint64(cnt))
		fsc.WriteAt(env, jfd, 0, hdr)
		for i := range d.pager.cache {
			pg := &d.pager.cache[i]
			if pg.valid && pg.dirty {
				fsc.WriteAt(env, d.pager.fd, pg.no*PageSize, pg.data)
			}
		}
		// "Crash": reopen with a fresh pager; the hot journal must roll the
		// update back.
		d2, err := Open(env, p, fsc, "j.db")
		if err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		r, err := d2.Exec(env, "SELECT v FROM t WHERE id = 1")
		if err != nil || len(r.Rows) != 1 {
			t.Errorf("select after recovery: %+v %v", r, err)
			return
		}
		if r.Rows[0][0].Int != 100 {
			t.Errorf("v = %v after rollback, want 100", r.Rows[0][0])
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalClearedAfterCommit: a completed commit leaves no hot journal,
// so reopen sees the committed data.
func TestJournalClearedAfterCommit(t *testing.T) {
	dbWorld(t, func(env *mk.Env, d *DB) {
		mustExec(t, env, d, "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
		mustExec(t, env, d, "INSERT INTO t VALUES (1, 100)")
		mustExec(t, env, d, "UPDATE t SET v = 555 WHERE id = 1")
		// The journal file exists but is truncated.
		fsc := d.pager.fsc
		jfd, size, err := fsc.Open(env, d.pager.jname, false)
		if err != nil {
			t.Errorf("journal file missing: %v", err)
			return
		}
		_ = jfd
		if size != 0 {
			t.Errorf("journal not truncated after commit: %d bytes", size)
		}
	})
}
