package db

import (
	"fmt"
	"strconv"
	"strings"

	"skybridge/internal/mk"
)

// The SQL dialect: CREATE TABLE, INSERT, SELECT (with equality or no
// predicate), UPDATE, DELETE, BEGIN, COMMIT, ROLLBACK. Statements over the
// first (INTEGER PRIMARY KEY) column execute as B+tree point operations;
// other predicates fall back to a table scan — the same access-path split
// SQLite makes.

// --- tokenizer ---

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkString
	tkPunct
)

type token struct {
	kind tokKind
	text string
}

func tokenize(sql string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var b strings.Builder
			for {
				if j >= len(sql) {
					return nil, fmt.Errorf("db: unterminated string literal")
				}
				if sql[j] == '\'' {
					if j+1 < len(sql) && sql[j+1] == '\'' {
						b.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				b.WriteByte(sql[j])
				j++
			}
			toks = append(toks, token{tkString, b.String()})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(sql) && sql[i+1] >= '0' && sql[i+1] <= '9':
			j := i + 1
			for j < len(sql) && sql[j] >= '0' && sql[j] <= '9' {
				j++
			}
			toks = append(toks, token{tkNumber, sql[i:j]})
			i = j
		case isIdentChar(c):
			j := i
			for j < len(sql) && isIdentChar(sql[j]) {
				j++
			}
			toks = append(toks, token{tkIdent, strings.ToUpper(sql[i:j])})
			i = j
		case strings.ContainsRune("(),*=;<>", rune(c)):
			toks = append(toks, token{tkPunct, string(c)})
			i++
		default:
			return nil, fmt.Errorf("db: unexpected character %q", c)
		}
	}
	toks = append(toks, token{tkEOF, ""})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// --- parser/executor ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) accept(text string) bool {
	if p.peek().text == text && (p.peek().kind == tkIdent || p.peek().kind == tkPunct) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("db: expected %q, got %q", text, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tkIdent {
		return "", fmt.Errorf("db: expected identifier, got %q", t.text)
	}
	return strings.ToLower(t.text), nil
}

func (p *parser) value() (Value, error) {
	t := p.next()
	switch t.kind {
	case tkNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return NullValue, err
		}
		return IntValue(v), nil
	case tkString:
		return TextValue(t.text), nil
	case tkIdent:
		if t.text == "NULL" {
			return NullValue, nil
		}
	}
	return NullValue, fmt.Errorf("db: expected literal, got %q", t.text)
}

// Rows is a query result.
type Rows struct {
	Columns []string
	Rows    [][]Value
	// Affected counts modified rows for INSERT/UPDATE/DELETE.
	Affected int
}

// Exec parses and executes one SQL statement.
func (d *DB) Exec(env *mk.Env, sql string) (*Rows, error) {
	env.Compute(uint64(40 + 2*len(sql))) // tokenizer + parser work
	toks, err := tokenize(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	switch {
	case p.accept("CREATE"):
		return d.execCreate(env, p)
	case p.accept("INSERT"):
		return d.execInsert(env, p)
	case p.accept("SELECT"):
		return d.execSelect(env, p)
	case p.accept("UPDATE"):
		return d.execUpdate(env, p)
	case p.accept("DELETE"):
		return d.execDelete(env, p)
	case p.accept("BEGIN"):
		return &Rows{}, d.Begin(env)
	case p.accept("COMMIT"):
		return &Rows{}, d.Commit(env)
	case p.accept("ROLLBACK"):
		return &Rows{}, d.Rollback(env)
	default:
		return nil, fmt.Errorf("db: unsupported statement %q", p.peek().text)
	}
}

func (d *DB) execCreate(env *mk.Env, p *parser) (*Rows, error) {
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var cols []Column
	pkFirst := false
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		col := Column{Name: cname, Type: ColText}
		if p.accept("INTEGER") {
			col.Type = ColInt
			if p.accept("PRIMARY") {
				if err := p.expect("KEY"); err != nil {
					return nil, err
				}
				if len(cols) == 0 {
					pkFirst = true
				}
			}
		} else if p.accept("TEXT") {
			col.Type = ColText
		}
		cols = append(cols, col)
		if p.accept(")") {
			break
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
	}
	if _, err := d.CreateTable(env, name, cols, pkFirst); err != nil {
		return nil, err
	}
	return &Rows{}, nil
}

func (d *DB) execInsert(env *mk.Env, p *parser) (*Rows, error) {
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("db: no table %q", name)
	}
	if err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var vals []Value
	for {
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.accept(")") {
			break
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
	}
	if _, err := t.Insert(env, vals); err != nil {
		return nil, err
	}
	return &Rows{Affected: 1}, nil
}

// wherePred is a parsed "WHERE col = literal" predicate.
type wherePred struct {
	col string
	val Value
}

func (p *parser) parseWhere() (*wherePred, error) {
	if !p.accept("WHERE") {
		return nil, nil
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	v, err := p.value()
	if err != nil {
		return nil, err
	}
	return &wherePred{col: col, val: v}, nil
}

// matchRows returns the rowids matching the predicate, using a point
// lookup when the predicate covers the integer primary key.
func (t *Table) matchRows(env *mk.Env, pred *wherePred) ([]int64, [][]Value, error) {
	if pred == nil {
		var ids []int64
		var rows [][]Value
		err := t.Scan(env, func(rowid int64, vals []Value) bool {
			ids = append(ids, rowid)
			rows = append(rows, vals)
			return true
		})
		return ids, rows, err
	}
	ci, ok := t.ColumnIndex(pred.col)
	if !ok {
		return nil, nil, fmt.Errorf("db: no column %q in %s", pred.col, t.Name)
	}
	if ci == 0 && t.PKFirst && pred.val.Kind == KindInt {
		vals, ok, err := t.Get(env, pred.val.Int)
		if err != nil || !ok {
			return nil, nil, err
		}
		return []int64{pred.val.Int}, [][]Value{vals}, nil
	}
	var ids []int64
	var rows [][]Value
	err := t.Scan(env, func(rowid int64, vals []Value) bool {
		if vals[ci].Equal(pred.val) {
			ids = append(ids, rowid)
			rows = append(rows, vals)
		}
		return true
	})
	return ids, rows, err
}

func (d *DB) execSelect(env *mk.Env, p *parser) (*Rows, error) {
	var wantCols []string
	star := false
	if p.accept("*") {
		star = true
	} else {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			wantCols = append(wantCols, c)
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("db: no table %q", name)
	}
	pred, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	_, rows, err := t.matchRows(env, pred)
	if err != nil {
		return nil, err
	}
	out := &Rows{}
	if star {
		for _, c := range t.Columns {
			out.Columns = append(out.Columns, c.Name)
		}
		out.Rows = rows
		return out, nil
	}
	var idx []int
	for _, c := range wantCols {
		ci, ok := t.ColumnIndex(c)
		if !ok {
			return nil, fmt.Errorf("db: no column %q in %s", c, name)
		}
		idx = append(idx, ci)
		out.Columns = append(out.Columns, c)
	}
	for _, r := range rows {
		proj := make([]Value, len(idx))
		for i, ci := range idx {
			proj[i] = r[ci]
		}
		out.Rows = append(out.Rows, proj)
	}
	return out, nil
}

func (d *DB) execUpdate(env *mk.Env, p *parser) (*Rows, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("db: no table %q", name)
	}
	if err := p.expect("SET"); err != nil {
		return nil, err
	}
	type setClause struct {
		ci  int
		val Value
	}
	var sets []setClause
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci, ok := t.ColumnIndex(col)
		if !ok {
			return nil, fmt.Errorf("db: no column %q in %s", col, name)
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		sets = append(sets, setClause{ci, v})
		if !p.accept(",") {
			break
		}
	}
	pred, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	ids, rows, err := t.matchRows(env, pred)
	if err != nil {
		return nil, err
	}
	for i, rowid := range ids {
		vals := append([]Value(nil), rows[i]...)
		for _, s := range sets {
			vals[s.ci] = s.val
		}
		if _, err := t.Update(env, rowid, vals); err != nil {
			return nil, err
		}
	}
	return &Rows{Affected: len(ids)}, nil
}

func (d *DB) execDelete(env *mk.Env, p *parser) (*Rows, error) {
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("db: no table %q", name)
	}
	pred, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	ids, _, err := t.matchRows(env, pred)
	if err != nil {
		return nil, err
	}
	for _, rowid := range ids {
		if _, err := t.Delete(env, rowid); err != nil {
			return nil, err
		}
	}
	return &Rows{Affected: len(ids)}, nil
}
