package db

import (
	"encoding/binary"
	"fmt"

	"skybridge/internal/fs"
	"skybridge/internal/mk"
)

// dbMagic identifies page 0 of a database file.
const dbMagic = 0x53514C42 // "SQLB"

// ColType is a column type.
type ColType int

// Column types.
const (
	ColInt ColType = iota
	ColText
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Table is a catalogued table: rows live in a B+tree keyed by rowid. If
// the first column is declared INTEGER PRIMARY KEY it aliases the rowid.
type Table struct {
	Name    string
	Root    int
	Columns []Column
	PKFirst bool // first column is INTEGER PRIMARY KEY

	tree *Btree
	db   *DB
}

// DB is one open database.
type DB struct {
	Proc   *mk.Process
	pager  *Pager
	tables map[string]*Table

	// Stats.
	Inserts, Updates, Queries, Deletes uint64
}

// Open opens (creating if empty) a database stored in the named file on
// the FS service, with synchronous one-call-per-page IO.
func Open(env *mk.Env, proc *mk.Process, fsc *fs.Client, name string) (*DB, error) {
	return OpenIO(env, proc, fsc, name, PagerIO{})
}

// OpenIO is Open with an explicit pager IO mode (batched commits and/or
// an async ring for prefetch and writeback).
func OpenIO(env *mk.Env, proc *mk.Process, fsc *fs.Client, name string, io PagerIO) (*DB, error) {
	pager, err := OpenPagerIO(env, proc, fsc, name, io)
	if err != nil {
		return nil, err
	}
	d := &DB{Proc: proc, pager: pager, tables: make(map[string]*Table)}
	if pager.NPages() == 0 {
		// Fresh database: materialize the catalog page.
		if err := pager.Begin(); err != nil {
			return nil, err
		}
		if _, err := pager.Allocate(env); err != nil {
			return nil, err
		}
		if err := d.writeCatalog(env); err != nil {
			return nil, err
		}
		if err := pager.Commit(env); err != nil {
			return nil, err
		}
		return d, nil
	}
	return d, d.readCatalog(env)
}

// Pager exposes pager statistics.
func (d *DB) Pager() *Pager { return d.pager }

// writeCatalog serializes the schema to page 0.
func (d *DB) writeCatalog(env *mk.Env) error {
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(buf, dbMagic)
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(d.tables)))
	off := 8
	put := func(b []byte) {
		if off+1+len(b) > PageSize {
			panic("db: catalog overflow")
		}
		buf[off] = byte(len(b))
		copy(buf[off+1:], b)
		off += 1 + len(b)
	}
	for _, t := range d.tables {
		put([]byte(t.Name))
		binary.LittleEndian.PutUint32(buf[off:], uint32(t.Root))
		off += 4
		flags := byte(0)
		if t.PKFirst {
			flags = 1
		}
		buf[off] = flags
		buf[off+1] = byte(len(t.Columns))
		off += 2
		for _, c := range t.Columns {
			put([]byte(c.Name))
			buf[off] = byte(c.Type)
			off++
		}
	}
	pg, err := d.pager.Get(env, 0)
	if err != nil {
		return err
	}
	return d.pager.Write(env, pg, 0, buf)
}

// readCatalog loads the schema from page 0.
func (d *DB) readCatalog(env *mk.Env) error {
	pg, err := d.pager.Get(env, 0)
	if err != nil {
		return err
	}
	buf := pg.read(env, 0, PageSize)
	if binary.LittleEndian.Uint32(buf) != dbMagic {
		return fmt.Errorf("db: bad catalog magic")
	}
	ntables := int(binary.LittleEndian.Uint16(buf[4:]))
	off := 8
	get := func() string {
		n := int(buf[off])
		s := string(buf[off+1 : off+1+n])
		off += 1 + n
		return s
	}
	for i := 0; i < ntables; i++ {
		t := &Table{db: d}
		t.Name = get()
		t.Root = int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		t.PKFirst = buf[off]&1 != 0
		ncols := int(buf[off+1])
		off += 2
		for c := 0; c < ncols; c++ {
			name := get()
			typ := ColType(buf[off])
			off++
			t.Columns = append(t.Columns, Column{Name: name, Type: typ})
		}
		t.tree = OpenBtree(d.pager, t.Root)
		d.tables[t.Name] = t
	}
	return nil
}

// CreateTable creates a table (auto-commits unless inside an explicit
// transaction).
func (d *DB) CreateTable(env *mk.Env, name string, cols []Column, pkFirst bool) (*Table, error) {
	if _, ok := d.tables[name]; ok {
		return nil, fmt.Errorf("db: table %q exists", name)
	}
	auto, err := d.beginAuto(env)
	if err != nil {
		return nil, err
	}
	tree, err := CreateBtree(env, d.pager)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Root: tree.Root, Columns: cols, PKFirst: pkFirst, tree: tree, db: d}
	d.tables[name] = t
	if err := d.writeCatalog(env); err != nil {
		return nil, err
	}
	return t, d.commitAuto(env, auto)
}

// TableByName looks a table up.
func (d *DB) TableByName(name string) (*Table, bool) {
	t, ok := d.tables[name]
	return t, ok
}

// Begin opens an explicit transaction.
func (d *DB) Begin(env *mk.Env) error { return d.pager.Begin() }

// Commit commits an explicit transaction.
func (d *DB) Commit(env *mk.Env) error { return d.pager.Commit(env) }

// Rollback aborts an explicit transaction.
func (d *DB) Rollback(env *mk.Env) error { return d.pager.Rollback(env) }

// beginAuto opens a transaction if none is active; commitAuto commits it.
func (d *DB) beginAuto(env *mk.Env) (bool, error) {
	if d.pager.InTx() {
		return false, nil
	}
	return true, d.pager.Begin()
}

func (d *DB) commitAuto(env *mk.Env, auto bool) error {
	if !auto {
		return nil
	}
	return d.pager.Commit(env)
}

// Insert adds a row, returning its rowid. With PKFirst, the first value
// supplies the rowid; otherwise it is max+1.
func (t *Table) Insert(env *mk.Env, vals []Value) (int64, error) {
	if len(vals) != len(t.Columns) {
		return 0, fmt.Errorf("db: %s: %d values for %d columns", t.Name, len(vals), len(t.Columns))
	}
	var rowid int64
	if t.PKFirst {
		if vals[0].Kind != KindInt {
			return 0, fmt.Errorf("db: %s: primary key must be an integer", t.Name)
		}
		rowid = vals[0].Int
	} else {
		maxKey, ok, err := t.tree.MaxKey(env)
		if err != nil {
			return 0, err
		}
		if ok {
			rowid = maxKey + 1
		} else {
			rowid = 1
		}
	}
	auto, err := t.db.beginAuto(env)
	if err != nil {
		return 0, err
	}
	rec := EncodeRecord(vals)
	env.Compute(uint64(20 + len(rec)/4)) // encoding cost
	if err := t.tree.Insert(env, rowid, rec); err != nil {
		return 0, err
	}
	t.db.Inserts++
	return rowid, t.db.commitAuto(env, auto)
}

// Get fetches the row with the given rowid.
func (t *Table) Get(env *mk.Env, rowid int64) ([]Value, bool, error) {
	rec, ok, err := t.tree.Search(env, rowid)
	if err != nil || !ok {
		return nil, ok, err
	}
	env.Compute(uint64(10 + len(rec)/4))
	vals, err := DecodeRecord(rec)
	if err != nil {
		return nil, false, err
	}
	t.db.Queries++
	return vals, true, nil
}

// Update replaces the row with the given rowid.
func (t *Table) Update(env *mk.Env, rowid int64, vals []Value) (bool, error) {
	_, ok, err := t.tree.Search(env, rowid)
	if err != nil || !ok {
		return ok, err
	}
	auto, err := t.db.beginAuto(env)
	if err != nil {
		return false, err
	}
	rec := EncodeRecord(vals)
	env.Compute(uint64(20 + len(rec)/4))
	if err := t.tree.Insert(env, rowid, rec); err != nil {
		return false, err
	}
	t.db.Updates++
	return true, t.db.commitAuto(env, auto)
}

// Delete removes the row with the given rowid.
func (t *Table) Delete(env *mk.Env, rowid int64) (bool, error) {
	auto, err := t.db.beginAuto(env)
	if err != nil {
		return false, err
	}
	ok, err := t.tree.Delete(env, rowid)
	if err != nil {
		return false, err
	}
	if ok {
		t.db.Deletes++
	}
	return ok, t.db.commitAuto(env, auto)
}

// Scan iterates all rows in rowid order.
func (t *Table) Scan(env *mk.Env, fn func(rowid int64, vals []Value) bool) error {
	return t.tree.Scan(env, func(key int64, rec []byte) bool {
		vals, err := DecodeRecord(rec)
		if err != nil {
			return false
		}
		env.Compute(uint64(10 + len(rec)/8))
		return fn(key, vals)
	})
}

// ScanFrom iterates rows in rowid order starting at the first rowid >=
// start, until fn returns false (range scans, YCSB workload E).
func (t *Table) ScanFrom(env *mk.Env, start int64, fn func(rowid int64, vals []Value) bool) error {
	return t.tree.ScanFrom(env, start, func(key int64, rec []byte) bool {
		vals, err := DecodeRecord(rec)
		if err != nil {
			return false
		}
		env.Compute(uint64(10 + len(rec)/8))
		return fn(key, vals)
	})
}

// ColumnIndex resolves a column name.
func (t *Table) ColumnIndex(name string) (int, bool) {
	for i, c := range t.Columns {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}
