package db

import (
	"errors"
	"fmt"
	"sort"

	"skybridge/internal/core"
	"skybridge/internal/fs"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/svc"
)

// PageSize is the database page size.
const PageSize = 4096

// cachePages is the pager cache capacity ("the SQLite3 has an internal
// cache to handle the recent read requests, which thus avoids a large
// number of IPC operations" — the reason Table 4's query row speeds up
// least).
const cachePages = 64

// page is a cached database page. Data is authoritative while cached;
// slotVA charges accesses against the client's address space.
type page struct {
	no     int
	data   []byte
	slotVA hw.VA
	dirty  bool
	lru    uint64
	valid  bool
}

// PagerIO selects how the pager routes its FS traffic.
type PagerIO struct {
	// Batch folds each commit's journal-record writes and dirty-page
	// writeback into batched WriteAt crossings (svc.InvokeBatch) instead
	// of one crossing per page.
	Batch bool
	// Async, when non-nil, is a second connection to the FS server with
	// an async submission/completion ring: commit writeback streams
	// through the ring (overlapping page writes with the server applying
	// them), and Prefetch warms the cache ahead of B+tree scans.
	Async *svc.AsyncConn
}

// Pager caches database pages over a file served by the FS, with a
// rollback journal providing transactional atomicity.
type Pager struct {
	fsc     *fs.Client
	io      PagerIO
	fd      uint64
	jname   string
	name    string
	npages  int
	cache   [cachePages]page
	index   map[int]*page
	clock   uint64
	inTx    bool
	journal map[int][]byte // original images of pages dirtied this tx
	// pf lists the page numbers of prefetch reads still in flight on the
	// async ring, in submission order (completions arrive in that order,
	// so pf[0] always names the next completion to install).
	pf []int

	// Stats.
	Hits, Misses uint64
	FsReads      uint64
	FsWrites     uint64
	Prefetches   uint64
}

// OpenPager opens (creating if needed) the database file and its journal,
// rolling back any hot journal left by a crash. All IO is synchronous
// one-call-per-page; use OpenPagerIO for the fast paths.
func OpenPager(env *mk.Env, proc *mk.Process, fsc *fs.Client, name string) (*Pager, error) {
	return OpenPagerIO(env, proc, fsc, name, PagerIO{})
}

// OpenPagerIO is OpenPager with an explicit IO mode.
func OpenPagerIO(env *mk.Env, proc *mk.Process, fsc *fs.Client, name string, io PagerIO) (*Pager, error) {
	fd, size, err := fsc.Open(env, name, true)
	if err != nil {
		return nil, err
	}
	p := &Pager{
		fsc:     fsc,
		io:      io,
		fd:      fd,
		name:    name,
		jname:   name + "-journal",
		npages:  int(size) / PageSize,
		index:   make(map[int]*page, cachePages),
		journal: make(map[int][]byte),
	}
	region := proc.Alloc(cachePages * PageSize)
	for i := range p.cache {
		p.cache[i].slotVA = region + hw.VA(i*PageSize)
	}
	if err := p.rollbackHotJournal(env); err != nil {
		return nil, err
	}
	return p, nil
}

// SetIO swaps the pager's IO mode, e.g. to move onto an async ring after
// a load phase. The caller must not swap while ring operations are in
// flight (mid-Prefetch or mid-writeback).
func (p *Pager) SetIO(io PagerIO) { p.io = io }

// NPages returns the current database size in pages.
func (p *Pager) NPages() int { return p.npages }

// Get returns page no, faulting it in from the FS on a miss.
func (p *Pager) Get(env *mk.Env, no int) (*page, error) {
	p.clock++
	if pg, ok := p.index[no]; ok {
		p.Hits++
		pg.lru = p.clock
		env.Compute(15) // cache lookup
		return pg, nil
	}
	p.Misses++
	if p.pfHas(no) {
		// The page is already on its way in: reap ring completions until
		// it lands instead of issuing a duplicate synchronous read.
		if err := p.io.Async.Flush(env); err != nil {
			return nil, err
		}
		for p.pfHas(no) {
			if err := p.reapPrefetch(env, 1); err != nil {
				return nil, err
			}
		}
		if pg, ok := p.index[no]; ok {
			pg.lru = p.clock
			return pg, nil
		}
		// Install dropped the page (every slot dirty): fall through to the
		// synchronous path, which fails the same way a plain miss would.
	}
	var victim *page
	for i := range p.cache {
		pg := &p.cache[i]
		if !pg.valid {
			victim = pg
			break
		}
		if pg.dirty {
			continue // dirty pages are held until commit
		}
		if victim == nil || pg.lru < victim.lru {
			victim = pg
		}
	}
	if victim == nil {
		return nil, fmt.Errorf("db: page cache full of dirty pages")
	}
	if victim.valid {
		delete(p.index, victim.no)
	}
	p.FsReads++
	data, err := p.fsc.ReadAt(env, p.fd, no*PageSize, PageSize)
	if err != nil {
		return nil, err
	}
	if len(data) < PageSize {
		data = append(data, make([]byte, PageSize-len(data))...)
	}
	victim.no = no
	victim.data = append(victim.data[:0], data...)
	victim.dirty = false
	victim.valid = true
	victim.lru = p.clock
	p.index[no] = victim
	env.Write(victim.slotVA, nil, PageSize)
	return victim, nil
}

// read charges and returns n bytes at off of the page.
func (pg *page) read(env *mk.Env, off, n int) []byte {
	env.Read(pg.slotVA+hw.VA(off), nil, n)
	return pg.data[off : off+n]
}

// Write modifies a page inside the current transaction, journaling its
// original image first.
func (p *Pager) Write(env *mk.Env, pg *page, off int, data []byte) error {
	if !p.inTx {
		return fmt.Errorf("db: page write outside transaction")
	}
	if _, ok := p.journal[pg.no]; !ok {
		p.journal[pg.no] = append([]byte(nil), pg.data...)
	}
	env.Write(pg.slotVA+hw.VA(off), nil, len(data))
	copy(pg.data[off:], data)
	pg.dirty = true
	return nil
}

// Allocate appends a fresh zeroed page to the database inside the current
// transaction and returns it.
func (p *Pager) Allocate(env *mk.Env) (*page, error) {
	if !p.inTx {
		return nil, fmt.Errorf("db: allocate outside transaction")
	}
	no := p.npages
	p.npages++
	pg, err := p.Get(env, no)
	if err != nil {
		return nil, err
	}
	for i := range pg.data {
		pg.data[i] = 0
	}
	p.journal[no] = nil // newly allocated: rollback just shrinks the file
	pg.dirty = true
	env.Write(pg.slotVA, nil, PageSize)
	return pg, nil
}

// Begin opens a transaction.
func (p *Pager) Begin() error {
	if p.inTx {
		return fmt.Errorf("db: nested transaction")
	}
	p.inTx = true
	return nil
}

// InTx reports whether a transaction is open.
func (p *Pager) InTx() bool { return p.inTx }

// Commit writes the journal (making the transaction durable-or-invisible),
// flushes the dirty pages to the database file, and clears the journal —
// the classic SQLite rollback-journal protocol.
func (p *Pager) Commit(env *mk.Env) error {
	if !p.inTx {
		return fmt.Errorf("db: commit outside transaction")
	}
	p.inTx = false
	if p.io.Async != nil {
		// The commit's ring traffic (async writeback) pairs completions
		// with its own submissions; in-flight prefetch reads must retire
		// first.
		if err := p.drainPrefetch(env); err != nil {
			return err
		}
	}
	if len(p.journal) == 0 {
		return nil
	}
	// 1. Journal file: original page images in page-number order (the
	// map's iteration order must not leak into the on-disk layout or the
	// batched submission order), then the header that commits them.
	jfd, _, err := p.fsc.Open(env, p.jname, true)
	if err != nil {
		return err
	}
	nos := make([]int, 0, len(p.journal))
	for no, orig := range p.journal {
		if orig == nil {
			continue // page was fresh; nothing to restore
		}
		nos = append(nos, no)
	}
	sort.Ints(nos)
	offs := make([]int, 0, len(nos)+1)
	datas := make([][]byte, 0, len(nos)+1)
	off := PageSize
	for _, no := range nos {
		rec := make([]byte, 8+PageSize)
		putU64(rec, 0, uint64(no))
		copy(rec[8:], p.journal[no])
		offs = append(offs, off)
		datas = append(datas, rec)
		off += len(rec)
	}
	hdr := make([]byte, 16)
	putU64(hdr, 0, journalMagic)
	putU64(hdr, 8, uint64(len(nos)))
	offs = append(offs, 0)
	datas = append(datas, hdr)
	if p.io.Batch {
		err = p.fsc.WriteAtBatch(env, jfd, offs, datas)
	} else {
		for i := range offs {
			if err = p.fsc.WriteAt(env, jfd, offs[i], datas[i]); err != nil {
				break
			}
		}
	}
	if err != nil {
		return err
	}
	if err := p.fsc.Fsync(env); err != nil {
		return err
	}
	// 2. Write dirty pages home.
	if err := p.writeback(env); err != nil {
		return err
	}
	if err := p.fsc.Fsync(env); err != nil {
		return err
	}
	// 3. Invalidate the journal.
	if err := p.fsc.Truncate(env, jfd); err != nil {
		return err
	}
	p.journal = make(map[int][]byte)
	return nil
}

// writeback flushes every dirty cached page to the database file, through
// the async ring, batched crossings, or one call per page depending on
// the pager's IO mode.
func (p *Pager) writeback(env *mk.Env) error {
	if p.io.Async != nil {
		return p.writebackAsync(env)
	}
	if p.io.Batch {
		var offs []int
		var datas [][]byte
		for i := range p.cache {
			pg := &p.cache[i]
			if pg.valid && pg.dirty {
				p.FsWrites++
				offs = append(offs, pg.no*PageSize)
				datas = append(datas, pg.data)
				pg.dirty = false
			}
		}
		return p.fsc.WriteAtBatch(env, p.fd, offs, datas)
	}
	for i := range p.cache {
		pg := &p.cache[i]
		if pg.valid && pg.dirty {
			p.FsWrites++
			if err := p.fsc.WriteAt(env, p.fd, pg.no*PageSize, pg.data); err != nil {
				return err
			}
			pg.dirty = false
		}
	}
	return nil
}

// writebackAsync streams the dirty pages through the submission ring,
// keeping up to queue-depth writes in flight so the FS server applies
// earlier pages while the client stages later ones. All completions are
// reaped before returning — the caller's Fsync must order after every
// write.
func (p *Pager) writebackAsync(env *mk.Env) error {
	ac := p.io.Async
	pending := 0
	check := func(resps []svc.Resp) error {
		pending -= len(resps)
		for _, r := range resps {
			if r.Status != fs.StatusOK {
				return fmt.Errorf("db: async writeback failed: status %d", r.Status)
			}
		}
		return nil
	}
	for i := range p.cache {
		pg := &p.cache[i]
		if !pg.valid || !pg.dirty {
			continue
		}
		p.FsWrites++
		req := svc.Req{Op: fs.OpWrite, Args: [3]uint64{p.fd, uint64(pg.no * PageSize)}, Data: pg.data}
		for {
			err := ac.Submit(env, req)
			if err == nil {
				break
			}
			if !errors.Is(err, core.ErrRingFull) {
				return err
			}
			if err := ac.Flush(env); err != nil {
				return err
			}
			resps, err := ac.Reap(env, 1)
			if err != nil {
				return err
			}
			if err := check(resps); err != nil {
				return err
			}
		}
		pending++
		pg.dirty = false
	}
	if pending > 0 {
		if err := ac.Flush(env); err != nil {
			return err
		}
		resps, err := ac.Reap(env, pending)
		if err != nil {
			return err
		}
		if err := check(resps); err != nil {
			return err
		}
	}
	return nil
}

// prefetchWindow bounds one Prefetch call: readahead past the next few
// pages evicts more of the cache than the scan will get back (a B+tree
// interior node can list far more children than a bounded scan visits).
const prefetchWindow = 8

// Prefetch starts warming the cache with the given pages through the
// async ring and returns with the reads still in flight: the caller keeps
// scanning already-cached pages while the FS server fills the ring, and
// Get reaps a prefetched page the moment it is actually needed. Pages
// already cached, already in flight, or beyond the file are skipped, and
// at most prefetchWindow pages are fetched; fetched pages that find no
// clean cache slot are dropped. A no-op without an async ring, so B+tree
// scans can call it unconditionally.
func (p *Pager) Prefetch(env *mk.Env, nos []int) error {
	ac := p.io.Async
	if ac == nil {
		return nil
	}
	submitted := 0
	for _, no := range nos {
		if len(p.pf) >= prefetchWindow {
			break
		}
		if _, ok := p.index[no]; ok {
			continue
		}
		if no < 0 || no >= p.npages || p.pfHas(no) {
			continue
		}
		err := ac.Submit(env, svc.Req{Op: fs.OpRead, Args: [3]uint64{p.fd, uint64(no * PageSize), PageSize}})
		if errors.Is(err, core.ErrRingFull) {
			// Readahead fills free ring slots and never blocks: stalling
			// the scan to make room would serialize it on exactly the
			// latency prefetch exists to hide. The next Prefetch (or a Get
			// reaping on demand) tops the ring back up.
			break
		}
		if err != nil {
			return err
		}
		p.Prefetches++
		p.pf = append(p.pf, no)
		submitted++
	}
	if submitted > 0 {
		// Publish the tail (a doorbell only if the server's poll loop went
		// to sleep); the reaps happen on demand in Get or drainPrefetch.
		return ac.Flush(env)
	}
	return nil
}

// reapPrefetch reaps at least minN in-flight prefetch completions and
// installs them. Completions arrive in submission order, so they pair
// with p.pf positionally.
func (p *Pager) reapPrefetch(env *mk.Env, minN int) error {
	resps, err := p.io.Async.Reap(env, minN)
	if err != nil {
		return err
	}
	for _, r := range resps {
		no := p.pf[0]
		p.pf = p.pf[1:]
		if r.Status != fs.StatusOK {
			return fmt.Errorf("db: prefetch page %d: status %d", no, r.Status)
		}
		p.installPage(env, no, r.Data)
	}
	return nil
}

// drainPrefetch retires every in-flight prefetch read. Ring users that
// pair completions with their own submissions positionally (async
// writeback) must drain first, and so must anything that orders against
// reads (commit).
func (p *Pager) drainPrefetch(env *mk.Env) error {
	if len(p.pf) == 0 {
		return nil
	}
	if err := p.io.Async.Flush(env); err != nil {
		return err
	}
	for len(p.pf) > 0 {
		if err := p.reapPrefetch(env, len(p.pf)); err != nil {
			return err
		}
	}
	return nil
}

// pfHas reports whether page no has a prefetch read in flight.
func (p *Pager) pfHas(no int) bool {
	for _, v := range p.pf {
		if v == no {
			return true
		}
	}
	return false
}

// installPage caches a prefetched page image, evicting the
// least-recently-used clean page. Under pressure (every slot dirty) the
// prefetch is dropped rather than displacing transaction state.
func (p *Pager) installPage(env *mk.Env, no int, data []byte) {
	if _, ok := p.index[no]; ok {
		return
	}
	p.clock++
	var victim *page
	for i := range p.cache {
		pg := &p.cache[i]
		if !pg.valid {
			victim = pg
			break
		}
		if pg.dirty {
			continue
		}
		if victim == nil || pg.lru < victim.lru {
			victim = pg
		}
	}
	if victim == nil {
		return
	}
	if victim.valid {
		delete(p.index, victim.no)
	}
	if len(data) < PageSize {
		data = append(data, make([]byte, PageSize-len(data))...)
	}
	victim.no = no
	victim.data = append(victim.data[:0], data...)
	victim.dirty = false
	victim.valid = true
	victim.lru = p.clock
	p.index[no] = victim
	env.Write(victim.slotVA, nil, PageSize)
}

// Rollback discards the transaction's in-memory changes.
func (p *Pager) Rollback(env *mk.Env) error {
	if !p.inTx {
		return fmt.Errorf("db: rollback outside transaction")
	}
	p.inTx = false
	for no, orig := range p.journal {
		if pg, ok := p.index[no]; ok {
			if orig != nil {
				copy(pg.data, orig)
				env.Write(pg.slotVA, nil, PageSize)
			} else {
				pg.valid = false
				delete(p.index, no)
			}
			pg.dirty = false
		}
	}
	// Pages allocated this tx disappear.
	for no, orig := range p.journal {
		if orig == nil && no < p.npages {
			p.npages = no
		}
	}
	p.journal = make(map[int][]byte)
	return nil
}

const journalMagic = 0x5B_1C_CAFE

// rollbackHotJournal applies a leftover journal (crash between journal
// write and commit completion).
func (p *Pager) rollbackHotJournal(env *mk.Env) error {
	jfd, size, err := p.fsc.Open(env, p.jname, true)
	if err != nil {
		return err
	}
	if size < 16 {
		return nil
	}
	h, err := p.fsc.ReadAt(env, jfd, 0, 16)
	if err != nil {
		return err
	}
	if getU64(h, 0) != journalMagic {
		return nil
	}
	cnt := int(getU64(h, 8))
	off := PageSize
	for i := 0; i < cnt; i++ {
		rec, err := p.fsc.ReadAt(env, jfd, off, 8+PageSize)
		if err != nil {
			return err
		}
		if len(rec) < 8+PageSize {
			break
		}
		no := int(getU64(rec, 0))
		if err := p.fsc.WriteAt(env, p.fd, no*PageSize, rec[8:8+PageSize]); err != nil {
			return err
		}
		off += 8 + PageSize
	}
	return p.fsc.Truncate(env, jfd)
}

func putU64(b []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte, off int) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[off+i])
	}
	return v
}
