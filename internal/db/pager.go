package db

import (
	"fmt"

	"skybridge/internal/fs"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
)

// PageSize is the database page size.
const PageSize = 4096

// cachePages is the pager cache capacity ("the SQLite3 has an internal
// cache to handle the recent read requests, which thus avoids a large
// number of IPC operations" — the reason Table 4's query row speeds up
// least).
const cachePages = 64

// page is a cached database page. Data is authoritative while cached;
// slotVA charges accesses against the client's address space.
type page struct {
	no     int
	data   []byte
	slotVA hw.VA
	dirty  bool
	lru    uint64
	valid  bool
}

// Pager caches database pages over a file served by the FS, with a
// rollback journal providing transactional atomicity.
type Pager struct {
	fsc     *fs.Client
	fd      uint64
	jname   string
	name    string
	npages  int
	cache   [cachePages]page
	index   map[int]*page
	clock   uint64
	inTx    bool
	journal map[int][]byte // original images of pages dirtied this tx

	// Stats.
	Hits, Misses uint64
	FsReads      uint64
	FsWrites     uint64
}

// OpenPager opens (creating if needed) the database file and its journal,
// rolling back any hot journal left by a crash.
func OpenPager(env *mk.Env, proc *mk.Process, fsc *fs.Client, name string) (*Pager, error) {
	fd, size, err := fsc.Open(env, name, true)
	if err != nil {
		return nil, err
	}
	p := &Pager{
		fsc:     fsc,
		fd:      fd,
		name:    name,
		jname:   name + "-journal",
		npages:  int(size) / PageSize,
		index:   make(map[int]*page, cachePages),
		journal: make(map[int][]byte),
	}
	region := proc.Alloc(cachePages * PageSize)
	for i := range p.cache {
		p.cache[i].slotVA = region + hw.VA(i*PageSize)
	}
	if err := p.rollbackHotJournal(env); err != nil {
		return nil, err
	}
	return p, nil
}

// NPages returns the current database size in pages.
func (p *Pager) NPages() int { return p.npages }

// Get returns page no, faulting it in from the FS on a miss.
func (p *Pager) Get(env *mk.Env, no int) (*page, error) {
	p.clock++
	if pg, ok := p.index[no]; ok {
		p.Hits++
		pg.lru = p.clock
		env.Compute(15) // cache lookup
		return pg, nil
	}
	p.Misses++
	var victim *page
	for i := range p.cache {
		pg := &p.cache[i]
		if !pg.valid {
			victim = pg
			break
		}
		if pg.dirty {
			continue // dirty pages are held until commit
		}
		if victim == nil || pg.lru < victim.lru {
			victim = pg
		}
	}
	if victim == nil {
		return nil, fmt.Errorf("db: page cache full of dirty pages")
	}
	if victim.valid {
		delete(p.index, victim.no)
	}
	p.FsReads++
	data, err := p.fsc.ReadAt(env, p.fd, no*PageSize, PageSize)
	if err != nil {
		return nil, err
	}
	if len(data) < PageSize {
		data = append(data, make([]byte, PageSize-len(data))...)
	}
	victim.no = no
	victim.data = append(victim.data[:0], data...)
	victim.dirty = false
	victim.valid = true
	victim.lru = p.clock
	p.index[no] = victim
	env.Write(victim.slotVA, nil, PageSize)
	return victim, nil
}

// read charges and returns n bytes at off of the page.
func (pg *page) read(env *mk.Env, off, n int) []byte {
	env.Read(pg.slotVA+hw.VA(off), nil, n)
	return pg.data[off : off+n]
}

// Write modifies a page inside the current transaction, journaling its
// original image first.
func (p *Pager) Write(env *mk.Env, pg *page, off int, data []byte) error {
	if !p.inTx {
		return fmt.Errorf("db: page write outside transaction")
	}
	if _, ok := p.journal[pg.no]; !ok {
		p.journal[pg.no] = append([]byte(nil), pg.data...)
	}
	env.Write(pg.slotVA+hw.VA(off), nil, len(data))
	copy(pg.data[off:], data)
	pg.dirty = true
	return nil
}

// Allocate appends a fresh zeroed page to the database inside the current
// transaction and returns it.
func (p *Pager) Allocate(env *mk.Env) (*page, error) {
	if !p.inTx {
		return nil, fmt.Errorf("db: allocate outside transaction")
	}
	no := p.npages
	p.npages++
	pg, err := p.Get(env, no)
	if err != nil {
		return nil, err
	}
	for i := range pg.data {
		pg.data[i] = 0
	}
	p.journal[no] = nil // newly allocated: rollback just shrinks the file
	pg.dirty = true
	env.Write(pg.slotVA, nil, PageSize)
	return pg, nil
}

// Begin opens a transaction.
func (p *Pager) Begin() error {
	if p.inTx {
		return fmt.Errorf("db: nested transaction")
	}
	p.inTx = true
	return nil
}

// InTx reports whether a transaction is open.
func (p *Pager) InTx() bool { return p.inTx }

// Commit writes the journal (making the transaction durable-or-invisible),
// flushes the dirty pages to the database file, and clears the journal —
// the classic SQLite rollback-journal protocol.
func (p *Pager) Commit(env *mk.Env) error {
	if !p.inTx {
		return fmt.Errorf("db: commit outside transaction")
	}
	p.inTx = false
	if len(p.journal) == 0 {
		return nil
	}
	// 1. Journal file: header (count) + original page images.
	jfd, _, err := p.fsc.Open(env, p.jname, true)
	if err != nil {
		return err
	}
	hdr := make([]byte, 16)
	cnt := 0
	off := PageSize
	for no, orig := range p.journal {
		if orig == nil {
			continue // page was fresh; nothing to restore
		}
		rec := make([]byte, 8+PageSize)
		putU64(rec, 0, uint64(no))
		copy(rec[8:], orig)
		if err := p.fsc.WriteAt(env, jfd, off, rec); err != nil {
			return err
		}
		off += len(rec)
		cnt++
	}
	putU64(hdr, 0, journalMagic)
	putU64(hdr, 8, uint64(cnt))
	if err := p.fsc.WriteAt(env, jfd, 0, hdr); err != nil {
		return err
	}
	if err := p.fsc.Fsync(env); err != nil {
		return err
	}
	// 2. Write dirty pages home.
	for i := range p.cache {
		pg := &p.cache[i]
		if pg.valid && pg.dirty {
			p.FsWrites++
			if err := p.fsc.WriteAt(env, p.fd, pg.no*PageSize, pg.data); err != nil {
				return err
			}
			pg.dirty = false
		}
	}
	if err := p.fsc.Fsync(env); err != nil {
		return err
	}
	// 3. Invalidate the journal.
	if err := p.fsc.Truncate(env, jfd); err != nil {
		return err
	}
	p.journal = make(map[int][]byte)
	return nil
}

// Rollback discards the transaction's in-memory changes.
func (p *Pager) Rollback(env *mk.Env) error {
	if !p.inTx {
		return fmt.Errorf("db: rollback outside transaction")
	}
	p.inTx = false
	for no, orig := range p.journal {
		if pg, ok := p.index[no]; ok {
			if orig != nil {
				copy(pg.data, orig)
				env.Write(pg.slotVA, nil, PageSize)
			} else {
				pg.valid = false
				delete(p.index, no)
			}
			pg.dirty = false
		}
	}
	// Pages allocated this tx disappear.
	for no, orig := range p.journal {
		if orig == nil && no < p.npages {
			p.npages = no
		}
	}
	p.journal = make(map[int][]byte)
	return nil
}

const journalMagic = 0x5B_1C_CAFE

// rollbackHotJournal applies a leftover journal (crash between journal
// write and commit completion).
func (p *Pager) rollbackHotJournal(env *mk.Env) error {
	jfd, size, err := p.fsc.Open(env, p.jname, true)
	if err != nil {
		return err
	}
	if size < 16 {
		return nil
	}
	h, err := p.fsc.ReadAt(env, jfd, 0, 16)
	if err != nil {
		return err
	}
	if getU64(h, 0) != journalMagic {
		return nil
	}
	cnt := int(getU64(h, 8))
	off := PageSize
	for i := 0; i < cnt; i++ {
		rec, err := p.fsc.ReadAt(env, jfd, off, 8+PageSize)
		if err != nil {
			return err
		}
		if len(rec) < 8+PageSize {
			break
		}
		no := int(getU64(rec, 0))
		if err := p.fsc.WriteAt(env, p.fd, no*PageSize, rec[8:8+PageSize]); err != nil {
			return err
		}
		off += 8 + PageSize
	}
	return p.fsc.Truncate(env, jfd)
}

func putU64(b []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte, off int) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[off+i])
	}
	return v
}
