package db

import (
	"fmt"
	"math/rand"
	"testing"

	"skybridge/internal/blockdev"
	"skybridge/internal/fs"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
	"skybridge/internal/svc"
)

// dbWorld runs body with an open database over a local (Baseline) FS and
// block device in one process.
func dbWorld(t *testing.T, body func(env *mk.Env, d *DB)) {
	t.Helper()
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 2 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("dbworld")
	dev := blockdev.New(p, 4096)
	f := fs.New(p, svc.NewLocal(dev.Handler()))
	p.Spawn("main", k.Mach.Cores[0], func(env *mk.Env) {
		if err := f.Mkfs(env, 4096, 64); err != nil {
			t.Errorf("mkfs: %v", err)
			return
		}
		fsc := &fs.Client{Conn: svc.NewLocal(f.Handler())}
		d, err := Open(env, p, fsc, "test.db")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		body(env, d)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func mustExec(t *testing.T, env *mk.Env, d *DB, sql string) *Rows {
	t.Helper()
	r, err := d.Exec(env, sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return r
}

func TestRecordCodecRoundTrip(t *testing.T) {
	cases := [][]Value{
		{IntValue(42)},
		{TextValue("hello")},
		{NullValue},
		{IntValue(-7), TextValue("mixed"), NullValue, IntValue(1 << 40)},
		{TextValue(""), TextValue(string(make([]byte, 1000)))},
	}
	for _, vals := range cases {
		rec := EncodeRecord(vals)
		got, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("%v: %v", vals, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("%v: got %v", vals, got)
		}
		for i := range vals {
			if got[i].Kind != vals[i].Kind || got[i].Int != vals[i].Int || got[i].Text != vals[i].Text {
				t.Fatalf("%v round-tripped to %v", vals, got)
			}
		}
	}
}

func TestSQLBasics(t *testing.T) {
	dbWorld(t, func(env *mk.Env, d *DB) {
		mustExec(t, env, d, "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT, age INTEGER)")
		mustExec(t, env, d, "INSERT INTO users VALUES (1, 'alice', 30)")
		mustExec(t, env, d, "INSERT INTO users VALUES (2, 'bob', 25)")

		r := mustExec(t, env, d, "SELECT * FROM users WHERE id = 1")
		if len(r.Rows) != 1 || r.Rows[0][1].Text != "alice" {
			t.Errorf("select: %+v", r.Rows)
		}
		r = mustExec(t, env, d, "SELECT name FROM users WHERE age = 25")
		if len(r.Rows) != 1 || r.Rows[0][0].Text != "bob" {
			t.Errorf("scan select: %+v", r.Rows)
		}
		r = mustExec(t, env, d, "UPDATE users SET age = 26 WHERE id = 2")
		if r.Affected != 1 {
			t.Errorf("update affected %d", r.Affected)
		}
		r = mustExec(t, env, d, "SELECT age FROM users WHERE id = 2")
		if len(r.Rows) != 1 || r.Rows[0][0].Int != 26 {
			t.Errorf("after update: %+v", r.Rows)
		}
		r = mustExec(t, env, d, "DELETE FROM users WHERE id = 1")
		if r.Affected != 1 {
			t.Errorf("delete affected %d", r.Affected)
		}
		r = mustExec(t, env, d, "SELECT * FROM users")
		if len(r.Rows) != 1 {
			t.Errorf("after delete: %+v", r.Rows)
		}
	})
}

func TestSQLStringEscapes(t *testing.T) {
	dbWorld(t, func(env *mk.Env, d *DB) {
		mustExec(t, env, d, "CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT)")
		mustExec(t, env, d, "INSERT INTO t VALUES (1, 'it''s quoted')")
		r := mustExec(t, env, d, "SELECT s FROM t WHERE id = 1")
		if r.Rows[0][0].Text != "it's quoted" {
			t.Errorf("got %q", r.Rows[0][0].Text)
		}
	})
}

func TestSQLErrors(t *testing.T) {
	dbWorld(t, func(env *mk.Env, d *DB) {
		if _, err := d.Exec(env, "SELECT * FROM missing"); err == nil {
			t.Error("select from missing table succeeded")
		}
		if _, err := d.Exec(env, "DROP TABLE x"); err == nil {
			t.Error("unsupported statement accepted")
		}
		mustExec(t, env, d, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
		if _, err := d.Exec(env, "CREATE TABLE t (id INTEGER PRIMARY KEY)"); err == nil {
			t.Error("duplicate table accepted")
		}
		if _, err := d.Exec(env, "SELECT nope FROM t"); err == nil {
			t.Error("unknown column accepted")
		}
	})
}

func TestBtreeManyInsertsAndSplits(t *testing.T) {
	dbWorld(t, func(env *mk.Env, d *DB) {
		mustExec(t, env, d, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
		tab, _ := d.TableByName("kv")
		const n = 600 // forces multiple leaf splits and a root split
		rng := rand.New(rand.NewSource(3))
		perm := rng.Perm(n)
		for _, i := range perm {
			val := fmt.Sprintf("value-%04d-%s", i, string(make([]byte, 40)))
			if _, err := tab.Insert(env, []Value{IntValue(int64(i)), TextValue(val)}); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
		// Every key retrievable.
		for i := 0; i < n; i++ {
			vals, ok, err := tab.Get(env, int64(i))
			if err != nil || !ok {
				t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
			}
			want := fmt.Sprintf("value-%04d-", i)
			if vals[1].Text[:len(want)] != want {
				t.Fatalf("get %d: %q", i, vals[1].Text[:20])
			}
		}
		// Scan returns all keys in order.
		prev := int64(-1)
		count := 0
		tab.Scan(env, func(rowid int64, vals []Value) bool {
			if rowid <= prev {
				t.Errorf("scan out of order: %d after %d", rowid, prev)
			}
			prev = rowid
			count++
			return true
		})
		if count != n {
			t.Fatalf("scan saw %d rows, want %d", count, n)
		}
	})
}

// TestBtreeAgainstModel drives random operations against both the B+tree
// and a Go map and checks they agree.
func TestBtreeAgainstModel(t *testing.T) {
	dbWorld(t, func(env *mk.Env, d *DB) {
		if err := d.pager.Begin(); err != nil {
			t.Fatal(err)
		}
		tree, err := CreateBtree(env, d.pager)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.pager.Commit(env); err != nil {
			t.Fatal(err)
		}
		model := make(map[int64][]byte)
		rng := rand.New(rand.NewSource(99))
		for step := 0; step < 1500; step++ {
			key := int64(rng.Intn(300))
			d.pager.Begin()
			switch rng.Intn(4) {
			case 0, 1: // insert/replace
				val := make([]byte, 1+rng.Intn(120))
				rng.Read(val)
				if err := tree.Insert(env, key, val); err != nil {
					t.Fatal(err)
				}
				model[key] = val
			case 2: // delete
				ok, err := tree.Delete(env, key)
				if err != nil {
					t.Fatal(err)
				}
				_, want := model[key]
				if ok != want {
					t.Fatalf("step %d: delete(%d) = %v, model %v", step, key, ok, want)
				}
				delete(model, key)
			case 3: // search
				val, ok, err := tree.Search(env, key)
				if err != nil {
					t.Fatal(err)
				}
				want, exists := model[key]
				if ok != exists || (ok && string(val) != string(want)) {
					t.Fatalf("step %d: search(%d) mismatch", step, key)
				}
			}
			d.pager.Commit(env)
		}
		// Final sweep.
		for key, want := range model {
			val, ok, _ := tree.Search(env, key)
			if !ok || string(val) != string(want) {
				t.Fatalf("final: key %d lost", key)
			}
		}
	})
}

func TestTransactionRollback(t *testing.T) {
	dbWorld(t, func(env *mk.Env, d *DB) {
		mustExec(t, env, d, "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
		mustExec(t, env, d, "INSERT INTO t VALUES (1, 100)")
		mustExec(t, env, d, "BEGIN")
		mustExec(t, env, d, "UPDATE t SET v = 999 WHERE id = 1")
		mustExec(t, env, d, "ROLLBACK")
		r := mustExec(t, env, d, "SELECT v FROM t WHERE id = 1")
		if r.Rows[0][0].Int != 100 {
			t.Errorf("rollback lost: v = %v", r.Rows[0][0])
		}
		mustExec(t, env, d, "BEGIN")
		mustExec(t, env, d, "UPDATE t SET v = 555 WHERE id = 1")
		mustExec(t, env, d, "COMMIT")
		r = mustExec(t, env, d, "SELECT v FROM t WHERE id = 1")
		if r.Rows[0][0].Int != 555 {
			t.Errorf("commit lost: v = %v", r.Rows[0][0])
		}
	})
}

func TestPersistenceAcrossReopen(t *testing.T) {
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 2 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("dbworld")
	dev := blockdev.New(p, 4096)
	f := fs.New(p, svc.NewLocal(dev.Handler()))
	p.Spawn("main", k.Mach.Cores[0], func(env *mk.Env) {
		if err := f.Mkfs(env, 4096, 64); err != nil {
			t.Error(err)
			return
		}
		fsc := &fs.Client{Conn: svc.NewLocal(f.Handler())}
		d, err := Open(env, p, fsc, "p.db")
		if err != nil {
			t.Error(err)
			return
		}
		mustExec(t, env, d, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
		mustExec(t, env, d, "INSERT INTO t VALUES (7, 'persistent')")

		// Reopen the same file with a fresh DB instance (fresh pager).
		d2, err := Open(env, p, fsc, "p.db")
		if err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		r, err := d2.Exec(env, "SELECT v FROM t WHERE id = 7")
		if err != nil || len(r.Rows) != 1 || r.Rows[0][0].Text != "persistent" {
			t.Errorf("reopen select: %+v err=%v", r, err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeValuesRejected(t *testing.T) {
	dbWorld(t, func(env *mk.Env, d *DB) {
		mustExec(t, env, d, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
		tab, _ := d.TableByName("kv")
		_ = tab
		big := string(make([]byte, MaxValueSize+100))
		tab2, _ := d.TableByName("t")
		if _, err := tab2.Insert(env, []Value{IntValue(1), TextValue(big)}); err == nil {
			t.Error("oversized value accepted")
		}
	})
}

func TestAutoRowid(t *testing.T) {
	dbWorld(t, func(env *mk.Env, d *DB) {
		mustExec(t, env, d, "CREATE TABLE log (msg TEXT)")
		tab, _ := d.TableByName("log")
		id1, _ := tab.Insert(env, []Value{TextValue("a")})
		id2, _ := tab.Insert(env, []Value{TextValue("b")})
		if id2 != id1+1 {
			t.Errorf("rowids %d, %d", id1, id2)
		}
	})
}

func TestSQLScanPredicateAndMultiRowUpdate(t *testing.T) {
	dbWorld(t, func(env *mk.Env, d *DB) {
		mustExec(t, env, d, "CREATE TABLE emp (id INTEGER PRIMARY KEY, dept TEXT, pay INTEGER)")
		mustExec(t, env, d, "INSERT INTO emp VALUES (1, 'eng', 100)")
		mustExec(t, env, d, "INSERT INTO emp VALUES (2, 'eng', 110)")
		mustExec(t, env, d, "INSERT INTO emp VALUES (3, 'ops', 90)")
		// Non-PK predicate forces a scan.
		r := mustExec(t, env, d, "SELECT id FROM emp WHERE dept = 'eng'")
		if len(r.Rows) != 2 {
			t.Fatalf("scan select: %+v", r.Rows)
		}
		// Multi-row update through the scan path.
		r = mustExec(t, env, d, "UPDATE emp SET pay = 120 WHERE dept = 'eng'")
		if r.Affected != 2 {
			t.Fatalf("affected %d, want 2", r.Affected)
		}
		r = mustExec(t, env, d, "SELECT pay FROM emp")
		total := int64(0)
		for _, row := range r.Rows {
			total += row[0].Int
		}
		if total != 120+120+90 {
			t.Fatalf("pay sum = %d", total)
		}
		// Multi-row delete via scan.
		r = mustExec(t, env, d, "DELETE FROM emp WHERE dept = 'eng'")
		if r.Affected != 2 {
			t.Fatalf("delete affected %d", r.Affected)
		}
	})
}

func TestSQLNullSemantics(t *testing.T) {
	dbWorld(t, func(env *mk.Env, d *DB) {
		mustExec(t, env, d, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
		mustExec(t, env, d, "INSERT INTO t VALUES (1, NULL)")
		// NULL never matches an equality predicate.
		r := mustExec(t, env, d, "SELECT id FROM t WHERE v = 'x'")
		if len(r.Rows) != 0 {
			t.Fatal("NULL matched a literal")
		}
		r = mustExec(t, env, d, "SELECT v FROM t WHERE id = 1")
		if r.Rows[0][0].Kind != KindNull {
			t.Fatal("NULL not round-tripped")
		}
	})
}

func TestSelectScanReturnsRowidOrder(t *testing.T) {
	dbWorld(t, func(env *mk.Env, d *DB) {
		mustExec(t, env, d, "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
		for _, id := range []int{5, 1, 9, 3, 7} {
			mustExec(t, env, d, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", id, id*10))
		}
		r := mustExec(t, env, d, "SELECT id FROM t")
		prev := int64(-1)
		for _, row := range r.Rows {
			if row[0].Int <= prev {
				t.Fatalf("rows out of rowid order: %+v", r.Rows)
			}
			prev = row[0].Int
		}
	})
}
