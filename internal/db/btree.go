package db

import (
	"encoding/binary"
	"fmt"
	"sort"

	"skybridge/internal/mk"
)

// B+tree page layout:
//
//	byte 0    : page type (1 = leaf, 2 = interior)
//	bytes 2-3 : cell count
//	bytes 4-5 : used bytes in the cell area
//	bytes 6-9 : rightmost child (interior pages)
//	bytes 12+ : cells, packed in key order
//
// Leaf cell:     key int64 | value length u16 | value bytes
// Interior cell: key int64 | left child u32 (keys <= key live in child)
const (
	pageLeaf     = 1
	pageInterior = 2
	btHdrSize    = 12
)

// MaxValueSize is the largest value storable in a leaf cell (no overflow
// pages in this engine).
const MaxValueSize = PageSize - btHdrSize - 16

type btCell struct {
	key   int64
	val   []byte // leaf
	child int    // interior
}

type btPage struct {
	typ        int
	cells      []btCell
	rightChild int
}

func (bp *btPage) cellBytes() int {
	n := 0
	for _, c := range bp.cells {
		if bp.typ == pageLeaf {
			n += 10 + len(c.val)
		} else {
			n += 12
		}
	}
	return n
}

// parsePage decodes a B+tree page, charging the reads.
func parsePage(env *mk.Env, pg *page) (*btPage, error) {
	hdr := pg.read(env, 0, btHdrSize)
	bp := &btPage{
		typ:        int(hdr[0]),
		rightChild: int(binary.LittleEndian.Uint32(hdr[6:])),
	}
	ncells := int(binary.LittleEndian.Uint16(hdr[2:]))
	used := int(binary.LittleEndian.Uint16(hdr[4:]))
	if bp.typ != pageLeaf && bp.typ != pageInterior {
		return nil, fmt.Errorf("db: page %d: bad btree page type %d", pg.no, bp.typ)
	}
	body := pg.read(env, btHdrSize, used)
	off := 0
	for i := 0; i < ncells; i++ {
		if off+8 > len(body) {
			return nil, fmt.Errorf("db: page %d: truncated cell %d", pg.no, i)
		}
		key := int64(binary.LittleEndian.Uint64(body[off:]))
		off += 8
		var c btCell
		c.key = key
		if bp.typ == pageLeaf {
			vlen := int(binary.LittleEndian.Uint16(body[off:]))
			off += 2
			c.val = append([]byte(nil), body[off:off+vlen]...)
			off += vlen
		} else {
			c.child = int(binary.LittleEndian.Uint32(body[off:]))
			off += 4
		}
		bp.cells = append(bp.cells, c)
	}
	return bp, nil
}

// storePage serializes a B+tree page back, charging the write.
func (t *Btree) storePage(env *mk.Env, pg *page, bp *btPage) error {
	buf := make([]byte, PageSize)
	buf[0] = byte(bp.typ)
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(bp.cells)))
	binary.LittleEndian.PutUint32(buf[6:], uint32(bp.rightChild))
	off := btHdrSize
	for _, c := range bp.cells {
		binary.LittleEndian.PutUint64(buf[off:], uint64(c.key))
		off += 8
		if bp.typ == pageLeaf {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(c.val)))
			off += 2
			copy(buf[off:], c.val)
			off += len(c.val)
		} else {
			binary.LittleEndian.PutUint32(buf[off:], uint32(c.child))
			off += 4
		}
	}
	binary.LittleEndian.PutUint16(buf[4:], uint16(off-btHdrSize))
	return t.pager.Write(env, pg, 0, buf[:off])
}

// Btree is a B+tree rooted at a stable page number.
type Btree struct {
	pager *Pager
	Root  int
}

// CreateBtree allocates an empty tree (inside a transaction).
func CreateBtree(env *mk.Env, pager *Pager) (*Btree, error) {
	pg, err := pager.Allocate(env)
	if err != nil {
		return nil, err
	}
	t := &Btree{pager: pager, Root: pg.no}
	return t, t.storePage(env, pg, &btPage{typ: pageLeaf})
}

// OpenBtree attaches to an existing tree.
func OpenBtree(pager *Pager, root int) *Btree { return &Btree{pager: pager, Root: root} }

// findChild returns the child of an interior page to descend into for key.
func findChild(bp *btPage, key int64) int {
	i := sort.Search(len(bp.cells), func(i int) bool { return key <= bp.cells[i].key })
	if i == len(bp.cells) {
		return bp.rightChild
	}
	return bp.cells[i].child
}

// Search returns the value stored under key.
func (t *Btree) Search(env *mk.Env, key int64) ([]byte, bool, error) {
	no := t.Root
	for {
		pg, err := t.pager.Get(env, no)
		if err != nil {
			return nil, false, err
		}
		bp, err := parsePage(env, pg)
		if err != nil {
			return nil, false, err
		}
		if bp.typ == pageInterior {
			no = findChild(bp, key)
			continue
		}
		i := sort.Search(len(bp.cells), func(i int) bool { return bp.cells[i].key >= key })
		if i < len(bp.cells) && bp.cells[i].key == key {
			return bp.cells[i].val, true, nil
		}
		return nil, false, nil
	}
}

// Insert stores value under key, replacing any existing value.
func (t *Btree) Insert(env *mk.Env, key int64, value []byte) error {
	if len(value) > MaxValueSize {
		return fmt.Errorf("db: value of %d bytes exceeds max %d", len(value), MaxValueSize)
	}
	sepKey, newChild, err := t.insertInto(env, t.Root, key, value)
	if err != nil {
		return err
	}
	if newChild == 0 {
		return nil
	}
	// Root split: the root page number must stay stable (the catalog
	// references it), so move the old root's content to a fresh page and
	// make the root an interior page over the two halves.
	rootPg, err := t.pager.Get(env, t.Root)
	if err != nil {
		return err
	}
	rootBP, err := parsePage(env, rootPg)
	if err != nil {
		return err
	}
	moved, err := t.pager.Allocate(env)
	if err != nil {
		return err
	}
	if err := t.storePage(env, moved, rootBP); err != nil {
		return err
	}
	newRoot := &btPage{
		typ:        pageInterior,
		cells:      []btCell{{key: sepKey, child: moved.no}},
		rightChild: newChild,
	}
	// Re-fetch: Allocate may have evicted rootPg's slot.
	rootPg, err = t.pager.Get(env, t.Root)
	if err != nil {
		return err
	}
	return t.storePage(env, rootPg, newRoot)
}

// insertInto inserts into the subtree at page no. If the page split, it
// returns the separator key and the new right sibling's page number.
func (t *Btree) insertInto(env *mk.Env, no int, key int64, value []byte) (int64, int, error) {
	pg, err := t.pager.Get(env, no)
	if err != nil {
		return 0, 0, err
	}
	bp, err := parsePage(env, pg)
	if err != nil {
		return 0, 0, err
	}

	if bp.typ == pageInterior {
		childNo := findChild(bp, key)
		sep, newChild, err := t.insertInto(env, childNo, key, value)
		if err != nil || newChild == 0 {
			return 0, 0, err
		}
		// The child split: insert (sep -> old child), new child takes the
		// old child's position.
		i := sort.Search(len(bp.cells), func(i int) bool { return sep <= bp.cells[i].key })
		cell := btCell{key: sep, child: childNo}
		bp.cells = append(bp.cells[:i], append([]btCell{cell}, bp.cells[i:]...)...)
		if i == len(bp.cells)-1 {
			// Old child was the rightmost: the new child becomes rightmost.
			if bp.rightChild == childNo {
				bp.rightChild = newChild
			} else {
				bp.cells[i+1].child = newChild
			}
		} else {
			bp.cells[i+1].child = newChild
		}
		return t.storeOrSplit(env, pg, bp)
	}

	// Leaf.
	i := sort.Search(len(bp.cells), func(i int) bool { return bp.cells[i].key >= key })
	if i < len(bp.cells) && bp.cells[i].key == key {
		bp.cells[i].val = append([]byte(nil), value...)
	} else {
		cell := btCell{key: key, val: append([]byte(nil), value...)}
		bp.cells = append(bp.cells[:i], append([]btCell{cell}, bp.cells[i:]...)...)
	}
	return t.storeOrSplit(env, pg, bp)
}

// storeOrSplit writes bp back to pg, splitting it first if it overflows.
func (t *Btree) storeOrSplit(env *mk.Env, pg *page, bp *btPage) (int64, int, error) {
	if btHdrSize+bp.cellBytes() <= PageSize {
		return 0, 0, t.storePage(env, pg, bp)
	}
	// Split: left half stays, right half moves to a fresh page.
	mid := len(bp.cells) / 2
	leftCells := bp.cells[:mid]
	rightCells := bp.cells[mid:]

	var sep int64
	left := &btPage{typ: bp.typ, cells: leftCells}
	right := &btPage{typ: bp.typ, cells: rightCells, rightChild: bp.rightChild}
	if bp.typ == pageLeaf {
		sep = leftCells[len(leftCells)-1].key
	} else {
		// The separator moves up; its child becomes the left page's
		// rightmost.
		sepCell := rightCells[0]
		sep = sepCell.key
		right.cells = rightCells[1:]
		left.rightChild = sepCell.child
	}

	origNo := pg.no
	rightPg, err := t.pager.Allocate(env)
	if err != nil {
		return 0, 0, err
	}
	if err := t.storePage(env, rightPg, right); err != nil {
		return 0, 0, err
	}
	// Re-fetch: Allocate may have recycled the original page's slot.
	pg, err = t.pager.Get(env, origNo)
	if err != nil {
		return 0, 0, err
	}
	if err := t.storePage(env, pg, left); err != nil {
		return 0, 0, err
	}
	return sep, rightPg.no, nil
}

// Delete removes key, reporting whether it existed. Pages are not
// rebalanced (deleted space is reused by later inserts, as in SQLite
// without vacuum).
func (t *Btree) Delete(env *mk.Env, key int64) (bool, error) {
	no := t.Root
	for {
		pg, err := t.pager.Get(env, no)
		if err != nil {
			return false, err
		}
		bp, err := parsePage(env, pg)
		if err != nil {
			return false, err
		}
		if bp.typ == pageInterior {
			no = findChild(bp, key)
			continue
		}
		i := sort.Search(len(bp.cells), func(i int) bool { return bp.cells[i].key >= key })
		if i >= len(bp.cells) || bp.cells[i].key != key {
			return false, nil
		}
		bp.cells = append(bp.cells[:i], bp.cells[i+1:]...)
		return true, t.storePage(env, pg, bp)
	}
}

// Scan walks the tree in key order, invoking fn for every cell until fn
// returns false.
func (t *Btree) Scan(env *mk.Env, fn func(key int64, value []byte) bool) error {
	_, err := t.scanFrom(env, t.Root, fn)
	return err
}

func (t *Btree) scanFrom(env *mk.Env, no int, fn func(int64, []byte) bool) (bool, error) {
	pg, err := t.pager.Get(env, no)
	if err != nil {
		return false, err
	}
	bp, err := parsePage(env, pg)
	if err != nil {
		return false, err
	}
	if bp.typ == pageLeaf {
		for _, c := range bp.cells {
			if !fn(c.key, c.val) {
				return false, nil
			}
		}
		return true, nil
	}
	children := make([]int, 0, len(bp.cells)+1)
	for _, c := range bp.cells {
		children = append(children, c.child)
	}
	children = append(children, bp.rightChild)
	for i, ch := range children {
		// Top up the readahead ring each step: the Get below retires the
		// completion for ch, freeing a slot for a child further ahead.
		if err := t.pager.Prefetch(env, children[i:]); err != nil {
			return false, err
		}
		cont, err := t.scanFrom(env, ch, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// ScanFrom walks the tree in key order starting at the first key >= start,
// invoking fn until it returns false (the YCSB SCAN access path).
func (t *Btree) ScanFrom(env *mk.Env, start int64, fn func(key int64, value []byte) bool) error {
	_, err := t.scanFromKey(env, t.Root, start, fn)
	return err
}

// scanFromKey descends to the leaf containing start, then continues like
// scanFrom across the remaining subtrees.
func (t *Btree) scanFromKey(env *mk.Env, no int, start int64, fn func(int64, []byte) bool) (bool, error) {
	pg, err := t.pager.Get(env, no)
	if err != nil {
		return false, err
	}
	bp, err := parsePage(env, pg)
	if err != nil {
		return false, err
	}
	if bp.typ == pageLeaf {
		i := sort.Search(len(bp.cells), func(i int) bool { return bp.cells[i].key >= start })
		for _, c := range bp.cells[i:] {
			if !fn(c.key, c.val) {
				return false, nil
			}
		}
		return true, nil
	}
	// Children left of the start key hold only smaller keys — skip them.
	j := sort.Search(len(bp.cells), func(i int) bool { return start <= bp.cells[i].key })
	children := make([]int, 0, len(bp.cells)-j+1)
	for _, c := range bp.cells[j:] {
		children = append(children, c.child)
	}
	children = append(children, bp.rightChild)
	for k, ch := range children {
		if err := t.pager.Prefetch(env, children[k:]); err != nil {
			return false, err
		}
		var cont bool
		var err error
		if k == 0 {
			cont, err = t.scanFromKey(env, ch, start, fn)
		} else {
			cont, err = t.scanFrom(env, ch, fn)
		}
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// MaxKey returns the largest key in the tree (0, false if empty).
func (t *Btree) MaxKey(env *mk.Env) (int64, bool, error) {
	no := t.Root
	for {
		pg, err := t.pager.Get(env, no)
		if err != nil {
			return 0, false, err
		}
		bp, err := parsePage(env, pg)
		if err != nil {
			return 0, false, err
		}
		if bp.typ == pageInterior {
			no = bp.rightChild
			continue
		}
		if len(bp.cells) == 0 {
			return 0, false, nil
		}
		return bp.cells[len(bp.cells)-1].key, true, nil
	}
}
