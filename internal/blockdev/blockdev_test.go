package blockdev

import (
	"bytes"
	"testing"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
	"skybridge/internal/svc"
)

func devWorld(t *testing.T, blocks int, body func(env *mk.Env, d *Device, c *Client)) {
	t.Helper()
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 2, MemBytes: 1 << 30}))
	k := mk.New(mk.Config{Flavor: mk.SeL4}, eng)
	p := k.NewProcess("dev")
	d := New(p, blocks)
	c := &Client{Conn: svc.NewLocal(d.Handler())}
	p.Spawn("t", k.Mach.Cores[0], func(env *mk.Env) { body(env, d, c) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	devWorld(t, 64, func(env *mk.Env, d *Device, c *Client) {
		blk := make([]byte, BlockSize)
		for i := range blk {
			blk[i] = byte(i * 3)
		}
		if err := c.WriteBlock(env, 7, blk); err != nil {
			t.Error(err)
			return
		}
		got, err := c.ReadBlock(env, 7)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, blk) {
			t.Error("block corrupted")
		}
		if d.Reads != 1 || d.Writes != 1 {
			t.Errorf("stats: %d reads, %d writes", d.Reads, d.Writes)
		}
	})
}

func TestBlocksAreIndependent(t *testing.T) {
	devWorld(t, 8, func(env *mk.Env, d *Device, c *Client) {
		for bn := 0; bn < 8; bn++ {
			blk := bytes.Repeat([]byte{byte(bn + 1)}, BlockSize)
			if err := c.WriteBlock(env, bn, blk); err != nil {
				t.Error(err)
				return
			}
		}
		for bn := 0; bn < 8; bn++ {
			got, _ := c.ReadBlock(env, bn)
			if got[0] != byte(bn+1) || got[BlockSize-1] != byte(bn+1) {
				t.Errorf("block %d contains %d", bn, got[0])
			}
		}
	})
}

func TestFreshBlocksAreZero(t *testing.T) {
	devWorld(t, 4, func(env *mk.Env, d *Device, c *Client) {
		got, err := c.ReadBlock(env, 3)
		if err != nil {
			t.Error(err)
			return
		}
		for _, b := range got {
			if b != 0 {
				t.Error("fresh block not zeroed")
				return
			}
		}
	})
}

func TestBadRequests(t *testing.T) {
	devWorld(t, 4, func(env *mk.Env, d *Device, c *Client) {
		if _, err := c.ReadBlock(env, 4); err == nil {
			t.Error("out-of-range read accepted")
		}
		if _, err := c.ReadBlock(env, -1); err == nil {
			t.Error("negative block accepted")
		}
		if err := c.WriteBlock(env, 0, []byte{1, 2, 3}); err == nil {
			t.Error("short write accepted")
		}
		resp, err := c.Conn.Invoke(env, Req{Op: 99})
		if err != nil || resp.Status != StatusBadOp {
			t.Errorf("unknown op: %v %d", err, resp.Status)
		}
	})
}

func TestSizeAndFlush(t *testing.T) {
	devWorld(t, 123, func(env *mk.Env, d *Device, c *Client) {
		resp, err := c.Conn.Invoke(env, Req{Op: OpSize})
		if err != nil || resp.Vals[0] != 123 {
			t.Errorf("size: %v %d", err, resp.Vals[0])
		}
		if err := c.Flush(env); err != nil {
			t.Error(err)
		}
	})
}
