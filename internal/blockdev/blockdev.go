// Package blockdev implements the RAM-disk block device server of the
// paper's SQLite3 evaluation (§6.5: "we use a RAM disk device to work as
// the block device and the file system communicates with the device with
// IPC"). Blocks live in the device process's simulated memory, so every
// read and write is charged through the cache hierarchy and the stored
// bytes are authoritative.
package blockdev

import (
	"fmt"

	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/svc"
)

// BlockSize is the device block size in bytes.
const BlockSize = 4096

// Service opcodes.
const (
	OpRead uint64 = iota + 1
	OpWrite
	OpSize
	OpFlush
)

// Status codes.
const (
	StatusOK       = svc.StatusOK
	StatusBadBlock = 1
	StatusBadOp    = 2
)

// Device is a RAM disk owned by a process.
type Device struct {
	Proc    *mk.Process
	base    hw.VA
	nblocks int

	// Stats.
	Reads  uint64
	Writes uint64
}

// New allocates an nblocks RAM disk inside proc's address space.
func New(proc *mk.Process, nblocks int) *Device {
	return &Device{
		Proc:    proc,
		base:    proc.Alloc(nblocks * BlockSize),
		nblocks: nblocks,
	}
}

// Blocks returns the device size in blocks.
func (d *Device) Blocks() int { return d.nblocks }

// Handler returns the device's service handler. The serving environment
// must execute in d.Proc's address space (IPC server thread, SkyBridge
// direct env, or the owning process itself for the Baseline configuration).
func (d *Device) Handler() svc.Handler {
	return func(env *mk.Env, req Req) Resp {
		return d.handle(env, req)
	}
}

// Req and Resp alias the svc types for readability.
type (
	Req  = svc.Req
	Resp = svc.Resp
)

func (d *Device) handle(env *mk.Env, req Req) Resp {
	switch req.Op {
	case OpRead:
		bn := int(req.Args[0])
		if bn < 0 || bn >= d.nblocks {
			return Resp{Status: StatusBadBlock}
		}
		d.Reads++
		buf := make([]byte, BlockSize)
		env.Read(d.base+hw.VA(bn*BlockSize), buf, BlockSize)
		return Resp{Status: StatusOK, Data: buf}
	case OpWrite:
		bn := int(req.Args[0])
		if bn < 0 || bn >= d.nblocks || len(req.Data) != BlockSize {
			return Resp{Status: StatusBadBlock}
		}
		d.Writes++
		env.Write(d.base+hw.VA(bn*BlockSize), req.Data, BlockSize)
		return Resp{Status: StatusOK}
	case OpSize:
		return Resp{Status: StatusOK, Vals: [3]uint64{uint64(d.nblocks)}}
	case OpFlush:
		env.Compute(200) // device barrier
		return Resp{Status: StatusOK}
	default:
		return Resp{Status: StatusBadOp}
	}
}

// Client is a typed wrapper over a transport connection to a device.
type Client struct {
	Conn svc.Conn
}

// ReadBlock fetches block bn.
func (c *Client) ReadBlock(env *mk.Env, bn int) ([]byte, error) {
	resp, err := c.Conn.Invoke(env, Req{Op: OpRead, Args: [3]uint64{uint64(bn)}})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, fmt.Errorf("blockdev: read %d: status %d", bn, resp.Status)
	}
	return resp.Data, nil
}

// WriteBlock stores block bn.
func (c *Client) WriteBlock(env *mk.Env, bn int, data []byte) error {
	resp, err := c.Conn.Invoke(env, Req{Op: OpWrite, Args: [3]uint64{uint64(bn)}, Data: data})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("blockdev: write %d: status %d", bn, resp.Status)
	}
	return nil
}

// batchBlocks is how many full-size blocks fit in one batched crossing:
// the 4-page shared buffer holds the ring headers plus three 4096-byte
// slots (core.BatchLayout rounds each slot to a cache line).
const batchBlocks = 3

// ReadBlocks fetches the given blocks, batching up to three reads per
// transport crossing when the connection supports it (svc.Batcher). The
// RespCap hint sizes each ring slot for a full block reply even though
// read requests carry no payload.
func (c *Client) ReadBlocks(env *mk.Env, bns []int) ([][]byte, error) {
	out := make([][]byte, 0, len(bns))
	for start := 0; start < len(bns); start += batchBlocks {
		end := start + batchBlocks
		if end > len(bns) {
			end = len(bns)
		}
		reqs := make([]Req, end-start)
		for i, bn := range bns[start:end] {
			reqs[i] = Req{Op: OpRead, Args: [3]uint64{uint64(bn)}, RespCap: BlockSize}
		}
		resps, err := svc.InvokeBatch(env, c.Conn, reqs)
		if err != nil {
			return nil, err
		}
		for i, resp := range resps {
			if resp.Status != StatusOK {
				return nil, fmt.Errorf("blockdev: read %d: status %d", bns[start+i], resp.Status)
			}
			out = append(out, resp.Data)
		}
	}
	return out, nil
}

// WriteBlocks stores data[i] at block bns[i], batching up to three writes
// per transport crossing. Within a batch the device applies entries in
// submission order, so a caller folding a journal/log protocol into one
// crossing keeps its write ordering.
func (c *Client) WriteBlocks(env *mk.Env, bns []int, datas [][]byte) error {
	if len(bns) != len(datas) {
		return fmt.Errorf("blockdev: write batch: %d blocks, %d buffers", len(bns), len(datas))
	}
	for start := 0; start < len(bns); start += batchBlocks {
		end := start + batchBlocks
		if end > len(bns) {
			end = len(bns)
		}
		reqs := make([]Req, end-start)
		for i := range reqs {
			reqs[i] = Req{Op: OpWrite, Args: [3]uint64{uint64(bns[start+i])}, Data: datas[start+i]}
		}
		resps, err := svc.InvokeBatch(env, c.Conn, reqs)
		if err != nil {
			return err
		}
		for i, resp := range resps {
			if resp.Status != StatusOK {
				return fmt.Errorf("blockdev: write %d: status %d", bns[start+i], resp.Status)
			}
		}
	}
	return nil
}

// Flush issues a device barrier.
func (c *Client) Flush(env *mk.Env) error {
	resp, err := c.Conn.Invoke(env, Req{Op: OpFlush})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("blockdev: flush: status %d", resp.Status)
	}
	return nil
}
