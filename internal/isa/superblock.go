package isa

import (
	"bytes"
	"fmt"
)

// Superblock (direct-threaded) execution.
//
// A superblock is a straight-line run of decoded instructions starting at
// one entry RIP: formation walks forward from the entry, decoding until a
// control-transfer or system instruction (which terminates the block and is
// included as its last instruction), a page boundary, the end of the
// region, a decode failure, or the SBMaxLen cap. Each instruction gets a
// direct-threaded handler closure specialized at formation time, so
// dispatch is one indirect call per instruction with no per-instruction
// fetch, decode-cache probe, or operand re-resolution.
//
// Correctness invariants (the feature must be architecturally invisible):
//   - One byte-validation per dispatch: the block's formation-time byte
//     copy is compared against the live region bytes; any mismatch drops
//     the block and re-forms from the current bytes, so rewrite-over-code
//     between dispatches behaves exactly like the per-step decode cache.
//   - Self-modifying code inside a block: every data store is tracked
//     (storeSeq/lastStore); a store overlapping the block's own
//     not-yet-executed bytes bails out of the block, letting Step()
//     re-decode the freshly written bytes just as per-step execution would.
//   - Step accounting is exact: the maxSteps bound is checked before every
//     fused instruction, so Run's "exceeded N steps" error fires at the
//     same Steps/RIP as per-step execution.
//   - AddRegion/InvalidateCode drop all blocks, mirroring the decode cache.

// SBMaxLen caps the number of instructions fused into one superblock.
const SBMaxLen = 64

// sbPageSize is the fetch page granularity; blocks never span a page
// boundary (an instruction that starts on the entry page may end past it,
// matching hardware fetch semantics).
const sbPageSize = 4096

// SBStats are host-side superblock diagnostics; they do not affect
// architectural state.
type SBStats struct {
	// Formed counts blocks built; Hits counts dispatches served from the
	// block cache (after byte revalidation).
	Formed, Hits uint64
	// Execs counts block dispatches; Instrs counts instructions retired
	// inside blocks.
	Execs, Instrs uint64
	// Bails counts mid-block fallbacks to Step() caused by a store over
	// the block's own remaining bytes.
	Bails uint64
	// Invalidations counts whole-cache drops (AddRegion/InvalidateCode)
	// plus per-entry drops from failed byte revalidation.
	Invalidations uint64
	// LenHist[n] counts blocks formed with n instructions.
	LenHist [SBMaxLen + 1]uint64
}

// MeanLen returns the mean formed-block length in instructions.
func (s *SBStats) MeanLen() float64 {
	var blocks, instrs uint64
	for n, c := range s.LenHist {
		blocks += c
		instrs += uint64(n) * c
	}
	if blocks == 0 {
		return 0
	}
	return float64(instrs) / float64(blocks)
}

// sbHandler executes one fused instruction, updating RIP exactly as
// Step()'s execInst would.
type sbHandler func(*Interp) error

// superblock is one fused straight-line run.
type superblock struct {
	entry uint64
	// ends[i] is the address of the instruction after instruction i — the
	// lower bound of the block bytes still unexecuted once i retires.
	ends  []uint64
	funcs []sbHandler
	// raw is a formation-time copy of the block's code bytes; live is the
	// region subslice they came from. Dispatch revalidates raw against
	// live, so in-place code writes transparently invalidate the block.
	raw, live []byte
}

// sbTerminator reports whether op ends block formation (the instruction is
// still included as the block's last).
func sbTerminator(op Op) bool {
	switch op {
	case JMP, JCC, CALL, RET, HLT, VMFUNC, SYSCALL, INT3:
		return true
	}
	return false
}

// findRegion returns the region containing addr, or nil.
func (ip *Interp) findRegion(addr uint64) *Region {
	for i := range ip.regions {
		r := &ip.regions[i]
		if addr >= r.Base && addr < r.Base+uint64(len(r.Data)) {
			return r
		}
	}
	return nil
}

// lookupBlock returns a validated superblock starting at the current RIP,
// forming (and caching) one if needed. nil means no block can start here
// (unmapped RIP or undecodable first instruction); the caller falls back
// to Step(), which surfaces the identical fault.
func (ip *Interp) lookupBlock() *superblock {
	if sb, ok := ip.sbCache[ip.RIP]; ok {
		if bytes.Equal(sb.raw, sb.live) {
			ip.SBStats.Hits++
			return sb
		}
		// Stale bytes under the cached block: drop and re-form.
		ip.SBStats.Invalidations++
		delete(ip.sbCache, ip.RIP)
	}
	sb := ip.formBlock()
	if sb == nil {
		return nil
	}
	if ip.sbCache == nil {
		ip.sbCache = make(map[uint64]*superblock)
	}
	ip.sbCache[ip.RIP] = sb
	ip.SBStats.Formed++
	ip.SBStats.LenHist[len(sb.funcs)]++
	return sb
}

// formBlock decodes a straight-line run starting at the current RIP and
// builds its direct-threaded handlers. This is the block's single
// fetch-permission check: the region lookup here stands in for the
// per-instruction region() probe of Step().
func (ip *Interp) formBlock() *superblock {
	rgn := ip.findRegion(ip.RIP)
	if rgn == nil {
		return nil
	}
	rgnEnd := rgn.Base + uint64(len(rgn.Data))
	pageEnd := (ip.RIP | (sbPageSize - 1)) + 1
	sb := &superblock{entry: ip.RIP}
	pc := ip.RIP
	for len(sb.funcs) < SBMaxLen && pc < rgnEnd && pc < pageEnd {
		window := rgn.Data[pc-rgn.Base:]
		if len(window) > 15 {
			window = window[:15]
		}
		in, err := Decode(window)
		if err != nil {
			break
		}
		end := pc + uint64(in.Len)
		sb.ends = append(sb.ends, end)
		sb.funcs = append(sb.funcs, buildHandler(in, end))
		pc = end
		if sbTerminator(in.Op) {
			break
		}
	}
	if len(sb.funcs) == 0 {
		return nil
	}
	sb.live = rgn.Data[sb.entry-rgn.Base : pc-rgn.Base]
	sb.raw = append([]byte(nil), sb.live...)
	return sb
}

// execBlock retires the block's instructions. It returns with ip.RIP (and
// all architectural state) exactly where per-step execution would leave it:
// on an error, at the faulting instruction; on a self-modifying-code bail,
// at the first instruction whose bytes may have changed (Run() then
// re-dispatches or falls back to Step there).
func (ip *Interp) execBlock(sb *superblock, maxSteps int) error {
	ip.SBStats.Execs++
	seq := ip.storeSeq
	blockEnd := sb.entry + uint64(len(sb.raw))
	for i, fn := range sb.funcs {
		if ip.Steps >= maxSteps {
			return fmt.Errorf("isa: exceeded %d steps at rip %#x", maxSteps, ip.RIP)
		}
		ip.Steps++
		if err := fn(ip); err != nil {
			return err
		}
		ip.SBStats.Instrs++
		if ip.storeSeq != seq {
			seq = ip.storeSeq
			// A store retired; if it overlaps the block's remaining bytes
			// the pre-decoded tail is stale — bail to per-step execution.
			// (Every instruction performs at most one store, so lastStore
			// covers all bytes written since the last check.)
			if i+1 < len(sb.funcs) && ip.lastStore+8 > sb.ends[i] && ip.lastStore < blockEnd {
				ip.SBStats.Bails++
				return nil
			}
		}
		if ip.Halted {
			return nil
		}
	}
	return nil
}

// buildHandler specializes one decoded instruction into a direct-threaded
// handler. Hot simple forms (register/immediate moves and 64-bit ALU,
// branches, stack ops) get dedicated closures; everything else routes
// through execInst, so semantics cannot diverge from Step().
func buildHandler(in Inst, end uint64) sbHandler {
	switch in.Op {
	case NOP:
		return func(ip *Interp) error { ip.RIP = end; return nil }
	case HLT:
		return func(ip *Interp) error { ip.Halted = true; ip.RIP = end; return nil }
	case VMFUNC:
		return func(ip *Interp) error { ip.VMFuncCount++; ip.RIP = end; return nil }
	case SYSCALL:
		return func(ip *Interp) error { ip.SyscallCount++; ip.RIP = end; return nil }
	case PUSH:
		src := in.Dst
		return func(ip *Interp) error {
			ip.Regs[RSP] -= 8
			if err := ip.write64(ip.Regs[RSP], ip.Regs[src]); err != nil {
				return err
			}
			ip.RIP = end
			return nil
		}
	case POP:
		dst := in.Dst
		return func(ip *Interp) error {
			v, err := ip.read64(ip.Regs[RSP])
			if err != nil {
				return err
			}
			ip.Regs[RSP] += 8
			ip.Regs[dst] = v
			ip.RIP = end
			return nil
		}
	case MOV:
		if !in.HasMem && !in.HasImm {
			dst, src := in.Dst, in.Src
			return func(ip *Interp) error { ip.Regs[dst] = ip.Regs[src]; ip.RIP = end; return nil }
		}
	case MOVI:
		if !in.HasMem {
			dst, v := in.Dst, uint64(in.Imm)
			return func(ip *Interp) error { ip.Regs[dst] = v; ip.RIP = end; return nil }
		}
	case LEA:
		dst, m := in.Dst, in.M
		return func(ip *Interp) error { ip.Regs[dst] = ip.ea(m, end); ip.RIP = end; return nil }
	case ADD, SUB, AND, OR, XOR, CMP, TEST:
		if !in.Bits32 && !in.HasMem {
			op, dst := in.Op, in.Dst
			writeback := op != CMP && op != TEST
			if in.HasImm {
				b := uint64(in.Imm)
				return func(ip *Interp) error {
					res := ip.alu64(op, ip.Regs[dst], b)
					if writeback {
						ip.Regs[dst] = res
					}
					ip.RIP = end
					return nil
				}
			}
			src := in.Src
			return func(ip *Interp) error {
				res := ip.alu64(op, ip.Regs[dst], ip.Regs[src])
				if writeback {
					ip.Regs[dst] = res
				}
				ip.RIP = end
				return nil
			}
		}
	case JMP:
		target := end + uint64(int64(in.Rel))
		return func(ip *Interp) error { ip.RIP = target; return nil }
	case JCC:
		c := in.Cond
		target := end + uint64(int64(in.Rel))
		return func(ip *Interp) error {
			taken, err := ip.cond(c)
			if err != nil {
				return err
			}
			if taken {
				ip.RIP = target
			} else {
				ip.RIP = end
			}
			return nil
		}
	case CALL:
		target := end + uint64(int64(in.Rel))
		return func(ip *Interp) error {
			ip.Regs[RSP] -= 8
			if err := ip.write64(ip.Regs[RSP], end); err != nil {
				return err
			}
			ip.RIP = target
			return nil
		}
	case RET:
		return func(ip *Interp) error {
			v, err := ip.read64(ip.Regs[RSP])
			if err != nil {
				return err
			}
			ip.Regs[RSP] += 8
			ip.RIP = v
			return nil
		}
	}
	inCopy := in
	return func(ip *Interp) error { return ip.execInst(&inCopy, end) }
}
